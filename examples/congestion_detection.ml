(* Mirror-congestion detection.

   Port mirroring clones both the Tx and Rx channels of the mirrored
   port onto the single Tx channel of the destination port.  When
   Tx + Rx exceeds the line rate, the switch silently drops mirrored
   frames and the sample is incomplete.  Patchwork detects this from
   the switch's telemetry rather than trying to prevent it (R3).

   This example drives a port from idle to overload and shows the
   detector and the measured drop fraction tracking each other.

   Run with: dune exec examples/congestion_detection.exe *)

module Switch = Testbed.Switch

let () =
  let engine = Simcore.Engine.create () in
  let sw = Switch.create engine ~site_name:"DEMO" ~ports:4 ~line_rate:100e9 in
  let mirror =
    match Switch.add_mirror sw ~src_port:0 ~dirs:Switch.Both ~dst_port:3 with
    | Ok id -> id
    | Error m -> failwith m
  in
  Printf.printf "%-22s %-14s %-12s %s\n" "load (Tx+Rx, Gbps)" "mirrored" "drop frac"
    "sample quality";
  List.iter
    (fun gbps ->
      (* Symmetric load: gbps/2 on each channel. *)
      let byte_rate = gbps /. 2.0 *. 1e9 /. 8.0 in
      let frame_rate = byte_rate /. 1514.0 in
      Switch.detach_flow sw ~flow:1;
      Switch.detach_flow sw ~flow:2;
      Switch.attach_flow sw ~port:0 ~dir:Switch.Rx ~byte_rate ~frame_rate ~flow:1;
      Switch.attach_flow sw ~port:0 ~dir:Switch.Tx ~byte_rate ~frame_rate ~flow:2;
      let drop = Switch.mirror_drop_fraction sw mirror in
      let mirrored_gbps = Switch.mirrored_rate sw mirror *. 8.0 /. 1e9 in
      let congested = mirrored_gbps *. 1e9 > Switch.line_rate sw in
      Printf.printf "%-22.0f %10.1f G %11.1f%% %s\n" gbps mirrored_gbps
        (100.0 *. drop)
        (if congested then "INCOMPLETE (congestion detected)" else "complete")
    )
    [ 10.0; 40.0; 80.0; 100.0; 120.0; 150.0; 200.0 ];
  print_endline "";
  print_endline
    "mitigation: mirror only one direction (Rx) so the mirror never exceeds line rate:";
  Switch.remove_mirror sw mirror;
  let rx_only =
    match Switch.add_mirror sw ~src_port:0 ~dirs:Switch.Rx_only ~dst_port:3 with
    | Ok id -> id
    | Error m -> failwith m
  in
  Printf.printf "Rx-only mirror at 200 Gbps combined load: drop fraction %.1f%%\n"
    (100.0 *. Switch.mirror_drop_fraction sw rx_only)
