(* Testbed-wide profiling (all-experiment mode).

   Runs one weekly-style profiling occasion across every profilable
   site of the federation, then pushes the captures through the full
   offline pipeline (Digest -> Index -> Analyze -> Process) and emits
   the CSV files that the paper's graphs are drawn from.

   Run with: dune exec examples/testbed_profile.exe *)

let () =
  let start_time = 120.0 *. Netcore.Timebase.day in
  let engine = Simcore.Engine.create ~start_time () in
  let fabric = Testbed.Fablib.create ~seed:7 engine in
  let driver = Traffic.Driver.create fabric ~seed:7 in
  let config =
    {
      Patchwork.Config.default with
      Patchwork.Config.samples_per_run = 4;
      max_frames_per_sample = 4000;
    }
  in
  print_endline "running an all-experiment profiling occasion (2 simulated hours)...";
  let report =
    Patchwork.Coordinator.run_occasion ~fabric ~driver ~config ~start_time
      ~duration:(2.0 *. Netcore.Timebase.hour) ()
  in
  (* Site outcomes (the Fig. 10 view of a single occasion). *)
  List.iter
    (fun (s : Patchwork.Coordinator.site_report) ->
      Printf.printf "  %-6s %-10s %3d samples, %d cycles\n"
        s.Patchwork.Coordinator.report_site
        (match s.Patchwork.Coordinator.outcome with
        | Patchwork.Coordinator.Site_success -> "success"
        | Patchwork.Coordinator.Site_degraded -> "degraded"
        | Patchwork.Coordinator.Site_failed _ -> "FAILED"
        | Patchwork.Coordinator.Site_incomplete _ -> "INCOMPLETE")
        (List.length s.Patchwork.Coordinator.site_samples)
        s.Patchwork.Coordinator.cycles)
    report.Patchwork.Coordinator.sites;
  (* Index the samples as an artifact store, as the gathering phase
     does before the coordinator pulls everything home. *)
  let dir = Filename.temp_file "patchwork_store" "" in
  Sys.remove dir;
  let index = Analysis.Index.create ~dir in
  List.iter
    (fun s -> ignore (Analysis.Index.add_sample index ~occasion:0 s))
    (Patchwork.Coordinator.all_samples report);
  Analysis.Index.save index;
  Printf.printf "acap store: %s (%d files)\n" dir
    (List.length (Analysis.Index.entries index));
  (* Analyze. *)
  let profile = Analysis.Profile.of_reports [ report ] in
  Format.printf "%a" Analysis.Profile.pp_summary profile;
  let csv_dir = Filename.concat dir "csv" in
  let files = Analysis.Profile.write_csv_files profile ~dir:csv_dir in
  Printf.printf "CSV reports under %s:\n" csv_dir;
  List.iter (fun f -> Printf.printf "  %s\n" f) files
