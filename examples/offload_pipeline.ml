(* FPGA offload as a P4 pipeline.

   Patchwork's capture pre-processing (filter / sample / truncate /
   anonymize) is compiled onto the Alveo NIC as a P4 match-action
   program.  This example builds that pipeline from a user-level filter
   expression, pushes a synthetic mixed-traffic stream through it, and
   reads back the table counters — exactly the debugging view a P4
   developer gets from the target.

   Run with: dune exec examples/offload_pipeline.exe *)

module P4 = Hostmodel.P4_pipeline

let () =
  let filter_expr = "tcp and port 443 and not vlan 999" in
  let filter =
    match Packet.Filter.parse filter_expr with
    | Ok f -> f
    | Error m -> failwith m
  in
  Printf.printf "compiling %S onto the NIC...\n" filter_expr;
  let anonymizer = Hostmodel.Anonymize.create ~key:2024 in
  let pipeline =
    P4.Compile.of_filter ~truncation:128 ~sample_1_in:4 ~anonymizer filter
  in
  Printf.printf "pipeline has %d stages (filter -> sample -> edit)\n\n"
    (P4.stage_count pipeline);
  (* A mixed stream: TLS flows we want, other traffic we don't. *)
  let rng = Netcore.Rng.create 9 in
  let services = [| "tls"; "tls"; "ssh"; "dns"; "iperf3" |] in
  let forwarded = ref 0 and bytes = ref 0 in
  for i = 1 to 4000 do
    let service =
      Option.get (Dissect.Services.by_name services.(i mod Array.length services))
    in
    let stack =
      Traffic.Stack_builder.forward rng
        {
          Traffic.Stack_builder.vlan_id = (if i mod 17 = 0 then 999 else 100);
          mpls_labels = [ 48000 ];
          use_pseudowire = false;
          use_vxlan = false;
          use_ipv6 = false;
          service;
        }
    in
    let frame = Packet.Frame.make stack ~payload_len:(Netcore.Rng.int rng 1400) in
    let verdict = P4.process pipeline frame in
    match verdict.P4.frame with
    | Some _ ->
      incr forwarded;
      bytes := !bytes + verdict.P4.forwarded_bytes
    | None -> ()
  done;
  Printf.printf "forwarded %d frames (%d bytes) to the host DPDK writer\n\n"
    !forwarded !bytes;
  print_endline "pipeline counters:";
  List.iter
    (fun (name, v) -> Printf.printf "  %-18s %d\n" name v)
    (P4.counters pipeline);
  (* The host sees 1 in 4 of the matching frames, truncated to 128B,
     with anonymized addresses: *)
  Printf.printf "\nhost-side relief vs raw mirror: %.1f%% of frames, <=128B each\n"
    (100.0 *. float_of_int !forwarded /. 4000.0)
