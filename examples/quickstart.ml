(* Quickstart: profile your own experiment (single-experiment mode).

   A researcher runs an iperf-style transfer between two of their VMs
   and wants to see what their traffic looks like on the wire.  We
   create the federation, attach the researcher's flow to the switch
   ports their slice uses, and run Patchwork in single-experiment mode
   against exactly those ports.  The captures come back as both acap
   records and a real pcap file.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A simulated federation; on real FABRIC this is the testbed itself. *)
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed:42 engine in
  let driver = Traffic.Driver.create fabric ~seed:42 in
  let site =
    (List.hd (Testbed.Info_model.profilable_sites (Testbed.Fablib.model fabric)))
      .Testbed.Info_model.name
  in
  (* "My slice": two VMs on this site exchanging a 2 Gbps TCP stream. *)
  let my_ports =
    match Testbed.Fablib.downlink_ports fabric ~site with
    | a :: b :: _ -> [ a; b ]
    | _ -> failwith "site too small"
  in
  Printf.printf "my slice: site %s, ports %s\n" site
    (String.concat ", " (List.map string_of_int my_ports));
  let rng = Netcore.Rng.create 1 in
  let template =
    Traffic.Stack_builder.forward rng
      {
        Traffic.Stack_builder.vlan_id = 1234;
        mpls_labels = [ 400100 ];
        use_pseudowire = false;
        use_vxlan = false;
        use_ipv6 = false;
        service = Option.get (Dissect.Services.by_name "iperf3");
      }
  in
  let spec =
    Traffic.Flow_model.make ~flow_id:999_000 ~template
      ~frame_size:(Netcore.Dist.Empirical [| (0.9, 1948.0); (0.1, 66.0) |])
      ~avg_frame_size:1760.0
      ~byte_rate:(2e9 /. 8.0)
      ~start_time:0.0 ~duration:86400.0 ()
  in
  let sw = Testbed.Fablib.switch fabric ~site in
  let src, dst = (List.nth my_ports 0, List.nth my_ports 1) in
  Testbed.Switch.attach_flow sw ~port:src ~dir:Testbed.Switch.Rx
    ~byte_rate:spec.Traffic.Flow_model.byte_rate
    ~frame_rate:(Traffic.Flow_model.frame_rate spec) ~flow:999_000;
  Testbed.Switch.attach_flow sw ~port:dst ~dir:Testbed.Switch.Tx
    ~byte_rate:spec.Traffic.Flow_model.byte_rate
    ~frame_rate:(Traffic.Flow_model.frame_rate spec) ~flow:999_000;
  let resolver flow =
    if flow = 999_000 then Some spec else Traffic.Driver.resolver driver flow
  in
  (* Patchwork in single-experiment mode over my ports, with pcap
     output and a capture filter for my TCP stream only. *)
  let config =
    {
      Patchwork.Config.default with
      Patchwork.Config.mode = Patchwork.Config.Single_experiment [ (site, my_ports) ];
      port_selection = Patchwork.Config.Fixed_ports my_ports;
      samples_per_run = 3;
      emit_pcap = true;
      max_frames_per_sample = 3_000;
      filter =
        (match Packet.Filter.parse "tcp and vlan 1234" with
        | Ok f -> f
        | Error m -> failwith m);
    }
  in
  (* run_occasion uses the traffic driver's resolver; wrap it so our
     hand-made flow resolves too by sampling captures directly. *)
  Testbed.Fablib.start_telemetry ~until:3600.0 fabric;
  Simcore.Engine.run ~until:601.0 engine;
  (match Testbed.Switch.add_mirror sw ~src_port:src ~dirs:Testbed.Switch.Both
           ~dst_port:(List.nth (Testbed.Fablib.downlink_ports fabric ~site) 2)
   with
  | Error m -> failwith m
  | Ok mirror ->
    let sample =
      Patchwork.Capture.run ~fabric ~resolver ~config ~rng:(Netcore.Rng.create 2)
        ~site ~mirror ~mirrored_port:src ()
    in
    Printf.printf "captured %d frames in a %.0fs sample (%.1f%% of offered)\n"
      (List.length sample.Patchwork.Capture.acaps)
      sample.Patchwork.Capture.sample_duration
      (100.0 *. sample.Patchwork.Capture.materialized_fraction);
    (* Write the pcap; tcpdump/Wireshark can open this file. *)
    (match sample.Patchwork.Capture.pcap with
    | Some buf ->
      let path = Filename.temp_file "quickstart" ".pcap" in
      let oc = open_out_bin path in
      output_bytes oc buf;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" path (Bytes.length buf)
    | None -> ());
    (* Inspect the traffic composition. *)
    let occ = Analysis.Analyze.occurrence sample.Patchwork.Capture.acaps in
    print_endline "traffic composition:";
    List.iter
      (fun (tok, pct) -> Printf.printf "  %-8s %6.1f%%\n" tok pct)
      occ;
    let h = Analysis.Analyze.frame_size_histogram sample.Patchwork.Capture.acaps in
    print_endline "frame sizes:";
    Array.iteri
      (fun i c ->
        if c > 0 then
          Printf.printf "  %-16s %d\n" (Netcore.Histogram.bin_label h i) c)
      (Netcore.Histogram.counts h))
