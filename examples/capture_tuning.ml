(* Capture-host tuning: explore how cores, truncation and the kernel's
   dirty-page thresholds change capture loss — the design space behind
   the paper's Tables 1-2 and Fig. 14.

   Run with: dune exec examples/capture_tuning.exe *)

module Dpdk = Hostmodel.Dpdk_path

let () =
  print_endline "How many cores do I need to capture 100 Gbps of 1514B frames?";
  Printf.printf "%-7s %-12s %-12s\n" "cores" "64B trunc" "200B trunc";
  List.iter
    (fun cores ->
      let loss trunc =
        let config = { Dpdk.default_config with Dpdk.cores; truncation = trunc } in
        (Dpdk.run config ~offered_rate:100e9 ~frame_size:1514 ~duration:10.0)
          .Dpdk.loss_percent
      in
      Printf.printf "%-7d %10.2f%% %10.2f%%\n" cores (loss 64) (loss 200))
    [ 1; 2; 3; 4; 5; 6; 8 ];
  print_endline "";
  print_endline "How do the vm.dirty thresholds change sustained capture at 60 Gbps of 512B frames?";
  Printf.printf "%-12s %-10s %-12s %-12s\n" "thresholds" "loss" "throttled(s)" "peak cache";
  List.iter
    (fun (bg, hard) ->
      let config =
        {
          Dpdk.default_config with
          Dpdk.cores = 15;
          dirty_background_ratio = bg;
          dirty_ratio = hard;
        }
      in
      let r = Dpdk.run config ~offered_rate:60e9 ~frame_size:512 ~duration:60.0 in
      Printf.printf "%3.0f:%-8.0f %8.2f%% %12.1f %11.1f%%\n" bg hard
        r.Dpdk.loss_percent r.Dpdk.throttled_seconds r.Dpdk.peak_cache_used_percent)
    [ (10.0, 20.0); (20.0, 50.0); (40.0, 60.0); (60.0, 80.0) ];
  print_endline "";
  print_endline "Offloading to the FPGA: host load after filter + 1-in-N sampling";
  Printf.printf "%-10s %-14s %-14s\n" "sample" "host pps" "host bytes/s";
  List.iter
    (fun n ->
      let config = { Hostmodel.Fpga_path.default_config with sample_1_in = n } in
      let pps, bps =
        Hostmodel.Fpga_path.host_relief config ~offered_pps:8.13e6
          ~avg_frame_size:1514.0
      in
      Printf.printf "1-in-%-5d %12.2e %12.2e\n" n pps bps)
    [ 1; 2; 8; 32 ]
