module Engine = Simcore.Engine
module Timeseries = Simcore.Timeseries

let test_engine_ordering () =
  let engine = Engine.create () in
  let order = ref [] in
  Engine.schedule engine ~delay:3.0 (fun _ -> order := "c" :: !order);
  Engine.schedule engine ~delay:1.0 (fun _ -> order := "a" :: !order);
  Engine.schedule engine ~delay:2.0 (fun _ -> order := "b" :: !order);
  Engine.run engine;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order)

let test_engine_fifo_ties () =
  let engine = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Engine.schedule engine ~delay:1.0 (fun _ -> order := i :: !order)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_clock_advances () =
  let engine = Engine.create ~start_time:100.0 () in
  let seen = ref 0.0 in
  Engine.schedule engine ~delay:5.5 (fun e -> seen := Engine.now e);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "clock at event" 105.5 !seen;
  Alcotest.(check (float 1e-9)) "clock after run" 105.5 (Engine.now engine)

let test_engine_run_until () =
  let engine = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Engine.schedule engine ~delay:d (fun _ -> fired := d :: !fired))
    [ 1.0; 2.0; 10.0 ];
  Engine.run ~until:5.0 engine;
  Alcotest.(check (list (float 1e-9))) "only early events" [ 1.0; 2.0 ] (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock clamped" 5.0 (Engine.now engine);
  Alcotest.(check int) "one pending" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "late event fires" 3 (List.length !fired)

let test_engine_nested_scheduling () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec tick e =
    incr count;
    if !count < 10 then Engine.schedule e ~delay:1.0 tick
  in
  Engine.schedule engine ~delay:1.0 tick;
  Engine.run engine;
  Alcotest.(check int) "chain of 10" 10 !count;
  Alcotest.(check (float 1e-9)) "final time" 10.0 (Engine.now engine)

let test_engine_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule_id engine ~delay:1.0 (fun _ -> fired := true) in
  Engine.cancel engine id;
  Engine.run engine;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_negative_delay_rejected () =
  let engine = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule engine ~delay:(-1.0) (fun _ -> ()))

let test_engine_every () =
  let engine = Engine.create () in
  let ticks = ref 0 in
  Engine.every engine ~period:2.0 ~until:9.0 (fun _ -> incr ticks);
  Engine.run ~until:30.0 engine;
  (* Fires at 2,4,6,8 and once more at 10 (checked against until before
     running); run is bounded anyway. *)
  Alcotest.(check bool) "about 4-5 ticks" true (!ticks >= 4 && !ticks <= 5)

(* --- batched scheduling --- *)

(* The contract: a schedule_batch block consumes sequence numbers
   exactly like the equivalent loop of per-event schedules, so any mix
   of batches and singles fires in an order bit-identical to the fully
   per-event program. *)
let test_engine_batch_equals_per_event () =
  let rng = Netcore.Rng.create 31 in
  (* A randomized program of singles and ascending-time batches. *)
  let program =
    List.init 40 (fun _ ->
        if Netcore.Rng.bool rng then `Single (Netcore.Rng.float rng *. 100.0)
        else begin
          let n = 1 + Netcore.Rng.int rng 6 in
          let start = Netcore.Rng.float rng *. 100.0 in
          let times =
            Array.make n start
          in
          for i = 1 to n - 1 do
            times.(i) <- times.(i - 1) +. (Netcore.Rng.float rng *. 10.0)
          done;
          `Batch times
        end)
  in
  let run ~batched =
    let engine = Engine.create () in
    let trace = ref [] in
    let tag = ref 0 in
    List.iter
      (fun step ->
        let k = !tag in
        incr tag;
        match step with
        | `Single t ->
          Engine.schedule engine ~delay:t (fun e ->
              trace := (k, -1, Engine.now e) :: !trace)
        | `Batch times ->
          if batched then
            ignore
              (Engine.schedule_batch engine ~times (fun e i ->
                   trace := (k, i, Engine.now e) :: !trace))
          else
            Array.iteri
              (fun i t ->
                Engine.schedule_at engine ~time:t (fun e ->
                    trace := (k, i, Engine.now e) :: !trace))
              times)
      program;
    Engine.run engine;
    List.rev !trace
  in
  Alcotest.(check bool) "batched trace ≡ per-event trace" true
    (run ~batched:true = run ~batched:false)

let test_engine_batch_ties_interleave () =
  (* Equal times across a batch, a single, and a second batch fire in
     scheduling order, exactly as per-event scheduling would. *)
  let engine = Engine.create () in
  let order = ref [] in
  ignore
    (Engine.schedule_batch engine ~times:[| 1.0; 1.0 |] (fun _ i ->
         order := Printf.sprintf "a%d" i :: !order));
  Engine.schedule engine ~delay:1.0 (fun _ -> order := "s" :: !order);
  ignore
    (Engine.schedule_batch engine ~times:[| 1.0 |] (fun _ i ->
         order := Printf.sprintf "b%d" i :: !order));
  Engine.run engine;
  Alcotest.(check (list string)) "fifo across batches and singles"
    [ "a0"; "a1"; "s"; "b0" ] (List.rev !order)

let test_engine_batch_cancellation () =
  let engine = Engine.create () in
  let fired = ref [] in
  let id0 =
    Engine.schedule_batch engine ~times:[| 1.0; 2.0; 3.0; 4.0 |] (fun _ i ->
        fired := i :: !fired)
  in
  (* Cancel the 2nd and 4th batch events by id = id0 + i, and a single
     scheduled in between. *)
  let sid = Engine.schedule_id engine ~delay:2.5 (fun _ -> fired := 99 :: !fired) in
  Engine.cancel engine (id0 + 1);
  Engine.cancel engine (id0 + 3);
  Engine.cancel engine sid;
  Engine.run engine;
  Alcotest.(check (list int)) "only uncancelled batch events" [ 0; 2 ]
    (List.rev !fired);
  Alcotest.(check int) "executed counts cancelled deliveries" 5
    (Engine.executed engine);
  Alcotest.(check int) "batched_total" 4 (Engine.batched_total engine)

let test_engine_batch_pending_and_run_until () =
  let engine = Engine.create () in
  ignore
    (Engine.schedule_batch engine ~times:[| 1.0; 2.0; 10.0 |] (fun _ _ -> ()));
  Engine.schedule engine ~delay:5.0 (fun _ -> ());
  Alcotest.(check int) "pending counts batch events" 4 (Engine.pending engine);
  Engine.run ~until:6.0 engine;
  Alcotest.(check int) "late batch event still pending" 1 (Engine.pending engine);
  Alcotest.(check (float 1e-9)) "clock clamped" 6.0 (Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "drained" 0 (Engine.pending engine)

let test_engine_batch_validation () =
  let engine = Engine.create () in
  Alcotest.check_raises "descending times"
    (Invalid_argument "Engine.schedule_batch: times not ascending") (fun () ->
      ignore (Engine.schedule_batch engine ~times:[| 2.0; 1.0 |] (fun _ _ -> ())));
  Engine.schedule engine ~delay:5.0 (fun _ -> ());
  Engine.run engine;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_batch: time in the past") (fun () ->
      ignore (Engine.schedule_batch engine ~times:[| 1.0 |] (fun _ _ -> ())));
  (* Empty batches are a no-op and must not consume sequence numbers:
     two ties scheduled around one still fire in order. *)
  let order = ref [] in
  Engine.schedule engine ~delay:1.0 (fun _ -> order := 1 :: !order);
  ignore (Engine.schedule_batch engine ~times:[||] (fun _ _ -> ()));
  Engine.schedule engine ~delay:1.0 (fun _ -> order := 2 :: !order);
  Engine.run engine;
  Alcotest.(check (list int)) "no-op empty batch" [ 1; 2 ] (List.rev !order)

let test_engine_heap_stress () =
  let engine = Engine.create () in
  let rng = Netcore.Rng.create 99 in
  let last = ref 0.0 and count = ref 0 in
  for _ = 1 to 10_000 do
    let d = Netcore.Rng.float rng *. 1000.0 in
    Engine.schedule engine ~delay:d (fun e ->
        incr count;
        let now = Engine.now e in
        Alcotest.(check bool) "monotonic" true (now >= !last);
        last := now)
  done;
  Engine.run engine;
  Alcotest.(check int) "all fired" 10_000 !count

(* --- Timeseries --- *)

let test_ts_append_and_range () =
  let ts = Timeseries.create () in
  for i = 0 to 9 do
    Timeseries.append ts ~key:"a" ~time:(float_of_int i) (float_of_int (i * i))
  done;
  Alcotest.(check int) "length" 10 (Timeseries.length ts ~key:"a");
  let r = Timeseries.range ts ~key:"a" ~start_time:3.0 ~end_time:6.0 in
  Alcotest.(check int) "range size" 4 (List.length r);
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9)))) "last"
    (Some (9.0, 81.0)) (Timeseries.last ts ~key:"a")

let test_ts_monotonic_enforced () =
  let ts = Timeseries.create () in
  Timeseries.append ts ~key:"a" ~time:5.0 1.0;
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Timeseries.append: time went backwards") (fun () ->
      Timeseries.append ts ~key:"a" ~time:4.0 2.0)

let test_ts_rate () =
  let ts = Timeseries.create () in
  (* Counter increasing 100 bytes/s. *)
  for i = 0 to 10 do
    Timeseries.append ts ~key:"ctr" ~time:(float_of_int (i * 10))
      (float_of_int (i * 1000))
  done;
  match Timeseries.rate ts ~key:"ctr" ~window:50.0 ~at:100.0 with
  | None -> Alcotest.fail "expected a rate"
  | Some r -> Alcotest.(check (float 1e-6)) "rate" 100.0 r

let test_ts_rate_insufficient () =
  let ts = Timeseries.create () in
  Timeseries.append ts ~key:"x" ~time:0.0 5.0;
  Alcotest.(check (option (float 1.0))) "one sample" None
    (Timeseries.rate ts ~key:"x" ~window:10.0 ~at:5.0);
  Alcotest.(check (option (float 1.0))) "missing key" None
    (Timeseries.rate ts ~key:"y" ~window:10.0 ~at:5.0)

let test_ts_keys () =
  let ts = Timeseries.create () in
  Timeseries.append ts ~key:"b" ~time:0.0 0.0;
  Timeseries.append ts ~key:"a" ~time:0.0 0.0;
  Alcotest.(check (list string)) "sorted keys" [ "a"; "b" ] (Timeseries.keys ts)

let suites =
  [
    ( "simcore.engine",
      [
        Alcotest.test_case "event ordering" `Quick test_engine_ordering;
        Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
        Alcotest.test_case "clock advance" `Quick test_engine_clock_advances;
        Alcotest.test_case "run until" `Quick test_engine_run_until;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_rejected;
        Alcotest.test_case "every" `Quick test_engine_every;
        Alcotest.test_case "heap stress" `Quick test_engine_heap_stress;
        Alcotest.test_case "batch ≡ per-event" `Quick
          test_engine_batch_equals_per_event;
        Alcotest.test_case "batch fifo ties" `Quick
          test_engine_batch_ties_interleave;
        Alcotest.test_case "batch cancellation" `Quick
          test_engine_batch_cancellation;
        Alcotest.test_case "batch pending / run until" `Quick
          test_engine_batch_pending_and_run_until;
        Alcotest.test_case "batch validation" `Quick
          test_engine_batch_validation;
      ] );
    ( "simcore.timeseries",
      [
        Alcotest.test_case "append and range" `Quick test_ts_append_and_range;
        Alcotest.test_case "monotonic time" `Quick test_ts_monotonic_enforced;
        Alcotest.test_case "counter rate" `Quick test_ts_rate;
        Alcotest.test_case "rate edge cases" `Quick test_ts_rate_insufficient;
        Alcotest.test_case "sorted keys" `Quick test_ts_keys;
      ] );
  ]
