module Engine = Simcore.Engine
module Timeseries = Simcore.Timeseries

let test_engine_ordering () =
  let engine = Engine.create () in
  let order = ref [] in
  Engine.schedule engine ~delay:3.0 (fun _ -> order := "c" :: !order);
  Engine.schedule engine ~delay:1.0 (fun _ -> order := "a" :: !order);
  Engine.schedule engine ~delay:2.0 (fun _ -> order := "b" :: !order);
  Engine.run engine;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order)

let test_engine_fifo_ties () =
  let engine = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Engine.schedule engine ~delay:1.0 (fun _ -> order := i :: !order)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_clock_advances () =
  let engine = Engine.create ~start_time:100.0 () in
  let seen = ref 0.0 in
  Engine.schedule engine ~delay:5.5 (fun e -> seen := Engine.now e);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "clock at event" 105.5 !seen;
  Alcotest.(check (float 1e-9)) "clock after run" 105.5 (Engine.now engine)

let test_engine_run_until () =
  let engine = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Engine.schedule engine ~delay:d (fun _ -> fired := d :: !fired))
    [ 1.0; 2.0; 10.0 ];
  Engine.run ~until:5.0 engine;
  Alcotest.(check (list (float 1e-9))) "only early events" [ 1.0; 2.0 ] (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock clamped" 5.0 (Engine.now engine);
  Alcotest.(check int) "one pending" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "late event fires" 3 (List.length !fired)

let test_engine_nested_scheduling () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec tick e =
    incr count;
    if !count < 10 then Engine.schedule e ~delay:1.0 tick
  in
  Engine.schedule engine ~delay:1.0 tick;
  Engine.run engine;
  Alcotest.(check int) "chain of 10" 10 !count;
  Alcotest.(check (float 1e-9)) "final time" 10.0 (Engine.now engine)

let test_engine_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule_id engine ~delay:1.0 (fun _ -> fired := true) in
  Engine.cancel engine id;
  Engine.run engine;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_negative_delay_rejected () =
  let engine = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule engine ~delay:(-1.0) (fun _ -> ()))

let test_engine_every () =
  let engine = Engine.create () in
  let ticks = ref 0 in
  Engine.every engine ~period:2.0 ~until:9.0 (fun _ -> incr ticks);
  Engine.run ~until:30.0 engine;
  (* Fires at 2,4,6,8 and once more at 10 (checked against until before
     running); run is bounded anyway. *)
  Alcotest.(check bool) "about 4-5 ticks" true (!ticks >= 4 && !ticks <= 5)

let test_engine_heap_stress () =
  let engine = Engine.create () in
  let rng = Netcore.Rng.create 99 in
  let last = ref 0.0 and count = ref 0 in
  for _ = 1 to 10_000 do
    let d = Netcore.Rng.float rng *. 1000.0 in
    Engine.schedule engine ~delay:d (fun e ->
        incr count;
        let now = Engine.now e in
        Alcotest.(check bool) "monotonic" true (now >= !last);
        last := now)
  done;
  Engine.run engine;
  Alcotest.(check int) "all fired" 10_000 !count

(* --- Timeseries --- *)

let test_ts_append_and_range () =
  let ts = Timeseries.create () in
  for i = 0 to 9 do
    Timeseries.append ts ~key:"a" ~time:(float_of_int i) (float_of_int (i * i))
  done;
  Alcotest.(check int) "length" 10 (Timeseries.length ts ~key:"a");
  let r = Timeseries.range ts ~key:"a" ~start_time:3.0 ~end_time:6.0 in
  Alcotest.(check int) "range size" 4 (List.length r);
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9)))) "last"
    (Some (9.0, 81.0)) (Timeseries.last ts ~key:"a")

let test_ts_monotonic_enforced () =
  let ts = Timeseries.create () in
  Timeseries.append ts ~key:"a" ~time:5.0 1.0;
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Timeseries.append: time went backwards") (fun () ->
      Timeseries.append ts ~key:"a" ~time:4.0 2.0)

let test_ts_rate () =
  let ts = Timeseries.create () in
  (* Counter increasing 100 bytes/s. *)
  for i = 0 to 10 do
    Timeseries.append ts ~key:"ctr" ~time:(float_of_int (i * 10))
      (float_of_int (i * 1000))
  done;
  match Timeseries.rate ts ~key:"ctr" ~window:50.0 ~at:100.0 with
  | None -> Alcotest.fail "expected a rate"
  | Some r -> Alcotest.(check (float 1e-6)) "rate" 100.0 r

let test_ts_rate_insufficient () =
  let ts = Timeseries.create () in
  Timeseries.append ts ~key:"x" ~time:0.0 5.0;
  Alcotest.(check (option (float 1.0))) "one sample" None
    (Timeseries.rate ts ~key:"x" ~window:10.0 ~at:5.0);
  Alcotest.(check (option (float 1.0))) "missing key" None
    (Timeseries.rate ts ~key:"y" ~window:10.0 ~at:5.0)

let test_ts_keys () =
  let ts = Timeseries.create () in
  Timeseries.append ts ~key:"b" ~time:0.0 0.0;
  Timeseries.append ts ~key:"a" ~time:0.0 0.0;
  Alcotest.(check (list string)) "sorted keys" [ "a"; "b" ] (Timeseries.keys ts)

let suites =
  [
    ( "simcore.engine",
      [
        Alcotest.test_case "event ordering" `Quick test_engine_ordering;
        Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
        Alcotest.test_case "clock advance" `Quick test_engine_clock_advances;
        Alcotest.test_case "run until" `Quick test_engine_run_until;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_rejected;
        Alcotest.test_case "every" `Quick test_engine_every;
        Alcotest.test_case "heap stress" `Quick test_engine_heap_stress;
      ] );
    ( "simcore.timeseries",
      [
        Alcotest.test_case "append and range" `Quick test_ts_append_and_range;
        Alcotest.test_case "monotonic time" `Quick test_ts_monotonic_enforced;
        Alcotest.test_case "counter rate" `Quick test_ts_rate;
        Alcotest.test_case "rate edge cases" `Quick test_ts_rate_insufficient;
        Alcotest.test_case "sorted keys" `Quick test_ts_keys;
      ] );
  ]
