(* QCheck generators for frames, shared across test modules. *)

open Packet
module H = Headers

let rng_of_seed seed = Netcore.Rng.create seed

let random_ipv4 rng =
  Netcore.Ipv4_addr.random_in rng
    ~prefix:(Netcore.Ipv4_addr.of_string "10.0.0.0")
    ~prefix_len:8

let random_ipv6 rng =
  Netcore.Ipv6_addr.random_in rng
    ~prefix:(Netcore.Ipv6_addr.of_string "2001:db8::")
    ~prefix_len:32

let ethernet rng : H.header =
  H.Ethernet { src = Netcore.Mac.random rng; dst = Netcore.Mac.random rng }

let vlan rng : H.header =
  H.Vlan { pcp = Netcore.Rng.int rng 8; dei = false; vid = 1 + Netcore.Rng.int rng 4094 }

let mpls rng : H.header =
  H.Mpls
    { label = 16 + Netcore.Rng.int rng 100_000; tc = Netcore.Rng.int rng 8;
      ttl = 32 + Netcore.Rng.int rng 200 }

let ipv4 rng : H.header =
  H.Ipv4
    { src = random_ipv4 rng; dst = random_ipv4 rng; dscp = Netcore.Rng.int rng 64;
      ttl = 16 + Netcore.Rng.int rng 200; ident = Netcore.Rng.int rng 65536;
      dont_fragment = Netcore.Rng.bool rng }

let ipv6 rng : H.header =
  H.Ipv6
    { src = random_ipv6 rng; dst = random_ipv6 rng;
      traffic_class = Netcore.Rng.int rng 256;
      flow_label = Netcore.Rng.int rng 0x100000;
      hop_limit = 16 + Netcore.Rng.int rng 200 }

(* App headers are classified by well-known destination port during
   dissection, so the port must be consistent with the app layer. *)
let tcp_for rng (app : H.header option) : H.header =
  let dst_port =
    match app with
    | Some a -> Option.get (H.well_known_port a)
    | None -> 1024 + Netcore.Rng.int rng 60000
  in
  H.Tcp
    { src_port = 32768 + Netcore.Rng.int rng 28000; dst_port;
      seq = Int64.to_int32 (Netcore.Rng.bits64 rng);
      ack_seq = Int64.to_int32 (Netcore.Rng.bits64 rng);
      flags = H.flags_psh_ack; window = Netcore.Rng.int rng 65536 }

let udp_for rng (app : H.header option) : H.header =
  let dst_port =
    match app with
    | Some a -> Option.get (H.well_known_port a)
    | None -> 1024 + Netcore.Rng.int rng 60000
  in
  H.Udp { src_port = 32768 + Netcore.Rng.int rng 28000; dst_port }

let tcp_app rng : H.header =
  Netcore.Rng.choice rng
    [| H.Tls { content_type = 23 }; H.Ssh; H.Http `Request; H.Http `Response |]

let udp_app rng : H.header =
  Netcore.Rng.choice rng
    [| H.Dns { query = true; id = Netcore.Rng.int rng 65536 }; H.Ntp; H.Quic |]

(* A random well-formed stack with FABRIC-style encapsulation. *)
let random_stack rng =
  let tags =
    let base = if Netcore.Rng.bernoulli rng 0.8 then [ vlan rng ] else [] in
    let mpls_count = Netcore.Rng.int rng 3 in
    base @ List.init mpls_count (fun _ -> mpls rng)
  in
  let has_mpls = List.exists (function H.Mpls _ -> true | _ -> false) tags in
  let pw_wrap =
    (* PseudoWire needs an MPLS tunnel above it. *)
    has_mpls && Netcore.Rng.bernoulli rng 0.4
  in
  let inner =
    let use_v6 = Netcore.Rng.bernoulli rng 0.1 in
    let l3 = if use_v6 then ipv6 rng else ipv4 rng in
    if Netcore.Rng.bernoulli rng 0.75 then begin
      let app = if Netcore.Rng.bernoulli rng 0.6 then Some (tcp_app rng) else None in
      [ l3; tcp_for rng app ] @ Option.to_list app
    end
    else begin
      let app = if Netcore.Rng.bernoulli rng 0.5 then Some (udp_app rng) else None in
      [ l3; udp_for rng app ] @ Option.to_list app
    end
  in
  if pw_wrap then (ethernet rng :: tags) @ (H.Pseudowire :: ethernet rng :: inner)
  else (ethernet rng :: tags) @ inner

let random_frame ?(max_payload = 1400) rng =
  let stack = random_stack rng in
  let payload_len = Netcore.Rng.int rng (max_payload + 1) in
  Frame.make stack ~payload_len

(* QCheck arbitrary: frames derived from an integer seed so shrinking
   stays meaningful. *)
let frame_arb ?max_payload () =
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Frame.pp f)
    (QCheck.Gen.map
       (fun seed -> random_frame ?max_payload (rng_of_seed seed))
       QCheck.Gen.small_int)
