module Config = Patchwork.Config
module Port_cycling = Patchwork.Port_cycling
module Backoff = Patchwork.Backoff
module Logging = Patchwork.Logging
module Capture = Patchwork.Capture
module Instance = Patchwork.Instance
module Coordinator = Patchwork.Coordinator
module Fablib = Testbed.Fablib
module Switch = Testbed.Switch
module Allocator = Testbed.Allocator
module Info_model = Testbed.Info_model

(* --- Config --- *)

let test_config_default_valid () =
  match Config.validate Config.default with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_config_rejections () =
  let bad =
    [
      { Config.default with Config.sample_duration = 0.0 };
      { Config.default with Config.sample_interval = 1.0 };
      { Config.default with Config.samples_per_run = 0 };
      { Config.default with Config.truncation = 0 };
      { Config.default with Config.port_selection = Config.Busiest_bias 1 };
      { Config.default with Config.port_selection = Config.Fixed_ports [] };
      { Config.default with Config.capture_method = Config.Dpdk { cores = 0 } };
    ]
  in
  List.iter
    (fun c ->
      match Config.validate c with
      | Ok () -> Alcotest.fail "invalid config accepted"
      | Error _ -> ())
    bad

(* --- Port cycling --- *)

let telemetry_with_rates rates =
  (* Build a telemetry store where port i of site "S" has the given
     byte rate. *)
  let engine = Simcore.Engine.create () in
  let sw = Testbed.Switch.create engine ~site_name:"S" ~ports:(List.length rates)
      ~line_rate:100e9
  in
  let tel = Testbed.Telemetry.create engine in
  Testbed.Telemetry.register_switch tel sw;
  List.iteri
    (fun port rate ->
      if rate > 0.0 then
        Testbed.Switch.attach_flow sw ~port ~dir:Testbed.Switch.Tx ~byte_rate:rate
          ~frame_rate:(rate /. 1000.0) ~flow:port)
    rates;
  Testbed.Telemetry.start ~until:1800.0 tel;
  Simcore.Engine.run ~until:1800.0 engine;
  tel

let test_cycling_fixed_round_robin () =
  let rng = Netcore.Rng.create 1 in
  let tel = telemetry_with_rates [ 0.0; 0.0; 0.0; 0.0 ] in
  let pc =
    Port_cycling.create (Config.Fixed_ports [ 1; 3 ]) ~rng ~site:"S"
      ~candidates:[ 0; 1; 2; 3 ] ~uplinks:[ 0 ]
  in
  let picks =
    List.init 4 (fun _ -> Port_cycling.next pc ~telemetry:tel ~window:1800.0 ~at:1800.0)
  in
  Alcotest.(check (list (option int))) "round robin over fixed"
    [ Some 1; Some 3; Some 1; Some 3 ] picks

let test_cycling_uplinks_only () =
  let rng = Netcore.Rng.create 1 in
  let tel = telemetry_with_rates [ 0.0; 0.0; 0.0; 0.0 ] in
  let pc =
    Port_cycling.create Config.Uplinks_only ~rng ~site:"S" ~candidates:[ 0; 1; 2; 3 ]
      ~uplinks:[ 0; 1 ]
  in
  for _ = 1 to 6 do
    match Port_cycling.next pc ~telemetry:tel ~window:1800.0 ~at:1800.0 with
    | Some p -> Alcotest.(check bool) "uplink" true (p = 0 || p = 1)
    | None -> Alcotest.fail "expected a port"
  done

let test_cycling_busiest_bias_prefers_active () =
  let rng = Netcore.Rng.create 2 in
  (* Port 2 busy, port 0 mildly active, others idle. *)
  let tel = telemetry_with_rates [ 1e3; 0.0; 1e9; 0.0 ] in
  let pc =
    Port_cycling.create (Config.Busiest_bias 4) ~rng ~site:"S"
      ~candidates:[ 0; 1; 2; 3 ] ~uplinks:[]
  in
  let picks =
    List.init 40 (fun _ ->
        Port_cycling.next pc ~telemetry:tel ~window:1800.0 ~at:1800.0)
  in
  List.iter
    (function
      | Some p -> Alcotest.(check bool) "only non-idle ports" true (p = 0 || p = 2)
      | None -> Alcotest.fail "expected a port")
    picks

let test_cycling_empty_candidates () =
  let rng = Netcore.Rng.create 3 in
  let tel = telemetry_with_rates [ 0.0 ] in
  let pc =
    Port_cycling.create Config.All_ports_round_robin ~rng ~site:"S" ~candidates:[]
      ~uplinks:[]
  in
  Alcotest.(check (option int)) "no ports" None
    (Port_cycling.next pc ~telemetry:tel ~window:1800.0 ~at:1800.0)

let test_cycling_round_robin_covers_all () =
  let rng = Netcore.Rng.create 4 in
  let tel = telemetry_with_rates [ 0.0; 0.0; 0.0 ] in
  let pc =
    Port_cycling.create Config.All_ports_round_robin ~rng ~site:"S"
      ~candidates:[ 0; 1; 2 ] ~uplinks:[]
  in
  let picks =
    List.filter_map
      (fun _ -> Port_cycling.next pc ~telemetry:tel ~window:1800.0 ~at:1800.0)
      (List.init 6 Fun.id)
  in
  Alcotest.(check (list int)) "covers all including idle" [ 0; 1; 2; 0; 1; 2 ] picks

(* --- Backoff --- *)

let make_fabric ?(seed = 8) () =
  let engine = Simcore.Engine.create () in
  let fabric = Fablib.create ~seed engine in
  (engine, fabric)

let profilable fabric =
  (List.hd (Info_model.profilable_sites (Fablib.model fabric))).Info_model.name

let test_backoff_full_acquisition () =
  let _, fabric = make_fabric () in
  let site = profilable fabric in
  let log = Logging.create () in
  match
    Backoff.acquire (Fablib.allocator fabric) ~log ~time:0.0 ~site
      ~desired_instances:1 ()
  with
  | Backoff.Acquired { instances; degraded; _ } ->
    Alcotest.(check int) "one instance" 1 instances;
    Alcotest.(check bool) "not degraded" false degraded
  | Backoff.No_resources | Backoff.Backend_failed _ -> Alcotest.fail "should acquire"

let test_backoff_scales_down () =
  let _, fabric = make_fabric () in
  let site = profilable fabric in
  let avail =
    (Allocator.available (Fablib.allocator fabric) ~site).Allocator.avail_dedicated_nics
  in
  let log = Logging.create () in
  match
    Backoff.acquire (Fablib.allocator fabric) ~log ~time:0.0 ~site
      ~desired_instances:(avail + 3) ()
  with
  | Backoff.Acquired { instances; degraded; _ } ->
    Alcotest.(check int) "backed off to availability" avail instances;
    Alcotest.(check bool) "degraded" true degraded;
    Alcotest.(check bool) "warnings logged" true
      (Logging.count ~min_level:Logging.Warning log > 0)
  | Backoff.No_resources | Backoff.Backend_failed _ -> Alcotest.fail "should acquire"

let test_backoff_no_resources () =
  let _, fabric = make_fabric () in
  let site = profilable fabric in
  Allocator.set_external_utilization (Fablib.allocator fabric) ~site 1.0;
  let log = Logging.create () in
  match
    Backoff.acquire (Fablib.allocator fabric) ~log ~time:0.0 ~site
      ~desired_instances:2 ()
  with
  | Backoff.No_resources -> ()
  | Backoff.Acquired _ | Backoff.Backend_failed _ -> Alcotest.fail "expected no resources"

let test_backoff_backend_outage () =
  let _, fabric = make_fabric () in
  let site = profilable fabric in
  Allocator.set_outages (Fablib.allocator fabric) [ (0.0, 1e9) ];
  let log = Logging.create () in
  match
    Backoff.acquire (Fablib.allocator fabric) ~log ~time:0.0 ~site
      ~desired_instances:1 ()
  with
  | Backoff.Backend_failed _ -> ()
  | Backoff.Acquired _ | Backoff.No_resources -> Alcotest.fail "expected backend failure"

(* --- Capture on a live mirror --- *)

let with_busy_port f =
  let engine, fabric = make_fabric ~seed:12 () in
  let site = profilable fabric in
  let sw = Fablib.switch fabric ~site in
  let driver = Traffic.Driver.create fabric ~seed:12 in
  (* Attach a controlled flow directly instead of running the driver:
     deterministic rates. *)
  let template =
    Traffic.Stack_builder.forward (Netcore.Rng.create 1)
      {
        Traffic.Stack_builder.vlan_id = 100;
        mpls_labels = [ 5000 ];
        use_pseudowire = false;
        use_vxlan = false;
        use_ipv6 = false;
        service = Option.get (Dissect.Services.by_name "iperf3");
      }
  in
  let spec =
    Traffic.Flow_model.make ~flow_id:424242 ~template
      ~frame_size:(Netcore.Dist.Constant 1514.0) ~avg_frame_size:1514.0
      ~byte_rate:1e8 ~start_time:0.0 ~duration:3600.0 ()
  in
  let downlink = List.hd (Fablib.downlink_ports fabric ~site) in
  let nic_port = List.nth (Fablib.downlink_ports fabric ~site) 1 in
  Switch.attach_flow sw ~port:downlink ~dir:Switch.Rx ~byte_rate:1e8
    ~frame_rate:(Traffic.Flow_model.frame_rate spec) ~flow:424242;
  let resolver flow = if flow = 424242 then Some spec else Traffic.Driver.resolver driver flow in
  match Switch.add_mirror sw ~src_port:downlink ~dirs:Switch.Both ~dst_port:nic_port with
  | Error m -> Alcotest.fail m
  | Ok mirror -> f ~engine ~fabric ~site ~mirror ~port:downlink ~resolver

let test_capture_produces_acaps () =
  with_busy_port (fun ~engine:_ ~fabric ~site ~mirror ~port ~resolver ->
      let rng = Netcore.Rng.create 5 in
      let sample =
        Capture.run ~fabric ~resolver ~config:Config.default ~rng ~site ~mirror
          ~mirrored_port:port ()
      in
      let n = List.length sample.Capture.acaps in
      (* 1e8 B/s of 1514B frames for 20s ~ 1321 fps * 20 = 26k, capped at
         the 20k materialization budget. *)
      Alcotest.(check bool) "acaps produced" true (n > 15_000);
      Alcotest.(check bool) "within budget+slack" true (n < 25_000);
      Alcotest.(check bool) "offered counted" true
        (sample.Capture.stats.Capture.offered_frames > 20_000.0);
      Alcotest.(check bool) "no switch loss at 0.8 Gbps" true
        (sample.Capture.stats.Capture.switch_dropped = 0.0);
      Alcotest.(check bool) "no congestion flag" false
        sample.Capture.stats.Capture.congestion_detected;
      (* All materialized frames carry the flow's stack. *)
      List.iter
        (fun (r : Dissect.Acap.record) ->
          Alcotest.(check bool) "vlan tagged" true
            (List.mem "vlan" r.Dissect.Acap.stack))
        sample.Capture.acaps)

let test_capture_filter_restricts () =
  with_busy_port (fun ~engine:_ ~fabric ~site ~mirror ~port ~resolver ->
      let rng = Netcore.Rng.create 5 in
      let filter =
        match Packet.Filter.parse "udp" with Ok f -> f | Error m -> failwith m
      in
      let config = { Config.default with Config.filter } in
      let sample =
        Capture.run ~fabric ~resolver ~config ~rng ~site ~mirror ~mirrored_port:port
          ()
      in
      Alcotest.(check int) "tcp flow filtered out" 0
        (List.length sample.Capture.acaps))

let test_capture_emits_valid_pcap () =
  with_busy_port (fun ~engine:_ ~fabric ~site ~mirror ~port ~resolver ->
      let rng = Netcore.Rng.create 5 in
      let config =
        { Config.default with Config.emit_pcap = true; max_frames_per_sample = 500 }
      in
      let sample =
        Capture.run ~fabric ~resolver ~config ~rng ~site ~mirror ~mirrored_port:port
          ()
      in
      match sample.Capture.pcap with
      | None -> Alcotest.fail "expected pcap bytes"
      | Some buf ->
        let packets = Packet.Pcap.Reader.packets buf in
        Alcotest.(check int) "pcap matches acaps" (List.length sample.Capture.acaps)
          (List.length packets);
        (* Digesting the pcap yields the same stacks. *)
        let digested = List.map Dissect.Acap.of_packet packets in
        List.iter2
          (fun (a : Dissect.Acap.record) (b : Dissect.Acap.record) ->
            Alcotest.(check (list string)) "same stack" a.Dissect.Acap.stack
              b.Dissect.Acap.stack)
          sample.Capture.acaps digested)

let test_capture_anonymizes () =
  with_busy_port (fun ~engine:_ ~fabric ~site ~mirror ~port ~resolver ->
      let rng = Netcore.Rng.create 5 in
      let plain =
        Capture.run ~fabric ~resolver ~config:Config.default ~rng:(Netcore.Rng.copy rng)
          ~site ~mirror ~mirrored_port:port ()
      in
      let anon_config = { Config.default with Config.anonymize = true } in
      let anon =
        Capture.run ~fabric ~resolver ~config:anon_config ~rng:(Netcore.Rng.copy rng)
          ~site ~mirror ~mirrored_port:port ()
      in
      match (plain.Capture.acaps, anon.Capture.acaps) with
      | p :: _, a :: _ ->
        Alcotest.(check bool) "addresses differ" true
          (p.Dissect.Acap.src <> a.Dissect.Acap.src)
      | _ -> Alcotest.fail "expected records in both runs")

let test_capture_congestion_detection () =
  let engine, fabric = make_fabric ~seed:13 () in
  ignore engine;
  let site = profilable fabric in
  let sw = Fablib.switch fabric ~site in
  let driver = Traffic.Driver.create fabric ~seed:13 in
  let downlink = List.hd (Fablib.downlink_ports fabric ~site) in
  let nic_port = List.nth (Fablib.downlink_ports fabric ~site) 1 in
  (* Tx + Rx both at 70% of line rate: mirror target overloads. *)
  let line = Switch.line_rate sw /. 8.0 in
  Switch.attach_flow sw ~port:downlink ~dir:Switch.Rx ~byte_rate:(0.7 *. line)
    ~frame_rate:1e6 ~flow:1;
  Switch.attach_flow sw ~port:downlink ~dir:Switch.Tx ~byte_rate:(0.7 *. line)
    ~frame_rate:1e6 ~flow:2;
  match Switch.add_mirror sw ~src_port:downlink ~dirs:Switch.Both ~dst_port:nic_port with
  | Error m -> Alcotest.fail m
  | Ok mirror ->
    let rng = Netcore.Rng.create 5 in
    let sample =
      Capture.run ~fabric ~resolver:(Traffic.Driver.resolver driver)
        ~config:Config.default ~rng ~site ~mirror ~mirrored_port:downlink ()
    in
    Alcotest.(check bool) "congestion detected" true
      sample.Capture.stats.Capture.congestion_detected

(* --- Coordinator (single-experiment and all-experiment) --- *)

let test_coordinator_single_experiment_mode () =
  let engine, fabric = make_fabric ~seed:14 () in
  let driver = Traffic.Driver.create fabric ~seed:14 in
  let site = profilable fabric in
  let my_ports =
    match Fablib.downlink_ports fabric ~site with
    | a :: b :: _ -> [ a; b ]
    | _ -> Alcotest.fail "need two downlinks"
  in
  let config =
    {
      Config.default with
      Config.mode = Config.Single_experiment [ (site, my_ports) ];
      port_selection = Config.Fixed_ports my_ports;
      samples_per_run = 2;
      max_frames_per_sample = 2000;
    }
  in
  let report =
    Coordinator.run_occasion ~fabric ~driver ~config ~max_instances:1
      ~start_time:0.0 ~duration:3600.0 ()
  in
  ignore engine;
  Alcotest.(check int) "one site targeted" 1
    (List.length report.Coordinator.sites);
  let site_report = List.hd report.Coordinator.sites in
  List.iter
    (fun (s : Capture.sample) ->
      Alcotest.(check bool) "only my ports sampled" true
        (List.mem s.Capture.sample_port my_ports))
    site_report.Coordinator.site_samples

let test_coordinator_all_experiment_mode () =
  let _, fabric = make_fabric ~seed:15 () in
  let driver = Traffic.Driver.create fabric ~seed:15 in
  let config =
    { Config.default with Config.samples_per_run = 2; max_frames_per_sample = 500 }
  in
  let report =
    Coordinator.run_occasion ~fabric ~driver ~config ~max_instances:1
      ~start_time:0.0 ~duration:1900.0 ()
  in
  let n_sites = List.length report.Coordinator.sites in
  Alcotest.(check bool) "most sites targeted" true (n_sites >= 25);
  Alcotest.(check bool) "EDUKY skipped" true
    (not
       (List.exists
          (fun r -> r.Coordinator.report_site = "EDUKY")
          report.Coordinator.sites));
  let rate = Coordinator.success_rate [ report ] in
  Alcotest.(check bool) "mostly successful" true (rate > 0.8);
  (* Resources are yielded back after gathering. *)
  Alcotest.(check int) "slices released" 0
    (Allocator.active_slices (Fablib.allocator fabric))

let test_coordinator_outage_fails_sites () =
  let _, fabric = make_fabric ~seed:16 () in
  let driver = Traffic.Driver.create fabric ~seed:16 in
  Allocator.set_outages (Fablib.allocator fabric) [ (0.0, 1e9) ];
  let config =
    { Config.default with Config.samples_per_run = 1; max_frames_per_sample = 100 }
  in
  let report =
    Coordinator.run_occasion ~fabric ~driver ~config ~max_instances:1
      ~start_time:0.0 ~duration:1200.0 ()
  in
  Alcotest.(check (float 1e-9)) "nothing succeeds in an outage" 0.0
    (Coordinator.success_rate [ report ]);
  List.iter
    (fun r ->
      match r.Coordinator.outcome with
      | Coordinator.Site_failed _ -> ()
      | _ -> Alcotest.fail "expected failure")
    report.Coordinator.sites

(* --- Logging --- *)

let test_logging_order_and_count () =
  let log = Logging.create () in
  Logging.log log ~time:1.0 ~level:Logging.Info ~component:"a" "first";
  Logging.log log ~time:2.0 ~level:Logging.Error ~component:"b" "second";
  Logging.log log ~time:3.0 ~level:Logging.Warning ~component:"c" "third";
  let entries = Logging.entries log in
  Alcotest.(check int) "three entries" 3 (List.length entries);
  Alcotest.(check string) "oldest first" "first" (List.hd entries).Logging.event;
  Alcotest.(check int) "warnings and up" 2 (Logging.count ~min_level:Logging.Warning log);
  Alcotest.(check int) "errors" 1 (List.length (Logging.errors log))

let suites =
  [
    ( "patchwork.config",
      [
        Alcotest.test_case "default valid" `Quick test_config_default_valid;
        Alcotest.test_case "rejections" `Quick test_config_rejections;
      ] );
    ( "patchwork.port_cycling",
      [
        Alcotest.test_case "fixed round robin" `Quick test_cycling_fixed_round_robin;
        Alcotest.test_case "uplinks only" `Quick test_cycling_uplinks_only;
        Alcotest.test_case "busiest bias avoids idle" `Quick test_cycling_busiest_bias_prefers_active;
        Alcotest.test_case "empty candidates" `Quick test_cycling_empty_candidates;
        Alcotest.test_case "round robin covers idle" `Quick test_cycling_round_robin_covers_all;
      ] );
    ( "patchwork.backoff",
      [
        Alcotest.test_case "full acquisition" `Quick test_backoff_full_acquisition;
        Alcotest.test_case "scales down" `Quick test_backoff_scales_down;
        Alcotest.test_case "no resources" `Quick test_backoff_no_resources;
        Alcotest.test_case "backend outage" `Quick test_backoff_backend_outage;
      ] );
    ( "patchwork.capture",
      [
        Alcotest.test_case "produces acaps" `Quick test_capture_produces_acaps;
        Alcotest.test_case "filter restricts" `Quick test_capture_filter_restricts;
        Alcotest.test_case "valid pcap emitted" `Quick test_capture_emits_valid_pcap;
        Alcotest.test_case "anonymization" `Quick test_capture_anonymizes;
        Alcotest.test_case "congestion detection" `Quick test_capture_congestion_detection;
      ] );
    ( "patchwork.coordinator",
      [
        Alcotest.test_case "single-experiment mode" `Slow test_coordinator_single_experiment_mode;
        Alcotest.test_case "all-experiment mode" `Slow test_coordinator_all_experiment_mode;
        Alcotest.test_case "outage fails sites" `Slow test_coordinator_outage_fails_sites;
      ] );
    ( "patchwork.logging",
      [ Alcotest.test_case "order and counts" `Quick test_logging_order_and_count ] );
  ]
