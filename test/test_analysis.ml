module Acap = Dissect.Acap
module Analyze = Analysis.Analyze
module Flows = Analysis.Flows
module Report = Analysis.Report
module Digest = Analysis.Digest
module Index = Analysis.Index
module H = Packet.Headers

(* Handy record builder. *)
let record ?(ts = 0.0) ?(len = 100) ?(stack = [ "eth"; "ipv4"; "tcp" ])
    ?(vlans = [ 1 ]) ?(mpls = []) ?(src = Some "10.0.0.1") ?(dst = Some "10.0.0.2")
    ?(l4 = Some (1000, 2000)) ?(rst = false) () =
  {
    Acap.ts;
    orig_len = len;
    cap_len = min len 200;
    stack;
    vlan_ids = vlans;
    mpls_labels = mpls;
    src;
    dst;
    l4;
    tcp_rst = rst;
    truncated = len > 200;
  }

(* --- Analyze --- *)

let test_header_stats () =
  let site_a =
    [ record ~stack:[ "eth"; "ipv4"; "tcp" ] ();
      record ~stack:[ "eth"; "vlan"; "ipv4"; "udp"; "dns" ] () ]
  in
  let site_b = [ record ~stack:[ "eth"; "ipv6"; "tcp"; "tls" ] () ] in
  let stats = Analyze.header_stats [ ("A", site_a); ("B", site_b) ] in
  match stats with
  | [ a; b ] ->
    Alcotest.(check string) "sorted" "A" a.Analyze.hs_site;
    Alcotest.(check int) "A distinct" 6 a.Analyze.distinct_headers;
    Alcotest.(check int) "A deepest" 5 a.Analyze.deepest_stack;
    Alcotest.(check int) "B distinct" 4 b.Analyze.distinct_headers;
    Alcotest.(check int) "B frames" 1 b.Analyze.frames
  | _ -> Alcotest.fail "expected two sites"

let test_header_stats_merges_same_site () =
  let stats =
    Analyze.header_stats
      [ ("A", [ record () ]); ("A", [ record ~stack:[ "eth"; "arp" ] () ]) ]
  in
  match stats with
  | [ a ] ->
    Alcotest.(check int) "frames merged" 2 a.Analyze.frames;
    Alcotest.(check int) "tokens merged" 4 a.Analyze.distinct_headers
  | _ -> Alcotest.fail "expected one site"

let test_occurrence_with_multiplicity () =
  (* Nested Ethernet counts twice per frame, pushing eth above 100%. *)
  let records =
    [ record ~stack:[ "eth"; "mpls"; "pw"; "eth"; "ipv4"; "tcp" ] ();
      record ~stack:[ "eth"; "ipv4"; "udp" ] () ]
  in
  let occ = Analyze.occurrence records in
  Alcotest.(check (float 1e-9)) "eth 150%" 150.0 (Analyze.occurrence_of occ "eth");
  Alcotest.(check (float 1e-9)) "ipv4 100%" 100.0 (Analyze.occurrence_of occ "ipv4");
  Alcotest.(check (float 1e-9)) "udp 50%" 50.0 (Analyze.occurrence_of occ "udp");
  Alcotest.(check (float 1e-9)) "missing 0%" 0.0 (Analyze.occurrence_of occ "nope")

let test_occurrence_sorted_descending () =
  let occ =
    Analyze.occurrence
      [ record ~stack:[ "eth"; "ipv4" ] (); record ~stack:[ "eth" ] () ]
  in
  match occ with
  | (first, _) :: _ -> Alcotest.(check string) "eth first" "eth" first
  | [] -> Alcotest.fail "empty"

let test_frame_size_histogram_bins () =
  let records = [ record ~len:70 (); record ~len:1600 (); record ~len:9000 () ] in
  let h = Analyze.frame_size_histogram records in
  (* Bins: <64, [64,128), [128,256), [256,512), [512,1024), [1024,1519),
     [1519,2048), [2048,9000), >=9000. *)
  let counts = Netcore.Histogram.counts h in
  Alcotest.(check int) "small frame bin" 1 counts.(1);
  Alcotest.(check int) "1519-2047 bin" 1 counts.(6);
  Alcotest.(check int) "jumbo 9000" 1 counts.(8)

let test_jumbo_fraction () =
  let records = [ record ~len:1518 (); record ~len:1519 (); record ~len:2000 () ] in
  Alcotest.(check (float 1e-9)) "2 of 3" (2.0 /. 3.0) (Analyze.jumbo_fraction records);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Analyze.jumbo_fraction [])

let test_observed_flows () =
  let records =
    [ record ~l4:(Some (1, 2)) (); record ~l4:(Some (1, 2)) ();
      record ~l4:(Some (3, 4)) (); record ~src:None ~dst:None ~l4:None () ]
  in
  Alcotest.(check int) "two flows" 2 (Analyze.observed_flows records)

let test_weighted_occurrence () =
  let weighted =
    [ (record ~stack:[ "eth"; "ipv4"; "tcp" ] (), 9.0);
      (record ~stack:[ "eth"; "ipv6"; "udp" ] (), 1.0) ]
  in
  let occ = Analyze.occurrence_weighted weighted in
  Alcotest.(check (float 1e-6)) "ipv4 90%" 90.0 (Analyze.occurrence_of occ "ipv4");
  Alcotest.(check (float 1e-6)) "ipv6 10%" 10.0 (Analyze.occurrence_of occ "ipv6")

let test_weighted_fraction () =
  let weighted = [ (record ~len:2000 (), 3.0); (record ~len:100 (), 1.0) ] in
  Alcotest.(check (float 1e-9)) "weighted jumbo" 0.75
    (Analyze.fraction_weighted (fun r -> r.Acap.orig_len > 1518) weighted)

let test_ipv6_rst_percent () =
  let records =
    [ record ~stack:[ "eth"; "ipv6"; "tcp" ] (); record (); record ~rst:true () ]
  in
  Alcotest.(check (float 1e-6)) "ipv6 1/3" (100.0 /. 3.0) (Analyze.ipv6_percent records);
  Alcotest.(check (float 1e-6)) "rst 1/3" (100.0 /. 3.0) (Analyze.rst_percent records)

(* --- Flows --- *)

let test_flow_aggregation () =
  let records =
    [ record ~ts:1.0 ~len:100 ~l4:(Some (1, 2)) ();
      record ~ts:5.0 ~len:200 ~l4:(Some (1, 2)) ();
      record ~ts:2.0 ~len:50 ~l4:(Some (3, 4)) () ]
  in
  let flows = Flows.aggregate records in
  Alcotest.(check int) "two flows" 2 (List.length flows);
  let big = List.hd flows in
  Alcotest.(check (float 1e-9)) "bytes summed" 300.0 big.Flows.bytes;
  Alcotest.(check (float 0.0)) "frames" 2.0 big.Flows.frames;
  Alcotest.(check (float 1e-9)) "first seen" 1.0 big.Flows.first_seen;
  Alcotest.(check (float 1e-9)) "last seen" 5.0 big.Flows.last_seen

let test_flow_aggregation_weighted () =
  let group1 = ([ record ~len:100 ~l4:(Some (1, 2)) () ], 0.1) in
  let group2 = ([ record ~len:100 ~l4:(Some (1, 2)) () ], 1.0) in
  let flows = Flows.aggregate ~weights:[ group1; group2 ] [] in
  match flows with
  | [ f ] ->
    (* 100/0.1 + 100/1.0 = 1100 *)
    Alcotest.(check (float 1e-6)) "thinned frames re-weighted" 1100.0 f.Flows.bytes
  | _ -> Alcotest.fail "expected one flow"

let test_flow_weighted_frame_counts () =
  (* Regression: frames must scale by the same 1/fraction weight as
     bytes.  The old code re-weighted bytes but counted each sampled
     record as exactly one frame, so a 10% sample under-reported frame
     counts 10x. *)
  let sampled =
    ([ record ~len:100 ~l4:(Some (1, 2)) (); record ~len:100 ~l4:(Some (1, 2)) () ], 0.1)
  in
  (match Flows.aggregate ~weights:[ sampled ] [] with
  | [ f ] ->
    Alcotest.(check (float 1e-9)) "frames re-weighted" 20.0 f.Flows.frames;
    Alcotest.(check (float 1e-6)) "bytes re-weighted" 2000.0 f.Flows.bytes
  | _ -> Alcotest.fail "expected one flow");
  (* fraction = 1.0 must stay an exact integer count (fast path). *)
  let full = ([ record ~l4:(Some (1, 2)) (); record ~l4:(Some (1, 2)) () ], 1.0) in
  match Flows.aggregate ~weights:[ full ] [] with
  | [ f ] ->
    Alcotest.(check (float 0.0)) "exact integer frames" 2.0 f.Flows.frames
  | _ -> Alcotest.fail "expected one flow"

let test_flow_vlan_separation () =
  let records =
    [ record ~vlans:[ 10 ] ~l4:(Some (1, 2)) ();
      record ~vlans:[ 20 ] ~l4:(Some (1, 2)) () ]
  in
  Alcotest.(check int) "same 5-tuple, two slices" 2
    (List.length (Flows.aggregate records))

let test_flow_rst_tracking () =
  let records =
    [ record ~l4:(Some (1, 2)) (); record ~rst:true ~l4:(Some (1, 2)) () ]
  in
  match Flows.aggregate records with
  | [ f ] -> Alcotest.(check bool) "rst seen" true f.Flows.rst_seen
  | _ -> Alcotest.fail "one flow expected"

let test_flow_top_n () =
  let records =
    [ record ~len:1000 ~l4:(Some (1, 2)) (); record ~len:10 ~l4:(Some (3, 4)) () ]
  in
  let top = Flows.top_n (Flows.aggregate records) 1 in
  Alcotest.(check int) "one" 1 (List.length top);
  Alcotest.(check (float 1e-9)) "largest kept" 1000.0 (List.hd top).Flows.bytes;
  let all = Flows.aggregate records in
  Alcotest.(check bool) "n >= length returns all" true (Flows.top_n all 5 = all);
  Alcotest.(check bool) "n = 0 returns none" true (Flows.top_n all 0 = []);
  Alcotest.(check bool) "exact prefix" true
    (Flows.top_n (all @ all) 3 = all @ [ List.hd all ])

let test_flow_size_histogram () =
  let records =
    [ record ~len:100 ~l4:(Some (1, 2)) (); record ~len:100_000 ~l4:(Some (3, 4)) () ]
  in
  let h = Flows.size_log_histogram (Flows.aggregate records) in
  Alcotest.(check int) "two entries" 2 (Netcore.Histogram.Log2.total h)

(* --- Report --- *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Report.csv_escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Report.csv_escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Report.csv_escape "a\"b")

let test_csv_rows () =
  let csv = Report.csv_of_rows ~header:[ "x"; "y" ] [ [ "1"; "a,b" ]; [ "2"; "c" ] ] in
  Alcotest.(check string) "csv" "x,y\n1,\"a,b\"\n2,c\n" csv

(* --- Digest + Index --- *)

let sample_with_pcap () =
  let w = Packet.Pcap.Writer.create () in
  let eth : H.header =
    H.Ethernet
      { src = Netcore.Mac.of_string "02:00:00:00:00:01";
        dst = Netcore.Mac.of_string "02:00:00:00:00:02" }
  in
  let ip : H.header =
    H.Ipv4
      { src = Netcore.Ipv4_addr.of_string "10.0.0.1";
        dst = Netcore.Ipv4_addr.of_string "10.0.0.2";
        dscp = 0; ttl = 64; ident = 0; dont_fragment = false }
  in
  let tcp : H.header =
    H.Tcp
      { src_port = 4000; dst_port = 5201; seq = 0l; ack_seq = 0l;
        flags = H.flags_psh_ack; window = 10 }
  in
  let frame = Packet.Frame.make [ eth; ip; tcp ] ~payload_len:64 in
  Packet.Pcap.Writer.add_frame w ~ts:1.0 frame;
  Packet.Pcap.Writer.add_frame w ~ts:2.0 frame;
  {
    Patchwork.Capture.sample_site = "STAR";
    sample_port = 3;
    sample_start = 0.0;
    sample_duration = 20.0;
    acaps = [];
    materialized_fraction = 1.0;
    pcap = Some (Packet.Pcap.Writer.contents w);
    stats =
      {
        Patchwork.Capture.offered_frames = 2.0;
        switch_dropped = 0.0;
        host_dropped = 0.0;
        captured_frames = 2.0;
        stored_bytes = 300.0;
        flow_estimate = 1.0;
        congestion_detected = false;
      };
  }

let test_digest_pcap () =
  let sample = sample_with_pcap () in
  let acaps = Digest.sample_acaps sample in
  Alcotest.(check int) "two records" 2 (List.length acaps);
  let r = List.hd acaps in
  Alcotest.(check (list string)) "stack digested"
    [ "eth"; "ipv4"; "tcp"; "iperf3" ] r.Acap.stack

let test_acap_file_roundtrip () =
  let records = [ record ~ts:1.5 (); record ~ts:2.5 ~len:2000 () ] in
  let path = Filename.temp_file "patchwork" ".acap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Digest.write_acap_file path records;
      let back = Digest.read_acap_file path in
      Alcotest.(check int) "count" 2 (List.length back);
      Alcotest.(check bool) "identical" true (records = back))

let test_acap_file_error_names_line () =
  let records = [ record ~ts:1.0 (); record ~ts:2.0 () ] in
  let path = Filename.temp_file "patchwork" ".acap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Digest.write_acap_file path records;
      (* Corrupt the third line. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "not an acap line\n";
      close_out oc;
      match Digest.read_acap_file path with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
        let expected_prefix = path ^ ": line 3: " in
        Alcotest.(check string) "names file and line" expected_prefix
          (String.sub msg 0 (String.length expected_prefix)))

let test_index_store () =
  let dir = Filename.temp_file "patchwork_index" "" in
  Sys.remove dir;
  let t = Index.create ~dir in
  let entry = Index.add_sample t ~occasion:3 (sample_with_pcap ()) in
  Alcotest.(check int) "records counted" 2 entry.Index.record_count;
  Alcotest.(check int) "find by site" 1
    (List.length (Index.find ~site:"STAR" t));
  Alcotest.(check int) "find by wrong site" 0
    (List.length (Index.find ~site:"WASH" t));
  Alcotest.(check int) "find by occasion" 1
    (List.length (Index.find ~occasion:3 t));
  let loaded = Index.load t entry in
  Alcotest.(check int) "loadable" 2 (List.length loaded);
  Index.save t;
  let reopened = Index.open_existing ~dir in
  Alcotest.(check int) "index persists" 1 (List.length (Index.entries reopened));
  (* Clean up. *)
  List.iter
    (fun e -> Sys.remove (Filename.concat dir e.Index.path))
    (Index.entries t);
  Sys.remove (Filename.concat dir "index.tsv");
  Sys.rmdir dir

(* --- Profile over a real occasion --- *)

let test_profile_end_to_end () =
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed:31 engine in
  let driver = Traffic.Driver.create fabric ~seed:31 in
  let config =
    {
      Patchwork.Config.default with
      Patchwork.Config.samples_per_run = 2;
      max_frames_per_sample = 1000;
    }
  in
  let report =
    Patchwork.Coordinator.run_occasion ~fabric ~driver ~config ~max_instances:1
      ~start_time:0.0 ~duration:1900.0 ()
  in
  let profile = Analysis.Profile.of_reports [ report ] in
  Alcotest.(check int) "one occasion" 1 profile.Analysis.Profile.occasions;
  Alcotest.(check bool) "samples present" true (profile.Analysis.Profile.total_samples > 20);
  Alcotest.(check bool) "vlan tagged traffic" true
    (Analyze.occurrence_of profile.Analysis.Profile.occurrence "vlan" > 90.0);
  (* CSV emission works and produces the advertised files. *)
  let dir = Filename.temp_file "patchwork_csv" "" in
  Sys.remove dir;
  let files = Analysis.Profile.write_csv_files profile ~dir in
  List.iter
    (fun f ->
      Alcotest.(check bool) ("exists: " ^ f) true
        (Sys.file_exists (Filename.concat dir f)))
    files;
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Sys.rmdir dir

let suites =
  [
    ( "analysis.analyze",
      [
        Alcotest.test_case "header stats" `Quick test_header_stats;
        Alcotest.test_case "header stats merge" `Quick test_header_stats_merges_same_site;
        Alcotest.test_case "occurrence multiplicity" `Quick test_occurrence_with_multiplicity;
        Alcotest.test_case "occurrence sorted" `Quick test_occurrence_sorted_descending;
        Alcotest.test_case "size histogram bins" `Quick test_frame_size_histogram_bins;
        Alcotest.test_case "jumbo fraction" `Quick test_jumbo_fraction;
        Alcotest.test_case "observed flows" `Quick test_observed_flows;
        Alcotest.test_case "weighted occurrence" `Quick test_weighted_occurrence;
        Alcotest.test_case "weighted fraction" `Quick test_weighted_fraction;
        Alcotest.test_case "ipv6/rst percent" `Quick test_ipv6_rst_percent;
      ] );
    ( "analysis.flows",
      [
        Alcotest.test_case "aggregation" `Quick test_flow_aggregation;
        Alcotest.test_case "weighted aggregation" `Quick test_flow_aggregation_weighted;
        Alcotest.test_case "weighted frame counts" `Quick
          test_flow_weighted_frame_counts;
        Alcotest.test_case "vlan separation" `Quick test_flow_vlan_separation;
        Alcotest.test_case "rst tracking" `Quick test_flow_rst_tracking;
        Alcotest.test_case "top n" `Quick test_flow_top_n;
        Alcotest.test_case "size histogram" `Quick test_flow_size_histogram;
      ] );
    ( "analysis.report",
      [
        Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
        Alcotest.test_case "csv rows" `Quick test_csv_rows;
      ] );
    ( "analysis.digest_index",
      [
        Alcotest.test_case "digest pcap" `Quick test_digest_pcap;
        Alcotest.test_case "acap file roundtrip" `Quick test_acap_file_roundtrip;
        Alcotest.test_case "acap file error names line" `Quick
          test_acap_file_error_names_line;
        Alcotest.test_case "index store" `Quick test_index_store;
      ] );
    ( "analysis.profile",
      [ Alcotest.test_case "end to end" `Slow test_profile_end_to_end ] );
  ]
