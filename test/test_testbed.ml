module Engine = Simcore.Engine
module Info_model = Testbed.Info_model
module Switch = Testbed.Switch
module Telemetry = Testbed.Telemetry
module Allocator = Testbed.Allocator
module Fablib = Testbed.Fablib

(* --- Information model --- *)

let test_model_deterministic () =
  let a = Info_model.generate ~seed:5 () and b = Info_model.generate ~seed:5 () in
  Alcotest.(check bool) "same model" true (a = b);
  let c = Info_model.generate ~seed:6 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_model_shape () =
  let m = Info_model.generate ~seed:1 () in
  Alcotest.(check int) "30 sites" 30 (Array.length m.Info_model.sites);
  Array.iter
    (fun (s : Info_model.site) ->
      Alcotest.(check bool) "has uplinks" true (s.Info_model.uplinks >= 1);
      Alcotest.(check bool) "more downlinks than uplinks" true
        (s.Info_model.downlinks > s.Info_model.uplinks))
    m.Info_model.sites

let test_model_teaching_site () =
  let m = Info_model.generate ~seed:1 () in
  let eduky = Info_model.site m "EDUKY" in
  Alcotest.(check bool) "teaching only" true eduky.Info_model.teaching_only;
  Alcotest.(check int) "no dedicated NICs" 0 (Info_model.dedicated_nics eduky);
  let profilable = Info_model.profilable_sites m in
  Alcotest.(check bool) "EDUKY excluded" true
    (not (List.exists (fun s -> s.Info_model.name = "EDUKY") profilable));
  Alcotest.(check bool) "most sites profilable" true (List.length profilable >= 25)

let test_model_lookup () =
  let m = Info_model.generate ~seed:1 () in
  Alcotest.check_raises "unknown site" Not_found (fun () ->
      ignore (Info_model.site m "NOPE"))

(* --- Switch --- *)

let make_switch ?(ports = 8) () =
  let engine = Engine.create () in
  (engine, Switch.create engine ~site_name:"TEST" ~ports ~line_rate:100e9)

let test_switch_counters_accumulate () =
  let engine, sw = make_switch () in
  Switch.attach_flow sw ~port:2 ~dir:Switch.Tx ~byte_rate:1000.0 ~frame_rate:10.0
    ~flow:1;
  Engine.schedule engine ~delay:10.0 (fun _ -> ());
  Engine.run engine;
  let c = Switch.read_counters sw ~port:2 in
  Alcotest.(check (float 1e-6)) "tx bytes" 10_000.0 c.Switch.tx_bytes;
  Alcotest.(check (float 1e-6)) "tx frames" 100.0 c.Switch.tx_frames;
  Alcotest.(check (float 1e-6)) "rx untouched" 0.0 c.Switch.rx_bytes

let test_switch_detach_stops_counting () =
  let engine, sw = make_switch () in
  Switch.attach_flow sw ~port:1 ~dir:Switch.Rx ~byte_rate:500.0 ~frame_rate:5.0 ~flow:7;
  Engine.schedule engine ~delay:4.0 (fun _ -> Switch.detach_flow sw ~flow:7);
  Engine.schedule engine ~delay:10.0 (fun _ -> ());
  Engine.run engine;
  let c = Switch.read_counters sw ~port:1 in
  Alcotest.(check (float 1e-6)) "rx stops at detach" 2000.0 c.Switch.rx_bytes

let test_switch_multi_attachment_flow () =
  let _, sw = make_switch () in
  Switch.attach_flow sw ~port:1 ~dir:Switch.Rx ~byte_rate:100.0 ~frame_rate:1.0 ~flow:9;
  Switch.attach_flow sw ~port:2 ~dir:Switch.Tx ~byte_rate:100.0 ~frame_rate:1.0 ~flow:9;
  Alcotest.(check int) "two ports see it" 1
    (List.length (Switch.attachments sw ~port:1));
  Switch.detach_flow sw ~flow:9;
  Alcotest.(check int) "all detached" 0 (List.length (Switch.attachments sw ~port:1));
  Alcotest.(check int) "other port too" 0 (List.length (Switch.attachments sw ~port:2))

let test_mirror_basic () =
  let _, sw = make_switch () in
  (match Switch.add_mirror sw ~src_port:1 ~dirs:Switch.Both ~dst_port:5 with
  | Error m -> Alcotest.fail m
  | Ok id ->
    Alcotest.(check int) "one session" 1 (Switch.mirror_count sw);
    Switch.remove_mirror sw id);
  Alcotest.(check int) "removed" 0 (Switch.mirror_count sw)

let test_mirror_rejections () =
  let _, sw = make_switch () in
  let expect_error what = function
    | Ok _ -> Alcotest.fail ("expected error: " ^ what)
    | Error _ -> ()
  in
  expect_error "same port" (Switch.add_mirror sw ~src_port:1 ~dirs:Switch.Both ~dst_port:1);
  expect_error "out of range" (Switch.add_mirror sw ~src_port:99 ~dirs:Switch.Both ~dst_port:1);
  (match Switch.add_mirror sw ~src_port:1 ~dirs:Switch.Both ~dst_port:5 with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  expect_error "already mirrored"
    (Switch.add_mirror sw ~src_port:1 ~dirs:Switch.Rx_only ~dst_port:6);
  expect_error "destination busy"
    (Switch.add_mirror sw ~src_port:2 ~dirs:Switch.Rx_only ~dst_port:5)

let test_mirror_overflow_drops () =
  let _, sw = make_switch () in
  (* Tx + Rx = 150 Gbps mirrored onto a 100 Gbps egress. *)
  let gbps g = g *. 1e9 /. 8.0 in
  Switch.attach_flow sw ~port:1 ~dir:Switch.Tx ~byte_rate:(gbps 75.0)
    ~frame_rate:6e6 ~flow:1;
  Switch.attach_flow sw ~port:1 ~dir:Switch.Rx ~byte_rate:(gbps 75.0)
    ~frame_rate:6e6 ~flow:2;
  match Switch.add_mirror sw ~src_port:1 ~dirs:Switch.Both ~dst_port:5 with
  | Error m -> Alcotest.fail m
  | Ok id ->
    let frac = Switch.mirror_drop_fraction sw id in
    Alcotest.(check (float 1e-6)) "drop fraction" (1.0 -. (100.0 /. 150.0)) frac;
    Alcotest.(check (float 1e3)) "mirrored rate" (gbps 150.0) (Switch.mirrored_rate sw id)

let test_mirror_healthy_no_drops () =
  let _, sw = make_switch () in
  Switch.attach_flow sw ~port:1 ~dir:Switch.Tx ~byte_rate:1e9 ~frame_rate:1e5 ~flow:1;
  match Switch.add_mirror sw ~src_port:1 ~dirs:Switch.Both ~dst_port:5 with
  | Error m -> Alcotest.fail m
  | Ok id -> Alcotest.(check (float 1e-9)) "no drops" 0.0 (Switch.mirror_drop_fraction sw id)

let test_mirror_direction_filter () =
  let _, sw = make_switch () in
  Switch.attach_flow sw ~port:1 ~dir:Switch.Tx ~byte_rate:100.0 ~frame_rate:1.0 ~flow:1;
  Switch.attach_flow sw ~port:1 ~dir:Switch.Rx ~byte_rate:200.0 ~frame_rate:2.0 ~flow:2;
  match Switch.add_mirror sw ~src_port:1 ~dirs:Switch.Rx_only ~dst_port:5 with
  | Error m -> Alcotest.fail m
  | Ok id ->
    let atts = Switch.mirrored_attachments sw id in
    Alcotest.(check int) "only rx attachment" 1 (List.length atts);
    Alcotest.(check (float 1e-9)) "rx rate only" 200.0 (Switch.mirrored_rate sw id)

let test_mirror_counts_on_dst_port () =
  let engine, sw = make_switch () in
  Switch.attach_flow sw ~port:1 ~dir:Switch.Rx ~byte_rate:1000.0 ~frame_rate:10.0
    ~flow:1;
  (match Switch.add_mirror sw ~src_port:1 ~dirs:Switch.Both ~dst_port:5 with
  | Error m -> Alcotest.fail m
  | Ok _ -> ());
  Engine.schedule engine ~delay:10.0 (fun _ -> ());
  Engine.run engine;
  let c = Switch.read_counters sw ~port:5 in
  Alcotest.(check (float 1e-6)) "mirrored bytes on dst tx" 10_000.0 c.Switch.tx_bytes

(* --- Telemetry --- *)

let test_telemetry_rates () =
  let engine = Engine.create () in
  let sw = Switch.create engine ~site_name:"S" ~ports:4 ~line_rate:100e9 in
  let tel = Telemetry.create engine in
  Telemetry.register_switch tel sw;
  Switch.attach_flow sw ~port:2 ~dir:Switch.Tx ~byte_rate:1e6 ~frame_rate:1e3 ~flow:1;
  Telemetry.start ~until:3600.0 tel;
  Engine.run ~until:3600.0 engine;
  let rate = Telemetry.port_avg_rate tel ~site:"S" ~port:2 ~window:1800.0 ~at:3600.0 in
  Alcotest.(check bool) "about 1 MB/s" true (Float.abs (rate -. 1e6) < 1e3);
  let idle = Telemetry.port_avg_rate tel ~site:"S" ~port:3 ~window:1800.0 ~at:3600.0 in
  Alcotest.(check (float 1e-9)) "idle port" 0.0 idle

let test_telemetry_busiest () =
  let engine = Engine.create () in
  let sw = Switch.create engine ~site_name:"S" ~ports:4 ~line_rate:100e9 in
  let tel = Telemetry.create engine in
  Telemetry.register_switch tel sw;
  Switch.attach_flow sw ~port:1 ~dir:Switch.Tx ~byte_rate:1e5 ~frame_rate:100.0 ~flow:1;
  Switch.attach_flow sw ~port:2 ~dir:Switch.Tx ~byte_rate:1e7 ~frame_rate:1e4 ~flow:2;
  Telemetry.start ~until:1800.0 tel;
  Engine.run ~until:1800.0 engine;
  Alcotest.(check (option int)) "busiest is port 2" (Some 2)
    (Telemetry.busiest_port tel ~site:"S" ~candidates:[ 0; 1; 2; 3 ] ~window:1800.0
       ~at:1800.0);
  Alcotest.(check (option int)) "all idle" None
    (Telemetry.busiest_port tel ~site:"S" ~candidates:[ 0; 3 ] ~window:1800.0
       ~at:1800.0)

let test_telemetry_window_edges () =
  let engine = Engine.create () in
  let tel = Telemetry.create engine in
  (* Empty store: no samples anywhere. *)
  Alcotest.(check (float 1e-9)) "empty store" 0.0
    (Telemetry.port_avg_rate tel ~site:"S" ~port:0 ~window:100.0 ~at:1000.0);
  Alcotest.(check (option int)) "empty store busiest" None
    (Telemetry.busiest_port tel ~site:"S" ~candidates:[ 0; 1 ] ~window:100.0
       ~at:1000.0);
  (* Hand-placed rate samples pin the exact timestamps. *)
  let store = Telemetry.store tel in
  Simcore.Timeseries.append store ~key:"S/p0/tx_rate" ~time:400.0 8.0;
  Simcore.Timeseries.append store ~key:"S/p0/tx_rate" ~time:700.0 2.0;
  Simcore.Timeseries.append store ~key:"S/p0/tx_rate" ~time:1000.0 4.0;
  (* Window [700, 1000]: both edge samples count, the 400 s one does not. *)
  Alcotest.(check (float 1e-9)) "inclusive edges" 3.0
    (Telemetry.port_avg_rate tel ~site:"S" ~port:0 ~window:300.0 ~at:1000.0);
  (* A sample exactly at [at] is visible on its own. *)
  Alcotest.(check (float 1e-9)) "sample exactly at" 4.0
    (Telemetry.port_avg_rate tel ~site:"S" ~port:0 ~window:1.0 ~at:1000.0);
  (* A window that ends before the first sample sees nothing. *)
  Alcotest.(check (float 1e-9)) "window before data" 0.0
    (Telemetry.port_avg_rate tel ~site:"S" ~port:0 ~window:100.0 ~at:300.0)

let test_telemetry_weekly_buckets () =
  let engine = Engine.create () in
  let tel = Telemetry.create engine in
  let store = Telemetry.store tel in
  let week = Netcore.Timebase.week in
  Simcore.Timeseries.append store ~key:"S/p0/tx_rate" ~time:0.0 1.0;
  Simcore.Timeseries.append store ~key:"S/p0/tx_rate" ~time:(week -. 1.0) 2.0;
  (* The first instant of week 1 lands in bucket 1, not 0. *)
  Simcore.Timeseries.append store ~key:"S/p1/tx_rate" ~time:week 4.0;
  (* Rx series and weeks beyond the horizon are ignored. *)
  Simcore.Timeseries.append store ~key:"S/p0/rx_rate" ~time:week 100.0;
  Simcore.Timeseries.append store ~key:"S/p0/tx_rate" ~time:(3.0 *. week) 8.0;
  let sums = Telemetry.weekly_rate_sums tel ~weeks:2 in
  Alcotest.(check int) "length" 2 (Array.length sums);
  Alcotest.(check (float 1e-9)) "week 0" 3.0 sums.(0);
  Alcotest.(check (float 1e-9)) "week 1 sums across ports" 4.0 sums.(1)

let test_telemetry_export_metrics () =
  let engine = Engine.create () in
  let sw = Switch.create engine ~site_name:"S" ~ports:2 ~line_rate:100e9 in
  let tel = Telemetry.create engine in
  Telemetry.register_switch tel sw;
  Switch.attach_flow sw ~port:1 ~dir:Switch.Tx ~byte_rate:1e6 ~frame_rate:1e3
    ~flow:1;
  Telemetry.start ~until:900.0 tel;
  Engine.run ~until:900.0 engine;
  let r = Obs.Registry.create () in
  Telemetry.export_metrics ~registry:r tel;
  match
    Obs.Registry.value r "testbed_port_tx_bytes"
      ~labels:[ ("port", "1"); ("site", "S") ]
  with
  | Some (Obs.Registry.Gauge v) ->
    Alcotest.(check bool) "cumulative bytes exported" true (v > 0.0)
  | _ -> Alcotest.fail "testbed_port_tx_bytes gauge missing"

(* --- Allocator --- *)

let vm ?(nics = 1) () =
  { Allocator.cores = 2; ram_gb = 8; storage_gb = 100; dedicated_nics = nics;
    use_fpga = false }

let make_allocator () =
  let engine = Engine.create () in
  let model = Info_model.generate ~seed:3 () in
  let rng = Netcore.Rng.create 3 in
  (engine, model, Allocator.create engine rng model)

let first_profilable model =
  (List.hd (Info_model.profilable_sites model)).Info_model.name

let test_allocator_lifecycle () =
  let _, model, alloc = make_allocator () in
  let site = first_profilable model in
  let before = (Allocator.available alloc ~site).Allocator.avail_dedicated_nics in
  match Allocator.create_slice alloc { Allocator.site; vms = [ vm () ] } with
  | Error _ -> Alcotest.fail "allocation should succeed"
  | Ok slice ->
    let during = (Allocator.available alloc ~site).Allocator.avail_dedicated_nics in
    Alcotest.(check int) "nic consumed" (before - 1) during;
    Alcotest.(check int) "one live slice" 1 (Allocator.active_slices alloc);
    Allocator.delete_slice alloc slice;
    let after = (Allocator.available alloc ~site).Allocator.avail_dedicated_nics in
    Alcotest.(check int) "nic released" before after;
    Alcotest.(check int) "no live slices" 0 (Allocator.active_slices alloc)

let test_allocator_insufficient () =
  let _, model, alloc = make_allocator () in
  let site = first_profilable model in
  let avail = (Allocator.available alloc ~site).Allocator.avail_dedicated_nics in
  match
    Allocator.create_slice alloc
      { Allocator.site; vms = [ vm ~nics:(avail + 1) () ] }
  with
  | Error (Allocator.Insufficient_resources what) ->
    Alcotest.(check string) "nics are scarce" "dedicated NICs" what
  | Error (Allocator.Backend_error _) -> Alcotest.fail "unexpected backend error"
  | Ok _ -> Alcotest.fail "should be insufficient"

let test_allocator_outage () =
  let engine, model, alloc = make_allocator () in
  let site = first_profilable model in
  Allocator.set_outages alloc [ (100.0, 200.0) ];
  Engine.schedule engine ~delay:150.0 (fun _ ->
      match Allocator.create_slice alloc { Allocator.site; vms = [ vm () ] } with
      | Error (Allocator.Backend_error _) -> ()
      | Error (Allocator.Insufficient_resources _) | Ok _ ->
        Alcotest.fail "expected backend outage");
  (* After the outage window, allocation works again. *)
  Engine.schedule engine ~delay:300.0 (fun _ ->
      match Allocator.create_slice alloc { Allocator.site; vms = [ vm () ] } with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "should succeed after outage");
  Engine.run engine

let test_allocator_external_pressure () =
  let _, model, alloc = make_allocator () in
  let site = first_profilable model in
  Allocator.set_external_utilization alloc ~site 1.0;
  Alcotest.(check int) "all NICs taken externally" 0
    (Allocator.available alloc ~site).Allocator.avail_dedicated_nics;
  Allocator.set_external_utilization alloc ~site 0.0;
  Alcotest.(check bool) "released" true
    ((Allocator.available alloc ~site).Allocator.avail_dedicated_nics > 0)

let test_allocator_latency_grows () =
  let _, _, alloc = make_allocator () in
  let lat n =
    Allocator.allocation_latency alloc
      { Allocator.site = "X"; vms = List.init n (fun _ -> vm ()) }
  in
  Alcotest.(check bool) "bigger slices are slower" true (lat 10 > lat 1)

(* --- Fablib facade --- *)

let test_fablib_ports () =
  let engine = Engine.create () in
  let fabric = Fablib.create ~seed:2 engine in
  let model = Fablib.model fabric in
  let site = (List.hd (Info_model.profilable_sites model)).Info_model.name in
  let ups = Fablib.uplink_ports fabric ~site in
  let downs = Fablib.downlink_ports fabric ~site in
  let all = Fablib.all_ports fabric ~site in
  Alcotest.(check int) "partition" (List.length all)
    (List.length ups + List.length downs);
  Alcotest.(check bool) "uplinks come first" true
    (List.for_all (fun u -> List.for_all (fun d -> u < d) downs) ups);
  let sw = Fablib.switch fabric ~site in
  Alcotest.(check int) "switch sized to ports" (List.length all) (Switch.port_count sw)

let suites =
  [
    ( "testbed.info_model",
      [
        Alcotest.test_case "deterministic" `Quick test_model_deterministic;
        Alcotest.test_case "shape" `Quick test_model_shape;
        Alcotest.test_case "teaching site" `Quick test_model_teaching_site;
        Alcotest.test_case "lookup" `Quick test_model_lookup;
      ] );
    ( "testbed.switch",
      [
        Alcotest.test_case "counters accumulate" `Quick test_switch_counters_accumulate;
        Alcotest.test_case "detach stops counting" `Quick test_switch_detach_stops_counting;
        Alcotest.test_case "multi-port attachment" `Quick test_switch_multi_attachment_flow;
        Alcotest.test_case "mirror basic" `Quick test_mirror_basic;
        Alcotest.test_case "mirror rejections" `Quick test_mirror_rejections;
        Alcotest.test_case "mirror overflow drops" `Quick test_mirror_overflow_drops;
        Alcotest.test_case "mirror healthy" `Quick test_mirror_healthy_no_drops;
        Alcotest.test_case "mirror direction filter" `Quick test_mirror_direction_filter;
        Alcotest.test_case "mirror counts on destination" `Quick test_mirror_counts_on_dst_port;
      ] );
    ( "testbed.telemetry",
      [
        Alcotest.test_case "port rates" `Quick test_telemetry_rates;
        Alcotest.test_case "busiest port" `Quick test_telemetry_busiest;
        Alcotest.test_case "window edges" `Quick test_telemetry_window_edges;
        Alcotest.test_case "weekly buckets" `Quick test_telemetry_weekly_buckets;
        Alcotest.test_case "export metrics" `Quick test_telemetry_export_metrics;
      ] );
    ( "testbed.allocator",
      [
        Alcotest.test_case "lifecycle" `Quick test_allocator_lifecycle;
        Alcotest.test_case "insufficient resources" `Quick test_allocator_insufficient;
        Alcotest.test_case "backend outage" `Quick test_allocator_outage;
        Alcotest.test_case "external pressure" `Quick test_allocator_external_pressure;
        Alcotest.test_case "latency grows with size" `Quick test_allocator_latency_grows;
      ] );
    ("testbed.fablib", [ Alcotest.test_case "port layout" `Quick test_fablib_ports ]);
  ]
