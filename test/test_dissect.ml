open Packet
module Dissector = Dissect.Dissector
module Acap = Dissect.Acap
module H = Headers

let eth : H.header =
  H.Ethernet
    { src = Netcore.Mac.of_string "02:00:00:00:00:01";
      dst = Netcore.Mac.of_string "02:00:00:00:00:02" }

let ipv4 () : H.header =
  H.Ipv4
    { src = Netcore.Ipv4_addr.of_string "10.0.0.1";
      dst = Netcore.Ipv4_addr.of_string "10.0.0.2";
      dscp = 10; ttl = 64; ident = 99; dont_fragment = false }

let tcp ~dst_port : H.header =
  H.Tcp
    { src_port = 43210; dst_port; seq = 100l; ack_seq = 200l;
      flags = H.flags_psh_ack; window = 500 }

let headers_testable =
  Alcotest.testable
    (Format.pp_print_list ~pp_sep:Format.pp_print_space H.pp)
    (fun a b -> a = b)

let roundtrip frame =
  let b = Codec.encode frame in
  Dissector.dissect b

let test_simple_tcp_roundtrip () =
  let f = Frame.make [ eth; ipv4 (); tcp ~dst_port:5201 ] ~payload_len:100 in
  let d = roundtrip f in
  Alcotest.check headers_testable "headers" f.Frame.headers d.Dissector.headers;
  Alcotest.(check int) "payload" 100 d.Dissector.payload_len;
  Alcotest.(check bool) "not truncated" false d.Dissector.truncated

let test_padding_not_counted_for_ip () =
  (* 54-byte packet padded to 60: IP total length must trim the pad. *)
  let f = Frame.make [ eth; ipv4 (); tcp ~dst_port:5201 ] ~payload_len:0 in
  let d = roundtrip f in
  Alcotest.(check int) "payload 0 despite padding" 0 d.Dissector.payload_len

let test_deep_encapsulation_roundtrip () =
  let f =
    Frame.make
      [ eth;
        H.Vlan { pcp = 1; dei = false; vid = 3001 };
        H.Mpls { label = 16001; tc = 2; ttl = 62 };
        H.Mpls { label = 16002; tc = 2; ttl = 61 };
        H.Pseudowire;
        eth;
        ipv4 ();
        tcp ~dst_port:443;
        H.Tls { content_type = 22 } ]
      ~payload_len:333
  in
  let d = roundtrip f in
  Alcotest.check headers_testable "headers" f.Frame.headers d.Dissector.headers;
  Alcotest.(check int) "payload" 333 d.Dissector.payload_len

let test_vxlan_roundtrip () =
  let f =
    Frame.make
      [ eth; ipv4 (); H.Udp { src_port = 50000; dst_port = 4789 };
        H.Vxlan { vni = 0xABCDE }; eth; ipv4 (); tcp ~dst_port:80;
        H.Http `Request ]
      ~payload_len:50
  in
  let d = roundtrip f in
  Alcotest.check headers_testable "headers" f.Frame.headers d.Dissector.headers

let test_arp_roundtrip () =
  let f =
    Frame.make
      [ eth;
        H.Arp
          { operation = `Reply;
            sender_mac = Netcore.Mac.of_string "02:00:00:00:00:01";
            sender_ip = Netcore.Ipv4_addr.of_string "10.0.0.1";
            target_mac = Netcore.Mac.of_string "02:00:00:00:00:02";
            target_ip = Netcore.Ipv4_addr.of_string "10.0.0.2" } ]
      ~payload_len:0
  in
  let d = roundtrip f in
  Alcotest.check headers_testable "headers" f.Frame.headers d.Dissector.headers;
  Alcotest.(check int) "padding not payload" 0 d.Dissector.payload_len

let test_app_layer_classification () =
  let cases =
    [ (tcp ~dst_port:443, H.Tls { content_type = 23 });
      (tcp ~dst_port:22, H.Ssh);
      (tcp ~dst_port:80, H.Http `Response);
      (H.Udp { src_port = 40000; dst_port = 53 }, H.Dns { query = true; id = 77 });
      (H.Udp { src_port = 40000; dst_port = 123 }, H.Ntp);
      (H.Udp { src_port = 40000; dst_port = 443 }, H.Quic) ]
  in
  List.iter
    (fun (l4, app) ->
      let f = Frame.make [ eth; ipv4 (); l4; app ] ~payload_len:64 in
      let d = roundtrip f in
      match List.rev d.Dissector.headers with
      | last :: _ ->
        Alcotest.(check string)
          (H.name app ^ " classified")
          (H.name app) (H.name last)
      | [] -> Alcotest.fail "no headers")
    cases

let test_no_app_on_unknown_port () =
  let f = Frame.make [ eth; ipv4 (); tcp ~dst_port:7777 ] ~payload_len:64 in
  let d = roundtrip f in
  Alcotest.(check int) "3 headers only" 3 (List.length d.Dissector.headers);
  Alcotest.(check int) "payload intact" 64 d.Dissector.payload_len

let test_truncated_capture () =
  let f = Frame.make [ eth; ipv4 (); tcp ~dst_port:5201 ] ~payload_len:1000 in
  let b = Codec.encode f in
  let snapped = Bytes.sub b 0 200 in
  let d = Dissector.dissect ~orig_len:(Bytes.length b) snapped in
  Alcotest.(check bool) "truncated" true d.Dissector.truncated;
  Alcotest.check headers_testable "headers survive" f.Frame.headers d.Dissector.headers

let test_truncated_mid_header () =
  let f = Frame.make [ eth; ipv4 (); tcp ~dst_port:5201 ] ~payload_len:1000 in
  let b = Codec.encode f in
  (* Cut inside the TCP header (starts at 34). *)
  let snapped = Bytes.sub b 0 40 in
  let d = Dissector.dissect ~orig_len:(Bytes.length b) snapped in
  Alcotest.(check bool) "truncated" true d.Dissector.truncated;
  Alcotest.(check int) "eth+ip survive" 2 (List.length d.Dissector.headers)

let test_garbage_input () =
  let d = Dissector.dissect (Bytes.make 60 '\xAA') in
  (* 0xAAAA is an unknown EtherType: Ethernet parses, rest is payload. *)
  Alcotest.(check int) "one header" 1 (List.length d.Dissector.headers)

let test_empty_input () =
  let d = Dissector.dissect Bytes.empty in
  Alcotest.(check bool) "truncated" true d.Dissector.truncated;
  Alcotest.(check int) "no headers" 0 (List.length d.Dissector.headers)

(* --- Acap --- *)

let test_acap_of_frame () =
  let f =
    Frame.make
      [ eth; H.Vlan { pcp = 0; dei = false; vid = 11 };
        H.Mpls { label = 555; tc = 0; ttl = 64 }; ipv4 (); tcp ~dst_port:443;
        H.Tls { content_type = 23 } ]
      ~payload_len:100
  in
  let r = Acap.of_frame ~ts:42.0 f in
  Alcotest.(check (list string)) "stack"
    [ "eth"; "vlan"; "mpls"; "ipv4"; "tcp"; "tls" ]
    r.Acap.stack;
  Alcotest.(check (list int)) "vlans" [ 11 ] r.Acap.vlan_ids;
  Alcotest.(check (list int)) "mpls" [ 555 ] r.Acap.mpls_labels;
  Alcotest.(check (option string)) "src" (Some "10.0.0.1") r.Acap.src;
  Alcotest.(check bool) "no rst" false r.Acap.tcp_rst

let test_acap_line_roundtrip () =
  let f =
    Frame.make [ eth; ipv4 (); tcp ~dst_port:22; H.Ssh ] ~payload_len:10
  in
  let r = Acap.of_frame ~ts:1.5 f in
  let line = Acap.to_line r in
  match Acap.of_line line with
  | Error msg -> Alcotest.fail msg
  | Ok r' ->
    Alcotest.(check (list string)) "stack" r.Acap.stack r'.Acap.stack;
    Alcotest.(check int) "orig_len" r.Acap.orig_len r'.Acap.orig_len;
    Alcotest.(check (option string)) "src" r.Acap.src r'.Acap.src;
    Alcotest.(check bool) "rst" r.Acap.tcp_rst r'.Acap.tcp_rst

let test_acap_flow_key_distinguishes_tags () =
  let make_with_vlan vid =
    let f =
      Frame.make
        [ eth; H.Vlan { pcp = 0; dei = false; vid }; ipv4 (); tcp ~dst_port:5201 ]
        ~payload_len:0
    in
    Acap.of_frame ~ts:0.0 f
  in
  let k1 = Acap.flow_key (make_with_vlan 10) in
  let k2 = Acap.flow_key (make_with_vlan 20) in
  Alcotest.(check bool) "keys exist" true (k1 <> None && k2 <> None);
  Alcotest.(check bool) "same 5-tuple, different vlan => different flow" true (k1 <> k2);
  let k3 = Acap.flow_key (make_with_vlan 10) in
  Alcotest.(check bool) "deterministic" true (k1 = k3)

let test_acap_rst_flag () =
  let f =
    Frame.make
      [ eth; ipv4 ();
        H.Tcp
          { src_port = 1; dst_port = 2; seq = 0l; ack_seq = 0l;
            flags = H.flags_rst; window = 0 } ]
      ~payload_len:0
  in
  let r = Acap.of_frame ~ts:0.0 f in
  Alcotest.(check bool) "rst seen" true r.Acap.tcp_rst

let test_acap_no_l3 () =
  let f =
    Frame.make
      [ eth;
        H.Arp
          { operation = `Request;
            sender_mac = Netcore.Mac.zero; sender_ip = Netcore.Ipv4_addr.of_string "0.0.0.0";
            target_mac = Netcore.Mac.zero; target_ip = Netcore.Ipv4_addr.of_string "0.0.0.0" } ]
      ~payload_len:0
  in
  let r = Acap.of_frame ~ts:0.0 f in
  Alcotest.(check (option string)) "no flow key" None (Acap.flow_key r)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"dissect inverts encode (headers)" ~count:500
      (Frame_gen.frame_arb ())
      (fun f ->
        let d = Dissector.dissect (Codec.encode f) in
        d.Dissector.headers = f.Frame.headers);
    Test.make ~name:"dissect inverts encode (payload, unpadded frames)" ~count:500
      (Frame_gen.frame_arb ())
      (fun f ->
        let d = Dissector.dissect (Codec.encode f) in
        (* Padded frames without an IP extent can over-count payload; IP
           is always present in generated stacks, so equality holds. *)
        d.Dissector.payload_len = f.Frame.payload_len);
    Test.make ~name:"dissection of snapped frames never raises" ~count:500
      (pair (Frame_gen.frame_arb ()) (int_range 1 120))
      (fun (f, snap) ->
        let b = Codec.encode f in
        let snap = min snap (Bytes.length b) in
        let d = Dissector.dissect ~orig_len:(Bytes.length b) (Bytes.sub b 0 snap) in
        List.length d.Dissector.headers <= List.length f.Frame.headers);
    Test.make ~name:"acap line roundtrip" ~count:300
      (Frame_gen.frame_arb ())
      (fun f ->
        let r = Acap.of_frame ~ts:123.456 f in
        match Acap.of_line (Acap.to_line r) with
        | Ok r' -> r' = r
        | Error _ -> false);
  ]

let suites =
  [
    ( "dissect.roundtrip",
      [
        Alcotest.test_case "simple tcp" `Quick test_simple_tcp_roundtrip;
        Alcotest.test_case "padding excluded via IP length" `Quick test_padding_not_counted_for_ip;
        Alcotest.test_case "deep encapsulation" `Quick test_deep_encapsulation_roundtrip;
        Alcotest.test_case "vxlan tunnel" `Quick test_vxlan_roundtrip;
        Alcotest.test_case "arp" `Quick test_arp_roundtrip;
      ] );
    ( "dissect.classification",
      [
        Alcotest.test_case "app layers by port" `Quick test_app_layer_classification;
        Alcotest.test_case "unknown port stays payload" `Quick test_no_app_on_unknown_port;
      ] );
    ( "dissect.robustness",
      [
        Alcotest.test_case "truncated capture" `Quick test_truncated_capture;
        Alcotest.test_case "truncated mid-header" `Quick test_truncated_mid_header;
        Alcotest.test_case "garbage input" `Quick test_garbage_input;
        Alcotest.test_case "empty input" `Quick test_empty_input;
      ] );
    ( "dissect.acap",
      [
        Alcotest.test_case "abstraction fields" `Quick test_acap_of_frame;
        Alcotest.test_case "line roundtrip" `Quick test_acap_line_roundtrip;
        Alcotest.test_case "flow key uses tags" `Quick test_acap_flow_key_distinguishes_tags;
        Alcotest.test_case "rst flag" `Quick test_acap_rst_flag;
        Alcotest.test_case "no l3 no flow" `Quick test_acap_no_l3;
      ] );
    ("dissect.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
