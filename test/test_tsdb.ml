(* The persistent telemetry store and the federated scrape plane:
   segment wire format (pinned by an independent encoder), corruption
   rejection, truncated-tail recovery, downsampling identity against
   raw recomputation, kill-and-resume determinism, alert re-arming,
   and the filterable /series.json endpoint. *)

module T = Obs.Tsdb
module Registry = Obs.Registry
module Series = Obs.Series
module Alerts = Obs.Alerts
module Http = Obs.Http
module Clock = Obs.Clock
module Fed = Obs.Federation
module J = Obs.Export.Json

let with_temp_dir f =
  let dir = Filename.temp_file "patchwork_tsdb" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun x -> Sys.remove (Filename.concat dir x))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let raw ?(name = "x") ?(labels = []) ~at value = T.raw_point ~name ~labels ~at value

(* --- independent hand-rolled encoder ------------------------------- *)

(* Pins the documented wire format itself, not the implementation. *)
let enc_str b s =
  Buffer.add_uint16_le b (String.length s);
  Buffer.add_string b s

let enc_head b ~name ~labels =
  enc_str b name;
  Buffer.add_uint8 b (List.length labels);
  List.iter
    (fun (k, v) ->
      enc_str b k;
      enc_str b v)
    labels

let enc_f64 b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let enc_raw b ~name ~labels ~at ~value =
  enc_head b ~name ~labels;
  Buffer.add_uint8 b 0;
  enc_f64 b at;
  enc_f64 b value

let enc_bucket b ~name ~labels ~start ~res ~count ~sum ~min ~max ~last ~last_at =
  enc_head b ~name ~labels;
  Buffer.add_uint8 b 1;
  enc_f64 b start;
  enc_f64 b res;
  Buffer.add_int32_le b (Int32.of_int count);
  enc_f64 b sum;
  enc_f64 b min;
  enc_f64 b max;
  enc_f64 b last;
  enc_f64 b last_at

let encode_segment ?count body =
  let b = Buffer.create 256 in
  Buffer.add_string b "PWTS";
  Buffer.add_uint16_le b 1;
  (match count with
  | Some n -> Buffer.add_int32_le b (Int32.of_int n)
  | None -> Buffer.add_int32_le b (-1l) (* unsealed marker *));
  body b;
  Buffer.contents b

(* --- segment format ------------------------------------------------ *)

let test_segment_roundtrip () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "seg.pwts" in
  (* Deliberately unsorted input: write sorts by (name, labels, at). *)
  let records =
    [
      raw ~name:"b" ~at:5.0 50.0;
      raw ~name:"a" ~labels:[ ("site", "STAR") ] ~at:2.0 0.25;
      raw ~name:"a" ~labels:[ ("site", "STAR") ] ~at:1.0 (-3.5);
    ]
  in
  let n = T.Segment.write path records in
  Alcotest.(check int) "three written" 3 n;
  match T.Segment.read_all path with
  | Error e -> Alcotest.fail e
  | Ok (back, dropped) ->
    Alcotest.(check bool) "sealed segment drops nothing" false dropped;
    Alcotest.(check bool) "sorted by (name, labels, at), fields exact" true
      (back
      = [
          raw ~name:"a" ~labels:[ ("site", "STAR") ] ~at:1.0 (-3.5);
          raw ~name:"a" ~labels:[ ("site", "STAR") ] ~at:2.0 0.25;
          raw ~name:"b" ~at:5.0 50.0;
        ])

let test_segment_format_pinned () =
  with_temp_dir @@ fun dir ->
  (* Direction 1: the library reads what the independent encoder wrote. *)
  let path = Filename.concat dir "pinned.pwts" in
  write_file path
    (encode_segment ~count:2 (fun b ->
         enc_bucket b ~name:"captured_bytes_per_s" ~labels:[] ~start:3600.0
           ~res:3600.0 ~count:3 ~sum:6.75 ~min:1.25 ~max:3.0 ~last:2.5
           ~last_at:5400.0;
         enc_raw b ~name:"site_drop_rate"
           ~labels:[ ("site", "STAR") ]
           ~at:7200.0 ~value:0.125));
  (match T.Segment.read_all path with
  | Error e -> Alcotest.fail e
  | Ok ([ bucket; point ], false) ->
    Alcotest.(check string) "bucket name" "captured_bytes_per_s" bucket.T.t_name;
    Alcotest.(check bool) "bucket is not raw" false (T.is_raw bucket);
    Alcotest.(check (float 0.0)) "bucket start" 3600.0 bucket.T.t_at;
    Alcotest.(check (float 0.0)) "bucket res" 3600.0 bucket.T.t_res;
    Alcotest.(check int) "bucket count" 3 bucket.T.t_count;
    Alcotest.(check (float 0.0)) "bucket sum" 6.75 bucket.T.t_sum;
    Alcotest.(check (float 0.0)) "bucket min" 1.25 bucket.T.t_min;
    Alcotest.(check (float 0.0)) "bucket max" 3.0 bucket.T.t_max;
    Alcotest.(check (float 0.0)) "bucket last" 2.5 bucket.T.t_last;
    Alcotest.(check (float 0.0)) "bucket last_at" 5400.0 bucket.T.t_last_at;
    Alcotest.(check bool) "raw record exact" true
      (point = raw ~name:"site_drop_rate" ~labels:[ ("site", "STAR") ] ~at:7200.0 0.125)
  | Ok (l, _) -> Alcotest.failf "expected 2 records, got %d" (List.length l));
  (* Direction 2: the library writes byte-for-byte what the independent
     encoder predicts (count back-patched over the unsealed marker). *)
  let path2 = Filename.concat dir "written.pwts" in
  let _ =
    T.Segment.write path2
      [
        raw ~name:"up" ~labels:[ ("site", "WASH") ] ~at:10.0 1.0;
        raw ~name:"up" ~labels:[ ("site", "WASH") ] ~at:20.0 0.0;
      ]
  in
  let expected =
    encode_segment ~count:2 (fun b ->
        enc_raw b ~name:"up" ~labels:[ ("site", "WASH") ] ~at:10.0 ~value:1.0;
        enc_raw b ~name:"up" ~labels:[ ("site", "WASH") ] ~at:20.0 ~value:0.0)
  in
  Alcotest.(check bool) "writer output byte-identical to spec" true
    (read_file path2 = expected)

(* Two sources reporting the same series at the same instant (a local
   and a federated aggregate) produce duplicate-keyed records; the
   writer keeps them adjacent and the reader must accept its own
   writer's output. *)
let test_segment_duplicate_keys_roundtrip () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "dup.pwts" in
  let twice = [ raw ~name:"x" ~at:5.0 1.0; raw ~name:"x" ~at:5.0 1.0 ] in
  Alcotest.(check int) "both written" 2 (T.Segment.write path twice);
  match T.Segment.read_all path with
  | Error e -> Alcotest.fail ("duplicate keys rejected: " ^ e)
  | Ok (back, false) ->
    Alcotest.(check bool) "both read back" true (back = twice)
  | Ok (_, true) -> Alcotest.fail "unexpected partial tail"

let check_error path sub =
  match T.Segment.read_all path with
  | Ok _ -> Alcotest.fail ("expected Error mentioning " ^ sub)
  | Error e ->
    let present =
      let ls = String.lowercase_ascii e and lsub = String.lowercase_ascii sub in
      let n = String.length ls and m = String.length lsub in
      let rec at i = i + m <= n && (String.sub ls i m = lsub || at (i + 1)) in
      at 0
    in
    if not present then Alcotest.fail (Printf.sprintf "%S not in %S" sub e);
    Alcotest.(check bool) "names the file" true
      (String.length e >= String.length path
      && String.sub e 0 (String.length path) = path)

let test_segment_corruption_rejected () =
  with_temp_dir @@ fun dir ->
  let path name = Filename.concat dir name in
  write_file (path "magic.pwts") "NOPE\x01\x00\x00\x00\x00\x00";
  check_error (path "magic.pwts") "bad magic";
  write_file (path "vers.pwts") "PWTS\x63\x00\x00\x00\x00\x00";
  check_error (path "vers.pwts") "version 99";
  write_file (path "short.pwts") "PWT";
  check_error (path "short.pwts") "shorter than the header";
  (* A sealed segment (real count) cut short is corruption — only the
     unsealed tail segment gets the drop-partial recovery. *)
  let whole =
    encode_segment ~count:2 (fun b ->
        enc_raw b ~name:"a" ~labels:[] ~at:1.0 ~value:1.0;
        enc_raw b ~name:"a" ~labels:[] ~at:2.0 ~value:2.0)
  in
  write_file (path "trunc.pwts") (String.sub whole 0 (String.length whole - 5));
  check_error (path "trunc.pwts") "cut short at record 2/2";
  write_file (path "trail.pwts")
    (encode_segment ~count:1 (fun b ->
         enc_raw b ~name:"a" ~labels:[] ~at:1.0 ~value:1.0)
    ^ "junk");
  check_error (path "trail.pwts") "trailing garbage";
  write_file (path "unsorted.pwts")
    (encode_segment ~count:2 (fun b ->
         enc_raw b ~name:"b" ~labels:[] ~at:1.0 ~value:1.0;
         enc_raw b ~name:"a" ~labels:[] ~at:2.0 ~value:2.0));
  check_error (path "unsorted.pwts") "not sorted at record 2";
  write_file (path "kind.pwts")
    (encode_segment ~count:1 (fun b ->
         enc_head b ~name:"a" ~labels:[];
         Buffer.add_uint8 b 7;
         enc_f64 b 1.0;
         enc_f64 b 1.0));
  check_error (path "kind.pwts") "invalid record kind 0x07";
  write_file (path "labels.pwts")
    (encode_segment ~count:1 (fun b ->
         enc_raw b ~name:"a"
           ~labels:[ ("z", "1"); ("a", "2") ]
           ~at:1.0 ~value:1.0));
  check_error (path "labels.pwts") "labels not sorted";
  write_file (path "minmax.pwts")
    (encode_segment ~count:1 (fun b ->
         enc_bucket b ~name:"a" ~labels:[] ~start:0.0 ~res:60.0 ~count:2
           ~sum:3.0 ~min:9.0 ~max:1.0 ~last:1.0 ~last_at:5.0));
  check_error (path "minmax.pwts") "min > max";
  write_file (path "count.pwts")
    (encode_segment ~count:1 (fun b ->
         enc_bucket b ~name:"a" ~labels:[] ~start:0.0 ~res:60.0 ~count:0
           ~sum:0.0 ~min:0.0 ~max:0.0 ~last:0.0 ~last_at:0.0));
  check_error (path "count.pwts") "bucket with count 0"

(* --- unsealed tail recovery ---------------------------------------- *)

let test_truncated_tail_recovered () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "tsdb-000000.pwts" in
  (* An unsealed segment (marker count), as a killed writer leaves it:
     two complete records, then a record cut mid-float. *)
  let complete =
    encode_segment (fun b ->
        enc_raw b ~name:"a" ~labels:[] ~at:1.0 ~value:1.0;
        enc_raw b ~name:"a" ~labels:[] ~at:2.0 ~value:2.0;
        enc_raw b ~name:"a" ~labels:[] ~at:3.0 ~value:3.0)
  in
  write_file path (String.sub complete 0 (String.length complete - 11));
  (* Reading tolerates the torn tail: partial record dropped, not Corrupt. *)
  (match T.Segment.read_all path with
  | Error e -> Alcotest.fail ("recovery read failed: " ^ e)
  | Ok (records, dropped) ->
    Alcotest.(check int) "complete prefix survives" 2 (List.length records);
    Alcotest.(check bool) "partial tail flagged" true dropped);
  (* Opening the store repairs it in place into a sealed segment. *)
  let store = T.open_store ~dir () in
  Alcotest.(check int) "one segment recovered" 1 (T.recovered_segments store);
  let r = T.Segment.open_reader path in
  Alcotest.(check bool) "rewritten sealed" true (T.Segment.sealed r);
  T.Segment.close r;
  (match T.query_store store with
  | [ ("a", [], records) ] ->
    Alcotest.(check (list (pair (float 0.0) (float 0.0))))
      "points intact after repair"
      [ (1.0, 1.0); (2.0, 2.0) ]
      (List.map T.point_of_record records)
  | _ -> Alcotest.fail "unexpected query result after recovery");
  (* A fresh open finds nothing left to repair. *)
  Alcotest.(check int) "idempotent" 0
    (T.recovered_segments (T.open_store ~dir ()))

(* --- downsampling identity ----------------------------------------- *)

(* Monotone random series: the shape every collector produces. *)
let gen_points seed =
  let rng = Netcore.Rng.create seed in
  let n = 20 + Netcore.Rng.int rng 60 in
  let at = ref 0.0 in
  List.init n (fun _ ->
      at := !at +. (0.5 +. (Netcore.Rng.float rng *. 40.0));
      let v = (Netcore.Rng.float rng *. 200.0) -. 100.0 in
      (!at, v))

let prop_downsample_matches_raw =
  QCheck.Test.make ~count:40 ~name:"downsampled buckets ≡ recompute from raw"
    QCheck.small_int
    (fun seed ->
      with_temp_dir @@ fun dir ->
      let res = 60.0 in
      let pts = gen_points seed in
      let newest = List.fold_left (fun acc (at, _) -> Float.max acc at) 0.0 pts in
      let store = T.open_store ~resolution:res ~dir () in
      List.iter (fun (at, v) -> T.append_point store ~name:"x" ~at v) pts;
      ignore (T.flush store);
      T.compact store;
      let records =
        match T.query_store store with
        | [ ("x", [], records) ] -> records
        | [] -> []
        | _ -> Alcotest.fail "unexpected series grouping"
      in
      (* Every stored record is either a raw point past the fold cutoff
         or a bucket whose aggregates match recomputation over exactly
         the raw points it replaced. *)
      let ok_record r =
        if T.is_raw r then
          (* kept raw because its bucket had not fully passed *)
          Float.floor (r.T.t_at /. res) *. res +. res > newest
          && List.mem (r.T.t_at, r.T.t_sum) pts
        else begin
          let in_bucket =
            List.filter
              (fun (at, _) -> at >= r.T.t_at && at < r.T.t_at +. res)
              pts
          in
          let sum = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 in
          let vs = List.map snd in_bucket in
          r.T.t_count = List.length in_bucket
          && r.T.t_sum = sum in_bucket (* bit-exact: same fold order *)
          && r.T.t_min = List.fold_left Float.min infinity vs
          && r.T.t_max = List.fold_left Float.max neg_infinity vs
          && (r.T.t_last_at, r.T.t_last)
             = List.nth in_bucket (List.length in_bucket - 1)
        end
      in
      (* No point lost: bucket counts + raw records cover the input. *)
      let covered =
        List.fold_left
          (fun acc r -> acc + (if T.is_raw r then 1 else r.T.t_count))
          0 records
      in
      covered = List.length pts && List.for_all ok_record records)

(* Compacting incrementally (flush/compact/flush/compact, as the live
   service does at occasion boundaries) converges on the same store as
   one final compaction — the determinism behind kill-and-resume. *)
let prop_incremental_compaction_identical =
  QCheck.Test.make ~count:30 ~name:"incremental compaction ≡ one-shot"
    QCheck.small_int
    (fun seed ->
      with_temp_dir @@ fun dir_a ->
      with_temp_dir @@ fun dir_b ->
      let res = 60.0 in
      let pts = gen_points (seed + 1000) in
      let half = List.length pts / 2 in
      let first = List.filteri (fun i _ -> i < half) pts in
      let second = List.filteri (fun i _ -> i >= half) pts in
      (* A: everything in one open handle, single flush+compact. *)
      let a = T.open_store ~resolution:res ~dir:dir_a () in
      List.iter (fun (at, v) -> T.append_point a ~name:"x" ~at v) pts;
      ignore (T.flush a);
      T.compact a;
      (* B: two sessions with a "kill" (handle dropped) in between,
         compacting each time. *)
      let b1 = T.open_store ~resolution:res ~dir:dir_b () in
      List.iter (fun (at, v) -> T.append_point b1 ~name:"x" ~at v) first;
      ignore (T.flush b1);
      T.compact b1;
      let b2 = T.open_store ~resolution:res ~dir:dir_b () in
      List.iter (fun (at, v) -> T.append_point b2 ~name:"x" ~at v) second;
      ignore (T.flush b2);
      T.compact b2;
      T.query_store a = T.query_store b2)

(* --- restart survival ---------------------------------------------- *)

let test_restart_byte_identical () =
  with_temp_dir @@ fun dir_a ->
  with_temp_dir @@ fun dir_b ->
  let rounds =
    [
      [ ("up", 10.0, 1.0); ("drop", 10.0, 0.01) ];
      [ ("up", 20.0, 1.0); ("drop", 20.0, 0.12) ];
      [ ("up", 30.0, 0.0); ("drop", 30.0, 0.2) ];
    ]
  in
  let feed store round =
    List.iter (fun (name, at, v) -> T.append_point store ~name ~at v) round;
    ignore (T.flush store)
  in
  (* A: uninterrupted service. *)
  let a = T.open_store ~dir:dir_a () in
  List.iter (feed a) rounds;
  (* B: killed and reopened after every round. *)
  List.iter (fun round -> feed (T.open_store ~dir:dir_b ()) round) rounds;
  (* Same segment files, byte for byte. *)
  let names d = List.map Filename.basename (T.segments_in_dir d) in
  Alcotest.(check (list string)) "same segment names" (names dir_a) (names dir_b);
  List.iter2
    (fun pa pb ->
      Alcotest.(check bool)
        (Filename.basename pa ^ " byte-identical")
        true
        (read_file pa = read_file pb))
    (T.segments_in_dir dir_a) (T.segments_in_dir dir_b);
  (* And the pre-kill window answers identically through the query path. *)
  let pred = T.predicate ~since:10.0 ~until:20.0 ()
  and a2 = T.open_store ~dir:dir_a ()
  and b2 = T.open_store ~dir:dir_b () in
  Alcotest.(check bool) "range query identical" true
    (T.query_store ~pred a2 = T.query_store ~pred b2)

let test_alert_rearm_matches_uninterrupted () =
  let rule =
    Alerts.rule ~series:"site_drop_rate" ~op:Alerts.Gt ~threshold:0.05
      ~for_count:2 ()
  in
  let points =
    [ (100.0, 0.01); (200.0, 0.09); (300.0, 0.1); (400.0, 0.08) ]
  in
  let labels = [ ("site", "STAR") ] in
  (* Uninterrupted: evaluate after every collected point. *)
  let reg_a = Registry.create () in
  let col_a = Series.Collector.create () in
  let al_a = Alerts.create ~registry:reg_a [ rule ] in
  List.iter
    (fun (at, v) ->
      Series.Collector.push_point col_a ~name:"site_drop_rate" ~labels ~at v;
      ignore (Alerts.evaluate al_a ~at col_a))
    points;
  (* Killed after the last point was persisted; a fresh service re-arms
     from the stored tail. *)
  with_temp_dir @@ fun dir ->
  let store = T.open_store ~dir () in
  List.iter
    (fun (at, v) -> T.append_point store ~name:"site_drop_rate" ~labels ~at v)
    points;
  ignore (T.flush store);
  let reg_b = Registry.create () in
  let al_b = Alerts.create ~registry:reg_b [ rule ] in
  ignore (Alerts.rearm al_b (T.tail_store ~n:(rule.Alerts.for_count + 1) store));
  let state al =
    List.map
      (fun (r, ls, v) -> (r.Alerts.rule_name, ls, v))
      (Alerts.active al)
  in
  Alcotest.(check bool) "firing after re-arm" true (state al_a <> []);
  Alcotest.(check bool) "active set identical" true (state al_a = state al_b);
  let gauge reg =
    Registry.value reg "patchwork_alert_active"
      ~labels:(("rule", rule.Alerts.rule_name) :: labels)
  in
  Alcotest.(check bool) "gauge identical" true (gauge reg_a = gauge reg_b);
  (* Both services watch recovery happen the same way. *)
  let col_b = Series.Collector.create () in
  let next at v col al =
    Series.Collector.push_point col ~name:"site_drop_rate" ~labels ~at v;
    Alerts.evaluate al ~at col
  in
  let ev_a = next 500.0 0.0 col_a al_a and ev_b = next 500.0 0.0 col_b al_b in
  Alcotest.(check bool) "clear transition identical" true
    (List.map (fun e -> (e.Alerts.ev_rule, e.Alerts.ev_labels, e.Alerts.ev_value, e.Alerts.ev_transition)) ev_a
    = List.map (fun e -> (e.Alerts.ev_rule, e.Alerts.ev_labels, e.Alerts.ev_value, e.Alerts.ev_transition)) ev_b
    && List.length ev_a = 1);
  Alcotest.(check bool) "both idle after clear" true
    (state al_a = [] && state al_b = [])

(* --- the /series.json endpoint over store + memory ----------------- *)

let req ?(query = []) path = { Http.meth = "GET"; path; query; headers = [] }

let body_of (resp : Http.response) = resp.Http.body

let test_series_endpoint_history_and_filters () =
  with_temp_dir @@ fun dir ->
  let store = T.open_store ~dir () in
  (* History on disk: two rounds flushed before the "restart"... *)
  List.iter
    (fun (at, v) -> T.append_point store ~name:"captured_bytes_per_s" ~at v)
    [ (100.0, 10.0); (200.0, 20.0) ];
  T.append_point store ~name:"up" ~labels:[ ("site", "STAR") ] ~at:200.0 1.0;
  ignore (T.flush store);
  (* ...and a fresh collector that only saw the post-restart round. *)
  let col = Series.Collector.create () in
  Series.Collector.push_point col ~name:"captured_bytes_per_s" ~at:300.0 30.0;
  let get ?query () =
    match Obs.Endpoints.series ~tsdb:store ~collector:col (req ?query "/series.json") with
    | resp when resp.Http.status = 200 -> (
      match J.parse (body_of resp) with
      | Ok doc -> doc
      | Error e -> Alcotest.fail ("unparseable body: " ^ e))
    | resp -> Alcotest.failf "expected 200, got %d" resp.Http.status
  in
  let points_of doc name =
    match J.member "series" doc with
    | Some (J.Arr items) ->
      List.concat_map
        (fun item ->
          if Option.bind (J.member "name" item) J.to_str = Some name then
            match J.member "points" item with
            | Some (J.Arr ps) ->
              List.filter_map
                (fun p ->
                  match
                    ( Option.bind (J.member "at" p) J.to_float,
                      Option.bind (J.member "value" p) J.to_float )
                  with
                  | Some at, Some v -> Some (at, v)
                  | _ -> None)
                ps
            | _ -> []
          else [])
        items
    | _ -> []
  in
  (* Unfiltered: history + memory, oldest first, seamless. *)
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "history prepended to memory"
    [ (100.0, 10.0); (200.0, 20.0); (300.0, 30.0) ]
    (points_of (get ()) "captured_bytes_per_s");
  (* ?since= cuts history; ?name= drops other series. *)
  let doc = get ~query:[ ("since", "150"); ("name", "captured_bytes_per_s") ] () in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "since filter"
    [ (200.0, 20.0); (300.0, 30.0) ]
    (points_of doc "captured_bytes_per_s");
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "name filter" [] (points_of doc "up");
  (* Label filter keeps only the site-labelled series. *)
  let doc = get ~query:[ ("label", "site=STAR") ] () in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "label filter" [ (200.0, 1.0) ] (points_of doc "up");
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "label filter drops unlabelled" []
    (points_of doc "captured_bytes_per_s");
  (* Malformed parameters are 400, not 500 and not silently ignored. *)
  let status query =
    (Obs.Endpoints.series ~tsdb:store ~collector:col (req ~query "/series.json"))
      .Http.status
  in
  Alcotest.(check int) "malformed since" 400 (status [ ("since", "yesterday") ]);
  Alcotest.(check int) "malformed until" 400 (status [ ("until", "nan") ]);
  Alcotest.(check int) "malformed label" 400 (status [ ("label", "no-equals") ]);
  Alcotest.(check int) "well-formed still 200" 200 (status [ ("since", "-1e3") ])

(* The endpoint's answer for a pre-kill window is identical before a
   kill and after recovery+restart — served bytes included. *)
let test_series_endpoint_restart_identity () =
  with_temp_dir @@ fun dir ->
  let store = T.open_store ~dir () in
  List.iter
    (fun (at, v) -> T.append_point store ~name:"x" ~at v)
    [ (10.0, 1.0); (20.0, 2.0) ];
  ignore (T.flush store);
  let empty_col = Series.Collector.create () in
  let serve store =
    body_of
      (Obs.Endpoints.series ~tsdb:store ~collector:empty_col
         (req ~query:[ ("until", "20") ] "/series.json"))
  in
  let before = serve store in
  (* Kill: leave an unsealed segment with a torn tail behind. *)
  let tail_path = Filename.concat dir "tsdb-999999.pwts" in
  let torn =
    encode_segment (fun b ->
        enc_raw b ~name:"x" ~labels:[] ~at:30.0 ~value:3.0;
        enc_raw b ~name:"x" ~labels:[] ~at:40.0 ~value:4.0)
  in
  write_file tail_path (String.sub torn 0 (String.length torn - 7));
  let reopened = T.open_store ~dir () in
  Alcotest.(check int) "torn tail recovered" 1 (T.recovered_segments reopened);
  Alcotest.(check string) "pre-kill window byte-identical" before
    (serve reopened);
  (* The complete record of the torn segment survived recovery. *)
  match T.query_store ~pred:(T.predicate ~since:25.0 ()) reopened with
  | [ ("x", [], [ r ]) ] ->
    Alcotest.(check (pair (float 0.0) (float 0.0)))
      "recovered tail point" (30.0, 3.0) (T.point_of_record r)
  | _ -> Alcotest.fail "recovered tail segment not served"

(* --- federation ---------------------------------------------------- *)

let test_federation_scrape_and_dead_target () =
  (* A fake per-site exposition endpoint backed by its own registry. *)
  let site_reg = Registry.create () in
  Registry.inc
    (Registry.counter site_reg "capture_offered_frames_total"
       ~labels:[ ("site", "STAR") ])
    1000.0;
  Registry.inc (Registry.counter site_reg "frames_total") 500.0;
  let handler =
    Http.routes
      [
        ( "/metrics",
          fun _ ->
            Http.response
              (Obs.Export.to_prometheus (Registry.snapshot site_reg)) );
      ]
  in
  let server = Http.create ~port:0 handler in
  let port = Http.port server in
  let bg = Parallel.Background.spawn ~name:"fed-test" (fun () -> Http.run server) in
  Fun.protect
    ~finally:(fun () ->
      Http.stop server;
      match Parallel.Background.join bg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "server died: %s" (Printexc.to_string e))
    (fun () ->
      (* A dead target on a freshly closed port: never blocks the rest. *)
      let dead_port =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        let p =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> assert false
        in
        Unix.close fd;
        p
      in
      let logged = ref [] in
      let fed =
        Fed.create ~timeout_s:1.0
          ~log:(fun msg -> logged := msg :: !logged)
          [
            Fed.target ~site:"STAR" ~port ();
            Fed.target ~site:"WASH" ~port:dead_port ();
          ]
      in
      let pts = Fed.scrape fed ~at:100.0 in
      (* Everything leaving the federation plane is site-scoped —
         unlabelled aggregate derivations would shadow the local
         service's own series. *)
      Alcotest.(check bool) "every federated point is site-labelled" true
        (pts <> []
        && List.for_all (fun (_, labels, _) -> List.mem_assoc "site" labels) pts);
      (* Baseline round still reports liveness points for every site. *)
      let up site =
        List.filter_map
          (fun (name, labels, p) ->
            if name = "up" && labels = [ ("site", site) ] then
              Some p.Series.value
            else None)
          pts
      in
      Alcotest.(check (list (float 0.0))) "good site up" [ 1.0 ] (up "STAR");
      Alcotest.(check (list (float 0.0))) "dead site down" [ 0.0 ] (up "WASH");
      Alcotest.(check bool) "failure logged, names the site" true
        (List.exists
           (fun m ->
             let has sub =
               let n = String.length m and k = String.length sub in
               let rec go i = i + k <= n && (String.sub m i k = sub || go (i + 1)) in
               go 0
             in
             has "WASH" && has "failed")
           !logged);
      (* Scraped samples landed site-labelled in the federation registry;
         already-labelled samples keep their own site label. *)
      Alcotest.(check bool) "unlabelled sample gains site" true
        (Registry.value (Fed.registry fed) "frames_total"
           ~labels:[ ("site", "STAR") ]
        = Some (Registry.Gauge 500.0));
      Alcotest.(check bool) "existing site label preserved" true
        (Registry.value (Fed.registry fed) "capture_offered_frames_total"
           ~labels:[ ("site", "STAR") ]
        = Some (Registry.Gauge 1000.0));
      Alcotest.(check bool) "scrape duration gauge exists" true
        (Registry.value (Fed.registry fed) "scrape_duration_seconds"
           ~labels:[ ("site", "STAR") ]
        <> None);
      (* Second round: the counter moved; the collector derives deltas
         federation-wide, and staleness ages for the dead site. *)
      Registry.inc
        (Registry.counter site_reg "capture_offered_frames_total"
           ~labels:[ ("site", "STAR") ])
        500.0;
      let pts2 = Fed.scrape fed ~at:200.0 in
      let age site =
        List.filter_map
          (fun (name, labels, p) ->
            if name = "scrape_age_seconds" && labels = [ ("site", site) ] then
              Some p.Series.value
            else None)
          pts2
      in
      Alcotest.(check (list (float 0.0))) "live site age 0" [ 0.0 ] (age "STAR");
      (* WASH never answered: its age is undefined, so no point — the
         up=0 gauge is the alerting hook for a never-up site. *)
      Alcotest.(check (list (float 0.0))) "never-up site has no age" [] (age "WASH"))

let test_target_parsing () =
  (match Fed.target_of_string "STAR=127.0.0.1:9100" with
  | Ok t ->
    Alcotest.(check string) "site" "STAR" t.Fed.site;
    Alcotest.(check string) "host" "127.0.0.1" t.Fed.host;
    Alcotest.(check int) "port" 9100 t.Fed.port;
    Alcotest.(check string) "default path" "/metrics" t.Fed.path
  | Error e -> Alcotest.fail e);
  (match Fed.target_of_string "WASH=9200/custom/metrics" with
  | Ok t ->
    Alcotest.(check string) "default host" "127.0.0.1" t.Fed.host;
    Alcotest.(check int) "bare port" 9200 t.Fed.port;
    Alcotest.(check string) "custom path" "/custom/metrics" t.Fed.path
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      Alcotest.(check bool) (bad ^ " rejected") true
        (Result.is_error (Fed.target_of_string bad)))
    [ "no-equals"; "=9100"; "X=hostonly"; "X=1.2.3.4:notaport"; "X=1.2.3.4:0" ]

let test_duration_parsing () =
  List.iter
    (fun (s, expect) ->
      match Netcore.Units.parse_duration s with
      | Ok v -> Alcotest.(check (float 0.0)) s expect v
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    [
      ("90", 90.0);
      ("90s", 90.0);
      ("15m", 900.0);
      ("2h", 7200.0);
      ("7d", 604800.0);
      ("1w", 604800.0);
      ("1.5h", 5400.0);
    ];
  List.iter
    (fun bad ->
      Alcotest.(check bool) (bad ^ " rejected") true
        (Result.is_error (Netcore.Units.parse_duration bad)))
    [ ""; "abc"; "-5m"; "0"; "5y"; "nan" ]

(* --- retention ----------------------------------------------------- *)

let test_retention_drops_old_records () =
  with_temp_dir @@ fun dir ->
  let store = T.open_store ~retention:100.0 ~dir () in
  List.iter
    (fun (at, v) -> T.append_point store ~name:"x" ~at v)
    [ (10.0, 1.0); (150.0, 2.0); (300.0, 3.0) ];
  ignore (T.flush store);
  T.compact store;
  match T.query_store store with
  | [ ("x", [], records) ] ->
    (* newest = 300; cutoff = 200: the 10.0 and 150.0 points age out. *)
    Alcotest.(check (list (pair (float 0.0) (float 0.0))))
      "only the retained window survives"
      [ (300.0, 3.0) ]
      (List.map T.point_of_record records)
  | _ -> Alcotest.fail "unexpected query result"

let suites =
  [
    ( "tsdb.segment",
      [
        Alcotest.test_case "roundtrip" `Quick test_segment_roundtrip;
        Alcotest.test_case "duplicate keys roundtrip" `Quick
          test_segment_duplicate_keys_roundtrip;
        Alcotest.test_case "format pinned both ways" `Quick
          test_segment_format_pinned;
        Alcotest.test_case "corruption rejected" `Quick
          test_segment_corruption_rejected;
        Alcotest.test_case "truncated tail recovered" `Quick
          test_truncated_tail_recovered;
      ] );
    ( "tsdb.downsample",
      List.map QCheck_alcotest.to_alcotest
        [ prop_downsample_matches_raw; prop_incremental_compaction_identical ]
      @ [
          Alcotest.test_case "retention drops old records" `Quick
            test_retention_drops_old_records;
        ] );
    ( "tsdb.restart",
      [
        Alcotest.test_case "byte-identical after kill+resume" `Quick
          test_restart_byte_identical;
        Alcotest.test_case "alert re-arm matches uninterrupted" `Quick
          test_alert_rearm_matches_uninterrupted;
        Alcotest.test_case "endpoint restart identity" `Quick
          test_series_endpoint_restart_identity;
      ] );
    ( "tsdb.endpoint",
      [
        Alcotest.test_case "history + filters + 400s" `Quick
          test_series_endpoint_history_and_filters;
      ] );
    ( "tsdb.federation",
      [
        Alcotest.test_case "scrape round with dead target" `Quick
          test_federation_scrape_and_dead_target;
        Alcotest.test_case "target parsing" `Quick test_target_parsing;
        Alcotest.test_case "duration parsing" `Quick test_duration_parsing;
      ] );
  ]
