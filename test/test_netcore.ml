open Netcore

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let a = Rng.bits64 parent and b = Rng.bits64 child in
  Alcotest.(check bool) "streams differ" true (not (Int64.equal a b))

let test_rng_float_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_int_range () =
  let rng = Rng.create 2 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_weighted () =
  let rng = Rng.create 3 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 30_000 do
    let v = Rng.weighted rng [ (0.7, "a"); (0.2, "b"); (0.1, "c") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let freq k = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) /. 30_000.0 in
  Alcotest.(check bool) "a ~ 0.7" true (Float.abs (freq "a" -. 0.7) < 0.02);
  Alcotest.(check bool) "b ~ 0.2" true (Float.abs (freq "b" -. 0.2) < 0.02);
  Alcotest.(check bool) "c ~ 0.1" true (Float.abs (freq "c" -. 0.1) < 0.02)

let test_exponential_mean () =
  let rng = Rng.create 4 in
  let est = Dist.mean_estimate (Dist.Exponential 5.0) 50_000 rng in
  Alcotest.(check bool) "mean ~ 5" true (Float.abs (est -. 5.0) < 0.2)

let test_zipf_rank1_most_common () =
  let rng = Rng.create 5 in
  let z = Dist.Zipf.create ~n:20 ~s:1.1 in
  let counts = Array.make 21 0 in
  for _ = 1 to 20_000 do
    let r = Dist.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 1 beats rank 2" true (counts.(1) > counts.(2));
  Alcotest.(check bool) "rank 2 beats rank 10" true (counts.(2) > counts.(10))

let test_summary_percentiles () =
  let values = Array.init 101 float_of_int in
  let s = Dist.Summary.of_array values in
  Alcotest.(check (float 1e-9)) "p50" 50.0 s.p50;
  Alcotest.(check (float 1e-9)) "p90" 90.0 s.p90;
  Alcotest.(check (float 1e-9)) "mean" 50.0 s.mean;
  Alcotest.(check int) "count" 101 s.count

let test_histogram_binning () =
  let h = Histogram.create [| 64.0; 128.0; 256.0 |] in
  Histogram.add h 10.0;
  Histogram.add h 64.0;
  Histogram.add h 127.0;
  Histogram.add h 255.0;
  Histogram.add h 256.0;
  Histogram.add h ~count:2 1000.0;
  Alcotest.(check (array int)) "counts" [| 1; 2; 1; 3 |] (Histogram.counts h);
  Alcotest.(check int) "total" 7 (Histogram.total h)

let test_histogram_merge () =
  let a = Histogram.create [| 10.0 |] and b = Histogram.create [| 10.0 |] in
  Histogram.add a 5.0;
  Histogram.add b 15.0;
  let m = Histogram.merge a b in
  Alcotest.(check (array int)) "merged" [| 1; 1 |] (Histogram.counts m)

let test_histogram_float_counts () =
  let h = Histogram.create [| 100.0 |] in
  (* Sampling weights land fractionally; fcounts/ftotal keep them
     exact while the int accessors round for display. *)
  Histogram.addf h ~count:2.5 10.0;
  Histogram.addf h ~count:0.25 10.0;
  Histogram.addf h ~count:1.75 200.0;
  Alcotest.(check (array (float 1e-12))) "fcounts" [| 2.75; 1.75 |]
    (Histogram.fcounts h);
  Alcotest.(check (float 1e-12)) "ftotal" 4.5 (Histogram.ftotal h);
  Alcotest.(check (array int)) "counts round" [| 3; 2 |] (Histogram.counts h);
  Alcotest.(check (float 1e-12)) "fractions from floats" (2.75 /. 4.5)
    (Histogram.fractions h).(0);
  Alcotest.(check bool) "negative count rejected" true
    (match Histogram.addf h ~count:(-1.0) 10.0 with
    | exception Invalid_argument _ -> true
    | () -> false);
  (* Merging preserves the fractional counts. *)
  let other = Histogram.create [| 100.0 |] in
  Histogram.addf other ~count:0.5 10.0;
  Alcotest.(check (float 1e-12)) "merge keeps fractions" 3.25
    (Histogram.fcounts (Histogram.merge h other)).(0)

let test_histogram_int_path_exact () =
  (* The classic int API must stay exact through the float store. *)
  let h = Histogram.create [| 10.0 |] in
  for _ = 1 to 1_000_000 do
    Histogram.add h 5.0
  done;
  Alcotest.(check int) "a million adds stay exact" 1_000_000
    (Histogram.counts h).(0)

let test_log2_histogram () =
  let h = Histogram.Log2.create () in
  Histogram.Log2.add h 5.0;
  (* bucket 2: [4,8) *)
  Histogram.Log2.add h 1000.0;
  (* bucket 9: [512,1024) *)
  Alcotest.(check (list (pair int int))) "buckets" [ (2, 1); (9, 1) ]
    (Histogram.Log2.buckets h);
  (* Upper-bound sum excluding buckets below exponent 5 keeps only the
     1000-value, accounted as 2^10. *)
  Alcotest.(check (float 1e-9)) "upper-bound sum" 1024.0
    (Histogram.Log2.upper_bound_sum h ~min_exponent:5)

let test_mac_roundtrip () =
  let m = Mac.of_string "02:1a:2b:3c:4d:5e" in
  Alcotest.(check string) "roundtrip" "02:1a:2b:3c:4d:5e" (Mac.to_string m);
  let o = Mac.to_octets m in
  Alcotest.(check int) "first octet" 0x02 o.(0);
  Alcotest.(check int) "last octet" 0x5e o.(5)

let test_mac_random_unicast () =
  let rng = Rng.create 6 in
  for _ = 1 to 100 do
    let m = Mac.random rng in
    Alcotest.(check bool) "unicast" false (Mac.is_multicast m)
  done

let test_ipv4_roundtrip () =
  let a = Ipv4_addr.of_string "10.128.3.77" in
  Alcotest.(check string) "roundtrip" "10.128.3.77" (Ipv4_addr.to_string a);
  Alcotest.(check bool) "private" true (Ipv4_addr.is_private a);
  Alcotest.(check bool) "public" false
    (Ipv4_addr.is_private (Ipv4_addr.of_string "8.8.8.8"))

let test_ipv4_prefix () =
  let rng = Rng.create 7 in
  let prefix = Ipv4_addr.of_string "10.42.0.0" in
  for _ = 1 to 200 do
    let a = Ipv4_addr.random_in rng ~prefix ~prefix_len:16 in
    Alcotest.(check bool) "in prefix" true (Ipv4_addr.in_prefix a ~prefix ~prefix_len:16)
  done

let test_ipv6_roundtrip () =
  let cases =
    [ ("2001:db8::1", "2001:db8::1"); ("::1", "::1"); ("fe80::", "fe80::");
      ("2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1") ]
  in
  List.iter
    (fun (input, expected) ->
      let a = Ipv6_addr.of_string input in
      Alcotest.(check string) input expected (Ipv6_addr.to_string a))
    cases

let test_checksum_rfc1071 () =
  (* Example from RFC 1071 section 3. *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  let sum = Checksum.ones_complement_sum b ~pos:0 ~len:8 in
  Alcotest.(check int) "sum" 0xddf2 sum;
  Alcotest.(check int) "checksum" (lnot 0xddf2 land 0xFFFF) (Checksum.finish sum)

let test_units_pps () =
  (* 100 Gbps of 1514-byte frames ~ 8.13 Mpps with 24B overhead. *)
  let pps = Units.pps_of_bps (Units.gbps 100.0) ~frame_bytes:1514 in
  Alcotest.(check bool) "about 8.1Mpps" true (Float.abs (pps -. 8.127e6) < 0.01e6);
  let back = Units.bps_of_pps pps ~frame_bytes:1514 in
  Alcotest.(check (float 1.0)) "inverse" (Units.gbps 100.0) back

let test_timebase () =
  Alcotest.(check int) "week" 2 (Timebase.week_of (Timebase.of_days 15.0));
  Alcotest.(check int) "day" 15 (Timebase.day_of (Timebase.of_days 15.5));
  Alcotest.(check int) "jan" 0 (Timebase.month_of_day 30);
  Alcotest.(check int) "feb" 1 (Timebase.month_of_day 31);
  Alcotest.(check int) "dec" 11 (Timebase.month_of_day 364);
  Alcotest.(check (float 1e-9)) "hour of day" 12.0
    (Timebase.hour_of_day (Timebase.of_days 3.5))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"rng int always in bounds" ~count:500
      (pair small_int (int_range 1 1_000_000))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    Test.make ~name:"ipv4 string roundtrip" ~count:500
      (quad (int_range 0 255) (int_range 0 255) (int_range 0 255) (int_range 0 255))
      (fun (a, b, c, d) ->
        let addr = Ipv4_addr.of_octets a b c d in
        Ipv4_addr.equal addr (Ipv4_addr.of_string (Ipv4_addr.to_string addr)));
    Test.make ~name:"ipv6 string roundtrip" ~count:500
      (pair (map Int64.of_int int) (map Int64.of_int int))
      (fun (hi, lo) ->
        let addr = Ipv6_addr.make hi lo in
        Ipv6_addr.equal addr (Ipv6_addr.of_string (Ipv6_addr.to_string addr)));
    Test.make ~name:"mac string roundtrip" ~count:500
      (map Int64.of_int int)
      (fun raw ->
        let m = Mac.of_int64 raw in
        Mac.equal m (Mac.of_string (Mac.to_string m)));
    Test.make ~name:"histogram total equals additions" ~count:200
      (list (float_range (-1000.0) 1000.0))
      (fun values ->
        let h = Histogram.create [| -10.0; 0.0; 10.0 |] in
        List.iter (fun v -> Histogram.add h v) values;
        Histogram.total h = List.length values);
  ]

let suites =
  [
    ( "netcore.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "weighted frequencies" `Quick test_rng_weighted;
      ] );
    ( "netcore.dist",
      [
        Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        Alcotest.test_case "zipf ordering" `Quick test_zipf_rank1_most_common;
        Alcotest.test_case "summary percentiles" `Quick test_summary_percentiles;
      ] );
    ( "netcore.histogram",
      [
        Alcotest.test_case "binning" `Quick test_histogram_binning;
        Alcotest.test_case "merge" `Quick test_histogram_merge;
        Alcotest.test_case "float counts" `Quick test_histogram_float_counts;
        Alcotest.test_case "int path exact" `Quick test_histogram_int_path_exact;
        Alcotest.test_case "log2" `Quick test_log2_histogram;
      ] );
    ( "netcore.addr",
      [
        Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
        Alcotest.test_case "mac random unicast" `Quick test_mac_random_unicast;
        Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
        Alcotest.test_case "ipv4 prefix" `Quick test_ipv4_prefix;
        Alcotest.test_case "ipv6 roundtrip" `Quick test_ipv6_roundtrip;
      ] );
    ( "netcore.misc",
      [
        Alcotest.test_case "checksum rfc1071" `Quick test_checksum_rfc1071;
        Alcotest.test_case "units pps" `Quick test_units_pps;
        Alcotest.test_case "timebase" `Quick test_timebase;
      ] );
    ("netcore.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
