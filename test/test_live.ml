(* The live half of the observability stack: HTTP exposition, rolling
   series, threshold alerts, and bounded span sampling. *)

module Registry = Obs.Registry
module Series = Obs.Series
module Alerts = Obs.Alerts
module Span = Obs.Span
module Export = Obs.Export
module Http = Obs.Http
module Clock = Obs.Clock
module J = Obs.Export.Json

let with_fake_clock f =
  let now = ref 1000.0 in
  Clock.set_source (fun () -> !now);
  Fun.protect ~finally:Clock.reset_source (fun () -> f now)

(* --- HTTP request parsing (pure) --- *)

let test_http_parse () =
  (match Http.parse_request "GET /series.json?width=8&q=a%20b HTTP/1.1\r\nHost: x\r\nX-Seq: 7\r\n\r\n" with
  | Error s -> Alcotest.failf "parse failed: %d" s
  | Ok req ->
    Alcotest.(check string) "method" "GET" req.Http.meth;
    Alcotest.(check string) "path" "/series.json" req.Http.path;
    Alcotest.(check (list (pair string string)))
      "query decoded"
      [ ("width", "8"); ("q", "a b") ]
      req.Http.query;
    Alcotest.(check (option string)) "headers lowercased" (Some "7")
      (List.assoc_opt "x-seq" req.Http.headers));
  (match Http.parse_request "head /healthz HTTP/1.0\n\n" with
  | Ok req -> Alcotest.(check string) "method uppercased" "HEAD" req.Http.meth
  | Error _ -> Alcotest.fail "bare-LF head rejected");
  Alcotest.(check bool) "garbage is 400" true
    (Http.parse_request "not an http request\r\n\r\n" = Error 400);
  Alcotest.(check bool) "relative target is 400" true
    (Http.parse_request "GET metrics HTTP/1.1\r\n\r\n" = Error 400)

let test_http_routes () =
  let handler =
    Http.routes [ ("/metrics", fun _ -> Http.response "data\n") ]
  in
  let req meth path =
    { Http.meth; path; query = []; headers = [] }
  in
  Alcotest.(check int) "known path" 200 (handler (req "GET" "/metrics")).Http.status;
  Alcotest.(check int) "HEAD allowed" 200 (handler (req "HEAD" "/metrics")).Http.status;
  Alcotest.(check int) "unknown is 404" 404 (handler (req "GET" "/nope")).Http.status;
  Alcotest.(check int) "POST is 405" 405 (handler (req "POST" "/metrics")).Http.status

(* --- HTTP over a real socket --- *)

let raw_request ~port text =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let b = Bytes.of_string text in
      ignore (Unix.write fd b 0 (Bytes.length b));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Buffer.contents buf)

let test_http_socket_smoke () =
  let reg = Registry.create () in
  Registry.inc (Registry.counter reg "smoke_total" ~help:"smoke") 3.0;
  Registry.inc
    (Registry.counter reg "smoke_total" ~labels:[ ("site", "STAR") ])
    1.0;
  let collector = Series.Collector.create () in
  Series.Collector.push_point collector ~name:"smoke_rate" ~at:100.0 1.0;
  Series.Collector.push_point collector ~name:"smoke_rate" ~at:200.0 2.0;
  Series.Collector.push_point collector ~name:"other"
    ~labels:[ ("site", "STAR") ] ~at:200.0 9.0;
  let handler =
    Http.routes
      [
        ( "/metrics",
          fun _ -> Http.response (Export.to_prometheus (Registry.snapshot reg)) );
        ("/series.json", fun req -> Obs.Endpoints.series ~collector req);
      ]
  in
  let server = Http.create ~port:0 handler in
  let port = Http.port server in
  Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
  let bg = Parallel.Background.spawn ~name:"http-test" (fun () -> Http.run server) in
  Fun.protect
    ~finally:(fun () ->
      Http.stop server;
      match Parallel.Background.join bg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "server died: %s" (Printexc.to_string e))
    (fun () ->
      (* Scrape /metrics and round-trip through the exposition parser. *)
      (match Http.get ~port "/metrics" with
      | Error msg -> Alcotest.fail ("get /metrics: " ^ msg)
      | Ok (status, body) -> (
        Alcotest.(check int) "metrics 200" 200 status;
        match Export.parse_prometheus body with
        | Error msg -> Alcotest.fail ("scraped text unparseable: " ^ msg)
        | Ok lines ->
          Alcotest.(check bool) "scraped value" true
            (List.mem ("smoke_total", [ ("site", "STAR") ], 1.0) lines)));
      (* /series.json filtering over the socket, through the same
         handler the weekly service mounts. *)
      (match Http.get ~port "/series.json?since=150&name=smoke_rate" with
      | Error msg -> Alcotest.fail ("get /series.json: " ^ msg)
      | Ok (status, body) -> (
        Alcotest.(check int) "series 200" 200 status;
        match Export.Json.parse body with
        | Error msg -> Alcotest.fail ("series body unparseable: " ^ msg)
        | Ok doc ->
          let has sub =
            let n = String.length body and k = String.length sub in
            let rec go i = i + k <= n && (String.sub body i k = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "filtered series present" true
            (has "smoke_rate" && has "\"at\":200");
          Alcotest.(check bool) "since filter applied" false (has "\"at\":100");
          Alcotest.(check bool) "name filter applied" false (has "other");
          Alcotest.(check bool) "parses as an object" true
            (Export.Json.member "series" doc <> None)));
      (* Malformed query parameters are 400s, not crashes. *)
      (match Http.get ~port "/series.json?since=abc" with
      | Ok (status, _) -> Alcotest.(check int) "malformed since" 400 status
      | Error msg -> Alcotest.fail msg);
      (match Http.get ~port "/series.json?label=oops" with
      | Ok (status, _) -> Alcotest.(check int) "malformed label" 400 status
      | Error msg -> Alcotest.fail msg);
      (* Unknown path. *)
      (match Http.get ~port "/nope" with
      | Ok (status, _) -> Alcotest.(check int) "404" 404 status
      | Error msg -> Alcotest.fail msg);
      (* Oversized request head. *)
      (match Http.get ~port ("/" ^ String.make 9000 'a') with
      | Ok (status, _) -> Alcotest.(check int) "431" 431 status
      | Error msg -> Alcotest.fail msg);
      (* A client that RSTs the connection before reading the response
         (SO_LINGER 0 + close) must not take the server down via
         SIGPIPE; the next scrape still answers. *)
      (let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       let req = Bytes.of_string "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n" in
       ignore (Unix.write fd req 0 (Bytes.length req));
       Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
       Unix.close fd);
      (match Http.get ~port "/metrics" with
      | Ok (status, _) ->
        Alcotest.(check int) "alive after client RST" 200 status
      | Error msg -> Alcotest.fail ("server died after client RST: " ^ msg));
      (* HEAD: status line + headers, no body. *)
      let raw = raw_request ~port "HEAD /metrics HTTP/1.1\r\nHost: t\r\n\r\n" in
      Alcotest.(check bool) "HEAD is 200" true
        (String.length raw > 12 && String.sub raw 0 12 = "HTTP/1.1 200");
      let body_start =
        let rec find i =
          if i + 4 > String.length raw then String.length raw
          else if String.sub raw i 4 = "\r\n\r\n" then i + 4
          else find (i + 1)
        in
        find 0
      in
      Alcotest.(check int) "HEAD has empty body" (String.length raw) body_start)

(* --- rolling series --- *)

let test_series_window () =
  let s = Series.create ~capacity:4 ~name:"x" () in
  Alcotest.(check (option (float 1e-9))) "empty rate" None (Series.rate s);
  for i = 1 to 6 do
    Series.push s ~at:(float_of_int i) (float_of_int (10 * i))
  done;
  Alcotest.(check int) "evicts to capacity" 4 (Series.length s);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "newest retained, oldest first"
    [ (3.0, 30.0); (4.0, 40.0); (5.0, 50.0); (6.0, 60.0) ]
    (List.map (fun p -> (p.Series.at, p.Series.value)) (Series.points s));
  Alcotest.(check (option (float 1e-9))) "rate" (Some 10.0) (Series.rate s);
  Alcotest.(check (option (float 1e-9)))
    "avg over window" (Some 50.0)
    (Series.avg_over s ~window:2.0);
  Alcotest.(check int) "sparkline width" 2
    (let line = Series.sparkline ~width:2 s in
     (* Each block glyph is 3 UTF-8 bytes. *)
     String.length line / 3);
  Alcotest.(check string) "flat series renders low blocks" "\u{2581}\u{2581}"
    (let f = Series.create ~name:"flat" () in
     Series.push f ~at:1.0 5.0;
     Series.push f ~at:2.0 5.0;
     Series.sparkline f)

(* A registry exercising every derived series. *)
let feed reg ~offered ~dropped ~stored ~busy ~success ~queue_wait =
  let c name labels v =
    if v > 0.0 then Registry.inc (Registry.counter reg name ~labels) v
  in
  c "capture_offered_frames_total" [ ("site", "STAR") ] offered;
  c "capture_switch_dropped_frames_total" [ ("site", "STAR") ] dropped;
  c "capture_stored_bytes_total" [] stored;
  c "pool_domain_busy_seconds_total" [ ("domain", "0") ] busy;
  c "occasion_sites_total" [ ("outcome", "success") ] success;
  if queue_wait > 0.0 then
    Registry.observe (Registry.histogram reg "pool_queue_wait_seconds") queue_wait

let test_collector_derivation () =
  with_fake_clock @@ fun now ->
  let reg = Registry.create () in
  let col = Series.Collector.create () in
  feed reg ~offered:1000.0 ~dropped:0.0 ~stored:0.0 ~busy:0.0 ~success:1.0
    ~queue_wait:0.0;
  Series.Collector.collect col ~at:100.0 reg;
  Alcotest.(check int) "baseline emits nothing" 0
    (List.length (Series.Collector.series col));
  (* One occasion later: 10% drop, 5000 B over 100 sim-seconds, domain
     busy 5 of 10 wall-seconds, 2 successes, one 0.3 s queue wait. *)
  now := !now +. 10.0;
  feed reg ~offered:1000.0 ~dropped:100.0 ~stored:5000.0 ~busy:5.0 ~success:2.0
    ~queue_wait:0.3;
  Series.Collector.collect col ~at:200.0 reg;
  let point name labels =
    match Series.Collector.find col ~labels name with
    | Some s -> Option.map (fun p -> p.Series.value) (Series.last s)
    | None -> None
  in
  Alcotest.(check (option (float 1e-9))) "site drop rate" (Some 0.1)
    (point "site_drop_rate" [ ("site", "STAR") ]);
  Alcotest.(check (option (float 1e-9))) "captured B/s" (Some 50.0)
    (point "captured_bytes_per_s" []);
  Alcotest.(check (option (float 1e-9))) "pool busy fraction" (Some 0.5)
    (point "pool_busy_fraction" []);
  Alcotest.(check (option (float 1e-9))) "outcome count" (Some 2.0)
    (point "occasion_outcome_count" [ ("outcome", "success") ]);
  (match point "pool_queue_wait_p99" [] with
  | Some v -> Alcotest.(check bool) "p99 covers the observation" true (v >= 0.3)
  | None -> Alcotest.fail "queue-wait p99 missing");
  (* A quiet round: rates return to zero, p99 reports no waiting. *)
  now := !now +. 10.0;
  Series.Collector.collect col ~at:300.0 reg;
  Alcotest.(check (option (float 1e-9))) "drop rate decays" (Some 0.0)
    (point "site_drop_rate" [ ("site", "STAR") ]);
  Alcotest.(check (option (float 1e-9))) "p99 decays" (Some 0.0)
    (point "pool_queue_wait_p99" []);
  Alcotest.(check int) "three collections" 3 (Series.Collector.collections col)

(* --- alerts --- *)

let test_rule_parsing () =
  (match Alerts.rule_of_string "site_drop_rate > 0.05 for 3" with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check string) "series" "site_drop_rate" r.Alerts.series_name;
    Alcotest.(check bool) "op" true (r.Alerts.op = Alerts.Gt);
    Alcotest.(check (float 1e-9)) "threshold" 0.05 r.Alerts.threshold;
    Alcotest.(check int) "for" 3 r.Alerts.for_count;
    (match Alerts.rule_of_string (Alerts.rule_to_string r) with
    | Ok r2 -> Alcotest.(check bool) "textual round-trip" true (r = r2)
    | Error msg -> Alcotest.fail ("re-parse: " ^ msg)));
  (match Alerts.rule_of_string "pool_queue_wait_p99 < 2" with
  | Ok r -> Alcotest.(check int) "default for" 1 r.Alerts.for_count
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "bad comparator rejected" true
    (Result.is_error (Alerts.rule_of_string "x >= 1"));
  Alcotest.(check bool) "bad threshold rejected" true
    (Result.is_error (Alerts.rule_of_string "x > lots"));
  Alcotest.(check bool) "bad for rejected" true
    (Result.is_error (Alerts.rule_of_string "x > 1 for zero"))

(* Inject mirror congestion (sustained switch drops), watch the alert
   fire after three consecutive violating occasions, then recover and
   watch it clear — mirroring the acceptance scenario end to end. *)
let test_alert_fires_and_clears () =
  with_fake_clock @@ fun now ->
  let reg = Registry.create () in
  let col = Series.Collector.create () in
  let rule =
    Alerts.rule ~series:"site_drop_rate" ~op:Alerts.Gt ~threshold:0.05
      ~for_count:3 ()
  in
  let alerts = Alerts.create ~registry:reg [ rule ] in
  let gauge () =
    Registry.value reg "patchwork_alert_active"
      ~labels:[ ("rule", rule.Alerts.rule_name); ("site", "STAR") ]
  in
  let occasion ~at ~dropped =
    now := !now +. 10.0;
    feed reg ~offered:1000.0 ~dropped ~stored:0.0 ~busy:0.0 ~success:1.0
      ~queue_wait:0.0;
    Series.Collector.collect col ~at reg;
    Alerts.evaluate alerts ~at col
  in
  Series.Collector.collect col ~at:0.0 reg;
  (* Congested occasions 1-2: violating but below for_count. *)
  Alcotest.(check int) "no event on 1st violation" 0
    (List.length (occasion ~at:100.0 ~dropped:100.0));
  Alcotest.(check int) "no event on 2nd violation" 0
    (List.length (occasion ~at:200.0 ~dropped:100.0));
  Alcotest.(check bool) "not yet active" true (Alerts.active alerts = []);
  (* Re-evaluating without a new collection must not re-count the same
     stale point toward "for 3". *)
  Alcotest.(check int) "stale re-evaluate emits nothing" 0
    (List.length (Alerts.evaluate alerts ~at:250.0 col));
  Alcotest.(check int) "stale re-evaluate again" 0
    (List.length (Alerts.evaluate alerts ~at:260.0 col));
  Alcotest.(check bool) "still not active after stale rounds" true
    (Alerts.active alerts = []);
  (* 3rd consecutive violation: fires. *)
  (match occasion ~at:300.0 ~dropped:100.0 with
  | [ e ] ->
    Alcotest.(check bool) "fired" true (e.Alerts.ev_transition = Alerts.Fired);
    Alcotest.(check (float 1e-9)) "violating value" 0.1 e.Alerts.ev_value;
    Alcotest.(check (list (pair string string))) "labelled per site"
      [ ("site", "STAR") ] e.Alerts.ev_labels;
    Alcotest.(check bool) "log line mentions the rule" true
      (let line = Alerts.event_to_string e in
       String.length line > 0
       && String.sub line 0 11 = "ALERT fired")
  | l -> Alcotest.failf "expected one Fired event, got %d" (List.length l));
  Alcotest.(check int) "one active" 1 (List.length (Alerts.active alerts));
  Alcotest.(check bool) "gauge raised" true (gauge () = Some (Registry.Gauge 1.0));
  (* Still violating: no duplicate event. *)
  Alcotest.(check int) "no re-fire while active" 0
    (List.length (occasion ~at:400.0 ~dropped:100.0));
  (* Recovery: clears immediately. *)
  (match occasion ~at:500.0 ~dropped:0.0 with
  | [ e ] ->
    Alcotest.(check bool) "cleared" true (e.Alerts.ev_transition = Alerts.Cleared)
  | l -> Alcotest.failf "expected one Cleared event, got %d" (List.length l));
  Alcotest.(check bool) "gauge lowered" true (gauge () = Some (Registry.Gauge 0.0));
  Alcotest.(check bool) "nothing active" true (Alerts.active alerts = [])

(* --- span sampling --- *)

let test_span_sampling_bounds () =
  with_fake_clock @@ fun now ->
  let budget = 8 in
  let t = Span.create ~max_children:budget ~seed:42 () in
  Span.with_span t "root" (fun root ->
      for i = 1 to 100 do
        let sp = Span.start t (string_of_int i) in
        now := !now +. 1.0;
        Span.finish t sp
      done;
      let kept = Span.children root in
      Alcotest.(check bool) "retained within budget" true
        (List.length kept <= budget);
      Alcotest.(check int) "exact child count" 100 (Span.child_count root);
      Alcotest.(check int) "sampled_out accounts for the rest"
        (100 - List.length kept)
        (Span.sampled_out root);
      (* Every child ran exactly 1 fake-clock second; the aggregate is
         exact even though most children were discarded. *)
      Alcotest.(check (float 1e-9)) "exact wall aggregate" 100.0
        (Span.child_wall_total root);
      (* The first half of the budget is the chronological prefix; the
         reservoir keeps arrival order. *)
      let seqs = List.map (fun c -> int_of_string (Span.name c)) kept in
      Alcotest.(check (list int)) "chronological order" (List.sort compare seqs)
        seqs;
      let keep_first = budget - (budget / 2) in
      Alcotest.(check (list int)) "prefix always kept"
        (List.init keep_first (fun i -> i + 1))
        (List.filteri (fun i _ -> i < keep_first) seqs))

let test_span_sampling_disabled_by_default () =
  let t = Span.create () in
  Span.with_span t "root" (fun root ->
      for i = 1 to 50 do
        Span.with_span t (string_of_int i) ignore
      done;
      Alcotest.(check int) "unbounded keeps everything" 50
        (List.length (Span.children root));
      Alcotest.(check int) "nothing sampled out" 0 (Span.sampled_out root))

(* Random span forests — whatever the sampling discards, the exported
   trace stream stays balanced: every "B" has its "E", properly nested. *)
let qcheck_trace_events_balanced =
  QCheck.Test.make ~name:"trace events balanced B/E" ~count:50
    QCheck.(
      triple (int_range 1 20) (int_range 1 6) (int_range 0 1000))
    (fun (fanout, budget, seed) ->
      with_fake_clock @@ fun now ->
      let t = Span.create ~max_children:budget ~seed () in
      Span.with_span t "root" (fun _ ->
          for i = 1 to fanout do
            Span.with_span t ("mid" ^ string_of_int i) (fun _ ->
                for j = 1 to fanout do
                  let sp = Span.start t ("leaf" ^ string_of_int j) in
                  now := !now +. 0.5;
                  Span.finish t sp
                done)
          done);
      let text = Export.trace_events_string (Span.roots t) in
      match J.parse text with
      | Error _ -> false
      | Ok doc -> (
        match J.member "traceEvents" doc with
        | Some (J.Arr events) ->
          let depth = ref 0 and ok = ref true and b = ref 0 and e = ref 0 in
          List.iter
            (fun ev ->
              match Option.bind (J.member "ph" ev) J.to_str with
              | Some "B" ->
                incr b;
                incr depth
              | Some "E" ->
                incr e;
                decr depth;
                if !depth < 0 then ok := false
              | _ -> ())
            events;
          !ok && !depth = 0 && !b = !e && !b > 0
        | _ -> false))

let suites =
  [
    ( "live.http",
      [
        Alcotest.test_case "request parsing" `Quick test_http_parse;
        Alcotest.test_case "routing" `Quick test_http_routes;
        Alcotest.test_case "socket smoke" `Quick test_http_socket_smoke;
      ] );
    ( "live.series",
      [
        Alcotest.test_case "rolling window" `Quick test_series_window;
        Alcotest.test_case "collector derivation" `Quick test_collector_derivation;
      ] );
    ( "live.alerts",
      [
        Alcotest.test_case "rule parsing" `Quick test_rule_parsing;
        Alcotest.test_case "fires and clears" `Quick test_alert_fires_and_clears;
      ] );
    ( "live.span-sampling",
      [
        Alcotest.test_case "bounded with exact aggregates" `Quick
          test_span_sampling_bounds;
        Alcotest.test_case "unbounded by default" `Quick
          test_span_sampling_disabled_by_default;
        QCheck_alcotest.to_alcotest qcheck_trace_events_balanced;
      ] );
  ]
