let () =
  (* Conservation violations anywhere in the suite are hard failures:
     every occasion any test runs closes its ledger under strict mode. *)
  Obs.Ledger.set_strict true;
  Alcotest.run "patchwork"
    (List.concat
       [
         Test_netcore.suites;
         Test_packet.suites;
         Test_dissect.suites;
         Test_simcore.suites;
         Test_testbed.suites;
         Test_traffic.suites;
         Test_hostmodel.suites;
         Test_patchwork.suites;
         Test_analysis.suites;
         Test_flowstore.suites;
         Test_flowcache.suites;
         Test_overlay.suites;
         Test_extra.suites;
         Test_p4.suites;
         Test_formats.suites;
         Test_iperf.suites;
         Test_future.suites;
         Test_parallel.suites;
         Test_obs.suites;
         Test_live.suites;
         Test_tsdb.suites;
         Test_pipeline.suites;
         Test_ledger.suites;
       ])
