(* The future-work features: runtime autoscaling and shared mirror-port
   scheduling. *)

module Autoscaler = Patchwork.Autoscaler
module Scheduler = Patchwork.Mirror_scheduler
module Allocator = Testbed.Allocator
module Fablib = Testbed.Fablib
module Switch = Testbed.Switch

let setup seed =
  let engine = Simcore.Engine.create () in
  let fabric = Fablib.create ~seed engine in
  let driver = Traffic.Driver.create fabric ~seed in
  let site =
    (List.hd (Testbed.Info_model.profilable_sites (Fablib.model fabric)))
      .Testbed.Info_model.name
  in
  (engine, fabric, driver, site)

let fast_config =
  {
    Patchwork.Config.default with
    Patchwork.Config.samples_per_run = 2;
    max_frames_per_sample = 5;
    instance_crash_prob = 0.0;
  }

let make_scaler ?(policy = Autoscaler.default_policy) (engine, fabric, driver, site) =
  ignore engine;
  Autoscaler.create ~fabric ~resolver:(Traffic.Driver.resolver driver)
    ~config:fast_config ~log:(Patchwork.Logging.create ())
    ~rng:(Netcore.Rng.create 4) ~site ~policy

(* --- Autoscaler --- *)

let test_autoscaler_scales_up_when_free () =
  let ((engine, fabric, _, site) as ctx) = setup 61 in
  let scaler =
    make_scaler ~policy:{ Autoscaler.default_policy with Autoscaler.check_interval = 300.0 } ctx
  in
  Autoscaler.start scaler ~until:7200.0;
  Simcore.Engine.run ~until:7200.0 engine;
  Alcotest.(check bool) "grew beyond the floor" true (Autoscaler.live_instances scaler > 1);
  Alcotest.(check bool) "scale-up events recorded" true
    (List.exists
       (function Autoscaler.Scaled_up _ -> true | _ -> false)
       (Autoscaler.events scaler));
  Alcotest.(check bool) "bounded by ceiling" true
    (Autoscaler.live_instances scaler <= 4);
  Autoscaler.shutdown scaler;
  Alcotest.(check int) "all released" 0 (Autoscaler.live_instances scaler);
  Alcotest.(check int) "slices returned" 0
    (Allocator.active_slices (Fablib.allocator fabric));
  ignore site

let test_autoscaler_nice_backs_off () =
  let ((engine, fabric, _, site) as ctx) = setup 62 in
  let scaler =
    make_scaler
      ~policy:
        { Autoscaler.default_policy with
          Autoscaler.check_interval = 300.0; min_instances = 1; max_instances = 3 }
      ctx
  in
  Autoscaler.start scaler ~until:14400.0;
  (* Let it grow first, then squeeze the site. *)
  Simcore.Engine.run ~until:3600.0 engine;
  let grown = Autoscaler.live_instances scaler in
  Simcore.Engine.schedule engine ~delay:1.0 (fun _ ->
      Allocator.set_external_utilization (Fablib.allocator fabric) ~site 1.0);
  Simcore.Engine.run ~until:14400.0 engine;
  Alcotest.(check bool) "had grown" true (grown >= 2);
  Alcotest.(check int) "niced back to the floor" 1 (Autoscaler.live_instances scaler);
  Alcotest.(check bool) "scale-down events recorded" true
    (List.exists
       (function Autoscaler.Scaled_down _ -> true | _ -> false)
       (Autoscaler.events scaler))

let test_autoscaler_keeps_retired_samples () =
  let ((engine, fabric, _, site) as ctx) = setup 63 in
  let scaler =
    make_scaler
      ~policy:{ Autoscaler.default_policy with Autoscaler.check_interval = 600.0 }
      ctx
  in
  Autoscaler.start scaler ~until:7200.0;
  Simcore.Engine.run ~until:3600.0 engine;
  Allocator.set_external_utilization (Fablib.allocator fabric) ~site 1.0;
  Simcore.Engine.run ~until:7200.0 engine;
  Alcotest.(check bool) "samples survive release" true
    (List.length (Autoscaler.samples scaler) > 0);
  Alcotest.(check bool) "slice-seconds accounted" true
    (Autoscaler.slice_seconds scaler > 0.0)

(* --- Mirror scheduler --- *)

let sched_setup () =
  let engine = Simcore.Engine.create () in
  let sw = Switch.create engine ~site_name:"MS" ~ports:8 ~line_rate:100e9 in
  let sched = Scheduler.create engine sw ~quantum:60.0 in
  (engine, sw, sched)

let test_scheduler_uncontended () =
  let engine, _, sched = sched_setup () in
  Scheduler.submit sched ~user:"alice" ~src_port:0 ~dst_port:4;
  Scheduler.submit sched ~user:"bob" ~src_port:1 ~dst_port:5;
  Scheduler.start sched ~until:600.0;
  Simcore.Engine.run ~until:600.0 engine;
  Alcotest.(check int) "both granted" 2 (List.length (Scheduler.current_grants sched));
  Alcotest.(check bool) "both served" true
    (Scheduler.service_time sched ~user:"alice" > 0.0
    && Scheduler.service_time sched ~user:"bob" > 0.0)

let test_scheduler_time_slices_contended_port () =
  let engine, _, sched = sched_setup () in
  (* Both users want port 0; each has their own NIC port. *)
  Scheduler.submit sched ~user:"alice" ~src_port:0 ~dst_port:4;
  Scheduler.submit sched ~user:"bob" ~src_port:0 ~dst_port:5;
  Scheduler.start sched ~until:3600.0;
  Simcore.Engine.run ~until:3600.0 engine;
  Alcotest.(check int) "one grant at a time" 1
    (List.length (Scheduler.current_grants sched));
  let a = Scheduler.service_time sched ~user:"alice" in
  let b = Scheduler.service_time sched ~user:"bob" in
  Alcotest.(check bool) "both make progress" true (a > 0.0 && b > 0.0);
  Alcotest.(check bool) "fair split" true (Scheduler.fairness sched > 0.95)

let test_scheduler_cancel_revokes () =
  let engine, sw, sched = sched_setup () in
  Scheduler.submit sched ~user:"alice" ~src_port:0 ~dst_port:4;
  Scheduler.start sched ~until:600.0;
  Simcore.Engine.run ~until:120.0 engine;
  Alcotest.(check int) "granted" 1 (List.length (Scheduler.current_grants sched));
  Scheduler.cancel sched ~user:"alice" ~src_port:0;
  Alcotest.(check int) "revoked" 0 (List.length (Scheduler.current_grants sched));
  Alcotest.(check int) "switch session removed" 0 (Switch.mirror_count sw)

let test_scheduler_fifo_at_scale () =
  let engine, _, sched = sched_setup () in
  let n = 10_000 in
  (* 10k standing requests over 4 contended ports.  Submission must stay
     O(1) per request (the queue used to be rebuilt with [@] on every
     submit, making this loop quadratic), and with equal service times
     grants must rotate in strict submission (FIFO) order. *)
  for i = 0 to n - 1 do
    Scheduler.submit sched
      ~user:(Printf.sprintf "u%d" i)
      ~src_port:(i mod 4)
      ~dst_port:(4 + (i mod 4))
  done;
  Scheduler.start sched ~until:3600.0;
  let grant_users () =
    List.sort compare
      (List.map (fun g -> g.Scheduler.g_user) (Scheduler.current_grants sched))
  in
  Alcotest.(check (list string)) "first round grants earliest submitters"
    [ "u0"; "u1"; "u2"; "u3" ] (grant_users ());
  Simcore.Engine.run ~until:600.0 engine;
  (* Rounds at t = 0, 60, ..., 600: round k grants u_{4k}..u_{4k+3}. *)
  Alcotest.(check (list string)) "FIFO rotation after ten quanta"
    [ "u40"; "u41"; "u42"; "u43" ] (grant_users ());
  Alcotest.(check (float 1e-9)) "one quantum served each" 60.0
    (Scheduler.service_time sched ~user:"u0");
  (* Cancelling mid-queue must not disturb everyone else's order: the
     next round grants the following four submitters, skipping the
     cancelled one. *)
  Scheduler.cancel sched ~user:"u44" ~src_port:0;
  Simcore.Engine.run ~until:660.0 engine;
  Alcotest.(check (list string)) "cancelled request skipped in order"
    [ "u45"; "u46"; "u47"; "u48" ] (grant_users ())

let test_scheduler_duplicate_rejected () =
  let _, _, sched = sched_setup () in
  Scheduler.submit sched ~user:"alice" ~src_port:0 ~dst_port:4;
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Scheduler.submit sched ~user:"alice" ~src_port:0 ~dst_port:4;
       false
     with Invalid_argument _ -> true)

let test_scheduler_notifies_listeners () =
  let engine, _, sched = sched_setup () in
  let grants_seen = ref 0 and revokes_seen = ref 0 in
  Scheduler.on_change sched (fun ~granted ~revoked ->
      grants_seen := !grants_seen + List.length granted;
      revokes_seen := !revokes_seen + List.length revoked);
  Scheduler.submit sched ~user:"alice" ~src_port:0 ~dst_port:4;
  Scheduler.submit sched ~user:"bob" ~src_port:0 ~dst_port:5;
  Scheduler.start sched ~until:1200.0;
  Simcore.Engine.run ~until:1200.0 engine;
  Alcotest.(check bool) "grant notifications" true (!grants_seen >= 2);
  Alcotest.(check bool) "revocation notifications" true (!revokes_seen >= 1)

let test_scheduler_three_way_fairness () =
  let engine, _, sched = sched_setup () in
  List.iteri
    (fun i user -> Scheduler.submit sched ~user ~src_port:0 ~dst_port:(4 + i))
    [ "a"; "b"; "c" ];
  Scheduler.start sched ~until:(3.0 *. 3600.0);
  Simcore.Engine.run ~until:(3.0 *. 3600.0) engine;
  Alcotest.(check bool) "three-way fair" true (Scheduler.fairness sched > 0.95)

let suites =
  [
    ( "future.autoscaler",
      [
        Alcotest.test_case "scales up when free" `Slow test_autoscaler_scales_up_when_free;
        Alcotest.test_case "nice backs off" `Slow test_autoscaler_nice_backs_off;
        Alcotest.test_case "retired samples kept" `Slow test_autoscaler_keeps_retired_samples;
      ] );
    ( "future.mirror_scheduler",
      [
        Alcotest.test_case "uncontended grants" `Quick test_scheduler_uncontended;
        Alcotest.test_case "time slices contention" `Quick test_scheduler_time_slices_contended_port;
        Alcotest.test_case "cancel revokes" `Quick test_scheduler_cancel_revokes;
        Alcotest.test_case "duplicate rejected" `Quick test_scheduler_duplicate_rejected;
        Alcotest.test_case "listener notifications" `Quick test_scheduler_notifies_listeners;
        Alcotest.test_case "three-way fairness" `Quick test_scheduler_three_way_fairness;
        Alcotest.test_case "FIFO order over 10k requests" `Quick
          test_scheduler_fifo_at_scale;
      ] );
  ]
