module Registry = Obs.Registry
module Span = Obs.Span
module Export = Obs.Export
module J = Obs.Export.Json
module Logging = Patchwork.Logging

(* --- registry --- *)

let test_counter_gauge () =
  let r = Registry.create () in
  let c = Registry.counter r "reqs_total" ~help:"requests" in
  Registry.incr c;
  Registry.inc c 4.0;
  Alcotest.(check bool) "counter value" true
    (Registry.value r "reqs_total" = Some (Registry.Counter 5.0));
  Alcotest.check_raises "negative inc rejected"
    (Invalid_argument "Obs.Registry.inc: negative increment") (fun () ->
      Registry.inc c (-1.0));
  let g = Registry.gauge r "depth" in
  Registry.set g 7.0;
  Registry.add g (-2.0);
  Alcotest.(check bool) "gauge value" true
    (Registry.value r "depth" = Some (Registry.Gauge 5.0));
  (* Same name, different kind: rejected. *)
  Alcotest.(check bool) "kind clash raises" true
    (match Registry.gauge r "reqs_total" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_labels_canonical () =
  let r = Registry.create () in
  let a = Registry.counter r "x" ~labels:[ ("b", "2"); ("a", "1") ] in
  let b = Registry.counter r "x" ~labels:[ ("a", "1"); ("b", "2") ] in
  Registry.incr a;
  Registry.incr b;
  (* Label order is canonicalized, so both handles hit the same cell. *)
  Alcotest.(check bool) "one cell" true
    (Registry.value r "x" ~labels:[ ("a", "1"); ("b", "2") ]
    = Some (Registry.Counter 2.0));
  Alcotest.(check int) "one sample" 1 (List.length (Registry.snapshot r))

let test_histogram_buckets () =
  let r = Registry.create () in
  let h = Registry.histogram r "lat" in
  List.iter (Registry.observe h) [ 0.5; 1.0; 1.0; 3.0; 1e12 ];
  match Registry.value r "lat" with
  | Some (Registry.Histogram hs) ->
    Alcotest.(check int) "count" 5 hs.Registry.h_count;
    Alcotest.(check (float 1e-9)) "sum" (0.5 +. 1.0 +. 1.0 +. 3.0 +. 1e12)
      hs.Registry.h_sum;
    (* Cumulative and capped by the +Inf bucket. *)
    let les, cums = List.split hs.Registry.h_buckets in
    Alcotest.(check bool) "ends at +Inf" true (List.exists (( = ) infinity) les);
    Alcotest.(check bool) "monotone" true
      (List.for_all2 ( <= ) cums (List.tl cums @ [ hs.Registry.h_count ]));
    Alcotest.(check int) "+Inf cumulative = count" hs.Registry.h_count
      (List.assoc infinity hs.Registry.h_buckets)
  | _ -> Alcotest.fail "histogram missing"

let test_registry_merge () =
  let a = Registry.create () and b = Registry.create () in
  Registry.inc (Registry.counter a "c") 2.0;
  Registry.inc (Registry.counter b "c") 3.0;
  Registry.set (Registry.gauge a "g") 1.0;
  Registry.set (Registry.gauge b "g") 9.0;
  Registry.observe (Registry.histogram a "h") 4.0;
  Registry.observe (Registry.histogram b "h") 8.0;
  Registry.merge_into ~dst:a b;
  Alcotest.(check bool) "counters add" true
    (Registry.value a "c" = Some (Registry.Counter 5.0));
  Alcotest.(check bool) "gauge takes source" true
    (Registry.value a "g" = Some (Registry.Gauge 9.0));
  match Registry.value a "h" with
  | Some (Registry.Histogram hs) ->
    Alcotest.(check int) "hist counts add" 2 hs.Registry.h_count;
    Alcotest.(check (float 1e-9)) "hist sums add" 12.0 hs.Registry.h_sum
  | _ -> Alcotest.fail "merged histogram missing"

let test_disabled_noop () =
  let r = Registry.create () in
  let c = Registry.counter r "c" in
  Registry.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Registry.set_enabled true)
    (fun () ->
      Registry.incr c;
      let t = Span.create () in
      Span.with_span t "s" (fun sp -> Span.annotate sp "k" "v");
      Alcotest.(check bool) "counter untouched" true
        (Registry.value r "c" = Some (Registry.Counter 0.0));
      Alcotest.(check int) "no spans recorded" 0 (List.length (Span.roots t)))

(* --- exposition round-trips --- *)

let populated_registry () =
  let r = Registry.create () in
  Registry.inc (Registry.counter r "frames_total" ~help:"Captured frames") 12345.0;
  Registry.inc
    (Registry.counter r "frames_total" ~labels:[ ("site", "STAR") ])
    17.0;
  Registry.set
    (Registry.gauge r "queue_depth" ~help:"Pending grant\nrequests"
       ~labels:[ ("site", "a\"b\\c") ])
    3.0;
  let h = Registry.histogram r "stage_seconds" ~labels:[ ("stage", "digest") ] in
  List.iter (Registry.observe h) [ 0.25; 1.0; 1.5; 300.0 ];
  r

let test_prometheus_roundtrip () =
  let snap = Registry.snapshot (populated_registry ()) in
  let text = Export.to_prometheus snap in
  match Export.parse_prometheus text with
  | Error msg -> Alcotest.fail ("parse_prometheus: " ^ msg)
  | Ok lines ->
    Alcotest.(check int) "line count survives" (List.length (Export.flatten snap))
      (List.length lines);
    Alcotest.(check bool) "data lines round-trip" true
      (lines = Export.flatten snap)

let test_json_roundtrip () =
  let r = populated_registry () in
  let t = Span.create () in
  Span.with_span t "occasion" (fun occ ->
      Span.annotate occ "sites" "3";
      Span.with_span t "occasion.setup" ignore);
  let text = Export.to_json_string ~spans:(Span.roots t) (Registry.snapshot r) in
  match J.parse text with
  | Error msg -> Alcotest.fail ("Json.parse: " ^ msg)
  | Ok doc ->
    (* Re-serializing the parse is a fixpoint. *)
    Alcotest.(check string) "fixpoint" text (J.to_string doc);
    let metrics =
      match J.member "metrics" doc with Some (J.Arr l) -> l | _ -> []
    in
    let frames =
      List.find_map
        (fun m ->
          if
            J.member "name" m = Some (J.Str "frames_total")
            && J.member "labels" m = None
          then Option.bind (J.member "value" m) J.to_float
          else None)
        metrics
    in
    Alcotest.(check (option (float 1e-9))) "counter readable" (Some 12345.0)
      frames;
    (match J.member "spans" doc with
    | Some (J.Arr [ occ ]) ->
      Alcotest.(check bool) "span name" true
        (J.member "name" occ = Some (J.Str "occasion"));
      (match J.member "children" occ with
      | Some (J.Arr [ child ]) ->
        Alcotest.(check bool) "child name" true
          (J.member "name" child = Some (J.Str "occasion.setup"))
      | _ -> Alcotest.fail "child span missing")
    | _ -> Alcotest.fail "root span missing")

(* Hostile metric help text and label values — quotes, backslashes,
   newlines, the works — must survive the text exposition round trip. *)
let qcheck_prometheus_escaping =
  let hostile_string =
    QCheck.(
      string_gen_of_size
        Gen.(1 -- 12)
        Gen.(
          oneof
            [
              char_range 'a' 'z';
              oneofl [ '"'; '\\'; '\n'; '{'; '}'; '='; ','; ' ' ];
            ]))
  in
  QCheck.Test.make ~name:"prometheus escaping round-trips" ~count:100
    QCheck.(pair hostile_string hostile_string)
    (fun (help, label_value) ->
      let r = Registry.create () in
      Registry.inc
        (Registry.counter r "m_total" ~help ~labels:[ ("site", label_value) ])
        7.0;
      let snap = Registry.snapshot r in
      match Export.parse_prometheus (Export.to_prometheus snap) with
      | Error _ -> false
      | Ok lines -> lines = Export.flatten snap)

let test_json_parser_errors () =
  Alcotest.(check bool) "trailing garbage" true
    (Result.is_error (J.parse "{} x"));
  Alcotest.(check bool) "unterminated" true (Result.is_error (J.parse "[1, 2"));
  Alcotest.(check bool) "escapes" true
    (J.parse {|"a\n\"b\\"|} = Ok (J.Str "a\n\"b\\"))

(* --- spans --- *)

let test_span_nesting () =
  let t = Span.create () in
  Span.with_span t "root" (fun root ->
      Span.with_span t "child" (fun _ -> ());
      Span.with_span t "child" (fun _ -> ());
      Span.with_span t "other" (fun _ -> ());
      Span.annotate root "k" "v");
  match Span.roots t with
  | [ root ] ->
    Alcotest.(check string) "name" "root" (Span.name root);
    Alcotest.(check bool) "wall recorded" true (Span.wall root >= 0.0);
    Alcotest.(check (list string)) "children oldest first"
      [ "child"; "child"; "other" ]
      (List.map Span.name (Span.children root));
    Alcotest.(check bool) "notes" true (Span.notes root = [ ("k", "v") ]);
    let rollup = Span.rollup root in
    Alcotest.(check int) "child grouped" 2 (fst (List.assoc "child" rollup));
    Alcotest.(check int) "other grouped" 1 (fst (List.assoc "other" rollup))
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let test_span_root_bound () =
  let t = Span.create ~max_roots:3 () in
  for i = 1 to 5 do
    Span.with_span t (string_of_int i) ignore
  done;
  Alcotest.(check (list string)) "oldest dropped" [ "3"; "4"; "5" ]
    (List.map Span.name (Span.roots t));
  Alcotest.(check int) "dropped count" 2 (Span.dropped_roots t)

let test_span_timed_histogram () =
  let r = Registry.create () in
  let t = Span.create () in
  let v = Span.timed ~tracer:t ~registry:r ~stage:"digest.index" (fun () -> 41 + 1) in
  Alcotest.(check int) "passes result through" 42 v;
  Alcotest.(check (list string)) "span recorded" [ "digest.index" ]
    (List.map Span.name (Span.roots t));
  match Registry.value r "stage_seconds" ~labels:[ ("stage", "digest.index") ] with
  | Some (Registry.Histogram hs) ->
    Alcotest.(check int) "one observation" 1 hs.Registry.h_count
  | _ -> Alcotest.fail "stage histogram missing"

(* --- logging ring buffer --- *)

let log_n log n =
  for i = 1 to n do
    let level = if i mod 3 = 0 then Logging.Warning else Logging.Info in
    Logging.log log ~time:(float_of_int i) ~level ~component:"c"
      (string_of_int i)
  done

let test_logging_ring () =
  let log = Logging.create ~capacity:4 () in
  log_n log 10;
  Alcotest.(check int) "capacity" 4 (Logging.capacity log);
  Alcotest.(check int) "retained" 4 (Logging.retained log);
  Alcotest.(check int) "dropped" 6 (Logging.dropped log);
  (* Counters survive eviction; entries are the newest, oldest first. *)
  Alcotest.(check int) "total count O(1)" 10 (Logging.count log);
  Alcotest.(check int) "warnings" 3 (Logging.count ~min_level:Logging.Warning log);
  Alcotest.(check (list string)) "newest retained, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Logging.event) (Logging.entries log))

let test_logging_drain_since () =
  let log = Logging.create ~capacity:4 () in
  Alcotest.(check int) "empty next_seq" 0 (Logging.next_seq log);
  log_n log 10;
  Alcotest.(check int) "next_seq counts everything" 10 (Logging.next_seq log);
  (* Sequence numbers survive ring eviction: asking from 0 yields only
     the retained tail, numbered by global position. *)
  Alcotest.(check (list (pair int string)))
    "tail from 0 shows the eviction gap"
    [ (6, "7"); (7, "8"); (8, "9"); (9, "10") ]
    (List.map (fun (i, e) -> (i, e.Logging.event)) (Logging.drain_since log ~seq:0));
  Alcotest.(check (list (pair int string)))
    "incremental tail"
    [ (8, "9"); (9, "10") ]
    (List.map (fun (i, e) -> (i, e.Logging.event)) (Logging.drain_since log ~seq:8));
  Alcotest.(check (list (pair int string))) "caught up" []
    (List.map
       (fun (i, e) -> (i, e.Logging.event))
       (Logging.drain_since log ~seq:(Logging.next_seq log)));
  (* Unbounded logs tail the same way, without gaps. *)
  let u = Logging.create () in
  log_n u 3;
  Alcotest.(check (list (pair int string))) "unbounded tail"
    [ (0, "1"); (1, "2"); (2, "3") ]
    (List.map (fun (i, e) -> (i, e.Logging.event)) (Logging.drain_since u ~seq:0))

let test_logging_unbounded () =
  let log = Logging.create () in
  log_n log 10;
  Alcotest.(check int) "all retained" 10 (Logging.retained log);
  Alcotest.(check int) "nothing dropped" 0 (Logging.dropped log);
  Alcotest.(check int) "count matches" 10 (Logging.count log);
  Alcotest.(check (list string)) "oldest first"
    (List.init 10 (fun i -> string_of_int (i + 1)))
    (List.map (fun e -> e.Logging.event) (Logging.entries log))

(* --- pool-size independence (satellite 4) --- *)

(* Counter totals and histogram bucket counts must not depend on how
   tasks were spread over domains.  Observations are integer-valued, so
   even the histogram sum is bit-exact (the registry's exact-integer
   discipline). *)
let qcheck_registry_pool_independent =
  QCheck.Test.make ~name:"registry totals independent of pool size" ~count:30
    QCheck.(pair small_nat (list_of_size Gen.(1 -- 40) (int_range 1 1000)))
    (fun (seed, values) ->
      let run size =
        let r = Registry.create () in
        let c = Registry.counter r "c" in
        let h = Registry.histogram r "h" in
        Parallel.Pool.with_pool ~size (fun pool ->
            ignore
              (Parallel.Pool.map pool
                 (fun v ->
                   let v = float_of_int ((v + seed) mod 1000) in
                   Registry.inc c v;
                   Registry.observe h v)
                 values));
        Registry.snapshot r
      in
      let s1 = run 1 in
      s1 = run 2 && s1 = run 4)

let suites =
  [
    ( "obs.registry",
      [
        Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
        Alcotest.test_case "labels canonical" `Quick test_labels_canonical;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "merge" `Quick test_registry_merge;
        Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
        QCheck_alcotest.to_alcotest qcheck_registry_pool_independent;
      ] );
    ( "obs.export",
      [
        Alcotest.test_case "prometheus round-trip" `Quick test_prometheus_roundtrip;
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json parser errors" `Quick test_json_parser_errors;
        QCheck_alcotest.to_alcotest qcheck_prometheus_escaping;
      ] );
    ( "obs.span",
      [
        Alcotest.test_case "nesting and rollup" `Quick test_span_nesting;
        Alcotest.test_case "root bound" `Quick test_span_root_bound;
        Alcotest.test_case "timed stage histogram" `Quick test_span_timed_histogram;
      ] );
    ( "obs.logging",
      [
        Alcotest.test_case "ring buffer" `Quick test_logging_ring;
        Alcotest.test_case "unbounded" `Quick test_logging_unbounded;
        Alcotest.test_case "drain_since tailing" `Quick test_logging_drain_since;
      ] );
  ]
