(* The zero-alloc overlay dissection path: slice fast accessors agree
   with the checked reads, the overlay cursor agrees with the
   record-building reference dissector on everything the flows path and
   the cache consume, the overlay digest is bit-identical to the record
   digest at any pool size, and batched driver replay is bit-identical
   to per-event replay. *)

module OV = Dissect.Overlay
module S = Packet.Slice
module H = Packet.Headers
module Pool = Parallel.Pool

(* --- Slice fast accessors ≡ checked reads --- *)

let prop_fast_accessors_equal =
  QCheck.Test.make ~count:200
    ~name:"Slice fast accessors ≡ checked reads (incl. out-of-window)"
    QCheck.(triple small_int (int_range 0 24) (int_range (-4) 40))
    (fun (seed, off, i) ->
      let rng = Frame_gen.rng_of_seed seed in
      let buf = Bytes.init 48 (fun _ -> Char.chr (Netcore.Rng.int rng 256)) in
      let len = min (Netcore.Rng.int rng 24) (48 - off) in
      let s = S.make buf ~off ~len in
      let agree checked fast =
        match checked () with
        | v -> ( try fast () = v with Invalid_argument _ -> false)
        | exception Invalid_argument _ -> (
          match fast () with
          | _ -> false
          | exception Invalid_argument _ -> true)
      in
      agree (fun () -> S.get_u8 s i) (fun () -> S.get_u8_fast s i)
      && agree (fun () -> S.get_u16_be s i) (fun () -> S.get_u16_be_fast s i)
      && agree
           (fun () ->
             Int64.to_int
               (Int64.logand (Int64.of_int32 (S.get_u32_be s i)) 0xFFFFFFFFL))
           (fun () -> S.get_u32_be_fast s i))

(* --- adversarial captures --- *)

(* Frames with VLAN/MPLS stacks, pseudowire, truncation sweeps, snapped
   records and malformed IPv4 total_len fields.  The total_len
   corruption targets the first IPv4 header byte pair at its computed
   offset, producing both sub-header (< 20, the uncacheable path) and
   oversized (> capture, the truncated narrowing path) values. *)
let ipv4_offset stack =
  let rec go off = function
    | [] -> None
    | H.Ethernet _ :: rest -> go (off + 14) rest
    | H.Vlan _ :: rest -> go (off + 4) rest
    | H.Mpls _ :: rest -> go (off + 4) rest
    | H.Pseudowire :: rest -> go (off + 4) rest
    | H.Ipv4 _ :: _ -> Some off
    | _ -> None
  in
  go 0 stack

let adversarial_frame rng =
  let stack = Frame_gen.random_stack rng in
  let b = Packet.Codec.encode
      (Packet.Frame.make stack ~payload_len:(Netcore.Rng.int rng 200))
  in
  let orig = Bytes.length b in
  (* malformed total_len on a fifth of IPv4 frames *)
  (match ipv4_offset stack with
  | Some off when Netcore.Rng.bernoulli rng 0.2 && off + 4 <= Bytes.length b ->
    let bad =
      if Netcore.Rng.bool rng then Netcore.Rng.int rng 20 (* below header *)
      else 2000 + Netcore.Rng.int rng 60000 (* beyond capture *)
    in
    Bytes.set_uint16_be b (off + 2) bad
  | _ -> ());
  (* snapped records: cut anywhere, including mid-header *)
  if Netcore.Rng.bernoulli rng 0.3 then
    let keep = 1 + Netcore.Rng.int rng (Bytes.length b) in
    (Bytes.sub b 0 keep, orig)
  else (b, orig)

let adversarial_pcap seed =
  let rng = Frame_gen.rng_of_seed seed in
  let w = Packet.Pcap.Writer.create () in
  let events = 40 + Netcore.Rng.int rng 40 in
  for i = 0 to events - 1 do
    let data, orig = adversarial_frame rng in
    Packet.Pcap.Writer.add w ~ts:(float_of_int i *. 1e-3) ~orig_len:orig data
  done;
  Packet.Pcap.Writer.contents w

(* --- per-frame: overlay ≡ record dissection --- *)

let prop_overlay_matches_record_per_frame =
  QCheck.Test.make ~count:40
    ~name:"overlay ≡ record per frame (key, RST, meta) over adversarial frames"
    QCheck.small_int
    (fun seed ->
      let buf = adversarial_pcap seed in
      let idx = Packet.Pcapng.index_any buf in
      let ov = OV.create () in
      Array.for_all
        (fun (e : Packet.Pcap.index_entry) ->
          let slice = Packet.Pcap.Reader.slice buf e in
          let orig_len = e.Packet.Pcap.orig_len in
          OV.classify ov ~orig_len slice;
          let meta = Dissect.Dissector.fresh_meta () in
          let d = Dissect.Dissector.dissect_slice_meta ~orig_len ~meta slice in
          let r =
            Dissect.Acap.abstract ~ts:e.Packet.Pcap.ts ~orig_len
              ~cap_len:(S.length slice) ~truncated:d.Dissect.Dissector.truncated
              d.Dissect.Dissector.headers
          in
          OV.key ov = Dissect.Acap.flow_key r
          && OV.rst ov = r.Dissect.Acap.tcp_rst
          && OV.flags_off ov = meta.Dissect.Dissector.m_flags_off
          && OV.l3_off ov = meta.Dissect.Dissector.m_l3_off
          && OV.wire_min ov = meta.Dissect.Dissector.m_wire_min
          && OV.cacheable ov = meta.Dissect.Dissector.m_cacheable
          && OV.examined ov <= meta.Dissect.Dissector.m_examined)
        idx)

(* --- whole-digest: overlay flows ≡ record flows at pools 1/2/4 --- *)

let prop_overlay_digest_identical =
  QCheck.Test.make ~count:15
    ~name:"overlay digest ≡ record digest (pools 1/2/4, uncached + bits 1/6)"
    QCheck.small_int
    (fun seed ->
      let buf = adversarial_pcap seed in
      let reference = Analysis.Digest.pcap_to_flows_record buf in
      List.for_all
        (fun size ->
          Pool.with_pool ~size (fun pool ->
              Analysis.Digest.pcap_to_flows ~pool buf = reference
              && List.for_all
                   (fun bits ->
                     Analysis.Digest.pcap_to_flows ~pool ~cache_bits:bits buf
                     = reference)
                   [ 1; 6 ]))
        [ 1; 2; 4 ])

let test_overlay_no_fallback_on_generated_traffic () =
  (* Generated stacks nest at most one pseudowire re-entry, well inside
     the overlay's depth budget: everything should take the fast path. *)
  let buf = adversarial_pcap 42 in
  let idx = Packet.Pcapng.index_any buf in
  let ov = OV.create () in
  Array.iter
    (fun (e : Packet.Pcap.index_entry) ->
      OV.classify ov ~orig_len:e.Packet.Pcap.orig_len
        (Packet.Pcap.Reader.slice buf e))
    idx;
  Alcotest.(check int) "all frames classified by the cursor"
    (Array.length idx) (OV.classified ov);
  Alcotest.(check int) "no fallbacks" 0 (OV.fallbacks ov)

let test_overlay_fallback_on_deep_nesting () =
  (* A pathological pw-in-pw-in-pw nest exceeds the depth budget and
     must defer to the reference dissector — with identical results. *)
  let rng = Frame_gen.rng_of_seed 7 in
  let rec nest depth =
    if depth = 0 then
      [ Frame_gen.ethernet rng; Frame_gen.ipv4 rng; Frame_gen.udp_for rng None ]
    else Frame_gen.ethernet rng :: Frame_gen.mpls rng :: H.Pseudowire :: nest (depth - 1)
  in
  let stack = nest 5 in
  let b = Packet.Codec.encode (Packet.Frame.make stack ~payload_len:40) in
  let slice = S.make b ~off:0 ~len:(Bytes.length b) in
  let ov = OV.create () in
  OV.classify ov ~orig_len:(Bytes.length b) slice;
  Alcotest.(check int) "deep nest falls back" 1 (OV.fallbacks ov);
  let r = Dissect.Acap.of_slice ~ts:0.0 ~orig_len:(Bytes.length b) slice in
  Alcotest.(check (option string)) "fallback key identical"
    (Dissect.Acap.flow_key r) (OV.key ov)

(* --- driver: batched replay ≡ per-event replay --- *)

let batch_fingerprint ~seed ~pool_size ~slab ~batch_events =
  Pool.with_pool ~size:pool_size @@ fun pool ->
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed engine in
  let driver = Traffic.Driver.create ~pool ~slab ~batch_events fabric ~seed in
  Traffic.Driver.start driver ~until:3600.0;
  Simcore.Engine.run ~until:3600.0 engine;
  let specs = ref [] in
  let tx = ref 0.0 in
  let m = Testbed.Fablib.model fabric in
  Array.iter
    (fun (site : Testbed.Info_model.site) ->
      let name = site.Testbed.Info_model.name in
      let sw = Testbed.Fablib.switch fabric ~site:name in
      List.iter
        (fun port ->
          tx :=
            !tx
            +. (Testbed.Switch.read_counters sw ~port).Testbed.Switch.tx_bytes;
          List.iter
            (fun (a : Testbed.Switch.attachment) ->
              match Traffic.Driver.resolver driver a.Testbed.Switch.flow with
              | Some spec -> specs := spec :: !specs
              | None -> ())
            (Testbed.Switch.attachments sw ~port))
        (Testbed.Fablib.all_ports fabric ~site:name))
    m.Testbed.Info_model.sites;
  let specs =
    List.sort_uniq
      (fun (a : Traffic.Flow_model.spec) b ->
        compare a.Traffic.Flow_model.flow_id b.Traffic.Flow_model.flow_id)
      !specs
  in
  (Traffic.Driver.spawned_flows driver, specs, !tx)

let prop_batched_replay_identical =
  QCheck.Test.make ~count:5
    ~name:"batched slab replay ≡ per-event (pools 1/2/4 × slab lengths)"
    QCheck.(
      triple (int_range 0 3) (QCheck.oneofl [ 1; 2; 4 ])
        (QCheck.oneofl [ 300.0; 900.0; 7200.0 ]))
    (fun (seed, pool_size, slab) ->
      batch_fingerprint ~seed ~pool_size ~slab ~batch_events:true
      = batch_fingerprint ~seed ~pool_size ~slab ~batch_events:false)

let suites =
  [
    ( "overlay",
      [
        Alcotest.test_case "no fallback on generated traffic" `Quick
          test_overlay_no_fallback_on_generated_traffic;
        Alcotest.test_case "deep nesting falls back, identically" `Quick
          test_overlay_fallback_on_deep_nesting;
      ] );
    ( "overlay.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_fast_accessors_equal;
          prop_overlay_matches_record_per_frame;
          prop_overlay_digest_identical;
        ] );
    ( "overlay.batched-driver",
      [ QCheck_alcotest.to_alcotest prop_batched_replay_identical ] );
  ]
