(* The flow-key computational cache: install/hit/evict/collision
   semantics, invalidation on truncated frames, the masked TCP-flags
   byte, and the headline contract — cached digests are bit-identical
   to uncached ones at any pool size, cache size or traffic mix. *)

module FC = Dissect.Flow_cache
module Acap = Dissect.Acap
module H = Packet.Headers

let slice_of b = Packet.Slice.make b ~off:0 ~len:(Bytes.length b)

let of_slice_at ~ts b =
  Acap.of_slice ~ts ~orig_len:(Bytes.length b) (slice_of b)

let check_record msg expected actual =
  Alcotest.(check string) msg (Acap.to_line expected) (Acap.to_line actual)

let test_install_then_hit () =
  let rng = Frame_gen.rng_of_seed 7 in
  let b = Packet.Codec.encode (Frame_gen.random_frame ~max_payload:200 rng) in
  let orig = Bytes.length b in
  let c = FC.create ~bits:4 in
  let r1 = FC.record c ~ts:1.0 ~orig_len:orig (slice_of b) in
  let st = FC.stats c in
  Alcotest.(check int) "first frame misses" 1 st.FC.misses;
  Alcotest.(check int) "clean parse installs" 1 st.FC.installs;
  let r2 = FC.record c ~ts:2.0 ~orig_len:orig (slice_of b) in
  Alcotest.(check int) "second frame hits" 1 (FC.stats c).FC.hits;
  check_record "miss path ≡ uncached" (of_slice_at ~ts:1.0 b) r1;
  check_record "hit path ≡ uncached" (of_slice_at ~ts:2.0 b) r2

let test_single_slot_eviction () =
  let rng = Frame_gen.rng_of_seed 11 in
  let ba = Packet.Codec.encode (Frame_gen.random_frame ~max_payload:64 rng) in
  let bb = Packet.Codec.encode (Frame_gen.random_frame ~max_payload:64 rng) in
  let c = FC.create ~bits:0 in
  Alcotest.(check int) "bits:0 is one slot" 1 (FC.slots c);
  for i = 0 to 9 do
    let b = if i mod 2 = 0 then ba else bb in
    let ts = float_of_int i in
    let r = FC.record c ~ts ~orig_len:(Bytes.length b) (slice_of b) in
    check_record "thrashing slot stays identical" (of_slice_at ~ts b) r
  done;
  Alcotest.(check bool) "alternating flows evict" true
    ((FC.stats c).FC.evictions > 0)

let test_collision_falls_back () =
  let rng = Frame_gen.rng_of_seed 13 in
  let ba = Packet.Codec.encode (Frame_gen.random_frame ~max_payload:64 rng) in
  let bb = Packet.Codec.encode (Frame_gen.random_frame ~max_payload:64 rng) in
  let c = FC.create ~bits:0 in
  ignore (FC.record c ~ts:0.0 ~orig_len:(Bytes.length ba) (slice_of ba));
  (match FC.lookup c (slice_of bb) with
  | Some _ -> Alcotest.fail "a different flow in the slot must not hit"
  | None -> ());
  Alcotest.(check int) "occupied-slot miss counts as collision" 1
    (FC.stats c).FC.collisions

let test_truncated_never_installs () =
  let rng = Frame_gen.rng_of_seed 17 in
  let b = Packet.Codec.encode (Frame_gen.random_frame ~max_payload:300 rng) in
  let orig = Bytes.length b in
  (* 40 bytes cuts inside the L3/L4 headers of every generated stack
     (the shortest well-formed frame is eth+ipv4+udp = 42 bytes). *)
  let cut = Bytes.sub b 0 40 in
  let c = FC.create ~bits:4 in
  let r = FC.record c ~ts:0.0 ~orig_len:orig (slice_of cut) in
  Alcotest.(check bool) "snapped frame is truncated" true r.Acap.truncated;
  Alcotest.(check int) "truncated parse never installs" 0
    (FC.stats c).FC.installs;
  (* Install from the full frame; a snapped replay of the same flow
     must miss (the capture no longer reaches the datagram end). *)
  ignore (FC.record c ~ts:1.0 ~orig_len:orig (slice_of b));
  Alcotest.(check int) "full parse installs" 1 (FC.stats c).FC.installs;
  (match FC.lookup c (slice_of cut) with
  | Some _ -> Alcotest.fail "a snapped frame must not hit"
  | None -> ());
  let r2 = FC.record c ~ts:2.0 ~orig_len:orig (slice_of cut) in
  check_record "snapped replay ≡ uncached"
    (Acap.of_slice ~ts:2.0 ~orig_len:orig (slice_of cut))
    r2

let test_rst_flip_still_hits () =
  let rng = Frame_gen.rng_of_seed 19 in
  let stack =
    [ Frame_gen.ethernet rng; Frame_gen.ipv4 rng; Frame_gen.tcp_for rng None ]
  in
  let b = Packet.Codec.encode (Packet.Frame.make stack ~payload_len:100) in
  let orig = Bytes.length b in
  let c = FC.create ~bits:6 in
  let r0 = FC.record c ~ts:0.0 ~orig_len:orig (slice_of b) in
  Alcotest.(check bool) "template carries no RST" false r0.Acap.tcp_rst;
  (* Flip the raw TCP flags byte (eth 14 + ipv4 20 + offset 13): same
     flow, different per-frame flags.  The prefix compare masks exactly
     this byte, so the cache must still hit and read RST per frame. *)
  let b' = Bytes.copy b in
  let flags_off = 14 + 20 + 13 in
  Bytes.set b' flags_off
    (Char.chr (Char.code (Bytes.get b' flags_off) lor 0x04));
  match FC.lookup c (slice_of b') with
  | None -> Alcotest.fail "RST flip must still hit (flags byte is masked)"
  | Some e ->
    Alcotest.(check bool) "RST read at the memoized offset" true
      (FC.hit_rst e (slice_of b'));
    check_record "hit record ≡ uncached dissection of the RST frame"
      (of_slice_at ~ts:1.0 b')
      (FC.hit_record e ~ts:1.0 ~orig_len:orig (slice_of b'))

(* An adversarial capture for the equivalence properties: few templates
   (so the cache actually hits), with per-frame payload-length changes,
   VLAN vid flips (same shape, different bytes inside the prefix) and
   snapped records mixed in. *)
let adversarial_pcap seed =
  let rng = Frame_gen.rng_of_seed seed in
  let n_templates = 1 + Netcore.Rng.int rng 4 in
  let stacks = Array.init n_templates (fun _ -> Frame_gen.random_stack rng) in
  let w = Packet.Pcap.Writer.create () in
  let events = 30 + Netcore.Rng.int rng 30 in
  for i = 0 to events - 1 do
    let stack = stacks.(Netcore.Rng.int rng n_templates) in
    let stack =
      if Netcore.Rng.bernoulli rng 0.2 then
        List.map
          (function
            | H.Vlan v -> H.Vlan { v with H.vid = 1 + Netcore.Rng.int rng 4094 }
            | h -> h)
          stack
      else stack
    in
    let f = Packet.Frame.make stack ~payload_len:(Netcore.Rng.int rng 200) in
    let b = Packet.Codec.encode f in
    let ts = float_of_int i *. 1e-3 in
    if Netcore.Rng.bernoulli rng 0.15 then
      let keep = 14 + Netcore.Rng.int rng (Bytes.length b - 14) in
      Packet.Pcap.Writer.add w ~ts ~orig_len:(Bytes.length b)
        (Bytes.sub b 0 keep)
    else Packet.Pcap.Writer.add w ~ts b
  done;
  Packet.Pcap.Writer.contents w

let prop_cached_digest_identical =
  QCheck.Test.make ~count:20
    ~name:"cached digest ≡ uncached (acaps + flows, pools 1/2/4, bits 1/6)"
    QCheck.small_int
    (fun seed ->
      let buf = adversarial_pcap seed in
      let acaps = Analysis.Digest.pcap_to_acaps buf in
      let flows = Analysis.Digest.pcap_to_flows buf in
      List.for_all
        (fun size ->
          Parallel.Pool.with_pool ~size (fun pool ->
              List.for_all
                (fun bits ->
                  Analysis.Digest.pcap_to_acaps ~pool ~cache_bits:bits buf
                  = acaps
                  && Analysis.Digest.pcap_to_flows ~pool ~cache_bits:bits buf
                     = flows)
                [ 1; 6 ]))
        [ 1; 2; 4 ])

let prop_record_matches_of_slice =
  QCheck.Test.make ~count:20
    ~name:"Flow_cache.record ≡ Acap.of_slice under a thrashing single slot"
    QCheck.small_int
    (fun seed ->
      let buf = adversarial_pcap seed in
      let idx = Packet.Pcapng.index_any buf in
      let c = FC.create ~bits:0 in
      Array.for_all
        (fun (e : Packet.Pcap.index_entry) ->
          let s = Packet.Pcap.Reader.slice buf e in
          FC.record c ~ts:e.Packet.Pcap.ts ~orig_len:e.Packet.Pcap.orig_len s
          = Acap.of_slice ~ts:e.Packet.Pcap.ts ~orig_len:e.Packet.Pcap.orig_len
              s)
        idx)

let suites =
  [
    ( "flowcache",
      [
        Alcotest.test_case "install then hit" `Quick test_install_then_hit;
        Alcotest.test_case "single-slot eviction" `Quick
          test_single_slot_eviction;
        Alcotest.test_case "collision falls back" `Quick
          test_collision_falls_back;
        Alcotest.test_case "truncated never installs" `Quick
          test_truncated_never_installs;
        Alcotest.test_case "RST flip still hits" `Quick
          test_rst_flip_still_hits;
      ] );
    ( "flowcache.properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_cached_digest_identical; prop_record_matches_of_slice ] );
  ]
