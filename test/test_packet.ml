open Packet
module H = Headers

let mac s = Netcore.Mac.of_string s
let ip s = Netcore.Ipv4_addr.of_string s

let eth : H.header =
  H.Ethernet { src = mac "02:00:00:00:00:01"; dst = mac "02:00:00:00:00:02" }

let ipv4 ?(src = "10.0.0.1") ?(dst = "10.0.0.2") () : H.header =
  H.Ipv4
    { src = ip src; dst = ip dst; dscp = 0; ttl = 64; ident = 1234; dont_fragment = true }

let tcp ?(src_port = 40000) ?(dst_port = 5201) ?(flags = H.flags_psh_ack) () : H.header =
  H.Tcp { src_port; dst_port; seq = 7l; ack_seq = 9l; flags; window = 1024 }

let udp ?(src_port = 40000) ?(dst_port = 9999) () : H.header =
  H.Udp { src_port; dst_port }

(* --- Frame structure --- *)

let test_validate_accepts_typical () =
  let stacks =
    [
      [ eth; ipv4 (); tcp () ];
      [ eth; H.Vlan { pcp = 0; dei = false; vid = 100 }; ipv4 (); udp () ];
      [
        eth;
        H.Vlan { pcp = 0; dei = false; vid = 100 };
        H.Mpls { label = 100; tc = 0; ttl = 64 };
        H.Mpls { label = 200; tc = 0; ttl = 64 };
        H.Pseudowire;
        eth;
        ipv4 ();
        tcp ~dst_port:443 ();
        H.Tls { content_type = 23 };
      ];
      [ eth; H.Arp
          { operation = `Request; sender_mac = mac "02:00:00:00:00:01";
            sender_ip = ip "10.0.0.1"; target_mac = Netcore.Mac.zero;
            target_ip = ip "10.0.0.2" } ];
      [ eth; ipv4 (); udp ~dst_port:4789 (); H.Vxlan { vni = 42 }; eth; ipv4 (); tcp () ];
    ]
  in
  List.iter
    (fun stack ->
      match Frame.validate stack with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "valid stack rejected: %s" msg)
    stacks

let test_validate_rejects_malformed () =
  let bad =
    [
      [];
      [ ipv4 () ];
      (* must start with Ethernet *)
      [ eth; tcp () ];
      (* L4 without IP *)
      [ eth; ipv4 (); ipv4 () ];
      (* IP in IP without tunnel *)
      [ eth; H.Pseudowire ];
      (* PW without MPLS *)
      [ eth; H.Mpls { label = 1; tc = 0; ttl = 64 }; H.Pseudowire ];
      (* PW must be followed by Ethernet *)
      [ eth; ipv4 (); tcp (); H.Dns { query = true; id = 1 }; tcp () ];
    ]
  in
  List.iter
    (fun stack ->
      match Frame.validate stack with
      | Ok () -> Alcotest.fail "malformed stack accepted"
      | Error _ -> ())
    bad

let test_wire_length_padding () =
  (* Minimal TCP frame: 14 + 20 + 20 = 54 < 60, so padded. *)
  let f = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:0 in
  Alcotest.(check int) "padded" 60 (Frame.wire_length f);
  let f = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:1000 in
  Alcotest.(check int) "unpadded" 1054 (Frame.wire_length f)

let test_jumbo_detection () =
  let f = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:1465 in
  Alcotest.(check bool) "1519B is jumbo" true (Frame.is_jumbo f);
  let f = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:1464 in
  Alcotest.(check bool) "1518B is not jumbo" false (Frame.is_jumbo f)

let test_accessors () =
  let f =
    Frame.make
      [
        eth;
        H.Vlan { pcp = 0; dei = false; vid = 7 };
        H.Mpls { label = 1000; tc = 0; ttl = 64 };
        H.Mpls { label = 2000; tc = 0; ttl = 64 };
        ipv4 ();
        tcp ();
      ]
      ~payload_len:10
  in
  Alcotest.(check (list int)) "vlans" [ 7 ] (Frame.vlan_ids f);
  Alcotest.(check (list int)) "labels" [ 1000; 2000 ] (Frame.mpls_labels f);
  Alcotest.(check int) "depth" 6 (Frame.depth f);
  (match Frame.l3 f with
  | Some (H.Ipv4 _) -> ()
  | _ -> Alcotest.fail "expected ipv4 l3");
  match Frame.l4 f with
  | Some (H.Tcp _) -> ()
  | _ -> Alcotest.fail "expected tcp l4"

(* --- Codec --- *)

let test_encode_min_size () =
  let f = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:0 in
  Alcotest.(check int) "60 bytes" 60 (Bytes.length (Codec.encode f))

let test_encode_ethertype () =
  let f = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:0 in
  let b = Codec.encode f in
  Alcotest.(check int) "ethertype ipv4" 0x0800 (Bytes.get_uint16_be b 12)

let test_encode_ipv4_header () =
  let f = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:100 in
  let b = Codec.encode f in
  Alcotest.(check int) "version/ihl" 0x45 (Char.code (Bytes.get b 14));
  Alcotest.(check int) "total length" 140 (Bytes.get_uint16_be b 16);
  Alcotest.(check int) "protocol tcp" 6 (Char.code (Bytes.get b 23));
  (* Header checksum must verify: one's-complement sum of the 20-byte
     header equals 0xFFFF. *)
  let sum = Netcore.Checksum.ones_complement_sum b ~pos:14 ~len:20 in
  Alcotest.(check int) "ipv4 checksum valid" 0xFFFF sum

let tcp_checksum_valid b ~ip_pos ~tcp_pos ~tcp_len =
  let pseudo =
    Netcore.Checksum.ones_complement_sum b ~pos:(ip_pos + 12) ~len:8 + 6 + tcp_len
  in
  let sum =
    Netcore.Checksum.ones_complement_sum b ~pos:tcp_pos ~len:tcp_len ~initial:pseudo
  in
  sum land 0xFFFF = 0xFFFF

let test_encode_tcp_checksum () =
  let f = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:64 in
  let b = Codec.encode f in
  Alcotest.(check bool) "tcp checksum valid" true
    (tcp_checksum_valid b ~ip_pos:14 ~tcp_pos:34 ~tcp_len:84)

let test_encode_vlan_chain () =
  let f =
    Frame.make [ eth; H.Vlan { pcp = 3; dei = false; vid = 100 }; ipv4 (); udp () ]
      ~payload_len:0
  in
  let b = Codec.encode f in
  Alcotest.(check int) "outer ethertype vlan" 0x8100 (Bytes.get_uint16_be b 12);
  Alcotest.(check int) "tci" ((3 lsl 13) lor 100) (Bytes.get_uint16_be b 14);
  Alcotest.(check int) "inner ethertype" 0x0800 (Bytes.get_uint16_be b 16)

let test_encode_mpls_bottom_of_stack () =
  let f =
    Frame.make
      [ eth; H.Mpls { label = 16; tc = 0; ttl = 64 };
        H.Mpls { label = 17; tc = 0; ttl = 64 }; ipv4 (); udp () ]
      ~payload_len:0
  in
  let b = Codec.encode f in
  let word1 = Bytes.get_int32_be b 14 and word2 = Bytes.get_int32_be b 18 in
  let bos w = Int32.to_int (Int32.shift_right_logical w 8) land 1 in
  Alcotest.(check int) "first label not BoS" 0 (bos word1);
  Alcotest.(check int) "second label BoS" 1 (bos word2)

(* --- pcap --- *)

let test_pcap_roundtrip () =
  let w = Pcap.Writer.create () in
  let f1 = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:10 in
  let f2 = Frame.make [ eth; ipv4 (); udp () ] ~payload_len:500 in
  Pcap.Writer.add_frame w ~ts:1.25 f1;
  Pcap.Writer.add_frame w ~ts:2.5 f2;
  Alcotest.(check int) "count" 2 (Pcap.Writer.packet_count w);
  let packets = Pcap.Reader.packets (Pcap.Writer.contents w) in
  Alcotest.(check int) "read back" 2 (List.length packets);
  let p1 = List.nth packets 0 and p2 = List.nth packets 1 in
  Alcotest.(check (float 1e-5)) "ts1" 1.25 p1.Pcap.ts;
  Alcotest.(check (float 1e-5)) "ts2" 2.5 p2.Pcap.ts;
  Alcotest.(check int) "len1" 64 p1.Pcap.orig_len;
  Alcotest.(check int) "len2" 542 p2.Pcap.orig_len;
  Alcotest.(check bytes) "bytes1" (Codec.encode f1) p1.Pcap.data

let test_pcap_snaplen_truncation () =
  let w = Pcap.Writer.create ~snaplen:64 () in
  let f = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:1000 in
  Pcap.Writer.add_frame w ~ts:0.0 f;
  let packets = Pcap.Reader.packets (Pcap.Writer.contents w) in
  let p = List.hd packets in
  Alcotest.(check int) "captured" 64 (Bytes.length p.Pcap.data);
  Alcotest.(check int) "orig" 1054 p.Pcap.orig_len;
  Alcotest.(check int) "snaplen recorded" 64 (Pcap.Reader.snaplen (Pcap.Writer.contents w))

let test_pcap_bad_magic () =
  let b = Bytes.make 24 '\x00' in
  Alcotest.check_raises "bad magic"
    (Pcap.Reader.Malformed "bad magic 0x00000000") (fun () ->
      ignore (Pcap.Reader.packets b))

let test_pcap_file_io () =
  let w = Pcap.Writer.create () in
  let f = Frame.make [ eth; ipv4 (); tcp () ] ~payload_len:30 in
  Pcap.Writer.add_frame w ~ts:10.0 f;
  let path = Filename.temp_file "patchwork_test" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pcap.Writer.to_file w path;
      let packets = Pcap.Reader.of_file path in
      Alcotest.(check int) "one packet" 1 (List.length packets))

(* --- Filter --- *)

let sample_tls_frame =
  Frame.make
    [ eth; H.Vlan { pcp = 0; dei = false; vid = 42 };
      H.Mpls { label = 777; tc = 0; ttl = 64 };
      ipv4 ~src:"10.1.2.3" ~dst:"10.9.8.7" ();
      tcp ~src_port:55555 ~dst_port:443 (); H.Tls { content_type = 23 } ]
    ~payload_len:200

let check_filter expr frame expected =
  match Filter.parse expr with
  | Error msg -> Alcotest.failf "parse %S failed: %s" expr msg
  | Ok f -> Alcotest.(check bool) expr expected (Filter.matches f frame)

let test_filter_protocols () =
  check_filter "ip" sample_tls_frame true;
  check_filter "ip6" sample_tls_frame false;
  check_filter "tcp" sample_tls_frame true;
  check_filter "udp" sample_tls_frame false;
  check_filter "tls" sample_tls_frame true;
  check_filter "vlan" sample_tls_frame true;
  check_filter "vlan 42" sample_tls_frame true;
  check_filter "vlan 43" sample_tls_frame false;
  check_filter "mpls 777" sample_tls_frame true

let test_filter_hosts_ports () =
  check_filter "host 10.1.2.3" sample_tls_frame true;
  check_filter "src host 10.1.2.3" sample_tls_frame true;
  check_filter "dst host 10.1.2.3" sample_tls_frame false;
  check_filter "port 443" sample_tls_frame true;
  check_filter "dst port 443" sample_tls_frame true;
  check_filter "src port 443" sample_tls_frame false;
  check_filter "port 80" sample_tls_frame false

let test_filter_boolean () =
  check_filter "tcp and port 443" sample_tls_frame true;
  check_filter "tcp and port 80" sample_tls_frame false;
  check_filter "udp or tls" sample_tls_frame true;
  check_filter "not udp" sample_tls_frame true;
  check_filter "not ( tcp and vlan 42 )" sample_tls_frame false;
  (* "or" binds looser than "and". *)
  check_filter "udp and udp or tcp" sample_tls_frame true

let test_filter_length () =
  check_filter "greater 200" sample_tls_frame true;
  check_filter "less 100" sample_tls_frame false

let test_filter_parse_errors () =
  List.iter
    (fun expr ->
      match Filter.parse expr with
      | Ok _ -> Alcotest.failf "expected parse error for %S" expr
      | Error _ -> ())
    [ "bogus"; "port"; "host 999.1.1.1"; "( tcp"; "tcp tcp"; "src 443" ]

let test_filter_empty_is_true () =
  match Filter.parse "" with
  | Ok Filter.True -> ()
  | _ -> Alcotest.fail "empty filter should be True"

let test_filter_to_string_roundtrip () =
  let exprs =
    [ "tcp and port 443"; "not ( udp or icmp )"; "src host 10.1.2.3 and vlan 42" ]
  in
  List.iter
    (fun expr ->
      match Filter.parse expr with
      | Error msg -> Alcotest.failf "parse %S: %s" expr msg
      | Ok f -> (
        match Filter.parse (Filter.to_string f) with
        | Error msg -> Alcotest.failf "reparse of %S: %s" (Filter.to_string f) msg
        | Ok f' ->
          Alcotest.(check bool) expr true
            (Filter.matches f sample_tls_frame = Filter.matches f' sample_tls_frame)))
    exprs

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"encode length equals wire_length" ~count:300
      (Frame_gen.frame_arb ())
      (fun f -> Bytes.length (Codec.encode f) = Frame.wire_length f);
    Test.make ~name:"random stacks validate" ~count:300 small_int (fun seed ->
        let rng = Netcore.Rng.create seed in
        match Frame.validate (Frame_gen.random_stack rng) with
        | Ok () -> true
        | Error _ -> false);
    Test.make ~name:"pcap roundtrip preserves bytes" ~count:100
      (Frame_gen.frame_arb ())
      (fun f ->
        let w = Pcap.Writer.create () in
        Pcap.Writer.add_frame w ~ts:1.0 f;
        match Pcap.Reader.packets (Pcap.Writer.contents w) with
        | [ p ] -> Bytes.equal p.Pcap.data (Codec.encode f)
        | _ -> false);
    Test.make ~name:"ipv4 checksum always valid" ~count:300
      (Frame_gen.frame_arb ())
      (fun f ->
        let b = Codec.encode f in
        (* Find the first IPv4 header by walking the declared stack. *)
        let rec find_ip pos = function
          | [] -> None
          | H.Ipv4 _ :: _ -> Some pos
          | h :: rest -> find_ip (pos + H.size h) rest
        in
        match find_ip 0 f.Frame.headers with
        | None -> true
        | Some pos ->
          Netcore.Checksum.ones_complement_sum b ~pos ~len:20 = 0xFFFF);
  ]

let suites =
  [
    ( "packet.frame",
      [
        Alcotest.test_case "validate accepts typical stacks" `Quick test_validate_accepts_typical;
        Alcotest.test_case "validate rejects malformed" `Quick test_validate_rejects_malformed;
        Alcotest.test_case "wire length and padding" `Quick test_wire_length_padding;
        Alcotest.test_case "jumbo detection" `Quick test_jumbo_detection;
        Alcotest.test_case "accessors" `Quick test_accessors;
      ] );
    ( "packet.codec",
      [
        Alcotest.test_case "min frame size" `Quick test_encode_min_size;
        Alcotest.test_case "ethertype chain" `Quick test_encode_ethertype;
        Alcotest.test_case "ipv4 header fields" `Quick test_encode_ipv4_header;
        Alcotest.test_case "tcp checksum" `Quick test_encode_tcp_checksum;
        Alcotest.test_case "vlan chain" `Quick test_encode_vlan_chain;
        Alcotest.test_case "mpls bottom-of-stack" `Quick test_encode_mpls_bottom_of_stack;
      ] );
    ( "packet.pcap",
      [
        Alcotest.test_case "roundtrip" `Quick test_pcap_roundtrip;
        Alcotest.test_case "snaplen truncation" `Quick test_pcap_snaplen_truncation;
        Alcotest.test_case "bad magic" `Quick test_pcap_bad_magic;
        Alcotest.test_case "file io" `Quick test_pcap_file_io;
      ] );
    ( "packet.filter",
      [
        Alcotest.test_case "protocols" `Quick test_filter_protocols;
        Alcotest.test_case "hosts and ports" `Quick test_filter_hosts_ports;
        Alcotest.test_case "boolean structure" `Quick test_filter_boolean;
        Alcotest.test_case "frame length" `Quick test_filter_length;
        Alcotest.test_case "parse errors" `Quick test_filter_parse_errors;
        Alcotest.test_case "empty filter" `Quick test_filter_empty_is_true;
        Alcotest.test_case "to_string roundtrip" `Quick test_filter_to_string_roundtrip;
      ] );
    ("packet.properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
  ]
