(* Core.Pipeline and the identity properties behind the pipelined weekly
   service: the hand-off queue preserves order and propagates errors,
   the pipelined service produces a profile byte-identical to the
   sequential loop at any pool size and queue depth, and the traffic
   driver's per-site synthesis is bit-identical at any pool size and
   presample slab. *)

module Pipeline = Patchwork.Pipeline
module Pool = Parallel.Pool

(* --- the pipeline runner itself --- *)

let test_pipeline_order () =
  let consumed = ref [] in
  let stats =
    Pipeline.run ~n:8
      ~produce:(fun k -> k * k)
      ~consume:(fun k v -> consumed := (k, v) :: !consumed)
      ()
  in
  Alcotest.(check (list (pair int int)))
    "in order, producer values intact"
    (List.init 8 (fun k -> (k, k * k)))
    (List.rev !consumed);
  Alcotest.(check int) "stats.items" 8 stats.Pipeline.items

let test_pipeline_depth_bound () =
  (* With depth 2 the producer can run at most 2 items ahead; the
     queue's high-water mark must respect that. *)
  let stats =
    Pipeline.run ~depth:2 ~n:20
      ~produce:(fun k -> k)
      ~consume:(fun _ _ -> Domain.cpu_relax ())
      ()
  in
  Alcotest.(check bool) "max_depth within bound" true (stats.Pipeline.max_depth <= 2)

let test_pipeline_empty_and_invalid () =
  let stats = Pipeline.run ~n:0 ~produce:(fun k -> k) ~consume:(fun _ _ -> ()) () in
  Alcotest.(check int) "zero items" 0 stats.Pipeline.items;
  Alcotest.check_raises "depth 0 rejected"
    (Invalid_argument "Pipeline.run: depth must be >= 1") (fun () ->
      ignore (Pipeline.run ~depth:0 ~n:1 ~produce:(fun k -> k) ~consume:(fun _ _ -> ()) ()));
  Alcotest.check_raises "negative n rejected"
    (Invalid_argument "Pipeline.run: n must be >= 0") (fun () ->
      ignore (Pipeline.run ~n:(-1) ~produce:(fun k -> k) ~consume:(fun _ _ -> ()) ()))

let test_pipeline_producer_error () =
  let consumed = ref [] in
  (try
     ignore
       (Pipeline.run ~n:5
          ~produce:(fun k -> if k = 2 then failwith "producer boom" else k)
          ~consume:(fun k _ -> consumed := k :: !consumed)
          ());
     Alcotest.fail "expected exception"
   with Failure msg -> Alcotest.(check string) "message" "producer boom" msg);
  Alcotest.(check (list int)) "items before the failure were consumed" [ 0; 1 ]
    (List.rev !consumed)

let test_pipeline_consumer_error () =
  let produced = ref 0 in
  (try
     ignore
       (Pipeline.run ~n:100
          ~produce:(fun k ->
            incr produced;
            k)
          ~consume:(fun k _ -> if k = 1 then failwith "consumer boom")
          ());
     Alcotest.fail "expected exception"
   with Failure msg -> Alcotest.(check string) "message" "consumer boom" msg);
  (* The producer was cancelled: it cannot have raced through all 100
     items while the consumer died on item 1 with a depth-1 queue. *)
  Alcotest.(check bool) "producer stopped early" true (!produced < 100)

(* --- pipelined weekly equals sequential weekly --- *)

let weekly_seed = 2024
let weekly_weeks = 2

let run_week ~pool w =
  let start_time = float_of_int (30 + (7 * w)) *. Netcore.Timebase.day in
  let engine = Simcore.Engine.create ~start_time () in
  let fabric = Testbed.Fablib.create ~seed:weekly_seed engine in
  let driver =
    Traffic.Driver.create ~pool fabric ~seed:(weekly_seed + (31 * w))
  in
  let config =
    {
      Patchwork.Config.default with
      Patchwork.Config.samples_per_run = 2;
      max_frames_per_sample = 200;
      pool_size = Pool.size pool;
    }
  in
  Patchwork.Coordinator.run_occasion ~fabric ~driver ~config ~pool ~start_time
    ~duration:1500.0 ()

let weekly_profile_sequential ~size =
  Pool.with_pool ~size @@ fun pool ->
  let b = Analysis.Profile.Builder.create () in
  for w = 0 to weekly_weeks - 1 do
    Analysis.Profile.Builder.add_report ~pool b (run_week ~pool w)
  done;
  Analysis.Profile.Builder.finish b

let weekly_profile_pipelined ~size ~depth =
  Pool.with_pool ~size @@ fun an_pool ->
  Pool.with_pool ~size @@ fun sim_pool ->
  let b = Analysis.Profile.Builder.create () in
  ignore
    (Pipeline.run ~depth ~n:weekly_weeks
       ~produce:(fun w -> run_week ~pool:sim_pool w)
       ~consume:(fun _ report ->
         Analysis.Profile.Builder.add_report ~pool:an_pool b report)
       ());
  Analysis.Profile.Builder.finish b

let reference_profile = lazy (weekly_profile_sequential ~size:1)

let qcheck_pipelined_weekly_identical =
  QCheck.Test.make ~name:"pipelined weekly profile equals sequential" ~count:4
    QCheck.(pair (QCheck.oneofl [ 1; 2; 4 ]) (int_range 1 3))
    (fun (size, depth) ->
      Analysis.Profile.equal
        (Lazy.force reference_profile)
        (weekly_profile_pipelined ~size ~depth))

let test_sequential_pool_size_independent () =
  Alcotest.(check bool) "pool size 2 equals size 1" true
    (Analysis.Profile.equal
       (Lazy.force reference_profile)
       (weekly_profile_sequential ~size:2))

(* --- traffic synthesis is pool-size- and slab-independent --- *)

(* Fingerprint of a finished synthesis run: spawn count, live spec table
   (full structural content, sorted by flow id) and total switch Tx
   bytes (covers flows that already detached). *)
let synthesis_fingerprint ~seed ~pool_size ~slab =
  Pool.with_pool ~size:pool_size @@ fun pool ->
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed engine in
  let driver = Traffic.Driver.create ~pool ~slab fabric ~seed in
  Traffic.Driver.start driver ~until:3600.0;
  Simcore.Engine.run ~until:3600.0 engine;
  let specs = ref [] in
  let tx = ref 0.0 in
  let m = Testbed.Fablib.model fabric in
  Array.iter
    (fun (site : Testbed.Info_model.site) ->
      let name = site.Testbed.Info_model.name in
      let sw = Testbed.Fablib.switch fabric ~site:name in
      List.iter
        (fun port ->
          tx :=
            !tx
            +. (Testbed.Switch.read_counters sw ~port).Testbed.Switch.tx_bytes;
          List.iter
            (fun (a : Testbed.Switch.attachment) ->
              match Traffic.Driver.resolver driver a.Testbed.Switch.flow with
              | Some spec -> specs := spec :: !specs
              | None -> ())
            (Testbed.Switch.attachments sw ~port))
        (Testbed.Fablib.all_ports fabric ~site:name))
    m.Testbed.Info_model.sites;
  let specs =
    List.sort_uniq
      (fun (a : Traffic.Flow_model.spec) b ->
        compare a.Traffic.Flow_model.flow_id b.Traffic.Flow_model.flow_id)
      !specs
  in
  (Traffic.Driver.spawned_flows driver, specs, !tx)

let qcheck_synthesis_deterministic =
  QCheck.Test.make ~name:"parallel synthesis deterministic (pool, slab)"
    ~count:6
    QCheck.(
      triple (int_range 0 3) (QCheck.oneofl [ 1; 2; 4 ])
        (QCheck.oneofl [ 150.0; 900.0; 3600.0; 7200.0 ]))
    (fun (seed, pool_size, slab) ->
      let reference = synthesis_fingerprint ~seed ~pool_size:1 ~slab:900.0 in
      synthesis_fingerprint ~seed ~pool_size ~slab = reference)

let test_striped_flow_ids_unique () =
  (* Flow ids are striped per site; every live id must be distinct and
     resolve, whatever the pool size. *)
  Pool.with_pool ~size:3 @@ fun pool ->
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed:9 engine in
  let driver = Traffic.Driver.create ~pool fabric ~seed:9 in
  Traffic.Driver.start driver ~until:3600.0;
  Simcore.Engine.run ~until:3600.0 engine;
  Alcotest.(check bool) "flows spawned" true (Traffic.Driver.spawned_flows driver > 50);
  (* Drain: after every flow ends, the spec table must be empty (no id
     ever collided with — and deleted — another site's entry). *)
  Simcore.Engine.run engine;
  Alcotest.(check int) "all flows detached" 0 (Traffic.Driver.live_flow_count driver)

let suites =
  [
    ( "core.pipeline",
      [
        Alcotest.test_case "ordered hand-off" `Quick test_pipeline_order;
        Alcotest.test_case "bounded depth" `Quick test_pipeline_depth_bound;
        Alcotest.test_case "empty and invalid" `Quick test_pipeline_empty_and_invalid;
        Alcotest.test_case "producer error" `Quick test_pipeline_producer_error;
        Alcotest.test_case "consumer error" `Quick test_pipeline_consumer_error;
        Alcotest.test_case "sequential pool-size independent" `Slow
          test_sequential_pool_size_independent;
        QCheck_alcotest.to_alcotest qcheck_pipelined_weekly_identical;
      ] );
    ( "traffic.parallel-synthesis",
      [
        Alcotest.test_case "striped ids unique" `Quick test_striped_flow_ids_unique;
        QCheck_alcotest.to_alcotest qcheck_synthesis_deterministic;
      ] );
  ]
