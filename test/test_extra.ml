(* Edge-case coverage across layers: wire codecs, pcap endianness,
   filter rendering, instance/watchdog behavior, capture thinning. *)

open Netcore

(* --- Wire --- *)

let test_writer_growth () =
  let w = Wire.Writer.create ~capacity:4 () in
  for i = 0 to 999 do
    Wire.Writer.u16 w i
  done;
  Alcotest.(check int) "length" 2000 (Wire.Writer.length w);
  let b = Wire.Writer.contents w in
  Alcotest.(check int) "first" 0 (Bytes.get_uint16_be b 0);
  Alcotest.(check int) "last" 999 (Bytes.get_uint16_be b 1998)

let test_writer_patch () =
  let w = Wire.Writer.create () in
  Wire.Writer.u16 w 0;
  Wire.Writer.u32 w 42l;
  Wire.Writer.patch_u16 w ~pos:0 0xBEEF;
  Alcotest.(check int) "patched" 0xBEEF (Bytes.get_uint16_be (Wire.Writer.contents w) 0);
  Alcotest.check_raises "patch out of range"
    (Invalid_argument "Writer.patch_u16: out of range") (fun () ->
      Wire.Writer.patch_u16 w ~pos:5 1)

let test_reader_sub_and_truncation () =
  let r = Wire.Reader.of_bytes (Bytes.of_string "abcdefgh") in
  let sub = Wire.Reader.sub r 4 in
  Alcotest.(check int) "sub remaining" 4 (Wire.Reader.remaining sub);
  Alcotest.(check int) "parent advanced" 4 (Wire.Reader.remaining r);
  ignore (Wire.Reader.take sub 4);
  Alcotest.check_raises "sub bounded" Wire.Reader.Truncated (fun () ->
      ignore (Wire.Reader.u8 sub))

let test_reader_bounds () =
  let r = Wire.Reader.of_bytes (Bytes.of_string "ab") in
  Alcotest.(check int) "u16 works" 0x6162 (Wire.Reader.u16 r);
  Alcotest.check_raises "past end" Wire.Reader.Truncated (fun () ->
      ignore (Wire.Reader.u8 r))

let test_reader_window () =
  let r = Wire.Reader.of_bytes ~pos:2 ~len:3 (Bytes.of_string "abcdefgh") in
  Alcotest.(check int) "remaining" 3 (Wire.Reader.remaining r);
  Alcotest.(check bytes) "window" (Bytes.of_string "cde") (Wire.Reader.take r 3)

(* --- pcap little-endian interop --- *)

let test_pcap_reads_little_endian () =
  (* Hand-build a little-endian pcap with one 60-byte packet, as a
     foreign tool might produce. *)
  let buf = Buffer.create 128 in
  let u32le v =
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))
  in
  let u16le v =
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))
  in
  u32le 0xD4C3B2A1;
  (* LE magic as written by a LE writer: bytes A1 B2 C3 D4 reversed *)
  Buffer.clear buf;
  (* Actually: a little-endian pcap stores magic 0xA1B2C3D4 in LE byte
     order, i.e. bytes D4 C3 B2 A1, which reads back as 0xD4C3B2A1 in
     big-endian. *)
  Buffer.add_string buf "\xd4\xc3\xb2\xa1";
  u16le 2;
  u16le 4;
  u32le 0;
  u32le 0;
  u32le 65535;
  u32le 1;
  u32le 7 (* ts sec *);
  u32le 0 (* ts usec *);
  u32le 60 (* incl *);
  u32le 60 (* orig *);
  Buffer.add_string buf (String.make 60 '\x00');
  let packets = Packet.Pcap.Reader.packets (Buffer.to_bytes buf) in
  Alcotest.(check int) "one packet" 1 (List.length packets);
  let p = List.hd packets in
  Alcotest.(check (float 1e-9)) "timestamp" 7.0 p.Packet.Pcap.ts;
  Alcotest.(check int) "length" 60 (Bytes.length p.Packet.Pcap.data)

(* --- Filter rendering --- *)

let test_filter_to_string_all_forms () =
  let cases =
    [
      Packet.Filter.Proto "tcp";
      Packet.Filter.Vlan None;
      Packet.Filter.Vlan (Some 7);
      Packet.Filter.Mpls (Some 1000);
      Packet.Filter.Host (Packet.Filter.Src, Ipv4_addr.of_string "10.0.0.1");
      Packet.Filter.Port (Packet.Filter.Dst, 443);
      Packet.Filter.Less 100;
      Packet.Filter.Greater 1500;
      Packet.Filter.Not (Packet.Filter.Proto "udp");
      Packet.Filter.And (Packet.Filter.Proto "tcp", Packet.Filter.Vlan (Some 1));
      Packet.Filter.Or (Packet.Filter.Proto "ipv4", Packet.Filter.Proto "ipv6");
    ]
  in
  List.iter
    (fun f ->
      let s = Packet.Filter.to_string f in
      match Packet.Filter.parse s with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "unparseable rendering %S: %s" s msg)
    cases

(* --- Dist.mean --- *)

let test_dist_mean () =
  let check_mean d expected =
    match Dist.mean d with
    | Some m -> Alcotest.(check (float 1e-9)) "mean" expected m
    | None -> Alcotest.fail "expected a mean"
  in
  check_mean (Dist.Constant 5.0) 5.0;
  check_mean (Dist.Uniform (0.0, 10.0)) 5.0;
  check_mean (Dist.Exponential 3.0) 3.0;
  check_mean (Dist.Gaussian (7.0, 2.0)) 7.0;
  check_mean (Dist.Empirical [| (1.0, 10.0); (3.0, 20.0) |]) 17.5;
  check_mean (Dist.Mixture [ (0.5, Dist.Constant 0.0); (0.5, Dist.Constant 10.0) ]) 5.0;
  check_mean (Dist.Shifted (1.0, Dist.Constant 2.0)) 3.0;
  Alcotest.(check bool) "clamped has no closed form" true
    (Dist.mean (Dist.Clamped (0.0, 1.0, Dist.Constant 5.0)) = None);
  Alcotest.(check bool) "heavy pareto has no mean" true
    (Dist.mean (Dist.Pareto (0.9, 1.0)) = None)

let test_dist_mean_matches_sampling () =
  let rng = Rng.create 17 in
  let d = Dist.Mixture [ (0.7, Dist.Exponential 2.0); (0.3, Dist.Uniform (5.0, 15.0)) ] in
  let analytic = Option.get (Dist.mean d) in
  let empirical = Dist.mean_estimate d 100_000 rng in
  Alcotest.(check bool) "within 2%" true
    (Float.abs (empirical -. analytic) /. analytic < 0.02)

(* --- Units / Timebase printing --- *)

let fmt_to_string pp v = Format.asprintf "%a" pp v

let test_pp_rate () =
  Alcotest.(check string) "tbps" "3.97 Tbps" (fmt_to_string Units.pp_rate 3.968e12);
  Alcotest.(check string) "gbps" "100.00 Gbps" (fmt_to_string Units.pp_rate 100e9);
  Alcotest.(check string) "bps" "12 bps" (fmt_to_string Units.pp_rate 12.0)

let test_pp_bytes () =
  Alcotest.(check string) "gib" "1.00 GiB" (fmt_to_string Units.pp_bytes 1073741824.0);
  Alcotest.(check string) "b" "100 B" (fmt_to_string Units.pp_bytes 100.0)

let test_pp_duration () =
  Alcotest.(check string) "days" "2.0 d" (fmt_to_string Timebase.pp_duration 172800.0);
  Alcotest.(check string) "us" "5.0 us" (fmt_to_string Timebase.pp_duration 5e-6)

(* --- Instance behavior --- *)

let busy_fabric seed =
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed engine in
  let driver = Traffic.Driver.create fabric ~seed in
  (engine, fabric, driver)

let first_site fabric =
  (List.hd (Testbed.Info_model.profilable_sites (Testbed.Fablib.model fabric)))
    .Testbed.Info_model.name

let make_instance ?(config = Patchwork.Config.default) ?(storage = 1e12)
    (engine, fabric, driver) =
  let site = first_site fabric in
  let downlinks = Testbed.Fablib.downlink_ports fabric ~site in
  let nic_port = List.nth downlinks (List.length downlinks - 1) in
  let candidates =
    Testbed.Fablib.uplink_ports fabric ~site
    @ List.filter (fun p -> p <> nic_port) downlinks
  in
  let log = Patchwork.Logging.create () in
  let inst =
    Patchwork.Instance.create ~fabric ~resolver:(Traffic.Driver.resolver driver)
      ~config ~log ~rng:(Rng.create 3) ~site ~instance_id:0 ~nic_port ~candidates
      ~storage_bytes:storage
  in
  ignore engine;
  (inst, log, site)

let test_instance_samples_and_cycles () =
  let ((engine, fabric, driver) as ctx) = busy_fabric 51 in
  let config =
    {
      Patchwork.Config.default with
      Patchwork.Config.samples_per_run = 2;
      max_frames_per_sample = 10;
    }
  in
  let inst, _, _ = make_instance ~config ctx in
  Testbed.Fablib.start_telemetry ~until:7200.0 fabric;
  Traffic.Driver.start driver ~until:7200.0;
  Patchwork.Instance.start inst ~until:7200.0;
  Simcore.Engine.run ~until:7200.0 engine;
  Alcotest.(check bool) "took samples" true
    (List.length (Patchwork.Instance.samples inst) >= 8);
  Alcotest.(check bool) "cycled ports" true
    (Patchwork.Instance.cycles_completed inst >= 2);
  (match Patchwork.Instance.status inst with
  | Patchwork.Instance.Finished | Patchwork.Instance.Running -> ()
  | Patchwork.Instance.Crashed m -> Alcotest.failf "unexpected crash: %s" m);
  (* No mirror sessions leak after cycling. *)
  let site = first_site fabric in
  Alcotest.(check bool) "at most one live mirror" true
    (Testbed.Switch.mirror_count (Testbed.Fablib.switch fabric ~site) <= 1)

let test_instance_watchdog_storage_crash () =
  let ((engine, fabric, driver) as ctx) = busy_fabric 52 in
  let config =
    { Patchwork.Config.default with Patchwork.Config.instance_crash_prob = 0.0 }
  in
  (* A 1-byte disk: the first non-empty sample kills it. *)
  let inst, log, _ = make_instance ~config ~storage:1.0 ctx in
  Testbed.Fablib.start_telemetry ~until:7200.0 fabric;
  Traffic.Driver.start driver ~until:7200.0;
  Patchwork.Instance.start inst ~until:7200.0;
  Simcore.Engine.run ~until:7200.0 engine;
  match Patchwork.Instance.status inst with
  | Patchwork.Instance.Crashed msg ->
    Alcotest.(check string) "storage exhaustion" "storage exhausted" msg;
    Alcotest.(check bool) "error logged" true
      (List.length (Patchwork.Logging.errors log) > 0)
  | Patchwork.Instance.Running | Patchwork.Instance.Finished ->
    Alcotest.fail "watchdog should have fired"

(* --- Capture thinning arithmetic --- *)

let test_capture_thinning_consistency () =
  (* materialized_fraction times offered should approximate the record
     count when the budget binds. *)
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed:53 engine in
  let site = first_site fabric in
  let sw = Testbed.Fablib.switch fabric ~site in
  let template =
    [
      Packet.Headers.Ethernet
        { src = Mac.of_string "02:00:00:00:00:01"; dst = Mac.of_string "02:00:00:00:00:02" };
      Packet.Headers.Ipv4
        { src = Ipv4_addr.of_string "10.0.0.1"; dst = Ipv4_addr.of_string "10.0.0.2";
          dscp = 0; ttl = 64; ident = 0; dont_fragment = true };
      Packet.Headers.Udp { src_port = 1000; dst_port = 2000 };
    ]
  in
  let spec =
    Traffic.Flow_model.make ~flow_id:1 ~template
      ~frame_size:(Dist.Constant 1000.0) ~avg_frame_size:1000.0 ~byte_rate:5e7
      ~start_time:0.0 ~duration:1e6 ()
  in
  let d0 = List.hd (Testbed.Fablib.downlink_ports fabric ~site) in
  let d1 = List.nth (Testbed.Fablib.downlink_ports fabric ~site) 1 in
  Testbed.Switch.attach_flow sw ~port:d0 ~dir:Testbed.Switch.Rx ~byte_rate:5e7
    ~frame_rate:(Traffic.Flow_model.frame_rate spec) ~flow:1;
  let mirror =
    match
      Testbed.Switch.add_mirror sw ~src_port:d0 ~dirs:Testbed.Switch.Both ~dst_port:d1
    with
    | Ok id -> id
    | Error m -> failwith m
  in
  let config =
    { Patchwork.Config.default with Patchwork.Config.max_frames_per_sample = 500 }
  in
  let sample =
    Patchwork.Capture.run ~fabric
      ~resolver:(fun f -> if f = 1 then Some spec else None)
      ~config ~rng:(Rng.create 4) ~site ~mirror ~mirrored_port:d0 ()
  in
  let stats = sample.Patchwork.Capture.stats in
  (* Offered: 50k fps * 20s = 1M frames; budget 500. *)
  Alcotest.(check bool) "offered large" true
    (stats.Patchwork.Capture.offered_frames > 900_000.0);
  let expected_materialized =
    stats.Patchwork.Capture.offered_frames
    *. sample.Patchwork.Capture.materialized_fraction
  in
  let n = float_of_int (List.length sample.Patchwork.Capture.acaps) in
  Alcotest.(check bool) "thinning consistent (within poisson noise)" true
    (Float.abs (n -. expected_materialized) < 5.0 *. sqrt (expected_materialized +. 1.0));
  (* tcpdump cannot keep up with 50k fps?  It can (0.7 Mpps), so the
     only losses are at the materialization stage, which is not loss. *)
  Alcotest.(check (float 1.0)) "no host drops at 50kfps" 0.0
    stats.Patchwork.Capture.host_dropped

(* --- Headers misc --- *)

let test_header_sizes () =
  let module H = Packet.Headers in
  Alcotest.(check int) "eth" 14 (H.size (H.Ethernet { src = Mac.zero; dst = Mac.zero }));
  Alcotest.(check int) "vlan" 4 (H.size (H.Vlan { pcp = 0; dei = false; vid = 1 }));
  Alcotest.(check int) "ipv6" 40
    (H.size
       (H.Ipv6
          { src = Ipv6_addr.make 0L 0L; dst = Ipv6_addr.make 0L 0L;
            traffic_class = 0; flow_label = 0; hop_limit = 64 }));
  Alcotest.(check int) "ntp" 48 (H.size H.Ntp);
  Alcotest.(check int) "dns" 12 (H.size (H.Dns { query = true; id = 0 }))

let test_ethertype_errors () =
  let module H = Packet.Headers in
  Alcotest.(check bool) "tcp has no ethertype" true
    (try
       ignore
         (H.ethertype_for
            (H.Tcp
               { src_port = 1; dst_port = 2; seq = 0l; ack_seq = 0l;
                 flags = H.flags_none; window = 0 }));
       false
     with Invalid_argument _ -> true)

let test_services_lookup () =
  let module S = Dissect.Services in
  (match S.lookup S.Tcp ~src_port:44444 ~dst_port:3306 with
  | Some svc -> Alcotest.(check string) "mysql" "mysql" svc.S.service_name
  | None -> Alcotest.fail "expected mysql");
  (* Destination takes precedence over source. *)
  (match S.lookup S.Tcp ~src_port:80 ~dst_port:443 with
  | Some svc -> Alcotest.(check string) "dst first" "tls" svc.S.service_name
  | None -> Alcotest.fail "expected tls");
  Alcotest.(check bool) "udp/tcp distinguished" true
    (S.lookup S.Udp ~src_port:1 ~dst_port:80 = None);
  Alcotest.(check bool) "unknown port" true
    (S.lookup S.Tcp ~src_port:1 ~dst_port:2 = None)

let suites =
  [
    ( "extra.wire",
      [
        Alcotest.test_case "writer growth" `Quick test_writer_growth;
        Alcotest.test_case "writer patch" `Quick test_writer_patch;
        Alcotest.test_case "reader sub" `Quick test_reader_sub_and_truncation;
        Alcotest.test_case "reader bounds" `Quick test_reader_bounds;
        Alcotest.test_case "reader window" `Quick test_reader_window;
      ] );
    ( "extra.pcap",
      [ Alcotest.test_case "little-endian interop" `Quick test_pcap_reads_little_endian ] );
    ( "extra.filter",
      [ Alcotest.test_case "to_string all forms" `Quick test_filter_to_string_all_forms ] );
    ( "extra.dist",
      [
        Alcotest.test_case "analytic means" `Quick test_dist_mean;
        Alcotest.test_case "mean matches sampling" `Quick test_dist_mean_matches_sampling;
      ] );
    ( "extra.pp",
      [
        Alcotest.test_case "rates" `Quick test_pp_rate;
        Alcotest.test_case "bytes" `Quick test_pp_bytes;
        Alcotest.test_case "durations" `Quick test_pp_duration;
      ] );
    ( "extra.instance",
      [
        Alcotest.test_case "samples and cycles" `Slow test_instance_samples_and_cycles;
        Alcotest.test_case "watchdog storage crash" `Slow test_instance_watchdog_storage_crash;
      ] );
    ( "extra.capture",
      [ Alcotest.test_case "thinning arithmetic" `Quick test_capture_thinning_consistency ] );
    ( "extra.headers",
      [
        Alcotest.test_case "sizes" `Quick test_header_sizes;
        Alcotest.test_case "ethertype errors" `Quick test_ethertype_errors;
        Alcotest.test_case "service lookup" `Quick test_services_lookup;
      ] );
  ]
