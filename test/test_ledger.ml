(* The loss-attribution ledger: conservation as a property, exemplar
   determinism under sharding, page-cache attribution, and the
   /lossmap.json contract. *)

module L = Obs.Ledger
module J = Obs.Export.Json

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* --- cause taxonomy --- *)

let test_cause_labels () =
  List.iter
    (fun c ->
      check
        (Alcotest.option
           (Alcotest.testable
              (fun fmt c -> Format.pp_print_string fmt (L.cause_label c))
              ( = )))
        (L.cause_label c) (Some c)
        (L.cause_of_label (L.cause_label c)))
    L.all_causes;
  checkb "labels distinct" true
    (let ls = List.map L.cause_label L.all_causes in
     List.length (List.sort_uniq compare ls) = List.length ls);
  checkb "unknown label" true (L.cause_of_label "cosmic_rays" = None)

(* --- conservation: balanced close, violation detection --- *)

let balanced_sample l ~site =
  L.record_sample l ~site ~offered_frames:1000.0 ~offered_bytes:8.0e5
    ~stored_frames:900.0 ~stored_bytes:7.0e5
    ~keys:[ "k1"; "k2" ]
    [
      (L.Switch_drop, 60.0, 5.0e4);
      (L.Host_drop L.Kernel, 40.0, 3.0e4);
      (L.Truncated, 0.0, 2.0e4);
    ]

let test_conservation_close () =
  let l = L.create () in
  L.begin_occasion l ~at:100.0;
  balanced_sample l ~site:"STAR";
  balanced_sample l ~site:"TACC";
  let e = L.close_occasion l in
  check Alcotest.int "two sites" 2 (List.length e.L.o_sites);
  List.iter
    (fun (s : L.site_entry) ->
      checkb (s.L.e_site ^ " conserved") true s.L.e_conserved;
      check (Alcotest.float 1e-9) "frames residual" 0.0 s.L.e_frames_residual)
    e.L.o_sites;
  (* A second close is a fresh (empty) occasion with the next seq. *)
  let e2 = L.close_occasion l in
  check Alcotest.int "seq advances" 1 e2.L.o_seq;
  check Alcotest.int "accumulation cleared" 0 (List.length e2.L.o_sites);
  check Alcotest.int "history retained" 2 (List.length (L.history l))

let test_violation_detected () =
  let was_strict = L.strict () in
  Fun.protect
    ~finally:(fun () -> L.set_strict was_strict)
    (fun () ->
      let violations () =
        match
          Obs.Registry.value Obs.Registry.default
            "ledger_conservation_violations_total"
        with
        | Some (Obs.Registry.Counter v) -> v
        | _ -> 0.0
      in
      let l = L.create () in
      L.begin_occasion l ~at:0.0;
      (* 100 offered frames vanish without an attributed cause. *)
      L.record_sample l ~site:"STAR" ~offered_frames:1000.0
        ~offered_bytes:8.0e5 ~stored_frames:900.0 ~stored_bytes:8.0e5 [];
      L.set_strict false;
      let logged = ref [] in
      let before = violations () in
      let e = L.close_occasion ~log:(fun m -> logged := m :: !logged) l in
      let s = List.hd e.L.o_sites in
      checkb "not conserved" false s.L.e_conserved;
      check (Alcotest.float 1e-9) "residual is the leak" 100.0
        s.L.e_frames_residual;
      checkb "violation counted" true (violations () = before +. 1.0);
      checkb "violation logged" true (!logged <> []);
      (* The same leak under strict mode raises. *)
      L.set_strict true;
      L.begin_occasion l ~at:0.0;
      L.record_sample l ~site:"STAR" ~offered_frames:1000.0
        ~offered_bytes:8.0e5 ~stored_frames:900.0 ~stored_bytes:8.0e5 [];
      checkb "strict close raises" true
        (match L.close_occasion l with
        | exception L.Conservation_violation _ -> true
        | _ -> false))

(* --- exemplar determinism --- *)

(* The reservoir is a pure function of the candidate key set: the K
   unsigned-smallest priorities under the (site, occasion-start) seed,
   ties toward the smaller key. *)
let expected_exemplars ~site ~at ~k keys =
  let seed = L.seed_for ~site ~at in
  List.sort_uniq compare keys
  |> List.map (fun key -> (L.priority ~seed key, key))
  |> List.sort (fun (p, a) (q, b) ->
         let c = Int64.unsigned_compare p q in
         if c <> 0 then c else String.compare a b)
  |> List.filteri (fun i _ -> i < k)
  |> List.map snd

let exemplars_of_entry (e : L.occasion_entry) ~site ~cause =
  match List.find_opt (fun (s : L.site_entry) -> s.L.e_site = site) e.L.o_sites with
  | None -> []
  | Some s ->
    List.concat_map
      (fun (c, _, _, exs) -> if c = cause then exs else [])
      s.L.e_causes

(* Feed the same key multiset through [shards] record_sample calls,
   round-robin, in the given traversal order. *)
let run_sharded ~k ~at ~site ~shards keys =
  let l = L.create ~exemplars:k () in
  L.begin_occasion l ~at;
  let buckets = Array.make shards [] in
  List.iteri
    (fun i key -> buckets.(i mod shards) <- key :: buckets.(i mod shards))
    keys;
  Array.iter
    (fun ks ->
      L.record_sample l ~site ~offered_frames:1.0 ~offered_bytes:0.0
        ~stored_frames:0.0 ~stored_bytes:0.0 ~keys:ks
        [ (L.Switch_drop, 1.0, 0.0) ])
    buckets;
  exemplars_of_entry (L.close_occasion l) ~site ~cause:L.Switch_drop

let qcheck_exemplars_deterministic =
  QCheck.Test.make ~count:200
    ~name:"exemplar reservoir independent of sharding and order"
    QCheck.(
      pair (int_range 1 6)
        (small_list (string_gen_of_size (Gen.int_range 1 12) Gen.printable)))
    (fun (k, keys) ->
      let at = 2.5e6 and site = "STAR" in
      let reference = expected_exemplars ~site ~at ~k keys in
      List.for_all
        (fun shards -> run_sharded ~k ~at ~site ~shards keys = reference)
        [ 1; 2; 4 ]
      && run_sharded ~k ~at ~site ~shards:2 (List.rev keys) = reference)

(* --- conservation property over the capture arithmetic --- *)

let breakdown_gen =
  QCheck.Gen.(
    let* offered = map float_of_int (int_bound 2_000_000) in
    let* dur10 = int_range 1 300 in
    let* avg = map (fun i -> 60.0 +. float_of_int i) (int_bound 8940) in
    let* dropc = int_bound 100 in
    let* congested = bool in
    let* capacity = map float_of_int (int_bound 2_000_000) in
    let* thr = int_bound 100 in
    let* trunc = oneofl [ 64; 200; 1514; 9000 ] in
    let* path = oneofl [ L.Kernel; L.Dpdk; L.Fpga ] in
    return
      ( offered,
        0.1 *. float_of_int dur10,
        avg,
        float_of_int dropc /. 100.0,
        congested,
        capacity,
        0.02 +. (0.98 *. float_of_int thr /. 100.0),
        trunc,
        path ))

let arb_stream =
  QCheck.make
    ~print:(fun samples ->
      String.concat ";\n"
        (List.map
           (fun (o, d, a, f, c, cap, th, tr, _) ->
             Printf.sprintf
               "offered=%g dur=%g avg=%g drop=%g congested=%b cap=%g \
                throttle=%g trunc=%d"
               o d a f c cap th tr)
           samples))
    QCheck.Gen.(list_size (int_range 1 20) breakdown_gen)

let qcheck_conservation_adversarial =
  QCheck.Test.make ~count:300
    ~name:"conservation invariant under adversarial capture streams"
    arb_stream
    (fun samples ->
      let l = L.create () in
      L.begin_occasion l ~at:1.0e6;
      let sites = [| "STAR"; "TACC"; "UTAH" |] in
      List.iteri
        (fun i
             ( offered_pps,
               duration,
               avg_frame_size,
               switch_drop_frac,
               congested,
               capacity_pps,
               throttle,
               truncation,
               host_path ) ->
          let b =
            Patchwork.Capture.loss_breakdown ~offered_pps ~duration
              ~avg_frame_size ~switch_drop_frac ~congested ~capacity_pps
              ~throttle ~truncation ~host_path
          in
          let site = sites.(i mod Array.length sites) in
          L.record_sample l ~site
            ~offered_frames:b.Patchwork.Capture.b_offered_frames
            ~offered_bytes:b.Patchwork.Capture.b_offered_bytes
            ~stored_frames:b.Patchwork.Capture.b_captured_frames
            ~stored_bytes:b.Patchwork.Capture.b_stored_wire_bytes
            ~keys:[ Printf.sprintf "flow-%d" i ]
            b.Patchwork.Capture.b_causes;
          (* Out-of-band loss must keep the invariant balanced too. *)
          if i mod 3 = 0 then
            L.attribute_lost l ~site ~cause:L.Mirror_revoked
              ~frames:(float_of_int (i * 7))
              ~bytes:(float_of_int (i * 5600))
              ())
        samples;
      (* Strict mode is on for the whole suite: a violating close would
         raise rather than return. *)
      let e = L.close_occasion l in
      List.for_all (fun (s : L.site_entry) -> s.L.e_conserved) e.L.o_sites)

(* --- real occasions: determinism across pool sizes --- *)

let run_occasion ?(config = fun c -> c) ?(site = "STAR") ~pool_size seed =
  L.reset L.default;
  let start_time = 30.0 *. Netcore.Timebase.day in
  Parallel.Pool.with_pool ~size:pool_size @@ fun pool ->
  let engine = Simcore.Engine.create ~start_time () in
  let fabric = Testbed.Fablib.create ~seed engine in
  let driver = Traffic.Driver.create ~pool fabric ~seed in
  let base =
    {
      Patchwork.Config.default with
      Patchwork.Config.mode =
        Patchwork.Config.Single_experiment
          [ (site, Testbed.Fablib.all_ports fabric ~site) ];
      samples_per_run = 2;
      max_frames_per_sample = 500;
      pool_size = Parallel.Pool.size pool;
    }
  in
  let report =
    Patchwork.Coordinator.run_occasion ~fabric ~driver ~config:(config base)
      ~pool ~start_time ~duration:1800.0 ()
  in
  (report, J.to_string (L.to_json L.default))

let test_occasion_pool_determinism () =
  let _, j1 = run_occasion ~pool_size:1 77 in
  let _, j2 = run_occasion ~pool_size:2 77 in
  let _, j4 = run_occasion ~pool_size:4 77 in
  checkb "ledger json nonempty" true (String.length j1 > 2);
  check Alcotest.string "pool 1 = pool 2" j1 j2;
  check Alcotest.string "pool 1 = pool 4" j1 j4;
  (* The occasion actually exercised the ledger. *)
  match L.last L.default with
  | None -> Alcotest.fail "no closed occasion in the default ledger"
  | Some e ->
    let star =
      List.find_opt (fun (s : L.site_entry) -> s.L.e_site = "STAR") e.L.o_sites
    in
    (match star with
    | None -> Alcotest.fail "no STAR entry"
    | Some s ->
      checkb "offered frames recorded" true (s.L.e_offered_frames > 0.0);
      checkb "conserved" true s.L.e_conserved)

(* --- page-cache throttling lands in the ledger --- *)

let test_page_cache_attribution () =
  (* 1 MB of cache that essentially never drains, behind a kernel path
     slow enough that a throttled keep rate actually bites. *)
  let tiny =
    {
      Hostmodel.Host_profile.default with
      Hostmodel.Host_profile.ram_bytes = 1.0e8;
      free_cache_fraction = 0.01;
      storage_drain_rate = 1.0;
      kernel_fixed_cost = 5.0e-4;  (* ~2k pps capacity *)
    }
  in
  let _, _ =
    run_occasion ~site:"ATLA"
      ~config:(fun c ->
        {
          c with
          Patchwork.Config.host_profile = tiny;
          model_page_cache = true;
        })
      ~pool_size:1 77
  in
  match L.last L.default with
  | None -> Alcotest.fail "no closed occasion"
  | Some e ->
    let throttled =
      List.exists
        (fun (s : L.site_entry) ->
          List.exists
            (fun (c, frames, _, _) -> c = L.Page_cache_throttle && frames > 0.0)
            s.L.e_causes)
        e.L.o_sites
    in
    checkb "page-cache throttle attributed" true throttled;
    List.iter
      (fun (s : L.site_entry) -> checkb "conserved" true s.L.e_conserved)
      e.L.o_sites

(* --- /lossmap.json agrees with the in-process ledger --- *)

let lossmap_req query =
  { Obs.Http.meth = "GET"; path = "/lossmap.json"; query; headers = [] }

let test_lossmap_endpoint () =
  let l = L.create () in
  L.begin_occasion l ~at:100.0;
  balanced_sample l ~site:"STAR";
  ignore (L.close_occasion l);
  L.begin_occasion l ~at:200.0;
  balanced_sample l ~site:"TACC";
  ignore (L.close_occasion l);
  let body query =
    let r = Obs.Endpoints.lossmap ~ledger:l (lossmap_req query) in
    (r.Obs.Http.status, r.Obs.Http.body)
  in
  (* Unfiltered body is exactly the ledger's own rendering. *)
  let status, b = body [] in
  check Alcotest.int "200" 200 status;
  check Alcotest.string "body = ledger json" (J.to_string (L.to_json l) ^ "\n")
    b;
  (* Occasion and site filters. *)
  let _, b0 = body [ ("occasion", "0") ] in
  checkb "occasion filter keeps seq 0" true
    (match J.parse b0 with
    | Ok doc -> (
      match J.member "occasions" doc with
      | Some (J.Arr [ occ ]) ->
        Option.bind (J.member "seq" occ) J.to_float = Some 0.0
      | _ -> false)
    | Error _ -> false);
  let _, bs = body [ ("site", "TACC") ] in
  checkb "site filter drops other occasions" true
    (match J.parse bs with
    | Ok doc -> (
      match J.member "occasions" doc with
      | Some (J.Arr [ occ ]) ->
        Option.bind (J.member "seq" occ) J.to_float = Some 1.0
      | _ -> false)
    | Error _ -> false);
  (* Malformed filter is a 400, not a crash. *)
  let status, _ = body [ ("occasion", "abc") ] in
  check Alcotest.int "malformed occasion is 400" 400 status

let suites =
  [
    ( "ledger",
      [
        Alcotest.test_case "cause labels round-trip" `Quick test_cause_labels;
        Alcotest.test_case "balanced occasions close conserved" `Quick
          test_conservation_close;
        Alcotest.test_case "violations detected, counted, strict-raised" `Quick
          test_violation_detected;
        QCheck_alcotest.to_alcotest qcheck_exemplars_deterministic;
        QCheck_alcotest.to_alcotest qcheck_conservation_adversarial;
        Alcotest.test_case "occasion ledger identical at pools 1/2/4" `Slow
          test_occasion_pool_determinism;
        Alcotest.test_case "page-cache throttling attributed" `Slow
          test_page_cache_attribution;
        Alcotest.test_case "/lossmap.json agrees with the ledger" `Quick
          test_lossmap_endpoint;
      ] );
  ]
