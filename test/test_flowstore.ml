(* The on-disk flow store: segment format, spill writer, compaction and
   the query engine's byte-identity contract against the in-memory
   merge. *)

module FS = Analysis.Flow_store
module Flows = Analysis.Flows
module Profile = Analysis.Profile

let record ?(ts = 0.0) ?(len = 100) ?(stack = [ "eth"; "ipv4"; "tcp" ])
    ?(vlans = [ 1 ]) ?(src = Some "10.0.0.1") ?(dst = Some "10.0.0.2")
    ?(l4 = Some (1000, 2000)) ?(rst = false) () =
  {
    Dissect.Acap.ts;
    orig_len = len;
    cap_len = min len 200;
    stack;
    vlan_ids = vlans;
    mpls_labels = [];
    src;
    dst;
    l4;
    tcp_rst = rst;
    truncated = false;
  }

let shard_of records =
  let s = Flows.Shard.create () in
  List.iter (Flows.Shard.add s) records;
  s

let fsrec ?(site = "STAR") ?(seq = 0) ?(frames = 1.0) ?(bytes = 100.0)
    ?(first = 0.0) ?(last = 1.0) ?(rst = false) key =
  {
    FS.r_key = key;
    r_site = site;
    r_seq = seq;
    r_frames = frames;
    r_bytes = bytes;
    r_first = first;
    r_last = last;
    r_rst = rst;
  }

let with_temp_dir f =
  let dir = Filename.temp_file "patchwork_fstore" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun x -> Sys.remove (Filename.concat dir x))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* --- segment format ------------------------------------------------ *)

let test_segment_roundtrip () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "seg.pwfs" in
  (* Deliberately unsorted input: write sorts by (key, seq). *)
  let records =
    [
      fsrec ~seq:2 ~frames:3.0 ~bytes:300.0 ~rst:true "b|key";
      fsrec ~seq:0 ~site:"WASH" "a|key";
      fsrec ~seq:1 ~frames:2.5 ~bytes:0.5 ~first:(-1.0) ~last:9.25 "a|key";
    ]
  in
  let size = FS.Segment.write path records in
  Alcotest.(check bool) "size matches file" true
    (size = String.length (read_file path));
  let r = FS.Segment.open_reader path in
  Alcotest.(check int) "record count" 3 (FS.Segment.record_count r);
  FS.Segment.close r;
  match FS.Segment.read_all path with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check int) "three back" 3 (List.length back);
    Alcotest.(check bool) "sorted by (key, seq), fields exact" true
      (back
      = [
          fsrec ~seq:0 ~site:"WASH" "a|key";
          fsrec ~seq:1 ~frames:2.5 ~bytes:0.5 ~first:(-1.0) ~last:9.25 "a|key";
          fsrec ~seq:2 ~frames:3.0 ~bytes:300.0 ~rst:true "b|key";
        ])

let check_error path sub =
  match FS.Segment.read_all path with
  | Ok _ -> Alcotest.fail ("expected Error mentioning " ^ sub)
  | Error e ->
    let present =
      let ls = String.lowercase_ascii e and lsub = String.lowercase_ascii sub in
      let n = String.length ls and m = String.length lsub in
      let rec at i = i + m <= n && (String.sub ls i m = lsub || at (i + 1)) in
      at 0
    in
    if not present then Alcotest.fail (Printf.sprintf "%S not in %S" sub e);
    (* Every corruption error names the offending file. *)
    Alcotest.(check bool) "names the file" true
      (String.length e >= String.length path
      && String.sub e 0 (String.length path) = path)

let test_segment_bad_magic () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "bad.pwfs" in
  write_file path "NOPE\x01\x00\x00\x00\x00\x00";
  check_error path "bad magic"

let test_segment_bad_version () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "vers.pwfs" in
  write_file path "PWFS\x63\x00\x00\x00\x00\x00";
  check_error path "version 99"

let test_segment_short_header () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "short.pwfs" in
  write_file path "PWF";
  check_error path "shorter than the header"

let test_segment_truncated () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "trunc.pwfs" in
  let _ = FS.Segment.write path [ fsrec ~seq:0 "a"; fsrec ~seq:1 "b" ] in
  let whole = read_file path in
  write_file path (String.sub whole 0 (String.length whole - 5));
  check_error path "cut short at record 2/2"

let test_segment_trailing_garbage () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "trail.pwfs" in
  let _ = FS.Segment.write path [ fsrec "a" ] in
  write_file path (read_file path ^ "junk");
  check_error path "trailing garbage"

(* Hand-rolled little-endian encoder, independent of the library's, so
   these tests pin the format itself, not just the implementation. *)
let encode_segment records =
  let b = Buffer.create 256 in
  Buffer.add_string b "PWFS";
  Buffer.add_uint16_le b 1;
  Buffer.add_int32_le b (Int32.of_int (List.length records));
  List.iter
    (fun (key, site, seq, frames, bytes, first, last, flags) ->
      Buffer.add_uint16_le b (String.length key);
      Buffer.add_string b key;
      Buffer.add_uint16_le b (String.length site);
      Buffer.add_string b site;
      Buffer.add_int32_le b (Int32.of_int seq);
      List.iter
        (fun f -> Buffer.add_int64_le b (Int64.bits_of_float f))
        [ frames; bytes; first; last ];
      Buffer.add_uint8 b flags)
    records;
  Buffer.contents b

let test_segment_unsorted_rejected () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "unsorted.pwfs" in
  write_file path
    (encode_segment
       [
         ("b", "STAR", 0, 1.0, 10.0, 0.0, 1.0, 0);
         ("a", "STAR", 1, 1.0, 10.0, 0.0, 1.0, 0);
       ]);
  check_error path "not sorted at record 2"

let test_segment_invalid_flags_rejected () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "flags.pwfs" in
  write_file path (encode_segment [ ("a", "STAR", 0, 1.0, 10.0, 0.0, 1.0, 0xF2) ]);
  check_error path "invalid flags byte 0xf2"

let test_segment_format_pinned () =
  (* The library reads what the independent encoder writes, proving the
     wire format is the documented one. *)
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "pinned.pwfs" in
  write_file path
    (encode_segment
       [
         ("1|-|10.0.0.1|10.0.0.2|tcp|80-443", "STAR", 7, 2.0, 128.0, 1.5, 2.5, 1);
       ]);
  match FS.Segment.read_all path with
  | Error e -> Alcotest.fail e
  | Ok [ r ] ->
    Alcotest.(check string) "key" "1|-|10.0.0.1|10.0.0.2|tcp|80-443" r.FS.r_key;
    Alcotest.(check string) "site" "STAR" r.FS.r_site;
    Alcotest.(check int) "seq" 7 r.FS.r_seq;
    Alcotest.(check (float 0.0)) "frames" 2.0 r.FS.r_frames;
    Alcotest.(check (float 0.0)) "bytes" 128.0 r.FS.r_bytes;
    Alcotest.(check bool) "rst" true r.FS.r_rst
  | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length l))

(* --- writer + query: the byte-identity contract -------------------- *)

(* Synthetic groups with plenty of byte-tied flows (same len, different
   ports) and awkward fractions (0.3, 0.6 have no exact binary
   representation). *)
let make_groups ~seed ~flows ~groups =
  let rng = Netcore.Rng.create seed in
  List.init groups (fun g ->
      let fraction =
        [| 1.0; 0.5; 0.3; 0.25; 0.125; 0.6 |].(Netcore.Rng.int rng 6)
      in
      let records = ref [] in
      for flow = 0 to flows - 1 do
        if Netcore.Rng.bernoulli rng 0.7 then
          for i = 0 to Netcore.Rng.int rng 3 do
            records :=
              record
                ~ts:(float_of_int ((g * 100) + i))
                ~len:(64 * (1 + (flow mod 3)))
                ~l4:(Some (5000 + flow, 443))
                ~rst:(flow mod 11 = 0) ()
              :: !records
          done
      done;
      (shard_of !records, fraction))

let query_equals_memory ~seed ~flows ~groups ~spill_records =
  with_temp_dir @@ fun dir ->
  let shards = make_groups ~seed ~flows ~groups in
  let expected = Flows.merge shards in
  let w = FS.Writer.create ~spill_records ~dir () in
  List.iter
    (fun (shard, fraction) -> FS.Writer.add_shard w ~site:"STAR" ~fraction shard)
    shards;
  let segments = FS.Writer.finish w in
  let res = FS.query segments in
  (expected = res.FS.flows, List.length segments, expected, res)

let test_query_identical_to_memory () =
  List.iter
    (fun spill_records ->
      let identical, segs, expected, res =
        query_equals_memory ~seed:7 ~flows:40 ~groups:6 ~spill_records
      in
      Alcotest.(check bool)
        (Printf.sprintf "byte-identical at spill threshold %d" spill_records)
        true identical;
      Alcotest.(check int)
        (Printf.sprintf "distinct flows (threshold %d)" spill_records)
        (List.length expected) res.FS.stats.FS.distinct_flows;
      if spill_records = 1 then
        Alcotest.(check bool) "tiny threshold spills many segments" true (segs > 3))
    [ 1; 7; 1000 ]

let qcheck_spill_identity =
  QCheck.Test.make ~name:"spilled query byte-identical to in-memory merge"
    ~count:30
    QCheck.(pair small_nat (int_bound 2))
    (fun (seed, t) ->
      let spill_records = [| 1; 7; 1000 |].(t) in
      let identical, _, _, _ =
        query_equals_memory ~seed:(seed + 1) ~flows:20 ~groups:4 ~spill_records
      in
      identical)

let test_writer_counters () =
  with_temp_dir @@ fun dir ->
  let w = FS.Writer.create ~spill_records:1 ~dir () in
  FS.Writer.add_shard w ~site:"STAR" ~fraction:1.0
    (shard_of [ record (); record ~l4:(Some (1, 2)) () ]);
  let segs = FS.Writer.finish w in
  Alcotest.(check int) "one spill" 1 (List.length segs);
  Alcotest.(check int) "segments_written" 1 (FS.Writer.segments_written w);
  Alcotest.(check bool) "spilled bytes counted" true (FS.Writer.spilled_bytes w > 0);
  Alcotest.(check bool) "finish twice rejected" true
    (match FS.Writer.finish w with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check (list string)) "segments_in_dir finds them" segs
    (FS.segments_in_dir dir)

let counter_value name =
  match
    Obs.Registry.value Obs.Registry.default
      ~labels:[ ("stage", "flow_store") ]
      name
  with
  | Some (Obs.Registry.Counter v) -> v
  | _ -> 0.0

let test_writer_unweighted_counter () =
  with_temp_dir @@ fun dir ->
  let before = counter_value "analysis_unweighted_samples_total" in
  let w = FS.Writer.create ~dir () in
  (* Empty shard at fraction 0: nothing to mis-weight, no count. *)
  FS.Writer.add_shard w ~site:"STAR" ~fraction:0.0 (Flows.Shard.create ());
  Alcotest.(check (float 0.0)) "empty shard not counted" before
    (counter_value "analysis_unweighted_samples_total");
  FS.Writer.add_shard w ~site:"STAR" ~fraction:0.0 (shard_of [ record () ]);
  Alcotest.(check (float 0.0)) "non-empty shard counted" (before +. 1.0)
    (counter_value "analysis_unweighted_samples_total");
  let segs = FS.Writer.finish w in
  (* The unweightable group was stored at weight 1.0, like the merge. *)
  let res = FS.query segs in
  Alcotest.(check (float 0.0)) "stored at weight 1.0" 1.0
    (List.hd res.FS.flows).Flows.frames

(* --- predicates ---------------------------------------------------- *)

let two_site_segments dir =
  let star =
    shard_of
      [
        record ~ts:10.0 ~len:100 ~l4:(Some (1, 2)) ();
        record ~ts:20.0 ~len:400 ~l4:(Some (3, 4)) ~stack:[ "eth"; "ipv4"; "udp" ] ();
      ]
  in
  let wash =
    shard_of
      [
        record ~ts:30.0 ~len:100 ~l4:(Some (1, 2)) ();
        record ~ts:40.0 ~len:800 ~l4:(Some (5, 6)) ();
      ]
  in
  let w = FS.Writer.create ~dir () in
  FS.Writer.add_shard w ~site:"STAR" ~fraction:0.5 star;
  FS.Writer.add_shard w ~site:"WASH" ~fraction:1.0 wash;
  (FS.Writer.finish w, star, wash)

let test_query_site_predicate () =
  with_temp_dir @@ fun dir ->
  let segments, star, _wash = two_site_segments dir in
  let res = FS.query ~pred:(FS.predicate ~site:"STAR" ()) segments in
  (* Filtering by site replays exactly that site's groups, so the result
     equals merging them alone. *)
  Alcotest.(check bool) "site filter == merge of that site's shards" true
    (res.FS.flows = Flows.merge [ (star, 0.5) ]);
  Alcotest.(check int) "records filtered, not skipped" 4
    res.FS.stats.FS.records_scanned;
  Alcotest.(check int) "matched only STAR" 2 res.FS.stats.FS.records_matched

let test_query_proto_predicate () =
  with_temp_dir @@ fun dir ->
  let segments, _, _ = two_site_segments dir in
  let full = FS.query segments in
  let udp = FS.query ~pred:(FS.predicate ~proto:"udp" ()) segments in
  (* All of a flow's records share its key, so a proto filter selects
     whole flows out of the full result. *)
  Alcotest.(check bool) "udp flows are the udp subset of the full query" true
    (udp.FS.flows
    = List.filter
        (fun s -> FS.proto_of_key s.Flows.flow_key = "udp")
        full.FS.flows);
  Alcotest.(check int) "one udp flow" 1 udp.FS.stats.FS.distinct_flows

let test_query_time_predicate () =
  with_temp_dir @@ fun dir ->
  let segments, _, _ = two_site_segments dir in
  let late = FS.query ~pred:(FS.predicate ~since:25.0 ()) segments in
  (* Only WASH's records (ts 30, 40) have r_last >= 25. *)
  Alcotest.(check int) "since filters early records" 2
    late.FS.stats.FS.records_matched;
  let early = FS.query ~pred:(FS.predicate ~until:15.0 ()) segments in
  Alcotest.(check int) "until filters late records" 1
    early.FS.stats.FS.records_matched;
  let none = FS.query ~pred:(FS.predicate ~since:100.0 ()) segments in
  Alcotest.(check int) "empty match" 0 none.FS.stats.FS.distinct_flows;
  Alcotest.(check (list (pair int int))) "empty histogram" []
    (Netcore.Histogram.Log2.buckets none.FS.size_hist)

let test_query_topk () =
  with_temp_dir @@ fun dir ->
  let shards = make_groups ~seed:3 ~flows:30 ~groups:4 in
  let w = FS.Writer.create ~spill_records:17 ~dir () in
  List.iter
    (fun (shard, fraction) -> FS.Writer.add_shard w ~site:"STAR" ~fraction shard)
    shards;
  let segments = FS.Writer.finish w in
  let full = FS.query segments in
  List.iter
    (fun k ->
      let res = FS.query ~top:k segments in
      Alcotest.(check bool)
        (Printf.sprintf "top-%d == top_n of full" k)
        true
        (res.FS.flows = Flows.top_n full.FS.flows k);
      (* Stats and histogram still cover every matched flow. *)
      Alcotest.(check int)
        (Printf.sprintf "top-%d distinct" k)
        full.FS.stats.FS.distinct_flows res.FS.stats.FS.distinct_flows;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "top-%d total bytes" k)
        full.FS.stats.FS.total_bytes res.FS.stats.FS.total_bytes)
    [ 1; 5; 1000 ]

(* --- compaction ---------------------------------------------------- *)

let test_merge_segments () =
  with_temp_dir @@ fun dir ->
  (* Unit weights: compaction's reassociation is exact-integer, so the
     compacted store must answer queries identically. *)
  let shards =
    List.map (fun (s, _) -> (s, 1.0)) (make_groups ~seed:11 ~flows:25 ~groups:5)
  in
  let w = FS.Writer.create ~spill_records:13 ~dir () in
  List.iter
    (fun (shard, _) -> FS.Writer.add_shard w ~site:"STAR" ~fraction:1.0 shard)
    shards;
  let segments = FS.Writer.finish w in
  Alcotest.(check bool) "several segments to compact" true
    (List.length segments > 1);
  let out = Filename.concat dir "compacted.pwfs" in
  let out' = FS.merge_segments ~out segments in
  Alcotest.(check string) "returns out" out out';
  let merged = FS.query [ out ] in
  let original = FS.query segments in
  Alcotest.(check bool) "compacted store answers identically" true
    (merged.FS.flows = original.FS.flows);
  Alcotest.(check bool) "identical to in-memory merge too" true
    (merged.FS.flows = Flows.merge shards);
  (* Compaction collapsed per-(key, site) contributions. *)
  Alcotest.(check int) "one record per flow after compaction"
    original.FS.stats.FS.distinct_flows merged.FS.stats.FS.records_scanned;
  List.iter Sys.remove segments

let test_merge_segments_keeps_sites () =
  with_temp_dir @@ fun dir ->
  let segments, star, wash = two_site_segments dir in
  let out = Filename.concat dir "merged.pwfs" in
  let _ = FS.merge_segments ~out segments in
  let res = FS.query ~pred:(FS.predicate ~site:"STAR" ()) [ out ] in
  Alcotest.(check bool) "site queries survive compaction" true
    (res.FS.flows = Flows.merge [ (star, 0.5) ]);
  let wash_res = FS.query ~pred:(FS.predicate ~site:"WASH" ()) [ out ] in
  Alcotest.(check bool) "other site too" true
    (wash_res.FS.flows = Flows.merge [ (wash, 1.0) ]);
  List.iter Sys.remove segments

(* --- profile ordering (satellite: deterministic ties) -------------- *)

let sample_of ?(site = "STAR") ?(fraction = 1.0) ?(start = 0.0) records =
  {
    Patchwork.Capture.sample_site = site;
    sample_port = 0;
    sample_start = start;
    sample_duration = 20.0;
    acaps = records;
    materialized_fraction = fraction;
    pcap = None;
    stats =
      {
        Patchwork.Capture.offered_frames = float_of_int (List.length records);
        switch_dropped = 0.0;
        host_dropped = 0.0;
        captured_frames = float_of_int (List.length records);
        stored_bytes = 0.0;
        flow_estimate = 1.0;
        congestion_detected = false;
      };
  }

(* Byte-tied flows: identical sizes, distinct ports, shuffled arrival. *)
let tied_records ~seed ~flows =
  let rng = Netcore.Rng.create seed in
  let records =
    List.concat
      (List.init flows (fun flow ->
           [
             record ~ts:1.0 ~len:256 ~l4:(Some (6000 + flow, 80)) ();
             record ~ts:2.0 ~len:256 ~l4:(Some (6000 + flow, 80)) ();
           ]))
  in
  (* Fisher–Yates over the record list. *)
  let a = Array.of_list records in
  for i = Array.length a - 1 downto 1 do
    let j = Netcore.Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let build_profile ~pool_size records =
  Parallel.Pool.with_pool ~size:pool_size @@ fun pool ->
  let b = Profile.Builder.create () in
  Profile.Builder.add_sample ~pool b (sample_of records);
  Profile.Builder.finish b

let test_profile_tie_order_deterministic () =
  let records = tied_records ~seed:5 ~flows:12 in
  let p = build_profile ~pool_size:1 records in
  let keys = List.map (fun s -> s.Flows.flow_key) p.Profile.flow_summaries in
  Alcotest.(check (list string)) "byte-tied flows sort by key" keys
    (List.sort compare keys);
  (* Occurrence ties (every token at 100%) break on the token. *)
  let tied_tokens =
    List.filter_map
      (fun (t, v) -> if v = 100.0 then Some t else None)
      p.Profile.occurrence
  in
  Alcotest.(check (list string)) "tied tokens sort by token" tied_tokens
    (List.sort compare tied_tokens)

let qcheck_profile_pool_independent =
  QCheck.Test.make
    ~name:"profile identical at pool sizes 1/2/4 under byte ties" ~count:10
    QCheck.small_nat
    (fun seed ->
      let records = tied_records ~seed ~flows:8 in
      let p1 = build_profile ~pool_size:1 records in
      let p2 = build_profile ~pool_size:2 records in
      let p4 = build_profile ~pool_size:4 records in
      Profile.equal p1 p2 && Profile.equal p1 p4)

let test_profile_flow_store_stream () =
  (* The builder's flow_store hook writes the same flows the profile
     reports, weighted the same way. *)
  with_temp_dir @@ fun dir ->
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed:17 engine in
  let driver = Traffic.Driver.create fabric ~seed:17 in
  let config =
    {
      Patchwork.Config.default with
      Patchwork.Config.samples_per_run = 2;
      max_frames_per_sample = 500;
    }
  in
  let report =
    Patchwork.Coordinator.run_occasion ~fabric ~driver ~config ~max_instances:1
      ~start_time:0.0 ~duration:1900.0 ()
  in
  let b = Profile.Builder.create () in
  let w = FS.Writer.create ~spill_records:64 ~dir () in
  Profile.Builder.add_report ~flow_store:w b report;
  let profile = Profile.Builder.finish b in
  let segments = FS.Writer.finish w in
  Alcotest.(check bool) "segments written" true (segments <> []);
  let res = FS.query segments in
  (* The store's contract is byte-identity with Flows.merge over the
     same per-sample groups. *)
  let samples = Patchwork.Coordinator.all_samples report in
  let shards =
    List.map
      (fun (s : Patchwork.Capture.sample) ->
        (shard_of (Analysis.Digest.sample_acaps s),
         s.Patchwork.Capture.materialized_fraction))
      samples
  in
  Alcotest.(check bool) "stored flows == Flows.merge of the occasion" true
    (res.FS.flows = Flows.merge shards);
  (* The profile accumulates per record rather than per group, so its
     floats can differ in the last ulp — but it must see exactly the
     same flows. *)
  let keys l = List.sort compare (List.map (fun s -> s.Flows.flow_key) l) in
  Alcotest.(check (list string)) "same flow keys as the profile"
    (keys profile.Profile.flow_summaries)
    (keys res.FS.flows)

let suites =
  [
    ( "analysis.flow_store.segment",
      [
        Alcotest.test_case "roundtrip" `Quick test_segment_roundtrip;
        Alcotest.test_case "bad magic" `Quick test_segment_bad_magic;
        Alcotest.test_case "bad version" `Quick test_segment_bad_version;
        Alcotest.test_case "short header" `Quick test_segment_short_header;
        Alcotest.test_case "truncated" `Quick test_segment_truncated;
        Alcotest.test_case "trailing garbage" `Quick test_segment_trailing_garbage;
        Alcotest.test_case "unsorted rejected" `Quick test_segment_unsorted_rejected;
        Alcotest.test_case "invalid flags rejected" `Quick
          test_segment_invalid_flags_rejected;
        Alcotest.test_case "wire format pinned" `Quick test_segment_format_pinned;
      ] );
    ( "analysis.flow_store.query",
      [
        Alcotest.test_case "byte-identical to memory" `Quick
          test_query_identical_to_memory;
        Alcotest.test_case "writer counters" `Quick test_writer_counters;
        Alcotest.test_case "unweighted counter" `Quick
          test_writer_unweighted_counter;
        Alcotest.test_case "site predicate" `Quick test_query_site_predicate;
        Alcotest.test_case "proto predicate" `Quick test_query_proto_predicate;
        Alcotest.test_case "time predicate" `Quick test_query_time_predicate;
        Alcotest.test_case "top-k" `Quick test_query_topk;
        Alcotest.test_case "compaction" `Quick test_merge_segments;
        Alcotest.test_case "compaction keeps sites" `Quick
          test_merge_segments_keeps_sites;
        QCheck_alcotest.to_alcotest qcheck_spill_identity;
      ] );
    ( "analysis.flow_store.profile",
      [
        Alcotest.test_case "tie order deterministic" `Quick
          test_profile_tie_order_deterministic;
        Alcotest.test_case "flow store streaming" `Quick
          test_profile_flow_store_stream;
        QCheck_alcotest.to_alcotest qcheck_profile_pool_independent;
      ] );
  ]
