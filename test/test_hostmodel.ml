open Hostmodel
module H = Packet.Headers

(* --- Host profile --- *)

let test_core_scaling_diminishes () =
  let p = Host_profile.default in
  let e1 = Host_profile.effective_cores p 1 in
  let e2 = Host_profile.effective_cores p 2 in
  let e16 = Host_profile.effective_cores p 16 in
  Alcotest.(check (float 1e-9)) "one core is one core" 1.0 e1;
  Alcotest.(check bool) "two cores under 2x" true (e2 < 2.0 && e2 > 1.5);
  Alcotest.(check bool) "sixteen cores well under 16x" true (e16 < 9.0 && e16 > 5.0)

let test_capacity_decreases_with_truncation () =
  let p = Host_profile.default in
  let c64 = Host_profile.dpdk_capacity_pps p ~cores:4 ~truncation:64 in
  let c200 = Host_profile.dpdk_capacity_pps p ~cores:4 ~truncation:200 in
  Alcotest.(check bool) "64B cheaper than 200B" true (c64 > c200)

let test_kernel_capacity_ballpark () =
  (* ~0.7 Mpps: the 8.5 Gbps @1500B lossless bound of the paper. *)
  let c = Host_profile.kernel_capacity_pps Host_profile.default in
  Alcotest.(check bool) "0.6-0.8 Mpps" true (c > 0.6e6 && c < 0.8e6)

(* --- Page cache --- *)

let cache ?(bg = 10.0) ?(hard = 20.0) () =
  Page_cache.create ~free_cache_bytes:1e9 ~drain_rate:1e8
    ~dirty_background_ratio:bg ~dirty_ratio:hard

let test_cache_write_and_drain () =
  let c = cache () in
  Page_cache.write c 5e8;
  Alcotest.(check (float 1.0)) "dirty" 5e8 (Page_cache.dirty_bytes c);
  Alcotest.(check (float 1e-9)) "fraction" 0.5 (Page_cache.dirty_fraction c);
  Page_cache.advance c ~dt:1.0;
  Alcotest.(check (float 1.0)) "drained 1e8" 4e8 (Page_cache.dirty_bytes c)

let test_cache_no_drain_below_background () =
  let c = cache () in
  Page_cache.write c 5e7;
  (* 5% < 10% background. *)
  Page_cache.advance c ~dt:10.0;
  Alcotest.(check (float 1.0)) "nothing drained below background" 5e7
    (Page_cache.dirty_bytes c)

let test_cache_thresholds () =
  let c = cache () in
  Alcotest.(check (float 1e-9)) "background" 0.10 (Page_cache.background_threshold c);
  Alcotest.(check (float 1e-9)) "midpoint" 0.15 (Page_cache.throttle_threshold c);
  Alcotest.(check (float 1e-9)) "hard" 0.20 (Page_cache.hard_threshold c)

let test_throttle_kicks_in_at_midpoint () =
  let c = cache () in
  Page_cache.write c 1.4e8;
  (* 14% < 15% midpoint *)
  Alcotest.(check (float 1e-9)) "no throttle below midpoint" 1.0
    (Page_cache.throttle_factor c);
  Page_cache.write c 0.2e8;
  (* 16% > midpoint *)
  Alcotest.(check bool) "throttled past midpoint" true
    (Page_cache.throttle_factor c < 1.0);
  Page_cache.write c 1e9;
  (* saturated *)
  Alcotest.(check bool) "heavy throttle at dirty_ratio" true
    (Page_cache.throttle_factor c <= 0.05)

let test_latency_multiplier_cliff () =
  (* The paper's key observation: the latency cliff sits at the
     midpoint of the two ratios, not at dirty_ratio. *)
  let c = cache () in
  Page_cache.write c 0.9e8 (* 9%: below background *);
  let low = Page_cache.writer_latency_multiplier c in
  Page_cache.write c 0.3e8 (* 12%: between background and midpoint *);
  let mid = Page_cache.writer_latency_multiplier c in
  Page_cache.write c 0.5e8 (* 17%: past midpoint *);
  let high = Page_cache.writer_latency_multiplier c in
  Alcotest.(check (float 1e-9)) "baseline" 1.0 low;
  Alcotest.(check bool) "flush competition grows" true (mid > 1.0 && mid < 10.0);
  Alcotest.(check bool) "throttled is orders of magnitude" true (high > 30.0)

let test_cache_conservation () =
  let c = cache () in
  Page_cache.write c 8e8;
  Page_cache.advance c ~dt:3.0;
  let expected_dirty =
    Page_cache.total_written c -. Page_cache.total_drained c
  in
  Alcotest.(check (float 1.0)) "bytes conserved" expected_dirty
    (Page_cache.dirty_bytes c)

(* --- DPDK path --- *)

let test_dpdk_lossless_when_overprovisioned () =
  let config = { Dpdk_path.default_config with cores = 15; baseline_loss = 0.0 } in
  let r = Dpdk_path.run config ~offered_rate:10e9 ~frame_size:1514 ~duration:5.0 in
  Alcotest.(check (float 0.02)) "no loss" 0.0 r.Dpdk_path.loss_percent

let test_dpdk_lossy_when_underprovisioned () =
  let config = { Dpdk_path.default_config with cores = 1 } in
  let r = Dpdk_path.run config ~offered_rate:100e9 ~frame_size:512 ~duration:5.0 in
  Alcotest.(check bool) "heavy loss on one core" true (r.Dpdk_path.loss_percent > 50.0)

let test_dpdk_conservation () =
  let r =
    Dpdk_path.run { Dpdk_path.default_config with baseline_loss = 0.0 }
      ~offered_rate:50e9 ~frame_size:1514 ~duration:5.0
  in
  (* Captured + dropped <= offered (the difference is what is still
     queued at the end). *)
  Alcotest.(check bool) "conservation" true
    (r.Dpdk_path.captured_frames +. r.Dpdk_path.dropped_frames
    <= r.Dpdk_path.offered_frames +. 1.0)

let test_dpdk_64b_needs_fewer_cores () =
  (* The Tables 1 vs 2 effect: at the same offered load, 64B truncation
     loses less than 200B with the same cores. *)
  let run trunc =
    Dpdk_path.run
      { Dpdk_path.default_config with cores = 4; truncation = trunc; baseline_loss = 0.0 }
      ~offered_rate:100e9 ~frame_size:1514 ~duration:5.0
  in
  let r200 = run 200 and r64 = run 64 in
  Alcotest.(check bool) "64B <= 200B loss" true
    (r64.Dpdk_path.loss_percent <= r200.Dpdk_path.loss_percent)

let test_dpdk_tight_thresholds_throttle () =
  (* 512B @ 60G writes ~2.8 GB/s against a 1 GB/s disk; with 10:20
     thresholds the writer hits the midpoint within seconds. *)
  let tight =
    { Dpdk_path.default_config with
      cores = 15; dirty_background_ratio = 10.0; dirty_ratio = 20.0 }
  in
  let r = Dpdk_path.run tight ~offered_rate:60e9 ~frame_size:512 ~duration:30.0 in
  Alcotest.(check bool) "throttled" true (r.Dpdk_path.throttled_seconds > 1.0);
  Alcotest.(check bool) "loss from storage bottleneck" true
    (r.Dpdk_path.loss_percent > 5.0);
  let relaxed = { tight with dirty_background_ratio = 60.0; dirty_ratio = 80.0 } in
  let r2 = Dpdk_path.run relaxed ~offered_rate:60e9 ~frame_size:512 ~duration:30.0 in
  Alcotest.(check bool) "relaxed thresholds lose less" true
    (r2.Dpdk_path.loss_percent < r.Dpdk_path.loss_percent)

let test_dpdk_writev_histogram_populated () =
  let r =
    Dpdk_path.run Dpdk_path.default_config ~offered_rate:50e9 ~frame_size:1514
      ~duration:2.0
  in
  Alcotest.(check bool) "writev calls recorded" true
    (Netcore.Histogram.Log2.total r.Dpdk_path.writev_latency > 1000)

let test_dpdk_capacity_rate_matches_table () =
  (* 5 cores / 200B truncation should saturate right around 100 Gbps of
     1514B frames (Table 1, row 1). *)
  let rate =
    Dpdk_path.capacity_rate { Dpdk_path.default_config with cores = 5 }
      ~frame_size:1514
  in
  Alcotest.(check bool) "capacity near 100G" true (rate > 90e9 && rate < 115e9)

(* --- Kernel path --- *)

let test_kernel_bound_ballpark () =
  let b = Kernel_path.lossless_bound ~frame_size:1500 () in
  Alcotest.(check bool) "8-9.5 Gbps" true (b > 8e9 && b < 9.5e9)

let test_kernel_lossless_below_bound () =
  let r = Kernel_path.run ~offered_rate:6e9 ~frame_size:1500 ~duration:5.0 () in
  Alcotest.(check bool) "tiny loss" true (r.Kernel_path.loss_percent < 0.05)

let test_kernel_lossy_above_bound () =
  let r = Kernel_path.run ~offered_rate:11e9 ~frame_size:1500 ~duration:5.0 () in
  Alcotest.(check bool) "loses above bound" true (r.Kernel_path.loss_percent > 10.0)

let test_kernel_buffer_absorbs () =
  let r = Kernel_path.run ~offered_rate:6e9 ~frame_size:1500 ~duration:5.0 () in
  Alcotest.(check bool) "buffer used but not full" true
    (r.Kernel_path.peak_buffer_used < 32.0 *. 1048576.0)

(* --- FPGA path --- *)

let frame_of ~dst_port ~payload =
  Packet.Frame.make
    [
      H.Ethernet
        { src = Netcore.Mac.of_string "02:00:00:00:00:01";
          dst = Netcore.Mac.of_string "02:00:00:00:00:02" };
      H.Ipv4
        { src = Netcore.Ipv4_addr.of_string "10.1.0.1";
          dst = Netcore.Ipv4_addr.of_string "10.2.0.2";
          dscp = 0; ttl = 64; ident = 0; dont_fragment = false };
      H.Tcp
        { src_port = 40000; dst_port; seq = 0l; ack_seq = 0l;
          flags = H.flags_psh_ack; window = 64 };
    ]
    ~payload_len:payload

let test_fpga_filter () =
  let filter =
    match Packet.Filter.parse "port 443" with Ok f -> f | Error m -> failwith m
  in
  let process, stats =
    Fpga_path.create { Fpga_path.default_config with filter } ()
  in
  let kept = process (frame_of ~dst_port:443 ~payload:100) in
  let dropped = process (frame_of ~dst_port:80 ~payload:100) in
  Alcotest.(check bool) "443 kept" true (kept <> None);
  Alcotest.(check bool) "80 dropped" true (dropped = None);
  let s = stats () in
  Alcotest.(check int) "seen 2" 2 s.Fpga_path.seen;
  Alcotest.(check int) "passed 1" 1 s.Fpga_path.passed_filter

let test_fpga_systematic_sampling () =
  let process, stats =
    Fpga_path.create { Fpga_path.default_config with sample_1_in = 4 } ()
  in
  let kept = ref 0 in
  for _ = 1 to 100 do
    if process (frame_of ~dst_port:443 ~payload:10) <> None then incr kept
  done;
  Alcotest.(check int) "1 in 4" 25 !kept;
  Alcotest.(check int) "sampled stat" 25 (stats ()).Fpga_path.sampled

let test_fpga_byte_reduction () =
  let process, stats = Fpga_path.create Fpga_path.default_config () in
  ignore (process (frame_of ~dst_port:443 ~payload:1400));
  let s = stats () in
  Alcotest.(check int) "bytes in = wire" 1454 s.Fpga_path.bytes_in;
  Alcotest.(check int) "bytes out = truncation" 200 s.Fpga_path.bytes_out

let test_fpga_anonymizes () =
  let anon = Anonymize.create ~key:5 in
  let process, _ =
    Fpga_path.create { Fpga_path.default_config with anonymizer = Some anon } ()
  in
  match process (frame_of ~dst_port:443 ~payload:10) with
  | None -> Alcotest.fail "frame dropped"
  | Some f ->
    let ip = List.find_map (function H.Ipv4 ip -> Some ip | _ -> None) f.Packet.Frame.headers in
    (match ip with
    | Some ip ->
      Alcotest.(check bool) "src rewritten" false
        (Netcore.Ipv4_addr.equal ip.H.src (Netcore.Ipv4_addr.of_string "10.1.0.1"))
    | None -> Alcotest.fail "no ip")

(* --- Anonymize --- *)

let common_prefix_len a b =
  let xa = Netcore.Ipv4_addr.to_int32 a and xb = Netcore.Ipv4_addr.to_int32 b in
  let x = Int32.logxor xa xb in
  if Int32.equal x 0l then 32
  else begin
    let rec count i =
      if Int32.logand (Int32.shift_right_logical x (31 - i)) 1l = 1l then i
      else count (i + 1)
    in
    count 0
  end

let test_anonymize_deterministic () =
  let t = Anonymize.create ~key:42 in
  let a = Netcore.Ipv4_addr.of_string "10.1.2.3" in
  Alcotest.(check bool) "same output" true
    (Netcore.Ipv4_addr.equal (Anonymize.ipv4 t a) (Anonymize.ipv4 t a));
  let t2 = Anonymize.create ~key:43 in
  Alcotest.(check bool) "key changes output" false
    (Netcore.Ipv4_addr.equal (Anonymize.ipv4 t a) (Anonymize.ipv4 t2 a))

let test_anonymize_changes_address () =
  let t = Anonymize.create ~key:42 in
  let a = Netcore.Ipv4_addr.of_string "192.168.1.1" in
  Alcotest.(check bool) "address changed" false
    (Netcore.Ipv4_addr.equal a (Anonymize.ipv4 t a))

let qcheck_prefix_preserving =
  QCheck.Test.make ~name:"anonymization preserves common prefix length" ~count:500
    QCheck.(triple small_int small_int small_int)
    (fun (key, x, y) ->
      let t = Anonymize.create ~key in
      let a = Netcore.Ipv4_addr.of_int32 (Int32.of_int x) in
      let b = Netcore.Ipv4_addr.of_int32 (Int32.of_int y) in
      let before = common_prefix_len a b in
      let after = common_prefix_len (Anonymize.ipv4 t a) (Anonymize.ipv4 t b) in
      before = after)

let qcheck_bijective_sample =
  QCheck.Test.make ~name:"anonymization is injective on samples" ~count:300
    QCheck.(pair small_int (list_of_size (QCheck.Gen.return 50) int))
    (fun (key, xs) ->
      let t = Anonymize.create ~key in
      let inputs = List.sort_uniq compare (List.map Int32.of_int xs) in
      let outputs =
        List.sort_uniq compare
          (List.map
             (fun x ->
               Netcore.Ipv4_addr.to_int32
                 (Anonymize.ipv4 t (Netcore.Ipv4_addr.of_int32 x)))
             inputs)
      in
      List.length inputs = List.length outputs)

let suites =
  [
    ( "hostmodel.profile",
      [
        Alcotest.test_case "core contention" `Quick test_core_scaling_diminishes;
        Alcotest.test_case "truncation cost" `Quick test_capacity_decreases_with_truncation;
        Alcotest.test_case "kernel capacity" `Quick test_kernel_capacity_ballpark;
      ] );
    ( "hostmodel.page_cache",
      [
        Alcotest.test_case "write and drain" `Quick test_cache_write_and_drain;
        Alcotest.test_case "no drain below background" `Quick test_cache_no_drain_below_background;
        Alcotest.test_case "thresholds" `Quick test_cache_thresholds;
        Alcotest.test_case "throttle at midpoint" `Quick test_throttle_kicks_in_at_midpoint;
        Alcotest.test_case "latency cliff" `Quick test_latency_multiplier_cliff;
        Alcotest.test_case "byte conservation" `Quick test_cache_conservation;
      ] );
    ( "hostmodel.dpdk",
      [
        Alcotest.test_case "lossless overprovisioned" `Quick test_dpdk_lossless_when_overprovisioned;
        Alcotest.test_case "lossy underprovisioned" `Quick test_dpdk_lossy_when_underprovisioned;
        Alcotest.test_case "frame conservation" `Quick test_dpdk_conservation;
        Alcotest.test_case "64B beats 200B" `Quick test_dpdk_64b_needs_fewer_cores;
        Alcotest.test_case "tight thresholds throttle" `Quick test_dpdk_tight_thresholds_throttle;
        Alcotest.test_case "writev histogram" `Quick test_dpdk_writev_histogram_populated;
        Alcotest.test_case "capacity matches table 1" `Quick test_dpdk_capacity_rate_matches_table;
      ] );
    ( "hostmodel.kernel",
      [
        Alcotest.test_case "lossless bound" `Quick test_kernel_bound_ballpark;
        Alcotest.test_case "lossless below" `Quick test_kernel_lossless_below_bound;
        Alcotest.test_case "lossy above" `Quick test_kernel_lossy_above_bound;
        Alcotest.test_case "buffer absorbs" `Quick test_kernel_buffer_absorbs;
      ] );
    ( "hostmodel.fpga",
      [
        Alcotest.test_case "filtering" `Quick test_fpga_filter;
        Alcotest.test_case "systematic sampling" `Quick test_fpga_systematic_sampling;
        Alcotest.test_case "byte reduction" `Quick test_fpga_byte_reduction;
        Alcotest.test_case "anonymization applied" `Quick test_fpga_anonymizes;
      ] );
    ( "hostmodel.anonymize",
      [
        Alcotest.test_case "deterministic" `Quick test_anonymize_deterministic;
        Alcotest.test_case "changes address" `Quick test_anonymize_changes_address;
        QCheck_alcotest.to_alcotest qcheck_prefix_preserving;
        QCheck_alcotest.to_alcotest qcheck_bijective_sample;
      ] );
  ]
