module P4 = Hostmodel.P4_pipeline
module H = Packet.Headers

let frame ?(vlan = Some 100) ?(dst_port = 443) ?(payload = 100) () =
  let base =
    [
      H.Ethernet
        { src = Netcore.Mac.of_string "02:00:00:00:00:01";
          dst = Netcore.Mac.of_string "02:00:00:00:00:02" };
    ]
  in
  let tags =
    match vlan with
    | Some vid -> [ H.Vlan { pcp = 0; dei = false; vid } ]
    | None -> []
  in
  let rest =
    [
      H.Ipv4
        { src = Netcore.Ipv4_addr.of_string "10.5.0.1";
          dst = Netcore.Ipv4_addr.of_string "10.5.0.2";
          dscp = 0; ttl = 64; ident = 0; dont_fragment = false };
      H.Tcp
        { src_port = 50000; dst_port; seq = 0l; ack_seq = 0l;
          flags = H.flags_psh_ack; window = 64 };
    ]
  in
  Packet.Frame.make (base @ tags @ rest) ~payload_len:payload

let test_field_extraction () =
  let f = frame () in
  Alcotest.(check int) "vlan" 100 (P4.eval_field P4.F_vlan_id f);
  Alcotest.(check int) "no mpls" (-1) (P4.eval_field P4.F_mpls_label f);
  Alcotest.(check int) "ip version" 4 (P4.eval_field P4.F_ip_version f);
  Alcotest.(check int) "proto tcp" 6 (P4.eval_field P4.F_ip_proto f);
  Alcotest.(check int) "dst port" 443 (P4.eval_field P4.F_dst_port f);
  Alcotest.(check int) "depth" 4 (P4.eval_field P4.F_stack_depth f);
  Alcotest.(check int) "has tcp token" 1 (P4.eval_field (P4.F_has_token "tcp") f);
  Alcotest.(check int) "no dns token" 0 (P4.eval_field (P4.F_has_token "dns") f)

let test_match_exprs () =
  let f = frame () in
  Alcotest.(check bool) "eq" true (P4.matches (P4.M_eq (P4.F_vlan_id, 100)) f);
  Alcotest.(check bool) "range" true
    (P4.matches (P4.M_range (P4.F_dst_port, 400, 500)) f);
  Alcotest.(check bool) "not" false
    (P4.matches (P4.M_not (P4.M_eq (P4.F_ip_version, 4))) f);
  Alcotest.(check bool) "and/or" true
    (P4.matches
       (P4.M_and
          (P4.M_eq (P4.F_ip_proto, 6),
           P4.M_or (P4.M_eq (P4.F_dst_port, 80), P4.M_eq (P4.F_dst_port, 443))))
       f)

let test_first_match_wins () =
  let pipeline =
    P4.create
      [
        {
          P4.table_name = "t";
          entries =
            [
              { P4.matches = P4.M_eq (P4.F_dst_port, 443);
                actions = [ P4.A_count "first"; P4.A_drop ] };
              { P4.matches = P4.M_any; actions = [ P4.A_count "second" ] };
            ];
          default = [ P4.A_count "default" ];
        };
      ]
  in
  ignore (P4.process pipeline (frame ~dst_port:443 ()));
  ignore (P4.process pipeline (frame ~dst_port:80 ()));
  Alcotest.(check int) "first entry hit once" 1 (P4.counter pipeline "first");
  Alcotest.(check int) "second entry hit once" 1 (P4.counter pipeline "second");
  Alcotest.(check int) "default never" 0 (P4.counter pipeline "default")

let test_drop_stops_pipeline () =
  let pipeline =
    P4.create
      [
        { P4.table_name = "a"; entries = []; default = [ P4.A_drop ] };
        { P4.table_name = "b"; entries = []; default = [ P4.A_count "reached" ] };
      ]
  in
  let v = P4.process pipeline (frame ()) in
  Alcotest.(check bool) "dropped" true (v.P4.frame = None);
  Alcotest.(check int) "second table not reached" 0 (P4.counter pipeline "reached")

let test_accept_skips_rest () =
  let pipeline =
    P4.create
      [
        { P4.table_name = "a"; entries = []; default = [ P4.A_accept ] };
        { P4.table_name = "b"; entries = []; default = [ P4.A_drop ] };
      ]
  in
  let v = P4.process pipeline (frame ()) in
  Alcotest.(check bool) "accepted despite later drop" true (v.P4.frame <> None)

let test_truncate_caps_bytes () =
  let pipeline =
    P4.create [ { P4.table_name = "t"; entries = []; default = [ P4.A_truncate 64 ] } ]
  in
  let v = P4.process pipeline (frame ~payload:1000 ()) in
  Alcotest.(check int) "64 bytes forwarded" 64 v.P4.forwarded_bytes;
  (* Small frames forward their own size. *)
  let v2 = P4.process pipeline (frame ~payload:0 ()) in
  Alcotest.(check int) "small frame unchanged" 60 v2.P4.forwarded_bytes

let test_systematic_sampling () =
  let pipeline =
    P4.create [ { P4.table_name = "s"; entries = []; default = [ P4.A_sample 5 ] } ]
  in
  let kept = ref 0 in
  for _ = 1 to 50 do
    if (P4.process pipeline (frame ())).P4.frame <> None then incr kept
  done;
  Alcotest.(check int) "exactly 1 in 5" 10 !kept

let test_anonymize_action () =
  let anon = Hostmodel.Anonymize.create ~key:3 in
  let pipeline =
    P4.create
      [ { P4.table_name = "e"; entries = []; default = [ P4.A_anonymize anon ] } ]
  in
  match (P4.process pipeline (frame ())).P4.frame with
  | None -> Alcotest.fail "frame dropped"
  | Some out ->
    let ip =
      List.find_map
        (function H.Ipv4 ip -> Some ip | _ -> None)
        out.Packet.Frame.headers
    in
    (match ip with
    | Some ip ->
      Alcotest.(check bool) "rewritten" false
        (Netcore.Ipv4_addr.equal ip.H.src (Netcore.Ipv4_addr.of_string "10.5.0.1"))
    | None -> Alcotest.fail "no ipv4")

let test_compile_filter_equivalence () =
  (* On tag/port/protocol filters, pipeline matching must agree with the
     host-side filter evaluator. *)
  let exprs =
    [ "tcp"; "udp"; "ip"; "ip6"; "vlan 100"; "vlan 9"; "port 443"; "dst port 443";
      "src port 443"; "tcp and vlan 100"; "not udp"; "udp or port 443";
      "greater 100"; "less 100"; "tls"; "mpls" ]
  in
  let frames = [ frame (); frame ~vlan:None ~dst_port:80 (); frame ~payload:0 () ] in
  List.iter
    (fun expr ->
      match Packet.Filter.parse expr with
      | Error m -> Alcotest.failf "parse %s: %s" expr m
      | Ok f ->
        let m = P4.Compile.filter_to_match f in
        List.iter
          (fun fr ->
            Alcotest.(check bool)
              (Printf.sprintf "%s agrees" expr)
              (Packet.Filter.matches f fr) (P4.matches m fr))
          frames)
    exprs

let test_compiled_offload_counts () =
  let filter =
    match Packet.Filter.parse "port 443" with Ok f -> f | Error m -> failwith m
  in
  let pipeline = P4.Compile.of_filter ~truncation:128 ~sample_1_in:2 filter in
  Alcotest.(check int) "three stages" 3 (P4.stage_count pipeline);
  let kept = ref 0 in
  for i = 1 to 20 do
    let dst_port = if i mod 2 = 0 then 443 else 80 in
    if (P4.process pipeline (frame ~dst_port ())).P4.frame <> None then incr kept
  done;
  Alcotest.(check int) "matched counter" 10 (P4.counter pipeline "filter.matched");
  Alcotest.(check int) "dropped counter" 10 (P4.counter pipeline "filter.dropped");
  Alcotest.(check int) "sampled half of matches" 5 (P4.counter pipeline "sample.kept");
  Alcotest.(check int) "kept" 5 !kept

let qcheck_pipeline_filter_agreement =
  QCheck.Test.make ~name:"compiled pipeline agrees with filter on generated frames"
    ~count:300 (Frame_gen.frame_arb ()) (fun f ->
      let filter =
        Packet.Filter.And
          (Packet.Filter.Proto "tcp", Packet.Filter.Not (Packet.Filter.Vlan None))
      in
      let m = P4.Compile.filter_to_match filter in
      P4.matches m f = Packet.Filter.matches filter f)

let suites =
  [
    ( "p4.pipeline",
      [
        Alcotest.test_case "field extraction" `Quick test_field_extraction;
        Alcotest.test_case "match expressions" `Quick test_match_exprs;
        Alcotest.test_case "first match wins" `Quick test_first_match_wins;
        Alcotest.test_case "drop stops pipeline" `Quick test_drop_stops_pipeline;
        Alcotest.test_case "accept skips rest" `Quick test_accept_skips_rest;
        Alcotest.test_case "truncate caps bytes" `Quick test_truncate_caps_bytes;
        Alcotest.test_case "systematic sampling" `Quick test_systematic_sampling;
        Alcotest.test_case "anonymize action" `Quick test_anonymize_action;
        Alcotest.test_case "filter compile equivalence" `Quick test_compile_filter_equivalence;
        Alcotest.test_case "compiled offload counters" `Quick test_compiled_offload_counts;
        QCheck_alcotest.to_alcotest qcheck_pipeline_filter_agreement;
      ] );
  ]
