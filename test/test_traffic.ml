open Traffic
module H = Packet.Headers
module S = Dissect.Services

let rng () = Netcore.Rng.create 11

(* --- Flow_model --- *)

let simple_template () =
  [
    H.Ethernet
      { src = Netcore.Mac.of_string "02:00:00:00:00:01";
        dst = Netcore.Mac.of_string "02:00:00:00:00:02" };
    H.Ipv4
      { src = Netcore.Ipv4_addr.of_string "10.0.0.1";
        dst = Netcore.Ipv4_addr.of_string "10.0.0.2";
        dscp = 0; ttl = 64; ident = 1; dont_fragment = true };
    H.Tcp
      { src_port = 40000; dst_port = 5201; seq = 0l; ack_seq = 0l;
        flags = H.flags_psh_ack; window = 100 };
  ]

let make_spec ?(subflows = 1) ?(byte_rate = 1e6) () =
  Flow_model.make ~flow_id:1 ~template:(simple_template ())
    ~frame_size:(Netcore.Dist.Constant 1000.0) ~avg_frame_size:1000.0 ~byte_rate
    ~start_time:100.0 ~duration:60.0 ~subflows ()

let test_spec_rates () =
  let spec = make_spec () in
  Alcotest.(check (float 1e-9)) "frame rate" 1000.0 (Flow_model.frame_rate spec);
  Alcotest.(check (float 1e-9)) "end time" 160.0 (Flow_model.end_time spec);
  Alcotest.(check bool) "active inside" true (Flow_model.active_at spec 130.0);
  Alcotest.(check bool) "inactive before" false (Flow_model.active_at spec 99.0);
  Alcotest.(check bool) "inactive after" false (Flow_model.active_at spec 160.0);
  Alcotest.(check (float 1e-3)) "total bytes" 6e7 (Flow_model.total_bytes spec)

let test_spec_rejects_bad_template () =
  let bad = [ List.nth (simple_template ()) 1 ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Flow_model.make ~flow_id:1 ~template:bad
            ~frame_size:(Netcore.Dist.Constant 100.0) ~avg_frame_size:100.0
            ~byte_rate:1.0 ~start_time:0.0 ~duration:1.0 ());
       false
     with Invalid_argument _ -> true)

let test_frames_in_window_count () =
  let spec = make_spec () in
  (* Window covering 20s of the flow at 1000 fps -> ~20000 frames. *)
  let frames = Flow_model.frames_in_window spec (rng ()) ~start_time:110.0 ~end_time:130.0 in
  let n = List.length frames in
  Alcotest.(check bool) "poisson count near mean" true (n > 19_000 && n < 21_000);
  Alcotest.(check (float 1e-9)) "expectation" 20_000.0
    (Flow_model.expected_frames spec ~start_time:110.0 ~end_time:130.0)

let test_frames_ordered_and_in_window () =
  let spec = make_spec ~byte_rate:1e5 () in
  let frames = Flow_model.frames_in_window spec (rng ()) ~start_time:0.0 ~end_time:1000.0 in
  let rec check_sorted = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
      Alcotest.(check bool) "sorted" true (t1 <= t2);
      check_sorted rest
    | _ -> ()
  in
  check_sorted frames;
  List.iter
    (fun (ts, _) ->
      Alcotest.(check bool) "inside flow lifetime" true (ts >= 100.0 && ts < 160.0))
    frames

let test_no_frames_outside_window () =
  let spec = make_spec () in
  Alcotest.(check int) "before" 0
    (List.length (Flow_model.frames_in_window spec (rng ()) ~start_time:0.0 ~end_time:99.0));
  Alcotest.(check int) "after" 0
    (List.length
       (Flow_model.frames_in_window spec (rng ()) ~start_time:161.0 ~end_time:200.0))

let test_subflows_vary_tuples () =
  let spec = make_spec ~subflows:50 ~byte_rate:1e6 () in
  let frames = Flow_model.frames_in_window spec (rng ()) ~start_time:100.0 ~end_time:110.0 in
  let keys = Hashtbl.create 64 in
  List.iter
    (fun (_, f) ->
      let acap = Dissect.Acap.of_frame ~ts:0.0 f in
      match Dissect.Acap.flow_key acap with
      | Some k -> Hashtbl.replace keys k ()
      | None -> ())
    frames;
  let distinct = Hashtbl.length keys in
  Alcotest.(check bool) "many distinct 5-tuples" true (distinct > 10 && distinct <= 50)

let test_single_subflow_single_tuple () =
  let spec = make_spec ~subflows:1 () in
  let frames = Flow_model.frames_in_window spec (rng ()) ~start_time:100.0 ~end_time:101.0 in
  let keys = Hashtbl.create 4 in
  List.iter
    (fun (_, f) ->
      match Dissect.Acap.flow_key (Dissect.Acap.of_frame ~ts:0.0 f) with
      | Some k -> Hashtbl.replace keys k ()
      | None -> ())
    frames;
  Alcotest.(check int) "one 5-tuple" 1 (Hashtbl.length keys)

let test_frames_respect_size_bounds () =
  let spec =
    Flow_model.make ~flow_id:2 ~template:(simple_template ())
      ~frame_size:(Netcore.Dist.Constant 50_000.0) ~avg_frame_size:9000.0
      ~byte_rate:1e6 ~start_time:0.0 ~duration:10.0 ()
  in
  let frames = Flow_model.frames_in_window spec (rng ()) ~start_time:0.0 ~end_time:1.0 in
  List.iter
    (fun (_, f) ->
      Alcotest.(check bool) "clamped to jumbo MTU" true
        (Packet.Frame.wire_length f <= 9000))
    frames

(* --- Stack_builder --- *)

let params ?(vlan_id = 500) ?(mpls = [ 777 ]) ?(pw = false) ?(vxlan = false)
    ?(ipv6 = false) ?(service = "iperf3") () =
  {
    Stack_builder.vlan_id;
    mpls_labels = mpls;
    use_pseudowire = pw;
    use_vxlan = vxlan;
    use_ipv6 = ipv6;
    service = Option.get (S.by_name service);
  }

let test_forward_validates () =
  let rng = rng () in
  let combos =
    [
      params ();
      params ~pw:true ();
      params ~vxlan:true ();
      params ~ipv6:true ();
      params ~mpls:[ 1; 2 ] ~pw:true ~service:"tls" ();
      params ~mpls:[] ~service:"dns" ();
      params ~service:"memcached" ();
    ]
  in
  List.iter
    (fun p ->
      let stack = Stack_builder.forward rng p in
      match Packet.Frame.validate stack with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "invalid stack: %s" msg)
    combos

let test_forward_has_service_port () =
  let stack = Stack_builder.forward (rng ()) (params ~service:"mysql" ()) in
  let has_port =
    List.exists
      (function H.Tcp { dst_port = 3306; _ } -> true | _ -> false)
      stack
  in
  Alcotest.(check bool) "mysql port present" true has_port

let test_forward_app_headers () =
  let stack = Stack_builder.forward (rng ()) (params ~service:"tls" ()) in
  Alcotest.(check bool) "tls header present" true
    (List.exists (function H.Tls _ -> true | _ -> false) stack)

let test_pseudowire_structure () =
  let stack = Stack_builder.forward (rng ()) (params ~pw:true ()) in
  let tokens = List.map H.name stack in
  Alcotest.(check bool) "pw present" true (List.mem "pw" tokens);
  (* Two Ethernet layers: outer + PW inner. *)
  Alcotest.(check int) "two eth" 2
    (List.length (List.filter (fun t -> t = "eth") tokens))

let test_reverse_swaps_and_validates () =
  let fwd = Stack_builder.forward (rng ()) (params ~service:"tls" ()) in
  let rev = Stack_builder.reverse fwd in
  (match Packet.Frame.validate rev with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "reverse invalid: %s" msg);
  let fwd_ip =
    List.find_map (function H.Ipv4 ip -> Some ip | _ -> None) fwd
  in
  let rev_ip =
    List.find_map (function H.Ipv4 ip -> Some ip | _ -> None) rev
  in
  (match (fwd_ip, rev_ip) with
  | Some f, Some r ->
    Alcotest.(check bool) "src/dst swapped" true
      (Netcore.Ipv4_addr.equal f.H.src r.H.dst
      && Netcore.Ipv4_addr.equal f.H.dst r.H.src)
  | _ -> Alcotest.fail "expected ipv4 in both");
  Alcotest.(check bool) "no app layer in reverse" true
    (not (List.exists (function H.Tls _ -> true | _ -> false) rev))

(* --- Workload --- *)

let site_of_model idx =
  let m = Testbed.Info_model.generate ~seed:4 () in
  m.Testbed.Info_model.sites.(idx)

let test_profiles_persistent () =
  let p1 = Workload.profile_for_site ~seed:9 (site_of_model 3) in
  let p2 = Workload.profile_for_site ~seed:9 (site_of_model 3) in
  Alcotest.(check bool) "same profile" true (p1 = p2);
  let p3 = Workload.profile_for_site ~seed:10 (site_of_model 3) in
  Alcotest.(check bool) "seed changes profile" true (p1 <> p3)

let test_profiles_diverse () =
  let m = Testbed.Info_model.generate ~seed:4 () in
  let classes =
    Array.to_list m.Testbed.Info_model.sites
    |> List.map (fun s -> (Workload.profile_for_site ~seed:9 s).Workload.site_class)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "several classes in use" true (List.length classes >= 3)

let test_palette_sizes () =
  let m = Testbed.Info_model.generate ~seed:4 () in
  Array.iter
    (fun s ->
      let p = Workload.profile_for_site ~seed:9 s in
      let n = List.length p.Workload.palette in
      Alcotest.(check bool) "palette non-empty" true (n >= 1);
      Alcotest.(check bool) "palette bounded" true (n <= 45);
      (* No duplicate services. *)
      Alcotest.(check int) "unique"
        (List.length (List.sort_uniq compare p.Workload.palette))
        n)
    m.Testbed.Info_model.sites

let test_activity_seasonal_peak () =
  (* The SC week (week ~45.5) must dominate a quiet summer week. *)
  let summer_avg =
    let sum = ref 0.0 in
    for d = 180 to 200 do
      sum := !sum +. Workload.activity ~seed:9 (float_of_int d *. 86400.0)
    done;
    !sum /. 21.0
  in
  let sc_avg =
    let sum = ref 0.0 in
    for d = 313 to 320 do
      sum := !sum +. Workload.activity ~seed:9 (float_of_int d *. 86400.0)
    done;
    !sum /. 8.0
  in
  Alcotest.(check bool) "SC'24 ramp dominates" true (sc_avg > 2.0 *. summer_avg)

let test_activity_positive () =
  for d = 0 to 364 do
    let a = Workload.activity ~seed:9 (float_of_int d *. 86400.0) in
    Alcotest.(check bool) "positive" true (a > 0.0)
  done

(* --- Slice_process --- *)

let year = 365.0 *. 86400.0

let slices = lazy (Slice_process.generate ~seed:21 ~horizon:year)

let test_slice_spread () =
  let fractions = Slice_process.spread_fractions (Lazy.force slices) ~max_sites:8 in
  Alcotest.(check bool) "~66.5% single site" true
    (Float.abs (fractions.(0) -. 0.665) < 0.03);
  Alcotest.(check bool) "monotone tail" true (fractions.(1) > fractions.(3))

let test_slice_durations () =
  let cdf = Slice_process.duration_cdf (Lazy.force slices) ~at_hours:[ 24.0 ] in
  match cdf with
  | [ (_, frac) ] ->
    Alcotest.(check bool) "~75% within 24h" true (Float.abs (frac -. 0.75) < 0.05)
  | _ -> Alcotest.fail "expected one point"

let test_slice_concurrency () =
  let series =
    Slice_process.concurrency_series (Lazy.force slices) ~step:21600.0 ~horizon:year
  in
  let mean, sd, maximum = Slice_process.concurrency_stats series in
  Alcotest.(check bool) "mean near 85" true (Float.abs (mean -. 85.0) < 25.0);
  Alcotest.(check bool) "sd substantial" true (sd > 25.0 && sd < 90.0);
  Alcotest.(check bool) "max below hard cap" true (maximum < 450);
  Alcotest.(check bool) "max well above mean" true (float_of_int maximum > mean +. sd)

(* --- Driver --- *)

let test_driver_attaches_and_detaches () =
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed:5 engine in
  let driver = Driver.create fabric ~seed:5 in
  Driver.start driver ~until:7200.0;
  Simcore.Engine.run ~until:7200.0 engine;
  Alcotest.(check bool) "flows were spawned" true (Driver.spawned_flows driver > 50);
  Alcotest.(check bool) "some flows live" true (Driver.live_flow_count driver > 0);
  (* Every live flow resolves to a spec that is active now. *)
  let now = Simcore.Engine.now engine in
  let m = Testbed.Fablib.model fabric in
  Array.iter
    (fun (site : Testbed.Info_model.site) ->
      let sw = Testbed.Fablib.switch fabric ~site:site.Testbed.Info_model.name in
      List.iter
        (fun port ->
          List.iter
            (fun (a : Testbed.Switch.attachment) ->
              match Driver.resolver driver a.Testbed.Switch.flow with
              | None -> Alcotest.fail "attached flow lacks spec"
              | Some spec ->
                Alcotest.(check bool) "spec active" true
                  (Flow_model.active_at spec now
                  || Flow_model.end_time spec >= now))
            (Testbed.Switch.attachments sw ~port))
        (Testbed.Fablib.all_ports fabric ~site:site.Testbed.Info_model.name))
    m.Testbed.Info_model.sites;
  (* After all flows expire, everything detaches. *)
  Simcore.Engine.run engine;
  Alcotest.(check int) "all flows detached eventually" 0
    (Driver.live_flow_count driver)

let test_driver_counters_move () =
  let engine = Simcore.Engine.create () in
  let fabric = Testbed.Fablib.create ~seed:6 engine in
  let driver = Driver.create fabric ~seed:6 in
  Driver.start driver ~until:3600.0;
  Simcore.Engine.run ~until:3600.0 engine;
  let total = ref 0.0 in
  let m = Testbed.Fablib.model fabric in
  Array.iter
    (fun (site : Testbed.Info_model.site) ->
      let name = site.Testbed.Info_model.name in
      let sw = Testbed.Fablib.switch fabric ~site:name in
      List.iter
        (fun port ->
          let c = Testbed.Switch.read_counters sw ~port in
          total := !total +. c.Testbed.Switch.tx_bytes)
        (Testbed.Fablib.all_ports fabric ~site:name))
    m.Testbed.Info_model.sites;
  Alcotest.(check bool) "traffic crossed the testbed" true (!total > 1e9)

let suites =
  [
    ( "traffic.flow_model",
      [
        Alcotest.test_case "rates and lifetime" `Quick test_spec_rates;
        Alcotest.test_case "bad template rejected" `Quick test_spec_rejects_bad_template;
        Alcotest.test_case "poisson frame count" `Quick test_frames_in_window_count;
        Alcotest.test_case "frames ordered in window" `Quick test_frames_ordered_and_in_window;
        Alcotest.test_case "no frames outside lifetime" `Quick test_no_frames_outside_window;
        Alcotest.test_case "subflows vary 5-tuples" `Quick test_subflows_vary_tuples;
        Alcotest.test_case "single subflow stable" `Quick test_single_subflow_single_tuple;
        Alcotest.test_case "sizes clamped" `Quick test_frames_respect_size_bounds;
      ] );
    ( "traffic.stack_builder",
      [
        Alcotest.test_case "forward validates" `Quick test_forward_validates;
        Alcotest.test_case "service port" `Quick test_forward_has_service_port;
        Alcotest.test_case "app headers" `Quick test_forward_app_headers;
        Alcotest.test_case "pseudowire structure" `Quick test_pseudowire_structure;
        Alcotest.test_case "reverse swaps endpoints" `Quick test_reverse_swaps_and_validates;
      ] );
    ( "traffic.workload",
      [
        Alcotest.test_case "profiles persistent" `Quick test_profiles_persistent;
        Alcotest.test_case "profiles diverse" `Quick test_profiles_diverse;
        Alcotest.test_case "palettes sane" `Quick test_palette_sizes;
        Alcotest.test_case "seasonal peak" `Quick test_activity_seasonal_peak;
        Alcotest.test_case "activity positive" `Quick test_activity_positive;
      ] );
    ( "traffic.slice_process",
      [
        Alcotest.test_case "site spread" `Slow test_slice_spread;
        Alcotest.test_case "durations" `Slow test_slice_durations;
        Alcotest.test_case "concurrency" `Slow test_slice_concurrency;
      ] );
    ( "traffic.driver",
      [
        Alcotest.test_case "attach/detach lifecycle" `Slow test_driver_attaches_and_detaches;
        Alcotest.test_case "counters move" `Slow test_driver_counters_move;
      ] );
  ]
