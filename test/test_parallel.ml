(* The domain work pool: ordering, error propagation, chunking, and the
   end-to-end property that parallel analysis equals sequential output
   exactly, whatever the pool size or chunking. *)

module Pool = Parallel.Pool

let test_default_size () =
  Alcotest.(check bool) "at least one" true (Pool.default_size () >= 1);
  Alcotest.(check int) "sequential pool size" 1 (Pool.size Pool.sequential);
  Pool.with_pool ~size:3 (fun pool ->
      Alcotest.(check int) "requested size" 3 (Pool.size pool))

let test_map_matches_list_map () =
  let xs = List.init 1_000 (fun i -> i - 500) in
  let f x = (x * x) - (3 * x) in
  Pool.with_pool ~size:4 (fun pool ->
      Alcotest.(check (list int)) "order preserved" (List.map f xs)
        (Pool.map pool f xs));
  Alcotest.(check (list int)) "sequential fallback" (List.map f xs)
    (Pool.map Pool.sequential f xs)

let test_map_edge_cases () =
  Pool.with_pool ~size:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map pool succ [ 7 ]);
      Alcotest.(check (list int)) "fewer items than domains" [ 2; 3 ]
        (Pool.map pool succ [ 1; 2 ]))

let test_map_array () =
  Pool.with_pool ~size:3 (fun pool ->
      let xs = Array.init 257 (fun i -> i) in
      Alcotest.(check (array int)) "array order preserved"
        (Array.map succ xs)
        (Pool.map_array pool succ xs))

let test_exception_propagates () =
  Pool.with_pool ~size:3 (fun pool ->
      Alcotest.(check bool) "worker exception reraised" true
        (try
           ignore
             (Pool.map pool
                (fun x -> if x = 5 then failwith "boom" else x)
                (List.init 10 Fun.id));
           false
         with Failure m -> m = "boom");
      (* A failed batch must not poison the pool. *)
      Alcotest.(check (list int)) "pool survives failed batch" [ 2; 3; 4 ]
        (Pool.map pool succ [ 1; 2; 3 ]))

let test_chunk_partitions () =
  let xs = List.init 10 Fun.id in
  Alcotest.(check (list (list int)))
    "contiguous chunks"
    [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7; 8 ]; [ 9 ] ]
    (Pool.chunk ~chunk_size:3 xs);
  Alcotest.(check (list (list int))) "oversized chunk" [ xs ]
    (Pool.chunk ~chunk_size:100 xs);
  Alcotest.(check (list (list int))) "empty input" [] (Pool.chunk ~chunk_size:3 [])

let test_fold_chunked_bit_identical () =
  (* Chunk boundaries depend only on chunk_size, and merges run in chunk
     order, so even float accumulation is bit-identical at any size. *)
  let xs = List.init 500 (fun i -> float_of_int (i + 1) *. 0.1) in
  let run pool =
    Pool.fold_chunked pool ~chunk_size:64
      ~map:(List.fold_left ( +. ) 0.0)
      ~merge:( +. ) ~init:0.0 xs
  in
  let seq = run Pool.sequential in
  Pool.with_pool ~size:2 (fun p ->
      Alcotest.(check (float 0.0)) "2 domains bit-identical" seq (run p));
  Pool.with_pool ~size:5 (fun p ->
      Alcotest.(check (float 0.0)) "5 domains bit-identical" seq (run p))

(* The satellite property: the full digest -> weighted-flow pipeline,
   run through a pool over random chunkings, equals the sequential
   result exactly (structural equality, no tolerance). *)
let qcheck_parallel_pipeline_deterministic =
  QCheck.Test.make ~name:"parallel digest+flows equal sequential" ~count:25
    QCheck.(triple small_nat (int_range 1 4) (int_range 1 40))
    (fun (seed, size, chunk_size) ->
      let rng = Netcore.Rng.create (seed + 1) in
      let w = Packet.Pcap.Writer.create () in
      for i = 0 to 59 do
        Packet.Pcap.Writer.add_frame w
          ~ts:(float_of_int i *. 0.01)
          (Frame_gen.random_frame rng)
      done;
      let buf = Packet.Pcap.Writer.contents w in
      let seq_acaps = Analysis.Digest.pcap_to_acaps buf in
      let groups =
        List.mapi
          (fun i c -> (c, if i mod 2 = 0 then 1.0 else 0.25))
          (Pool.chunk ~chunk_size seq_acaps)
      in
      let seq_flows = Analysis.Flows.aggregate ~weights:groups [] in
      Pool.with_pool ~size (fun pool ->
          Analysis.Digest.pcap_to_acaps ~pool buf = seq_acaps
          && Analysis.Flows.aggregate ~pool ~weights:groups [] = seq_flows))

(* The tentpole property: the zero-copy sliced decode and the fused
   digest->flows path are bit-identical to the copying baseline at pool
   sizes 1, 2 and 4, over random captures and an arbitrary range_count
   (range boundaries must never show in the output). *)
let qcheck_sliced_fused_equal_copying =
  QCheck.Test.make ~name:"sliced and fused decode equal copying path" ~count:15
    QCheck.(triple small_nat (int_range 0 60) (int_range 1 12))
    (fun (seed, npkts, range_count) ->
      let rng = Netcore.Rng.create (seed + 11) in
      let w = Packet.Pcap.Writer.create () in
      for i = 0 to npkts - 1 do
        Packet.Pcap.Writer.add_frame w
          ~ts:(float_of_int i *. 0.002)
          (Frame_gen.random_frame rng)
      done;
      let buf = Packet.Pcap.Writer.contents w in
      let copied = Analysis.Digest.pcap_to_acaps_copying buf in
      let base_flows = Analysis.Flows.aggregate copied in
      let idx = Packet.Pcapng.index_any buf in
      List.for_all
        (fun size ->
          Pool.with_pool ~size (fun pool ->
              Analysis.Digest.pcap_to_acaps ~pool buf = copied
              && Analysis.Digest.pcap_to_flows ~pool buf = base_flows
              && (* hand-chunked dissection at an explicit range_count *)
              List.concat
                (Pool.map_ranges pool ~range_count ~n:(Array.length idx)
                   (fun ~lo ~hi ->
                     List.init (hi - lo) (fun i ->
                         Dissect.Acap.of_entry buf idx.(lo + i))))
              = copied))
        [ 1; 2; 4 ])

let suites =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "default size" `Quick test_default_size;
        Alcotest.test_case "map matches List.map" `Quick test_map_matches_list_map;
        Alcotest.test_case "map edge cases" `Quick test_map_edge_cases;
        Alcotest.test_case "map_array" `Quick test_map_array;
        Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
        Alcotest.test_case "chunk partitions" `Quick test_chunk_partitions;
        Alcotest.test_case "fold_chunked determinism" `Quick
          test_fold_chunked_bit_identical;
        QCheck_alcotest.to_alcotest qcheck_parallel_pipeline_deterministic;
        QCheck_alcotest.to_alcotest qcheck_sliced_fused_equal_copying;
      ] );
  ]
