module Iperf = Traffic.Iperf

let test_converges_near_bottleneck () =
  let r =
    Iperf.run { Iperf.default with Iperf.streams = 4; duration = 10.0 }
  in
  let util = r.Iperf.mean_goodput /. 11e9 in
  Alcotest.(check bool) "85-100% of bottleneck" true (util > 0.85 && util <= 1.0);
  Alcotest.(check bool) "never exceeds bottleneck" true
    (r.Iperf.peak_goodput <= 11e9 *. 1.001)

let test_slow_start_ramp () =
  (* With a large window and short test, early intervals are below the
     late ones. *)
  let r =
    Iperf.run
      { Iperf.default with
        Iperf.streams = 1; duration = 5.0; rtt = 20e-3;
        receive_window = 64.0 *. 1048576.0; bottleneck_rate = 10e9 }
  in
  match r.Iperf.samples with
  | first :: rest when rest <> [] ->
    let last = List.nth rest (List.length rest - 1) in
    Alcotest.(check bool) "ramping" true
      (first.Iperf.goodput < last.Iperf.goodput)
  | _ -> Alcotest.fail "expected multiple samples"

let test_retransmits_only_under_contention () =
  (* Window-limited flow far below the bottleneck: no losses. *)
  let r =
    Iperf.run
      { Iperf.default with
        Iperf.streams = 1; receive_window = 100_000.0; bottleneck_rate = 100e9;
        duration = 5.0 }
  in
  Alcotest.(check int) "no retransmits" 0 r.Iperf.total_retransmits;
  (* Saturating flows do see losses. *)
  let r2 = Iperf.run { Iperf.default with Iperf.streams = 8; duration = 5.0 } in
  Alcotest.(check bool) "losses under contention" true (r2.Iperf.total_retransmits > 0)

let test_window_limited_throughput () =
  (* One stream, rwnd 1 MB, RTT 10 ms: cap = 800 Mbps regardless of the
     bottleneck. *)
  let r =
    Iperf.run
      { Iperf.default with
        Iperf.streams = 1; receive_window = 1048576.0; rtt = 10e-3;
        bottleneck_rate = 100e9; duration = 6.0 }
  in
  let cap = 1048576.0 *. 8.0 /. 10e-3 in
  Alcotest.(check bool) "window limited" true
    (r.Iperf.peak_goodput <= cap *. 1.05);
  Alcotest.(check bool) "approaches the window cap" true
    (r.Iperf.peak_goodput > cap *. 0.7)

let test_samples_cover_duration () =
  let r = Iperf.run { Iperf.default with Iperf.duration = 7.0 } in
  Alcotest.(check int) "one sample per second" 7 (List.length r.Iperf.samples)

let test_deterministic () =
  let cfg = { Iperf.default with Iperf.streams = 3 } in
  let a = Iperf.run ~seed:5 cfg and b = Iperf.run ~seed:5 cfg in
  Alcotest.(check (float 1e-9)) "same result" a.Iperf.mean_goodput b.Iperf.mean_goodput

let test_frame_size () =
  Alcotest.(check int) "1448 MSS" 1502 (Iperf.frame_size Iperf.default)

(* Allocation simulation. *)
let test_can_satisfy () =
  let engine = Simcore.Engine.create () in
  let model = Testbed.Info_model.generate ~seed:3 () in
  let alloc = Testbed.Allocator.create engine (Netcore.Rng.create 3) model in
  let site =
    (List.hd (Testbed.Info_model.profilable_sites model)).Testbed.Info_model.name
  in
  let vm n =
    { Testbed.Allocator.cores = 2; ram_gb = 8; storage_gb = 100;
      dedicated_nics = n; use_fpga = false }
  in
  Alcotest.(check bool) "feasible" true
    (Testbed.Allocator.can_satisfy alloc { Testbed.Allocator.site; vms = [ vm 1 ] });
  Alcotest.(check bool) "infeasible" false
    (Testbed.Allocator.can_satisfy alloc { Testbed.Allocator.site; vms = [ vm 99 ] });
  (* The simulation is pure: no resources were consumed. *)
  Alcotest.(check int) "no slices created" 0 (Testbed.Allocator.active_slices alloc)

(* Switch conservation property under random attach/detach. *)
let qcheck_switch_conservation =
  QCheck.Test.make ~name:"switch counters conserve attached rates" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Netcore.Rng.create seed in
      let engine = Simcore.Engine.create () in
      let sw = Testbed.Switch.create engine ~site_name:"Q" ~ports:4 ~line_rate:100e9 in
      (* Random schedule of attach/detach events with known total. *)
      let expected = ref 0.0 in
      let live = ref [] in
      let now = ref 0.0 in
      for flow = 0 to 19 do
        let dt = Netcore.Rng.float rng *. 10.0 in
        (* Advance the clock. *)
        Simcore.Engine.schedule engine ~delay:dt (fun _ -> ());
        Simcore.Engine.run engine;
        now := Simcore.Engine.now engine;
        (* Account bytes accrued by live flows over dt. *)
        expected := !expected +. List.fold_left (fun acc (_, r) -> acc +. (r *. dt)) 0.0 !live;
        if Netcore.Rng.bool rng && !live <> [] then begin
          let victim, rate = List.hd !live in
          ignore rate;
          Testbed.Switch.detach_flow sw ~flow:victim;
          live := List.tl !live
        end
        else begin
          let rate = 10.0 +. Netcore.Rng.float rng *. 1000.0 in
          Testbed.Switch.attach_flow sw ~port:(flow mod 4) ~dir:Testbed.Switch.Tx
            ~byte_rate:rate ~frame_rate:1.0 ~flow;
          live := (flow, rate) :: !live
        end
      done;
      (* Final accrual up to now is already counted; read counters. *)
      let total =
        List.fold_left
          (fun acc port ->
            acc +. (Testbed.Switch.read_counters sw ~port).Testbed.Switch.tx_bytes)
          0.0 [ 0; 1; 2; 3 ]
      in
      Float.abs (total -. !expected) < 1e-3 *. Float.max 1.0 !expected)

let suites =
  [
    ( "iperf.model",
      [
        Alcotest.test_case "converges near bottleneck" `Quick test_converges_near_bottleneck;
        Alcotest.test_case "slow start ramp" `Quick test_slow_start_ramp;
        Alcotest.test_case "losses only under contention" `Quick test_retransmits_only_under_contention;
        Alcotest.test_case "window limited" `Quick test_window_limited_throughput;
        Alcotest.test_case "samples cover duration" `Quick test_samples_cover_duration;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "frame size" `Quick test_frame_size;
      ] );
    ( "allocator.simulation",
      [ Alcotest.test_case "can_satisfy is pure" `Quick test_can_satisfy ] );
    ( "switch.properties",
      [ QCheck_alcotest.to_alcotest qcheck_switch_conservation ] );
  ]
