(* pcapng, NetFlow export, and the SVG chart layer. *)

module H = Packet.Headers

let sample_frames n =
  let rng = Netcore.Rng.create 33 in
  List.init n (fun i ->
      (float_of_int i *. 0.001, Frame_gen.random_frame rng))

(* --- pcapng --- *)

let test_pcapng_roundtrip () =
  let frames = sample_frames 20 in
  let buf = Packet.Pcapng.writer_of_frames frames in
  Alcotest.(check bool) "detected as pcapng" true (Packet.Pcapng.is_pcapng buf);
  let packets = Packet.Pcapng.packets buf in
  Alcotest.(check int) "count" 20 (List.length packets);
  List.iter2
    (fun (ts, frame) (p : Packet.Pcap.packet) ->
      Alcotest.(check (float 2e-6)) "timestamp" ts p.Packet.Pcap.ts;
      Alcotest.(check bytes) "bytes" (Packet.Codec.encode frame) p.Packet.Pcap.data)
    frames packets

let test_pcapng_snaplen () =
  let frames = sample_frames 3 in
  let buf = Packet.Pcapng.writer_of_frames ~snaplen:60 frames in
  List.iter
    (fun (p : Packet.Pcap.packet) ->
      Alcotest.(check bool) "truncated" true (Bytes.length p.Packet.Pcap.data <= 60);
      Alcotest.(check bool) "orig preserved" true (p.Packet.Pcap.orig_len >= 60))
    (Packet.Pcapng.packets buf)

let test_pcapng_vs_pcap_dispatch () =
  let frames = sample_frames 5 in
  let ng = Packet.Pcapng.writer_of_frames frames in
  let classic =
    let w = Packet.Pcap.Writer.create () in
    List.iter (fun (ts, f) -> Packet.Pcap.Writer.add_frame w ~ts f) frames;
    Packet.Pcap.Writer.contents w
  in
  Alcotest.(check bool) "classic not pcapng" false (Packet.Pcapng.is_pcapng classic);
  Alcotest.(check int) "read_any classic" 5
    (List.length (Packet.Pcapng.read_any classic));
  Alcotest.(check int) "read_any ng" 5 (List.length (Packet.Pcapng.read_any ng))

let test_pcapng_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Packet.Pcapng.packets (Bytes.make 32 '\x42'));
       false
     with Packet.Pcapng.Malformed _ -> true)

let test_pcapng_digest_interop () =
  (* The analysis pipeline should digest pcapng transparently. *)
  let frames = sample_frames 10 in
  let buf = Packet.Pcapng.writer_of_frames frames in
  let acaps = Analysis.Digest.pcap_to_acaps buf in
  Alcotest.(check int) "digested" 10 (List.length acaps)

let qcheck_pcapng_roundtrip =
  QCheck.Test.make ~name:"pcapng roundtrip preserves frames" ~count:100
    (Frame_gen.frame_arb ()) (fun f ->
      let buf = Packet.Pcapng.writer_of_frames [ (1.5, f) ] in
      match Packet.Pcapng.packets buf with
      | [ p ] -> Bytes.equal p.Packet.Pcap.data (Packet.Codec.encode f)
      | _ -> false)

(* --- classic pcap writer edge cases --- *)

let test_pcap_usec_carry () =
  (* Rounding ts to the nearest microsecond can land on usec = 1_000_000
     (ts infinitesimally below a whole second); the writer must carry
     into the seconds field instead of emitting an out-of-range value. *)
  let w = Packet.Pcap.Writer.create () in
  let data = Bytes.make 60 '\x2a' in
  Packet.Pcap.Writer.add w ~ts:(Float.pred 2.0) data;
  Packet.Pcap.Writer.add w ~ts:1.2345678 data;
  let buf = Packet.Pcap.Writer.contents w in
  (* Inspect the raw record header (first record starts right after the
     24-byte global header): sec, then usec. *)
  let u32 off = Int32.to_int (Bytes.get_int32_be buf off) in
  Alcotest.(check int) "sec carried" 2 (u32 24);
  Alcotest.(check int) "usec wrapped to zero" 0 (u32 28);
  match Packet.Pcap.Reader.packets buf with
  | [ p0; p1 ] ->
    Alcotest.(check (float 0.0)) "carried ts roundtrip" 2.0 p0.Packet.Pcap.ts;
    (* 0.2345678 rounds to 234568us; truncation would give 234567. *)
    Alcotest.(check (float 5e-7)) "nearest-us rounding" 1.2345678
      p1.Packet.Pcap.ts
  | _ -> Alcotest.fail "expected two packets"

let test_pcap_incl_len_capped () =
  (* The pcap spec requires incl_len <= orig_len: a caller claiming fewer
     original bytes than it supplies gets the excess dropped. *)
  let w = Packet.Pcap.Writer.create () in
  let data = Bytes.init 100 Char.chr in
  Packet.Pcap.Writer.add w ~ts:0.5 ~orig_len:64 data;
  (match Packet.Pcap.Reader.packets (Packet.Pcap.Writer.contents w) with
  | [ p ] ->
    Alcotest.(check int) "orig_len" 64 p.Packet.Pcap.orig_len;
    Alcotest.(check int) "incl_len capped" 64 (Bytes.length p.Packet.Pcap.data);
    Alcotest.(check bytes) "prefix preserved" (Bytes.sub data 0 64)
      p.Packet.Pcap.data
  | _ -> Alcotest.fail "expected one packet");
  Alcotest.(check bool) "negative orig_len rejected" true
    (try
       Packet.Pcap.Writer.add w ~ts:0.5 ~orig_len:(-1) data;
       false
     with Invalid_argument _ -> true)

(* --- NetFlow --- *)

let iperf_template ~vlan ~src ~dst =
  [
    H.Ethernet
      { src = Netcore.Mac.of_string "02:00:00:00:00:01";
        dst = Netcore.Mac.of_string "02:00:00:00:00:02" };
    H.Vlan { pcp = 0; dei = false; vid = vlan };
    H.Ipv4
      { src = Netcore.Ipv4_addr.of_string src;
        dst = Netcore.Ipv4_addr.of_string dst;
        dscp = 0; ttl = 64; ident = 0; dont_fragment = true };
    H.Tcp
      { src_port = 41000; dst_port = 5201; seq = 0l; ack_seq = 0l;
        flags = H.flags_psh_ack; window = 512 };
  ]

let flow ~flow_id ~vlan ?(src = "10.0.1.10") ?(dst = "10.0.1.20") () =
  Traffic.Flow_model.make ~flow_id ~template:(iperf_template ~vlan ~src ~dst)
    ~frame_size:(Netcore.Dist.Constant 1000.0) ~avg_frame_size:1000.0
    ~byte_rate:1e6 ~start_time:0.0 ~duration:100.0 ()

let netflow_setup flows =
  let engine = Simcore.Engine.create () in
  let sw = Testbed.Switch.create engine ~site_name:"NF" ~ports:2 ~line_rate:100e9 in
  List.iter
    (fun (spec : Traffic.Flow_model.spec) ->
      Testbed.Switch.attach_flow sw ~port:0 ~dir:Testbed.Switch.Rx
        ~byte_rate:spec.Traffic.Flow_model.byte_rate
        ~frame_rate:(Traffic.Flow_model.frame_rate spec)
        ~flow:spec.Traffic.Flow_model.flow_id)
    flows;
  let resolver id =
    List.find_opt
      (fun (s : Traffic.Flow_model.spec) -> s.Traffic.Flow_model.flow_id = id)
      flows
  in
  (sw, resolver)

let test_netflow_merges_slices () =
  let a = flow ~flow_id:1 ~vlan:100 () and b = flow ~flow_id:2 ~vlan:200 () in
  let sw, resolver = netflow_setup [ a; b ] in
  let records =
    Traffic.Netflow.export ~resolver sw ~port:0 ~start_time:0.0 ~end_time:10.0
  in
  Alcotest.(check int) "two slices, one record" 1 (List.length records);
  let r = List.hd records in
  (* Bytes from both slices are conflated. *)
  Alcotest.(check (float 1.0)) "merged bytes" 2e7 r.Traffic.Netflow.nf_bytes

let test_netflow_separates_real_tuples () =
  let a = flow ~flow_id:1 ~vlan:100 () in
  let b = flow ~flow_id:2 ~vlan:100 ~dst:"10.0.1.30" () in
  let sw, resolver = netflow_setup [ a; b ] in
  let records =
    Traffic.Netflow.export ~resolver sw ~port:0 ~start_time:0.0 ~end_time:10.0
  in
  Alcotest.(check int) "different tuples kept apart" 2 (List.length records)

let test_netflow_window_clipping () =
  let a = flow ~flow_id:1 ~vlan:100 () in
  let sw, resolver = netflow_setup [ a ] in
  match Traffic.Netflow.export ~resolver sw ~port:0 ~start_time:90.0 ~end_time:200.0 with
  | [ r ] ->
    (* Flow ends at t=100: only 10s overlap. *)
    Alcotest.(check (float 1.0)) "clipped bytes" 1e7 r.Traffic.Netflow.nf_bytes;
    Alcotest.(check (float 1e-9)) "last" 100.0 r.Traffic.Netflow.nf_last
  | l -> Alcotest.failf "expected one record, got %d" (List.length l)

let test_netflow_empty_window () =
  let a = flow ~flow_id:1 ~vlan:100 () in
  let sw, resolver = netflow_setup [ a ] in
  Alcotest.(check int) "no overlap, no records" 0
    (List.length
       (Traffic.Netflow.export ~resolver sw ~port:0 ~start_time:200.0 ~end_time:300.0))

(* --- SVG / charts --- *)

let count_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_svg_document_structure () =
  let svg = Analysis.Svg.create ~width:100.0 ~height:50.0 in
  Analysis.Svg.rect svg ~x:1.0 ~y:2.0 ~w:3.0 ~h:4.0 ();
  Analysis.Svg.text svg ~x:5.0 ~y:6.0 "hello <world> & \"friends\"";
  let s = Analysis.Svg.to_string svg in
  Alcotest.(check bool) "xml decl" true (String.length s > 0 && s.[0] = '<');
  Alcotest.(check int) "one closing svg" 1 (count_substring s "</svg>");
  Alcotest.(check bool) "escaped" true
    (count_substring s "&lt;world&gt; &amp; &quot;friends&quot;" = 1);
  Alcotest.(check bool) "no raw angle" true (count_substring s "<world>" = 0)

let test_bar_chart_elements () =
  let svg =
    Analysis.Charts.bar_chart ~title:"t" ~x_axis:"x"
      ~y_axis:{ Analysis.Charts.label = "y"; log = false }
      [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ]
  in
  let s = Analysis.Svg.to_string svg in
  (* Background + 3 bars. *)
  Alcotest.(check int) "rects" 4 (count_substring s "<rect");
  Alcotest.(check bool) "title present" true (count_substring s ">t</text>" = 1)

let test_line_chart_series () =
  let svg =
    Analysis.Charts.line_chart ~title:"lines" ~x_axis:"x"
      ~y_axis:{ Analysis.Charts.label = "y"; log = false }
      [ ("s1", [ (0.0, 1.0); (1.0, 2.0) ]); ("s2", [ (0.0, 2.0); (1.0, 1.0) ]) ]
  in
  let s = Analysis.Svg.to_string svg in
  Alcotest.(check int) "two polylines" 2 (count_substring s "<polyline");
  Alcotest.(check bool) "legend" true (count_substring s ">s1</text>" = 1)

let test_stacked_chart_heights () =
  let svg =
    Analysis.Charts.stacked_bar_chart ~title:"s" ~x_axis:"x"
      ~y_axis:{ Analysis.Charts.label = "y"; log = false }
      ~series:[ "p"; "q" ]
      [ ("a", [ 1.0; 2.0 ]) ]
  in
  let s = Analysis.Svg.to_string svg in
  (* Background + legend boxes (2) + 2 stacked segments. *)
  Alcotest.(check int) "rects" 5 (count_substring s "<rect")

let test_log_axis_chart () =
  let svg =
    Analysis.Charts.bar_chart ~title:"log" ~x_axis:"x"
      ~y_axis:{ Analysis.Charts.label = "y"; log = true }
      [ ("a", 5.0); ("b", 5000.0) ]
  in
  let s = Analysis.Svg.to_string svg in
  Alcotest.(check bool) "rendered" true (count_substring s "<rect" >= 3)

let test_profile_figures_written () =
  (* A tiny synthetic profile via the builder API is enough to exercise
     every chart path. *)
  let dir = Filename.temp_file "patchwork_figs" "" in
  Sys.remove dir;
  let b = Analysis.Profile.Builder.create () in
  let profile = Analysis.Profile.Builder.finish b in
  let files = Analysis.Figures.write_profile_figures profile ~dir in
  Alcotest.(check bool) "several figures" true (List.length files >= 5);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      Alcotest.(check bool) (f ^ " exists") true (Sys.file_exists path);
      Sys.remove path)
    files;
  Sys.rmdir dir

let suites =
  [
    ( "formats.pcapng",
      [
        Alcotest.test_case "roundtrip" `Quick test_pcapng_roundtrip;
        Alcotest.test_case "snaplen" `Quick test_pcapng_snaplen;
        Alcotest.test_case "format dispatch" `Quick test_pcapng_vs_pcap_dispatch;
        Alcotest.test_case "rejects garbage" `Quick test_pcapng_rejects_garbage;
        Alcotest.test_case "digest interop" `Quick test_pcapng_digest_interop;
        QCheck_alcotest.to_alcotest qcheck_pcapng_roundtrip;
      ] );
    ( "formats.pcap",
      [
        Alcotest.test_case "usec carry at whole second" `Quick
          test_pcap_usec_carry;
        Alcotest.test_case "incl_len capped at orig_len" `Quick
          test_pcap_incl_len_capped;
      ] );
    ( "formats.netflow",
      [
        Alcotest.test_case "merges slices" `Quick test_netflow_merges_slices;
        Alcotest.test_case "separates real tuples" `Quick test_netflow_separates_real_tuples;
        Alcotest.test_case "window clipping" `Quick test_netflow_window_clipping;
        Alcotest.test_case "empty window" `Quick test_netflow_empty_window;
      ] );
    ( "formats.svg",
      [
        Alcotest.test_case "document structure" `Quick test_svg_document_structure;
        Alcotest.test_case "bar chart" `Quick test_bar_chart_elements;
        Alcotest.test_case "line chart" `Quick test_line_chart_series;
        Alcotest.test_case "stacked chart" `Quick test_stacked_chart_heights;
        Alcotest.test_case "log axis" `Quick test_log_axis_chart;
        Alcotest.test_case "profile figures" `Quick test_profile_figures_written;
      ] );
  ]

(* Cross-cutting properties added late: anonymization composes with the
   codec round-trip, and the scheduler never leaks switch sessions. *)

let qcheck_anonymize_roundtrip =
  QCheck.Test.make ~name:"anonymized frames re-dissect with identical stacks"
    ~count:200 (Frame_gen.frame_arb ()) (fun f ->
      let anon = Hostmodel.Anonymize.create ~key:77 in
      let f' = Hostmodel.Anonymize.frame anon f in
      let d = Dissect.Dissector.dissect (Packet.Codec.encode f') in
      List.map Packet.Headers.name d.Dissect.Dissector.headers
      = List.map Packet.Headers.name f.Packet.Frame.headers)

let qcheck_scheduler_no_leaks =
  QCheck.Test.make ~name:"mirror scheduler never leaks switch sessions" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Netcore.Rng.create seed in
      let engine = Simcore.Engine.create () in
      let sw = Testbed.Switch.create engine ~site_name:"L" ~ports:8 ~line_rate:1e11 in
      let sched = Patchwork.Mirror_scheduler.create engine sw ~quantum:30.0 in
      let users = [| "u1"; "u2"; "u3" |] in
      let submitted = ref [] in
      for step = 0 to 19 do
        (match Netcore.Rng.int rng 3 with
        | 0 ->
          let user = Netcore.Rng.choice rng users in
          let src = Netcore.Rng.int rng 4 in
          let dst = 4 + Netcore.Rng.int rng 4 in
          if not (List.mem (user, src) !submitted) then begin
            Patchwork.Mirror_scheduler.submit sched ~user ~src_port:src ~dst_port:dst;
            submitted := (user, src) :: !submitted
          end
        | 1 -> (
          match !submitted with
          | (user, src) :: rest ->
            Patchwork.Mirror_scheduler.cancel sched ~user ~src_port:src;
            submitted := rest
          | [] -> ())
        | _ -> ());
        Simcore.Engine.schedule engine ~delay:(float_of_int (step + 1)) (fun _ -> ());
        Simcore.Engine.run engine
      done;
      Patchwork.Mirror_scheduler.start sched ~until:(Simcore.Engine.now engine +. 90.0);
      Simcore.Engine.run engine;
      (* Every live switch session corresponds to a current grant. *)
      Testbed.Switch.mirror_count sw
      = List.length (Patchwork.Mirror_scheduler.current_grants sched))

let suites =
  suites
  @ [
      ( "formats.properties",
        [
          QCheck_alcotest.to_alcotest qcheck_anonymize_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_scheduler_no_leaks;
        ] );
    ]

(* NetFlow conservation: however flows merge, total exported bytes must
   equal the sum of per-flow bytes in the window. *)
let qcheck_netflow_conservation =
  QCheck.Test.make ~name:"netflow export conserves bytes" ~count:100
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, n_flows) ->
      let rng = Netcore.Rng.create seed in
      let flows =
        List.init n_flows (fun i ->
            flow ~flow_id:i
              ~vlan:(100 + Netcore.Rng.int rng 5)
              ~dst:(Printf.sprintf "10.0.1.%d" (20 + Netcore.Rng.int rng 3))
              ())
      in
      let sw, resolver = netflow_setup flows in
      let t0 = Netcore.Rng.float rng *. 50.0 in
      let t1 = t0 +. (Netcore.Rng.float rng *. 100.0) in
      let records =
        Traffic.Netflow.export ~resolver sw ~port:0 ~start_time:t0 ~end_time:t1
      in
      let exported =
        List.fold_left (fun acc r -> acc +. r.Traffic.Netflow.nf_bytes) 0.0 records
      in
      let expected =
        List.fold_left
          (fun acc (s : Traffic.Flow_model.spec) ->
            let lo = Float.max t0 s.Traffic.Flow_model.start_time in
            let hi = Float.min t1 (Traffic.Flow_model.end_time s) in
            if hi > lo then acc +. (s.Traffic.Flow_model.byte_rate *. (hi -. lo))
            else acc)
          0.0 flows
      in
      Float.abs (exported -. expected) < 1e-6 *. Float.max 1.0 expected)

let test_cdf_and_histogram_charts_render () =
  let cdf =
    Analysis.Charts.cdf_chart ~title:"cdf" ~x_axis:"hours"
      [ (1.0, 0.1); (10.0, 0.5); (100.0, 1.0) ]
  in
  let s = Analysis.Svg.to_string cdf in
  Alcotest.(check bool) "cdf polyline" true (count_substring s "<polyline" = 1);
  Alcotest.(check bool) "cdf markers" true (count_substring s "<circle" = 3);
  let h = Netcore.Histogram.create [| 10.0; 100.0 |] in
  Netcore.Histogram.add h 5.0;
  Netcore.Histogram.add h 50.0;
  let hist = Analysis.Charts.histogram_chart ~title:"h" ~x_axis:"size" h in
  Alcotest.(check bool) "histogram bars" true
    (count_substring (Analysis.Svg.to_string hist) "<rect" >= 4)

let suites =
  suites
  @ [
      ( "formats.more",
        [
          QCheck_alcotest.to_alcotest qcheck_netflow_conservation;
          Alcotest.test_case "cdf and histogram charts" `Quick
            test_cdf_and_histogram_charts_render;
        ] );
    ]

(* --- indexed decode and zero-copy slices --- *)

let expect_pcap_malformed name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Packet.Pcap.Reader.Malformed _ -> true)

let test_pcap_index_matches_packets () =
  let frames = sample_frames 12 in
  let w = Packet.Pcap.Writer.create () in
  List.iter (fun (ts, f) -> Packet.Pcap.Writer.add_frame w ~ts f) frames;
  let buf = Packet.Pcap.Writer.contents w in
  let idx = Packet.Pcap.Reader.index buf in
  let packets = Packet.Pcap.Reader.packets buf in
  Alcotest.(check int) "entry per record" (List.length packets) (Array.length idx);
  List.iteri
    (fun i (p : Packet.Pcap.packet) ->
      let e = idx.(i) in
      Alcotest.(check (float 0.0)) "ts" p.Packet.Pcap.ts e.Packet.Pcap.ts;
      Alcotest.(check int) "orig_len" p.Packet.Pcap.orig_len e.Packet.Pcap.orig_len;
      Alcotest.(check bool) "slice views the record bytes" true
        (Packet.Slice.equal_bytes
           (Packet.Pcap.Reader.slice buf e)
           p.Packet.Pcap.data))
    packets

(* A hand-built record appended after the 24-byte global header; fields
   are big-endian, matching Writer's byte order. *)
let pcap_with_raw_record ?(snaplen = 65535) ~sec ~usec ~incl ~orig data =
  let w = Packet.Pcap.Writer.create ~snaplen () in
  let b = Buffer.create 64 in
  Buffer.add_bytes b (Packet.Pcap.Writer.contents w);
  List.iter (Buffer.add_int32_be b) [ sec; usec; incl; orig ];
  Buffer.add_bytes b data;
  Buffer.to_bytes b

let test_pcap_rejects_top_bit_fields () =
  (* A top bit set in any record-header field is a corrupt capture;
     masking it would wrap a huge length into a small bogus one and
     desynchronize the walk. *)
  let data = Bytes.make 8 '\x00' in
  expect_pcap_malformed "incl_len top bit" (fun () ->
      Packet.Pcap.Reader.index
        (pcap_with_raw_record ~sec:1l ~usec:0l ~incl:0x80000008l ~orig:8l data));
  expect_pcap_malformed "timestamp top bit" (fun () ->
      Packet.Pcap.Reader.index
        (pcap_with_raw_record ~sec:0xFFFFFFFFl ~usec:0l ~incl:8l ~orig:8l data))

let test_pcap_rejects_incl_over_snaplen () =
  (* incl_len larger than the file's declared snaplen cannot have been
     produced by the capture that wrote the header. *)
  let data = Bytes.make 200 '\x2a' in
  expect_pcap_malformed "incl_len > snaplen" (fun () ->
      Packet.Pcap.Reader.index
        (pcap_with_raw_record ~snaplen:100 ~sec:1l ~usec:0l ~incl:200l ~orig:200l
           data))

let test_pcap_rejects_truncated_data () =
  let data = Bytes.make 10 '\x2a' in
  expect_pcap_malformed "record data cut short" (fun () ->
      Packet.Pcap.Reader.index
        (pcap_with_raw_record ~sec:1l ~usec:0l ~incl:50l ~orig:50l data))

(* A little-endian classic pcap, byte-for-byte what a LE host's libpcap
   writes (our Writer is BE-only, so this is built by hand). *)
let le_pcap ?(snaplen = 65535) records =
  let b = Buffer.create 256 in
  let u32 v = Buffer.add_int32_le b v in
  let u32i v = u32 (Int32.of_int v) in
  let u16 v = Buffer.add_uint16_le b v in
  u32 0xA1B2C3D4l;
  u16 2;
  u16 4;
  u32 0l;
  u32 0l;
  u32i snaplen;
  u32 1l;
  List.iter
    (fun (sec, usec, data) ->
      u32i sec;
      u32i usec;
      u32i (Bytes.length data);
      u32i (Bytes.length data);
      Buffer.add_bytes b data)
    records;
  Buffer.to_bytes b

(* A little-endian pcapng section (SHB + IDB + one EPB per packet); the
   reader must pick the byte order up from the section header magic. *)
let le_pcapng ?(snaplen = 65535) packets =
  let b = Buffer.create 256 in
  let u32 v = Buffer.add_int32_le b v in
  let u32i v = u32 (Int32.of_int v) in
  let u16 v = Buffer.add_uint16_le b v in
  let block btype body_len emit =
    let pad = (4 - (body_len land 3)) land 3 in
    let total = 12 + body_len + pad in
    u32 btype;
    u32i total;
    emit ();
    for _ = 1 to pad do
      Buffer.add_char b '\x00'
    done;
    u32i total
  in
  block 0x0A0D0D0Al 16 (fun () ->
      u32 0x1A2B3C4Dl;
      u16 1;
      u16 0;
      u32 0xFFFFFFFFl;
      u32 0xFFFFFFFFl);
  block 1l 8 (fun () ->
      u16 1;
      u16 0;
      u32i snaplen);
  List.iter
    (fun (p : Packet.Pcap.packet) ->
      let data = p.Packet.Pcap.data in
      let incl = Bytes.length data in
      let usec = Int64.of_float (p.Packet.Pcap.ts *. 1e6) in
      block 6l (20 + incl) (fun () ->
          u32 0l;
          u32i (Int64.to_int (Int64.shift_right_logical usec 32));
          u32 (Int64.to_int32 usec);
          u32i incl;
          u32i p.Packet.Pcap.orig_len;
          Buffer.add_bytes b data))
    packets;
  Buffer.to_bytes b

let be_packets frames =
  List.map
    (fun (ts, f) ->
      let data = Packet.Codec.encode f in
      { Packet.Pcap.ts; orig_len = Bytes.length data; data })
    frames

let test_le_pcap_slice_path () =
  let frames = sample_frames 6 in
  let records =
    List.map
      (fun (ts, f) ->
        (int_of_float ts, int_of_float (Float.round (ts *. 1e6)) mod 1_000_000,
         Packet.Codec.encode f))
      frames
  in
  let buf = le_pcap records in
  let idx = Packet.Pcapng.index_any buf in
  Alcotest.(check int) "LE pcap indexed" 6 (Array.length idx);
  List.iteri
    (fun i (_, _, data) ->
      Alcotest.(check bool) "LE slice bytes" true
        (Packet.Slice.equal_bytes (Packet.Pcap.Reader.slice buf idx.(i)) data))
    records;
  (* The digest path must read LE captures identically to BE ones. *)
  let be =
    let w = Packet.Pcap.Writer.create () in
    List.iter (fun (ts, f) -> Packet.Pcap.Writer.add_frame w ~ts f) frames;
    Packet.Pcap.Writer.contents w
  in
  let strip_ts (r : Dissect.Acap.record) = { r with Dissect.Acap.ts = 0.0 } in
  Alcotest.(check int) "LE digest equals BE digest" 0
    (compare
       (List.map strip_ts (Analysis.Digest.pcap_to_acaps buf))
       (List.map strip_ts (Analysis.Digest.pcap_to_acaps be)))

let test_le_pcapng_slice_path () =
  let frames = sample_frames 6 in
  let packets = be_packets frames in
  let le = le_pcapng packets in
  let be = Packet.Pcapng.write packets in
  Alcotest.(check bool) "detected as pcapng" true (Packet.Pcapng.is_pcapng le);
  let idx = Packet.Pcapng.index le in
  Alcotest.(check int) "LE pcapng indexed" 6 (Array.length idx);
  List.iteri
    (fun i (p : Packet.Pcap.packet) ->
      Alcotest.(check bool) "LE slice bytes" true
        (Packet.Slice.equal_bytes
           (Packet.Pcap.Reader.slice le idx.(i))
           p.Packet.Pcap.data))
    packets;
  Alcotest.(check int) "LE digest equals BE digest" 0
    (compare (Analysis.Digest.pcap_to_acaps le) (Analysis.Digest.pcap_to_acaps be))

let test_pcapng_snaplen_slice_path () =
  let frames = sample_frames 5 in
  let buf = Packet.Pcapng.writer_of_frames ~snaplen:60 frames in
  let idx = Packet.Pcapng.index buf in
  Array.iter
    (fun (e : Packet.Pcap.index_entry) ->
      Alcotest.(check bool) "capped at snaplen" true (e.Packet.Pcap.cap_len <= 60))
    idx;
  List.iter
    (fun (r : Dissect.Acap.record) ->
      Alcotest.(check bool) "snap marked truncated" true
        (r.Dissect.Acap.cap_len >= r.Dissect.Acap.orig_len || r.Dissect.Acap.truncated))
    (Analysis.Digest.pcap_to_acaps buf);
  (* The slice path must agree with the copying path on capped records. *)
  Alcotest.(check int) "sliced equals copied on capped capture" 0
    (compare (Analysis.Digest.pcap_to_acaps buf)
       (Analysis.Digest.pcap_to_acaps_copying buf))

let test_pcapng_rejects_truncated_epb () =
  let frames = sample_frames 1 in
  let buf = Packet.Pcapng.writer_of_frames frames in
  (* Find the EPB (third block: SHB 28 bytes, IDB 20 bytes) and inflate
     its captured-length field past the block's extent. *)
  let epb = 48 in
  Bytes.set_int32_be buf (epb + 8 + 12) 0x7FFF0000l;
  Alcotest.(check bool) "truncated EPB rejected" true
    (try
       ignore (Packet.Pcapng.index buf);
       false
     with Packet.Pcapng.Malformed _ -> true)

let suites =
  suites
  @ [
      ( "formats.slice",
        [
          Alcotest.test_case "pcap index matches packets" `Quick
            test_pcap_index_matches_packets;
          Alcotest.test_case "pcap rejects top-bit fields" `Quick
            test_pcap_rejects_top_bit_fields;
          Alcotest.test_case "pcap rejects incl_len > snaplen" `Quick
            test_pcap_rejects_incl_over_snaplen;
          Alcotest.test_case "pcap rejects truncated data" `Quick
            test_pcap_rejects_truncated_data;
          Alcotest.test_case "little-endian pcap slice path" `Quick
            test_le_pcap_slice_path;
          Alcotest.test_case "little-endian pcapng slice path" `Quick
            test_le_pcapng_slice_path;
          Alcotest.test_case "snaplen-capped slice path" `Quick
            test_pcapng_snaplen_slice_path;
          Alcotest.test_case "pcapng rejects truncated EPB" `Quick
            test_pcapng_rejects_truncated_epb;
        ] );
    ]
