exception Malformed of string

let shb_type = 0x0A0D0D0Al
let idb_type = 0x00000001l
let epb_type = 0x00000006l
let spb_type = 0x00000003l
let byte_order_magic = 0x1A2B3C4Dl

let pad32 n = (4 - (n land 3)) land 3

(* --- Writer (big-endian section) --- *)

let write ?(snaplen = 65535) packets =
  let buf = Buffer.create 4096 in
  let u32 v =
    Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xFF));
    Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xFF));
    Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xFF));
    Buffer.add_char buf (Char.chr (Int32.to_int v land 0xFF))
  in
  let u32i v = u32 (Int32.of_int v) in
  let u16 v =
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (v land 0xFF))
  in
  let block btype body_len emit_body =
    let total = 12 + body_len + pad32 body_len in
    u32 btype;
    u32i total;
    emit_body ();
    for _ = 1 to pad32 body_len do
      Buffer.add_char buf '\x00'
    done;
    u32i total
  in
  (* Section Header Block. *)
  block shb_type 16 (fun () ->
      u32 byte_order_magic;
      u16 1 (* major *);
      u16 0 (* minor *);
      u32 0xFFFFFFFFl;
      u32 0xFFFFFFFFl (* section length unspecified *));
  (* Interface Description Block: Ethernet, default microsecond ts. *)
  block idb_type 8 (fun () ->
      u16 1 (* LINKTYPE_ETHERNET *);
      u16 0 (* reserved *);
      u32i snaplen);
  (* Enhanced Packet Blocks. *)
  List.iter
    (fun (p : Pcap.packet) ->
      let data = p.Pcap.data in
      let incl = min (Bytes.length data) snaplen in
      let usec = Int64.of_float (p.Pcap.ts *. 1e6) in
      block epb_type (20 + incl) (fun () ->
          u32 0l (* interface id *);
          u32 (Int64.to_int32 (Int64.shift_right_logical usec 32));
          u32 (Int64.to_int32 usec);
          u32i incl;
          u32i p.Pcap.orig_len;
          Buffer.add_subbytes buf data 0 incl))
    packets;
  Buffer.to_bytes buf

let writer_of_frames ?snaplen frames =
  write ?snaplen
    (List.map
       (fun (ts, frame) ->
         let data = Codec.encode frame in
         { Pcap.ts; orig_len = Bytes.length data; data })
       frames)

(* --- Reader --- *)

type endian = Big | Little

let ru32 endian buf pos =
  if pos + 4 > Bytes.length buf then raise (Malformed "truncated u32");
  match endian with
  | Big ->
    Int32.logor
      (Int32.shift_left (Int32.of_int (Bytes.get_uint16_be buf pos)) 16)
      (Int32.of_int (Bytes.get_uint16_be buf (pos + 2)))
  | Little ->
    Int32.logor
      (Int32.shift_left (Int32.of_int (Bytes.get_uint16_le buf (pos + 2))) 16)
      (Int32.of_int (Bytes.get_uint16_le buf pos))

let ru32i endian buf pos = Int32.to_int (Int32.logand (ru32 endian buf pos) 0x7FFFFFFFl)

let is_pcapng buf =
  Bytes.length buf >= 4 && Int32.equal (ru32 Big buf 0) shb_type

(* First pass of the indexed decode: walk block headers sequentially and
   emit one offset/length/timestamp entry per packet block, sharing the
   entry type (and hence the whole slice machinery) with classic pcap. *)
let index buf =
  if not (is_pcapng buf) then raise (Malformed "not a pcapng stream");
  let len = Bytes.length buf in
  let out = ref [] in
  let endian = ref Big in
  let pos = ref 0 in
  while !pos + 12 <= len do
    let btype = ru32 Big buf !pos in
    (* Section headers carry the byte-order magic; detect per section. *)
    if Int32.equal btype shb_type then begin
      let magic = ru32 Big buf (!pos + 8) in
      if Int32.equal magic byte_order_magic then endian := Big
      else if Int32.equal magic 0x4D3C2B1Al then endian := Little
      else raise (Malformed "bad byte-order magic")
    end;
    let total = ru32i !endian buf (!pos + 4) in
    if total < 12 || total mod 4 <> 0 || !pos + total > len then
      raise (Malformed "bad block length");
    let body = !pos + 8 in
    let block_type_here = ru32 !endian buf !pos in
    if Int32.equal block_type_here epb_type then begin
      let hi = Int64.of_int (ru32i !endian buf (body + 4)) in
      let lo =
        Int64.logand (Int64.of_int32 (ru32 !endian buf (body + 8))) 0xFFFFFFFFL
      in
      let usec = Int64.logor (Int64.shift_left hi 32) lo in
      let incl = ru32i !endian buf (body + 12) in
      let orig = ru32i !endian buf (body + 16) in
      if body + 20 + incl > !pos + total then raise (Malformed "truncated packet");
      out :=
        {
          Pcap.ts = Int64.to_float usec /. 1e6;
          orig_len = orig;
          data_off = body + 20;
          cap_len = incl;
        }
        :: !out
    end
    else if Int32.equal block_type_here spb_type then begin
      let orig = ru32i !endian buf body in
      let incl = min orig (total - 16) in
      out :=
        { Pcap.ts = 0.0; orig_len = orig; data_off = body + 4; cap_len = incl }
        :: !out
    end;
    pos := !pos + total
  done;
  Array.of_list (List.rev !out)

let packets buf =
  Array.to_list (Array.map (Pcap.Reader.packet_of_entry buf) (index buf))

let index_any buf = if is_pcapng buf then index buf else Pcap.Reader.index buf

let read_any buf =
  if is_pcapng buf then packets buf else Pcap.Reader.packets buf
