open Netcore

type dir = Any | Src | Dst

type t =
  | True
  | Not of t
  | And of t * t
  | Or of t * t
  | Proto of string
  | Vlan of int option
  | Mpls of int option
  | Host of dir * Ipv4_addr.t
  | Port of dir * int
  | Less of int
  | Greater of int

let dir_matches dir ~src ~dst ~wanted ~equal =
  match dir with
  | Any -> equal src wanted || equal dst wanted
  | Src -> equal src wanted
  | Dst -> equal dst wanted

let rec matches t (frame : Frame.t) =
  match t with
  | True -> true
  | Not inner -> not (matches inner frame)
  | And (a, b) -> matches a frame && matches b frame
  | Or (a, b) -> matches a frame || matches b frame
  | Proto token -> List.mem token (Frame.tokens frame)
  | Vlan None -> Frame.vlan_ids frame <> []
  | Vlan (Some vid) -> List.mem vid (Frame.vlan_ids frame)
  | Mpls None -> Frame.mpls_labels frame <> []
  | Mpls (Some label) -> List.mem label (Frame.mpls_labels frame)
  | Host (dir, addr) ->
    List.exists
      (function
        | Headers.Ipv4 { src; dst; _ } ->
          dir_matches dir ~src ~dst ~wanted:addr ~equal:Ipv4_addr.equal
        | _ -> false)
      frame.headers
  | Port (dir, port) ->
    List.exists
      (function
        | Headers.Tcp { src_port; dst_port; _ } | Headers.Udp { src_port; dst_port } ->
          dir_matches dir ~src:src_port ~dst:dst_port ~wanted:port ~equal:Int.equal
        | _ -> false)
      frame.headers
  | Less n -> Frame.wire_length frame <= n
  | Greater n -> Frame.wire_length frame >= n

(* --- Parsing --- *)

let tokenize s =
  let out = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' -> flush ()
      | '(' | ')' ->
        flush ();
        out := String.make 1 c :: !out
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !out

exception Parse_error of string

let known_protocols =
  [ "eth"; "pw"; "tls"; "ssh"; "http"; "dns"; "ntp"; "quic"; "vxlan"; "icmpv6" ]

(* Recursive-descent parser over a mutable token stream. *)
type stream = { mutable toks : string list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  match peek st with
  | Some t when t = tok -> advance st
  | Some t -> raise (Parse_error (Printf.sprintf "expected %s, found %s" tok t))
  | None -> raise (Parse_error (Printf.sprintf "expected %s, found end of input" tok))

let number st what =
  match peek st with
  | Some t -> (
    match int_of_string_opt t with
    | Some n ->
      advance st;
      n
    | None -> raise (Parse_error (Printf.sprintf "expected %s, found %s" what t)))
  | None -> raise (Parse_error (Printf.sprintf "expected %s, found end of input" what))

let optional_number st =
  match peek st with
  | Some t -> (
    match int_of_string_opt t with
    | Some n ->
      advance st;
      Some n
    | None -> None)
  | None -> None

let rec parse_or st =
  let left = parse_and st in
  match peek st with
  | Some "or" ->
    advance st;
    Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_not st in
  match peek st with
  | Some "and" ->
    advance st;
    And (left, parse_and st)
  | _ -> left

and parse_not st =
  match peek st with
  | Some "not" ->
    advance st;
    Not (parse_not st)
  | _ -> parse_prim st

and parse_prim st =
  match peek st with
  | None -> raise (Parse_error "unexpected end of input")
  | Some "(" ->
    advance st;
    let e = parse_or st in
    expect st ")";
    e
  | Some "ip" ->
    advance st;
    Proto "ipv4"
  | Some "ip6" ->
    advance st;
    Proto "ipv6"
  | Some ("tcp" | "udp" | "icmp" | "arp") ->
    let t = Option.get (peek st) in
    advance st;
    Proto t
  | Some "vlan" ->
    advance st;
    Vlan (optional_number st)
  | Some "mpls" ->
    advance st;
    Mpls (optional_number st)
  | Some "host" ->
    advance st;
    Host (Any, parse_addr st)
  | Some "port" ->
    advance st;
    Port (Any, number st "port number")
  | Some (("src" | "dst") as d) ->
    advance st;
    let dir = if d = "src" then Src else Dst in
    (match peek st with
    | Some "host" ->
      advance st;
      Host (dir, parse_addr st)
    | Some "port" ->
      advance st;
      Port (dir, number st "port number")
    | Some t -> raise (Parse_error ("expected host or port after " ^ d ^ ", found " ^ t))
    | None -> raise (Parse_error ("expected host or port after " ^ d)))
  | Some "less" ->
    advance st;
    Less (number st "length")
  | Some "greater" ->
    advance st;
    Greater (number st "length")
  | Some tok when List.mem tok known_protocols ->
    advance st;
    Proto tok
  | Some tok -> raise (Parse_error ("unknown token " ^ tok))

and parse_addr st =
  match peek st with
  | Some t -> (
    advance st;
    try Ipv4_addr.of_string t
    with Invalid_argument _ -> raise (Parse_error ("bad IPv4 address " ^ t)))
  | None -> raise (Parse_error "expected IPv4 address")

let parse s =
  match tokenize s with
  | [] -> Ok True
  | toks -> (
    let st = { toks } in
    try
      let e = parse_or st in
      match st.toks with
      | [] -> Ok e
      | t :: _ -> Error ("trailing input at " ^ t)
    with Parse_error msg -> Error msg)

let rec to_string = function
  | True -> ""
  | Not e -> "not (" ^ to_string e ^ ")"
  | And (a, b) -> "(" ^ to_string a ^ " and " ^ to_string b ^ ")"
  | Or (a, b) -> "(" ^ to_string a ^ " or " ^ to_string b ^ ")"
  | Proto "ipv4" -> "ip"
  | Proto "ipv6" -> "ip6"
  | Proto p -> p
  | Vlan None -> "vlan"
  | Vlan (Some v) -> Printf.sprintf "vlan %d" v
  | Mpls None -> "mpls"
  | Mpls (Some l) -> Printf.sprintf "mpls %d" l
  | Host (Any, a) -> "host " ^ Ipv4_addr.to_string a
  | Host (Src, a) -> "src host " ^ Ipv4_addr.to_string a
  | Host (Dst, a) -> "dst host " ^ Ipv4_addr.to_string a
  | Port (Any, p) -> Printf.sprintf "port %d" p
  | Port (Src, p) -> Printf.sprintf "src port %d" p
  | Port (Dst, p) -> Printf.sprintf "dst port %d" p
  | Less n -> Printf.sprintf "less %d" n
  | Greater n -> Printf.sprintf "greater %d" n
