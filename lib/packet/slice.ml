open Netcore

type t = { buf : bytes; off : int; len : int }

let make buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Slice.make: window outside buffer";
  { buf; off; len }

let buffer t = t.buf
let off t = t.off
let length t = t.len

let check t i n =
  if i < 0 || i + n > t.len then invalid_arg "Slice: index out of range"

let get_u8 t i =
  check t i 1;
  Char.code (Bytes.unsafe_get t.buf (t.off + i))

let get_u16_be t i =
  check t i 2;
  Bytes.get_uint16_be t.buf (t.off + i)

let get_u32_be t i =
  check t i 4;
  Bytes.get_int32_be t.buf (t.off + i)

(* Fast variants for the overlay cursor: exactly one bounds check
   against the slice window, then unsafe byte reads.  The stock
   accessors above delegate to [Bytes.get_uint16_be] and friends, which
   re-check against the whole buffer and (for u32) box an int32; the
   hot dissection loop reads every header field through these instead. *)

let get_u8_fast t i =
  check t i 1;
  Char.code (Bytes.unsafe_get t.buf (t.off + i))

let get_u16_be_fast t i =
  check t i 2;
  let p = t.off + i in
  (Char.code (Bytes.unsafe_get t.buf p) lsl 8)
  lor Char.code (Bytes.unsafe_get t.buf (p + 1))

let get_u32_be_fast t i =
  check t i 4;
  let p = t.off + i in
  (Char.code (Bytes.unsafe_get t.buf p) lsl 24)
  lor (Char.code (Bytes.unsafe_get t.buf (p + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get t.buf (p + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get t.buf (p + 3))

let sub t ~off ~len =
  check t off len;
  { buf = t.buf; off = t.off + off; len }

let to_bytes t = Bytes.sub t.buf t.off t.len

let equal_bytes t b =
  Bytes.length b = t.len
  &&
  let rec go i = i >= t.len || (Bytes.get t.buf (t.off + i) = Bytes.get b i && go (i + 1)) in
  go 0

(* FNV-1a over the first [min 32 len] bytes.  The flow cache uses this
   only to pick a slot; equality of the stored prefix bytes is the
   authority, so the hash just has to mix VLAN tags, addresses and
   ports (all within the first 32 bytes of an Ethernet frame) well
   enough to spread flows across slots. *)
let hash_span = 32

let prefix_hash t =
  let n = if t.len < hash_span then t.len else hash_span in
  let h = ref 0x1000193 in
  for i = 0 to n - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get t.buf (t.off + i))) * 0x100000001b3
  done;
  !h land max_int

let prefix_string t n =
  check t 0 n;
  Bytes.sub_string t.buf t.off n

let equal_string_prefix t s ~skip =
  let n = String.length s in
  n <= t.len
  &&
  let rec go i =
    i >= n
    || ((i = skip || Bytes.unsafe_get t.buf (t.off + i) = String.unsafe_get s i)
       && go (i + 1))
  in
  go 0

let reader t = Wire.Reader.of_bytes ~pos:t.off ~len:t.len t.buf
