open Netcore

type t = { buf : bytes; off : int; len : int }

let make buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Slice.make: window outside buffer";
  { buf; off; len }

let buffer t = t.buf
let off t = t.off
let length t = t.len

let check t i n =
  if i < 0 || i + n > t.len then invalid_arg "Slice: index out of range"

let get_u8 t i =
  check t i 1;
  Char.code (Bytes.unsafe_get t.buf (t.off + i))

let get_u16_be t i =
  check t i 2;
  Bytes.get_uint16_be t.buf (t.off + i)

let get_u32_be t i =
  check t i 4;
  Bytes.get_int32_be t.buf (t.off + i)

let sub t ~off ~len =
  check t off len;
  { buf = t.buf; off = t.off + off; len }

let to_bytes t = Bytes.sub t.buf t.off t.len

let equal_bytes t b =
  Bytes.length b = t.len
  &&
  let rec go i = i >= t.len || (Bytes.get t.buf (t.off + i) = Bytes.get b i && go (i + 1)) in
  go 0

let reader t = Wire.Reader.of_bytes ~pos:t.off ~len:t.len t.buf
