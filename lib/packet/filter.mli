(** A tcpdump-style capture filter language.

    Patchwork lets users restrict what is captured ("filtering to
    exclude unwanted traffic", requirement R5); this module provides the
    filter expressions that the capture paths (including the FPGA
    offload pipeline) evaluate per frame.

    Grammar (a practical subset of BPF syntax):
    {v
      expr   := expr "or" expr | expr "and" expr | "not" expr
              | "(" expr ")" | prim
      prim   := "ip" | "ip6" | "tcp" | "udp" | "icmp" | "arp"
              | "vlan" [id] | "mpls" [label]
              | ["src"|"dst"] "host" ipv4-addr
              | ["src"|"dst"] "port" number
              | "less" number | "greater" number
              | protocol-token       (e.g. "tls", "ssh", "dns")
    v} *)

type dir = Any | Src | Dst

type t =
  | True
  | Not of t
  | And of t * t
  | Or of t * t
  | Proto of string  (** matches any header whose token equals the string *)
  | Vlan of int option
  | Mpls of int option
  | Host of dir * Netcore.Ipv4_addr.t
  | Port of dir * int
  | Less of int  (** wire length <= n *)
  | Greater of int  (** wire length >= n *)

val matches : t -> Frame.t -> bool
(** Evaluate a filter against a decoded frame. *)

val parse : string -> (t, string) result
(** Parse filter syntax.  The empty string parses to {!True}. *)

val to_string : t -> string
(** Render back to parseable syntax. *)
