type tcp_flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
  ece : bool;
  cwr : bool;
}

let flags_none =
  { syn = false; ack = false; fin = false; rst = false; psh = false;
    urg = false; ece = false; cwr = false }

let flags_syn = { flags_none with syn = true }
let flags_synack = { flags_none with syn = true; ack = true }
let flags_ack = { flags_none with ack = true }
let flags_psh_ack = { flags_none with psh = true; ack = true }
let flags_fin_ack = { flags_none with fin = true; ack = true }
let flags_rst = { flags_none with rst = true }

type ethernet = { src : Netcore.Mac.t; dst : Netcore.Mac.t }
type vlan = { pcp : int; dei : bool; vid : int }
type mpls = { label : int; tc : int; ttl : int }

type ipv4 = {
  src : Netcore.Ipv4_addr.t;
  dst : Netcore.Ipv4_addr.t;
  dscp : int;
  ttl : int;
  ident : int;
  dont_fragment : bool;
}

type ipv6 = {
  src : Netcore.Ipv6_addr.t;
  dst : Netcore.Ipv6_addr.t;
  traffic_class : int;
  flow_label : int;
  hop_limit : int;
}

type tcp = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_seq : int32;
  flags : tcp_flags;
  window : int;
}

type udp = { src_port : int; dst_port : int }
type icmp = { icmp_type : int; icmp_code : int }

type arp = {
  operation : [ `Request | `Reply ];
  sender_mac : Netcore.Mac.t;
  sender_ip : Netcore.Ipv4_addr.t;
  target_mac : Netcore.Mac.t;
  target_ip : Netcore.Ipv4_addr.t;
}

type header =
  | Ethernet of ethernet
  | Vlan of vlan
  | Mpls of mpls
  | Pseudowire
  | Ipv4 of ipv4
  | Ipv6 of ipv6
  | Tcp of tcp
  | Udp of udp
  | Icmpv4 of icmp
  | Icmpv6 of icmp
  | Arp of arp
  | Vxlan of { vni : int }
  | Tls of { content_type : int }
  | Ssh
  | Http of [ `Request | `Response ]
  | Dns of { query : bool; id : int }
  | Ntp
  | Quic

let ssh_banner = "SSH-2.0-OpenSSH_8.9\r\n"
let http_request_line = "GET / HTTP/1.1\r\n"
let http_response_line = "HTTP/1.1 200 OK\r\n"
let quic_header_len = 16

let size = function
  | Ethernet _ -> 14
  | Vlan _ -> 4
  | Mpls _ -> 4
  | Pseudowire -> 4
  | Ipv4 _ -> 20
  | Ipv6 _ -> 40
  | Tcp _ -> 20
  | Udp _ -> 8
  | Icmpv4 _ | Icmpv6 _ -> 8
  | Arp _ -> 28
  | Vxlan _ -> 8
  | Tls _ -> 5
  | Ssh -> String.length ssh_banner
  | Http `Request -> String.length http_request_line
  | Http `Response -> String.length http_response_line
  | Dns _ -> 12
  | Ntp -> 48
  | Quic -> quic_header_len

let name = function
  | Ethernet _ -> "eth"
  | Vlan _ -> "vlan"
  | Mpls _ -> "mpls"
  | Pseudowire -> "pw"
  | Ipv4 _ -> "ipv4"
  | Ipv6 _ -> "ipv6"
  | Tcp _ -> "tcp"
  | Udp _ -> "udp"
  | Icmpv4 _ -> "icmp"
  | Icmpv6 _ -> "icmpv6"
  | Arp _ -> "arp"
  | Vxlan _ -> "vxlan"
  | Tls _ -> "tls"
  | Ssh -> "ssh"
  | Http _ -> "http"
  | Dns _ -> "dns"
  | Ntp -> "ntp"
  | Quic -> "quic"

let ethertype_for = function
  | Vlan _ -> 0x8100
  | Mpls _ -> 0x8847
  | Ipv4 _ -> 0x0800
  | Ipv6 _ -> 0x86DD
  | Arp _ -> 0x0806
  | h -> invalid_arg ("Headers.ethertype_for: " ^ name h ^ " cannot follow Ethernet")

let ip_protocol_for = function
  | Tcp _ -> 6
  | Udp _ -> 17
  | Icmpv4 _ -> 1
  | Icmpv6 _ -> 58
  | h -> invalid_arg ("Headers.ip_protocol_for: " ^ name h ^ " cannot follow IP")

let well_known_port = function
  | Tls _ -> Some 443
  | Ssh -> Some 22
  | Http _ -> Some 80
  | Dns _ -> Some 53
  | Ntp -> Some 123
  | Quic -> Some 443
  | Vxlan _ -> Some 4789
  | Ethernet _ | Vlan _ | Mpls _ | Pseudowire | Ipv4 _ | Ipv6 _ | Tcp _
  | Udp _ | Icmpv4 _ | Icmpv6 _ | Arp _ ->
    None

let pp ppf h =
  match h with
  | Ethernet { src; dst } ->
    Format.fprintf ppf "eth %a > %a" Netcore.Mac.pp src Netcore.Mac.pp dst
  | Vlan { vid; _ } -> Format.fprintf ppf "vlan %d" vid
  | Mpls { label; _ } -> Format.fprintf ppf "mpls %d" label
  | Pseudowire -> Format.pp_print_string ppf "pw"
  | Ipv4 { src; dst; _ } ->
    Format.fprintf ppf "ipv4 %a > %a" Netcore.Ipv4_addr.pp src Netcore.Ipv4_addr.pp dst
  | Ipv6 { src; dst; _ } ->
    Format.fprintf ppf "ipv6 %a > %a" Netcore.Ipv6_addr.pp src Netcore.Ipv6_addr.pp dst
  | Tcp { src_port; dst_port; flags; _ } ->
    let flag_str =
      String.concat ""
        [
          (if flags.syn then "S" else "");
          (if flags.fin then "F" else "");
          (if flags.rst then "R" else "");
          (if flags.psh then "P" else "");
          (if flags.ack then "." else "");
        ]
    in
    Format.fprintf ppf "tcp %d > %d [%s]" src_port dst_port flag_str
  | Udp { src_port; dst_port } -> Format.fprintf ppf "udp %d > %d" src_port dst_port
  | Icmpv4 { icmp_type; icmp_code } -> Format.fprintf ppf "icmp %d/%d" icmp_type icmp_code
  | Icmpv6 { icmp_type; icmp_code } -> Format.fprintf ppf "icmpv6 %d/%d" icmp_type icmp_code
  | Arp { operation; _ } ->
    Format.fprintf ppf "arp %s" (match operation with `Request -> "who-has" | `Reply -> "is-at")
  | Vxlan { vni } -> Format.fprintf ppf "vxlan %d" vni
  | Tls { content_type } -> Format.fprintf ppf "tls ct=%d" content_type
  | Ssh -> Format.pp_print_string ppf "ssh"
  | Http `Request -> Format.pp_print_string ppf "http req"
  | Http `Response -> Format.pp_print_string ppf "http resp"
  | Dns { query; id } -> Format.fprintf ppf "dns %s id=%d" (if query then "query" else "response") id
  | Ntp -> Format.pp_print_string ppf "ntp"
  | Quic -> Format.pp_print_string ppf "quic"
