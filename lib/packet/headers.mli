(** Protocol header descriptions.

    A frame is modelled as a stack of typed headers (outermost first)
    followed by an opaque payload.  The set of protocols mirrors what
    Patchwork observed on FABRIC: Ethernet with VLAN/MPLS/PseudoWire
    virtualization tags, IPv4/IPv6, TCP/UDP/ICMP/ARP, a VXLAN
    encapsulation, and application-layer protocols that Wireshark-style
    dissection classifies by well-known port. *)

type tcp_flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
  ece : bool;
  cwr : bool;
}

val flags_none : tcp_flags
val flags_syn : tcp_flags
val flags_synack : tcp_flags
val flags_ack : tcp_flags
val flags_psh_ack : tcp_flags
val flags_fin_ack : tcp_flags
val flags_rst : tcp_flags

type ethernet = { src : Netcore.Mac.t; dst : Netcore.Mac.t }
type vlan = { pcp : int; dei : bool; vid : int }
type mpls = { label : int; tc : int; ttl : int }

type ipv4 = {
  src : Netcore.Ipv4_addr.t;
  dst : Netcore.Ipv4_addr.t;
  dscp : int;
  ttl : int;
  ident : int;
  dont_fragment : bool;
}

type ipv6 = {
  src : Netcore.Ipv6_addr.t;
  dst : Netcore.Ipv6_addr.t;
  traffic_class : int;
  flow_label : int;
  hop_limit : int;
}

type tcp = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_seq : int32;
  flags : tcp_flags;
  window : int;
}

type udp = { src_port : int; dst_port : int }
type icmp = { icmp_type : int; icmp_code : int }

type arp = {
  operation : [ `Request | `Reply ];
  sender_mac : Netcore.Mac.t;
  sender_ip : Netcore.Ipv4_addr.t;
  target_mac : Netcore.Mac.t;
  target_ip : Netcore.Ipv4_addr.t;
}

type header =
  | Ethernet of ethernet
  | Vlan of vlan
  | Mpls of mpls
  | Pseudowire  (** 4-byte all-zero PW control word; followed by Ethernet *)
  | Ipv4 of ipv4
  | Ipv6 of ipv6
  | Tcp of tcp
  | Udp of udp
  | Icmpv4 of icmp
  | Icmpv6 of icmp
  | Arp of arp
  | Vxlan of { vni : int }  (** over UDP 4789; followed by inner Ethernet *)
  | Tls of { content_type : int }  (** 5-byte TLS record header *)
  | Ssh  (** protocol version banner *)
  | Http of [ `Request | `Response ]  (** request/status line prefix *)
  | Dns of { query : bool; id : int }  (** 12-byte DNS header *)
  | Ntp  (** 48-byte NTPv4 header *)
  | Quic  (** QUIC long header prefix *)

val size : header -> int
(** Encoded size of a header in bytes. *)

val name : header -> string
(** Short lowercase protocol token, e.g. ["ipv4"], ["mpls"], ["tls"].
    These tokens are shared with the dissector and the analysis
    pipeline. *)

val ethertype_for : header -> int
(** EtherType announcing [header] as the next layer after
    Ethernet/VLAN.  Raises [Invalid_argument] for layers that cannot
    directly follow Ethernet. *)

val ip_protocol_for : header -> int
(** IP protocol number announcing [header] after IPv4/IPv6. *)

val well_known_port : header -> int option
(** The port by which dissection classifies an application header
    ([Some 443] for TLS, [Some 22] for SSH, ...); [None] for
    non-application layers. *)

val pp : Format.formatter -> header -> unit

(** {2 Wire constants shared with the codec and dissector} *)

val ssh_banner : string
val http_request_line : string
val http_response_line : string
val quic_header_len : int
