(** An offset/length view into a shared immutable capture buffer.

    The indexed decode path never copies packet payloads: the pcap and
    pcapng readers produce record indexes ({!Pcap.index_entry}), each of
    which resolves to a slice of the single capture buffer, and the
    dissectors read headers in place through this API.  All accessors
    are bounds-checked against the slice, never the whole buffer, so a
    dissector can only see its own record's bytes.

    The underlying buffer must not be mutated while slices over it are
    live (capture buffers are write-once). *)

type t

val make : bytes -> off:int -> len:int -> t
(** View of [len] bytes of the buffer starting at [off].  Raises
    [Invalid_argument] when the window falls outside the buffer. *)

val buffer : t -> bytes
(** The shared underlying buffer (not a copy). *)

val off : t -> int
(** Offset of the slice within {!buffer}. *)

val length : t -> int

val get_u8 : t -> int -> int
(** Byte at slice-relative index.  Raises [Invalid_argument] out of
    range, as do all accessors below. *)

val get_u16_be : t -> int -> int
val get_u32_be : t -> int -> int32

val get_u8_fast : t -> int -> int
(** One-bounds-check-then-unsafe reads for the overlay dissection
    cursor: the window check runs exactly once per call, then the bytes
    are read with [Bytes.unsafe_get] — no second check inside the
    [Bytes] accessors and, for the 32-bit read, no int32 boxing.
    Behaviour is identical to the checked accessors on every in-window
    index and [Invalid_argument] out of window (qcheck'd). *)

val get_u16_be_fast : t -> int -> int

val get_u32_be_fast : t -> int -> int
(** Returns the big-endian 32-bit field as a plain non-negative [int]
    (numerically equal to the unsigned value of {!get_u32_be}). *)

val sub : t -> off:int -> len:int -> t
(** Narrowed view; offsets are slice-relative.  No copy. *)

val to_bytes : t -> bytes
(** Copy the viewed bytes out (the only copying operation here). *)

val equal_bytes : t -> bytes -> bool
(** Content equality against a materialized buffer, without copying. *)

val prefix_hash : t -> int
(** FNV-1a hash of the first [min 32 (length t)] bytes.  Non-negative
    and deterministic; the flow cache uses it to pick a slot but never
    to decide a hit — {!equal_string_prefix} is the authority. *)

val prefix_string : t -> int -> string
(** Copy of the first [n] bytes.  Raises [Invalid_argument] when the
    slice is shorter than [n]. *)

val equal_string_prefix : t -> string -> skip:int -> bool
(** The first [String.length s] slice bytes equal [s], ignoring the
    byte at index [skip] (pass -1 to compare every byte).  [false]
    when the slice is shorter than [s], never an exception. *)

val reader : t -> Netcore.Wire.Reader.t
(** A bounds-checked cursor over exactly the viewed bytes; this is how
    the dissectors consume a slice. *)
