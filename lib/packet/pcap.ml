type packet = { ts : float; orig_len : int; data : bytes }

type index_entry = { ts : float; orig_len : int; data_off : int; cap_len : int }

let magic_be = 0xA1B2C3D4l
let magic_le = 0xD4C3B2A1l
let linktype_ethernet = 1l

module Writer = struct
  type t = { snaplen : int; buf : Buffer.t; mutable count : int }

  let write_u32_be buf v =
    Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xFF));
    Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xFF));
    Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xFF));
    Buffer.add_char buf (Char.chr (Int32.to_int v land 0xFF))

  let write_u16_be buf v =
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (v land 0xFF))

  let create ?(snaplen = 65535) () =
    if snaplen <= 0 then invalid_arg "Pcap.Writer.create: snaplen must be positive";
    let buf = Buffer.create 4096 in
    write_u32_be buf magic_be;
    write_u16_be buf 2 (* version major *);
    write_u16_be buf 4 (* version minor *);
    write_u32_be buf 0l (* thiszone *);
    write_u32_be buf 0l (* sigfigs *);
    write_u32_be buf (Int32.of_int snaplen);
    write_u32_be buf linktype_ethernet;
    { snaplen; buf; count = 0 }

  let snaplen t = t.snaplen

  let add t ~ts ?orig_len data =
    let orig_len = match orig_len with Some l -> l | None -> Bytes.length data in
    if orig_len < 0 then invalid_arg "Pcap.Writer.add: negative orig_len";
    (* The spec requires incl_len <= orig_len: a caller claiming fewer
       original bytes than it hands us gets the excess dropped. *)
    let incl_len = min (min (Bytes.length data) t.snaplen) orig_len in
    let sec = int_of_float ts in
    (* Round (not truncate) to the nearest microsecond: truncation biases
       every timestamp down by up to 1us.  Rounding near a whole second can
       then yield usec = 1_000_000 (e.g. ts = Float.pred 2.0); carry it
       into sec so the field stays in [0, 999999]. *)
    let usec = int_of_float (Float.round ((ts -. float_of_int sec) *. 1e6)) in
    let sec, usec =
      if usec >= 1_000_000 then (sec + 1, usec - 1_000_000)
      else (sec, max 0 usec)
    in
    write_u32_be t.buf (Int32.of_int sec);
    write_u32_be t.buf (Int32.of_int usec);
    write_u32_be t.buf (Int32.of_int incl_len);
    write_u32_be t.buf (Int32.of_int orig_len);
    Buffer.add_subbytes t.buf data 0 incl_len;
    t.count <- t.count + 1

  let add_frame t ~ts frame =
    let data = Codec.encode frame in
    add t ~ts ~orig_len:(Bytes.length data) data

  let packet_count t = t.count
  let byte_length t = Buffer.length t.buf
  let contents t = Buffer.to_bytes t.buf

  let to_file t path =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Buffer.output_buffer oc t.buf)
end

module Reader = struct
  exception Malformed of string

  type endian = Big | Little

  let u32 endian buf pos =
    match endian with
    | Big ->
      Int32.logor
        (Int32.shift_left (Int32.of_int (Bytes.get_uint16_be buf pos)) 16)
        (Int32.of_int (Bytes.get_uint16_be buf (pos + 2)))
    | Little ->
      Int32.logor
        (Int32.shift_left (Int32.of_int (Bytes.get_uint16_le buf (pos + 2))) 16)
        (Int32.of_int (Bytes.get_uint16_le buf pos))

  (* Record-header fields are unsigned 32-bit quantities that must fit
     a sane range; a top bit set means a corrupt (or hostile) capture,
     and silently masking it would wrap a huge length into a bogus
     small one that desynchronizes the rest of the record walk. *)
  let u32_int endian buf pos =
    let v = u32 endian buf pos in
    if Int32.compare v 0l < 0 then
      raise (Malformed (Printf.sprintf "field out of range: 0x%08lx" v));
    Int32.to_int v

  let header buf =
    if Bytes.length buf < 24 then raise (Malformed "file shorter than global header");
    let raw_magic = u32 Big buf 0 in
    if Int32.equal raw_magic magic_be then Big
    else if Int32.equal raw_magic magic_le then Little
    else raise (Malformed (Printf.sprintf "bad magic 0x%08lx" raw_magic))

  let snaplen buf =
    let endian = header buf in
    u32_int endian buf 16

  (* First pass of the indexed decode: walk record headers only (never
     payload bytes) and emit one offset/length/timestamp entry per
     record.  Everything downstream — slicing, parallel dissection, the
     compatibility [packets] list — derives from this single walk. *)
  let index buf =
    let endian = header buf in
    let snaplen = u32_int endian buf 16 in
    let len = Bytes.length buf in
    let entries = ref [] in
    let pos = ref 24 in
    while !pos <> len do
      if !pos + 16 > len then raise (Malformed "truncated record header");
      let sec = u32_int endian buf !pos in
      let usec = u32_int endian buf (!pos + 4) in
      let incl_len = u32_int endian buf (!pos + 8) in
      let orig_len = u32_int endian buf (!pos + 12) in
      if incl_len > snaplen then
        raise
          (Malformed
             (Printf.sprintf "incl_len %d exceeds snaplen %d" incl_len snaplen));
      if !pos + 16 + incl_len > len then raise (Malformed "truncated packet data");
      let ts = float_of_int sec +. (float_of_int usec /. 1e6) in
      entries :=
        { ts; orig_len; data_off = !pos + 16; cap_len = incl_len } :: !entries;
      pos := !pos + 16 + incl_len
    done;
    Array.of_list (List.rev !entries)

  let slice buf (e : index_entry) = Slice.make buf ~off:e.data_off ~len:e.cap_len

  let packet_of_entry buf (e : index_entry) =
    { ts = e.ts; orig_len = e.orig_len; data = Bytes.sub buf e.data_off e.cap_len }

  let fold buf ~init ~f =
    Array.fold_left (fun acc e -> f acc (packet_of_entry buf e)) init (index buf)

  let packets buf = List.rev (fold buf ~init:[] ~f:(fun acc p -> p :: acc))

  let of_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        let buf = Bytes.create len in
        really_input ic buf 0 len;
        packets buf)
end
