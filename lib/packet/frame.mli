(** Frames: a stack of headers plus an opaque payload length.

    The stack is ordered outermost-first, e.g.
    [Ethernet; Vlan; Mpls; Pseudowire; Ethernet; Ipv4; Tcp; Tls]. *)

type t = { headers : Headers.header list; payload_len : int }

val make : Headers.header list -> payload_len:int -> t
(** Builds a frame after checking stack well-formedness with
    {!validate}; raises [Invalid_argument] if the stack is malformed. *)

val validate : Headers.header list -> (unit, string) result
(** Checks layering rules: frames start with Ethernet; VLAN follows
    Ethernet/VLAN; MPLS follows Ethernet/VLAN/MPLS; PseudoWire follows
    MPLS and precedes Ethernet; IP follows Ethernet/VLAN/MPLS; L4
    follows IP; application layers follow TCP/UDP; VXLAN follows UDP and
    precedes Ethernet. *)

val min_wire_size : int
(** 60 bytes: minimum Ethernet frame without FCS. *)

val wire_length : t -> int
(** On-the-wire length in bytes (headers + payload, padded to
    {!min_wire_size}). *)

val header_size_total : t -> int

val depth : t -> int
(** Number of headers in the stack. *)

val is_jumbo : t -> bool
(** Wire length exceeds the standard 1518-byte maximum. *)

val l3 : t -> Headers.header option
(** The innermost network-layer header (IPv4/IPv6/ARP), if any. *)

val l4 : t -> Headers.header option
(** The innermost transport-layer header (TCP/UDP/ICMP), if any. *)

val vlan_ids : t -> int list
(** All VLAN ids, outermost first. *)

val mpls_labels : t -> int list
(** All MPLS labels, outermost first. *)

val tokens : t -> string list
(** Protocol token of every header, outermost first. *)

val pp : Format.formatter -> t -> unit
