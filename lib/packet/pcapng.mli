(** The pcapng capture format (Section Header + Interface Description +
    Enhanced Packet blocks).

    Modern Wireshark writes pcapng by default, so the offline pipeline
    accepts it alongside classic pcap.  The writer emits one section
    with a single Ethernet interface at microsecond resolution; the
    reader handles both byte orders, skips unknown block types, and
    tolerates multiple interfaces (all packets are returned in file
    order). *)

val write : ?snaplen:int -> Pcap.packet list -> bytes
(** Encode packets into a single-section pcapng stream. *)

val writer_of_frames : ?snaplen:int -> (float * Frame.t) list -> bytes
(** Convenience: encode frames and wrap them. *)

exception Malformed of string

val index : bytes -> Pcap.index_entry array
(** First pass of the indexed decode: walk block headers sequentially
    and return one entry per Enhanced/Simple Packet block of every
    section, each resolving to a zero-copy {!Slice.t} via
    {!Pcap.Reader.slice}.  Raises {!Malformed} on bad block structure. *)

val packets : bytes -> Pcap.packet list
(** Decode every Enhanced/Simple Packet block of every section. *)

val is_pcapng : bytes -> bool
(** Checks the magic block type (and so distinguishes pcapng from
    classic pcap). *)

val index_any : bytes -> Pcap.index_entry array
(** Dispatch on magic: classic pcap or pcapng index. *)

val read_any : bytes -> Pcap.packet list
(** Dispatch on magic: classic pcap or pcapng. *)
