(** The libpcap capture-file format (v2.4, LINKTYPE_ETHERNET).

    Patchwork's capture paths all produce pcap files and the analysis
    pipeline consumes them, so this codec is the interchange point
    between the two halves of the system.  Files written here are
    readable by tcpdump/Wireshark (big-endian byte order, which readers
    detect from the magic number). *)

type packet = {
  ts : float;  (** capture timestamp, seconds (microsecond precision) *)
  orig_len : int;  (** original frame length on the wire *)
  data : bytes;  (** captured bytes, possibly truncated to the snaplen *)
}

type index_entry = {
  ts : float;
  orig_len : int;
  data_off : int;  (** byte offset of the captured data in the buffer *)
  cap_len : int;  (** captured length *)
}
(** One record of a capture index: where a packet's bytes live inside
    the shared capture buffer.  Produced by {!Reader.index} (and
    {!Pcapng.index}); resolves to a {!Slice.t} without copying. *)

module Writer : sig
  type t

  val create : ?snaplen:int -> unit -> t
  (** In-memory pcap writer.  [snaplen] (default 65535) truncates stored
      packet bytes, as a capture snap length does. *)

  val snaplen : t -> int

  val add : t -> ts:float -> ?orig_len:int -> bytes -> unit
  (** Append a raw packet.  [orig_len] defaults to the byte length. *)

  val add_frame : t -> ts:float -> Frame.t -> unit
  (** Encode a {!Frame.t} and append it. *)

  val packet_count : t -> int

  val byte_length : t -> int
  (** Total encoded size so far, including the global header. *)

  val contents : t -> bytes
  val to_file : t -> string -> unit
end

module Reader : sig
  exception Malformed of string

  val index : bytes -> index_entry array
  (** First pass of the indexed decode: walk record headers sequentially
      (payload bytes are never touched) and return one entry per record.
      Raises {!Malformed} on a bad magic number, a truncated record, a
      record-header field with the top bit set (a corrupt length or
      timestamp ≥ 2{^31}), or an [incl_len] exceeding the file's declared
      snaplen. *)

  val slice : bytes -> index_entry -> Slice.t
  (** The captured bytes of an indexed record, as a zero-copy view. *)

  val packet_of_entry : bytes -> index_entry -> packet
  (** Materialize an indexed record (copies the data; the compatibility
      path). *)

  val packets : bytes -> packet list
  (** Decode a whole capture.  Raises {!Malformed} on a bad magic number
      or a truncated record. *)

  val fold : bytes -> init:'a -> f:('a -> packet -> 'a) -> 'a
  val snaplen : bytes -> int
  val of_file : string -> packet list
end
