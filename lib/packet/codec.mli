(** Wire encoding of frames.

    [encode] produces the exact on-the-wire byte sequence (without the
    Ethernet FCS, matching what pcap captures contain): big-endian
    fields, correct EtherType/protocol chaining, IPv4/TCP/UDP checksums,
    and zero padding up to the 60-byte Ethernet minimum.  The dissector
    ({!Dissect}) is the inverse of this function, and the two are tested
    against each other by round-trip properties. *)

val encode : ?payload_byte:char -> Frame.t -> bytes
(** Encode a frame.  The opaque payload is filled with [payload_byte]
    (default ['\x00']). *)

val encoded_length : Frame.t -> int
(** Length [encode] will produce, without building the bytes. *)
