open Netcore

type fixup =
  | Fix_ipv4 of int  (* header start: patch total length, then checksum *)
  | Fix_ipv6 of int  (* header start: patch payload length *)
  | Fix_udp of int * ip_ctx  (* header start + enclosing IP *)
  | Fix_tcp of int * ip_ctx

and ip_ctx = Ctx_v4 of int | Ctx_v6 of int  (* position of enclosing IP header *)

let tcp_flags_byte (f : Headers.tcp_flags) =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)
  lor (if f.urg then 0x20 else 0)
  lor (if f.ece then 0x40 else 0)
  lor (if f.cwr then 0x80 else 0)

(* EtherType of the layer following an Ethernet/VLAN header; payload-only
   frames after Ethernet get an experimental EtherType. *)
let ethertype_of_next = function
  | Some h -> Headers.ethertype_for h
  | None -> 0x88B5

let ip_protocol_of_next = function
  | Some h -> Headers.ip_protocol_for h
  | None -> 0xFD (* experimental *)

let encode_header w (h : Headers.header) (next : Headers.header option) ip_ctx fixups =
  let pos = Wire.Writer.length w in
  (match h with
  | Ethernet { src; dst } ->
    let put_mac m = Array.iter (fun o -> Wire.Writer.u8 w o) (Mac.to_octets m) in
    put_mac dst;
    put_mac src;
    Wire.Writer.u16 w (ethertype_of_next next)
  | Vlan { pcp; dei; vid } ->
    Wire.Writer.u16 w ((pcp lsl 13) lor ((if dei then 1 else 0) lsl 12) lor (vid land 0xFFF));
    Wire.Writer.u16 w (ethertype_of_next next)
  | Mpls { label; tc; ttl } ->
    let bos = match next with Some (Headers.Mpls _) -> 0 | _ -> 1 in
    let word =
      Int32.logor
        (Int32.shift_left (Int32.of_int (label land 0xFFFFF)) 12)
        (Int32.of_int (((tc land 0x7) lsl 9) lor (bos lsl 8) lor (ttl land 0xFF)))
    in
    Wire.Writer.u32 w word
  | Pseudowire ->
    (* All-zero control word: first nibble 0 distinguishes it from IPv4/IPv6. *)
    Wire.Writer.u32 w 0l
  | Ipv4 { dscp; ttl; ident; dont_fragment; src; dst } ->
    Wire.Writer.u8 w 0x45;
    Wire.Writer.u8 w (dscp lsl 2);
    Wire.Writer.u16 w 0 (* total length: fixed up *);
    Wire.Writer.u16 w ident;
    Wire.Writer.u16 w (if dont_fragment then 0x4000 else 0);
    Wire.Writer.u8 w ttl;
    Wire.Writer.u8 w (ip_protocol_of_next next);
    Wire.Writer.u16 w 0 (* header checksum: fixed up *);
    Wire.Writer.u32 w (Ipv4_addr.to_int32 src);
    Wire.Writer.u32 w (Ipv4_addr.to_int32 dst);
    fixups := Fix_ipv4 pos :: !fixups
  | Ipv6 { traffic_class; flow_label; hop_limit; src; dst } ->
    let word =
      Int32.logor
        (Int32.shift_left 6l 28)
        (Int32.logor
           (Int32.shift_left (Int32.of_int (traffic_class land 0xFF)) 20)
           (Int32.of_int (flow_label land 0xFFFFF)))
    in
    Wire.Writer.u32 w word;
    Wire.Writer.u16 w 0 (* payload length: fixed up *);
    Wire.Writer.u8 w (ip_protocol_of_next next);
    Wire.Writer.u8 w hop_limit;
    let shi, slo = Ipv6_addr.halves src and dhi, dlo = Ipv6_addr.halves dst in
    Wire.Writer.u64 w shi;
    Wire.Writer.u64 w slo;
    Wire.Writer.u64 w dhi;
    Wire.Writer.u64 w dlo;
    fixups := Fix_ipv6 pos :: !fixups
  | Tcp { src_port; dst_port; seq; ack_seq; flags; window } ->
    Wire.Writer.u16 w src_port;
    Wire.Writer.u16 w dst_port;
    Wire.Writer.u32 w seq;
    Wire.Writer.u32 w ack_seq;
    Wire.Writer.u8 w 0x50 (* data offset 5, no options *);
    Wire.Writer.u8 w (tcp_flags_byte flags);
    Wire.Writer.u16 w window;
    Wire.Writer.u16 w 0 (* checksum: fixed up *);
    Wire.Writer.u16 w 0 (* urgent pointer *);
    (match ip_ctx with
    | Some ctx -> fixups := Fix_tcp (pos, ctx) :: !fixups
    | None -> ())
  | Udp { src_port; dst_port } ->
    Wire.Writer.u16 w src_port;
    Wire.Writer.u16 w dst_port;
    Wire.Writer.u16 w 0 (* length: fixed up *);
    Wire.Writer.u16 w 0 (* checksum: fixed up *);
    (match ip_ctx with
    | Some ctx -> fixups := Fix_udp (pos, ctx) :: !fixups
    | None -> ())
  | Icmpv4 { icmp_type; icmp_code } | Icmpv6 { icmp_type; icmp_code } ->
    Wire.Writer.u8 w icmp_type;
    Wire.Writer.u8 w icmp_code;
    Wire.Writer.u16 w 0 (* checksum left zero in the model *);
    Wire.Writer.u32 w 0l (* rest of header *)
  | Arp { operation; sender_mac; sender_ip; target_mac; target_ip } ->
    Wire.Writer.u16 w 1 (* htype ethernet *);
    Wire.Writer.u16 w 0x0800;
    Wire.Writer.u8 w 6;
    Wire.Writer.u8 w 4;
    Wire.Writer.u16 w (match operation with `Request -> 1 | `Reply -> 2);
    Array.iter (fun o -> Wire.Writer.u8 w o) (Mac.to_octets sender_mac);
    Wire.Writer.u32 w (Ipv4_addr.to_int32 sender_ip);
    Array.iter (fun o -> Wire.Writer.u8 w o) (Mac.to_octets target_mac);
    Wire.Writer.u32 w (Ipv4_addr.to_int32 target_ip)
  | Vxlan { vni } ->
    Wire.Writer.u8 w 0x08 (* flags: VNI valid *);
    Wire.Writer.u8 w 0;
    Wire.Writer.u16 w 0;
    Wire.Writer.u32 w (Int32.shift_left (Int32.of_int (vni land 0xFFFFFF)) 8)
  | Tls { content_type } ->
    Wire.Writer.u8 w content_type;
    Wire.Writer.u16 w 0x0303 (* TLS 1.2 record version *);
    Wire.Writer.u16 w 0 (* record length: left zero *)
  | Ssh -> Wire.Writer.string w Headers.ssh_banner
  | Http `Request -> Wire.Writer.string w Headers.http_request_line
  | Http `Response -> Wire.Writer.string w Headers.http_response_line
  | Dns { query; id } ->
    Wire.Writer.u16 w id;
    Wire.Writer.u16 w (if query then 0x0100 else 0x8180);
    Wire.Writer.u16 w 1 (* qdcount *);
    Wire.Writer.u16 w (if query then 0 else 1);
    Wire.Writer.u16 w 0;
    Wire.Writer.u16 w 0
  | Ntp ->
    Wire.Writer.u8 w 0x23 (* LI=0 VN=4 Mode=3 client *);
    Wire.Writer.u8 w 2 (* stratum *);
    Wire.Writer.u8 w 6;
    Wire.Writer.u8 w 0xEC;
    Wire.Writer.zeros w 44
  | Quic ->
    Wire.Writer.u8 w 0xC3 (* long header, initial *);
    Wire.Writer.u32 w 1l (* version *);
    Wire.Writer.u8 w 8 (* dcid length *);
    Wire.Writer.u64 w 0L;
    Wire.Writer.u8 w 0 (* scid length *);
    Wire.Writer.u8 w 0);
  pos

let apply_fixups buf total_len fixups =
  let patch_u16 pos v = Bytes.set_uint16_be buf pos (v land 0xFFFF) in
  (* Pass 1: lengths. *)
  List.iter
    (function
      | Fix_ipv4 pos -> patch_u16 (pos + 2) (total_len - pos)
      | Fix_ipv6 pos -> patch_u16 (pos + 4) (total_len - pos - 40)
      | Fix_udp (pos, _) -> patch_u16 (pos + 4) (total_len - pos)
      | Fix_tcp _ -> ())
    fixups;
  (* Pass 2: checksums (lengths are final now). *)
  let pseudo_sum ctx l4_len protocol =
    match ctx with
    | Ctx_v4 ip_pos ->
      let s = Checksum.ones_complement_sum buf ~pos:(ip_pos + 12) ~len:8 in
      let s = s + protocol + l4_len in
      s
    | Ctx_v6 ip_pos ->
      let s = Checksum.ones_complement_sum buf ~pos:(ip_pos + 8) ~len:32 in
      let s = s + protocol + l4_len in
      s
  in
  List.iter
    (function
      | Fix_ipv4 pos ->
        patch_u16 (pos + 10) 0;
        let sum = Checksum.ones_complement_sum buf ~pos ~len:20 in
        patch_u16 (pos + 10) (Checksum.finish sum)
      | Fix_ipv6 _ -> ()
      | Fix_udp (pos, ctx) ->
        let l4_len = total_len - pos in
        patch_u16 (pos + 6) 0;
        let sum =
          Checksum.ones_complement_sum buf ~pos ~len:l4_len
            ~initial:(pseudo_sum ctx l4_len 17)
        in
        let cksum = Checksum.finish sum in
        (* RFC 768: transmitted zero checksum means "none"; use 0xFFFF. *)
        patch_u16 (pos + 6) (if cksum = 0 then 0xFFFF else cksum)
      | Fix_tcp (pos, ctx) ->
        let l4_len = total_len - pos in
        patch_u16 (pos + 16) 0;
        let sum =
          Checksum.ones_complement_sum buf ~pos ~len:l4_len
            ~initial:(pseudo_sum ctx l4_len 6)
        in
        patch_u16 (pos + 16) (Checksum.finish sum))
    fixups

let encode ?(payload_byte = '\x00') (frame : Frame.t) =
  let w = Wire.Writer.create ~capacity:(Frame.wire_length frame) () in
  let fixups = ref [] in
  let rec walk ip_ctx = function
    | [] -> ()
    | h :: rest ->
      let next = match rest with [] -> None | n :: _ -> Some n in
      let pos = encode_header w h next ip_ctx fixups in
      let ip_ctx' =
        match h with
        | Headers.Ipv4 _ -> Some (Ctx_v4 pos)
        | Headers.Ipv6 _ -> Some (Ctx_v6 pos)
        | Headers.Ethernet _ -> None (* inner Ethernet resets the IP context *)
        | _ -> ip_ctx
      in
      walk ip_ctx' rest
  in
  walk None frame.headers;
  if frame.payload_len > 0 then begin
    let filler = Bytes.make frame.payload_len payload_byte in
    Wire.Writer.bytes w filler
  end;
  let unpadded = Wire.Writer.length w in
  if unpadded < Frame.min_wire_size then
    Wire.Writer.zeros w (Frame.min_wire_size - unpadded);
  let buf = Wire.Writer.contents w in
  apply_fixups buf unpadded !fixups;
  buf

let encoded_length frame = Frame.wire_length frame
