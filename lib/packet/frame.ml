type t = { headers : Headers.header list; payload_len : int }

let min_wire_size = 60

(* Layer categories used by the validation automaton. *)
type layer =
  | Start
  | After_eth
  | After_vlan
  | After_mpls
  | After_pw
  | After_ip4
  | After_ip6
  | After_l4_tcp
  | After_l4_udp
  | After_vxlan
  | Terminal

let step state (h : Headers.header) =
  match (state, h) with
  | Start, Ethernet _ -> Ok After_eth
  | Start, _ -> Error "frame must start with Ethernet"
  | (After_eth | After_vlan), Vlan _ -> Ok After_vlan
  | (After_eth | After_vlan | After_mpls), Mpls _ -> Ok After_mpls
  | After_mpls, Pseudowire -> Ok After_pw
  | After_pw, Ethernet _ -> Ok After_eth
  | After_vxlan, Ethernet _ -> Ok After_eth
  | (After_eth | After_vlan | After_mpls), Ipv4 _ -> Ok After_ip4
  | (After_eth | After_vlan | After_mpls), Ipv6 _ -> Ok After_ip6
  | (After_eth | After_vlan), Arp _ -> Ok Terminal
  | (After_ip4 | After_ip6), Tcp _ -> Ok After_l4_tcp
  | (After_ip4 | After_ip6), Udp _ -> Ok After_l4_udp
  | After_ip4, Icmpv4 _ -> Ok Terminal
  | After_ip6, Icmpv6 _ -> Ok Terminal
  | After_l4_udp, Vxlan _ -> Ok After_vxlan
  | After_l4_tcp, (Tls _ | Ssh | Http _) -> Ok Terminal
  | After_l4_udp, (Dns _ | Ntp | Quic) -> Ok Terminal
  | After_l4_tcp, Dns _ -> Ok Terminal
  | _, h -> Error (Printf.sprintf "header %s not valid at this position" (Headers.name h))

let validate headers =
  let rec go state = function
    | [] -> (
      match state with
      | Start -> Error "empty header stack"
      | After_pw -> Error "PseudoWire must be followed by Ethernet"
      | After_vxlan -> Error "VXLAN must be followed by Ethernet"
      | _ -> Ok ())
    | h :: rest -> (
      match step state h with Ok state' -> go state' rest | Error _ as e -> e)
  in
  go Start headers

let make headers ~payload_len =
  if payload_len < 0 then invalid_arg "Frame.make: negative payload";
  match validate headers with
  | Ok () -> { headers; payload_len }
  | Error msg -> invalid_arg ("Frame.make: " ^ msg)

let header_size_total t =
  List.fold_left (fun acc h -> acc + Headers.size h) 0 t.headers

let wire_length t = max min_wire_size (header_size_total t + t.payload_len)

let depth t = List.length t.headers

let is_jumbo t = wire_length t > 1518

let rec last_matching pred acc = function
  | [] -> acc
  | h :: rest -> last_matching pred (if pred h then Some h else acc) rest

let l3 t =
  let is_l3 : Headers.header -> bool = function
    | Ipv4 _ | Ipv6 _ | Arp _ -> true
    | _ -> false
  in
  last_matching is_l3 None t.headers

let l4 t =
  let is_l4 : Headers.header -> bool = function
    | Tcp _ | Udp _ | Icmpv4 _ | Icmpv6 _ -> true
    | _ -> false
  in
  last_matching is_l4 None t.headers

let vlan_ids t =
  List.filter_map
    (function Headers.Vlan { vid; _ } -> Some vid | _ -> None)
    t.headers

let mpls_labels t =
  List.filter_map
    (function Headers.Mpls { label; _ } -> Some label | _ -> None)
    t.headers

let tokens t = List.map Headers.name t.headers

let pp ppf t =
  Format.fprintf ppf "[%a] +%dB (%dB wire)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " / ")
       Headers.pp)
    t.headers t.payload_len (wire_length t)
