(* Two-stage occasion pipeline: a producer stage (simulate + gather one
   occasion) on a background domain feeding a consumer stage (analysis)
   on the calling domain through a bounded hand-off queue.

   The queue preserves order — item k is always consumed before item
   k+1 — so an order-sensitive consumer like Profile.Builder.add_report
   sees exactly the sequence a sequential loop would have produced; the
   only thing that changes is wall-clock overlap.  Each stage must own
   its resources (in particular its Parallel.Pool: a pool is owned by
   one domain at a time), which the weekly service arranges by giving
   the simulation and analysis stages separate pools. *)

type stats = {
  items : int;  (** items produced and consumed *)
  wall_s : float;  (** end-to-end wall time of the run *)
  produce_busy_s : float;  (** total seconds the producer stage worked *)
  consume_busy_s : float;  (** total seconds the consumer stage worked *)
  overlap_s : float;  (** lower bound on concurrent stage work *)
  max_depth : int;  (** high-water mark of the hand-off queue *)
}

(* Hand-off queue metrics: depth is a gauge (scrapable live via
   weekly --serve-metrics), busy/overlap accumulate across runs. *)
let obs_depth =
  Obs.Registry.gauge Obs.Registry.default "pipeline_queue_depth"
    ~help:"Occasion reports currently waiting in the pipeline hand-off queue"

let obs_produced =
  Obs.Registry.counter Obs.Registry.default "pipeline_items_produced_total"
    ~help:"Occasions finished by the pipeline's producer stage"

let obs_consumed =
  Obs.Registry.counter Obs.Registry.default "pipeline_items_consumed_total"
    ~help:"Occasions absorbed by the pipeline's consumer stage"

let obs_stage_busy stage =
  Obs.Registry.counter Obs.Registry.default "pipeline_stage_busy_seconds_total"
    ~help:"Seconds each pipeline stage spent working"
    ~labels:[ ("stage", stage) ]

let obs_overlap =
  Obs.Registry.counter Obs.Registry.default "pipeline_overlap_seconds_total"
    ~help:"Seconds the produce and consume stages provably ran concurrently"

type 'a queue = {
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  items : ('a, exn) result Queue.t;
  capacity : int;
  mutable cancelled : bool;  (* consumer died: producer should stop *)
  mutable max_depth : int;
}

let queue_create capacity =
  {
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    items = Queue.create ();
    capacity;
    cancelled = false;
    max_depth = 0;
  }

(* Push from the producer; blocks while the queue is full.  Returns
   [false] if the consumer cancelled the run (the item is dropped and
   the producer should exit). *)
let push q v =
  Mutex.lock q.lock;
  while Queue.length q.items >= q.capacity && not q.cancelled do
    Condition.wait q.not_full q.lock
  done;
  let accepted = not q.cancelled in
  if accepted then begin
    Queue.push v q.items;
    let depth = Queue.length q.items in
    if depth > q.max_depth then q.max_depth <- depth;
    Obs.Registry.set obs_depth (float_of_int depth);
    Condition.signal q.not_empty
  end;
  Mutex.unlock q.lock;
  accepted

let pop q =
  Mutex.lock q.lock;
  while Queue.is_empty q.items do
    Condition.wait q.not_empty q.lock
  done;
  let v = Queue.pop q.items in
  Obs.Registry.set obs_depth (float_of_int (Queue.length q.items));
  Condition.signal q.not_full;
  Mutex.unlock q.lock;
  v

let cancel q =
  Mutex.lock q.lock;
  q.cancelled <- true;
  Condition.broadcast q.not_full;
  Mutex.unlock q.lock

(* Sequential fallback: same observable behavior (order, stats shape),
   no overlap.  Used when the runtime cannot give us a second domain. *)
let run_sequential ~n ~produce ~consume =
  let t0 = Obs.Clock.now () in
  let pb = ref 0.0 and cb = ref 0.0 in
  for k = 0 to n - 1 do
    let p0 = Obs.Clock.now () in
    let v = produce k in
    let p1 = Obs.Clock.now () in
    consume k v;
    let p2 = Obs.Clock.now () in
    pb := !pb +. (p1 -. p0);
    cb := !cb +. (p2 -. p1);
    Obs.Registry.incr obs_produced;
    Obs.Registry.incr obs_consumed
  done;
  Obs.Registry.inc (obs_stage_busy "produce") !pb;
  Obs.Registry.inc (obs_stage_busy "consume") !cb;
  {
    items = n;
    wall_s = Obs.Clock.now () -. t0;
    produce_busy_s = !pb;
    consume_busy_s = !cb;
    overlap_s = 0.0;
    max_depth = 0;
  }

let run ?(depth = 1) ~n ~produce ~consume () =
  if depth < 1 then invalid_arg "Pipeline.run: depth must be >= 1";
  if n < 0 then invalid_arg "Pipeline.run: n must be >= 0";
  if n = 0 then
    {
      items = 0;
      wall_s = 0.0;
      produce_busy_s = 0.0;
      consume_busy_s = 0.0;
      overlap_s = 0.0;
      max_depth = 0;
    }
  else begin
    let q = queue_create depth in
    let t0 = Obs.Clock.now () in
    let produce_busy = ref 0.0 in
    let producer =
      Parallel.Background.spawn ~name:"pipeline-producer" (fun () ->
          let k = ref 0 in
          let continue = ref true in
          while !continue && !k < n do
            let item =
              let p0 = Obs.Clock.now () in
              match produce !k with
              | v ->
                produce_busy := !produce_busy +. (Obs.Clock.now () -. p0);
                Obs.Registry.incr obs_produced;
                Ok v
              | exception e ->
                produce_busy := !produce_busy +. (Obs.Clock.now () -. p0);
                Error e
            in
            let fatal = Result.is_error item in
            if not (push q item) then continue := false
            else if fatal then continue := false
            else incr k
          done)
    in
    if not (Parallel.Background.spawned producer) then
      (* Domain limit reached: degrade to the sequential loop rather
         than fail the service. *)
      run_sequential ~n ~produce ~consume
    else begin
      let consume_busy = ref 0.0 in
      let finish_producer () =
        (* Consumer is already failing: stop the producer and drop its
           outcome so the consumer's exception is the one that surfaces. *)
        cancel q;
        ignore (Parallel.Background.join producer)
      in
      (try
         for k = 0 to n - 1 do
           match pop q with
           | Error e ->
             (* Producer failed at item k: nothing further is coming. *)
             ignore (Parallel.Background.join producer);
             raise e
           | Ok v ->
             let c0 = Obs.Clock.now () in
             Fun.protect
               ~finally:(fun () ->
                 consume_busy := !consume_busy +. (Obs.Clock.now () -. c0))
               (fun () -> consume k v);
             Obs.Registry.incr obs_consumed
         done
       with e ->
         finish_producer ();
         raise e);
      (match Parallel.Background.join producer with
      | Ok () -> ()
      | Error e -> raise e);
      let wall = Obs.Clock.now () -. t0 in
      let pb = !produce_busy and cb = !consume_busy in
      (* Both stages ran inside the same wall interval, so any busy time
         beyond the wall must have been concurrent. *)
      let overlap = Float.max 0.0 (pb +. cb -. wall) in
      Obs.Registry.inc (obs_stage_busy "produce") pb;
      Obs.Registry.inc (obs_stage_busy "consume") cb;
      Obs.Registry.inc obs_overlap overlap;
      {
        items = n;
        wall_s = wall;
        produce_busy_s = pb;
        consume_busy_s = cb;
        overlap_s = overlap;
        max_depth = q.max_depth;
      }
    end
  end
