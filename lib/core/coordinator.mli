(** The Patchwork coordinator.

    Runs outside the testbed and drives the four-phase workflow of
    §6.2: {e setup} (decide sites, acquire resources with back-off),
    {e sampling} (instances cycle ports and capture), {e gathering}
    (collect captures + logs, release resources), and hands the result
    to the offline {e analysis} phase (the [Analysis] library). *)

type site_outcome =
  | Site_success
  | Site_degraded  (** ran, but with fewer instances after back-off *)
  | Site_failed of string  (** no resources or back-end errors *)
  | Site_incomplete of string  (** an instance crashed mid-run *)

type site_report = {
  report_site : string;
  outcome : site_outcome;
  instances_requested : int;
  instances_acquired : int;
  site_samples : Capture.sample list;
  cycles : int;
  storage_used : float;
}

type occasion_report = {
  occasion_start : float;
  occasion_duration : float;
  sites : site_report list;
  log : Logging.t;
}

val desired_instances_for :
  Testbed.Fablib.t -> site:string -> max_instances:int -> int
(** Availability-aware sizing helper: the largest request the site can
    currently satisfy, bounded by [max_instances].  The coordinator
    itself always asks for the full [max_instances] and lets back-off
    trim (so degraded runs are visible); this helper serves users who
    want to size a request up-front. *)

val run_occasion :
  fabric:Testbed.Fablib.t ->
  driver:Traffic.Driver.t ->
  config:Config.t ->
  ?pool:Parallel.Pool.t ->
  ?log:Logging.t ->
  ?max_instances:int ->
  start_time:float ->
  duration:float ->
  unit ->
  occasion_report
(** Execute one full profiling occasion on an engine whose current time
    is [start_time]: starts telemetry and traffic, acquires resources at
    every target site, runs all instances for [duration] seconds of
    simulated time, then gathers and releases.

    [log] supplies the run log (default: a fresh unbounded
    [Logging.create ()]); the long-running weekly service passes one
    bounded ring log shared across occasions so [/logs.json] can tail
    it.

    In [All_experiments] mode the target sites are every profilable site
    of the federation; in [Single_experiment] mode only the sites (and
    ports) of the user's slice. *)

type hook_handle

val on_occasion_complete : (occasion_report -> unit) -> hook_handle
(** Register a hook invoked (in registration order) after every
    completed occasion — the live exposition stack uses this to sample
    series and evaluate alert rules.  Exceptions are caught and logged
    as warnings into the occasion's log.  The returned handle
    unregisters the hook via {!remove_hook}, so a stopped exposition
    stack no longer receives occasions. *)

val remove_hook : hook_handle -> unit
(** Unregister a hook; idempotent. *)

val occasions_completed : unit -> int
(** Occasions completed in this process (across all entry points). *)

val ready : unit -> bool
(** At least one occasion has completed — the [/readyz] signal. *)

val all_samples : occasion_report -> Capture.sample list
val success_rate : occasion_report list -> float
(** Fraction of (occasion, site) runs that fully succeeded. *)
