(** Structured run logs.

    Every Patchwork instance logs network- and host-related events so
    that users can notice problems after the fact (requirement R3); the
    logs travel with the captures to the coordinator and feed the
    success/failure analysis of Fig. 10. *)

type level = Debug | Info | Warning | Error

type entry = {
  time : float;
  level : level;
  component : string;  (** e.g. ["STAR/instance-0"] *)
  event : string;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity = 0] (the default) retains every entry; a positive
    [capacity] keeps the newest entries in a fixed-size ring buffer,
    evicting the oldest — the long-running weekly service uses this to
    bound memory.  Per-level counters (hence {!count}) always reflect
    every logged event, evicted or not. *)

val capacity : t -> int
val log : t -> time:float -> level:level -> component:string -> string -> unit

val entries : t -> entry list
(** Retained entries, oldest first. *)

val count : ?min_level:level -> t -> int
(** Events logged at [min_level] or above, O(1) (includes entries a ring
    buffer has since evicted). *)

val retained : t -> int
(** Entries currently held. *)

val dropped : t -> int
(** Events evicted by the ring buffer ([count] minus [retained]). *)

val next_seq : t -> int
(** The sequence number the next logged entry will get.  Entries are
    numbered monotonically from 0 in log order; numbering survives ring
    eviction, so a tailing client can detect gaps. *)

val drain_since : t -> seq:int -> (int * entry) list
(** Retained entries with sequence number [>= seq], oldest first, each
    paired with its number.  Pass the last seen seq + 1 (or
    {!next_seq} from a previous call) to tail incrementally; if the
    oldest returned seq is greater than [seq], the ring evicted entries
    in between.  Safe to call from any domain. *)

val errors : t -> entry list
(** Retained [Error] entries, oldest first. *)

val level_name : level -> string
val pp_entry : Format.formatter -> entry -> unit
