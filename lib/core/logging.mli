(** Structured run logs.

    Every Patchwork instance logs network- and host-related events so
    that users can notice problems after the fact (requirement R3); the
    logs travel with the captures to the coordinator and feed the
    success/failure analysis of Fig. 10. *)

type level = Debug | Info | Warning | Error

type entry = {
  time : float;
  level : level;
  component : string;  (** e.g. ["STAR/instance-0"] *)
  event : string;
}

type t

val create : unit -> t
val log : t -> time:float -> level:level -> component:string -> string -> unit
val entries : t -> entry list
(** Oldest first. *)

val count : ?min_level:level -> t -> int
val errors : t -> entry list
val level_name : level -> string
val pp_entry : Format.formatter -> entry -> unit
