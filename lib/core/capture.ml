module Switch = Testbed.Switch
module Fablib = Testbed.Fablib
module Flow_model = Traffic.Flow_model

type stats = {
  offered_frames : float;
  switch_dropped : float;
  host_dropped : float;
  captured_frames : float;
  stored_bytes : float;
  flow_estimate : float;
  congestion_detected : bool;
}

type sample = {
  sample_site : string;
  sample_port : int;
  sample_start : float;
  sample_duration : float;
  acaps : Dissect.Acap.record list;
  materialized_fraction : float;
  pcap : bytes option;
  stats : stats;
}

(* Aggregate capture counters, registered at module init so the
   families exist (at zero) in every snapshot — the offline analyze
   path never runs a capture but its metrics dump still shows the
   switch/host drop series.  Per-site series are registered on first
   use. *)
let obs_offered =
  Obs.Registry.counter Obs.Registry.default "capture_offered_frames_total"
    ~help:"Frames offered to the mirror across all sites"

let obs_switch_dropped =
  Obs.Registry.counter Obs.Registry.default "capture_switch_dropped_frames_total"
    ~help:"Frames dropped at the switch mirror (egress overflow)"

let obs_host_dropped =
  Obs.Registry.counter Obs.Registry.default "capture_host_dropped_frames_total"
    ~help:"Frames dropped at the capture host (capacity exceeded)"

let obs_captured =
  Obs.Registry.counter Obs.Registry.default "capture_frames_total"
    ~help:"Frames captured and stored"

let obs_stored_bytes =
  Obs.Registry.counter Obs.Registry.default "capture_stored_bytes_total"
    ~help:"Bytes written to capture storage"

let obs_congestion =
  Obs.Registry.counter Obs.Registry.default "capture_congestion_samples_total"
    ~help:"Samples taken while the mirror channel was congested"

let site_counter name site =
  Obs.Registry.counter Obs.Registry.default name ~labels:[ ("site", site) ]

let record_sample_metrics ~site ~offered ~switch_dropped ~host_dropped ~captured
    ~stored ~congested =
  if Obs.Registry.enabled () then begin
    Obs.Registry.inc obs_offered offered;
    Obs.Registry.inc obs_switch_dropped switch_dropped;
    Obs.Registry.inc obs_host_dropped host_dropped;
    Obs.Registry.inc obs_captured captured;
    Obs.Registry.inc obs_stored_bytes stored;
    Obs.Registry.inc (site_counter "capture_offered_frames_total" site) offered;
    Obs.Registry.inc
      (site_counter "capture_switch_dropped_frames_total" site)
      switch_dropped;
    Obs.Registry.inc (site_counter "capture_host_dropped_frames_total" site) host_dropped;
    Obs.Registry.inc (site_counter "capture_frames_total" site) captured;
    if congested then begin
      Obs.Registry.incr obs_congestion;
      Obs.Registry.incr (site_counter "capture_congestion_samples_total" site)
    end
  end

let method_capacity_pps (config : Config.t) =
  let p = config.Config.host_profile in
  match config.Config.capture_method with
  | Config.Tcpdump -> Hostmodel.Host_profile.kernel_capacity_pps p
  | Config.Dpdk { cores } ->
    Hostmodel.Host_profile.dpdk_capacity_pps p ~cores
      ~truncation:config.Config.truncation
  | Config.Fpga_dpdk { cores; fpga } ->
    (* The FPGA samples/filters at line rate; the host only sees the
       survivors, so its effective capacity scales up by the sampling
       factor. *)
    let host =
      Hostmodel.Host_profile.dpdk_capacity_pps p ~cores
        ~truncation:(min config.Config.truncation fpga.Hostmodel.Fpga_path.truncation)
    in
    host *. float_of_int fpga.Hostmodel.Fpga_path.sample_1_in

(* The whole-sample loss split the attribution ledger records: every
   offered frame/byte lands in exactly one bucket — stored, or one of
   the loss causes — so `offered = stored + Σ attributed` holds by
   construction (up to float association, well inside the ledger's
   1e-6 relative tolerance).  Pure, so the conservation property is
   qcheck-able over adversarial parameters without a fabric. *)
type breakdown = {
  b_offered_frames : float;
  b_offered_bytes : float;  (** wire bytes, no pcap record headers *)
  b_switch_dropped : float;
  b_host_dropped : float;  (** total host loss, throttling included *)
  b_captured_frames : float;
  b_stored_wire_bytes : float;  (** wire bytes of stored frames *)
  b_causes : (Obs.Ledger.cause * float * float) list;
}

let loss_breakdown ~offered_pps ~duration ~avg_frame_size ~switch_drop_frac
    ~congested ~capacity_pps ~throttle ~truncation ~host_path =
  let offered_frames = offered_pps *. duration in
  let offered_bytes = offered_frames *. avg_frame_size in
  let switch_dropped = offered_frames *. switch_drop_frac in
  let after_pps = offered_pps *. (1.0 -. switch_drop_frac) in
  (* keep_full: what the host would keep unthrottled; keep: with the
     page-cache throttle pacing the writer down.  The gap between the
     two is the throttle's own loss. *)
  let keep_full =
    if after_pps <= 0.0 then 1.0 else Float.min 1.0 (capacity_pps /. after_pps)
  in
  let keep =
    if after_pps <= 0.0 then 1.0
    else Float.min 1.0 (capacity_pps *. throttle /. after_pps)
  in
  let host_dropped = after_pps *. (1.0 -. keep) *. duration in
  let host_base = after_pps *. (1.0 -. keep_full) *. duration in
  let throttled = Float.max 0.0 (host_dropped -. host_base) in
  let host_dropped_base = host_dropped -. throttled in
  let captured = after_pps *. keep *. duration in
  let wire = Float.min avg_frame_size (float_of_int truncation) in
  (* Truncation loses bytes, never frames; stored wire bytes are the
     exact complement so the byte identity closes. *)
  let truncated_bytes = captured *. Float.max 0.0 (avg_frame_size -. wire) in
  let stored_wire = (captured *. avg_frame_size) -. truncated_bytes in
  {
    b_offered_frames = offered_frames;
    b_offered_bytes = offered_bytes;
    b_switch_dropped = switch_dropped;
    b_host_dropped = host_dropped;
    b_captured_frames = captured;
    b_stored_wire_bytes = stored_wire;
    b_causes =
      [
        ( (if congested then Obs.Ledger.Mirror_congestion
           else Obs.Ledger.Switch_drop),
          switch_dropped,
          switch_dropped *. avg_frame_size );
        ( Obs.Ledger.Host_drop host_path,
          host_dropped_base,
          host_dropped_base *. avg_frame_size );
        (Obs.Ledger.Page_cache_throttle, throttled, throttled *. avg_frame_size);
        (Obs.Ledger.Truncated, 0.0, truncated_bytes);
      ];
  }

(* Exemplar candidates for the ledger: the first few distinct flow keys
   of the materialized records.  Bounded so a heavy sample costs O(1). *)
let exemplar_keys ?(limit = 256) acaps =
  let seen = Hashtbl.create 64 in
  let rec go acc n = function
    | [] -> List.rev acc
    | _ when n >= limit -> List.rev acc
    | a :: rest -> (
      match Dissect.Acap.flow_key a with
      | Some k when not (Hashtbl.mem seen k) ->
        Hashtbl.add seen k ();
        go (k :: acc) (n + 1) rest
      | _ -> go acc n rest)
  in
  go [] 0 acaps

(* Expected number of distinct flows visible in a window: each attached
   spec contributes up to [subflows] distinct 5-tuples; with [f] frames
   spread uniformly across them, the expected number touched is
   n * (1 - (1 - 1/n)^f) ~ n * (1 - exp (-f/n)). *)
let flow_estimate specs ~start_time ~end_time =
  List.fold_left
    (fun acc (spec, _dir) ->
      let f = Flow_model.expected_frames spec ~start_time ~end_time in
      if f <= 0.0 then acc
      else begin
        let n = float_of_int spec.Flow_model.subflows in
        acc +. (n *. (1.0 -. exp (-.f /. n)))
      end)
    0.0 specs

let run ?page_cache ~fabric ~resolver ~(config : Config.t) ~rng ~site ~mirror
    ~mirrored_port () =
  let engine = Fablib.engine fabric in
  let sw = Fablib.switch fabric ~site in
  let now = Simcore.Engine.now engine in
  let duration = config.Config.sample_duration in
  let window_end = now +. duration in
  (* Traffic state on the mirrored channels. *)
  let attachments = Switch.mirrored_attachments sw mirror in
  let specs =
    List.filter_map
      (fun (a : Switch.attachment) ->
        Option.map (fun spec -> (spec, a.Switch.dir)) (resolver a.Switch.flow))
      attachments
  in
  let offered_pps =
    List.fold_left (fun acc (s, _) -> acc +. Flow_model.frame_rate s) 0.0 specs
  in
  let offered_byte_rate =
    List.fold_left (fun acc (s, _) -> acc +. s.Flow_model.byte_rate) 0.0 specs
  in
  let avg_frame_size =
    if offered_pps > 0.0 then offered_byte_rate /. offered_pps else 800.0
  in
  (* Loss at the switch: the mirror clones Tx+Rx onto one Tx channel. *)
  let switch_drop_frac = Switch.mirror_drop_fraction sw mirror in
  (* Patchwork's congestion check compares the mirrored channel rates
     (from telemetry) against the line rate. *)
  let congestion_detected =
    Switch.mirrored_rate sw mirror *. 8.0 > Switch.line_rate sw
  in
  let after_switch_pps = offered_pps *. (1.0 -. switch_drop_frac) in
  (* Loss at the host, paced down by page-cache writeback when the
     instance models one (throttle is read at sample start: this
     sample's keep rate reflects the cache state its writes meet). *)
  let capacity = method_capacity_pps config in
  let throttle =
    match page_cache with
    | Some pc -> Hostmodel.Page_cache.throttle_factor pc
    | None -> 1.0
  in
  let host_path =
    match config.Config.capture_method with
    | Config.Tcpdump -> Hostmodel.Kernel_path.host_path
    | Config.Dpdk _ -> Hostmodel.Dpdk_path.host_path
    | Config.Fpga_dpdk _ -> Hostmodel.Fpga_path.host_path
  in
  let b =
    loss_breakdown ~offered_pps ~duration ~avg_frame_size ~switch_drop_frac
      ~congested:congestion_detected ~capacity_pps:capacity ~throttle
      ~truncation:config.Config.truncation ~host_path
  in
  let host_keep =
    if after_switch_pps <= 0.0 then 1.0
    else Float.min 1.0 (capacity *. throttle /. after_switch_pps)
  in
  let offered_frames = b.b_offered_frames in
  let switch_dropped = b.b_switch_dropped in
  let host_dropped = b.b_host_dropped in
  let captured_frames = b.b_captured_frames in
  let stored_per_frame =
    Float.min avg_frame_size (float_of_int config.Config.truncation) +. 16.0
  in
  let stored_bytes = captured_frames *. stored_per_frame in
  (match page_cache with
  | Some pc ->
    Hostmodel.Page_cache.write pc stored_bytes;
    Hostmodel.Page_cache.advance pc ~dt:duration
  | None -> ());
  (* Materialization budget: thin uniformly if the sample is heavy. *)
  let budget = float_of_int config.Config.max_frames_per_sample in
  let materialized_fraction =
    if captured_frames <= budget then host_keep *. (1.0 -. switch_drop_frac)
    else budget /. offered_frames
  in
  let fpga_config =
    match config.Config.capture_method with
    | Config.Fpga_dpdk { fpga; _ } -> Some fpga
    | Config.Tcpdump | Config.Dpdk _ -> None
  in
  let fpga_process =
    Option.map (fun c -> fst (Hostmodel.Fpga_path.create c ())) fpga_config
  in
  let anonymizer =
    if config.Config.anonymize then Some (Hostmodel.Anonymize.create ~key:97) else None
  in
  let pcap_writer =
    if config.Config.emit_pcap then
      Some (Packet.Pcap.Writer.create ~snaplen:config.Config.truncation ())
    else None
  in
  let acaps = ref [] in
  List.iter
    (fun (spec, _dir) ->
      (* Scale the spec's rate by the materialized fraction so the
         Poisson draw produces the thinned stream directly. *)
      let scaled =
        { spec with Flow_model.byte_rate = spec.Flow_model.byte_rate *. materialized_fraction }
      in
      let frames =
        Flow_model.frames_in_window scaled rng ~start_time:now ~end_time:window_end
      in
      List.iter
        (fun (ts, frame) ->
          if Packet.Filter.matches config.Config.filter frame then begin
            let frame =
              match fpga_process with
              | Some process -> process frame
              | None -> Some frame
            in
            match frame with
            | None -> ()
            | Some frame ->
              let frame =
                match anonymizer with
                | Some anon -> Hostmodel.Anonymize.frame anon frame
                | None -> frame
              in
              (match pcap_writer with
              | Some w -> Packet.Pcap.Writer.add_frame w ~ts frame
              | None -> ());
              acaps := Dissect.Acap.of_frame ~ts frame :: !acaps
          end)
        frames)
    specs;
  let acaps = List.sort (fun a b -> compare a.Dissect.Acap.ts b.Dissect.Acap.ts) !acaps in
  record_sample_metrics ~site ~offered:offered_frames ~switch_dropped
    ~host_dropped ~captured:captured_frames ~stored:stored_bytes
    ~congested:congestion_detected;
  if Obs.Ledger.enabled () then
    Obs.Ledger.record_sample Obs.Ledger.default ~site
      ~offered_frames:b.b_offered_frames ~offered_bytes:b.b_offered_bytes
      ~stored_frames:b.b_captured_frames ~stored_bytes:b.b_stored_wire_bytes
      ~keys:(exemplar_keys acaps) b.b_causes;
  {
    sample_site = site;
    sample_port = mirrored_port;
    sample_start = now;
    sample_duration = duration;
    acaps;
    materialized_fraction;
    pcap = Option.map Packet.Pcap.Writer.contents pcap_writer;
    stats =
      {
        offered_frames;
        switch_dropped;
        host_dropped;
        captured_frames;
        stored_bytes;
        flow_estimate = flow_estimate specs ~start_time:now ~end_time:window_end;
        congestion_detected;
      };
  }
