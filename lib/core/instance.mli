(** A Patchwork sampling instance.

    One instance corresponds to one listening VM with a dedicated NIC at
    one site.  It repeatedly: selects a port (via the cycling policy),
    installs a mirror session toward its NIC's switch port, captures a
    run of samples, tears the mirror down, and cycles.  A watchdog
    monitors the VM (storage exhaustion crashes the instance, which the
    coordinator later classifies as an incomplete run). *)

type status =
  | Running
  | Finished  (** reached the end of its occasion window *)
  | Crashed of string  (** watchdog-detected failure *)

type t

val create :
  fabric:Testbed.Fablib.t ->
  resolver:(int -> Traffic.Flow_model.spec option) ->
  config:Config.t ->
  log:Logging.t ->
  rng:Netcore.Rng.t ->
  site:string ->
  instance_id:int ->
  nic_port:int ->
  candidates:int list ->
  storage_bytes:float ->
  t
(** [nic_port] is the switch port wired to this instance's dedicated
    NIC (the mirror destination); [candidates] are the ports it may
    sample. *)

val start : t -> until:float -> unit
(** Schedule the instance's sampling activity on the engine. *)

val status : t -> status
val samples : t -> Capture.sample list
(** Completed samples, oldest first. *)

val storage_used : t -> float
val cycles_completed : t -> int
val name : t -> string
