module Fablib = Testbed.Fablib
module Allocator = Testbed.Allocator

type policy = {
  check_interval : float;
  min_instances : int;
  max_instances : int;
  nice_free_nics : int;
}

let default_policy =
  { check_interval = 600.0; min_instances = 1; max_instances = 4; nice_free_nics = 0 }

type event =
  | Scaled_up of { at : float; instances : int }
  | Scaled_down of { at : float; instances : int }

type member = {
  m_instance : Instance.t;
  m_slice : Allocator.slice;
  m_nic_port : int;
  m_acquired_at : float;
  mutable m_released_at : float option;
}

type t = {
  fabric : Fablib.t;
  resolver : int -> Traffic.Flow_model.spec option;
  config : Config.t;
  log : Logging.t;
  rng : Netcore.Rng.t;
  site : string;
  policy : policy;
  mutable members : member list;  (* live, newest first *)
  mutable retired : member list;
  mutable events : event list;  (* newest first *)
  mutable next_id : int;
  mutable until : float;
}

let create ~fabric ~resolver ~config ~log ~rng ~site ~policy =
  if policy.min_instances < 1 || policy.max_instances < policy.min_instances then
    invalid_arg "Autoscaler.create: bad instance bounds";
  {
    fabric;
    resolver;
    config;
    log;
    rng;
    site;
    policy;
    members = [];
    retired = [];
    events = [];
    next_id = 0;
    until = 0.0;
  }

let now t = Simcore.Engine.now (Fablib.engine t.fabric)

let log_event t level msg =
  Logging.log t.log ~time:(now t) ~level ~component:(t.site ^ "/autoscaler") msg

(* NIC ports are handed out from the top of the downlink range, skipping
   ports already used by live members. *)
let pick_nic_port t =
  let downlinks = List.rev (Fablib.downlink_ports t.fabric ~site:t.site) in
  let used = List.map (fun m -> m.m_nic_port) t.members in
  List.find_opt (fun p -> not (List.mem p used)) downlinks

let try_acquire_one t =
  let allocator = Fablib.allocator t.fabric in
  let request = { Allocator.site = t.site; vms = [ Backoff.instance_vm ] } in
  if not (Allocator.can_satisfy allocator request) then None
  else begin
    match Allocator.create_slice allocator request with
    | Error _ -> None
    | Ok slice -> (
      match pick_nic_port t with
      | None ->
        Allocator.delete_slice allocator slice;
        None
      | Some nic_port ->
        let candidates =
          Fablib.uplink_ports t.fabric ~site:t.site
          @ List.filter
              (fun p -> p <> nic_port)
              (Fablib.downlink_ports t.fabric ~site:t.site)
        in
        let inst =
          Instance.create ~fabric:t.fabric ~resolver:t.resolver ~config:t.config
            ~log:t.log ~rng:(Netcore.Rng.split t.rng) ~site:t.site
            ~instance_id:(1000 + t.next_id) ~nic_port ~candidates
            ~storage_bytes:
              (float_of_int Backoff.instance_vm.Allocator.storage_gb *. 1e9)
        in
        t.next_id <- t.next_id + 1;
        let member =
          { m_instance = inst; m_slice = slice; m_nic_port = nic_port;
            m_acquired_at = now t; m_released_at = None }
        in
        t.members <- member :: t.members;
        Instance.start inst ~until:t.until;
        Some member)
  end

let release_one t =
  match t.members with
  | [] -> ()
  | newest :: rest ->
    (* Release the most recently added member; its samples are kept. *)
    t.members <- rest;
    newest.m_released_at <- Some (now t);
    Allocator.delete_slice (Fablib.allocator t.fabric) newest.m_slice;
    t.retired <- newest :: t.retired

let live_instances t = List.length t.members

let check t =
  let allocator = Fablib.allocator t.fabric in
  let avail = (Allocator.available allocator ~site:t.site).Allocator.avail_dedicated_nics in
  let live = live_instances t in
  if avail <= t.policy.nice_free_nics && live > t.policy.min_instances then begin
    (* The nice factor: the testbed is tight; give a NIC back. *)
    release_one t;
    t.events <- Scaled_down { at = now t; instances = live_instances t } :: t.events;
    log_event t Logging.Info
      (Printf.sprintf "nice: released an instance (%d free NICs at the site)" avail)
  end
  else if avail > t.policy.nice_free_nics + 1 && live < t.policy.max_instances then begin
    match try_acquire_one t with
    | Some _ ->
      t.events <- Scaled_up { at = now t; instances = live_instances t } :: t.events;
      log_event t Logging.Info
        (Printf.sprintf "scaled up to %d instances" (live_instances t))
    | None -> ()
  end

let start t ~until =
  t.until <- until;
  (* Floor acquisition. *)
  let acquired = ref 0 in
  while !acquired < t.policy.min_instances do
    match try_acquire_one t with
    | Some _ -> incr acquired
    | None ->
      log_event t Logging.Warning "could not acquire the instance floor";
      acquired := t.policy.min_instances (* give up; control loop retries *)
  done;
  Simcore.Engine.every (Fablib.engine t.fabric) ~period:t.policy.check_interval
    ~until (fun _ -> if now t < until then check t)

let instances t =
  List.map (fun m -> m.m_instance) (t.members @ t.retired)

let events t = List.rev t.events

let samples t = List.concat_map Instance.samples (instances t)

let slice_seconds t =
  let t_now = now t in
  List.fold_left
    (fun acc m ->
      let until = Option.value ~default:t_now m.m_released_at in
      acc +. Float.max 0.0 (until -. m.m_acquired_at))
    0.0 (t.members @ t.retired)

let shutdown t =
  while t.members <> [] do
    release_one t
  done
