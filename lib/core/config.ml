type capture_method =
  | Tcpdump
  | Dpdk of { cores : int }
  | Fpga_dpdk of { cores : int; fpga : Hostmodel.Fpga_path.config }

type port_selection =
  | Busiest_bias of int
  | Fixed_ports of int list
  | Uplinks_only
  | All_ports_round_robin

type mode = All_experiments | Single_experiment of (string * int list) list

type t = {
  mode : mode;
  sample_duration : float;
  sample_interval : float;
  samples_per_run : int;
  runs_per_cycle : int;
  truncation : int;
  capture_method : capture_method;
  port_selection : port_selection;
  filter : Packet.Filter.t;
  anonymize : bool;
  emit_pcap : bool;
  max_frames_per_sample : int;
  busiest_window : float;
  instance_crash_prob : float;
  host_profile : Hostmodel.Host_profile.t;
  model_page_cache : bool;
  pool_size : int;
}

let default =
  {
    mode = All_experiments;
    sample_duration = 20.0;
    sample_interval = 300.0;
    samples_per_run = 12;
    runs_per_cycle = 1;
    truncation = 200;
    capture_method = Tcpdump;
    port_selection = Busiest_bias 4;
    filter = Packet.Filter.True;
    anonymize = false;
    emit_pcap = false;
    max_frames_per_sample = 20_000;
    busiest_window = 1800.0;
    instance_crash_prob = 0.001;
    host_profile = Hostmodel.Host_profile.default;
    model_page_cache = false;
    pool_size = Parallel.Pool.default_size ();
  }

let validate t =
  let fail msg = Error msg in
  if t.sample_duration <= 0.0 then fail "sample_duration must be positive"
  else if t.sample_interval < t.sample_duration then
    fail "sample_interval must be at least sample_duration"
  else if t.samples_per_run <= 0 then fail "samples_per_run must be positive"
  else if t.runs_per_cycle <= 0 then fail "runs_per_cycle must be positive"
  else if t.truncation <= 0 then fail "truncation must be positive"
  else if t.max_frames_per_sample <= 0 then fail "max_frames_per_sample must be positive"
  else if t.instance_crash_prob < 0.0 || t.instance_crash_prob > 1.0 then
    fail "instance_crash_prob must be a probability"
  else if t.pool_size < 1 then fail "pool_size must be at least 1"
  else begin
    match t.port_selection with
    | Busiest_bias n when n < 2 -> fail "busiest-bias needs n >= 2"
    | Fixed_ports [] -> fail "fixed port list is empty"
    | Busiest_bias _ | Fixed_ports _ | Uplinks_only | All_ports_round_robin -> (
      match t.capture_method with
      | Dpdk { cores } | Fpga_dpdk { cores; _ } ->
        if cores < 1 then fail "capture needs at least one core" else Ok ()
      | Tcpdump -> Ok ())
  end
