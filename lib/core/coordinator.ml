module Fablib = Testbed.Fablib
module Info_model = Testbed.Info_model
module Allocator = Testbed.Allocator

type site_outcome =
  | Site_success
  | Site_degraded
  | Site_failed of string
  | Site_incomplete of string

type site_report = {
  report_site : string;
  outcome : site_outcome;
  instances_requested : int;
  instances_acquired : int;
  site_samples : Capture.sample list;
  cycles : int;
  storage_used : float;
}

type occasion_report = {
  occasion_start : float;
  occasion_duration : float;
  sites : site_report list;
  log : Logging.t;
}

(* Occasion-level observability (the Fig.-10 success/failure series). *)
let obs_occasions =
  Obs.Registry.counter Obs.Registry.default "occasions_total"
    ~help:"Profiling occasions run"

(* Completion hooks: the live exposition stack (series collection, alert
   evaluation) registers here so every occasion feeds it regardless of
   which entry point ran the occasion.  The counter doubles as the
   /readyz signal — the service is ready once one occasion completed. *)
let completed = Atomic.make 0

type hook_handle = int

let hooks : (hook_handle * (occasion_report -> unit)) list ref = ref []
let hooks_lock = Mutex.create ()
let next_hook_id = ref 0

let on_occasion_complete f =
  Mutex.lock hooks_lock;
  incr next_hook_id;
  let id = !next_hook_id in
  (* Appending keeps the list in registration order, so run_hooks (per
     occasion) iterates it directly instead of List.rev-ing every time;
     registration is rare, occasions are not. *)
  hooks := !hooks @ [ (id, f) ];
  Mutex.unlock hooks_lock;
  id

let remove_hook id =
  Mutex.lock hooks_lock;
  hooks := List.filter (fun (i, _) -> i <> id) !hooks;
  Mutex.unlock hooks_lock

let occasions_completed () = Atomic.get completed
let ready () = Atomic.get completed > 0

let run_hooks report =
  Mutex.lock hooks_lock;
  let fs = !hooks in
  Mutex.unlock hooks_lock;
  List.iter
    (fun (_, f) ->
      try f report
      with e ->
        Logging.log report.log ~time:report.occasion_start
          ~level:Logging.Warning ~component:"coordinator"
          ("occasion hook failed: " ^ Printexc.to_string e))
    fs

let outcome_label = function
  | Site_success -> "success"
  | Site_degraded -> "degraded"
  | Site_failed _ -> "failed"
  | Site_incomplete _ -> "incomplete"

let obs_site_outcome outcome =
  Obs.Registry.counter Obs.Registry.default "occasion_sites_total"
    ~help:"Per-site occasion outcomes (Fig. 10)"
    ~labels:[ ("outcome", outcome_label outcome) ]

let desired_instances_for fabric ~site ~max_instances =
  let a = Allocator.available (Fablib.allocator fabric) ~site in
  max 1 (min max_instances a.Allocator.avail_dedicated_nics)

(* Patchwork's own NIC occupies switch ports; it mirrors other ports
   onto them.  We reserve the highest-numbered downlinks for Patchwork's
   NICs (one port of the dual-port NIC receives mirrored traffic). *)
let plan_ports fabric ~site ~instances =
  let downlinks = Fablib.downlink_ports fabric ~site in
  let n = List.length downlinks in
  let nic_ports =
    List.filteri (fun i _ -> i >= n - instances) downlinks
  in
  (* Membership through a hash set: the list-based scan was quadratic in
     the port count, which large sites pay on every occasion. *)
  let nic_set = Hashtbl.create (List.length nic_ports) in
  List.iter (fun p -> Hashtbl.replace nic_set p ()) nic_ports;
  let uplinks = Fablib.uplink_ports fabric ~site in
  let candidates =
    uplinks @ List.filter (fun p -> not (Hashtbl.mem nic_set p)) downlinks
  in
  (nic_ports, candidates)

type site_run = {
  sr_site : string;
  sr_requested : int;
  sr_acquired : int;
  sr_degraded : bool;
  sr_slice : Allocator.slice option;
  sr_instances : Instance.t list;
  sr_failure : string option;
}

let setup_site ~fabric ~driver ~config ~log ~rng ~max_instances ~site
    ~only_ports =
  let engine = Fablib.engine fabric in
  let now = Simcore.Engine.now engine in
  (* Patchwork asks for its standard complement and lets back-off trim
     it; a trimmed run is reported as degraded (Fig. 10). *)
  let desired = max_instances in
  match
    Backoff.acquire (Fablib.allocator fabric) ~log ~time:now ~site
      ~desired_instances:desired ()
  with
  | Backoff.No_resources ->
    {
      sr_site = site;
      sr_requested = desired;
      sr_acquired = 0;
      sr_degraded = false;
      sr_slice = None;
      sr_instances = [];
      sr_failure = Some "no resources";
    }
  | Backoff.Backend_failed msg ->
    {
      sr_site = site;
      sr_requested = desired;
      sr_acquired = 0;
      sr_degraded = false;
      sr_slice = None;
      sr_instances = [];
      sr_failure = Some ("backend: " ^ msg);
    }
  | Backoff.Acquired { slice; instances; degraded } ->
    let nic_ports, candidates = plan_ports fabric ~site ~instances in
    let candidates =
      match only_ports with
      | None -> candidates
      | Some ports ->
        let allowed = Hashtbl.create (List.length ports) in
        List.iter (fun p -> Hashtbl.replace allowed p ()) ports;
        List.filter (Hashtbl.mem allowed) candidates
    in
    let storage_bytes =
      float_of_int Backoff.instance_vm.Allocator.storage_gb *. 1e9
    in
    let insts =
      List.mapi
        (fun i nic_port ->
          Instance.create ~fabric ~resolver:(Traffic.Driver.resolver driver)
            ~config ~log ~rng:(Netcore.Rng.split rng) ~site ~instance_id:i
            ~nic_port ~candidates ~storage_bytes)
        nic_ports
    in
    {
      sr_site = site;
      sr_requested = desired;
      sr_acquired = instances;
      sr_degraded = degraded;
      sr_slice = Some slice;
      sr_instances = insts;
      sr_failure = None;
    }

let gather_site run =
  let samples =
    List.concat_map Instance.samples run.sr_instances
  in
  let cycles =
    List.fold_left (fun acc i -> acc + Instance.cycles_completed i) 0 run.sr_instances
  in
  let storage_used =
    List.fold_left (fun acc i -> acc +. Instance.storage_used i) 0.0 run.sr_instances
  in
  let crashed =
    List.filter_map
      (fun i ->
        match Instance.status i with
        | Instance.Crashed msg -> Some msg
        | Instance.Running | Instance.Finished -> None)
      run.sr_instances
  in
  let outcome =
    match (run.sr_failure, crashed) with
    | Some msg, _ -> Site_failed msg
    | None, msg :: _ -> Site_incomplete msg
    | None, [] -> if run.sr_degraded then Site_degraded else Site_success
  in
  {
    report_site = run.sr_site;
    outcome;
    instances_requested = run.sr_requested;
    instances_acquired = run.sr_acquired;
    site_samples = samples;
    cycles;
    storage_used;
  }

let run_occasion ~fabric ~driver ~config ?pool ?log ?(max_instances = 2)
    ~start_time ~duration () =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Coordinator.run_occasion: " ^ msg));
  let engine = Fablib.engine fabric in
  if Simcore.Engine.now engine > start_time then
    invalid_arg "Coordinator.run_occasion: engine already past start_time";
  let log = match log with Some l -> l | None -> Logging.create () in
  let rng = Netcore.Rng.split (Fablib.rng fabric) in
  let until = start_time +. duration in
  (* The loss-attribution occasion boundary: everything the capture
     path records until the close below reconciles against this
     occasion (seeding exemplar priorities from start_time keeps them
     independent of pool size and interleaving). *)
  if Obs.Ledger.enabled () then
    Obs.Ledger.begin_occasion Obs.Ledger.default ~at:start_time;
  (* The whole occasion is one span; each workflow phase of §6.2 is a
     child span, so `patchwork_cli report` can attribute wall time (and
     allocation) per phase. *)
  let tracer = Obs.Span.default in
  Obs.Span.with_span tracer "occasion" @@ fun occ ->
  Obs.Span.annotate occ "start_time" (Printf.sprintf "%.0f" start_time);
  Obs.Span.annotate occ "duration_s" (Printf.sprintf "%.0f" duration);
  (* Phase 0: the substrate — telemetry polling and the traffic the
     researchers are generating. *)
  Obs.Span.with_span tracer "occasion.substrate" (fun _ ->
      Fablib.start_telemetry ~until fabric;
      Traffic.Driver.start driver ~until;
      (* Give telemetry a short warm-up so busiest-port ranking has
         data: run the engine to the start time plus two polls. *)
      Simcore.Engine.run ~until:(start_time +. 601.0) engine);
  (* Phase 1: setup at each target site. *)
  let targets =
    match config.Config.mode with
    | Config.All_experiments ->
      List.map
        (fun (s : Info_model.site) -> (s.Info_model.name, None))
        (Info_model.profilable_sites (Fablib.model fabric))
    | Config.Single_experiment sites ->
      List.map (fun (site, ports) -> (site, Some ports)) sites
  in
  let runs =
    Obs.Span.with_span tracer "occasion.setup" (fun sp ->
        Obs.Span.annotate sp "sites" (string_of_int (List.length targets));
        List.map
          (fun (site, only_ports) ->
            setup_site ~fabric ~driver ~config ~log ~rng ~max_instances ~site
              ~only_ports)
          targets)
  in
  (* Phase 2: sampling. *)
  Obs.Span.with_span tracer "occasion.sampling" (fun _ ->
      List.iter
        (fun run -> List.iter (fun i -> Instance.start i ~until) run.sr_instances)
        runs;
      Simcore.Engine.run ~until engine);
  (* Phase 3: gathering — collect artifacts, yield resources back.
     Per-site gathering only reads instance state (the engine stopped at
     [until]), so it fans out across the pool; [Parallel.Pool.map]
     preserves site order. *)
  let reports =
    Obs.Span.with_span tracer "occasion.gather" (fun _ ->
        let gather p = Parallel.Pool.map p gather_site runs in
        match pool with
        | Some p -> gather p
        | None ->
          if config.Config.pool_size > 1 then
            Parallel.Pool.with_pool ~size:config.Config.pool_size gather
          else List.map gather_site runs)
  in
  Obs.Span.with_span tracer "occasion.teardown" (fun _ ->
      List.iter
        (fun run ->
          match run.sr_slice with
          | Some slice -> Allocator.delete_slice (Fablib.allocator fabric) slice
          | None -> ())
        runs);
  (* Success/failure series plus the telemetry bridge: the simulated
     SNMP state of every polled switch surfaces through the same
     registry as the pipeline's own metrics. *)
  Obs.Registry.incr obs_occasions;
  let ok = ref 0 in
  List.iter
    (fun r ->
      (match r.outcome with
      | Site_success | Site_degraded -> incr ok
      | Site_failed _ | Site_incomplete _ -> ());
      Obs.Registry.incr (obs_site_outcome r.outcome))
    reports;
  Obs.Span.annotate occ "sites_ok"
    (Printf.sprintf "%d/%d" !ok (List.length reports));
  Obs.Span.annotate occ "log_warnings"
    (string_of_int (Logging.count ~min_level:Logging.Warning log));
  Testbed.Telemetry.export_metrics (Fablib.telemetry fabric);
  let report =
    { occasion_start = start_time; occasion_duration = duration; sites = reports; log }
  in
  (* Close the loss ledger before the hooks run, so the live stack's
     collector sees this occasion's cumulative ledger counters (and a
     conservation violation is caught here, not at some later read). *)
  if Obs.Ledger.enabled () then
    ignore
      (Obs.Ledger.close_occasion
         ~log:(fun msg ->
           Logging.log log ~time:until ~level:Logging.Error ~component:"ledger"
             msg)
         Obs.Ledger.default);
  Atomic.incr completed;
  run_hooks report;
  report

let all_samples report = List.concat_map (fun r -> r.site_samples) report.sites

let success_rate reports =
  let total = ref 0 and ok = ref 0 in
  List.iter
    (fun report ->
      List.iter
        (fun site ->
          incr total;
          match site.outcome with
          | Site_success | Site_degraded -> incr ok
          | Site_failed _ | Site_incomplete _ -> ())
        report.sites)
    reports;
  if !total = 0 then 0.0 else float_of_int !ok /. float_of_int !total
