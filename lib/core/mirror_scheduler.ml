module Switch = Testbed.Switch

type grant = {
  g_user : string;
  g_src_port : int;
  g_dst_port : int;
  g_mirror : int;
}

type request = { r_user : string; r_src_port : int; r_dst_port : int }

type t = {
  engine : Simcore.Engine.t;
  switch : Switch.t;
  quantum : float;
  mutable requests_rev : request list;  (* newest first: O(1) submit *)
  pending : (string * int, unit) Hashtbl.t;  (* (user, src_port) set *)
  mutable grants : (grant * float) list;  (* grant, granted_at *)
  service : (string, float) Hashtbl.t;
  mutable listeners : (granted:grant list -> revoked:grant list -> unit) list;
}

(* Scheduler observability: how deep the request queue sits per site
   and how often grants churn. *)
let pending_gauge site =
  Obs.Registry.gauge Obs.Registry.default "mirror_pending_requests"
    ~help:"Mirror requests waiting for a grant" ~labels:[ ("site", site) ]

let grants_counter site =
  Obs.Registry.counter Obs.Registry.default "mirror_grants_total"
    ~help:"Mirror grants issued" ~labels:[ ("site", site) ]

let revocations_counter site =
  Obs.Registry.counter Obs.Registry.default "mirror_revocations_total"
    ~help:"Mirror grants revoked" ~labels:[ ("site", site) ]

let create engine switch ~quantum =
  if quantum <= 0.0 then invalid_arg "Mirror_scheduler.create: quantum";
  {
    engine;
    switch;
    quantum;
    requests_rev = [];
    pending = Hashtbl.create 64;
    grants = [];
    service = Hashtbl.create 8;
    listeners = [];
  }

let submit t ~user ~src_port ~dst_port =
  if Hashtbl.mem t.pending (user, src_port) then
    invalid_arg "Mirror_scheduler.submit: duplicate request";
  t.requests_rev <-
    { r_user = user; r_src_port = src_port; r_dst_port = dst_port }
    :: t.requests_rev;
  Hashtbl.add t.pending (user, src_port) ();
  Obs.Registry.set
    (pending_gauge (Switch.site_name t.switch))
    (float_of_int (Hashtbl.length t.pending));
  if not (Hashtbl.mem t.service user) then Hashtbl.add t.service user 0.0

let service_time t ~user = Option.value ~default:0.0 (Hashtbl.find_opt t.service user)

let credit t grant ~since =
  let elapsed = Simcore.Engine.now t.engine -. since in
  Hashtbl.replace t.service grant.g_user
    (service_time t ~user:grant.g_user +. elapsed)

(* Frames a revocation loses: tearing down a mirror session abandons
   the egress queue's in-flight clone window.  Modeled as one flush
   window of the session's mirrored rate, at a nominal frame size. *)
let revocation_flush_window = 0.05 (* seconds *)
let revocation_frame_size = 800.0

let revoke t (grant, since) =
  credit t grant ~since;
  Obs.Registry.incr (revocations_counter (Switch.site_name t.switch));
  (* Attribute the flush loss before the session (and its rate) is
     gone.  attribute_lost adds to both offered and the cause cell, so
     the ledger's conservation identity stays balanced. *)
  if Obs.Ledger.enabled () then begin
    let rate = Switch.mirrored_rate t.switch grant.g_mirror in
    if rate > 0.0 then begin
      let bytes = rate *. revocation_flush_window in
      Obs.Ledger.attribute_lost Obs.Ledger.default
        ~site:(Switch.site_name t.switch) ~cause:Obs.Ledger.Mirror_revoked
        ~frames:(bytes /. revocation_frame_size) ~bytes ()
    end
  end;
  Switch.remove_mirror t.switch grant.g_mirror

let cancel t ~user ~src_port =
  Hashtbl.remove t.pending (user, src_port);
  Obs.Registry.set
    (pending_gauge (Switch.site_name t.switch))
    (float_of_int (Hashtbl.length t.pending));
  t.requests_rev <-
    List.filter
      (fun r -> not (r.r_user = user && r.r_src_port = src_port))
      t.requests_rev;
  let revoked, kept =
    List.partition
      (fun (g, _) -> g.g_user = user && g.g_src_port = src_port)
      t.grants
  in
  List.iter (revoke t) revoked;
  t.grants <- kept;
  if revoked <> [] then
    List.iter
      (fun f -> f ~granted:[] ~revoked:(List.map fst revoked))
      t.listeners

let on_change t f = t.listeners <- f :: t.listeners

let current_grants t = List.map fst t.grants

(* One scheduling round: pick, per requested source port, the pending
   user with the least service time; rebuild the grant set. *)
let round t =
  let old = t.grants in
  (* Revoke everything first so destination ports free up; service time
     is credited on revocation. *)
  List.iter (revoke t) old;
  t.grants <- [];
  let by_port = Hashtbl.create 8 in
  (* [requests_rev] is newest-first, so consing while iterating leaves
     each per-port list in submission order. *)
  List.iter
    (fun r ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_port r.r_src_port) in
      Hashtbl.replace by_port r.r_src_port (r :: l))
    t.requests_rev;
  let used_dsts = ref [] in
  let new_grants = ref [] in
  let ports =
    List.sort_uniq compare (List.map (fun r -> r.r_src_port) t.requests_rev)
  in
  List.iter
    (fun port ->
      let contenders = Option.value ~default:[] (Hashtbl.find_opt by_port port) in
      (* Least-served first; the stable sort breaks ties by submission
         order. *)
      let ranked =
        List.stable_sort
          (fun a b ->
            compare (service_time t ~user:a.r_user) (service_time t ~user:b.r_user))
          contenders
      in
      let rec try_grant = function
        | [] -> ()
        | r :: rest ->
          if List.mem r.r_dst_port !used_dsts then try_grant rest
          else begin
            match
              Switch.add_mirror t.switch ~src_port:r.r_src_port ~dirs:Switch.Both
                ~dst_port:r.r_dst_port
            with
            | Ok mirror ->
              Obs.Registry.incr (grants_counter (Switch.site_name t.switch));
              used_dsts := r.r_dst_port :: !used_dsts;
              new_grants :=
                ( { g_user = r.r_user; g_src_port = r.r_src_port;
                    g_dst_port = r.r_dst_port; g_mirror = mirror },
                  Simcore.Engine.now t.engine )
                :: !new_grants
            | Error _ -> try_grant rest
          end
      in
      try_grant ranked)
    ports;
  t.grants <- !new_grants;
  let old_grants = List.map fst old in
  let fresh = List.map fst !new_grants in
  let changed =
    List.exists (fun g -> not (List.mem g old_grants)) fresh
    || List.exists (fun g -> not (List.mem g fresh)) old_grants
  in
  if changed then
    List.iter (fun f -> f ~granted:fresh ~revoked:old_grants) t.listeners

let start t ~until =
  round t;
  Simcore.Engine.every t.engine ~period:t.quantum ~until (fun _ ->
      if Simcore.Engine.now t.engine <= until then round t)

let fairness t =
  let times = Hashtbl.fold (fun _ v acc -> v :: acc) t.service [] in
  match times with
  | [] | [ _ ] -> 1.0
  | times ->
    let n = float_of_int (List.length times) in
    let sum = List.fold_left ( +. ) 0.0 times in
    let sum_sq = List.fold_left (fun acc v -> acc +. (v *. v)) 0.0 times in
    if sum_sq <= 0.0 then 1.0 else sum *. sum /. (n *. sum_sq)
