module Allocator = Testbed.Allocator

type outcome =
  | Acquired of { slice : Allocator.slice; instances : int; degraded : bool }
  | No_resources
  | Backend_failed of string

let instance_vm =
  {
    Allocator.cores = 2;
    ram_gb = 8;
    storage_gb = 100;
    dedicated_nics = 1;
    use_fpga = false;
  }

let acquire allocator ~log ~time ~site ~desired_instances ?(backend_retries = 2) () =
  if desired_instances < 1 then invalid_arg "Backoff.acquire: desired_instances";
  let component = site ^ "/setup" in
  let rec attempt instances retries_left =
    if instances < 1 then begin
      Logging.log log ~time ~level:Logging.Warning ~component
        "back-off exhausted: no instance could be placed";
      No_resources
    end
    else begin
      let request =
        { Allocator.site; vms = List.init instances (fun _ -> instance_vm) }
      in
      (* Allocation simulation (§8.3): skip requests the testbed's
         current inventory cannot possibly satisfy, instead of burning a
         round-trip on the real allocator per back-off step. *)
      if not (Allocator.can_satisfy allocator request) then begin
        Logging.log log ~time ~level:Logging.Debug ~component
          (Printf.sprintf
             "allocation simulation: %d instances infeasible; backing off"
             instances);
        attempt (instances - 1) retries_left
      end
      else
        match Allocator.create_slice allocator request with
      | Ok slice ->
        let degraded = instances < desired_instances in
        if degraded then
          Logging.log log ~time ~level:Logging.Warning ~component
            (Printf.sprintf "acquired %d/%d instances after back-off" instances
               desired_instances)
        else
          Logging.log log ~time ~level:Logging.Info ~component
            (Printf.sprintf "acquired %d instances" instances);
        Acquired { slice; instances; degraded }
      | Error (Allocator.Insufficient_resources what) ->
        Logging.log log ~time ~level:Logging.Info ~component
          (Printf.sprintf "insufficient %s for %d instances; backing off" what
             instances);
        attempt (instances - 1) retries_left
      | Error (Allocator.Backend_error msg) ->
        if retries_left > 0 then begin
          Logging.log log ~time ~level:Logging.Warning ~component
            (Printf.sprintf "backend error (%s); retrying" msg);
          attempt instances (retries_left - 1)
        end
        else begin
          Logging.log log ~time ~level:Logging.Error ~component
            (Printf.sprintf "backend error (%s); giving up" msg);
          Backend_failed msg
        end
    end
  in
  attempt desired_instances backend_retries
