type level = Debug | Info | Warning | Error

type entry = { time : float; level : level; component : string; event : string }

let severity = function Debug -> 0 | Info -> 1 | Warning -> 2 | Error -> 3

(* Two storage modes behind one API: unbounded (a list, newest first, as
   before) or a fixed-capacity ring that evicts the oldest entry.  The
   per-level counters count every logged event — including evicted ones
   — so [count] is O(1) instead of the old O(n) scan and keeps meaning
   "events logged" in ring mode. *)
type t = {
  capacity : int; (* 0 = unbounded *)
  mutable entries : entry list; (* newest first; unbounded mode *)
  ring : entry option array; (* ring mode; [||] otherwise *)
  mutable ring_start : int; (* index of the oldest retained entry *)
  mutable ring_len : int;
  counts : int array; (* per-level totals, never decremented *)
  lock : Mutex.t; (* the live /logs.json endpoint reads from another domain *)
}

let create ?(capacity = 0) () =
  if capacity < 0 then invalid_arg "Logging.create: capacity must be >= 0";
  {
    capacity;
    entries = [];
    ring = (if capacity > 0 then Array.make capacity None else [||]);
    ring_start = 0;
    ring_len = 0;
    counts = Array.make 4 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.capacity

let log t ~time ~level ~component event =
  let e = { time; level; component; event } in
  let s = severity level in
  locked t (fun () ->
      t.counts.(s) <- t.counts.(s) + 1;
      if t.capacity = 0 then t.entries <- e :: t.entries
      else begin
        let slot = (t.ring_start + t.ring_len) mod t.capacity in
        t.ring.(slot) <- Some e;
        if t.ring_len < t.capacity then t.ring_len <- t.ring_len + 1
        else t.ring_start <- (t.ring_start + 1) mod t.capacity
      end)

let entries_unlocked t =
  if t.capacity = 0 then List.rev t.entries
  else
    List.init t.ring_len (fun i ->
        match t.ring.((t.ring_start + i) mod t.capacity) with
        | Some e -> e
        | None -> assert false (* slots [0, ring_len) are filled *))

let entries t = locked t (fun () -> entries_unlocked t)

let count_unlocked ~min_level t =
  let s = severity min_level in
  let total = ref 0 in
  for i = s to 3 do
    total := !total + t.counts.(i)
  done;
  !total

let count ?(min_level = Debug) t = locked t (fun () -> count_unlocked ~min_level t)

let retained_unlocked t =
  if t.capacity = 0 then List.length t.entries else t.ring_len

let retained t = locked t (fun () -> retained_unlocked t)

let dropped t =
  locked t (fun () -> count_unlocked ~min_level:Debug t - retained_unlocked t)

let next_seq t = locked t (fun () -> count_unlocked ~min_level:Debug t)

let drain_since t ~seq =
  locked t (fun () ->
      let total = count_unlocked ~min_level:Debug t in
      let oldest = total - retained_unlocked t in
      let all = entries_unlocked t in
      let rec tag i acc = function
        | [] -> List.rev acc
        | e :: rest ->
          tag (i + 1) (if i >= seq then (i, e) :: acc else acc) rest
      in
      tag oldest [] all)

let errors t = List.filter (fun e -> e.level = Error) (entries t)

let level_name = function
  | Debug -> "DEBUG"
  | Info -> "INFO"
  | Warning -> "WARN"
  | Error -> "ERROR"

let pp_entry ppf e =
  Format.fprintf ppf "[%10.1f] %-5s %s: %s" e.time (level_name e.level) e.component
    e.event
