type level = Debug | Info | Warning | Error

type entry = { time : float; level : level; component : string; event : string }

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }

let log t ~time ~level ~component event =
  t.entries <- { time; level; component; event } :: t.entries

let entries t = List.rev t.entries

let severity = function Debug -> 0 | Info -> 1 | Warning -> 2 | Error -> 3

let count ?(min_level = Debug) t =
  List.length (List.filter (fun e -> severity e.level >= severity min_level) t.entries)

let errors t = List.rev (List.filter (fun e -> e.level = Error) t.entries)

let level_name = function
  | Debug -> "DEBUG"
  | Info -> "INFO"
  | Warning -> "WARN"
  | Error -> "ERROR"

let pp_entry ppf e =
  Format.fprintf ppf "[%10.1f] %-5s %s: %s" e.time (level_name e.level) e.component
    e.event
