(** Patchwork configuration (requirement R5: tunable fidelity).

    A profile's raw data consists of captures from a series of {e runs},
    each run being a series of {e samples}; between runs the instance
    may {e cycle} the mirrored port.  The user sets each knob: sample
    duration and spacing, samples per run, runs per cycle, packet
    truncation, capture method, filtering and pre-processing. *)

type capture_method =
  | Tcpdump  (** default: mature, modest requirements (§8.1.2) *)
  | Dpdk of { cores : int }  (** kernel-bypass custom application *)
  | Fpga_dpdk of { cores : int; fpga : Hostmodel.Fpga_path.config }
      (** FPGA pre-processing, then DPDK serialization *)

type port_selection =
  | Busiest_bias of int
      (** the paper's default: during every [n-1] of [n] cycles pick a
          random non-idle port; otherwise the busiest not sampled in the
          last [n] cycles *)
  | Fixed_ports of int list  (** no cycling *)
  | Uplinks_only
  | All_ports_round_robin  (** including idle ports *)

type mode =
  | All_experiments  (** testbed-wide; needs special permission *)
  | Single_experiment of (string * int list) list
      (** (site, ports) of the user's own slice *)

type t = {
  mode : mode;
  sample_duration : float;  (** seconds of traffic per sample *)
  sample_interval : float;  (** spacing between sample starts *)
  samples_per_run : int;
  runs_per_cycle : int;  (** runs before the port is cycled *)
  truncation : int;  (** bytes kept per frame *)
  capture_method : capture_method;
  port_selection : port_selection;
  filter : Packet.Filter.t;
  anonymize : bool;  (** prefix-preserving address anonymization *)
  emit_pcap : bool;  (** build real pcap bytes (off for long profiles) *)
  max_frames_per_sample : int;
      (** materialization budget; heavier samples are thinned uniformly
          (recorded, so analyses can re-weight) *)
  busiest_window : float;  (** telemetry window for the busiest-port rank *)
  instance_crash_prob : float;
      (** per-sample probability that an instance dies unexpectedly
          (environmental failures and the early-deployment bug behind
          Fig. 10's "Incomplete" runs) *)
  host_profile : Hostmodel.Host_profile.t;
  model_page_cache : bool;
      (** model page-cache writeback per instance: the sample keep rate
          is paced by the cache's throttle factor and the shortfall is
          attributed to [Page_cache_throttle] in the loss ledger.  Off
          by default (the host profile's drain rate rarely throttles;
          turn on with a constrained profile to study the cliff). *)
  pool_size : int;
      (** degrees of parallelism for the offline pipeline (gathering and
          analysis fan-out); 1 disables domain spawning.  Defaults to
          [Domain.recommended_domain_count () - 1].  Results are
          identical at any pool size. *)
}

val default : t
(** The paper's weekly-profile settings: all-experiment mode, 20 s
    samples every 5 minutes, 200-byte truncation, tcpdump, busiest-bias
    1-in-4 cycling. *)

val validate : t -> (unit, string) result
