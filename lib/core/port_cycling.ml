open Netcore

type t = {
  policy : Config.port_selection;
  rng : Rng.t;
  site : string;
  candidates : int array;
  uplinks : int list;
  mutable cycle : int;
  mutable recent : int list;  (* newest first *)
}

let create policy ~rng ~site ~candidates ~uplinks =
  {
    policy;
    rng;
    site;
    candidates = Array.of_list candidates;
    uplinks;
    cycle = 0;
    recent = [];
  }

let remember t port =
  t.recent <- port :: t.recent;
  if List.length t.recent > 64 then
    t.recent <- List.filteri (fun i _ -> i < 64) t.recent

let non_idle t ~telemetry ~window ~at ports =
  List.filter
    (fun port ->
      Testbed.Telemetry.port_avg_rate telemetry ~site:t.site ~port ~window ~at > 0.0)
    ports

let pick_random t = function
  | [] -> None
  | ports -> Some (Rng.choice t.rng (Array.of_list ports))

let busiest t ~telemetry ~window ~at ~exclude ports =
  let eligible = List.filter (fun p -> not (List.mem p exclude)) ports in
  let pool = if eligible = [] then ports else eligible in
  Testbed.Telemetry.busiest_port telemetry ~site:t.site ~candidates:pool ~window ~at

let next t ~telemetry ~window ~at =
  let all = Array.to_list t.candidates in
  let chosen =
    match t.policy with
    | Config.Fixed_ports ports ->
      (* No cycling: round-robin within the fixed set so several runs
         still cover every requested port. *)
      let ports = List.filter (fun p -> List.mem p all) ports in
      (match ports with
      | [] -> None
      | ports -> Some (List.nth ports (t.cycle mod List.length ports)))
    | Config.Uplinks_only ->
      let ports = List.filter (fun p -> List.mem p all) t.uplinks in
      (match ports with
      | [] -> None
      | ports -> Some (List.nth ports (t.cycle mod List.length ports)))
    | Config.All_ports_round_robin ->
      if all = [] then None
      else Some (List.nth all (t.cycle mod List.length all))
    | Config.Busiest_bias n ->
      let active = non_idle t ~telemetry ~window ~at all in
      if t.cycle mod n = n - 1 then begin
        (* The busiest port not sampled during the last n cycles. *)
        let recently = List.filteri (fun i _ -> i < n) t.recent in
        match busiest t ~telemetry ~window ~at ~exclude:recently active with
        | Some p -> Some p
        | None -> pick_random t (if active = [] then all else active)
      end
      else pick_random t (if active = [] then all else active)
  in
  (match chosen with Some p -> remember t p | None -> ());
  t.cycle <- t.cycle + 1;
  chosen

let history t = t.recent
