(** Two-stage occasion pipeline for the weekly service.

    The weekly service's occasions are independent — each week builds
    its own engine, fabric and traffic driver — but their results must
    be folded into the cumulative profile in week order.  {!run}
    overlaps the two stages: a {e producer} (simulate + gather occasion
    [k]) runs on a background domain while the {e consumer} (digest +
    absorb occasion [k-1]) runs on the calling domain, connected by a
    bounded in-order hand-off queue.  Because the queue preserves order
    and the consumer runs on one domain, an order-sensitive consumer
    such as [Analysis.Profile.Builder.add_report] produces output
    byte-identical to the sequential loop; only wall-clock changes.

    Each stage must own its resources: in particular a
    [Parallel.Pool] is owned by one domain at a time, so the producer
    and consumer must use distinct pools (or [Parallel.Pool.sequential]).

    Shared observability state is safe across the two stages: the
    metrics registry, the ring log and the span tracer are all
    mutex-protected (concurrent spans from the two stages may interleave
    in the trace tree, but aggregates stay exact).

    Metrics (in [Obs.Registry.default]): [pipeline_queue_depth] gauge,
    [pipeline_items_produced_total] / [pipeline_items_consumed_total],
    [pipeline_stage_busy_seconds_total{stage=produce|consume}] and
    [pipeline_overlap_seconds_total]. *)

type stats = {
  items : int;  (** items produced and consumed *)
  wall_s : float;  (** end-to-end wall time of the run *)
  produce_busy_s : float;  (** total seconds the producer stage worked *)
  consume_busy_s : float;  (** total seconds the consumer stage worked *)
  overlap_s : float;
      (** lower bound on concurrent stage work:
          [max 0 (produce_busy + consume_busy - wall)] *)
  max_depth : int;  (** high-water mark of the hand-off queue *)
}

val run :
  ?depth:int ->
  n:int ->
  produce:(int -> 'a) ->
  consume:(int -> 'a -> unit) ->
  unit ->
  stats
(** [run ~n ~produce ~consume ()] evaluates [consume k (produce k)] for
    [k = 0 .. n-1] with [produce] one stage ahead of [consume].
    [depth] (default 1) bounds how many finished-but-unconsumed items
    may exist, i.e. how far the producer may run ahead.

    [produce] runs on a background domain; [consume] runs on the
    calling domain, in item order.  If the background domain cannot be
    spawned, the whole run degrades to the plain sequential loop.

    An exception from [produce k] is re-raised in the caller after
    items [0 .. k-1] have been consumed; an exception from [consume]
    cancels the producer and is re-raised.  Raises [Invalid_argument]
    if [depth < 1] or [n < 0]. *)
