(** Runtime resource scaling — the paper's future-work controller.

    Patchwork's published design reserves all resources at start-up
    (§6.3, limitation 2).  The authors propose a controller that scales
    at runtime: scaling {e up} is easy (acquire another listening node
    when one becomes available), while scaling {e down} needs a signal;
    they suggest a "nice" factor that backs the profiler off when the
    testbed is busy.

    This module implements that proposal:

    - {b scale-up}: when the site has spare dedicated NICs and the
      scaler is below its ceiling, acquire one more instance (each in
      its own one-VM slice, so it can be released independently);
    - {b scale-down (nice)}: when the site's free dedicated NICs fall to
      zero while we hold more than our floor, release an instance — the
      profiler should never be the one holding the last NICs during a
      crunch. *)

type policy = {
  check_interval : float;  (** seconds between control decisions *)
  min_instances : int;  (** never release below this floor *)
  max_instances : int;  (** never acquire above this ceiling *)
  nice_free_nics : int;
      (** scale down when free dedicated NICs <= this (0 = only when
          the site is fully exhausted) *)
}

val default_policy : policy
(** Check every 10 minutes, floor 1, ceiling 4, nice at 0 free NICs. *)

type event =
  | Scaled_up of { at : float; instances : int }
  | Scaled_down of { at : float; instances : int }

type t

val create :
  fabric:Testbed.Fablib.t ->
  resolver:(int -> Traffic.Flow_model.spec option) ->
  config:Config.t ->
  log:Logging.t ->
  rng:Netcore.Rng.t ->
  site:string ->
  policy:policy ->
  t

val start : t -> until:float -> unit
(** Acquire the floor, start sampling, and begin the control loop. *)

val instances : t -> Instance.t list
(** All instances ever started (including released ones, whose samples
    are still part of the profile). *)

val live_instances : t -> int
val events : t -> event list
(** Scaling decisions, oldest first. *)

val samples : t -> Capture.sample list
val slice_seconds : t -> float
(** Total slice-seconds held so far (the frugality metric). *)

val shutdown : t -> unit
(** Release every slice still held. *)
