(** One capture sample on a mirrored port.

    A sample covers [sample_duration] seconds of the traffic crossing a
    mirror session.  The switch may already be dropping mirrored frames
    (combined Tx+Rx above the egress line rate); the capture host then
    loses more if the offered rate exceeds its capture method's
    capacity.  What survives is materialized into abstract capture
    records (and optionally real pcap bytes), after the configured
    filter, FPGA pre-processing and anonymization. *)

type stats = {
  offered_frames : float;  (** frames the mirror tried to clone *)
  switch_dropped : float;  (** lost at the switch egress queue *)
  host_dropped : float;  (** lost by the capture path *)
  captured_frames : float;  (** modeled count that reached storage *)
  stored_bytes : float;  (** pcap bytes written (with record headers) *)
  flow_estimate : float;
      (** expected number of distinct flows observable in this sample,
          derived from the attached flows and their subflow fan-out *)
  congestion_detected : bool;
      (** Patchwork's telemetry-based inference that the mirror is
          overloaded (requirement R3) *)
}

type sample = {
  sample_site : string;
  sample_port : int;  (** the mirrored port *)
  sample_start : float;
  sample_duration : float;
  acaps : Dissect.Acap.record list;
      (** materialized records, possibly a uniform thinning *)
  materialized_fraction : float;
      (** fraction of captured frames materialized into [acaps] *)
  pcap : bytes option;  (** real pcap bytes when [emit_pcap] *)
  stats : stats;
}

val run :
  fabric:Testbed.Fablib.t ->
  resolver:(int -> Traffic.Flow_model.spec option) ->
  config:Config.t ->
  rng:Netcore.Rng.t ->
  site:string ->
  mirror:int ->
  mirrored_port:int ->
  sample
(** Capture one sample starting now (the engine's current time is the
    sample start; the traffic state is read at that instant). *)
