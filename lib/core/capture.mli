(** One capture sample on a mirrored port.

    A sample covers [sample_duration] seconds of the traffic crossing a
    mirror session.  The switch may already be dropping mirrored frames
    (combined Tx+Rx above the egress line rate); the capture host then
    loses more if the offered rate exceeds its capture method's
    capacity.  What survives is materialized into abstract capture
    records (and optionally real pcap bytes), after the configured
    filter, FPGA pre-processing and anonymization. *)

type stats = {
  offered_frames : float;  (** frames the mirror tried to clone *)
  switch_dropped : float;  (** lost at the switch egress queue *)
  host_dropped : float;  (** lost by the capture path *)
  captured_frames : float;  (** modeled count that reached storage *)
  stored_bytes : float;  (** pcap bytes written (with record headers) *)
  flow_estimate : float;
      (** expected number of distinct flows observable in this sample,
          derived from the attached flows and their subflow fan-out *)
  congestion_detected : bool;
      (** Patchwork's telemetry-based inference that the mirror is
          overloaded (requirement R3) *)
}

type sample = {
  sample_site : string;
  sample_port : int;  (** the mirrored port *)
  sample_start : float;
  sample_duration : float;
  acaps : Dissect.Acap.record list;
      (** materialized records, possibly a uniform thinning *)
  materialized_fraction : float;
      (** fraction of captured frames materialized into [acaps] *)
  pcap : bytes option;  (** real pcap bytes when [emit_pcap] *)
  stats : stats;
}

(** The whole-sample loss split recorded into the attribution ledger:
    every offered frame/byte lands in exactly one bucket — stored, or
    one of the loss causes — so [offered = stored + Σ attributed] holds
    by construction (within the ledger's relative tolerance).  Offered
    and stored bytes are {e wire} bytes: truncation appears as a
    bytes-only cause and pcap record headers are excluded. *)
type breakdown = {
  b_offered_frames : float;
  b_offered_bytes : float;
  b_switch_dropped : float;
  b_host_dropped : float;  (** total host loss, throttling included *)
  b_captured_frames : float;
  b_stored_wire_bytes : float;
  b_causes : (Obs.Ledger.cause * float * float) list;
      (** (cause, frames, bytes); zero-amount entries included *)
}

val loss_breakdown :
  offered_pps:float ->
  duration:float ->
  avg_frame_size:float ->
  switch_drop_frac:float ->
  congested:bool ->
  capacity_pps:float ->
  throttle:float ->
  truncation:int ->
  host_path:Obs.Ledger.host_path ->
  breakdown
(** Pure, so the conservation property is testable over adversarial
    parameters without a fabric.  Switch loss is attributed to
    [Mirror_congestion] when [congested], else [Switch_drop]; host loss
    beyond the unthrottled capacity split goes to
    [Page_cache_throttle]. *)

val run :
  ?page_cache:Hostmodel.Page_cache.t ->
  fabric:Testbed.Fablib.t ->
  resolver:(int -> Traffic.Flow_model.spec option) ->
  config:Config.t ->
  rng:Netcore.Rng.t ->
  site:string ->
  mirror:int ->
  mirrored_port:int ->
  unit ->
  sample
(** Capture one sample starting now (the engine's current time is the
    sample start; the traffic state is read at that instant).

    When [page_cache] is given, the sample's keep rate is paced by the
    cache's current {!Hostmodel.Page_cache.throttle_factor} and the
    sample's stored bytes are written into (and drained from) the
    cache.  The sample's loss split is folded into
    [Obs.Ledger.default] while the ledger is enabled. *)
