module Fablib = Testbed.Fablib
module Switch = Testbed.Switch

type status = Running | Finished | Crashed of string

type t = {
  fabric : Fablib.t;
  resolver : int -> Traffic.Flow_model.spec option;
  config : Config.t;
  log : Logging.t;
  rng : Netcore.Rng.t;
  site : string;
  instance_id : int;
  nic_port : int;
  cycling : Port_cycling.t;
  page_cache : Hostmodel.Page_cache.t option;
  storage_bytes : float;
  mutable status : status;
  mutable samples : Capture.sample list;  (* newest first *)
  mutable storage_used : float;
  mutable cycles : int;
  mutable until : float;
}

let name t = Printf.sprintf "%s/instance-%d" t.site t.instance_id

let obs_counter name site =
  Obs.Registry.counter Obs.Registry.default name ~labels:[ ("site", site) ]

let create ~fabric ~resolver ~config ~log ~rng ~site ~instance_id ~nic_port
    ~candidates ~storage_bytes =
  let uplinks = Fablib.uplink_ports fabric ~site in
  let candidates = List.filter (fun p -> p <> nic_port) candidates in
  {
    fabric;
    resolver;
    config;
    log;
    rng;
    site;
    instance_id;
    nic_port;
    cycling =
      Port_cycling.create config.Config.port_selection ~rng ~site ~candidates
        ~uplinks;
    page_cache =
      (if config.Config.model_page_cache then
         Some (Hostmodel.Page_cache.of_profile config.Config.host_profile)
       else None);
    storage_bytes;
    status = Running;
    samples = [];
    storage_used = 0.0;
    cycles = 0;
    until = 0.0;
  }

let status t = t.status
let samples t = List.rev t.samples
let storage_used t = t.storage_used
let cycles_completed t = t.cycles

let log_event t ~level event =
  let now = Simcore.Engine.now (Fablib.engine t.fabric) in
  Logging.log t.log ~time:now ~level ~component:(name t) event

(* Watchdog check after every sample: the VM's disk is the hard limit
   (finding A4: frames can be captured faster than they can be
   stored). *)
let watchdog_check t =
  if t.storage_used > t.storage_bytes then begin
    t.status <- Crashed "storage exhausted";
    Obs.Registry.incr (obs_counter "instance_crashes_total" t.site);
    log_event t ~level:Logging.Error "watchdog: instance crashed (storage exhausted)"
  end

let rec schedule_cycle t =
  let engine = Fablib.engine t.fabric in
  if t.status <> Running then ()
  else if Simcore.Engine.now engine >= t.until then begin
    t.status <- Finished;
    log_event t ~level:Logging.Info
      (Printf.sprintf "finished: %d samples over %d cycles" (List.length t.samples)
         t.cycles)
  end
  else begin
    let now = Simcore.Engine.now engine in
    let telemetry = Fablib.telemetry t.fabric in
    match
      Port_cycling.next t.cycling ~telemetry
        ~window:t.config.Config.busiest_window ~at:now
    with
    | None ->
      (* Nothing to sample right now; try again next interval. *)
      Simcore.Engine.schedule engine ~delay:t.config.Config.sample_interval (fun _ ->
          schedule_cycle t)
    | Some port -> begin
      let sw = Fablib.switch t.fabric ~site:t.site in
      match Switch.add_mirror sw ~src_port:port ~dirs:Switch.Both ~dst_port:t.nic_port
      with
      | Error msg ->
        log_event t ~level:Logging.Warning
          (Printf.sprintf "mirror of port %d failed: %s" port msg);
        Simcore.Engine.schedule engine ~delay:t.config.Config.sample_interval
          (fun _ -> schedule_cycle t)
      | Ok mirror ->
        log_event t ~level:Logging.Debug (Printf.sprintf "cycling to port %d" port);
        let total_samples =
          t.config.Config.samples_per_run * t.config.Config.runs_per_cycle
        in
        run_samples t ~mirror ~port ~remaining:total_samples
    end
  end

and run_samples t ~mirror ~port ~remaining =
  let engine = Fablib.engine t.fabric in
  let finish_cycle () =
    let sw = Fablib.switch t.fabric ~site:t.site in
    Switch.remove_mirror sw mirror;
    t.cycles <- t.cycles + 1;
    Obs.Registry.incr (obs_counter "instance_cycles_total" t.site);
    schedule_cycle t
  in
  if t.status <> Running then begin
    let sw = Fablib.switch t.fabric ~site:t.site in
    Switch.remove_mirror sw mirror
  end
  else if remaining <= 0 || Simcore.Engine.now engine >= t.until then finish_cycle ()
  else if Netcore.Rng.bernoulli t.rng t.config.Config.instance_crash_prob then begin
    t.status <- Crashed "unexpected termination";
    Obs.Registry.incr (obs_counter "instance_crashes_total" t.site);
    log_event t ~level:Logging.Error "watchdog: instance terminated unexpectedly";
    let sw = Fablib.switch t.fabric ~site:t.site in
    Switch.remove_mirror sw mirror
  end
  else begin
    let sample =
      Capture.run ?page_cache:t.page_cache ~fabric:t.fabric ~resolver:t.resolver
        ~config:t.config ~rng:t.rng ~site:t.site ~mirror ~mirrored_port:port ()
    in
    (* The disk keeps draining between samples: let the cache recover
       over the idle remainder of the interval. *)
    (match t.page_cache with
    | Some pc ->
      Hostmodel.Page_cache.advance pc
        ~dt:
          (Float.max 0.0
             (t.config.Config.sample_interval -. t.config.Config.sample_duration))
    | None -> ());
    t.samples <- sample :: t.samples;
    Obs.Registry.incr (obs_counter "instance_samples_total" t.site);
    t.storage_used <- t.storage_used +. sample.Capture.stats.Capture.stored_bytes;
    if sample.Capture.stats.Capture.congestion_detected then
      log_event t ~level:Logging.Warning
        (Printf.sprintf "mirror congestion on port %d: sample incomplete at the switch"
           port);
    watchdog_check t;
    (* The sample itself occupies sample_duration; the next one starts
       one interval after this one began. *)
    Simcore.Engine.schedule engine ~delay:t.config.Config.sample_interval (fun _ ->
        run_samples t ~mirror ~port ~remaining:(remaining - 1))
  end

let start t ~until =
  t.until <- until;
  log_event t ~level:Logging.Info
    (Printf.sprintf "starting: NIC port %d, %s capture"
       t.nic_port
       (match t.config.Config.capture_method with
       | Config.Tcpdump -> "tcpdump"
       | Config.Dpdk _ -> "DPDK"
       | Config.Fpga_dpdk _ -> "FPGA+DPDK"));
  schedule_cycle t
