(** Port-selection heuristics for mirror cycling.

    Patchwork usually has far fewer dedicated NICs than there are switch
    ports worth sampling, so instances take turns mirroring ports.  The
    default heuristic is the paper's "busiest-ports bias, 1/n other
    non-idle port": during every n-1 of n cycles it picks a random
    non-idle port, and on the remaining cycle the busiest port that has
    not been sampled during the last n cycles — fair coverage of
    non-idle ports without starving quiet ones. *)

type t

val create :
  Config.port_selection ->
  rng:Netcore.Rng.t ->
  site:string ->
  candidates:int list ->
  uplinks:int list ->
  t
(** [candidates] are the ports this instance may mirror (Patchwork's own
    NIC ports already excluded). *)

val next :
  t ->
  telemetry:Testbed.Telemetry.t ->
  window:float ->
  at:float ->
  int option
(** Choose the next port to mirror; [None] when the heuristic has no
    eligible port (e.g. empty candidate set).  Consults telemetry for
    activity ranking. *)

val history : t -> int list
(** Most recent selections, newest first. *)
