(** Iterative back-off during resource acquisition.

    Patchwork requests as many listening nodes as it would like (one VM
    + dedicated dual-port NIC per instance, 2 cores / 8 GB / 100 GB
    each); if the site cannot satisfy the request, it scales the request
    down by one VM and one NIC and retries, trading resources for sample
    quality (§6.2.1).  Transient back-end errors are retried a bounded
    number of times. *)

type outcome =
  | Acquired of { slice : Testbed.Allocator.slice; instances : int; degraded : bool }
      (** [degraded] when back-off reduced the request *)
  | No_resources  (** even a single instance could not be placed *)
  | Backend_failed of string  (** control framework kept erroring *)

val instance_vm : Testbed.Allocator.vm_request
(** The per-instance listening node: 2 cores, 8 GB RAM, 100 GB storage,
    1 dedicated dual-port NIC. *)

val acquire :
  Testbed.Allocator.t ->
  log:Logging.t ->
  time:float ->
  site:string ->
  desired_instances:int ->
  ?backend_retries:int ->
  unit ->
  outcome
(** Try to create the site slice with [desired_instances] VMs, backing
    off one instance at a time. *)
