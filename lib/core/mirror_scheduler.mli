(** Shared scheduling of mirror ports — the paper's future-work
    intermediate layer.

    FABRIC lets only one user mirror a given switch port at a time, so
    Patchwork instances (and other users' captures) can starve each
    other (§6.3, limitation 1: "Sharing could be achieved by having an
    intermediate layer that schedules the use of mirrored ports on
    behalf of more than one FABRIC user").

    This scheduler implements that layer: users submit standing requests
    for (source port → their NIC port); every quantum the scheduler
    rotates contended ports to the pending user with the least
    accumulated service time (max-min fair in the long run), installing
    and removing the underlying switch mirror sessions itself. *)

type grant = {
  g_user : string;
  g_src_port : int;
  g_dst_port : int;
  g_mirror : int;  (** the underlying switch session id *)
}

type t

val create : Simcore.Engine.t -> Testbed.Switch.t -> quantum:float -> t

val submit : t -> user:string -> src_port:int -> dst_port:int -> unit
(** Standing request; the same user may request several ports.  Raises
    [Invalid_argument] if this user already requested this port. *)

val cancel : t -> user:string -> src_port:int -> unit
(** Withdraw a request (any active grant is revoked at once). *)

val on_change : t -> (granted:grant list -> revoked:grant list -> unit) -> unit
(** Called after every scheduling round that changes assignments; users
    hook their capture start/stop here. *)

val start : t -> until:float -> unit
(** Run a scheduling round now and then every quantum. *)

val current_grants : t -> grant list

val service_time : t -> user:string -> float
(** Total mirror-seconds this user has been granted so far. *)

val fairness : t -> float
(** Jain's fairness index over all users' service times (1 = perfectly
    fair); 1.0 when fewer than two users. *)
