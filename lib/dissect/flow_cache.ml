(* A megaflow-style computational cache for the digest hot path (after
   OVS's NSDI'22 computational cache): most frames belong to flows the
   digest has already classified, so the full dissect+abstract pipeline
   runs once per flow and later frames replay the memoized
   classification after a cheap prefix comparison.

   Correctness rests on Dissector.meta: an entry is installed only from
   a clean (untruncated, cacheable) parse, and it stores every byte the
   dissection examined.  A candidate frame hits only when

     - its capture is at least as long as the stored prefix,
     - its capture reaches the outermost IP datagram end (e_wire_min),
       so the extent narrowing that shaped the parse succeeds again, and
     - its prefix bytes equal the stored ones — byte compare, never
       hash-only — except the TCP flags byte, which is the one
       per-frame-variable field the abstract record reads and is
       re-read from the frame at its memoized offset.

   Under those conditions the full dissection of the candidate provably
   reproduces the stored classification (all reads and remaining-
   threshold checks land inside the compared prefix or inside
   cap-length-independent narrowed extents), so a hit is bit-identical
   to the uncached path — the cache can change only speed, never
   results, at any pool size. *)

(* The record path installs the full abstract fields so a hit can
   rebuild an Acap.record; the overlay path needs only the key and the
   memoized offsets, so its entries skip the record baggage. *)
type detail =
  | Full of {
      e_stack : string list;
      e_vlan_ids : int list;
      e_mpls_labels : int list;
      e_src : string option;
      e_dst : string option;
      e_l4 : (int * int) option;
    }
  | Key_only

type entry = {
  e_hash : int;
  e_prefix : string;  (* the examined bytes at install time *)
  e_flags_off : int;  (* TCP flags byte offset, -1 when the flow has none *)
  e_l3_off : int;  (* innermost IP header offset, -1 without one *)
  e_wire_min : int;  (* outermost IP datagram end, 0 without one *)
  e_flow_key : string option;  (* interned: shared by every hit *)
  e_detail : detail;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable collisions : int;  (* occupied slot, prefix mismatch *)
  mutable installs : int;
  mutable evictions : int;  (* installs over an occupied slot *)
}

type t = {
  mask : int;
  slots : entry option array;  (* direct-mapped, power-of-two *)
  stats : stats;
}

let max_bits = 24

let create ~bits =
  if bits < 0 || bits > max_bits then
    invalid_arg "Flow_cache.create: bits must be in [0, 24]";
  {
    mask = (1 lsl bits) - 1;
    slots = Array.make (1 lsl bits) None;
    stats = { hits = 0; misses = 0; collisions = 0; installs = 0; evictions = 0 };
  }

let slots t = Array.length t.slots
let stats t = t.stats

let lookup t slice =
  let h = Packet.Slice.prefix_hash slice in
  match Array.unsafe_get t.slots (h land t.mask) with
  | Some e
    when e.e_hash = h
         && Packet.Slice.length slice >= e.e_wire_min
         && Packet.Slice.equal_string_prefix slice e.e_prefix
              ~skip:e.e_flags_off ->
    t.stats.hits <- t.stats.hits + 1;
    Some e
  | Some _ ->
    (* Occupied but not this flow (or the frame is too short to verify):
       fall back to full dissection rather than ever trusting the hash. *)
    t.stats.misses <- t.stats.misses + 1;
    t.stats.collisions <- t.stats.collisions + 1;
    None
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    None

let hit_flow_key e = e.e_flow_key

let hit_rst e slice =
  e.e_flags_off >= 0 && Packet.Slice.get_u8 slice e.e_flags_off land 0x04 <> 0

(* On a verified hit the only record fields that can differ from the
   install-time frame are the per-frame ones, all read directly: ts and
   orig_len from the index entry, cap_len from the slice, tcp_rst from
   the memoized flags offset, truncated from the length comparison
   (the extent narrowing cannot fail given cap_len >= e_wire_min). *)
let hit_record e ~ts ~orig_len slice =
  match e.e_detail with
  | Full f ->
    {
      Acap.ts;
      orig_len;
      cap_len = Packet.Slice.length slice;
      stack = f.e_stack;
      vlan_ids = f.e_vlan_ids;
      mpls_labels = f.e_mpls_labels;
      src = f.e_src;
      dst = f.e_dst;
      l4 = f.e_l4;
      tcp_rst = hit_rst e slice;
      truncated = orig_len > Packet.Slice.length slice;
    }
  | Key_only ->
    (* Key-only entries come from the overlay flows path, which never
       asks for records; if an acap caller ever shares such a cache,
       re-dissect rather than fabricate fields. *)
    Acap.of_slice ~ts ~orig_len slice

(* The miss path: full dissection, then install when the parse was
   clean.  Truncated frames and parses whose outcome depended on the
   capture length are never installed — they would poison later hits. *)
let classify t ~ts ~orig_len slice =
  let meta = Dissector.fresh_meta () in
  let d = Dissector.dissect_slice_meta ~orig_len ~meta slice in
  let cap_len = Packet.Slice.length slice in
  let r =
    Acap.abstract ~ts ~orig_len ~cap_len ~truncated:d.Dissector.truncated
      d.Dissector.headers
  in
  if (not r.Acap.truncated) && meta.Dissector.m_cacheable then begin
    (* A guarded peek can mark one byte past the capture end as
       examined without reading it; clamp so the stored prefix is
       always real frame bytes. *)
    let plen = min meta.Dissector.m_examined cap_len in
    if plen > 0 then begin
      let h = Packet.Slice.prefix_hash slice in
      let slot = h land t.mask in
      (match Array.unsafe_get t.slots slot with
      | Some _ -> t.stats.evictions <- t.stats.evictions + 1
      | None -> ());
      Array.unsafe_set t.slots slot
        (Some
           {
             e_hash = h;
             e_prefix = Packet.Slice.prefix_string slice plen;
             e_flags_off = meta.Dissector.m_flags_off;
             e_l3_off = meta.Dissector.m_l3_off;
             e_wire_min = meta.Dissector.m_wire_min;
             e_flow_key = Acap.flow_key r;
             e_detail =
               Full
                 {
                   e_stack = r.Acap.stack;
                   e_vlan_ids = r.Acap.vlan_ids;
                   e_mpls_labels = r.Acap.mpls_labels;
                   e_src = r.Acap.src;
                   e_dst = r.Acap.dst;
                   e_l4 = r.Acap.l4;
                 };
           });
      t.stats.installs <- t.stats.installs + 1
    end
  end;
  r

(* Key-only installs for the overlay flows path: same gating as
   [classify] (clean, cacheable, non-empty prefix) with the meta fields
   passed in instead of re-derived, and no record fields stored. *)
let install_key t slice ~truncated ~cacheable ~examined ~flags_off ~l3_off
    ~wire_min ~key =
  if (not truncated) && cacheable then begin
    let plen = min examined (Packet.Slice.length slice) in
    if plen > 0 then begin
      let h = Packet.Slice.prefix_hash slice in
      let slot = h land t.mask in
      (match Array.unsafe_get t.slots slot with
      | Some _ -> t.stats.evictions <- t.stats.evictions + 1
      | None -> ());
      Array.unsafe_set t.slots slot
        (Some
           {
             e_hash = h;
             e_prefix = Packet.Slice.prefix_string slice plen;
             e_flags_off = flags_off;
             e_l3_off = l3_off;
             e_wire_min = wire_min;
             e_flow_key = key;
             e_detail = Key_only;
           });
      t.stats.installs <- t.stats.installs + 1
    end
  end

let record t ~ts ~orig_len slice =
  match lookup t slice with
  | Some e -> hit_record e ~ts ~orig_len slice
  | None -> classify t ~ts ~orig_len slice
