(** Wireshark-style protocol dissection of wire bytes.

    This is the inverse of {!Packet.Codec.encode}: it reconstructs the
    typed header stack from raw bytes.  As in the paper's Digest step
    (which uses Wireshark/tshark dissectors), application layers are
    classified by well-known layer-4 port and then verified against
    their wire syntax where possible (TLS record header, SSH banner,
    HTTP method/status line, QUIC long header).

    Dissection is tolerant of snap-length truncation: a header that runs
    past the end of the captured bytes terminates dissection and marks
    the result truncated, which is the normal case for Patchwork's
    200-byte captures. *)

type result = {
  headers : Packet.Headers.header list;  (** outermost first *)
  payload_len : int;
      (** opaque bytes after the last parsed header, within the extent
          declared by the innermost IP header (so Ethernet minimum-size
          padding is not counted for IP frames) *)
  truncated : bool;
      (** capture ended before the full packet: either a header was cut
          short or [orig_len] exceeds the captured bytes *)
}

val dissect : ?orig_len:int -> bytes -> result
(** Dissect a captured frame.  [orig_len] is the original wire length
    when the capture was snapped (as recorded in pcap); it defaults to
    the buffer length. *)

val dissect_slice : ?orig_len:int -> Packet.Slice.t -> result
(** Zero-copy flavour of {!dissect}: headers are read in place through
    the slice's bounds-checked cursor, never copying the underlying
    capture buffer.  Produces results identical to dissecting
    [Slice.to_bytes slice]. *)

type meta = {
  mutable m_examined : int;
      (** frame-relative upper bound of every byte the dissection read
          or peeked (skipped bytes excluded: their values cannot change
          the outcome).  Two untruncated frames that agree on their
          first [m_examined] bytes classify identically. *)
  mutable m_flags_off : int;
      (** frame-relative offset of the TCP flags byte, [-1] without TCP;
          the only per-frame-variable field below L3 that the abstract
          record depends on *)
  mutable m_l3_off : int;
      (** frame-relative offset of the innermost IP header, [-1]
          without one *)
  mutable m_wire_min : int;
      (** frame-relative end of the outermost IP datagram ([0] when no
          IP extent was narrowed): captures at least this long narrow
          identically, shorter ones would have been marked truncated *)
  mutable m_cacheable : bool;
      (** [false] when the classification consulted the capture length
          outside any IP narrowing, so it cannot be replayed from the
          examined prefix alone *)
}
(** What {!dissect_slice_meta} additionally reports so the flow cache
    can decide whether (and on which byte range) a classification may
    be reused for later frames. *)

val fresh_meta : unit -> meta

val dissect_slice_meta : ?orig_len:int -> meta:meta -> Packet.Slice.t -> result
(** Same result as {!dissect_slice}, additionally filling [meta].  The
    extra bookkeeping touches no bytes beyond what {!dissect_slice}
    reads. *)

val dissect_packet : Packet.Pcap.packet -> result
(** Convenience wrapper over a pcap record. *)
