(** Flow-key computational cache for the digest hot path.

    Modeled on OVS's megaflow/computational cache (Rashelbach et al.,
    NSDI'22): a bounded, power-of-two, direct-mapped cache keyed on a
    cheap hash of the frame's header prefix, mapping to the fully
    materialized classification — the interned flow key, the abstract
    stack / VLAN / MPLS / L3 / L4 fields, and memoized offsets for the
    per-frame-variable fields (TCP flags byte, innermost IP header,
    outermost datagram end).  On a hit the fused digest jumps straight
    to flow accounting with no intermediate header records; on a miss
    the full dissection runs and installs the entry.

    Hits are decided by comparing the stored prefix bytes — never by
    hash alone — so a slot collision falls back to full dissection
    instead of misclassifying.  Entries are installed only from clean
    (untruncated) parses, and a hit additionally requires the capture
    to reach the outermost IP datagram end, which makes a hit provably
    bit-identical to the uncached path: the cache changes speed, never
    results.  Instances are not thread-safe; the digest creates one per
    range worker, which also makes cached results independent of the
    pool size by construction. *)

type t

type entry
(** A verified hit: the memoized classification of one flow. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable collisions : int;
      (** misses whose slot was occupied by a different flow *)
  mutable installs : int;
  mutable evictions : int;  (** installs that overwrote an occupied slot *)
}

val create : bits:int -> t
(** A direct-mapped cache with [2^bits] slots ([bits = 0] is a single
    slot, useful to stress eviction).  Raises [Invalid_argument]
    outside [0, 24]. *)

val slots : t -> int

val stats : t -> stats
(** Live counters (the digest batches them into [lib/obs] once per
    capture, never per frame). *)

val lookup : t -> Packet.Slice.t -> entry option
(** Probe the slot for this frame's prefix hash and verify the stored
    prefix bytes (masking the TCP flags byte).  [None] on empty slot,
    prefix mismatch, or a frame too short to verify — callers then take
    {!classify}. *)

val hit_flow_key : entry -> string option
(** The interned flow key ([None] for flows with no L3 header). *)

val hit_rst : entry -> Packet.Slice.t -> bool
(** The frame's RST bit, read at the memoized flags offset. *)

val hit_record : entry -> ts:float -> orig_len:int -> Packet.Slice.t -> Acap.record
(** The full abstract record for a hit frame: memoized classification
    plus the per-frame fields read directly ([ts], [orig_len],
    [cap_len], [tcp_rst], [truncated]).  Bit-identical to
    {!Acap.of_slice} on the same frame. *)

val classify : t -> ts:float -> orig_len:int -> Packet.Slice.t -> Acap.record
(** The miss path: full dissection and abstraction, installing the
    entry when the parse was clean (truncated frames and parses whose
    outcome depended on the capture length are never installed). *)

val record : t -> ts:float -> orig_len:int -> Packet.Slice.t -> Acap.record
(** [lookup] then {!hit_record}, falling back to {!classify}: a drop-in
    cached replacement for {!Acap.of_slice}. *)

val install_key :
  t ->
  Packet.Slice.t ->
  truncated:bool ->
  cacheable:bool ->
  examined:int ->
  flags_off:int ->
  l3_off:int ->
  wire_min:int ->
  key:string option ->
  unit
(** Install a key-only entry from an overlay classification ({!Overlay}
    supplies every field).  Gated exactly like {!classify}'s install —
    nothing is stored for truncated, uncacheable or zero-prefix parses.
    Key-only entries serve {!hit_flow_key} / {!hit_rst}; {!hit_record}
    on one re-dissects instead of fabricating record fields. *)
