(** Well-known service catalog.

    tshark classifies the payload above TCP/UDP by well-known port and
    counts it as another header — the paper's Fig. 11 counts those
    service layers among the "distinct headers" seen per site.  This
    catalog maps ports to service tokens for the same purpose.  It also
    serves as the palette from which the traffic generator draws
    application protocols. *)

type l4 = Tcp | Udp

type service = { service_name : string; port : int; l4 : l4 }

val catalog : service array
(** All known services, unique per (port, l4). *)

val lookup : l4 -> src_port:int -> dst_port:int -> service option
(** Service matching either port (destination takes precedence). *)

val by_name : string -> service option
