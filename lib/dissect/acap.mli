(** Abstract captures ("acap").

    The paper's Digest step runs protocol dissectors over raw pcaps and
    keeps, for each frame prefix, an abstract stack of headers together
    with timing and size metadata — discarding everything else.  An acap
    stream is much smaller than the pcap it came from and is what all
    subsequent analyses consume. *)

type record = {
  ts : float;
  orig_len : int;  (** wire length of the original frame *)
  cap_len : int;  (** bytes that were captured *)
  stack : string list;  (** protocol tokens, outermost first *)
  vlan_ids : int list;
  mpls_labels : int list;
  src : string option;  (** innermost L3 source, rendered *)
  dst : string option;
  l4 : (int * int) option;  (** (src port, dst port) *)
  tcp_rst : bool;  (** RST-flagged TCP segment *)
  truncated : bool;
}

val abstract :
  ts:float ->
  orig_len:int ->
  cap_len:int ->
  truncated:bool ->
  Packet.Headers.header list ->
  record
(** Abstract an already-dissected header stack (one left-to-right walk;
    innermost L3/L4 win).  The building block behind every [of_*]
    entry point and the flow cache's miss path. *)

val of_packet : Packet.Pcap.packet -> record
(** Dissect a pcap record and abstract it. *)

val of_slice : ts:float -> orig_len:int -> Packet.Slice.t -> record
(** Zero-copy flavour of {!of_packet}: dissect a view into the shared
    capture buffer in place.  Bit-identical to materializing the slice
    and calling {!of_packet}. *)

val of_entry : bytes -> Packet.Pcap.index_entry -> record
(** Resolve an index entry against its capture buffer and abstract it
    through the slice path. *)

val of_frame : ts:float -> Packet.Frame.t -> record
(** Abstract a frame directly (no wire round-trip); used by fast paths
    that skip serialization. *)

val to_line : record -> string
(** Serialize as one tab-separated line. *)

val of_line : string -> (record, string) result
(** Inverse of {!to_line}. *)

val flow_key : record -> string option
(** Flow identity as used by the paper's analysis: virtualization tags
    (VLAN + MPLS) plus network- and transport-layer fields, so the same
    10/8 addresses in different slices yield different flows.  [None]
    for frames with no L3 header. *)
