module H = Packet.Headers

type record = {
  ts : float;
  orig_len : int;
  cap_len : int;
  stack : string list;
  vlan_ids : int list;
  mpls_labels : int list;
  src : string option;
  dst : string option;
  l4 : (int * int) option;
  tcp_rst : bool;
  truncated : bool;
}

(* When dissection stopped at a bare TCP/UDP header, classify the
   payload above it by well-known port, as tshark does; the service
   token counts as one more "header" in the abstract stack. *)
let service_token (last : H.header option) =
  match last with
  | Some (H.Tcp { src_port; dst_port; _ }) ->
    Option.map
      (fun s -> s.Services.service_name)
      (Services.lookup Services.Tcp ~src_port ~dst_port)
  | Some (H.Udp { src_port; dst_port }) ->
    Option.map
      (fun s -> s.Services.service_name)
      (Services.lookup Services.Udp ~src_port ~dst_port)
  | _ -> None

(* One left-to-right walk collects everything the record needs: the
   header list is consed back-to-front and innermost-wins fields (L3
   endpoints, L4 ports) simply overwrite as the walk descends, so the
   single fold produces exactly what six separate walks used to.  The
   innermost IP is rendered once, after the walk. *)
let abstract ~ts ~orig_len ~cap_len ~truncated (headers : H.header list) =
  let rec walk stack_rev vlans_rev mpls_rev l3 l4 rst last = function
    | [] ->
      let stack =
        List.rev
          (match service_token last with
          | Some token -> token :: stack_rev
          | None -> stack_rev)
      in
      let src, dst =
        match l3 with
        | Some (H.Ipv4 { src; dst; _ }) ->
          (Some (Netcore.Ipv4_addr.to_string src),
           Some (Netcore.Ipv4_addr.to_string dst))
        | Some (H.Ipv6 { src; dst; _ }) ->
          (Some (Netcore.Ipv6_addr.to_string src),
           Some (Netcore.Ipv6_addr.to_string dst))
        | _ -> (None, None)
      in
      {
        ts; orig_len; cap_len; stack;
        vlan_ids = List.rev vlans_rev;
        mpls_labels = List.rev mpls_rev;
        src; dst; l4; tcp_rst = rst; truncated;
      }
    | h :: rest ->
      let stack_rev = H.name h :: stack_rev in
      let vlans_rev =
        match h with H.Vlan { vid; _ } -> vid :: vlans_rev | _ -> vlans_rev
      in
      let mpls_rev =
        match h with H.Mpls { label; _ } -> label :: mpls_rev | _ -> mpls_rev
      in
      let l3 = match h with H.Ipv4 _ | H.Ipv6 _ -> Some h | _ -> l3 in
      let l4 =
        match h with
        | H.Tcp { src_port; dst_port; _ } | H.Udp { src_port; dst_port } ->
          Some (src_port, dst_port)
        | _ -> l4
      in
      let rst =
        match h with H.Tcp { flags; _ } -> rst || flags.rst | _ -> rst
      in
      walk stack_rev vlans_rev mpls_rev l3 l4 rst (Some h) rest
  in
  walk [] [] [] None None false None headers

let of_packet (p : Packet.Pcap.packet) =
  let d = Dissector.dissect_packet p in
  abstract ~ts:p.ts ~orig_len:p.orig_len ~cap_len:(Bytes.length p.data)
    ~truncated:d.truncated d.headers

let of_slice ~ts ~orig_len slice =
  let d = Dissector.dissect_slice ~orig_len slice in
  abstract ~ts ~orig_len ~cap_len:(Packet.Slice.length slice)
    ~truncated:d.truncated d.headers

let of_entry buf (e : Packet.Pcap.index_entry) =
  of_slice ~ts:e.Packet.Pcap.ts ~orig_len:e.Packet.Pcap.orig_len
    (Packet.Pcap.Reader.slice buf e)

let of_frame ~ts (frame : Packet.Frame.t) =
  let len = Packet.Frame.wire_length frame in
  abstract ~ts ~orig_len:len ~cap_len:len ~truncated:false frame.headers

(* One record per line; fields are tab-separated, list elements
   comma-separated, missing values are "-".  Serialization runs once
   per frame on the digest output path, so fields are written straight
   into one buffer with direct digit rendering instead of Printf
   (format interpretation and float boxing dominate the sprintf cost,
   as with Ipv4_addr.to_string). *)

let opt_str = function None -> "-" | Some s -> s

let buf_add_ints b sep = function
  | [] -> Buffer.add_char b '-'
  | v :: rest ->
    Buffer.add_string b (string_of_int v);
    List.iter
      (fun v ->
        Buffer.add_char b sep;
        Buffer.add_string b (string_of_int v))
      rest

(* Fixed-point rendering equivalent to ["%.6f"] for the timestamps this
   code meets (non-negative, well under 2^52 us, so [v *. 1e6] is off
   by < 0.5 from the exact product and rounding recovers the same
   microsecond count printf prints).  Anything outside that range falls
   back to Printf. *)
let buf_add_ts b v =
  if not (Float.is_finite v) || v < 0.0 || v >= 1e15 then
    Buffer.add_string b (Printf.sprintf "%.6f" v)
  else begin
    let total = Int64.of_float (Float.round (v *. 1e6)) in
    let sec = Int64.div total 1_000_000L in
    let usec = Int64.to_int (Int64.rem total 1_000_000L) in
    Buffer.add_string b (Int64.to_string sec);
    Buffer.add_char b '.';
    let digits = Bytes.create 6 in
    let rec fill i u =
      if i >= 0 then begin
        Bytes.unsafe_set digits i (Char.unsafe_chr (48 + (u mod 10)));
        fill (i - 1) (u / 10)
      end
    in
    fill 5 usec;
    Buffer.add_bytes b digits
  end

let to_line r =
  let b = Buffer.create 96 in
  buf_add_ts b r.ts;
  Buffer.add_char b '\t';
  Buffer.add_string b (string_of_int r.orig_len);
  Buffer.add_char b '\t';
  Buffer.add_string b (string_of_int r.cap_len);
  Buffer.add_char b '\t';
  (match r.stack with
  | [] -> ()
  | tok :: rest ->
    Buffer.add_string b tok;
    List.iter
      (fun tok ->
        Buffer.add_char b ',';
        Buffer.add_string b tok)
      rest);
  Buffer.add_char b '\t';
  buf_add_ints b ',' r.vlan_ids;
  Buffer.add_char b '\t';
  buf_add_ints b ',' r.mpls_labels;
  Buffer.add_char b '\t';
  Buffer.add_string b (opt_str r.src);
  Buffer.add_char b '\t';
  Buffer.add_string b (opt_str r.dst);
  Buffer.add_char b '\t';
  (match r.l4 with
  | None -> Buffer.add_char b '-'
  | Some (s, d) ->
    Buffer.add_string b (string_of_int s);
    Buffer.add_char b ',';
    Buffer.add_string b (string_of_int d));
  Buffer.add_char b '\t';
  Buffer.add_char b (if r.tcp_rst then 'R' else '-');
  Buffer.add_char b '\t';
  Buffer.add_char b (if r.truncated then 'T' else '-');
  Buffer.contents b

let parse_opt = function "-" -> None | s -> Some s

let parse_ints = function
  | "-" -> []
  | s -> List.map int_of_string (String.split_on_char ',' s)

let of_line line =
  match String.split_on_char '\t' line with
  | [ ts; orig_len; cap_len; stack; vlans; mplss; src; dst; l4; rst; trunc ] -> (
    try
      Ok
        {
          ts = float_of_string ts;
          orig_len = int_of_string orig_len;
          cap_len = int_of_string cap_len;
          stack = (if stack = "" then [] else String.split_on_char ',' stack);
          vlan_ids = parse_ints vlans;
          mpls_labels = parse_ints mplss;
          src = parse_opt src;
          dst = parse_opt dst;
          l4 =
            (match l4 with
            | "-" -> None
            | s -> (
              match String.split_on_char ',' s with
              | [ a; b ] -> Some (int_of_string a, int_of_string b)
              | _ -> failwith "bad l4"));
          tcp_rst = rst = "R";
          truncated = trunc = "T";
        }
    with Failure msg -> Error ("Acap.of_line: " ^ msg))
  | _ -> Error "Acap.of_line: wrong field count"

(* Runs once per frame in every shard add and on every cache miss, so
   the key is written directly into one buffer — no Printf, no
   intermediate list-of-strings. *)
let flow_key r =
  match (r.src, r.dst) with
  | Some src, Some dst ->
    let proto =
      if List.mem "tcp" r.stack then "tcp"
      else if List.mem "udp" r.stack then "udp"
      else if List.mem "icmp" r.stack then "icmp"
      else if List.mem "icmpv6" r.stack then "icmpv6"
      else "other"
    in
    let b = Buffer.create 64 in
    buf_add_ints b ',' r.vlan_ids;
    Buffer.add_char b '|';
    buf_add_ints b ',' r.mpls_labels;
    Buffer.add_char b '|';
    Buffer.add_string b src;
    Buffer.add_char b '|';
    Buffer.add_string b dst;
    Buffer.add_char b '|';
    Buffer.add_string b proto;
    Buffer.add_char b '|';
    (match r.l4 with
    | None -> Buffer.add_char b '-'
    | Some (s, d) ->
      Buffer.add_string b (string_of_int s);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int d));
    Some (Buffer.contents b)
  | _ -> None
