module H = Packet.Headers

type record = {
  ts : float;
  orig_len : int;
  cap_len : int;
  stack : string list;
  vlan_ids : int list;
  mpls_labels : int list;
  src : string option;
  dst : string option;
  l4 : (int * int) option;
  tcp_rst : bool;
  truncated : bool;
}

(* When dissection stopped at a bare TCP/UDP header, classify the
   payload above it by well-known port, as tshark does; the service
   token counts as one more "header" in the abstract stack. *)
let service_token (headers : H.header list) =
  let rec last acc = function
    | [] -> acc
    | h :: rest -> last (Some h) rest
  in
  match last None headers with
  | Some (H.Tcp { src_port; dst_port; _ }) ->
    Option.map
      (fun s -> s.Services.service_name)
      (Services.lookup Services.Tcp ~src_port ~dst_port)
  | Some (H.Udp { src_port; dst_port }) ->
    Option.map
      (fun s -> s.Services.service_name)
      (Services.lookup Services.Udp ~src_port ~dst_port)
  | _ -> None

let abstract ~ts ~orig_len ~cap_len ~truncated (headers : H.header list) =
  let stack = List.map H.name headers in
  let stack =
    match service_token headers with
    | Some token -> stack @ [ token ]
    | None -> stack
  in
  let vlan_ids =
    List.filter_map (function H.Vlan { vid; _ } -> Some vid | _ -> None) headers
  in
  let mpls_labels =
    List.filter_map (function H.Mpls { label; _ } -> Some label | _ -> None) headers
  in
  let src, dst =
    let render = function
      | H.Ipv4 { src; dst; _ } ->
        Some (Netcore.Ipv4_addr.to_string src, Netcore.Ipv4_addr.to_string dst)
      | H.Ipv6 { src; dst; _ } ->
        Some (Netcore.Ipv6_addr.to_string src, Netcore.Ipv6_addr.to_string dst)
      | _ -> None
    in
    let rec innermost acc = function
      | [] -> acc
      | h :: rest -> innermost (match render h with Some p -> Some p | None -> acc) rest
    in
    match innermost None headers with
    | Some (s, d) -> (Some s, Some d)
    | None -> (None, None)
  in
  let l4 =
    let rec innermost acc = function
      | [] -> acc
      | H.Tcp { src_port; dst_port; _ } :: rest -> innermost (Some (src_port, dst_port)) rest
      | H.Udp { src_port; dst_port } :: rest -> innermost (Some (src_port, dst_port)) rest
      | _ :: rest -> innermost acc rest
    in
    innermost None headers
  in
  let tcp_rst =
    List.exists (function H.Tcp { flags; _ } -> flags.rst | _ -> false) headers
  in
  { ts; orig_len; cap_len; stack; vlan_ids; mpls_labels; src; dst; l4; tcp_rst; truncated }

let of_packet (p : Packet.Pcap.packet) =
  let d = Dissector.dissect_packet p in
  abstract ~ts:p.ts ~orig_len:p.orig_len ~cap_len:(Bytes.length p.data)
    ~truncated:d.truncated d.headers

let of_slice ~ts ~orig_len slice =
  let d = Dissector.dissect_slice ~orig_len slice in
  abstract ~ts ~orig_len ~cap_len:(Packet.Slice.length slice)
    ~truncated:d.truncated d.headers

let of_entry buf (e : Packet.Pcap.index_entry) =
  of_slice ~ts:e.Packet.Pcap.ts ~orig_len:e.Packet.Pcap.orig_len
    (Packet.Pcap.Reader.slice buf e)

let of_frame ~ts (frame : Packet.Frame.t) =
  let len = Packet.Frame.wire_length frame in
  abstract ~ts ~orig_len:len ~cap_len:len ~truncated:false frame.headers

(* One record per line; fields are tab-separated, list elements
   comma-separated, missing values are "-". *)

let opt_str = function None -> "-" | Some s -> s

let ints_str = function
  | [] -> "-"
  | l -> String.concat "," (List.map string_of_int l)

let to_line r =
  String.concat "\t"
    [
      Printf.sprintf "%.6f" r.ts;
      string_of_int r.orig_len;
      string_of_int r.cap_len;
      String.concat "," r.stack;
      ints_str r.vlan_ids;
      ints_str r.mpls_labels;
      opt_str r.src;
      opt_str r.dst;
      (match r.l4 with None -> "-" | Some (s, d) -> Printf.sprintf "%d,%d" s d);
      (if r.tcp_rst then "R" else "-");
      (if r.truncated then "T" else "-");
    ]

let parse_opt = function "-" -> None | s -> Some s

let parse_ints = function
  | "-" -> []
  | s -> List.map int_of_string (String.split_on_char ',' s)

let of_line line =
  match String.split_on_char '\t' line with
  | [ ts; orig_len; cap_len; stack; vlans; mplss; src; dst; l4; rst; trunc ] -> (
    try
      Ok
        {
          ts = float_of_string ts;
          orig_len = int_of_string orig_len;
          cap_len = int_of_string cap_len;
          stack = (if stack = "" then [] else String.split_on_char ',' stack);
          vlan_ids = parse_ints vlans;
          mpls_labels = parse_ints mplss;
          src = parse_opt src;
          dst = parse_opt dst;
          l4 =
            (match l4 with
            | "-" -> None
            | s -> (
              match String.split_on_char ',' s with
              | [ a; b ] -> Some (int_of_string a, int_of_string b)
              | _ -> failwith "bad l4"));
          tcp_rst = rst = "R";
          truncated = trunc = "T";
        }
    with Failure msg -> Error ("Acap.of_line: " ^ msg))
  | _ -> Error "Acap.of_line: wrong field count"

let flow_key r =
  match (r.src, r.dst) with
  | Some src, Some dst ->
    let l4_part =
      match r.l4 with None -> "-" | Some (s, d) -> Printf.sprintf "%d:%d" s d
    in
    let proto =
      if List.mem "tcp" r.stack then "tcp"
      else if List.mem "udp" r.stack then "udp"
      else if List.mem "icmp" r.stack then "icmp"
      else if List.mem "icmpv6" r.stack then "icmpv6"
      else "other"
    in
    Some
      (String.concat "|"
         [ ints_str r.vlan_ids; ints_str r.mpls_labels; src; dst; proto; l4_part ])
  | _ -> None
