open Netcore
module S = Packet.Slice

(* Zero-alloc overlay dissection (after Snabb's header:new_from_mem
   idiom): classify a frame by reading header fields in place through
   Packet.Slice accessors, with no Packet.Headers.header list and no
   intermediate records on the hot path.  The cursor mirrors
   Dissector.dissect_reader exactly for every layer that can influence
   the flow key or the cache meta — Ethernet, VLAN, MPLS (incl. the
   bottom-of-stack nibble sniff and PseudoWire), IPv4/IPv6 with their
   extent narrowing, TCP/UDP/ICMP, and VXLAN re-entry — and skips the
   application-layer classifiers (TLS/SSH/HTTP/DNS/NTP/QUIC), which
   only ever add stack tokens the flow key ignores.  The one observable
   difference is that the overlay examines a shorter prefix (no app
   probes), which can only widen cache hits, and that a frame whose
   *only* truncation was inside an app probe reads as untruncated here;
   neither affects the key or the RST bit, which is all the flows path
   consumes.  Frames nested deeper than the overlay's encapsulation
   budget fall back to the record-building reference dissector, so the
   result is bit-identical to the record path for every frame. *)

exception Trunc
exception Deep

(* PseudoWire and VXLAN re-enter Ethernet; beyond this nesting depth
   the overlay defers to the reference dissector (counted as a
   fallback) rather than growing special cases for pathological
   captures. *)
let max_depth = 4

type t = {
  (* growable per-frame tag scratch, reused across frames *)
  mutable vlans : int array;
  mutable n_vlans : int;
  mutable mpls : int array;
  mutable n_mpls : int;
  key_buf : Buffer.t;
  (* parse cursor: [p_pos] is the slice-relative read position,
     [p_limit] the current extent (narrowed at each IP header exactly
     like Wire.Reader.sub narrows the reference reader) *)
  mutable p_pos : int;
  mutable p_limit : int;
  (* innermost-wins L3/L4 state, overwritten as the walk descends *)
  mutable l3_kind : int;  (* 0 none, 4, 6 *)
  mutable v4_src : int;
  mutable v4_dst : int;
  mutable v6_src : Ipv6_addr.t;
  mutable v6_dst : Ipv6_addr.t;
  mutable l4_src : int;  (* -1 when no L4 header parsed *)
  mutable l4_dst : int;
  mutable has_tcp : bool;
  mutable has_udp : bool;
  mutable has_icmp : bool;
  mutable has_icmpv6 : bool;
  (* per-frame classification results *)
  mutable r_key : string option;
  mutable r_rst : bool;
  mutable r_truncated : bool;
  mutable r_cacheable : bool;
  mutable r_examined : int;
  mutable r_flags_off : int;
  mutable r_l3_off : int;
  mutable r_wire_min : int;
  (* stats *)
  mutable n_classified : int;
  mutable n_fallbacks : int;
}

let zero_v6 = Ipv6_addr.make 0L 0L

let create () =
  {
    vlans = Array.make 8 0;
    n_vlans = 0;
    mpls = Array.make 8 0;
    n_mpls = 0;
    key_buf = Buffer.create 96;
    p_pos = 0;
    p_limit = 0;
    l3_kind = 0;
    v4_src = 0;
    v4_dst = 0;
    v6_src = zero_v6;
    v6_dst = zero_v6;
    l4_src = -1;
    l4_dst = -1;
    has_tcp = false;
    has_udp = false;
    has_icmp = false;
    has_icmpv6 = false;
    r_key = None;
    r_rst = false;
    r_truncated = false;
    r_cacheable = true;
    r_examined = 0;
    r_flags_off = -1;
    r_l3_off = -1;
    r_wire_min = 0;
    n_classified = 0;
    n_fallbacks = 0;
  }

let reset t =
  t.n_vlans <- 0;
  t.n_mpls <- 0;
  t.p_pos <- 0;
  t.l3_kind <- 0;
  t.l4_src <- -1;
  t.l4_dst <- -1;
  t.has_tcp <- false;
  t.has_udp <- false;
  t.has_icmp <- false;
  t.has_icmpv6 <- false;
  t.r_key <- None;
  t.r_rst <- false;
  t.r_truncated <- false;
  t.r_cacheable <- true;
  t.r_examined <- 0;
  t.r_flags_off <- -1;
  t.r_l3_off <- -1;
  t.r_wire_min <- 0

let push_vlan t v =
  if t.n_vlans = Array.length t.vlans then begin
    let grown = Array.make (2 * t.n_vlans) 0 in
    Array.blit t.vlans 0 grown 0 t.n_vlans;
    t.vlans <- grown
  end;
  t.vlans.(t.n_vlans) <- v;
  t.n_vlans <- t.n_vlans + 1

let push_mpls t v =
  if t.n_mpls = Array.length t.mpls then begin
    let grown = Array.make (2 * t.n_mpls) 0 in
    Array.blit t.mpls 0 grown 0 t.n_mpls;
    t.mpls <- grown
  end;
  t.mpls.(t.n_mpls) <- v;
  t.n_mpls <- t.n_mpls + 1

(* Mirror of the reference dissector's [touch]: mark the next [n] bytes
   as examined *before* reading them, so a read that then fails the
   extent check leaves the same examined bound behind. *)
let touch t n =
  let e = t.p_pos + n in
  if e > t.r_examined then t.r_examined <- e

let need t n = if t.p_pos + n > t.p_limit then raise Trunc

let u64_of_u32s hi lo =
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

(* The state machine below is Dissector.dissect_reader with the header
   pushes replaced by field updates on [t] and the app-layer classifiers
   dropped.  Each parser updates key state only after its full header
   parse succeeded, exactly like the reference pushes a header only
   after every read in it. *)

let rec parse_eth t s depth =
  if depth > max_depth then raise Deep;
  touch t 14;
  need t 14;
  let ethertype = S.get_u16_be_fast s (t.p_pos + 12) in
  t.p_pos <- t.p_pos + 14;
  after_ethertype t s depth ethertype

and after_ethertype t s depth = function
  | 0x8100 ->
    touch t 4;
    need t 4;
    let tci = S.get_u16_be_fast s t.p_pos in
    let ethertype = S.get_u16_be_fast s (t.p_pos + 2) in
    push_vlan t (tci land 0xFFF);
    t.p_pos <- t.p_pos + 4;
    after_ethertype t s depth ethertype
  | 0x8847 -> parse_mpls t s depth
  | 0x0800 -> parse_ipv4 t s depth
  | 0x86DD -> parse_ipv6 t s depth
  | 0x0806 ->
    (* ARP is terminal and contributes nothing to the key; the
       reference reads all 28 bytes, so bounds and examined extent are
       mirrored without reading any of them. *)
    touch t 28;
    need t 28;
    t.p_pos <- t.p_pos + 28
  | _ -> ()

and parse_mpls t s depth =
  touch t 4;
  need t 4;
  let word = S.get_u32_be_fast s t.p_pos in
  push_mpls t (word lsr 12);
  t.p_pos <- t.p_pos + 4;
  if (word lsr 8) land 1 = 0 then parse_mpls t s depth
  else begin
    (* Bottom of stack: sniff the first nibble to tell IPv4/IPv6 from a
       PseudoWire control word (first nibble 0). *)
    if t.p_pos >= t.p_limit then raise Trunc;
    touch t 1;
    match S.get_u8_fast s t.p_pos lsr 4 with
    | 4 -> parse_ipv4 t s depth
    | 6 -> parse_ipv6 t s depth
    | 0 ->
      touch t 4;
      need t 4;
      t.p_pos <- t.p_pos + 4;
      parse_eth t s (depth + 1)
    | _ -> ()
  end

and parse_ipv4 t s depth =
  let hdr_pos = t.p_pos in
  touch t 1;
  need t 1;
  let vihl = S.get_u8_fast s t.p_pos in
  if vihl <> 0x45 then ()
  else begin
    t.r_l3_off <- hdr_pos;
    touch t 20;
    need t 20;
    let total_len = S.get_u16_be_fast s (t.p_pos + 2) in
    let protocol = S.get_u8_fast s (t.p_pos + 9) in
    t.v4_src <- S.get_u32_be_fast s (t.p_pos + 12);
    t.v4_dst <- S.get_u32_be_fast s (t.p_pos + 16);
    t.l3_kind <- 4;
    t.p_pos <- t.p_pos + 20;
    (* Narrow to the IP datagram extent to drop Ethernet padding. *)
    let body_len = total_len - 20 in
    let remaining = t.p_limit - t.p_pos in
    if body_len >= 0 && body_len <= remaining then begin
      if t.r_wire_min = 0 then t.r_wire_min <- t.p_pos + body_len;
      t.p_limit <- t.p_pos + body_len
    end
    else if body_len > remaining then t.r_truncated <- true
    else
      (* total_len below the header size: the outcome now depends on
         the capture length, so it must not be cached. *)
      t.r_cacheable <- false;
    parse_ip_proto t s depth protocol 4
  end

and parse_ipv6 t s depth =
  t.r_l3_off <- t.p_pos;
  touch t 40;
  need t 40;
  let payload_len = S.get_u16_be_fast s (t.p_pos + 4) in
  let next_header = S.get_u8_fast s (t.p_pos + 6) in
  t.v6_src <-
    Ipv6_addr.make
      (u64_of_u32s
         (S.get_u32_be_fast s (t.p_pos + 8))
         (S.get_u32_be_fast s (t.p_pos + 12)))
      (u64_of_u32s
         (S.get_u32_be_fast s (t.p_pos + 16))
         (S.get_u32_be_fast s (t.p_pos + 20)));
  t.v6_dst <-
    Ipv6_addr.make
      (u64_of_u32s
         (S.get_u32_be_fast s (t.p_pos + 24))
         (S.get_u32_be_fast s (t.p_pos + 28)))
      (u64_of_u32s
         (S.get_u32_be_fast s (t.p_pos + 32))
         (S.get_u32_be_fast s (t.p_pos + 36)));
  t.l3_kind <- 6;
  t.p_pos <- t.p_pos + 40;
  let remaining = t.p_limit - t.p_pos in
  if payload_len <= remaining then begin
    if t.r_wire_min = 0 then t.r_wire_min <- t.p_pos + payload_len;
    t.p_limit <- t.p_pos + payload_len
  end
  else t.r_truncated <- true;
  parse_ip_proto t s depth next_header 6

and parse_ip_proto t s depth protocol v =
  match protocol with
  | 6 ->
    (* The flags byte is memoized before the reads, like the reference,
       so a truncated TCP header still reports the offset (it is only
       consumed on installs, which a truncated parse never reaches). *)
    t.r_flags_off <- t.p_pos + 13;
    touch t 20;
    need t 20;
    let src_port = S.get_u16_be_fast s t.p_pos in
    let dst_port = S.get_u16_be_fast s (t.p_pos + 2) in
    let data_offset = (S.get_u8_fast s (t.p_pos + 12) lsr 4) * 4 in
    let flags = S.get_u8_fast s (t.p_pos + 13) in
    t.p_pos <- t.p_pos + 20;
    if data_offset > 20 then begin
      (* Options skip can fail; the reference then never pushes the TCP
         header, so ports / proto / RST must not be recorded either. *)
      need t (data_offset - 20);
      t.p_pos <- t.p_pos + (data_offset - 20)
    end;
    t.has_tcp <- true;
    t.l4_src <- src_port;
    t.l4_dst <- dst_port;
    if flags land 0x04 <> 0 then t.r_rst <- true
  | 17 ->
    touch t 8;
    need t 8;
    let src_port = S.get_u16_be_fast s t.p_pos in
    let dst_port = S.get_u16_be_fast s (t.p_pos + 2) in
    t.p_pos <- t.p_pos + 8;
    t.has_udp <- true;
    t.l4_src <- src_port;
    t.l4_dst <- dst_port;
    (* VXLAN is the one payload classifier that can matter to the key:
       it re-enters Ethernet, and the inner L3/L4 win. *)
    let min_port = if dst_port < src_port then dst_port else src_port in
    if
      (dst_port = 4789 || min_port = 4789)
      && t.p_limit - t.p_pos >= 8
    then begin
      touch t 8;
      let vx_flags = S.get_u8_fast s t.p_pos in
      if vx_flags land 0x08 <> 0 then begin
        t.p_pos <- t.p_pos + 8;
        parse_eth t s (depth + 1)
      end
    end
  | 1 when v = 4 ->
    (* Type and code are read, the next six bytes only skipped — but
       the reference pushes the header only when the skip succeeds, so
       the protocol counts for the key only past the full 8 bytes. *)
    touch t 2;
    need t 8;
    t.p_pos <- t.p_pos + 8;
    t.has_icmp <- true
  | 58 when v = 6 ->
    touch t 2;
    need t 8;
    t.p_pos <- t.p_pos + 8;
    t.has_icmpv6 <- true
  | _ -> ()

(* --- key rendering --- *)

let rec buf_add_int b n =
  if n >= 10 then buf_add_int b (n / 10);
  Buffer.add_char b (Char.unsafe_chr (48 + (n mod 10)))

let buf_add_octet b n =
  if n >= 100 then Buffer.add_char b (Char.unsafe_chr (48 + (n / 100)));
  if n >= 10 then Buffer.add_char b (Char.unsafe_chr (48 + (n / 10 mod 10)));
  Buffer.add_char b (Char.unsafe_chr (48 + (n mod 10)))

let buf_add_v4 b addr =
  buf_add_octet b ((addr lsr 24) land 0xFF);
  Buffer.add_char b '.';
  buf_add_octet b ((addr lsr 16) land 0xFF);
  Buffer.add_char b '.';
  buf_add_octet b ((addr lsr 8) land 0xFF);
  Buffer.add_char b '.';
  buf_add_octet b (addr land 0xFF)

let buf_add_tags b tags n =
  if n = 0 then Buffer.add_char b '-'
  else begin
    buf_add_int b tags.(0);
    for i = 1 to n - 1 do
      Buffer.add_char b ',';
      buf_add_int b tags.(i)
    done
  end

(* Byte-identical to Acap.flow_key on the abstract record this frame
   would produce: vlans|mpls|src|dst|proto|sport:dport, lists
   comma-joined or "-", proto by tcp > udp > icmp > icmpv6 > other
   priority (service tokens never collide with those names, so plain
   protocol flags replace the stack-membership test). *)
let render_key t =
  if t.l3_kind = 0 then t.r_key <- None
  else begin
    let b = t.key_buf in
    Buffer.clear b;
    buf_add_tags b t.vlans t.n_vlans;
    Buffer.add_char b '|';
    buf_add_tags b t.mpls t.n_mpls;
    Buffer.add_char b '|';
    if t.l3_kind = 4 then begin
      buf_add_v4 b t.v4_src;
      Buffer.add_char b '|';
      buf_add_v4 b t.v4_dst
    end
    else begin
      Buffer.add_string b (Ipv6_addr.to_string t.v6_src);
      Buffer.add_char b '|';
      Buffer.add_string b (Ipv6_addr.to_string t.v6_dst)
    end;
    Buffer.add_char b '|';
    Buffer.add_string b
      (if t.has_tcp then "tcp"
       else if t.has_udp then "udp"
       else if t.has_icmp then "icmp"
       else if t.has_icmpv6 then "icmpv6"
       else "other");
    Buffer.add_char b '|';
    if t.l4_src >= 0 then begin
      buf_add_int b t.l4_src;
      Buffer.add_char b ':';
      buf_add_int b t.l4_dst
    end
    else Buffer.add_char b '-';
    t.r_key <- Some (Buffer.contents b)
  end

(* The reference path, for frames nested beyond the overlay's depth
   budget: record dissection plus abstraction, results copied into the
   same output fields.  Bit-identical by construction. *)
let fallback t ~orig_len slice =
  t.n_fallbacks <- t.n_fallbacks + 1;
  let meta = Dissector.fresh_meta () in
  let d = Dissector.dissect_slice_meta ~orig_len ~meta slice in
  let r =
    Acap.abstract ~ts:0.0 ~orig_len ~cap_len:(Packet.Slice.length slice)
      ~truncated:d.Dissector.truncated d.Dissector.headers
  in
  t.r_key <- Acap.flow_key r;
  t.r_rst <- r.Acap.tcp_rst;
  t.r_truncated <- r.Acap.truncated;
  t.r_cacheable <- meta.Dissector.m_cacheable;
  t.r_examined <- meta.Dissector.m_examined;
  t.r_flags_off <- meta.Dissector.m_flags_off;
  t.r_l3_off <- meta.Dissector.m_l3_off;
  t.r_wire_min <- meta.Dissector.m_wire_min

let classify t ~orig_len slice =
  reset t;
  let cap_len = Packet.Slice.length slice in
  t.p_limit <- cap_len;
  t.r_truncated <- orig_len > cap_len;
  match parse_eth t slice 1 with
  | () ->
    render_key t;
    t.n_classified <- t.n_classified + 1
  | exception Trunc ->
    t.r_truncated <- true;
    render_key t;
    t.n_classified <- t.n_classified + 1
  | exception Deep -> fallback t ~orig_len slice

let key t = t.r_key
let rst t = t.r_rst
let truncated t = t.r_truncated
let cacheable t = t.r_cacheable
let examined t = t.r_examined
let flags_off t = t.r_flags_off
let l3_off t = t.r_l3_off
let wire_min t = t.r_wire_min
let classified t = t.n_classified
let fallbacks t = t.n_fallbacks
