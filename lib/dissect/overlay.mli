(** Zero-alloc overlay dissection for the digest hot path.

    A cursor-style classifier (after Snabb's [header:new_from_mem]
    overlay idiom) that reads header fields in place through
    {!Packet.Slice} accessors and produces exactly what flow accounting
    needs — the flow key, the RST bit, and the cache-install meta
    (examined extent, memoized offsets, cacheability) — with no
    [Packet.Headers.header list] and no intermediate records per frame.
    The only per-frame allocation is the rendered key string itself.

    The cursor mirrors {!Dissector.dissect_reader} bit-for-bit on every
    layer that can influence those outputs (Ethernet, VLAN, MPLS,
    PseudoWire, IPv4/IPv6 extent narrowing, TCP/UDP/ICMP, VXLAN
    re-entry) and skips the app-layer classifiers, which only add stack
    tokens the key ignores.  Frames nested beyond the encapsulation
    budget fall back to the reference record dissector, so the flow key
    and RST agree with {!Acap.flow_key} ∘ {!Acap.of_slice} on every
    frame.  Instances hold reusable scratch and are not thread-safe;
    the digest creates one per range worker. *)

type t

val create : unit -> t

val classify : t -> orig_len:int -> Packet.Slice.t -> unit
(** Classify one frame; results are read through the accessors below
    and stay valid until the next [classify] on the same [t]. *)

val key : t -> string option
(** The flow key ([None] when no IP header parsed), byte-identical to
    [Acap.flow_key (Acap.of_slice ...)] on the same frame. *)

val rst : t -> bool
(** TCP RST seen (always [false] when no complete TCP header). *)

val truncated : t -> bool
(** The capture stopped inside a key-relevant header (or was snapped,
    [orig_len > cap_len]).  May be [false] where the record path says
    [true] when only an app-layer probe hit the capture end — such
    frames have identical key/RST either way. *)

val cacheable : t -> bool
(** [false] when classification consulted the capture length outside
    any IP narrowing (same contract as [Dissector.meta.m_cacheable]). *)

val examined : t -> int
(** Upper bound of every byte examined; never larger than the record
    path's examined extent for the same frame. *)

val flags_off : t -> int
(** TCP flags byte offset, -1 when no TCP. *)

val l3_off : t -> int
(** Innermost IP header offset, -1 when no IP. *)

val wire_min : t -> int
(** End of the outermost IP datagram, 0 when no IP narrowed. *)

val classified : t -> int
(** Lifetime count of frames classified by the overlay cursor. *)

val fallbacks : t -> int
(** Lifetime count of frames deferred to the reference dissector
    (encapsulation nesting beyond the overlay's depth budget). *)
