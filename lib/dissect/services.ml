type l4 = Tcp | Udp

type service = { service_name : string; port : int; l4 : l4 }

let svc name port l4 = { service_name = name; port; l4 }

(* Services plausible on a network-research testbed: infrastructure
   protocols, storage/database backends, experiment tooling. *)
let catalog =
  [|
    svc "ftp" 21 Tcp;
    svc "ssh" 22 Tcp;
    svc "telnet" 23 Tcp;
    svc "smtp" 25 Tcp;
    svc "dns" 53 Udp;
    svc "dns-tcp" 53 Tcp;
    svc "http" 80 Tcp;
    svc "ntp" 123 Udp;
    svc "snmp" 161 Udp;
    svc "bgp" 179 Tcp;
    svc "tls" 443 Tcp;
    svc "quic" 443 Udp;
    svc "syslog" 514 Udp;
    svc "rtsp" 554 Tcp;
    svc "ldap" 389 Tcp;
    svc "smb" 445 Tcp;
    svc "rsync" 873 Tcp;
    svc "openvpn" 1194 Udp;
    svc "mqtt" 1883 Tcp;
    svc "nfs" 2049 Tcp;
    svc "etcd" 2379 Tcp;
    svc "mysql" 3306 Tcp;
    svc "rdp" 3389 Tcp;
    svc "sip" 5060 Udp;
    svc "amqp" 5672 Tcp;
    svc "postgres" 5432 Tcp;
    svc "vnc" 5900 Tcp;
    svc "iperf3" 5201 Tcp;
    svc "iperf3-udp" 5201 Udp;
    svc "redis" 6379 Tcp;
    svc "irc" 6667 Tcp;
    svc "http-alt" 8080 Tcp;
    svc "grpc" 50051 Tcp;
    svc "kafka" 9092 Tcp;
    svc "cassandra" 9042 Tcp;
    svc "elasticsearch" 9200 Tcp;
    svc "prometheus" 9090 Tcp;
    svc "memcached" 11211 Tcp;
    svc "mongodb" 27017 Tcp;
    svc "wireguard" 51820 Udp;
    svc "vxlan" 4789 Udp;
    svc "geneve" 6081 Udp;
    svc "gtp" 2152 Udp;
    svc "sflow" 6343 Udp;
    svc "netflow" 2055 Udp;
    svc "ceph" 6789 Tcp;
    svc "glusterfs" 24007 Tcp;
    svc "bittorrent" 6881 Tcp;
    svc "scylla" 19042 Tcp;
    svc "minio" 9000 Tcp;
  |]

let lookup l4 ~src_port ~dst_port =
  let find p =
    Array.find_opt (fun s -> s.port = p && s.l4 = l4) catalog
  in
  match find dst_port with Some s -> Some s | None -> find src_port

let by_name name = Array.find_opt (fun s -> s.service_name = name) catalog
