open Netcore
module H = Packet.Headers

type result = {
  headers : H.header list;
  payload_len : int;
  truncated : bool;
}

let read_mac r =
  let octets = Array.init 6 (fun _ -> Wire.Reader.u8 r) in
  Mac.of_octets octets

let read_ipv6 r =
  let hi = Wire.Reader.u64 r in
  let lo = Wire.Reader.u64 r in
  Ipv6_addr.make hi lo

let tcp_flags_of_byte b : H.tcp_flags =
  {
    fin = b land 0x01 <> 0;
    syn = b land 0x02 <> 0;
    rst = b land 0x04 <> 0;
    psh = b land 0x08 <> 0;
    ack = b land 0x10 <> 0;
    urg = b land 0x20 <> 0;
    ece = b land 0x40 <> 0;
    cwr = b land 0x80 <> 0;
  }

(* Application-layer classification by well-known port, verified against
   wire syntax, mirroring how tshark assigns a payload dissector. *)

let looks_like_tls r =
  Wire.Reader.remaining r >= 3
  &&
  let ct = Wire.Reader.peek_u8 r in
  ct >= 20 && ct <= 23

let starts_with r prefix =
  let n = String.length prefix in
  Wire.Reader.remaining r >= n
  && Bytes.equal (Wire.Reader.peek_bytes r n) (Bytes.of_string prefix)

let dissect_tls r =
  let content_type = Wire.Reader.u8 r in
  let _version = Wire.Reader.u16 r in
  let _len = Wire.Reader.u16 r in
  H.Tls { content_type }

let dissect_ssh r =
  Wire.Reader.skip r (String.length H.ssh_banner);
  H.Ssh

let dissect_http r kind =
  let line =
    match kind with
    | `Request -> H.http_request_line
    | `Response -> H.http_response_line
  in
  Wire.Reader.skip r (String.length line);
  H.Http kind

let dissect_dns r =
  let id = Wire.Reader.u16 r in
  let flags = Wire.Reader.u16 r in
  Wire.Reader.skip r 8;
  H.Dns { query = flags land 0x8000 = 0; id }

let dissect_ntp r =
  Wire.Reader.skip r 48;
  H.Ntp

let dissect_quic r =
  Wire.Reader.skip r H.quic_header_len;
  H.Quic

(* Dissection proceeds down the stack; each step returns the parsed
   header and a continuation describing what follows. *)
type next =
  | Next_eth
  | Next_vlan
  | Next_mpls
  | Next_ethertype of int
  | Next_ip_proto of int * [ `V4 | `V6 ]
  | Next_tcp_payload of int * int  (* src, dst ports *)
  | Next_udp_payload of int * int
  | Next_payload

let after_ethertype = function
  | 0x8100 -> Next_vlan
  | 0x8847 -> Next_mpls
  | 0x0800 -> Next_ethertype 0x0800
  | 0x86DD -> Next_ethertype 0x86DD
  | 0x0806 -> Next_ethertype 0x0806
  | _ -> Next_payload

let dissect_reader ~orig_len ~cap_len r0 =
  let snapped = orig_len > cap_len in
  let headers = ref [] in
  let push h = headers := h :: !headers in
  let truncated = ref snapped in
  (* [extent] is narrowed at each IP header so that Ethernet padding is
     excluded from the payload count. *)
  let rec go r state =
    match state with
    | Next_eth ->
      let dst = read_mac r in
      let src = read_mac r in
      let ethertype = Wire.Reader.u16 r in
      push (H.Ethernet { src; dst });
      go r (after_ethertype ethertype)
    | Next_vlan ->
      let tci = Wire.Reader.u16 r in
      let ethertype = Wire.Reader.u16 r in
      push
        (H.Vlan
           {
             pcp = (tci lsr 13) land 0x7;
             dei = (tci lsr 12) land 1 = 1;
             vid = tci land 0xFFF;
           });
      go r (after_ethertype ethertype)
    | Next_mpls ->
      let word = Wire.Reader.u32 r in
      let wi = Int32.to_int (Int32.logand word 0xFFFl) in
      let label = Int32.to_int (Int32.shift_right_logical word 12) in
      let tc = (wi lsr 9) land 0x7 in
      let bos = (wi lsr 8) land 1 = 1 in
      let ttl = wi land 0xFF in
      push (H.Mpls { label; tc; ttl });
      if not bos then go r Next_mpls
      else begin
        (* Bottom of stack: sniff the first nibble to tell IPv4/IPv6
           from a PseudoWire control word (first nibble 0). *)
        if Wire.Reader.remaining r = 0 then raise Wire.Reader.Truncated;
        match Wire.Reader.peek_u8 r lsr 4 with
        | 4 -> go r (Next_ethertype 0x0800)
        | 6 -> go r (Next_ethertype 0x86DD)
        | 0 ->
          let _control_word = Wire.Reader.u32 r in
          push H.Pseudowire;
          go r Next_eth
        | _ -> go r Next_payload
      end
    | Next_ethertype 0x0800 ->
      let vihl = Wire.Reader.u8 r in
      if vihl <> 0x45 then go r Next_payload
      else begin
        let dscp_ecn = Wire.Reader.u8 r in
        let total_len = Wire.Reader.u16 r in
        let ident = Wire.Reader.u16 r in
        let frag = Wire.Reader.u16 r in
        let ttl = Wire.Reader.u8 r in
        let protocol = Wire.Reader.u8 r in
        let _cksum = Wire.Reader.u16 r in
        let src = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
        let dst = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
        push
          (H.Ipv4
             {
               src;
               dst;
               dscp = dscp_ecn lsr 2;
               ttl;
               ident;
               dont_fragment = frag land 0x4000 <> 0;
             });
        (* Narrow to the IP datagram extent to drop Ethernet padding. *)
        let body_len = total_len - 20 in
        let r =
          if body_len >= 0 && body_len <= Wire.Reader.remaining r then
            Wire.Reader.sub r body_len
          else begin
            if body_len > Wire.Reader.remaining r then truncated := true;
            r
          end
        in
        go r (Next_ip_proto (protocol, `V4))
      end
    | Next_ethertype 0x86DD ->
      let word = Wire.Reader.u32 r in
      let traffic_class =
        Int32.to_int (Int32.logand (Int32.shift_right_logical word 20) 0xFFl)
      in
      let flow_label = Int32.to_int (Int32.logand word 0xFFFFFl) in
      let payload_len = Wire.Reader.u16 r in
      let next_header = Wire.Reader.u8 r in
      let hop_limit = Wire.Reader.u8 r in
      let src = read_ipv6 r in
      let dst = read_ipv6 r in
      push (H.Ipv6 { src; dst; traffic_class; flow_label; hop_limit });
      let r =
        if payload_len <= Wire.Reader.remaining r then Wire.Reader.sub r payload_len
        else begin
          truncated := true;
          r
        end
      in
      go r (Next_ip_proto (next_header, `V6))
    | Next_ethertype 0x0806 ->
      let _htype = Wire.Reader.u16 r in
      let _ptype = Wire.Reader.u16 r in
      let _hlen = Wire.Reader.u8 r in
      let _plen = Wire.Reader.u8 r in
      let op = Wire.Reader.u16 r in
      let sender_mac = read_mac r in
      let sender_ip = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
      let target_mac = read_mac r in
      let target_ip = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
      push
        (H.Arp
           {
             operation = (if op = 2 then `Reply else `Request);
             sender_mac;
             sender_ip;
             target_mac;
             target_ip;
           });
      (* ARP is terminal; anything left is Ethernet padding. *)
      0
    | Next_ethertype _ -> go r Next_payload
    | Next_ip_proto (6, _) ->
      let src_port = Wire.Reader.u16 r in
      let dst_port = Wire.Reader.u16 r in
      let seq = Wire.Reader.u32 r in
      let ack_seq = Wire.Reader.u32 r in
      let offset_byte = Wire.Reader.u8 r in
      let flags = tcp_flags_of_byte (Wire.Reader.u8 r) in
      let window = Wire.Reader.u16 r in
      let _cksum = Wire.Reader.u16 r in
      let _urg = Wire.Reader.u16 r in
      let data_offset = (offset_byte lsr 4) * 4 in
      if data_offset > 20 then Wire.Reader.skip r (data_offset - 20);
      push (H.Tcp { src_port; dst_port; seq; ack_seq; flags; window });
      go r (Next_tcp_payload (src_port, dst_port))
    | Next_ip_proto (17, _) ->
      let src_port = Wire.Reader.u16 r in
      let dst_port = Wire.Reader.u16 r in
      let _len = Wire.Reader.u16 r in
      let _cksum = Wire.Reader.u16 r in
      push (H.Udp { src_port; dst_port });
      go r (Next_udp_payload (src_port, dst_port))
    | Next_ip_proto (1, `V4) ->
      let icmp_type = Wire.Reader.u8 r in
      let icmp_code = Wire.Reader.u8 r in
      Wire.Reader.skip r 6;
      push (H.Icmpv4 { icmp_type; icmp_code });
      Wire.Reader.remaining r
    | Next_ip_proto (58, `V6) ->
      let icmp_type = Wire.Reader.u8 r in
      let icmp_code = Wire.Reader.u8 r in
      Wire.Reader.skip r 6;
      push (H.Icmpv6 { icmp_type; icmp_code });
      Wire.Reader.remaining r
    | Next_ip_proto (_, _) -> go r Next_payload
    | Next_tcp_payload (src_port, dst_port) ->
      if Wire.Reader.remaining r = 0 then 0
      else begin
        let port = if dst_port < src_port then dst_port else src_port in
        let classify () =
          match port with
          | 443 when looks_like_tls r -> Some (dissect_tls r)
          | 22 when starts_with r "SSH-" -> Some (dissect_ssh r)
          | 80 when starts_with r "GET " -> Some (dissect_http r `Request)
          | 80 when starts_with r "HTTP/" -> Some (dissect_http r `Response)
          | 53 when Wire.Reader.remaining r >= 12 -> Some (dissect_dns r)
          | _ -> None
        in
        match classify () with
        | Some h ->
          push h;
          Wire.Reader.remaining r
        | None -> Wire.Reader.remaining r
      end
    | Next_udp_payload (src_port, dst_port) ->
      if Wire.Reader.remaining r = 0 then 0
      else begin
        let port = if dst_port < src_port then dst_port else src_port in
        let classify () =
          match (port, dst_port) with
          | _, 4789 | 4789, _ ->
            if Wire.Reader.remaining r >= 8 then begin
              let flags = Wire.Reader.u8 r in
              Wire.Reader.skip r 3;
              let vni_word = Wire.Reader.u32 r in
              let vni = Int32.to_int (Int32.shift_right_logical vni_word 8) in
              if flags land 0x08 <> 0 then Some (`Vxlan vni) else None
            end
            else None
          | 53, _ when Wire.Reader.remaining r >= 12 -> Some (`Plain (dissect_dns r))
          | 123, _ when Wire.Reader.remaining r >= 48 -> Some (`Plain (dissect_ntp r))
          | 443, _ when Wire.Reader.remaining r >= H.quic_header_len
                        && Wire.Reader.peek_u8 r land 0x80 <> 0 ->
            Some (`Plain (dissect_quic r))
          | _ -> None
        in
        match classify () with
        | Some (`Vxlan vni) ->
          push (H.Vxlan { vni });
          go r Next_eth
        | Some (`Plain h) ->
          push h;
          Wire.Reader.remaining r
        | None -> Wire.Reader.remaining r
      end
    | Next_payload -> Wire.Reader.remaining r
  in
  let payload_len =
    try go r0 Next_eth with
    | Wire.Reader.Truncated ->
      truncated := true;
      0
  in
  { headers = List.rev !headers; payload_len; truncated = !truncated }

let dissect ?orig_len data =
  let orig_len = match orig_len with Some l -> l | None -> Bytes.length data in
  dissect_reader ~orig_len ~cap_len:(Bytes.length data)
    (Wire.Reader.of_bytes data)

(* The zero-copy path: headers are read in place through the slice's
   bounds-checked cursor, so dissecting a slice of the shared capture
   buffer allocates nothing payload-sized. *)
let dissect_slice ?orig_len slice =
  let cap_len = Packet.Slice.length slice in
  let orig_len = match orig_len with Some l -> l | None -> cap_len in
  dissect_reader ~orig_len ~cap_len (Packet.Slice.reader slice)

let dissect_packet (p : Packet.Pcap.packet) = dissect ~orig_len:p.orig_len p.data
