open Netcore
module H = Packet.Headers

type result = {
  headers : H.header list;
  payload_len : int;
  truncated : bool;
}

let read_mac r =
  let octets = Array.init 6 (fun _ -> Wire.Reader.u8 r) in
  Mac.of_octets octets

let read_ipv6 r =
  let hi = Wire.Reader.u64 r in
  let lo = Wire.Reader.u64 r in
  Ipv6_addr.make hi lo

let tcp_flags_of_byte b : H.tcp_flags =
  {
    fin = b land 0x01 <> 0;
    syn = b land 0x02 <> 0;
    rst = b land 0x04 <> 0;
    psh = b land 0x08 <> 0;
    ack = b land 0x10 <> 0;
    urg = b land 0x20 <> 0;
    ece = b land 0x40 <> 0;
    cwr = b land 0x80 <> 0;
  }

(* Dissection-extent bookkeeping for the flow cache: which frame bytes
   the classification actually examined (reads and peeks, not skips),
   where the per-frame variable fields live, and whether the outcome
   depended on anything other than those bytes.  Tracked only when the
   caller passes a [meta]; the plain paths pay nothing. *)
type meta = {
  mutable m_examined : int;
      (* frame-relative upper bound of every byte read or peeked *)
  mutable m_flags_off : int;  (* TCP flags byte offset, -1 when no TCP *)
  mutable m_l3_off : int;  (* innermost IP header offset, -1 when no IP *)
  mutable m_wire_min : int;
      (* end of the outermost IP datagram: captures shorter than this
         would fail the extent narrowing, 0 when no IP narrowed *)
  mutable m_cacheable : bool;
      (* false when classification consulted the capture length outside
         any IP narrowing (e.g. an IPv4 total_len below the header
         size), so the result cannot be replayed from prefix bytes *)
}

let fresh_meta () =
  { m_examined = 0; m_flags_off = -1; m_l3_off = -1; m_wire_min = 0;
    m_cacheable = true }

(* Application-layer classification by well-known port, verified against
   wire syntax, mirroring how tshark assigns a payload dissector.  Each
   classifier receives [touch] to mark the bytes it is about to read or
   peek as examined. *)

let looks_like_tls touch r =
  Wire.Reader.remaining r >= 3
  && begin
       touch r 1;
       let ct = Wire.Reader.peek_u8 r in
       ct >= 20 && ct <= 23
     end

let starts_with touch r prefix =
  let n = String.length prefix in
  Wire.Reader.remaining r >= n
  && begin
       touch r n;
       Bytes.equal (Wire.Reader.peek_bytes r n) (Bytes.of_string prefix)
     end

let dissect_tls touch r =
  touch r 5;
  let content_type = Wire.Reader.u8 r in
  let _version = Wire.Reader.u16 r in
  let _len = Wire.Reader.u16 r in
  H.Tls { content_type }

let dissect_ssh r =
  Wire.Reader.skip r (String.length H.ssh_banner);
  H.Ssh

let dissect_http r kind =
  let line =
    match kind with
    | `Request -> H.http_request_line
    | `Response -> H.http_response_line
  in
  Wire.Reader.skip r (String.length line);
  H.Http kind

let dissect_dns touch r =
  touch r 4;
  let id = Wire.Reader.u16 r in
  let flags = Wire.Reader.u16 r in
  Wire.Reader.skip r 8;
  H.Dns { query = flags land 0x8000 = 0; id }

let dissect_ntp r =
  Wire.Reader.skip r 48;
  H.Ntp

let dissect_quic r =
  Wire.Reader.skip r H.quic_header_len;
  H.Quic

(* Dissection proceeds down the stack; each step returns the parsed
   header and a continuation describing what follows. *)
type next =
  | Next_eth
  | Next_vlan
  | Next_mpls
  | Next_ethertype of int
  | Next_ip_proto of int * [ `V4 | `V6 ]
  | Next_tcp_payload of int * int  (* src, dst ports *)
  | Next_udp_payload of int * int
  | Next_payload

let after_ethertype = function
  | 0x8100 -> Next_vlan
  | 0x8847 -> Next_mpls
  | 0x0800 -> Next_ethertype 0x0800
  | 0x86DD -> Next_ethertype 0x86DD
  | 0x0806 -> Next_ethertype 0x0806
  | _ -> Next_payload

let dissect_reader ?meta ~orig_len ~cap_len r0 =
  let snapped = orig_len > cap_len in
  let headers = ref [] in
  let push h = headers := h :: !headers in
  let truncated = ref snapped in
  let base = Wire.Reader.pos r0 in
  (* Mark the next [n] bytes at [r]'s cursor as examined.  Called before
     reads and guarded peeks, never for skips: a skipped byte's value
     cannot influence the outcome, so it need not be part of a cached
     prefix. *)
  let touch r n =
    match meta with
    | None -> ()
    | Some m ->
      let e = Wire.Reader.pos r - base + n in
      if e > m.m_examined then m.m_examined <- e
  in
  (* [extent] is narrowed at each IP header so that Ethernet padding is
     excluded from the payload count. *)
  let rec go r state =
    match state with
    | Next_eth ->
      touch r 14;
      let dst = read_mac r in
      let src = read_mac r in
      let ethertype = Wire.Reader.u16 r in
      push (H.Ethernet { src; dst });
      go r (after_ethertype ethertype)
    | Next_vlan ->
      touch r 4;
      let tci = Wire.Reader.u16 r in
      let ethertype = Wire.Reader.u16 r in
      push
        (H.Vlan
           {
             pcp = (tci lsr 13) land 0x7;
             dei = (tci lsr 12) land 1 = 1;
             vid = tci land 0xFFF;
           });
      go r (after_ethertype ethertype)
    | Next_mpls ->
      touch r 4;
      let word = Wire.Reader.u32 r in
      let wi = Int32.to_int (Int32.logand word 0xFFFl) in
      let label = Int32.to_int (Int32.shift_right_logical word 12) in
      let tc = (wi lsr 9) land 0x7 in
      let bos = (wi lsr 8) land 1 = 1 in
      let ttl = wi land 0xFF in
      push (H.Mpls { label; tc; ttl });
      if not bos then go r Next_mpls
      else begin
        (* Bottom of stack: sniff the first nibble to tell IPv4/IPv6
           from a PseudoWire control word (first nibble 0). *)
        if Wire.Reader.remaining r = 0 then raise Wire.Reader.Truncated;
        touch r 1;
        match Wire.Reader.peek_u8 r lsr 4 with
        | 4 -> go r (Next_ethertype 0x0800)
        | 6 -> go r (Next_ethertype 0x86DD)
        | 0 ->
          touch r 4;
          let _control_word = Wire.Reader.u32 r in
          push H.Pseudowire;
          go r Next_eth
        | _ -> go r Next_payload
      end
    | Next_ethertype 0x0800 ->
      let hdr_pos = Wire.Reader.pos r - base in
      touch r 1;
      let vihl = Wire.Reader.u8 r in
      if vihl <> 0x45 then go r Next_payload
      else begin
        (match meta with Some m -> m.m_l3_off <- hdr_pos | None -> ());
        touch r 19;
        let dscp_ecn = Wire.Reader.u8 r in
        let total_len = Wire.Reader.u16 r in
        let ident = Wire.Reader.u16 r in
        let frag = Wire.Reader.u16 r in
        let ttl = Wire.Reader.u8 r in
        let protocol = Wire.Reader.u8 r in
        let _cksum = Wire.Reader.u16 r in
        let src = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
        let dst = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
        push
          (H.Ipv4
             {
               src;
               dst;
               dscp = dscp_ecn lsr 2;
               ttl;
               ident;
               dont_fragment = frag land 0x4000 <> 0;
             });
        (* Narrow to the IP datagram extent to drop Ethernet padding. *)
        let body_len = total_len - 20 in
        let r =
          if body_len >= 0 && body_len <= Wire.Reader.remaining r then begin
            (match meta with
            | Some m when m.m_wire_min = 0 ->
              m.m_wire_min <- Wire.Reader.pos r - base + body_len
            | _ -> ());
            Wire.Reader.sub r body_len
          end
          else begin
            if body_len > Wire.Reader.remaining r then truncated := true
            else
              (* total_len below the header size: dissection continues
                 against the unnarrowed capture extent, so the outcome
                 depends on cap_len and must not be cached. *)
              (match meta with Some m -> m.m_cacheable <- false | None -> ());
            r
          end
        in
        go r (Next_ip_proto (protocol, `V4))
      end
    | Next_ethertype 0x86DD ->
      (match meta with Some m -> m.m_l3_off <- Wire.Reader.pos r - base | None -> ());
      touch r 40;
      let word = Wire.Reader.u32 r in
      let traffic_class =
        Int32.to_int (Int32.logand (Int32.shift_right_logical word 20) 0xFFl)
      in
      let flow_label = Int32.to_int (Int32.logand word 0xFFFFFl) in
      let payload_len = Wire.Reader.u16 r in
      let next_header = Wire.Reader.u8 r in
      let hop_limit = Wire.Reader.u8 r in
      let src = read_ipv6 r in
      let dst = read_ipv6 r in
      push (H.Ipv6 { src; dst; traffic_class; flow_label; hop_limit });
      let r =
        if payload_len <= Wire.Reader.remaining r then begin
          (match meta with
          | Some m when m.m_wire_min = 0 ->
            m.m_wire_min <- Wire.Reader.pos r - base + payload_len
          | _ -> ());
          Wire.Reader.sub r payload_len
        end
        else begin
          truncated := true;
          r
        end
      in
      go r (Next_ip_proto (next_header, `V6))
    | Next_ethertype 0x0806 ->
      touch r 28;
      let _htype = Wire.Reader.u16 r in
      let _ptype = Wire.Reader.u16 r in
      let _hlen = Wire.Reader.u8 r in
      let _plen = Wire.Reader.u8 r in
      let op = Wire.Reader.u16 r in
      let sender_mac = read_mac r in
      let sender_ip = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
      let target_mac = read_mac r in
      let target_ip = Ipv4_addr.of_int32 (Wire.Reader.u32 r) in
      push
        (H.Arp
           {
             operation = (if op = 2 then `Reply else `Request);
             sender_mac;
             sender_ip;
             target_mac;
             target_ip;
           });
      (* ARP is terminal; anything left is Ethernet padding. *)
      0
    | Next_ethertype _ -> go r Next_payload
    | Next_ip_proto (6, _) ->
      (* The flags byte is the one per-frame-variable field the abstract
         record reads below L3; its offset is memoized so a cache hit
         can fetch RST directly.  Encapsulations carry at most one TCP
         header per frame (VXLAN nests only under UDP), so a single
         offset suffices. *)
      (match meta with
      | Some m -> m.m_flags_off <- Wire.Reader.pos r - base + 13
      | None -> ());
      touch r 20;
      let src_port = Wire.Reader.u16 r in
      let dst_port = Wire.Reader.u16 r in
      let seq = Wire.Reader.u32 r in
      let ack_seq = Wire.Reader.u32 r in
      let offset_byte = Wire.Reader.u8 r in
      let flags = tcp_flags_of_byte (Wire.Reader.u8 r) in
      let window = Wire.Reader.u16 r in
      let _cksum = Wire.Reader.u16 r in
      let _urg = Wire.Reader.u16 r in
      let data_offset = (offset_byte lsr 4) * 4 in
      if data_offset > 20 then Wire.Reader.skip r (data_offset - 20);
      push (H.Tcp { src_port; dst_port; seq; ack_seq; flags; window });
      go r (Next_tcp_payload (src_port, dst_port))
    | Next_ip_proto (17, _) ->
      touch r 8;
      let src_port = Wire.Reader.u16 r in
      let dst_port = Wire.Reader.u16 r in
      let _len = Wire.Reader.u16 r in
      let _cksum = Wire.Reader.u16 r in
      push (H.Udp { src_port; dst_port });
      go r (Next_udp_payload (src_port, dst_port))
    | Next_ip_proto (1, `V4) ->
      touch r 2;
      let icmp_type = Wire.Reader.u8 r in
      let icmp_code = Wire.Reader.u8 r in
      Wire.Reader.skip r 6;
      push (H.Icmpv4 { icmp_type; icmp_code });
      Wire.Reader.remaining r
    | Next_ip_proto (58, `V6) ->
      touch r 2;
      let icmp_type = Wire.Reader.u8 r in
      let icmp_code = Wire.Reader.u8 r in
      Wire.Reader.skip r 6;
      push (H.Icmpv6 { icmp_type; icmp_code });
      Wire.Reader.remaining r
    | Next_ip_proto (_, _) -> go r Next_payload
    | Next_tcp_payload (src_port, dst_port) ->
      if Wire.Reader.remaining r = 0 then 0
      else begin
        let port = if dst_port < src_port then dst_port else src_port in
        let classify () =
          match port with
          | 443 when looks_like_tls touch r -> Some (dissect_tls touch r)
          | 22 when starts_with touch r "SSH-" -> Some (dissect_ssh r)
          | 80 when starts_with touch r "GET " -> Some (dissect_http r `Request)
          | 80 when starts_with touch r "HTTP/" -> Some (dissect_http r `Response)
          | 53 when Wire.Reader.remaining r >= 12 -> Some (dissect_dns touch r)
          | _ -> None
        in
        match classify () with
        | Some h ->
          push h;
          Wire.Reader.remaining r
        | None -> Wire.Reader.remaining r
      end
    | Next_udp_payload (src_port, dst_port) ->
      if Wire.Reader.remaining r = 0 then 0
      else begin
        let port = if dst_port < src_port then dst_port else src_port in
        let classify () =
          match (port, dst_port) with
          | _, 4789 | 4789, _ ->
            if Wire.Reader.remaining r >= 8 then begin
              touch r 8;
              let flags = Wire.Reader.u8 r in
              Wire.Reader.skip r 3;
              let vni_word = Wire.Reader.u32 r in
              let vni = Int32.to_int (Int32.shift_right_logical vni_word 8) in
              if flags land 0x08 <> 0 then Some (`Vxlan vni) else None
            end
            else None
          | 53, _ when Wire.Reader.remaining r >= 12 -> Some (`Plain (dissect_dns touch r))
          | 123, _ when Wire.Reader.remaining r >= 48 -> Some (`Plain (dissect_ntp r))
          | 443, _ when Wire.Reader.remaining r >= H.quic_header_len
                        && (touch r 1; Wire.Reader.peek_u8 r land 0x80 <> 0) ->
            Some (`Plain (dissect_quic r))
          | _ -> None
        in
        match classify () with
        | Some (`Vxlan vni) ->
          push (H.Vxlan { vni });
          go r Next_eth
        | Some (`Plain h) ->
          push h;
          Wire.Reader.remaining r
        | None -> Wire.Reader.remaining r
      end
    | Next_payload -> Wire.Reader.remaining r
  in
  let payload_len =
    try go r0 Next_eth with
    | Wire.Reader.Truncated ->
      truncated := true;
      0
  in
  { headers = List.rev !headers; payload_len; truncated = !truncated }

let dissect ?orig_len data =
  let orig_len = match orig_len with Some l -> l | None -> Bytes.length data in
  dissect_reader ~orig_len ~cap_len:(Bytes.length data)
    (Wire.Reader.of_bytes data)

(* The zero-copy path: headers are read in place through the slice's
   bounds-checked cursor, so dissecting a slice of the shared capture
   buffer allocates nothing payload-sized. *)
let dissect_slice ?orig_len slice =
  let cap_len = Packet.Slice.length slice in
  let orig_len = match orig_len with Some l -> l | None -> cap_len in
  dissect_reader ~orig_len ~cap_len (Packet.Slice.reader slice)

let dissect_slice_meta ?orig_len ~meta slice =
  let cap_len = Packet.Slice.length slice in
  let orig_len = match orig_len with Some l -> l | None -> cap_len in
  dissect_reader ~meta ~orig_len ~cap_len (Packet.Slice.reader slice)

let dissect_packet (p : Packet.Pcap.packet) = dissect ~orig_len:p.orig_len p.data
