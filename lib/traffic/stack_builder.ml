open Netcore
module H = Packet.Headers
module S = Dissect.Services

type flow_params = {
  vlan_id : int;
  mpls_labels : int list;
  use_pseudowire : bool;
  use_vxlan : bool;
  use_ipv6 : bool;
  service : S.service;
}

let app_header_for rng (service : S.service) : H.header option =
  match service.S.service_name with
  | "tls" -> Some (H.Tls { content_type = 23 })
  | "ssh" -> Some H.Ssh
  | "http" | "http-alt" ->
    Some (H.Http (if Rng.bool rng then `Request else `Response))
  | "dns" | "dns-tcp" -> Some (H.Dns { query = Rng.bool rng; id = Rng.int rng 65536 })
  | "ntp" -> Some H.Ntp
  | "quic" -> Some H.Quic
  | _ -> None

let l4_for rng (service : S.service) : H.header =
  let src_port = 32768 + Rng.int rng 28000 in
  match service.S.l4 with
  | S.Tcp ->
    H.Tcp
      {
        src_port;
        dst_port = service.S.port;
        seq = Int64.to_int32 (Rng.bits64 rng);
        ack_seq = Int64.to_int32 (Rng.bits64 rng);
        flags = H.flags_psh_ack;
        window = 8192 + Rng.int rng 57000;
      }
  | S.Udp -> H.Udp { src_port; dst_port = service.S.port }

(* Experiment addresses live in a per-slice 10.vlan/16-ish subnet, so
   identical private ranges in different slices stay distinguishable
   only via the virtualization tags — as on FABRIC. *)
let l3_for rng params : H.header =
  if params.use_ipv6 then
    H.Ipv6
      {
        src =
          Ipv6_addr.random_in rng
            ~prefix:(Ipv6_addr.of_string "2001:db8::")
            ~prefix_len:48;
        dst =
          Ipv6_addr.random_in rng
            ~prefix:(Ipv6_addr.of_string "2001:db8::")
            ~prefix_len:48;
        traffic_class = 0;
        flow_label = Rng.int rng 0x100000;
        hop_limit = 64;
      }
  else begin
    let subnet =
      Ipv4_addr.of_octets 10 (params.vlan_id lsr 8 land 0xFF) (params.vlan_id land 0xFF) 0
    in
    H.Ipv4
      {
        src = Ipv4_addr.random_in rng ~prefix:subnet ~prefix_len:24;
        dst = Ipv4_addr.random_in rng ~prefix:subnet ~prefix_len:24;
        dscp = 0;
        ttl = 64;
        ident = Rng.int rng 65536;
        dont_fragment = true;
      }
  end

let ethernet rng : H.header =
  H.Ethernet { src = Mac.random rng; dst = Mac.random rng }

let forward rng params =
  let tags =
    H.Vlan { pcp = 0; dei = false; vid = params.vlan_id }
    :: List.map
         (fun label -> H.Mpls { label; tc = 0; ttl = 64 })
         params.mpls_labels
  in
  let inner_l3 = l3_for rng params in
  let l4 = l4_for rng params.service in
  let app = Option.to_list (app_header_for rng params.service) in
  let experiment =
    if params.use_vxlan && not params.use_ipv6 then
      (* Overlay experiment: the researcher's own VXLAN tunnel between
         VMs, carrying the actual workload inside. *)
      [
        l3_for rng { params with use_ipv6 = false };
        H.Udp { src_port = 32768 + Rng.int rng 28000; dst_port = 4789 };
        H.Vxlan { vni = Rng.int rng 0xFFFFFF };
        ethernet rng;
        inner_l3;
        l4;
      ]
      @ app
    else (inner_l3 :: l4 :: app)
  in
  if params.use_pseudowire && params.mpls_labels <> [] then
    (ethernet rng :: tags) @ (H.Pseudowire :: ethernet rng :: experiment)
  else (ethernet rng :: tags) @ experiment

let reverse headers =
  List.filter_map
    (fun (h : H.header) : H.header option ->
      match h with
      | H.Ethernet { src; dst } -> Some (H.Ethernet { src = dst; dst = src })
      | H.Ipv4 ip -> Some (H.Ipv4 { ip with src = ip.dst; dst = ip.src })
      | H.Ipv6 ip -> Some (H.Ipv6 { ip with src = ip.dst; dst = ip.src })
      | H.Tcp tcp ->
        Some
          (H.Tcp
             {
               tcp with
               src_port = tcp.dst_port;
               dst_port = tcp.src_port;
               flags = H.flags_ack;
             })
      | H.Udp { src_port; dst_port } ->
        Some (H.Udp { src_port = dst_port; dst_port = src_port })
      | H.Tls _ | H.Ssh | H.Http _ | H.Dns _ | H.Ntp | H.Quic -> None
      | (H.Vlan _ | H.Mpls _ | H.Pseudowire | H.Icmpv4 _ | H.Icmpv6 _ | H.Arp _
        | H.Vxlan _) as h ->
        Some h)
    headers
