(** Flow specifications and frame materialization.

    A flow is described by a header-stack template, a wire-frame-size
    distribution and an average byte rate over a lifetime.  The switch
    model only needs the rates; actual frames are materialized lazily,
    and only for the time windows in which a capture is running — this
    is what makes year-scale simulations affordable. *)

type spec = {
  flow_id : int;
  template : Packet.Headers.header list;
      (** validated stack; per-frame fields (IPv4 ident, TCP seq) are
          randomized at materialization time *)
  frame_size : Netcore.Dist.t;  (** wire length distribution, bytes *)
  avg_frame_size : float;
  byte_rate : float;  (** average bytes per second on the wire *)
  start_time : float;
  duration : float;
  subflows : int;
      (** when > 1, the spec stands for an aggregate of that many
          distinct 5-tuples (a swarm of mice); materialized frames are
          spread across per-subflow address/port variants.  This keeps
          the switch model cheap (one attachment) while letting a 20 s
          sample observe thousands of distinct flows, as in Fig. 13. *)
}

val make :
  flow_id:int ->
  template:Packet.Headers.header list ->
  frame_size:Netcore.Dist.t ->
  avg_frame_size:float ->
  byte_rate:float ->
  start_time:float ->
  duration:float ->
  ?subflows:int ->
  unit ->
  spec
(** Validates the template stack; raises [Invalid_argument] if it is
    malformed or if rates/durations are negative.  [subflows] defaults
    to 1. *)

val frame_rate : spec -> float
(** Average frames per second ([byte_rate / avg_frame_size]). *)

val end_time : spec -> float
val active_at : spec -> float -> bool
val total_bytes : spec -> float

val frames_in_window :
  spec ->
  Netcore.Rng.t ->
  start_time:float ->
  end_time:float ->
  (float * Packet.Frame.t) list
(** Materialize the frames the flow emits during the overlap of its
    lifetime with the window: a Poisson count at the flow's frame rate,
    timestamps in order, sizes drawn from [frame_size] (clamped to what
    the header stack permits and to the 9000-byte jumbo MTU). *)

val expected_frames : spec -> start_time:float -> end_time:float -> float
(** Mean of the count {!frames_in_window} would draw. *)
