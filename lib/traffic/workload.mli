(** Per-site workload profiles and the testbed's seasonal activity.

    The paper finds that FABRIC sites have diverse but persistent
    traffic characteristics (B1): some sites mostly run simple
    throughput experiments, others carry a wide variety of application
    protocols; jumbo frames dominate overall (B5); IPv4 dominates with
    under 2% IPv6 (B6); and activity ramps up before conference
    deadlines, peaking the week before SC'24 (Fig. 6).

    A {!profile} captures one site's persistent character; it is derived
    deterministically from the site's index and a seed, so the same site
    keeps the same character across every profiling occasion — which is
    exactly the persistence the paper observes. *)

type site_class =
  | Bulk_throughput  (** iperf-style tests: few protocols, jumbo data frames *)
  | App_rich  (** many application services, varied frame sizes *)
  | Hpc_storage  (** storage/data-movement services, jumbo-heavy *)
  | Light  (** sparse activity, few protocols *)
  | Mixed

type profile = {
  site_name : string;
  site_index : int;
  site_class : site_class;
  palette : Dissect.Services.service list;
      (** application services in use at this site *)
  base_flow_arrival : float;  (** flow arrivals/s at activity 1.0 *)
  flow_duration : Netcore.Dist.t;  (** seconds *)
  flow_byte_rate : Netcore.Dist.t;  (** bytes/s of the forward direction *)
  data_frame_size : Netcore.Dist.t;  (** forward-direction wire sizes *)
  ack_fraction : float;  (** reverse-stream rate as a fraction of forward *)
  ipv6_fraction : float;
  pseudowire_fraction : float;  (** tunnels adding PW + inner Ethernet *)
  vxlan_fraction : float;  (** overlay experiments adding VXLAN *)
  mpls_labels : int;  (** MPLS depth the provider underlay adds (1-2) *)
  cross_site_fraction : float;  (** flows leaving via an uplink *)
  elephant_prob : float;
      (** probability a flow is a line-rate elephant (100% utilized
          ports, Fig. 6 spikes) *)
}

val profile_for_site : seed:int -> Testbed.Info_model.site -> profile
(** Deterministic profile for a site. *)

val activity : seed:int -> float -> float
(** Global seasonal multiplier at an absolute time: baseline activity
    with ramps toward the spring deadline season and the SC'24 week
    (weeks 45-46), plus day-scale noise.  Roughly in [0.1, 3.5]. *)

val site_activity : profile -> seed:int -> float -> float
(** Per-site activity: the global multiplier scaled by site character
    and site-specific jitter. *)

val expected_site_rate : profile -> seed:int -> float -> float
(** Expected aggregate byte rate (bytes/s, Tx summed over the site's
    switch ports) offered by this site's experiments at a time.  Used by
    the analytic year-scale utilization series (Fig. 6). *)

val class_name : site_class -> string

val class_scale : site_class -> float
(** Relative traffic intensity of a site class (used to weight which
    sites attract multi-site slices). *)
