(** A NetFlow-style flow exporter.

    The paper argues (§4) that operator-oriented mechanisms — NetFlow,
    sFlow, IPFIX, SNMP — are inadequate for shared testbeds: their
    records aggregate on the classic 5-tuple and "do not distinguish
    between testbed users", so two slices reusing the same 10/8
    addresses collapse into one flow, and frame-level detail
    (encapsulation stacks, sizes) is lost entirely.  The authors set up
    NetFlow inside a FABRIC experiment to assess exactly this.

    This module reproduces that comparison point: it exports v5-style
    records for the traffic crossing a switch port.  The record has no
    VLAN/MPLS fields — that is the point. *)

type record = {
  nf_src : string;
  nf_dst : string;
  nf_proto : int;  (** 6 TCP, 17 UDP, 0 other *)
  nf_src_port : int;
  nf_dst_port : int;
  nf_packets : float;
  nf_bytes : float;
  nf_first : float;
  nf_last : float;
}

val key : record -> string
(** The classic 5-tuple key (no virtualization tags). *)

val export :
  resolver:(int -> Flow_model.spec option) ->
  Testbed.Switch.t ->
  port:int ->
  start_time:float ->
  end_time:float ->
  record list
(** Export one record per active 5-tuple on the port during the window,
    merging flows that NetFlow cannot distinguish.  Aggregate (subflow)
    specs export on their base tuple only — a flow-cache would see the
    distinct subflow tuples, but with this module's v5 semantics they
    still merge whenever slices share addressing. *)

val distinct_flows : record list -> int
