open Netcore

type site_class = Bulk_throughput | App_rich | Hpc_storage | Light | Mixed

type profile = {
  site_name : string;
  site_index : int;
  site_class : site_class;
  palette : Dissect.Services.service list;
  base_flow_arrival : float;
  flow_duration : Dist.t;
  flow_byte_rate : Dist.t;
  data_frame_size : Dist.t;
  ack_fraction : float;
  ipv6_fraction : float;
  pseudowire_fraction : float;
  vxlan_fraction : float;
  mpls_labels : int;
  cross_site_fraction : float;
  elephant_prob : float;
}

let class_name = function
  | Bulk_throughput -> "bulk-throughput"
  | App_rich -> "app-rich"
  | Hpc_storage -> "hpc-storage"
  | Light -> "light"
  | Mixed -> "mixed"

(* Mean flow lifetime: a mix of short tests, medium transfers and a few
   long-running experiments. *)
let duration_dist =
  Dist.Mixture
    [ (0.70, Dist.Exponential 60.0); (0.25, Dist.Exponential 600.0);
      (0.05, Dist.Exponential 7200.0) ]

let mean_duration = (0.70 *. 60.0) +. (0.25 *. 600.0) +. (0.05 *. 7200.0)

(* Typical (non-elephant) per-flow rate: log-normal around 1 MB/s. *)
let mouse_rate_dist = Dist.Lognormal (log 1e6, 1.5)
let mean_mouse_rate = 1e6 *. exp (1.5 *. 1.5 /. 2.0)

(* Elephants: bulk transfers pushing toward a 100G port's capacity. *)
let elephant_rate_dist = Dist.Uniform (5e9, 12.5e9)
let mean_elephant_rate = 8.75e9

let rate_dist ~elephant_prob =
  Dist.Mixture
    [ (1.0 -. elephant_prob, mouse_rate_dist); (elephant_prob, elephant_rate_dist) ]

let mean_flow_rate ~elephant_prob =
  ((1.0 -. elephant_prob) *. mean_mouse_rate) +. (elephant_prob *. mean_elephant_rate)

(* Forward-direction frame-size mixes per class.  1948 is the dominant
   jumbo size on FABRIC (the 1519-2047 bin that holds 74.7% of frames);
   66 is a payload-free ACK; 9000 the full jumbo MTU. *)
let frame_size_dist = function
  | Bulk_throughput ->
    Dist.Empirical [| (0.88, 1948.0); (0.05, 66.0); (0.04, 200.0); (0.03, 9000.0) |]
  | Hpc_storage ->
    Dist.Empirical [| (0.52, 1948.0); (0.28, 9000.0); (0.12, 66.0); (0.08, 512.0) |]
  | App_rich ->
    Dist.Empirical
      [| (0.38, 1948.0); (0.24, 66.0); (0.18, 200.0); (0.12, 512.0); (0.08, 1024.0) |]
  | Light -> Dist.Empirical [| (0.45, 66.0); (0.30, 200.0); (0.25, 1514.0) |]
  | Mixed ->
    Dist.Empirical
      [| (0.62, 1948.0); (0.14, 66.0); (0.10, 256.0); (0.09, 512.0); (0.05, 9000.0) |]

let class_of_index rng =
  Rng.weighted rng
    [ (0.30, Bulk_throughput); (0.20, App_rich); (0.15, Hpc_storage);
      (0.15, Light); (0.20, Mixed) ]

let palette_size rng = function
  | Bulk_throughput -> Rng.int_in rng 2 5
  | App_rich -> Rng.int_in rng 15 40
  | Hpc_storage -> Rng.int_in rng 5 10
  | Light -> Rng.int_in rng 1 4
  | Mixed -> Rng.int_in rng 8 15

(* Services every class leans on; the rest of the palette is drawn with
   Zipf weights so common services recur across sites. *)
let class_staples = function
  | Bulk_throughput -> [ "iperf3"; "ssh" ]
  | App_rich -> [ "tls"; "http"; "dns"; "ssh" ]
  | Hpc_storage -> [ "nfs"; "ceph"; "rsync"; "ssh" ]
  | Light -> [ "ssh" ]
  | Mixed -> [ "iperf3"; "tls"; "ssh" ]

let make_palette rng site_class =
  let staples = List.filter_map Dissect.Services.by_name (class_staples site_class) in
  let want = palette_size rng site_class in
  let catalog = Dissect.Services.catalog in
  let zipf = Dist.Zipf.create ~n:(Array.length catalog) ~s:1.05 in
  let rec fill acc n_left guard =
    if n_left <= 0 || guard > 500 then acc
    else begin
      let rank = Dist.Zipf.sample zipf rng in
      let svc = catalog.(rank - 1) in
      if List.memq svc acc then fill acc n_left (guard + 1)
      else fill (svc :: acc) (n_left - 1) (guard + 1)
    end
  in
  fill staples (want - List.length staples) 0

let arrival_rate = function
  | Bulk_throughput -> 0.040
  | App_rich -> 0.080
  | Hpc_storage -> 0.040
  | Light -> 0.005
  | Mixed -> 0.053

let elephant_prob_of = function
  | Bulk_throughput -> 0.030
  | Hpc_storage -> 0.020
  | Mixed -> 0.010
  | App_rich -> 0.003
  | Light -> 0.0005

let class_scale = function
  | Bulk_throughput -> 1.3
  | Hpc_storage -> 1.5
  | App_rich -> 0.8
  | Light -> 0.15
  | Mixed -> 1.0

let profile_for_site ~seed (site : Testbed.Info_model.site) =
  (* One private stream per (seed, site): character persists across
     occasions because it never depends on when we look. *)
  let rng = Rng.create ((seed * 65537) + (site.Testbed.Info_model.index * 257) + 11) in
  let site_class =
    if site.Testbed.Info_model.teaching_only then Light else class_of_index rng
  in
  let elephant_prob = elephant_prob_of site_class in
  {
    site_name = site.Testbed.Info_model.name;
    site_index = site.Testbed.Info_model.index;
    site_class;
    palette = make_palette rng site_class;
    base_flow_arrival = arrival_rate site_class *. (0.7 +. (0.6 *. Rng.float rng));
    flow_duration = duration_dist;
    flow_byte_rate = rate_dist ~elephant_prob;
    data_frame_size = frame_size_dist site_class;
    ack_fraction = 0.004 +. (0.003 *. Rng.float rng);
    ipv6_fraction =
      (if Rng.bernoulli rng 0.25 then 0.05 +. (0.08 *. Rng.float rng) else 0.01);
    pseudowire_fraction = 0.15 +. (0.25 *. Rng.float rng);
    vxlan_fraction = (if site_class = App_rich then 0.08 else 0.02);
    mpls_labels = (if Rng.bernoulli rng 0.5 then 2 else 1);
    cross_site_fraction = 0.20 +. (0.30 *. Rng.float rng);
    elephant_prob;
  }

(* Deterministic day-scale noise shared by the analytic and event-driven
   paths. *)
let day_noise seed day =
  let rng = Rng.create ((seed * 31) + (day * 2654435761) + 5) in
  0.55 +. (0.9 *. Rng.float rng)

let gaussian_bump ~center ~sigma ~amplitude week =
  let d = (week -. center) /. sigma in
  amplitude *. exp (-0.5 *. d *. d)

let activity ~seed t =
  let week = t /. Timebase.week in
  let day = Timebase.day_of t in
  let base = 0.35 in
  let spring = gaussian_bump ~center:14.0 ~sigma:4.0 ~amplitude:1.1 week in
  let sc24 = gaussian_bump ~center:45.5 ~sigma:3.0 ~amplitude:2.7 week in
  Float.max 0.05 ((base +. spring +. sc24) *. day_noise seed day)

let site_activity profile ~seed t =
  let site_jitter =
    let rng =
      Rng.create ((seed * 131) + (profile.site_index * 17) + Timebase.week_of t)
    in
    0.7 +. (0.6 *. Rng.float rng)
  in
  activity ~seed t *. class_scale profile.site_class *. site_jitter

let expected_site_rate profile ~seed t =
  let concurrent =
    profile.base_flow_arrival *. site_activity profile ~seed t *. mean_duration
  in
  let per_flow = mean_flow_rate ~elephant_prob:profile.elephant_prob in
  (* Each flow's bytes are transmitted out of one downlink, and
     cross-site flows additionally out of an uplink. *)
  concurrent *. per_flow *. (1.0 +. profile.cross_site_fraction)
    *. (1.0 +. profile.ack_fraction)
