module H = Packet.Headers

type record = {
  nf_src : string;
  nf_dst : string;
  nf_proto : int;
  nf_src_port : int;
  nf_dst_port : int;
  nf_packets : float;
  nf_bytes : float;
  nf_first : float;
  nf_last : float;
}

let key r =
  Printf.sprintf "%s|%s|%d|%d|%d" r.nf_src r.nf_dst r.nf_proto r.nf_src_port
    r.nf_dst_port

(* The innermost L3/L4 of a template, as the flow cache would hash it.
   Outer tunnel headers are what a v5 exporter on the physical port sees
   first, but FABRIC's tags (VLAN/MPLS/PW) are below NetFlow's keys
   either way; we expose the experiment's 5-tuple. *)
let tuple_of_template headers =
  let src = ref "" and dst = ref "" in
  let proto = ref 0 and sport = ref 0 and dport = ref 0 in
  List.iter
    (fun (h : H.header) ->
      match h with
      | H.Ipv4 ip ->
        src := Netcore.Ipv4_addr.to_string ip.H.src;
        dst := Netcore.Ipv4_addr.to_string ip.H.dst
      | H.Ipv6 ip ->
        src := Netcore.Ipv6_addr.to_string ip.H.src;
        dst := Netcore.Ipv6_addr.to_string ip.H.dst
      | H.Tcp t ->
        proto := 6;
        sport := t.H.src_port;
        dport := t.H.dst_port
      | H.Udp u ->
        proto := 17;
        sport := u.H.src_port;
        dport := u.H.dst_port
      | _ -> ())
    headers;
  (!src, !dst, !proto, !sport, !dport)

let export ~resolver sw ~port ~start_time ~end_time =
  let table : (string, record) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Testbed.Switch.attachment) ->
      match resolver a.Testbed.Switch.flow with
      | None -> ()
      | Some (spec : Flow_model.spec) ->
        let t0 = Float.max start_time spec.Flow_model.start_time in
        let t1 = Float.min end_time (Flow_model.end_time spec) in
        if t1 > t0 then begin
          let nf_src, nf_dst, nf_proto, nf_src_port, nf_dst_port =
            tuple_of_template spec.Flow_model.template
          in
          if nf_src <> "" then begin
            let bytes = spec.Flow_model.byte_rate *. (t1 -. t0) in
            let packets = Flow_model.frame_rate spec *. (t1 -. t0) in
            let fresh =
              { nf_src; nf_dst; nf_proto; nf_src_port; nf_dst_port;
                nf_packets = packets; nf_bytes = bytes; nf_first = t0; nf_last = t1 }
            in
            let k = key fresh in
            match Hashtbl.find_opt table k with
            | None -> Hashtbl.add table k fresh
            | Some existing ->
              (* The collision the paper warns about: flows from
                 different slices with the same 5-tuple merge. *)
              Hashtbl.replace table k
                {
                  existing with
                  nf_packets = existing.nf_packets +. packets;
                  nf_bytes = existing.nf_bytes +. bytes;
                  nf_first = Float.min existing.nf_first t0;
                  nf_last = Float.max existing.nf_last t1;
                }
          end
        end)
    (Testbed.Switch.attachments sw ~port);
  Hashtbl.fold (fun _ r acc -> r :: acc) table []
  |> List.sort (fun a b -> compare b.nf_bytes a.nf_bytes)

let distinct_flows records = List.length records
