open Netcore

type sample = { arrival : float; duration : float; sites_used : int }

(* Lifetime mixture calibrated so ~75% of slices last <= 24 h (Fig. 4)
   with a tail of multi-day experiments. *)
let duration_dist =
  Dist.Mixture
    [ (0.55, Dist.Exponential (8.0 *. Timebase.hour));
      (0.30, Dist.Exponential (24.0 *. Timebase.hour));
      (0.15, Dist.Exponential (5.0 *. Timebase.day)) ]

let mean_duration =
  (0.55 *. 8.0 *. Timebase.hour)
  +. (0.30 *. 24.0 *. Timebase.hour)
  +. (0.15 *. 5.0 *. Timebase.day)

(* Slice creation follows the seasonal curve sublinearly — deadline
   crunches multiply traffic more than they multiply slice count. *)
let activity_exponent = 0.7

(* Base arrival rate chosen so the mean concurrency is ~85 slices
   (Fig. 5) given the year-mean of activity^0.7 (~1.04 empirically). *)
let base_arrivals_per_second = 85.0 /. (mean_duration *. 1.04)

let sites_used_sample rng =
  if Rng.bernoulli rng 0.665 then 1
  else begin
    (* Multi-site slices: 2 + geometric tail. *)
    let rec extra n = if n >= 10 || Rng.bernoulli rng 0.55 then n else extra (n + 1) in
    2 + extra 0
  end

let generate ~seed ~horizon =
  let rng = Rng.create (seed * 613) in
  let rec go acc t =
    (* Thinning: draw at the maximum intensity and accept
       proportionally to the current seasonal activity. *)
    let max_activity = 3.6 ** activity_exponent in
    let dt = Rng.exponential rng ~mean:(1.0 /. (base_arrivals_per_second *. max_activity)) in
    let t = t +. dt in
    if t >= horizon then List.rev acc
    else begin
      let accept = (Workload.activity ~seed t ** activity_exponent) /. max_activity in
      if Rng.bernoulli rng accept then
        let s =
          {
            arrival = t;
            duration = Dist.sample duration_dist rng;
            sites_used = sites_used_sample rng;
          }
        in
        go (s :: acc) t
      else go acc t
    end
  in
  go [] 0.0

let spread_fractions samples ~max_sites =
  if max_sites < 1 then invalid_arg "Slice_process.spread_fractions";
  let counts = Array.make max_sites 0 in
  List.iter
    (fun s ->
      let k = min max_sites s.sites_used in
      counts.(k - 1) <- counts.(k - 1) + 1)
    samples;
  let total = float_of_int (max 1 (List.length samples)) in
  Array.map (fun c -> float_of_int c /. total) counts

let duration_cdf samples ~at_hours =
  let total = float_of_int (max 1 (List.length samples)) in
  List.map
    (fun h ->
      let cutoff = h *. Timebase.hour in
      let n = List.length (List.filter (fun s -> s.duration <= cutoff) samples) in
      (h, float_of_int n /. total))
    at_hours

let concurrency_series samples ~step ~horizon =
  if step <= 0.0 then invalid_arg "Slice_process.concurrency_series";
  let n = int_of_float (horizon /. step) in
  let deltas = Array.make (n + 1) 0 in
  List.iter
    (fun s ->
      let first = int_of_float (s.arrival /. step) in
      let last = int_of_float ((s.arrival +. s.duration) /. step) in
      if first <= n then begin
        deltas.(first) <- deltas.(first) + 1;
        if last + 1 <= n then deltas.(last + 1) <- deltas.(last + 1) - 1
      end)
    samples;
  let out = Array.make n (0.0, 0) in
  let live = ref 0 in
  for i = 0 to n - 1 do
    live := !live + deltas.(i);
    out.(i) <- (float_of_int i *. step, !live)
  done;
  out

let concurrency_stats series =
  let values = Array.map (fun (_, v) -> float_of_int v) series in
  let stats = Dist.Summary.of_array values in
  (stats.Dist.Summary.mean, stats.Dist.Summary.stddev,
   int_of_float stats.Dist.Summary.max)
