(** An iperf3-style TCP throughput test.

    The paper's software-capture experiment (§8.1.2) drives tcpdump with
    an iperf3 client/server pair that sustains about 11 Gbps.  This
    module models that workload: N parallel TCP streams (iperf3 [-P])
    running slow-start + AIMD congestion avoidance against a bottleneck,
    reporting the familiar per-second throughput lines.

    The model is deliberately classic Reno-style: cwnd doubles per RTT
    to the slow-start threshold, then grows one MSS per RTT; when the
    aggregate offered rate exceeds the bottleneck, the overdriving
    streams halve.  That produces the sawtooth and the ~95% bottleneck
    utilization real multi-stream iperf3 shows. *)

type config = {
  streams : int;  (** parallel connections (iperf3 -P) *)
  bottleneck_rate : float;  (** bits/s of the limiting hop *)
  rtt : float;  (** round-trip time, seconds *)
  mss : int;  (** TCP payload bytes per segment *)
  receive_window : float;  (** per-stream cwnd cap, bytes *)
  duration : float;  (** test length, seconds *)
}

val default : config
(** One stream through an 11 Gbps bottleneck at 1 ms RTT — the §8.1.2
    setup. *)

type second_sample = {
  interval_start : float;
  goodput : float;  (** bits/s achieved during the interval *)
  retransmits : int;  (** loss events during the interval *)
}

type result = {
  samples : second_sample list;  (** one per second, in order *)
  mean_goodput : float;  (** bits/s over the whole test *)
  total_retransmits : int;
  peak_goodput : float;
}

val run : ?seed:int -> config -> result

val frame_size : config -> int
(** Wire size of a full-MSS data frame (Ethernet+IP+TCP+MSS). *)
