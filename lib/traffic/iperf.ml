type config = {
  streams : int;
  bottleneck_rate : float;
  rtt : float;
  mss : int;
  receive_window : float;
  duration : float;
}

let default =
  {
    streams = 1;
    bottleneck_rate = 11e9;
    rtt = 1e-3;
    mss = 1448;
    receive_window = 4.0 *. 1048576.0;
    duration = 10.0;
  }

type second_sample = {
  interval_start : float;
  goodput : float;
  retransmits : int;
}

type result = {
  samples : second_sample list;
  mean_goodput : float;
  total_retransmits : int;
  peak_goodput : float;
}

type stream = { mutable cwnd : float; mutable ssthresh : float }

let run ?(seed = 11) config =
  if config.streams < 1 then invalid_arg "Iperf.run: streams";
  if config.duration <= 0.0 then invalid_arg "Iperf.run: duration";
  let rng = Netcore.Rng.create seed in
  let mss = float_of_int config.mss in
  let streams =
    Array.init config.streams (fun _ ->
        { cwnd = 10.0 *. mss; ssthresh = config.receive_window /. 2.0 })
  in
  let bottleneck_bytes = config.bottleneck_rate /. 8.0 in
  let samples = ref [] in
  let total_retx = ref 0 in
  let t = ref 0.0 in
  let interval_bytes = ref 0.0 and interval_retx = ref 0 and interval_start = ref 0.0 in
  while !t < config.duration do
    (* Demand this RTT. *)
    let demand =
      Array.fold_left (fun acc s -> acc +. (s.cwnd /. config.rtt)) 0.0 streams
    in
    let delivered_rate = Float.min demand bottleneck_bytes in
    interval_bytes := !interval_bytes +. (delivered_rate *. config.rtt);
    (* Congestion response: when demand exceeds the bottleneck, the
       queue overflows and a random subset of streams sees loss. *)
    if demand > 1.08 *. bottleneck_bytes then begin
      Array.iter
        (fun s ->
          if Netcore.Rng.bernoulli rng (0.7 /. float_of_int config.streams) then begin
            s.ssthresh <- Float.max (2.0 *. mss) (s.cwnd /. 2.0);
            s.cwnd <- s.ssthresh;
            incr total_retx;
            incr interval_retx
          end)
        streams
    end
    else
      (* Growth: slow start below ssthresh, else one MSS per RTT. *)
      Array.iter
        (fun s ->
          let grown =
            if s.cwnd < s.ssthresh then s.cwnd *. 2.0 else s.cwnd +. mss
          in
          s.cwnd <- Float.min config.receive_window grown)
        streams;
    t := !t +. config.rtt;
    if !t -. !interval_start >= 1.0 || !t >= config.duration then begin
      let span = !t -. !interval_start in
      if span > 0.0 then
        samples :=
          {
            interval_start = !interval_start;
            goodput = !interval_bytes *. 8.0 /. span;
            retransmits = !interval_retx;
          }
          :: !samples;
      interval_start := !t;
      interval_bytes := 0.0;
      interval_retx := 0
    end
  done;
  let samples = List.rev !samples in
  let total_bits =
    List.fold_left
      (fun acc s -> acc +. (s.goodput *. 1.0))
      0.0 samples
  in
  let mean = total_bits /. float_of_int (max 1 (List.length samples)) in
  let peak = List.fold_left (fun acc s -> Float.max acc s.goodput) 0.0 samples in
  { samples; mean_goodput = mean; total_retransmits = !total_retx; peak_goodput = peak }

let frame_size config = 14 + 20 + 20 + config.mss
