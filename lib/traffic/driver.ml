open Netcore
module Fablib = Testbed.Fablib
module Switch = Testbed.Switch
module Info_model = Testbed.Info_model

type site_ports = {
  (* Downlinks in per-site popularity order: researchers pile onto the
     same few well-equipped servers, so port selection is Zipfian. *)
  ranked_downlinks : int array;
  downlink_zipf : Dist.Zipf.sampler;
  (* Fabric port lists in Fablib order, materialized once: flow
     preparation runs per arrival, so per-call Array.of_list /
     harmonic-sum work would be O(flows × ports). *)
  downlinks : int array;
  uplinks : int array;
}

(* Service palette of a profile with its Zipf sampler precomputed
   (Zipf.create is an O(n) harmonic sum — far too hot to rebuild per
   spawned flow). *)
type site_services = {
  palette : Dissect.Services.service array;
  palette_zipf : Dist.Zipf.sampler;
}

(* Cross-site destination table, precomputed per source site: cumulative
   class-scale weights over every *other* site, sampled by binary
   search.  Rebuilding the weighted candidate list per cross-site flow
   was O(sites) per arrival. *)
type remote_table = { rt_cum : float array; rt_names : string array }

(* Per-site generator: every random draw a site's synthesis needs comes
   from [sg_rng], seeded independently of the other sites, so the sites
   can presample on a pool in any order — or concurrently — and still
   produce bit-identical output. *)
type site_gen = {
  sg_index : int;  (* position in the model's site array *)
  sg_profile : Workload.profile;
  sg_rng : Rng.t;
  sg_ports : site_ports;
  sg_services : site_services option;
  sg_remotes : remote_table option;  (* None when this is the only site *)
  mutable sg_pending : float;  (* absolute time of the next candidate arrival *)
  mutable sg_stripe : int;  (* flow ids are sg_index + sg_stripe * n_sites *)
}

(* Everything one arrival will do to the shared fabric, drawn entirely
   from the owning site's generator at presample time.  Executing it
   (attach/detach, spec-table insertion) happens later, inside the
   single-threaded engine. *)
type prepared = {
  pr_time : float;
  pr_duration : float;
  pr_fwd_id : int;
  pr_fwd_spec : Flow_model.spec;
  pr_plan : (string * int * Switch.dir) list;
  pr_rev : (int * Flow_model.spec) option;  (* reverse plan mirrors pr_plan *)
}

type t = {
  fabric : Fablib.t;
  seed : int;
  pool : Parallel.Pool.t;
  slab : float;  (* presample horizon, simulated seconds *)
  batch_events : bool;  (* slab arrivals enter the engine as one block *)
  gens : site_gen array;
  by_name : (string, site_gen) Hashtbl.t;
  specs : (int, Flow_model.spec) Hashtbl.t;
  n_sites : int;
  mutable spawned : int;
  mutable until : float;
}

let obs_prepared =
  Obs.Registry.counter Obs.Registry.default "traffic_prepared_flows_total"
    ~help:"Flow arrivals presampled by the traffic driver"

let obs_presample_batches =
  Obs.Registry.counter Obs.Registry.default "traffic_presample_batches_total"
    ~help:"Per-site presample batches fanned out on the pool"

let obs_events_batched =
  Obs.Registry.counter Obs.Registry.default "engine_events_batched_total"
    ~help:"Arrival events delivered to the engine as pre-sorted batches"

(* Independent per-site stream: mix the site index into the seed with
   two odd constants so neighbouring seeds / indices do not collide.
   SplitMix64's creation scrambler does the rest. *)
let site_seed seed index =
  (seed * 2654435761) lxor ((index + 1) * 0x9E3779B97F4A7C1)

let create ?(pool = Parallel.Pool.sequential) ?(slab = 900.0)
    ?(batch_events = true) fabric ~seed =
  if slab <= 0.0 then invalid_arg "Driver.create: slab must be positive";
  let sites = (Fablib.model fabric).Info_model.sites in
  let n = Array.length sites in
  let profiles =
    Array.map (fun site -> Workload.profile_for_site ~seed site) sites
  in
  let gens =
    Array.mapi
      (fun i (site : Info_model.site) ->
        let name = site.Info_model.name in
        let rng = Rng.create (site_seed seed i) in
        let downlinks = Array.of_list (Fablib.downlink_ports fabric ~site:name) in
        let ranked = Array.copy downlinks in
        Rng.shuffle rng ranked;
        let ports =
          {
            ranked_downlinks = ranked;
            downlink_zipf = Dist.Zipf.create ~n:(Array.length ranked) ~s:1.2;
            downlinks;
            uplinks = Array.of_list (Fablib.uplink_ports fabric ~site:name);
          }
        in
        let services =
          let palette = Array.of_list profiles.(i).Workload.palette in
          if Array.length palette = 0 then None
          else
            Some
              {
                palette;
                palette_zipf = Dist.Zipf.create ~n:(Array.length palette) ~s:0.9;
              }
        in
        let remotes =
          if n <= 1 then None
          else begin
            (* Multi-site slices overwhelmingly anchor on well-equipped
               sites, so quiet sites receive little remote traffic. *)
            let cum = Array.make (n - 1) 0.0 in
            let names = Array.make (n - 1) "" in
            let acc = ref 0.0 in
            let k = ref 0 in
            Array.iteri
              (fun j (s : Info_model.site) ->
                if j <> i then begin
                  acc :=
                    !acc +. Workload.class_scale profiles.(j).Workload.site_class;
                  cum.(!k) <- !acc;
                  names.(!k) <- s.Info_model.name;
                  incr k
                end)
              sites;
            Some { rt_cum = cum; rt_names = names }
          end
        in
        {
          sg_index = i;
          sg_profile = profiles.(i);
          sg_rng = rng;
          sg_ports = ports;
          sg_services = services;
          sg_remotes = remotes;
          sg_pending = infinity;
          sg_stripe = 0;
        })
      sites
  in
  let by_name = Hashtbl.create (max 1 n) in
  Array.iter
    (fun g -> Hashtbl.add by_name g.sg_profile.Workload.site_name g)
    gens;
  {
    fabric;
    seed;
    pool;
    slab;
    batch_events;
    gens;
    by_name;
    specs = Hashtbl.create 1024;
    n_sites = n;
    spawned = 0;
    until = 0.0;
  }

let profiles t =
  Array.fold_left (fun acc g -> g.sg_profile :: acc) [] t.gens

let profile t ~site =
  match Hashtbl.find_opt t.by_name site with
  | Some g -> g.sg_profile
  | None -> invalid_arg ("Driver.profile: unknown site " ^ site)

let resolver t flow = Hashtbl.find_opt t.specs flow
let live_flow_count t = Hashtbl.length t.specs
let spawned_flows t = t.spawned

(* Striped flow-id allocation: site i's k-th flow is i + k * n_sites, so
   ids are globally unique without any shared counter. *)
let fresh_flow_id t gen =
  let id = gen.sg_index + (gen.sg_stripe * t.n_sites) in
  gen.sg_stripe <- gen.sg_stripe + 1;
  id

(* Frame sizes of a pure-ACK reverse stream. *)
let ack_frame_sizes = Dist.Empirical [| (0.85, 66.0); (0.15, 90.0) |]

(* Elephants push jumbo frames regardless of the site's usual mix; a
   few percent of control/retransmission chatter rides along. *)
let elephant_frame_sizes =
  Dist.Empirical [| (0.87, 1948.0); (0.045, 200.0); (0.085, 9000.0) |]

let pick_service rng gen =
  match gen.sg_services with
  | None -> Option.get (Dissect.Services.by_name "ssh")
  | Some s -> s.palette.(Dist.Zipf.sample s.palette_zipf rng - 1)

(* First index of [cum] whose cumulative weight exceeds [u]. *)
let cum_search cum u =
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) <= u then lo := mid + 1 else hi := mid
  done;
  !lo

let pick_other_site rng gen =
  match gen.sg_remotes with
  | None -> invalid_arg "Driver.pick_other_site: single-site model"
  | Some rt ->
    let total = rt.rt_cum.(Array.length rt.rt_cum - 1) in
    rt.rt_names.(cum_search rt.rt_cum (Rng.float rng *. total))

(* Port picks take the drawing rng explicitly: a cross-site flow draws
   the *remote* site's ports from the *source* site's stream, so no
   generator is ever touched by two sites' presampling at once. *)
let random_downlink rng (sp : site_ports) =
  let rank = Dist.Zipf.sample sp.downlink_zipf rng in
  sp.ranked_downlinks.(rank - 1)

let random_uplink rng (sp : site_ports) = Rng.choice rng sp.uplinks

let ports_of t ~site =
  match Hashtbl.find_opt t.by_name site with
  | Some g -> g.sg_ports
  | None -> invalid_arg ("Driver: unknown site " ^ site)

(* A "plan" is the list of (site, port, dir) channels a stream occupies. *)
let attach t plan ~flow ~byte_rate ~frame_rate =
  List.iter
    (fun (site, port, dir) ->
      Switch.attach_flow (Fablib.switch t.fabric ~site) ~port ~dir ~byte_rate
        ~frame_rate ~flow)
    plan

let detach t ~flow sites =
  List.iter (fun site -> Switch.detach_flow (Fablib.switch t.fabric ~site) ~flow) sites;
  Hashtbl.remove t.specs flow

(* Channels crossed by the forward direction of a flow from [src] port
   at [site] toward either another server of the same site or a remote
   site.  The reverse stream uses the mirrored plan. *)
let plan_forward t rng ~site ~src_port = function
  | `Intra dst_port -> [ (site, src_port, Switch.Rx); (site, dst_port, Switch.Tx) ]
  | `Cross (remote, remote_dst) ->
    [
      (site, src_port, Switch.Rx);
      (site, random_uplink rng (ports_of t ~site), Switch.Tx);
      (remote, random_uplink rng (ports_of t ~site:remote), Switch.Rx);
      (remote, remote_dst, Switch.Tx);
    ]

let plan_reverse plan =
  List.map
    (fun (site, port, dir) ->
      (site, port, match dir with Switch.Rx -> Switch.Tx | Switch.Tx -> Switch.Rx))
    plan

let sites_of_plan plan =
  List.sort_uniq compare (List.map (fun (site, _, _) -> site) plan)

(* Draw one arrival's full character from the site's own stream.  Pure
   with respect to every other site's state and to the fabric switches,
   so presampling fans out across the pool freely. *)
let prepare_flow t gen ~now =
  let rng = gen.sg_rng in
  let p = gen.sg_profile in
  let site = p.Workload.site_name in
  (* Character of this flow. *)
  let byte_rate = Dist.sample p.Workload.flow_byte_rate rng in
  let is_elephant = byte_rate >= 2e9 in
  let is_swarm =
    (not is_elephant)
    && p.Workload.site_class = Workload.App_rich
    && Rng.bernoulli rng 0.12
  in
  let subflows =
    if is_swarm then Rng.int_in rng 200 5000
    else if is_elephant then 1
    else
      (* Many experiments open parallel connections (iperf -P, storage
         clients, scan tools). *)
      Rng.weighted rng
        [ (0.60, 1); (0.25, 1 + Rng.int rng 16); (0.15, 16 + Rng.int rng 112) ]
  in
  let byte_rate = if is_swarm then byte_rate *. 5.0 else byte_rate in
  let duration = Float.max 1.0 (Dist.sample p.Workload.flow_duration rng) in
  let service =
    (* Line-rate bulk transfers are overwhelmingly TCP throughput tests. *)
    if is_elephant && Rng.bernoulli rng 0.85 then
      Option.get (Dissect.Services.by_name "iperf3")
    else pick_service rng gen
  in
  let params =
    {
      Stack_builder.vlan_id = 100 + Rng.int rng 3900;
      mpls_labels =
        List.init p.Workload.mpls_labels (fun _ -> 16 + Rng.int rng 1_000_000);
      use_pseudowire = Rng.bernoulli rng p.Workload.pseudowire_fraction;
      use_vxlan = (not is_elephant) && Rng.bernoulli rng p.Workload.vxlan_fraction;
      (* Bulk line-rate transfers are mostly IPv4; a small share of
         bulk tests exercises IPv6 paths. *)
      use_ipv6 =
        (if is_elephant then Rng.bernoulli rng 0.04
         else Rng.bernoulli rng p.Workload.ipv6_fraction);
      service;
    }
  in
  let template = Stack_builder.forward rng params in
  let frame_size =
    if is_elephant then elephant_frame_sizes else p.Workload.data_frame_size
  in
  let avg_frame_size = Option.value ~default:800.0 (Dist.mean frame_size) in
  (* Placement. *)
  let src_port = random_downlink rng gen.sg_ports in
  let destination =
    if gen.sg_remotes <> None && Rng.bernoulli rng p.Workload.cross_site_fraction
    then begin
      let remote = pick_other_site rng gen in
      `Cross (remote, random_downlink rng (ports_of t ~site:remote))
    end
    else begin
      (* Rejection-sample the destination downlink instead of
         materializing a fresh filtered array per arrival: src_port is
         one element of [downlinks], so with two or more downlinks each
         redraw misses it with probability (len-1)/len. *)
      let downlinks = gen.sg_ports.downlinks in
      let len = Array.length downlinks in
      if len <= 1 then `Intra src_port (* single-downlink site: loop locally *)
      else begin
        let rec pick () =
          let port = downlinks.(Rng.int rng len) in
          if port = src_port then pick () else port
        in
        `Intra (pick ())
      end
    end
  in
  let fwd_plan = plan_forward t rng ~site ~src_port destination in
  let fwd_id = fresh_flow_id t gen in
  let fwd_spec =
    Flow_model.make ~flow_id:fwd_id ~template ~frame_size ~avg_frame_size
      ~byte_rate ~start_time:now ~duration ~subflows ()
  in
  (* Reverse ACK stream for TCP services. *)
  let rev =
    if service.Dissect.Services.l4 = Dissect.Services.Tcp then begin
      let rev_id = fresh_flow_id t gen in
      let rev_template = Stack_builder.reverse template in
      let rev_rate = byte_rate *. p.Workload.ack_fraction in
      let rev_spec =
        Flow_model.make ~flow_id:rev_id ~template:rev_template
          ~frame_size:ack_frame_sizes ~avg_frame_size:70.0 ~byte_rate:rev_rate
          ~start_time:now ~duration ~subflows ()
      in
      Some (rev_id, rev_spec)
    end
    else None
  in
  {
    pr_time = now;
    pr_duration = duration;
    pr_fwd_id = fwd_id;
    pr_fwd_spec = fwd_spec;
    pr_plan = fwd_plan;
    pr_rev = rev;
  }

(* Execute a prepared arrival.  Runs inside the (single-threaded) engine
   at [pr_time]: the only shared-state effects of a flow's life are
   here and in the detach callback. *)
let execute t prep =
  Hashtbl.replace t.specs prep.pr_fwd_id prep.pr_fwd_spec;
  attach t prep.pr_plan ~flow:prep.pr_fwd_id
    ~byte_rate:prep.pr_fwd_spec.Flow_model.byte_rate
    ~frame_rate:(Flow_model.frame_rate prep.pr_fwd_spec);
  let rev_ids =
    match prep.pr_rev with
    | None -> []
    | Some (rev_id, rev_spec) ->
      Hashtbl.replace t.specs rev_id rev_spec;
      attach t (plan_reverse prep.pr_plan) ~flow:rev_id
        ~byte_rate:rev_spec.Flow_model.byte_rate
        ~frame_rate:(Flow_model.frame_rate rev_spec);
      [ rev_id ]
  in
  t.spawned <- t.spawned + 1 + List.length rev_ids;
  let sites = sites_of_plan prep.pr_plan in
  Simcore.Engine.schedule (Fablib.engine t.fabric) ~delay:prep.pr_duration
    (fun _ ->
      detach t ~flow:prep.pr_fwd_id sites;
      List.iter (fun id -> detach t ~flow:id sites) rev_ids)

(* Thinned Poisson arrivals per site: draw at a fixed ceiling intensity
   and accept proportionally to the activity at the (known) arrival
   time.  [Workload.site_activity] is a pure function of time, so the
   accept/reject decision moves from fire time to presample time without
   changing the process. *)
let max_site_activity = 8.0

(* Candidate arrivals of [gen] strictly before [limit], in time order.
   The exponential chain continues across slab boundaries ([sg_pending]
   carries the already-drawn next arrival), so the output is identical
   whatever the slab size, pool size, or site interleaving. *)
let presample_site t gen ~limit =
  let p = gen.sg_profile in
  let ceiling = p.Workload.base_flow_arrival *. max_site_activity in
  let mean = 1.0 /. ceiling in
  let acc = ref [] in
  while gen.sg_pending < limit do
    let ta = gen.sg_pending in
    let act = Workload.site_activity p ~seed:t.seed ta in
    if Rng.bernoulli gen.sg_rng (Float.min 1.0 (act /. max_site_activity)) then
      acc := prepare_flow t gen ~now:ta :: !acc;
    gen.sg_pending <- ta +. Rng.exponential gen.sg_rng ~mean
  done;
  List.rev !acc

(* Presample one slab for every site — fanned out on the pool, one task
   per site; each task touches only its own generator, and remote port
   tables are immutable, so any interleaving yields the same batches.
   [Pool.map_array] returns them in site order, and scheduling walks
   sites in that fixed order, so the engine's tie-break (insertion
   order) is pool-size-independent too. *)
let rec refill t ~from =
  let engine = Fablib.engine t.fabric in
  let limit = Float.min (from +. t.slab) t.until in
  let batches =
    Parallel.Pool.map_array t.pool (fun gen -> presample_site t gen ~limit) t.gens
  in
  Obs.Registry.incr obs_presample_batches;
  let nowc = Simcore.Engine.now engine in
  Array.iter
    (fun preps ->
      if t.batch_events then begin
        (* One pre-sorted block per site-slab: one array of times and
           one shared callback indexing into the prepared array, instead
           of a heap push, an event record and a closure per arrival.
           Times go through the same [clock +. (time -. clock)]
           round-trip [schedule_at] applies, so batched and per-event
           replay fire at bit-identical instants. *)
        match preps with
        | [] -> ()
        | preps ->
          let arr = Array.of_list preps in
          let n = Array.length arr in
          let times =
            Array.map (fun p -> nowc +. (p.pr_time -. nowc)) arr
          in
          Obs.Registry.inc obs_prepared (float_of_int n);
          Obs.Registry.inc obs_events_batched (float_of_int n);
          ignore
            (Simcore.Engine.schedule_batch engine ~times (fun _ i ->
                 execute t arr.(i)))
      end
      else
        List.iter
          (fun prep ->
            Obs.Registry.incr obs_prepared;
            Simcore.Engine.schedule_at engine ~time:prep.pr_time (fun _ ->
                execute t prep))
          preps)
    batches;
  if limit < t.until then
    Simcore.Engine.schedule_at engine ~time:limit (fun _ -> refill t ~from:limit)

let start t ~until =
  let engine = Fablib.engine t.fabric in
  let now = Simcore.Engine.now engine in
  t.until <- until;
  Array.iter
    (fun gen ->
      let ceiling =
        gen.sg_profile.Workload.base_flow_arrival *. max_site_activity
      in
      gen.sg_pending <- now +. Rng.exponential gen.sg_rng ~mean:(1.0 /. ceiling))
    t.gens;
  if until > now then refill t ~from:now
