open Netcore
module Fablib = Testbed.Fablib
module Switch = Testbed.Switch
module Info_model = Testbed.Info_model

type site_ports = {
  (* Downlinks in per-site popularity order: researchers pile onto the
     same few well-equipped servers, so port selection is Zipfian. *)
  ranked_downlinks : int array;
  downlink_zipf : Dist.Zipf.sampler;
  (* Fabric port lists in Fablib order, materialized once: spawn_flow
     runs per arrival, so per-call Array.of_list / harmonic-sum work
     would be O(flows × ports). *)
  downlinks : int array;
  uplinks : int array;
}

(* Service palette of a profile with its Zipf sampler precomputed
   (Zipf.create is an O(n) harmonic sum — far too hot to rebuild per
   spawned flow). *)
type site_services = {
  palette : Dissect.Services.service array;
  palette_zipf : Dist.Zipf.sampler;
}

type t = {
  fabric : Fablib.t;
  seed : int;
  rng : Rng.t;
  profiles : (string, Workload.profile) Hashtbl.t;
  ports : (string, site_ports) Hashtbl.t;
  services : (string, site_services) Hashtbl.t;
  specs : (int, Flow_model.spec) Hashtbl.t;
  mutable next_flow : int;
  mutable spawned : int;
  mutable until : float;
}

let create fabric ~seed =
  let profiles = Hashtbl.create 32 in
  let ports = Hashtbl.create 32 in
  let services = Hashtbl.create 32 in
  let rng = Rng.create (seed * 2654435761) in
  Array.iter
    (fun site ->
      let name = site.Info_model.name in
      let profile = Workload.profile_for_site ~seed site in
      Hashtbl.add profiles name profile;
      let downlinks = Array.of_list (Fablib.downlink_ports fabric ~site:name) in
      let ranked = Array.copy downlinks in
      Rng.shuffle rng ranked;
      Hashtbl.add ports name
        {
          ranked_downlinks = ranked;
          downlink_zipf = Dist.Zipf.create ~n:(Array.length ranked) ~s:1.2;
          downlinks;
          uplinks = Array.of_list (Fablib.uplink_ports fabric ~site:name);
        };
      let palette = Array.of_list profile.Workload.palette in
      if Array.length palette > 0 then
        Hashtbl.add services name
          {
            palette;
            palette_zipf = Dist.Zipf.create ~n:(Array.length palette) ~s:0.9;
          })
    (Fablib.model fabric).Info_model.sites;
  {
    fabric;
    seed;
    rng;
    profiles;
    ports;
    services;
    specs = Hashtbl.create 1024;
    next_flow = 0;
    spawned = 0;
    until = 0.0;
  }

let profiles t = Hashtbl.fold (fun _ p acc -> p :: acc) t.profiles []

let profile t ~site =
  match Hashtbl.find_opt t.profiles site with
  | Some p -> p
  | None -> invalid_arg ("Driver.profile: unknown site " ^ site)

let resolver t flow = Hashtbl.find_opt t.specs flow
let live_flow_count t = Hashtbl.length t.specs
let spawned_flows t = t.spawned

let fresh_flow_id t =
  let id = t.next_flow in
  t.next_flow <- id + 1;
  id

(* Frame sizes of a pure-ACK reverse stream. *)
let ack_frame_sizes = Dist.Empirical [| (0.85, 66.0); (0.15, 90.0) |]

(* Elephants push jumbo frames regardless of the site's usual mix; a
   few percent of control/retransmission chatter rides along. *)
let elephant_frame_sizes =
  Dist.Empirical [| (0.87, 1948.0); (0.045, 200.0); (0.085, 9000.0) |]

let pick_service t rng (p : Workload.profile) =
  match Hashtbl.find_opt t.services p.Workload.site_name with
  | None -> Option.get (Dissect.Services.by_name "ssh")
  | Some s -> s.palette.(Dist.Zipf.sample s.palette_zipf rng - 1)

let pick_other_site t ~not_site =
  (* Multi-site slices overwhelmingly anchor on well-equipped sites, so
     quiet sites receive little remote traffic. *)
  let candidates =
    List.filter_map
      (fun (s : Info_model.site) ->
        if s.Info_model.name = not_site then None
        else begin
          let p = Hashtbl.find t.profiles s.Info_model.name in
          Some (Workload.class_scale p.Workload.site_class, s.Info_model.name)
        end)
      (Array.to_list (Fablib.model t.fabric).Info_model.sites)
  in
  Rng.weighted t.rng candidates

let random_downlink t ~site =
  let sp = Hashtbl.find t.ports site in
  let rank = Dist.Zipf.sample sp.downlink_zipf t.rng in
  sp.ranked_downlinks.(rank - 1)
let random_uplink t ~site = Rng.choice t.rng (Hashtbl.find t.ports site).uplinks

(* A "plan" is the list of (site, port, dir) channels a stream occupies. *)
let attach t plan ~flow ~byte_rate ~frame_rate =
  List.iter
    (fun (site, port, dir) ->
      Switch.attach_flow (Fablib.switch t.fabric ~site) ~port ~dir ~byte_rate
        ~frame_rate ~flow)
    plan

let detach t ~flow sites =
  List.iter (fun site -> Switch.detach_flow (Fablib.switch t.fabric ~site) ~flow) sites;
  Hashtbl.remove t.specs flow

(* Channels crossed by the forward direction of a flow from [src] port
   at [site] toward either another server of the same site or a remote
   site.  The reverse stream uses the mirrored plan. *)
let plan_forward t ~site ~src_port = function
  | `Intra dst_port -> [ (site, src_port, Switch.Rx); (site, dst_port, Switch.Tx) ]
  | `Cross (remote, remote_dst) ->
    [
      (site, src_port, Switch.Rx);
      (site, random_uplink t ~site, Switch.Tx);
      (remote, random_uplink t ~site:remote, Switch.Rx);
      (remote, remote_dst, Switch.Tx);
    ]

let plan_reverse plan =
  List.map
    (fun (site, port, dir) ->
      (site, port, match dir with Switch.Rx -> Switch.Tx | Switch.Tx -> Switch.Rx))
    plan

let sites_of_plan plan =
  List.sort_uniq compare (List.map (fun (site, _, _) -> site) plan)

let spawn_flow t (p : Workload.profile) =
  let engine = Fablib.engine t.fabric in
  let now = Simcore.Engine.now engine in
  let rng = t.rng in
  let site = p.Workload.site_name in
  (* Character of this flow. *)
  let byte_rate = Dist.sample p.Workload.flow_byte_rate rng in
  let is_elephant = byte_rate >= 2e9 in
  let is_swarm =
    (not is_elephant)
    && p.Workload.site_class = Workload.App_rich
    && Rng.bernoulli rng 0.12
  in
  let subflows =
    if is_swarm then Rng.int_in rng 200 5000
    else if is_elephant then 1
    else
      (* Many experiments open parallel connections (iperf -P, storage
         clients, scan tools). *)
      Rng.weighted rng
        [ (0.60, 1); (0.25, 1 + Rng.int rng 16); (0.15, 16 + Rng.int rng 112) ]
  in
  let byte_rate = if is_swarm then byte_rate *. 5.0 else byte_rate in
  let duration = Float.max 1.0 (Dist.sample p.Workload.flow_duration rng) in
  let service =
    (* Line-rate bulk transfers are overwhelmingly TCP throughput tests. *)
    if is_elephant && Rng.bernoulli rng 0.85 then
      Option.get (Dissect.Services.by_name "iperf3")
    else pick_service t rng p
  in
  let params =
    {
      Stack_builder.vlan_id = 100 + Rng.int rng 3900;
      mpls_labels =
        List.init p.Workload.mpls_labels (fun _ -> 16 + Rng.int rng 1_000_000);
      use_pseudowire = Rng.bernoulli rng p.Workload.pseudowire_fraction;
      use_vxlan = (not is_elephant) && Rng.bernoulli rng p.Workload.vxlan_fraction;
      (* Bulk line-rate transfers are mostly IPv4; a small share of
         bulk tests exercises IPv6 paths. *)
      use_ipv6 =
        (if is_elephant then Rng.bernoulli rng 0.04
         else Rng.bernoulli rng p.Workload.ipv6_fraction);
      service;
    }
  in
  let template = Stack_builder.forward rng params in
  let frame_size =
    if is_elephant then elephant_frame_sizes else p.Workload.data_frame_size
  in
  let avg_frame_size = Option.value ~default:800.0 (Dist.mean frame_size) in
  (* Placement. *)
  let src_port = random_downlink t ~site in
  let destination =
    if Rng.bernoulli rng p.Workload.cross_site_fraction then begin
      let remote = pick_other_site t ~not_site:site in
      `Cross (remote, random_downlink t ~site:remote)
    end
    else begin
      (* The cached Fablib-order downlink array, not a fresh Fablib
         call + list rebuild per spawned flow. *)
      let downlinks = (Hashtbl.find t.ports site).downlinks in
      let others =
        Array.of_seq (Seq.filter (fun port -> port <> src_port) (Array.to_seq downlinks))
      in
      if Array.length others = 0 then `Intra src_port
        (* single-downlink site: loop locally *)
      else `Intra (Rng.choice rng others)
    end
  in
  let fwd_plan = plan_forward t ~site ~src_port destination in
  (* Forward stream. *)
  let fwd_id = fresh_flow_id t in
  let fwd_spec =
    Flow_model.make ~flow_id:fwd_id ~template ~frame_size ~avg_frame_size
      ~byte_rate ~start_time:now ~duration ~subflows ()
  in
  Hashtbl.replace t.specs fwd_id fwd_spec;
  attach t fwd_plan ~flow:fwd_id ~byte_rate
    ~frame_rate:(Flow_model.frame_rate fwd_spec);
  (* Reverse ACK stream for TCP services. *)
  let rev_ids =
    if service.Dissect.Services.l4 = Dissect.Services.Tcp then begin
      let rev_id = fresh_flow_id t in
      let rev_template = Stack_builder.reverse template in
      let rev_rate = byte_rate *. p.Workload.ack_fraction in
      let rev_spec =
        Flow_model.make ~flow_id:rev_id ~template:rev_template
          ~frame_size:ack_frame_sizes ~avg_frame_size:70.0 ~byte_rate:rev_rate
          ~start_time:now ~duration ~subflows ()
      in
      Hashtbl.replace t.specs rev_id rev_spec;
      attach t (plan_reverse fwd_plan) ~flow:rev_id ~byte_rate:rev_rate
        ~frame_rate:(Flow_model.frame_rate rev_spec);
      [ rev_id ]
    end
    else []
  in
  t.spawned <- t.spawned + 1 + List.length rev_ids;
  let sites = sites_of_plan fwd_plan in
  Simcore.Engine.schedule engine ~delay:duration (fun _ ->
      detach t ~flow:fwd_id sites;
      List.iter (fun id -> detach t ~flow:id sites) rev_ids)

(* Thinned Poisson arrivals per site: draw at a fixed ceiling intensity
   and accept proportionally to the current activity. *)
let max_site_activity = 8.0

let rec schedule_next_arrival t (p : Workload.profile) =
  let engine = Fablib.engine t.fabric in
  let ceiling = p.Workload.base_flow_arrival *. max_site_activity in
  let dt = Rng.exponential t.rng ~mean:(1.0 /. ceiling) in
  Simcore.Engine.schedule engine ~delay:dt (fun engine ->
      if Simcore.Engine.now engine < t.until then begin
        let act = Workload.site_activity p ~seed:t.seed (Simcore.Engine.now engine) in
        if Rng.bernoulli t.rng (Float.min 1.0 (act /. max_site_activity)) then
          spawn_flow t p;
        schedule_next_arrival t p
      end)

let start t ~until =
  t.until <- until;
  Hashtbl.iter (fun _ p -> schedule_next_arrival t p) t.profiles
