(** Event-driven traffic generation on the simulated testbed.

    The driver owns the per-site workload profiles, creates flows as
    Poisson arrivals modulated by the seasonal activity curve, attaches
    their rates to the relevant switch ports (source-server Rx,
    destination-server Tx, and uplinks for cross-site flows), and
    detaches them when they end.

    Synthesis is organized around independent per-site generators: every
    random draw a site's flows need (arrival chain, thinning, flow
    character, port placement — including the remote ports of its
    cross-site flows) comes from that site's own SplitMix64 stream, and
    flow ids are striped ([site_index + k * n_sites]) instead of drawn
    from a shared counter.  Arrivals are presampled one slab of
    simulated time at a time, one pool task per site, then replayed as
    engine events; because no site's stream depends on any other's, the
    spawned flows and specs are bit-identical at any pool size and any
    slab length.

    Frames are never generated here — switches only carry rates.  When a
    capture runs, it reads the attachments of the mirrored port and asks
    {!resolver} for each flow's {!Flow_model.spec} to materialize frames
    for just that window. *)

type t

val create :
  ?pool:Parallel.Pool.t ->
  ?slab:float ->
  ?batch_events:bool ->
  Testbed.Fablib.t ->
  seed:int ->
  t
(** [create fabric ~seed] builds the per-site generators (profiles,
    port tables, cross-site weight tables) for every site of the
    fabric's model.  [pool] (default {!Parallel.Pool.sequential}) runs
    the per-site presampling; [slab] (default 900 simulated seconds)
    bounds how far ahead arrivals are materialized; [batch_events]
    (default [true]) replays each site-slab of presampled arrivals as
    one pre-sorted {!Simcore.Engine.schedule_batch} block — one shared
    callback over an index into the slab array — instead of one heap
    push and one closure per arrival.  None of the three affects the
    generated traffic (batched and per-event replay are bit-identical
    by the engine's sequence-number contract), only wall-clock and
    memory.  Raises [Invalid_argument] if [slab <= 0]. *)

val profiles : t -> Workload.profile list
val profile : t -> site:string -> Workload.profile

val start : t -> until:float -> unit
(** Begin flow arrivals at every site, running until the given absolute
    time: presamples the first slab immediately and schedules a refill
    at each slab boundary. *)

val resolver : t -> int -> Flow_model.spec option
(** Look up the spec of a currently attached flow handle. *)

val live_flow_count : t -> int

val spawned_flows : t -> int
(** Total flows created since the driver started (ACK streams count as
    their own flows). *)
