(** Event-driven traffic generation on the simulated testbed.

    The driver owns the per-site workload profiles, creates flows as
    Poisson arrivals modulated by the seasonal activity curve, attaches
    their rates to the relevant switch ports (source-server Rx,
    destination-server Tx, and uplinks for cross-site flows), and
    detaches them when they end.

    Frames are never generated here — switches only carry rates.  When a
    capture runs, it reads the attachments of the mirrored port and asks
    {!resolver} for each flow's {!Flow_model.spec} to materialize frames
    for just that window. *)

type t

val create : Testbed.Fablib.t -> seed:int -> t

val profiles : t -> Workload.profile list
val profile : t -> site:string -> Workload.profile

val start : t -> until:float -> unit
(** Begin flow arrivals at every site, running until the given absolute
    time. *)

val resolver : t -> int -> Flow_model.spec option
(** Look up the spec of a currently attached flow handle. *)

val live_flow_count : t -> int

val spawned_flows : t -> int
(** Total flows created since the driver started (ACK streams count as
    their own flows). *)
