(** Construction of FABRIC-style header stacks for generated flows.

    Every flow on FABRIC is wrapped in the provider's virtualization
    tags — a VLAN and one or two MPLS labels, sometimes a PseudoWire
    carrying an inner Ethernet — before the experiment's own IP traffic.
    This module builds the forward-direction template for a flow and
    derives the reverse (ACK-stream) template from it. *)

type flow_params = {
  vlan_id : int;
  mpls_labels : int list;
  use_pseudowire : bool;
  use_vxlan : bool;
  use_ipv6 : bool;
  service : Dissect.Services.service;
}

val forward : Netcore.Rng.t -> flow_params -> Packet.Headers.header list
(** Forward-direction template: provider tags, then the experiment's
    L3/L4 and (when the service has a recognizable wire syntax) its
    application header.  Always validates. *)

val reverse : Packet.Headers.header list -> Packet.Headers.header list
(** Swap endpoints at every layer and turn TCP into a pure-ACK stream;
    application headers are dropped (ACKs carry no payload). *)
