open Netcore
module H = Packet.Headers

type spec = {
  flow_id : int;
  template : H.header list;
  frame_size : Dist.t;
  avg_frame_size : float;
  byte_rate : float;
  start_time : float;
  duration : float;
  subflows : int;
}

let jumbo_mtu_wire = 9000

let make ~flow_id ~template ~frame_size ~avg_frame_size ~byte_rate ~start_time
    ~duration ?(subflows = 1) () =
  (match Packet.Frame.validate template with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Flow_model.make: bad template: " ^ msg));
  if avg_frame_size <= 0.0 then invalid_arg "Flow_model.make: avg_frame_size";
  if byte_rate < 0.0 then invalid_arg "Flow_model.make: negative byte_rate";
  if duration < 0.0 then invalid_arg "Flow_model.make: negative duration";
  if subflows < 1 then invalid_arg "Flow_model.make: subflows must be >= 1";
  { flow_id; template; frame_size; avg_frame_size; byte_rate; start_time; duration;
    subflows }

let frame_rate spec = spec.byte_rate /. spec.avg_frame_size
let end_time spec = spec.start_time +. spec.duration
let active_at spec t = t >= spec.start_time && t < end_time spec
let total_bytes spec = spec.byte_rate *. spec.duration

let header_total spec =
  List.fold_left (fun acc h -> acc + H.size h) 0 spec.template

(* Deterministic per-subflow variation: offset the innermost IP host
   bits and the L4 source port so each subflow is a distinct 5-tuple. *)
let subflow_mix flow_id k =
  let h = Int64.of_int ((flow_id * 1_000_003) + k) in
  let mixed =
    Int64.to_int
      (Int64.shift_right_logical
         (Int64.mul h 0x9E3779B97F4A7C15L)
         40)
  in
  mixed land 0xFFFFFF

(* Randomize per-frame mutable fields so materialized frames look like a
   real packet stream rather than copies of one packet.  [subflow] = 0
   keeps the template's own endpoints. *)
let instantiate spec ~payload_len ~frame_index ~subflow =
  let mix = if subflow = 0 then 0 else subflow_mix spec.flow_id subflow in
  (* Only the innermost IP/L4 headers vary; walk with a flag flipped at
     the last Ethernet so tunnel outer headers stay fixed. *)
  let last_eth_index =
    List.fold_left
      (fun (i, last) h ->
        match h with H.Ethernet _ -> (i + 1, i) | _ -> (i + 1, last))
      (0, -1) spec.template
    |> snd
  in
  let headers =
    List.mapi
      (fun i (h : H.header) : H.header ->
        let inner = i >= last_eth_index in
        match h with
        | H.Ipv4 ip when inner ->
          let vary addr =
            if mix = 0 then addr
            else
              Ipv4_addr.of_int32
                (Int32.logor
                   (Int32.logand (Ipv4_addr.to_int32 addr) 0xFFFF0000l)
                   (Int32.of_int (mix land 0xFFFF)))
          in
          H.Ipv4
            {
              ip with
              src = vary ip.src;
              ident = (ip.ident + frame_index) land 0xFFFF;
            }
        | H.Ipv4 ip -> H.Ipv4 { ip with ident = (ip.ident + frame_index) land 0xFFFF }
        | H.Tcp tcp when inner ->
          H.Tcp
            {
              tcp with
              src_port = (if mix = 0 then tcp.src_port else 20000 + (mix mod 40000));
              seq = Int32.add tcp.seq (Int32.of_int (frame_index * (payload_len + 1)));
            }
        | H.Udp udp when inner && mix <> 0 ->
          H.Udp { udp with src_port = 20000 + (mix mod 40000) }
        | h -> h)
      spec.template
  in
  Packet.Frame.make headers ~payload_len

let overlap spec ~start_time ~end_time:window_end =
  let t0 = Float.max start_time spec.start_time in
  let t1 = Float.min window_end (spec.start_time +. spec.duration) in
  if t1 > t0 then Some (t0, t1) else None

let expected_frames spec ~start_time ~end_time =
  match overlap spec ~start_time ~end_time with
  | None -> 0.0
  | Some (t0, t1) -> frame_rate spec *. (t1 -. t0)

let frames_in_window spec rng ~start_time ~end_time =
  match overlap spec ~start_time ~end_time with
  | None -> []
  | Some (t0, t1) ->
    let mean = frame_rate spec *. (t1 -. t0) in
    let count = Rng.poisson rng ~mean in
    let min_wire = max Packet.Frame.min_wire_size (header_total spec) in
    let times = Array.init count (fun _ -> t0 +. (Rng.float rng *. (t1 -. t0))) in
    Array.sort compare times;
    Array.to_list
      (Array.mapi
         (fun i ts ->
           let size = Dist.sample_int spec.frame_size rng in
           let size = min jumbo_mtu_wire (max min_wire size) in
           let payload_len = max 0 (size - header_total spec) in
           let subflow = if spec.subflows = 1 then 0 else Rng.int rng spec.subflows in
           (ts, instantiate spec ~payload_len ~frame_index:i ~subflow))
         times)
