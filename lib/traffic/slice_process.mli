(** The slice population process.

    Models researchers' slice creation on the testbed: Poisson arrivals
    whose intensity follows the seasonal {!Workload.activity} curve,
    heavy-tailed lifetimes (75% of slices last at most 24 hours), and a
    site-spread distribution where two-thirds of slices stay within a
    single site.  Reproduces the inputs behind the paper's Figs. 3-5. *)

type sample = {
  arrival : float;  (** absolute arrival time, seconds *)
  duration : float;  (** lifetime, seconds *)
  sites_used : int;  (** number of sites the slice spans *)
}

val generate : seed:int -> horizon:float -> sample list
(** All slices arriving in [0, horizon), in arrival order. *)

val spread_fractions : sample list -> max_sites:int -> float array
(** [spread_fractions samples ~max_sites].(k) is the fraction of slices
    using exactly [k+1] sites (the last entry aggregates [>= max_sites]). *)

val duration_cdf : sample list -> at_hours:float list -> (float * float) list
(** CDF of slice duration evaluated at the given hour marks. *)

val concurrency_series :
  sample list -> step:float -> horizon:float -> (float * int) array
(** Number of live slices sampled every [step] seconds. *)

val concurrency_stats : (float * int) array -> float * float * int
(** (mean, stddev, max) of a concurrency series. *)
