type labels = (string * string) list

(* Log2 bucket layout shared by every histogram: upper bounds 2^e for
   e in [min_exp, max_exp], plus a +Inf overflow slot.  Fixed bounds
   keep merges a plain element-wise sum. *)
let min_exp = -20 (* ~1e-6: microsecond latencies *)
let max_exp = 30 (* ~1e9: byte counts, queue depths *)
let bucket_count = max_exp - min_exp + 2 (* + overflow *)

let bound_of_index i =
  if i >= bucket_count - 1 then infinity else Float.pow 2.0 (float_of_int (min_exp + i))

(* Smallest i with v <= 2^(min_exp+i); non-positive values land in
   bucket 0.  frexp gives v = m * 2^e, m in [0.5, 1), so v <= 2^e with
   equality exactly when m = 0.5. *)
let bucket_index v =
  if v <= 0.0 || Float.is_nan v then 0
  else if v = infinity then bucket_count - 1
  else if Float.is_integer (Float.log2 v) then
    let e = int_of_float (Float.log2 v) in
    max 0 (min (bucket_count - 1) (e - min_exp))
  else begin
    let m, e = Float.frexp v in
    ignore m;
    max 0 (min (bucket_count - 1) (e - min_exp))
  end

type hist_state = {
  mutable hs_count : int;
  mutable hs_sum : float;
  hs_bins : int array; (* non-cumulative *)
}

type cell =
  | C_counter of float ref
  | C_gauge of float ref
  | C_hist of hist_state

type kind = K_counter | K_gauge | K_hist

type family = {
  f_help : string;
  f_kind : kind;
  f_cells : (labels, cell) Hashtbl.t;
}

type t = { lock : Mutex.t; families : (string, family) Hashtbl.t }

type counter = { c_lock : Mutex.t; c_cell : float ref }
type gauge = { g_lock : Mutex.t; g_cell : float ref }
type histogram = { h_lock : Mutex.t; h_cell : hist_state }

let create () = { lock = Mutex.create (); families = Hashtbl.create 64 }
let default = create ()

let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let canon labels = List.sort compare labels

let kind_name = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_hist -> "histogram"

let new_cell = function
  | K_counter -> C_counter (ref 0.0)
  | K_gauge -> C_gauge (ref 0.0)
  | K_hist ->
    C_hist { hs_count = 0; hs_sum = 0.0; hs_bins = Array.make bucket_count 0 }

(* Registration takes the registry lock; updates take only the (shared)
   per-registry cell lock embedded in the handle.  One lock for all
   cells of a registry is enough: every instrumented update is batched
   (per range, per sample, per occasion), never per packet. *)
let register t ~help ~labels name kind =
  let labels = canon labels in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let fam =
        match Hashtbl.find_opt t.families name with
        | Some f ->
          if f.f_kind <> kind then
            invalid_arg
              (Printf.sprintf "Obs.Registry: %s already registered as a %s" name
                 (kind_name f.f_kind));
          f
        | None ->
          let f = { f_help = help; f_kind = kind; f_cells = Hashtbl.create 8 } in
          Hashtbl.add t.families name f;
          f
      in
      match Hashtbl.find_opt fam.f_cells labels with
      | Some c -> c
      | None ->
        let c = new_cell kind in
        Hashtbl.add fam.f_cells labels c;
        c)

let counter t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name K_counter with
  | C_counter r -> { c_lock = t.lock; c_cell = r }
  | _ -> assert false

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name K_gauge with
  | C_gauge r -> { g_lock = t.lock; g_cell = r }
  | _ -> assert false

let histogram t ?(help = "") ?(labels = []) name =
  match register t ~help ~labels name K_hist with
  | C_hist h -> { h_lock = t.lock; h_cell = h }
  | _ -> assert false

let inc c by =
  if by < 0.0 then invalid_arg "Obs.Registry.inc: negative increment";
  if Atomic.get enabled_flag then begin
    Mutex.lock c.c_lock;
    c.c_cell := !(c.c_cell) +. by;
    Mutex.unlock c.c_lock
  end

let incr c = inc c 1.0

let set g v =
  if Atomic.get enabled_flag then begin
    Mutex.lock g.g_lock;
    g.g_cell := v;
    Mutex.unlock g.g_lock
  end

let add g v =
  if Atomic.get enabled_flag then begin
    Mutex.lock g.g_lock;
    g.g_cell := !(g.g_cell) +. v;
    Mutex.unlock g.g_lock
  end

let observe h v =
  if Atomic.get enabled_flag then begin
    Mutex.lock h.h_lock;
    let s = h.h_cell in
    s.hs_count <- s.hs_count + 1;
    s.hs_sum <- s.hs_sum +. v;
    let i = bucket_index v in
    s.hs_bins.(i) <- s.hs_bins.(i) + 1;
    Mutex.unlock h.h_lock
  end

(* --- snapshots --- *)

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) list;
}

type value =
  | Counter of float
  | Gauge of float
  | Histogram of hist_snapshot

type sample = {
  s_name : string;
  s_labels : labels;
  s_help : string;
  s_value : value;
}

let hist_snapshot_of (s : hist_state) =
  let buckets = ref [] in
  let cum = ref 0 in
  for i = 0 to bucket_count - 1 do
    if s.hs_bins.(i) > 0 then begin
      cum := !cum + s.hs_bins.(i);
      buckets := (bound_of_index i, !cum) :: !buckets
    end
  done;
  let buckets =
    match !buckets with
    | (b, _) :: _ when b = infinity -> List.rev !buckets
    | l -> List.rev ((infinity, !cum) :: l)
  in
  { h_count = s.hs_count; h_sum = s.hs_sum; h_buckets = buckets }

let value_of_cell = function
  | C_counter r -> Counter !r
  | C_gauge r -> Gauge !r
  | C_hist h -> Histogram (hist_snapshot_of h)

let snapshot t =
  Mutex.lock t.lock;
  let samples =
    Hashtbl.fold
      (fun name fam acc ->
        Hashtbl.fold
          (fun labels cell acc ->
            {
              s_name = name;
              s_labels = labels;
              s_help = fam.f_help;
              s_value = value_of_cell cell;
            }
            :: acc)
          fam.f_cells acc)
      t.families []
  in
  Mutex.unlock t.lock;
  List.sort
    (fun a b ->
      match compare a.s_name b.s_name with
      | 0 -> compare a.s_labels b.s_labels
      | c -> c)
    samples

let value t ?(labels = []) name =
  let labels = canon labels in
  Mutex.lock t.lock;
  let v =
    match Hashtbl.find_opt t.families name with
    | None -> None
    | Some fam ->
      Option.map value_of_cell (Hashtbl.find_opt fam.f_cells labels)
  in
  Mutex.unlock t.lock;
  v

let reset t =
  Mutex.lock t.lock;
  Hashtbl.reset t.families;
  Mutex.unlock t.lock

let merge_into ~dst src =
  (* Snapshot the source first so the two locks are never held
     together. *)
  let samples = snapshot src in
  List.iter
    (fun s ->
      match s.s_value with
      | Counter v ->
        let c = counter dst ~help:s.s_help ~labels:s.s_labels s.s_name in
        Mutex.lock c.c_lock;
        c.c_cell := !(c.c_cell) +. v;
        Mutex.unlock c.c_lock
      | Gauge v ->
        let g = gauge dst ~help:s.s_help ~labels:s.s_labels s.s_name in
        Mutex.lock g.g_lock;
        g.g_cell := v;
        Mutex.unlock g.g_lock
      | Histogram hv ->
        let h = histogram dst ~help:s.s_help ~labels:s.s_labels s.s_name in
        Mutex.lock h.h_lock;
        let st = h.h_cell in
        st.hs_count <- st.hs_count + hv.h_count;
        st.hs_sum <- st.hs_sum +. hv.h_sum;
        let prev = ref 0 in
        List.iter
          (fun (bound, cum) ->
            let bin = cum - !prev in
            prev := cum;
            let i =
              if bound = infinity then bucket_count - 1
              else bucket_index bound
            in
            st.hs_bins.(i) <- st.hs_bins.(i) + bin)
          hv.h_buckets;
        Mutex.unlock h.h_lock)
    samples
