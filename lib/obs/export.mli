(** Exposition formats for {!Registry} snapshots and {!Span} trees.

    Two exporters (Prometheus text, JSON) plus the matching parsers used
    by the round-trip tests, the CI smoke check and
    [patchwork_cli report --in]. *)

(** Minimal JSON: writer + recursive-descent parser (no external
    dependencies). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact; strings escaped; integral numbers printed without an
      exponent, non-finite numbers as strings. *)

  val parse : string -> (t, string) result
  val member : string -> t -> t option
  val to_float : t -> float option
  val to_str : t -> string option
end

val flatten : Registry.sample list -> (string * Registry.labels * float) list
(** The exposition data lines of a snapshot: counters and gauges as-is;
    each histogram expands to [name_bucket{le=...}] (cumulative),
    [name_sum] and [name_count].  Order matches {!to_prometheus}. *)

val to_prometheus : Registry.sample list -> string
(** Prometheus text exposition (HELP/TYPE comments plus {!flatten}'s
    data lines). *)

val parse_prometheus :
  string -> ((string * Registry.labels * float) list, string) result
(** Parse exposition text back into data lines; inverse of
    {!to_prometheus} up to float formatting (17 significant digits, so
    values round-trip exactly). *)

val json_of_snapshot : ?spans:Span.span list -> Registry.sample list -> Json.t
(** [{ "metrics": [...], "spans": [...] }]; spans nest recursively with
    wall seconds, minor words and notes. *)

val to_json_string : ?spans:Span.span list -> Registry.sample list -> string

val to_trace_events : ?process_name:string -> Span.span list -> Json.t
(** The span trees in Chrome [trace_event] JSON-object format (one
    balanced ["B"]/["E"] duration pair per span, timestamps in
    microseconds, notes and sampling aggregates under ["args"]) plus a
    process-name metadata event — loadable directly in Perfetto or
    [chrome://tracing]. *)

val trace_events_string : ?process_name:string -> Span.span list -> string
