(** Metrics registry: labelled counters, gauges and log-bucketed
    histograms.

    Cells are individually locked, so any domain of a [Parallel.Pool]
    may update them concurrently; totals are sums and bucket counts, so
    a snapshot taken after a parallel phase is independent of the pool
    size (histogram sums are additionally bit-exact whenever the
    observed values are integers below 2{^53}, the same exact-integer
    discipline as [Analysis.Flows]).

    A process-wide {!default} registry serves the instrumented layers
    (pool, coordinator, capture, digest); isolated registries from
    {!create} serve tests.  The global {!set_enabled} switch turns every
    update into a no-op, which is how the decode bench measures the
    instrumentation overhead. *)

type t

type labels = (string * string) list
(** Label pairs; canonicalized (sorted by key) on registration. *)

type counter
type gauge
type histogram

val create : unit -> t

val default : t
(** The process-wide registry the instrumented layers write into. *)

val set_enabled : bool -> unit
(** Globally enable/disable metric updates (and span recording).
    Enabled by default. *)

val enabled : unit -> bool

val counter : t -> ?help:string -> ?labels:labels -> string -> counter
(** Register (or fetch) the counter cell [name]/[labels].
    @raise Invalid_argument if [name] exists with a different kind. *)

val gauge : t -> ?help:string -> ?labels:labels -> string -> gauge
val histogram : t -> ?help:string -> ?labels:labels -> string -> histogram

val inc : counter -> float -> unit
(** Add to a counter; negative increments raise [Invalid_argument]. *)

val incr : counter -> unit
(** [inc c 1.0]. *)

val set : gauge -> float -> unit
val add : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Record a value into the log{_2}-bucketed histogram (plus running
    count and sum). *)

(** {1 Snapshots} *)

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) list;
      (** (upper bound, cumulative count) pairs, ending with
          [(infinity, h_count)]; only buckets whose cumulative count
          changed from the previous bound are listed, plus the +Inf
          bucket. *)
}

type value =
  | Counter of float
  | Gauge of float
  | Histogram of hist_snapshot

type sample = {
  s_name : string;
  s_labels : labels;
  s_help : string;
  s_value : value;
}

val snapshot : t -> sample list
(** Deterministic order: by name, then labels. *)

val value : t -> ?labels:labels -> string -> value option
(** Read one cell's current value. *)

val reset : t -> unit
(** Drop every family and cell (for tests). *)

val merge_into : dst:t -> t -> unit
(** Fold a registry into [dst]: counters and histograms add, gauges take
    the source value.  Deterministic given deterministic inputs. *)
