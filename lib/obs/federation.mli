(** Federated scrape plane: pull per-site /metrics endpoints together.

    The paper's testbed is federated — capture runs at many sites and
    the operator needs one pane of glass.  A {!t} holds scrape targets;
    each {!scrape} round GETs every target's Prometheus text, rewrites
    samples with a ["site"] label and mirrors them as gauges into the
    federation's own registry, over which a dedicated collector derives
    site-scoped trend series.  Staleness is first-class: every round
    sets [up{site}] and [scrape_duration_seconds{site}] and pushes
    [scrape_age_seconds{site}].  A dead target is logged and skipped,
    never blocking the other sites.

    The federation keeps its own registry/collector rather than writing
    into [Registry.default]: scraped values are foreign cumulative
    counters (settable only as gauges), and delta baselines are
    per-registry, so mixing planes would corrupt the local series. *)

type target = {
  site : string;
  host : string;
  port : int;
  path : string;
}

val target : ?host:string -> ?path:string -> site:string -> port:int -> unit -> target
(** Defaults: host [127.0.0.1], path [/metrics]. *)

val target_of_string : string -> (target, string) result
(** Parse ["SITE=HOST:PORT[/path]"] or ["SITE=PORT"] (host defaults to
    loopback, path to [/metrics]).  The host must be a literal IP
    address — the scrape client does no name resolution. *)

val target_to_string : target -> string

type t

val create :
  ?capacity:int -> ?timeout_s:float -> ?log:(string -> unit) -> target list -> t
(** [capacity] is the per-series window of the federation's collector
    (default 512); [timeout_s] bounds each scrape (default 2s). *)

val targets : t -> target list

val registry : t -> Registry.t
(** The federation's own registry of site-labelled scraped gauges. *)

val collector : t -> Series.Collector.t

val rounds : t -> int

val scrape :
  t -> at:float -> (string * Registry.labels * Series.point) list
(** One scrape round over every target; returns every point this round
    pushed — derived site-scoped series plus the [up]/
    [scrape_age_seconds] staleness series — for persistence. *)
