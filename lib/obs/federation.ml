(* Federated scrape plane: pull per-site /metrics endpoints together.

   The paper's testbed is federated — capture runs at many sites and
   the operator needs one pane of glass.  A [t] holds a list of scrape
   targets (site name + exposition address); each [scrape] round GETs
   every target's Prometheus text, parses it with the round-trip parser
   from [Export], rewrites every sample with a ["site"] label (only
   when the exporting site did not already label it), and mirrors the
   values into the federation's own registry as gauges.  A dedicated
   [Series.Collector] then derives trends over that registry, so the
   central aggregator gets [site_drop_rate{site}] and friends computed
   federation-wide from the same delta logic the local service uses.

   Staleness is first-class: every round sets [up{site}] (1 scraped
   ok / 0 refused, timed out, non-200 or unparseable) and
   [scrape_duration_seconds{site}] gauges, and pushes a
   [scrape_age_seconds{site}] series (time since the target last
   answered).  A dead target is logged and skipped — it never blocks
   the other sites, and its [up] gauge is the alerting hook
   (["up < 1 for 2"]).

   The federation keeps its own registry and collector rather than
   writing into [Registry.default]: scraped values are foreign
   cumulative counters (settable only as gauges), and a collector's
   delta baseline is per-registry, so mixing both planes in one
   registry would corrupt the local service's own series. *)

type target = {
  site : string;
  host : string;
  port : int;
  path : string;
}

let target ?(host = "127.0.0.1") ?(path = "/metrics") ~site ~port () =
  { site; host; port; path }

(* "SITE=HOST:PORT[/path]" or "SITE=PORT" (host defaults to loopback,
   path to /metrics).  The host must be a literal IP address — the
   scrape client does no name resolution. *)
let target_of_string s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad scrape target %S (expected SITE=HOST:PORT)" s)
  | Some eq -> (
    let site = String.sub s 0 eq in
    let addr = String.sub s (eq + 1) (String.length s - eq - 1) in
    if site = "" then Error (Printf.sprintf "bad scrape target %S (empty site)" s)
    else
      let addr, path =
        match String.index_opt addr '/' with
        | None -> (addr, "/metrics")
        | Some sl ->
          ( String.sub addr 0 sl,
            String.sub addr sl (String.length addr - sl) )
      in
      let host, port_s =
        match String.rindex_opt addr ':' with
        | None -> ("127.0.0.1", addr)
        | Some c ->
          ( String.sub addr 0 c,
            String.sub addr (c + 1) (String.length addr - c - 1) )
      in
      match int_of_string_opt port_s with
      | Some port when port > 0 && port < 65536 ->
        Ok { site; host; port; path }
      | _ -> Error (Printf.sprintf "bad scrape target %S (bad port %S)" s port_s))

let target_to_string t = Printf.sprintf "%s=%s:%d%s" t.site t.host t.port t.path

type t = {
  targets : target list;
  timeout_s : float;
  log : string -> unit;
  registry : Registry.t; (* scraped samples, site-labelled, as gauges *)
  collector : Series.Collector.t;
  lock : Mutex.t;
  last_ok : (string, float) Hashtbl.t; (* site -> at of last good scrape *)
  mutable rounds : int;
}

let create ?(capacity = 512) ?(timeout_s = 2.0) ?(log = fun _ -> ()) targets =
  {
    targets;
    timeout_s;
    log;
    registry = Registry.create ();
    collector = Series.Collector.create ~capacity ();
    lock = Mutex.create ();
    last_ok = Hashtbl.create 8;
    rounds = 0;
  }

let targets t = t.targets
let registry t = t.registry
let collector t = t.collector

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let rounds t = locked t (fun () -> t.rounds)

let site_label tgt labels =
  if List.mem_assoc "site" labels then labels
  else ("site", tgt.site) :: labels

(* Mirror one scraped data line into the federation registry.  Foreign
   counters cannot be written as counters (a registry counter only
   increments), so everything lands as a gauge carrying the scraped
   cumulative value; the collector's delta logic treats both alike. *)
let ingest t tgt (name, labels, value) =
  let labels = site_label tgt labels in
  Registry.set
    (Registry.gauge t.registry name ~labels
       ~help:"federated sample (scraped, site-labelled)")
    value

let up_gauge t site =
  Registry.gauge t.registry "up" ~labels:[ ("site", site) ]
    ~help:"1 while the site's exposition endpoint answers scrapes"

let duration_gauge t site =
  Registry.gauge t.registry "scrape_duration_seconds"
    ~labels:[ ("site", site) ]
    ~help:"Wall seconds the site's last scrape took"

let scrape_one t tgt =
  let t0 = Clock.now () in
  let outcome =
    match
      Http.get ~host:tgt.host ~timeout_s:t.timeout_s ~port:tgt.port tgt.path
    with
    | Ok (200, body) -> (
      match Export.parse_prometheus body with
      | Ok samples -> Ok samples
      | Error why -> Error (Printf.sprintf "unparseable exposition: %s" why))
    | Ok (status, _) -> Error (Printf.sprintf "HTTP %d" status)
    | Error why -> Error why
  in
  let dur = Clock.now () -. t0 in
  Registry.set (duration_gauge t tgt.site) dur;
  (match outcome with
  | Ok samples ->
    List.iter (ingest t tgt) samples;
    Registry.set (up_gauge t tgt.site) 1.0
  | Error why ->
    Registry.set (up_gauge t tgt.site) 0.0;
    t.log
      (Printf.sprintf "scrape %s (%s:%d%s) failed: %s" tgt.site tgt.host
         tgt.port tgt.path why));
  Result.is_ok outcome

(* One scrape round: pull every target (a refused or timed-out site is
   marked down and skipped, never blocking the rest), then run the
   collector over the refreshed registry.  Returns every point this
   round pushed — staleness series included — for persistence. *)
let scrape t ~at =
  Span.timed ~stage:"federation.scrape" @@ fun () ->
  let oks = List.map (fun tgt -> (tgt, scrape_one t tgt)) t.targets in
  locked t (fun () ->
      t.rounds <- t.rounds + 1;
      List.iter
        (fun (tgt, ok) -> if ok then Hashtbl.replace t.last_ok tgt.site at)
        oks);
  (* The collector's aggregate derivations (captured_bytes_per_s,
     pool_busy_fraction, ...) find no unlabelled backing sample in the
     federation registry — everything here is site-labelled — and come
     out as unlabelled zeros.  Those would shadow the local service's
     own aggregates at the same timestamp, so only site-scoped series
     leave the federation plane. *)
  let derived =
    List.filter
      (fun (_, labels, _) -> List.mem_assoc "site" labels)
      (Series.Collector.collect_points t.collector ~at t.registry)
  in
  (* Staleness and liveness as series, one point per round per site. *)
  let direct =
    List.concat_map
      (fun (tgt, ok) ->
        let labels = [ ("site", tgt.site) ] in
        let up_p = (("up" : string), labels, { Series.at; value = (if ok then 1.0 else 0.0) }) in
        Series.Collector.push_point t.collector ~name:"up" ~labels ~at
          (if ok then 1.0 else 0.0);
        match locked t (fun () -> Hashtbl.find_opt t.last_ok tgt.site) with
        | None -> [ up_p ] (* never answered: age is undefined *)
        | Some last ->
          let age = at -. last in
          Series.Collector.push_point t.collector ~name:"scrape_age_seconds"
            ~labels ~at age;
          [ up_p; ("scrape_age_seconds", labels, { Series.at; value = age }) ])
      oks
  in
  derived @ direct
