(** A minimal HTTP/1.1 exposition server (and scrape client) on bare
    [Unix] — no external dependencies.

    Built for the weekly service's monitoring endpoints: GET/HEAD only,
    one request per connection ([Connection: close]), bounded request
    parsing (oversized request heads are answered with 431), and a
    self-pipe so {!stop} wakes the accept loop from any domain for a
    graceful shutdown.  {!run} is a blocking loop: callers put it on a
    background domain (see [Parallel.Background]) and keep serving
    while occasions run.

    Handlers execute on the server's domain, so anything they touch
    must be thread-safe — which {!Registry}, {!Series} and {!Alerts}
    are by construction. *)

type request = {
  meth : string;  (** uppercased, e.g. ["GET"] *)
  path : string;  (** target without the query string *)
  query : (string * string) list;  (** decoded [?k=v&...] pairs *)
  headers : (string * string) list;  (** keys lowercased *)
}

type response = { status : int; content_type : string; body : string }

val response : ?status:int -> ?content_type:string -> string -> response
(** Defaults: 200, [text/plain; charset=utf-8]. *)

val reason_phrase : int -> string

val parse_request : string -> (request, int) result
(** Parse a request head (through the blank line; any body is ignored).
    [Error status] is the HTTP status to answer with (400). Pure — unit
    tested without sockets. *)

val query_param : request -> string -> string option
(** First value of the named query parameter, if present. *)

val float_param : request -> string -> (float option, string) result
(** [Ok None] when absent, [Ok (Some v)] when a finite number, and
    [Error why] on malformed input — which handlers answer with 400. *)

val int_param : request -> string -> (int option, string) result

val routes : (string * (request -> response)) list -> request -> response
(** Exact-path router: unknown paths get 404, methods other than
    GET/HEAD get 405.  (HEAD responses are truncated at write time, so
    route handlers never special-case it.) *)

type server

val create :
  ?max_request_bytes:int -> ?backlog:int -> port:int -> (request -> response) -> server
(** Bind [127.0.0.1:port] ([SO_REUSEADDR]; [port = 0] picks an
    ephemeral port) and listen.  [max_request_bytes] (default 8192)
    bounds the request head; longer requests are answered with 431.
    Also ignores [SIGPIPE] process-wide (non-Windows) so a scrape
    client disconnecting mid-response surfaces as [EPIPE] on the
    connection instead of killing the service.  Raises
    [Unix.Unix_error] if the bind fails. *)

val port : server -> int
(** The actually-bound port (useful with [port = 0]). *)

val run : server -> unit
(** Serve until {!stop}; blocking.  Per-connection failures are
    swallowed (the client just sees a closed socket). *)

val stop : server -> unit
(** Request shutdown and wake the accept loop; idempotent and safe from
    any domain.  Once {!run} returns, every socket is closed. *)

val get :
  ?host:string -> ?timeout_s:float -> port:int -> string -> (int * string, string) result
(** One-shot [GET path] against [host] (default [127.0.0.1]); returns
    (status, body).  The scrape client behind [report --live] and the
    socket smoke tests. *)
