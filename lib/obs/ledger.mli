(** Capture-loss attribution ledger.

    Per-site × per-occasion accounting of every frame and byte the
    capture path failed to store, attributed to exactly one cause, with
    the conservation invariant

    {v offered = stored + Σ attributed v}

    (frames and bytes independently) checked when the occasion closes.
    A violation bumps [ledger_conservation_violations_total], is
    reported through the close log hook, and raises
    {!Conservation_violation} under {!set_strict} — the test suite runs
    strict so an attribution leak hard-fails.

    Each (site, cause) cell keeps a deterministic reservoir of up to K
    exemplar flow keys for drill-down into [Analysis.Flow_store]: every
    candidate key gets a SplitMix64-mixed priority seeded from
    site + occasion start, and the cell retains the K unsigned-smallest.
    The selection is a pure function of the candidate key {e set}, so
    pool size, shard interleaving and insertion order cannot change the
    exemplars. *)

type host_path = Kernel | Dpdk | Fpga

type cause =
  | Mirror_congestion  (** switch mirror egress over line rate *)
  | Mirror_revoked  (** scheduler revoked the grant mid-flush *)
  | Switch_drop  (** uncongested mirror-port loss *)
  | Host_drop of host_path  (** capture host could not keep up *)
  | Page_cache_throttle  (** writeback throttling cut the keep rate *)
  | Truncated  (** bytes beyond the snap length (bytes-only cause) *)

val all_causes : cause list
(** Every cause, host paths expanded; fixed order used by reports. *)

val cause_label : cause -> string
(** Stable label ([mirror_congestion], [host_drop_kernel], ...) used in
    registry label values, series and JSON. *)

val cause_of_label : string -> cause option

val tolerance : float
(** Relative conservation tolerance ([1e-6], against
    [max 1.0 offered]). *)

(** {1 Process-wide switches} *)

val enabled : unit -> bool
(** Ledger recording switch (default on); the capture-path call sites
    check it so a disabled ledger costs nothing. *)

val set_enabled : bool -> unit

val strict : unit -> bool
(** When strict (default off), a conservation violation at
    {!close_occasion} raises {!Conservation_violation}.  The test runner
    turns this on. *)

val set_strict : bool -> unit

exception Conservation_violation of string

(** {1 Ledger} *)

type t

val create : ?exemplars:int -> ?history:int -> unit -> t
(** [exemplars] is K, the per-cell exemplar reservoir size (default 5);
    [history] bounds retained closed occasions (default 64, oldest
    evicted).  Raises [Invalid_argument] when either is [< 1]. *)

val default : t
(** The process-wide ledger the capture path writes into. *)

val exemplar_count : t -> int

val begin_occasion : t -> at:float -> unit
(** Reset the in-flight accumulation and seed exemplar priorities from
    [at] (the occasion's start on the simulated axis). *)

val record_sample :
  t ->
  site:string ->
  offered_frames:float ->
  offered_bytes:float ->
  stored_frames:float ->
  stored_bytes:float ->
  ?keys:string list ->
  (cause * float * float) list ->
  unit
(** Fold one capture sample into the in-flight occasion: offered/stored
    totals plus per-cause [(cause, frames, bytes)] losses.  Zero-amount
    causes are skipped; [keys] are exemplar candidates offered to every
    cell the sample touches. *)

val attribute_lost :
  t ->
  site:string ->
  cause:cause ->
  ?keys:string list ->
  frames:float ->
  bytes:float ->
  unit ->
  unit
(** Loss that bypassed the sampled capture path (e.g. a revoked mirror's
    egress flush): adds to {e both} the site's offered totals and the
    cause cell, so the invariant stays balanced by construction. *)

(** {1 Closing and reading} *)

type site_entry = {
  e_site : string;
  e_offered_frames : float;
  e_offered_bytes : float;
  e_stored_frames : float;
  e_stored_bytes : float;
  e_causes : (cause * float * float * string list) list;
      (** (cause, frames, bytes, exemplar keys); only touched cells,
          in {!all_causes} order. *)
  e_frames_residual : float;  (** offered - stored - Σ attributed *)
  e_bytes_residual : float;
  e_conserved : bool;
}

type occasion_entry = {
  o_seq : int;  (** 0-based close sequence number *)
  o_start : float;
  o_sites : site_entry list;  (** sorted by site name *)
}

val close_occasion : ?log:(string -> unit) -> t -> occasion_entry
(** Seal the in-flight occasion: check conservation per site, emit the
    cumulative [ledger_*_total] counters into [Registry.default], append
    the entry to the bounded history, and clear the accumulation.  Each
    violating site is logged through [log] and counted; under strict
    mode the first violation raises {!Conservation_violation} (after
    counters and history are written). *)

val history : t -> occasion_entry list
(** Retained closed occasions, oldest first. *)

val last : t -> occasion_entry option

val reset : t -> unit
(** Drop history, in-flight state and the sequence counter (tests). *)

val to_json : ?site:string -> ?occasion:int -> t -> Export.Json.t
(** The [/lossmap.json] payload over {!history}: [{ "tolerance",
    "occasions": [{ "seq", "start", "sites": [...] }] }], optionally
    filtered to one site and/or one occasion sequence number. *)

(** {1 Deterministic exemplar primitives} (exposed for property tests) *)

val mix64 : int64 -> int64
(** SplitMix64 finalizer. *)

val fnv64 : string -> int64
(** FNV-1a 64-bit string hash. *)

val seed_for : site:string -> at:float -> int64
val priority : seed:int64 -> string -> int64
