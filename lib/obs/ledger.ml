(* Capture-loss attribution ledger: per-site × per-occasion accounting
   of every frame and byte the capture path failed to store.

   The paper's central question is completeness — why stored traffic
   diverges from offered traffic — so the ledger enforces it as an
   invariant: per site, per occasion,

     offered = stored + Σ attributed          (frames AND bytes)

   with every non-stored frame/byte attributed to exactly one cause.
   The capture path reports each sample's split ({!record_sample});
   losses that never entered a sample's offered count (a revoked mirror
   flushing its egress queue) go through {!attribute_lost}, which adds
   to both sides so the invariant is conservation-safe by construction.
   {!close_occasion} checks the residual against {!tolerance}; a
   violation bumps [ledger_conservation_violations_total], is logged as
   an error, and raises under {!set_strict} — the whole test suite runs
   strict, so any attribution path that leaks frames hard-fails.

   Each (site, cause) cell carries a deterministic reservoir of up to K
   exemplar flow keys for drill-down into the flow store.  Instead of
   sequential reservoir sampling (whose contents depend on insertion
   order, which a worker pool would perturb) each candidate key gets a
   SplitMix64-mixed priority from a seed derived from site + occasion
   start, and the cell keeps the K smallest priorities.  The selection
   is a pure function of the candidate key set, so pool size and shard
   interleaving cannot change the exemplars. *)

type host_path = Kernel | Dpdk | Fpga

type cause =
  | Mirror_congestion
  | Mirror_revoked
  | Switch_drop
  | Host_drop of host_path
  | Page_cache_throttle
  | Truncated

let all_causes =
  [
    Mirror_congestion;
    Mirror_revoked;
    Switch_drop;
    Host_drop Kernel;
    Host_drop Dpdk;
    Host_drop Fpga;
    Page_cache_throttle;
    Truncated;
  ]

let cause_label = function
  | Mirror_congestion -> "mirror_congestion"
  | Mirror_revoked -> "mirror_revoked"
  | Switch_drop -> "switch_drop"
  | Host_drop Kernel -> "host_drop_kernel"
  | Host_drop Dpdk -> "host_drop_dpdk"
  | Host_drop Fpga -> "host_drop_fpga"
  | Page_cache_throttle -> "page_cache_throttle"
  | Truncated -> "truncated"

let cause_of_label s =
  List.find_opt (fun c -> String.equal (cause_label c) s) all_causes

let tolerance = 1e-6

(* --- deterministic exemplar priorities ----------------------------- *)

(* SplitMix64 finalizer: a bijective avalanche mix. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let seed_for ~site ~at = mix64 (Int64.add (fnv64 site) (Int64.bits_of_float at))
let priority ~seed key = mix64 (Int64.add seed (fnv64 key))

(* --- accumulation state -------------------------------------------- *)

type cell = {
  mutable c_frames : float;
  mutable c_bytes : float;
  (* (priority, key), ascending by unsigned priority, length <= K. *)
  mutable c_exemplars : (int64 * string) list;
}

type acc = {
  a_seed : int64;
  mutable a_offered_frames : float;
  mutable a_offered_bytes : float;
  mutable a_stored_frames : float;
  mutable a_stored_bytes : float;
  a_cells : (cause, cell) Hashtbl.t;
}

type site_entry = {
  e_site : string;
  e_offered_frames : float;
  e_offered_bytes : float;
  e_stored_frames : float;
  e_stored_bytes : float;
  e_causes : (cause * float * float * string list) list;
      (* cause, frames, bytes, exemplar keys *)
  e_frames_residual : float;
  e_bytes_residual : float;
  e_conserved : bool;
}

type occasion_entry = {
  o_seq : int;
  o_start : float;
  o_sites : site_entry list; (* sorted by site name *)
}

type t = {
  l_lock : Mutex.t;
  l_exemplars : int;
  l_history_cap : int;
  l_current : (string, acc) Hashtbl.t;
  mutable l_start : float;
  mutable l_seq : int;
  mutable l_history : occasion_entry list; (* newest first, bounded *)
}

let create ?(exemplars = 5) ?(history = 64) () =
  if exemplars < 1 then invalid_arg "Obs.Ledger.create: exemplars must be >= 1";
  if history < 1 then invalid_arg "Obs.Ledger.create: history must be >= 1";
  {
    l_lock = Mutex.create ();
    l_exemplars = exemplars;
    l_history_cap = history;
    l_current = Hashtbl.create 8;
    l_start = 0.0;
    l_seq = 0;
    l_history = [];
  }

let default = create ()

let enabled_flag = Atomic.make true
let strict_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let strict () = Atomic.get strict_flag
let set_strict b = Atomic.set strict_flag b

exception Conservation_violation of string

let locked t f =
  Mutex.lock t.l_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.l_lock) f

let exemplar_count t = t.l_exemplars

(* --- registry surface ---------------------------------------------- *)

(* Fetched per use, not cached: a test's [Registry.reset] would strand
   a cached cell outside the registry. *)
let obs_violations () =
  Registry.counter Registry.default "ledger_conservation_violations_total"
    ~help:"Occasion closes whose loss attribution failed to reconcile"

let site_counter name site =
  Registry.counter Registry.default name ~labels:[ ("site", site) ]

let cause_counter name site cause =
  Registry.counter Registry.default name
    ~labels:[ ("site", site); ("cause", cause_label cause) ]

(* --- accumulation -------------------------------------------------- *)

let acc_for t site =
  match Hashtbl.find_opt t.l_current site with
  | Some a -> a
  | None ->
    let a =
      {
        a_seed = seed_for ~site ~at:t.l_start;
        a_offered_frames = 0.0;
        a_offered_bytes = 0.0;
        a_stored_frames = 0.0;
        a_stored_bytes = 0.0;
        a_cells = Hashtbl.create 8;
      }
    in
    Hashtbl.add t.l_current site a;
    a

let cell_for a cause =
  match Hashtbl.find_opt a.a_cells cause with
  | Some c -> c
  | None ->
    let c = { c_frames = 0.0; c_bytes = 0.0; c_exemplars = [] } in
    Hashtbl.add a.a_cells cause c;
    c

(* Keep the K unsigned-smallest priorities; distinct keys only.  Ties
   (astronomically unlikely, but determinism demands an answer) break
   toward the lexicographically smaller key.  Priorities are hashed once
   per ledger call and shared across cause cells; a full reservoir whose
   worst element already beats the candidate rejects it on a single
   comparison, which is the steady state on the capture hot path. *)
let insert_exemplar ~k cell (p, key) =
  if k > 0 then begin
    let exs = cell.c_exemplars in
    let full = List.length exs >= k in
    let beats_worst =
      (not full)
      ||
      match List.nth_opt exs (k - 1) with
      | None -> true
      | Some (q, kk) ->
        let c = Int64.unsigned_compare p q in
        c < 0 || (c = 0 && String.compare key kk < 0)
    in
    if
      beats_worst
      && not (List.exists (fun (_, kk) -> String.equal kk key) exs)
    then begin
      let before (q, kk) =
        let c = Int64.unsigned_compare p q in
        c < 0 || (c = 0 && String.compare key kk < 0)
      in
      let rec ins = function
        | [] -> [ (p, key) ]
        | e :: rest -> if before e then (p, key) :: e :: rest else e :: ins rest
      in
      let l = ins exs in
      cell.c_exemplars <-
        (if full then List.filteri (fun i _ -> i < k) l else l)
    end
  end

let add_to_cell t a cause ~frames ~bytes ~pkeys =
  if frames > 0.0 || bytes > 0.0 then begin
    let c = cell_for a cause in
    c.c_frames <- c.c_frames +. frames;
    c.c_bytes <- c.c_bytes +. bytes;
    List.iter (insert_exemplar ~k:t.l_exemplars c) pkeys
  end

let priorities ~seed keys =
  List.map (fun key -> (priority ~seed key, key)) keys

let begin_occasion t ~at =
  locked t @@ fun () ->
  Hashtbl.reset t.l_current;
  t.l_start <- at

let record_sample t ~site ~offered_frames ~offered_bytes ~stored_frames
    ~stored_bytes ?(keys = []) causes =
  locked t @@ fun () ->
  let a = acc_for t site in
  a.a_offered_frames <- a.a_offered_frames +. offered_frames;
  a.a_offered_bytes <- a.a_offered_bytes +. offered_bytes;
  a.a_stored_frames <- a.a_stored_frames +. stored_frames;
  a.a_stored_bytes <- a.a_stored_bytes +. stored_bytes;
  let pkeys = priorities ~seed:a.a_seed keys in
  List.iter
    (fun (cause, frames, bytes) -> add_to_cell t a cause ~frames ~bytes ~pkeys)
    causes

(* Loss that bypassed the sampled capture path entirely (a revoked
   mirror's egress flush): count it on both sides of the invariant. *)
let attribute_lost t ~site ~cause ?(keys = []) ~frames ~bytes () =
  locked t @@ fun () ->
  let a = acc_for t site in
  a.a_offered_frames <- a.a_offered_frames +. frames;
  a.a_offered_bytes <- a.a_offered_bytes +. bytes;
  add_to_cell t a cause ~frames ~bytes ~pkeys:(priorities ~seed:a.a_seed keys)

(* --- occasion close: conservation + counters ----------------------- *)

let close_site site (a : acc) =
  let causes =
    List.filter_map
      (fun cause ->
        match Hashtbl.find_opt a.a_cells cause with
        | None -> None
        | Some c ->
          Some (cause, c.c_frames, c.c_bytes, List.map snd c.c_exemplars))
      all_causes
  in
  let attr_frames =
    List.fold_left (fun s (_, f, _, _) -> s +. f) 0.0 causes
  in
  let attr_bytes = List.fold_left (fun s (_, _, b, _) -> s +. b) 0.0 causes in
  let fr = a.a_offered_frames -. a.a_stored_frames -. attr_frames in
  let br = a.a_offered_bytes -. a.a_stored_bytes -. attr_bytes in
  let ok_within residual offered =
    Float.abs residual <= tolerance *. Float.max 1.0 offered
  in
  {
    e_site = site;
    e_offered_frames = a.a_offered_frames;
    e_offered_bytes = a.a_offered_bytes;
    e_stored_frames = a.a_stored_frames;
    e_stored_bytes = a.a_stored_bytes;
    e_causes = causes;
    e_frames_residual = fr;
    e_bytes_residual = br;
    e_conserved =
      ok_within fr a.a_offered_frames && ok_within br a.a_offered_bytes;
  }

let emit_counters entry =
  if Registry.enabled () then
    List.iter
      (fun e ->
        let site = e.e_site in
        Registry.inc
          (site_counter "ledger_offered_frames_total" site)
          e.e_offered_frames;
        Registry.inc
          (site_counter "ledger_offered_bytes_total" site)
          e.e_offered_bytes;
        Registry.inc
          (site_counter "ledger_stored_frames_total" site)
          e.e_stored_frames;
        Registry.inc
          (site_counter "ledger_stored_bytes_total" site)
          e.e_stored_bytes;
        List.iter
          (fun (cause, frames, bytes, _) ->
            Registry.inc
              (cause_counter "ledger_attributed_frames_total" site cause)
              frames;
            Registry.inc
              (cause_counter "ledger_attributed_bytes_total" site cause)
              bytes)
          e.e_causes)
      entry.o_sites

let close_occasion ?(log = fun _ -> ()) t =
  let entry, violations =
    locked t @@ fun () ->
    let sites =
      Hashtbl.fold (fun site a acc -> close_site site a :: acc) t.l_current []
      |> List.sort (fun a b -> compare a.e_site b.e_site)
    in
    let entry = { o_seq = t.l_seq; o_start = t.l_start; o_sites = sites } in
    t.l_seq <- t.l_seq + 1;
    Hashtbl.reset t.l_current;
    t.l_history <-
      List.filteri (fun i _ -> i < t.l_history_cap) (entry :: t.l_history);
    let violations =
      List.filter_map
        (fun e ->
          if e.e_conserved then None
          else
            Some
              (Printf.sprintf
                 "ledger conservation violated: site %s occasion %d: offered \
                  %.3f frames / %.3f bytes, stored %.3f / %.3f, residual \
                  %.6f frames / %.6f bytes"
                 e.e_site entry.o_seq e.e_offered_frames e.e_offered_bytes
                 e.e_stored_frames e.e_stored_bytes e.e_frames_residual
                 e.e_bytes_residual))
        sites
    in
    (entry, violations)
  in
  emit_counters entry;
  List.iter
    (fun msg ->
      if Registry.enabled () then Registry.incr (obs_violations ());
      log msg)
    violations;
  (match violations with
  | msg :: _ when strict () -> raise (Conservation_violation msg)
  | _ -> ());
  entry

let history t = locked t (fun () -> List.rev t.l_history)
let last t = locked t (fun () -> match t.l_history with e :: _ -> Some e | [] -> None)

let reset t =
  locked t @@ fun () ->
  Hashtbl.reset t.l_current;
  t.l_start <- 0.0;
  t.l_seq <- 0;
  t.l_history <- []

(* --- JSON (the /lossmap.json payload) ------------------------------ *)

let site_json e =
  Export.Json.Obj
    [
      ("site", Export.Json.Str e.e_site);
      ( "offered",
        Export.Json.Obj
          [
            ("frames", Export.Json.Num e.e_offered_frames);
            ("bytes", Export.Json.Num e.e_offered_bytes);
          ] );
      ( "stored",
        Export.Json.Obj
          [
            ("frames", Export.Json.Num e.e_stored_frames);
            ("bytes", Export.Json.Num e.e_stored_bytes);
          ] );
      ( "residual",
        Export.Json.Obj
          [
            ("frames", Export.Json.Num e.e_frames_residual);
            ("bytes", Export.Json.Num e.e_bytes_residual);
          ] );
      ("conserved", Export.Json.Bool e.e_conserved);
      ( "causes",
        Export.Json.Arr
          (List.map
             (fun (cause, frames, bytes, exemplars) ->
               Export.Json.Obj
                 [
                   ("cause", Export.Json.Str (cause_label cause));
                   ("frames", Export.Json.Num frames);
                   ("bytes", Export.Json.Num bytes);
                   ( "exemplars",
                     Export.Json.Arr
                       (List.map (fun k -> Export.Json.Str k) exemplars) );
                 ])
             e.e_causes) );
    ]

let to_json ?site ?occasion t =
  let occasions =
    List.filter_map
      (fun o ->
        if match occasion with Some s -> s <> o.o_seq | None -> false then None
        else begin
          let sites =
            match site with
            | None -> o.o_sites
            | Some s ->
              List.filter (fun e -> String.equal e.e_site s) o.o_sites
          in
          if sites = [] && site <> None then None
          else
            Some
              (Export.Json.Obj
                 [
                   ("seq", Export.Json.Num (float_of_int o.o_seq));
                   ("start", Export.Json.Num o.o_start);
                   ("sites", Export.Json.Arr (List.map site_json sites));
                 ])
        end)
      (history t)
  in
  Export.Json.Obj
    [
      ("tolerance", Export.Json.Num tolerance);
      ("occasions", Export.Json.Arr occasions);
    ]
