type span = {
  sp_name : string;
  sp_t0 : float;
  sp_m0 : float;
  mutable sp_wall : float;
  mutable sp_minor : float;
  mutable sp_notes : (string * string) list; (* newest first *)
  mutable sp_children : span list; (* newest first *)
  sp_dummy : bool;
}

type t = {
  lock : Mutex.t;
  max_roots : int;
  mutable stack : span list; (* innermost open span first *)
  mutable roots : span list; (* finished roots, newest first *)
  mutable root_count : int;
  mutable dropped : int;
}

let create ?(max_roots = 1024) () =
  if max_roots < 1 then invalid_arg "Obs.Span.create: max_roots must be >= 1";
  {
    lock = Mutex.create ();
    max_roots;
    stack = [];
    roots = [];
    root_count = 0;
    dropped = 0;
  }

let default = create ()

let dummy =
  {
    sp_name = "";
    sp_t0 = 0.0;
    sp_m0 = 0.0;
    sp_wall = 0.0;
    sp_minor = 0.0;
    sp_notes = [];
    sp_children = [];
    sp_dummy = true;
  }

let start t ?parent name =
  if not (Registry.enabled ()) then dummy
  else begin
    let sp =
      {
        sp_name = name;
        sp_t0 = Clock.now ();
        sp_m0 = Gc.minor_words ();
        sp_wall = 0.0;
        sp_minor = 0.0;
        sp_notes = [];
        sp_children = [];
        sp_dummy = false;
      }
    in
    Mutex.lock t.lock;
    (match (parent, t.stack) with
    | Some p, _ when not p.sp_dummy -> p.sp_children <- sp :: p.sp_children
    | Some _, _ -> ()
    | None, p :: _ -> p.sp_children <- sp :: p.sp_children
    | None, [] -> ());
    t.stack <- sp :: t.stack;
    Mutex.unlock t.lock;
    sp
  end

let finish t sp =
  if not sp.sp_dummy then begin
    sp.sp_wall <- Clock.now () -. sp.sp_t0;
    sp.sp_minor <- Gc.minor_words () -. sp.sp_m0;
    Mutex.lock t.lock;
    let was_open = List.memq sp t.stack in
    (* Pop this span (and, defensively, anything opened after it that
       was never finished). *)
    let rec pop = function
      | [] -> []
      | x :: rest -> if x == sp then rest else pop rest
    in
    if was_open then t.stack <- pop t.stack;
    (* A span is a root if nothing remains open under it. *)
    if was_open && t.stack = [] then begin
      t.roots <- sp :: t.roots;
      t.root_count <- t.root_count + 1;
      if t.root_count > t.max_roots then begin
        (* Drop the oldest root.  Rare (bounded history), so the O(n)
           list surgery is fine. *)
        t.roots <- List.filteri (fun i _ -> i < t.max_roots) t.roots;
        t.root_count <- t.max_roots;
        t.dropped <- t.dropped + 1
      end
    end;
    Mutex.unlock t.lock
  end

let with_span t ?parent name f =
  let sp = start t ?parent name in
  Fun.protect ~finally:(fun () -> finish t sp) (fun () -> f sp)

let annotate sp k v = if not sp.sp_dummy then sp.sp_notes <- (k, v) :: sp.sp_notes

let stage_hist registry stage =
  Registry.histogram registry "stage_seconds"
    ~help:"Wall-clock seconds per pipeline stage" ~labels:[ ("stage", stage) ]

let timed ?(tracer = default) ?(registry = Registry.default) ~stage f =
  if not (Registry.enabled ()) then f ()
  else begin
    let sp = start tracer stage in
    Fun.protect
      ~finally:(fun () ->
        finish tracer sp;
        Registry.observe (stage_hist registry stage) sp.sp_wall)
      f
  end

let name sp = sp.sp_name
let wall sp = sp.sp_wall
let minor_words sp = sp.sp_minor
let notes sp = List.rev sp.sp_notes
let children sp = List.rev sp.sp_children

let rollup sp =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let count, total =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl c.sp_name)
      in
      Hashtbl.replace tbl c.sp_name (count + 1, total +. c.sp_wall))
    sp.sp_children;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let roots t =
  Mutex.lock t.lock;
  let r = List.rev t.roots in
  Mutex.unlock t.lock;
  r

let dropped_roots t = t.dropped

let reset t =
  Mutex.lock t.lock;
  t.stack <- [];
  t.roots <- [];
  t.root_count <- 0;
  t.dropped <- 0;
  Mutex.unlock t.lock
