type span = {
  sp_name : string;
  sp_t0 : float;
  sp_m0 : float;
  mutable sp_wall : float;
  mutable sp_minor : float;
  mutable sp_notes : (string * string) list; (* newest first *)
  mutable sp_parent : span option; (* None for roots and dummies *)
  mutable sp_seq : int; (* arrival index among siblings *)
  (* Retained children: the first [keep_first] chronologically, then a
     reservoir over the rest.  Aggregates below stay exact whatever was
     sampled out. *)
  mutable sp_first : span list; (* newest first, length <= keep_first *)
  mutable sp_reservoir : span array; (* [||] until the budget overflows *)
  mutable sp_res_len : int;
  mutable sp_child_seen : int; (* children started, exact *)
  mutable sp_child_wall : float; (* total wall of finished children, exact *)
  mutable sp_child_minor : float;
  sp_dummy : bool;
}

type t = {
  lock : Mutex.t;
  max_roots : int;
  mutable max_children : int;
  mutable rng : int; (* xorshift state for reservoir sampling *)
  mutable stack : span list; (* innermost open span first *)
  mutable roots : span list; (* finished roots, newest first *)
  mutable root_count : int;
  mutable dropped : int;
}

let create ?(max_roots = 1024) ?(max_children = max_int) ?(seed = 0x9E3779B9) () =
  if max_roots < 1 then invalid_arg "Obs.Span.create: max_roots must be >= 1";
  if max_children < 1 then
    invalid_arg "Obs.Span.create: max_children must be >= 1";
  {
    lock = Mutex.create ();
    max_roots;
    max_children;
    rng = (if seed = 0 then 0x9E3779B9 else seed);
    stack = [];
    roots = [];
    root_count = 0;
    dropped = 0;
  }

let default = create ()

let set_max_children t n =
  if n < 1 then invalid_arg "Obs.Span.set_max_children: must be >= 1";
  Mutex.lock t.lock;
  t.max_children <- n;
  Mutex.unlock t.lock

let max_children t = t.max_children

let dummy =
  {
    sp_name = "";
    sp_t0 = 0.0;
    sp_m0 = 0.0;
    sp_wall = 0.0;
    sp_minor = 0.0;
    sp_notes = [];
    sp_parent = None;
    sp_seq = 0;
    sp_first = [];
    sp_reservoir = [||];
    sp_res_len = 0;
    sp_child_seen = 0;
    sp_child_wall = 0.0;
    sp_child_minor = 0.0;
    sp_dummy = true;
  }

(* xorshift32; deterministic given the tracer's seed, cheap enough for
   the (rare) over-budget attach path.  Caller holds the lock. *)
let rand_int t bound =
  let x = t.rng in
  let x = x lxor (x lsl 13) land 0x3FFFFFFF in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0x3FFFFFFF in
  let x = if x = 0 then 0x9E3779B9 else x in
  t.rng <- x;
  x mod max 1 bound

(* Attach [sp] as a child of [p], retaining it only within the tracer's
   per-span budget: the first [keep_first] children always, later ones
   through a uniform reservoir of size [budget - keep_first].  Caller
   holds the lock. *)
let attach t p sp =
  sp.sp_parent <- Some p;
  sp.sp_seq <- p.sp_child_seen;
  p.sp_child_seen <- p.sp_child_seen + 1;
  let budget = t.max_children in
  let keep_first = budget - (budget / 2) in
  if sp.sp_seq < keep_first then p.sp_first <- sp :: p.sp_first
  else begin
    let res_cap = budget - keep_first in
    if res_cap > 0 then begin
      if p.sp_res_len < res_cap then begin
        if p.sp_reservoir = [||] then p.sp_reservoir <- Array.make res_cap dummy;
        p.sp_reservoir.(p.sp_res_len) <- sp;
        p.sp_res_len <- p.sp_res_len + 1
      end
      else begin
        (* j-th overflow child (1-based): keep with probability res_cap/j. *)
        let j = sp.sp_seq - keep_first + 1 in
        let r = rand_int t j in
        if r < res_cap then p.sp_reservoir.(r) <- sp
      end
    end
  end

let start t ?parent name =
  if not (Registry.enabled ()) then dummy
  else begin
    let sp =
      {
        sp_name = name;
        sp_t0 = Clock.now ();
        sp_m0 = Gc.minor_words ();
        sp_wall = 0.0;
        sp_minor = 0.0;
        sp_notes = [];
        sp_parent = None;
        sp_seq = 0;
        sp_first = [];
        sp_reservoir = [||];
        sp_res_len = 0;
        sp_child_seen = 0;
        sp_child_wall = 0.0;
        sp_child_minor = 0.0;
        sp_dummy = false;
      }
    in
    Mutex.lock t.lock;
    (match (parent, t.stack) with
    | Some p, _ when not p.sp_dummy -> attach t p sp
    | Some _, _ -> ()
    | None, p :: _ -> attach t p sp
    | None, [] -> ());
    t.stack <- sp :: t.stack;
    Mutex.unlock t.lock;
    sp
  end

let finish t sp =
  if not sp.sp_dummy then begin
    sp.sp_wall <- Clock.now () -. sp.sp_t0;
    sp.sp_minor <- Gc.minor_words () -. sp.sp_m0;
    Mutex.lock t.lock;
    (* Parent aggregates stay exact even when the child itself was
       sampled out of the retained tree. *)
    (match sp.sp_parent with
    | Some p ->
      p.sp_child_wall <- p.sp_child_wall +. sp.sp_wall;
      p.sp_child_minor <- p.sp_child_minor +. sp.sp_minor
    | None -> ());
    let was_open = List.memq sp t.stack in
    (* Pop this span (and, defensively, anything opened after it that
       was never finished). *)
    let rec pop = function
      | [] -> []
      | x :: rest -> if x == sp then rest else pop rest
    in
    if was_open then t.stack <- pop t.stack;
    (* A span is a root if nothing remains open under it. *)
    if was_open && t.stack = [] then begin
      t.roots <- sp :: t.roots;
      t.root_count <- t.root_count + 1;
      if t.root_count > t.max_roots then begin
        (* Drop the oldest root.  Rare (bounded history), so the O(n)
           list surgery is fine. *)
        t.roots <- List.filteri (fun i _ -> i < t.max_roots) t.roots;
        t.root_count <- t.max_roots;
        t.dropped <- t.dropped + 1
      end
    end;
    Mutex.unlock t.lock
  end

let with_span t ?parent name f =
  let sp = start t ?parent name in
  Fun.protect ~finally:(fun () -> finish t sp) (fun () -> f sp)

let annotate sp k v = if not sp.sp_dummy then sp.sp_notes <- (k, v) :: sp.sp_notes

let stage_hist registry stage =
  Registry.histogram registry "stage_seconds"
    ~help:"Wall-clock seconds per pipeline stage" ~labels:[ ("stage", stage) ]

let timed ?(tracer = default) ?(registry = Registry.default) ~stage f =
  if not (Registry.enabled ()) then f ()
  else begin
    let sp = start tracer stage in
    Fun.protect
      ~finally:(fun () ->
        finish tracer sp;
        Registry.observe (stage_hist registry stage) sp.sp_wall)
      f
  end

let name sp = sp.sp_name
let start_time sp = sp.sp_t0
let wall sp = sp.sp_wall
let minor_words sp = sp.sp_minor
let notes sp = List.rev sp.sp_notes

let children sp =
  let reservoir = Array.to_list (Array.sub sp.sp_reservoir 0 sp.sp_res_len) in
  List.rev sp.sp_first
  @ List.sort (fun a b -> compare a.sp_seq b.sp_seq) reservoir

let child_count sp = sp.sp_child_seen
let child_wall_total sp = sp.sp_child_wall
let child_minor_total sp = sp.sp_child_minor

let sampled_out sp =
  sp.sp_child_seen - (List.length sp.sp_first + sp.sp_res_len)

let rollup sp =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let count, total =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl c.sp_name)
      in
      Hashtbl.replace tbl c.sp_name (count + 1, total +. c.sp_wall))
    (children sp);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let roots t =
  Mutex.lock t.lock;
  let r = List.rev t.roots in
  Mutex.unlock t.lock;
  r

let dropped_roots t = t.dropped

let reset t =
  Mutex.lock t.lock;
  t.stack <- [];
  t.roots <- [];
  t.root_count <- 0;
  t.dropped <- 0;
  Mutex.unlock t.lock
