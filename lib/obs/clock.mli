(** Wall-clock source for the whole observability layer.

    Injectable so tests can drive spans, scrape ages and alert timing
    with a fake clock. *)

val now : unit -> float
(** Seconds since the epoch, from the current source. *)

val set_source : (unit -> float) -> unit
(** Replace the clock (tests); affects every [now] process-wide. *)

val reset_source : unit -> unit
(** Restore [Unix.gettimeofday]. *)
