(** Hierarchical timed spans.

    A tracer keeps an ambient stack of open spans: {!start} without an
    explicit parent attaches to the innermost open span, so layered code
    (coordinator phase -> digest stage -> flow merge) nests without
    threading span handles through every call.  Each finished span
    records wall time, the domain's minor-allocation delta
    ([Gc.minor_words], as in [bench/decode_bench]) and its children.

    Spans must be started and finished on the tracer's owning domain
    (pool workers report through the registry instead); the tracer's
    mutex only guards against accidental cross-domain use.

    When {!Registry.set_enabled} is off, [start] hands out a dummy span
    and records nothing. *)

type t
type span

val create : ?max_roots:int -> unit -> t
(** [max_roots] bounds the finished-root history (default 1024); the
    oldest roots are dropped beyond it. *)

val default : t
(** The process-wide tracer the instrumented layers write into. *)

val start : t -> ?parent:span -> string -> span
val finish : t -> span -> unit

val with_span : t -> ?parent:span -> string -> (span -> 'a) -> 'a
(** Start, run, finish (also on exception). *)

val annotate : span -> string -> string -> unit

val timed : ?tracer:t -> ?registry:Registry.t -> stage:string -> (unit -> 'a) -> 'a
(** The per-stage helper used on the pipeline hot layers: wraps [f] in a
    span named [stage] (ambient parent) and observes its wall time into
    the [stage_seconds{stage=...}] histogram of [registry] (both
    defaulting to the process-wide instances). *)

val name : span -> string
val wall : span -> float
(** Seconds; 0 until finished. *)

val minor_words : span -> float
val notes : span -> (string * string) list
val children : span -> span list
(** Oldest first. *)

val rollup : span -> (string * (int * float)) list
(** Direct children grouped by name: (count, total wall), sorted by
    name. *)

val roots : t -> span list
(** Finished root spans, oldest first. *)

val dropped_roots : t -> int
val reset : t -> unit
