(** Hierarchical timed spans.

    A tracer keeps an ambient stack of open spans: {!start} without an
    explicit parent attaches to the innermost open span, so layered code
    (coordinator phase -> digest stage -> flow merge) nests without
    threading span handles through every call.  Each finished span
    records wall time, the domain's minor-allocation delta
    ([Gc.minor_words], as in [bench/decode_bench]) and its children.

    Spans must be started and finished on the tracer's owning domain
    (pool workers report through the registry instead); the tracer's
    mutex only guards against accidental cross-domain use.

    When {!Registry.set_enabled} is off, [start] hands out a dummy span
    and records nothing. *)

type t
type span

val create : ?max_roots:int -> ?max_children:int -> ?seed:int -> unit -> t
(** [max_roots] bounds the finished-root history (default 1024); the
    oldest roots are dropped beyond it.

    [max_children] bounds how many children each span {e retains}
    (default unbounded): the first [max_children - max_children/2]
    children are always kept, and the remainder of the budget is a
    uniform reservoir over every later sibling, so week-long occasions
    cannot grow unbounded span trees.  Children sampled out of the tree
    still update their parent's exact aggregates ({!child_count},
    {!child_wall_total}, {!child_minor_total}).  [seed] drives the
    reservoir's deterministic PRNG. *)

val set_max_children : t -> int -> unit
(** Change the per-span retention budget for spans attached from now on
    (how the CLI configures the process-wide {!default} tracer). *)

val max_children : t -> int

val default : t
(** The process-wide tracer the instrumented layers write into. *)

val start : t -> ?parent:span -> string -> span
val finish : t -> span -> unit

val with_span : t -> ?parent:span -> string -> (span -> 'a) -> 'a
(** Start, run, finish (also on exception). *)

val annotate : span -> string -> string -> unit

val timed : ?tracer:t -> ?registry:Registry.t -> stage:string -> (unit -> 'a) -> 'a
(** The per-stage helper used on the pipeline hot layers: wraps [f] in a
    span named [stage] (ambient parent) and observes its wall time into
    the [stage_seconds{stage=...}] histogram of [registry] (both
    defaulting to the process-wide instances). *)

val name : span -> string

val start_time : span -> float
(** {!Clock} time at [start] (feeds the trace-event exporter). *)

val wall : span -> float
(** Seconds; 0 until finished. *)

val minor_words : span -> float
val notes : span -> (string * string) list

val children : span -> span list
(** Retained children, oldest first (arrival order even through the
    reservoir). *)

val child_count : span -> int
(** Children ever attached — exact, including any sampled out. *)

val child_wall_total : span -> float
(** Total wall seconds of every finished child — exact, including any
    sampled out. *)

val child_minor_total : span -> float

val sampled_out : span -> int
(** [child_count] minus the retained children. *)

val rollup : span -> (string * (int * float)) list
(** Direct children grouped by name: (count, total wall), sorted by
    name. *)

val roots : t -> span list
(** Finished root spans, oldest first. *)

val dropped_roots : t -> int
val reset : t -> unit
