(** History-backed JSON endpoints shared by the live service and its
    socket smoke tests.

    Living in [obs] (rather than the service binary) means the exact
    handlers — parameter validation included — are what the tests
    exercise.  Malformed query parameters are answered with 400. *)

val series :
  ?tsdb:Tsdb.t -> collector:Series.Collector.t -> Http.request -> Http.response
(** The [/series.json] handler: the collector's rolling in-memory
    windows unified with on-disk {!Tsdb} history older than what memory
    retains, filtered by [?since=]/[?until=]/[?name=]/[?label=k=v]. *)

val lossmap : ?ledger:Ledger.t -> Http.request -> Http.response
(** The [/lossmap.json] handler: the ledger's closed occasions
    ({!Ledger.to_json}), filtered by [?site=]/[?occasion=SEQ].
    Defaults to {!Ledger.default}. *)
