type op = Gt | Lt

type rule = {
  rule_name : string;
  series_name : string;
  op : op;
  threshold : float;
  for_count : int;
}

let op_to_string = function Gt -> ">" | Lt -> "<"

let base_to_string r =
  Printf.sprintf "%s %s %g%s" r.series_name (op_to_string r.op) r.threshold
    (if r.for_count = 1 then "" else Printf.sprintf " for %d" r.for_count)

let rule ?name ~series ~op ~threshold ?(for_count = 1) () =
  if for_count < 1 then invalid_arg "Obs.Alerts.rule: for_count must be >= 1";
  let r =
    { rule_name = ""; series_name = series; op; threshold; for_count }
  in
  { r with rule_name = (match name with Some n -> n | None -> base_to_string r) }

let rule_to_string = base_to_string

let rule_of_string s =
  let tokens =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim s))
  in
  let parse_op = function
    | ">" -> Some Gt
    | "<" -> Some Lt
    | _ -> None
  in
  match tokens with
  | [ series; op; thr ] | [ series; op; thr; "for"; _ ] as l -> (
    let for_count =
      match l with
      | [ _; _; _; "for"; n ] -> int_of_string_opt n
      | _ -> Some 1
    in
    match (parse_op op, float_of_string_opt thr, for_count) with
    | Some op, Some threshold, Some n when n >= 1 ->
      Ok (rule ~series ~op ~threshold ~for_count:n ())
    | None, _, _ -> Error (Printf.sprintf "bad comparator %S (expected > or <)" op)
    | _, None, _ -> Error (Printf.sprintf "bad threshold %S" thr)
    | _, _, _ -> Error "bad 'for' count (expected an integer >= 1)")
  | _ ->
    Error
      (Printf.sprintf "cannot parse rule %S (expected: <series> >|< <threshold> [for <n>])"
         s)

type transition = Fired | Cleared

type event = {
  ev_rule : string;
  ev_labels : Registry.labels;
  ev_at : float;
  ev_value : float;
  ev_transition : transition;
}

type state = {
  mutable consecutive : int;
  mutable firing : bool;
  mutable last_value : float;
  mutable since : float;
  mutable last_at : float; (* timestamp of the last evaluated point *)
}

type t = {
  lock : Mutex.t;
  registry : Registry.t;
  mutable rule_list : rule list; (* reverse registration order *)
  states : (string * Registry.labels, state) Hashtbl.t; (* rule_name, labels *)
}

let create ?(registry = Registry.default) rules =
  {
    lock = Mutex.create ();
    registry;
    rule_list = List.rev rules;
    states = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add_rule t r = locked t (fun () -> t.rule_list <- r :: t.rule_list)
let rules t = locked t (fun () -> List.rev t.rule_list)

let violates op threshold v =
  match op with Gt -> v > threshold | Lt -> v < threshold

let active_gauge t rule_name labels =
  Registry.gauge t.registry "patchwork_alert_active"
    ~help:"1 while the named alert rule is firing"
    ~labels:(("rule", rule_name) :: labels)

(* Feed one sample of [r]'s series through the consecutive-violation
   state machine; appends any transition to [events].  Both live
   evaluation and history replay ({!rearm}) go through here, so a
   killed-and-restarted service reconstructs the exact pre-kill state. *)
let step t r labels ~at (p : Series.point) events =
  let key = (r.rule_name, labels) in
  let st =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.states key with
    | Some st -> st
    | None ->
      let st =
        {
          consecutive = 0;
          firing = false;
          last_value = 0.0;
          since = 0.0;
          last_at = Float.nan;
        }
      in
      Hashtbl.add t.states key st;
      st
  in
  locked t @@ fun () ->
  (* A series with no new point since the last evaluate (e.g. a
     histogram-backed series before the pool runs) must not re-count
     the same sample toward "for N". *)
  if p.Series.at = st.last_at then ()
  else begin
    st.last_at <- p.Series.at;
    st.last_value <- p.Series.value;
    if violates r.op r.threshold p.Series.value then begin
      st.consecutive <- st.consecutive + 1;
      if (not st.firing) && st.consecutive >= r.for_count then begin
        st.firing <- true;
        st.since <- at;
        Registry.set (active_gauge t r.rule_name labels) 1.0;
        events :=
          {
            ev_rule = r.rule_name;
            ev_labels = labels;
            ev_at = at;
            ev_value = p.Series.value;
            ev_transition = Fired;
          }
          :: !events
      end
    end
    else begin
      st.consecutive <- 0;
      if st.firing then begin
        st.firing <- false;
        Registry.set (active_gauge t r.rule_name labels) 0.0;
        events :=
          {
            ev_rule = r.rule_name;
            ev_labels = labels;
            ev_at = at;
            ev_value = p.Series.value;
            ev_transition = Cleared;
          }
          :: !events
      end
    end
  end

let evaluate t ~at collector =
  let rules = rules t in
  let events = ref [] in
  List.iter
    (fun r ->
      let matching =
        List.filter
          (fun s -> Series.name s = r.series_name)
          (Series.Collector.series collector)
      in
      List.iter
        (fun s ->
          match Series.last s with
          | None -> ()
          | Some p -> step t r (Series.labels s) ~at p events)
        matching)
    rules;
  List.rev !events

(* Replay persisted history (per series, points oldest-first) through
   the same state machine the live loop uses.  Points are replayed in
   global timestamp order, one evaluation round per distinct timestamp
   — exactly the cadence of the live collect-then-evaluate hook, whose
   evaluation [at] equals the points' own collection timestamp.  The
   replayed transitions are returned (callers usually discard them:
   they already fired before the restart); the firing/consecutive
   state and the [patchwork_alert_active] gauge come out identical to a
   service that never died. *)
let rearm t history =
  let rules = rules t in
  let samples =
    List.concat_map
      (fun (name, labels, pts) ->
        List.map
          (fun (at, value) ->
            (at, name, List.sort compare labels, { Series.at; value }))
          pts)
      history
  in
  let samples =
    List.stable_sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) samples
  in
  let events = ref [] in
  List.iter
    (fun (at, name, labels, p) ->
      List.iter
        (fun r -> if String.equal r.series_name name then step t r labels ~at p events)
        rules)
    samples;
  List.rev !events

let active t =
  let rules = rules t in
  let l =
    locked t @@ fun () ->
    Hashtbl.fold
      (fun (rule_name, labels) st acc ->
        if st.firing then
          match List.find_opt (fun r -> r.rule_name = rule_name) rules with
          | Some r -> (r, labels, st.last_value) :: acc
          | None -> acc
        else acc)
      t.states []
  in
  List.sort
    (fun (a, la, _) (b, lb, _) ->
      match compare a.rule_name b.rule_name with
      | 0 -> compare la lb
      | c -> c)
    l

let labels_json labels =
  Export.Json.Obj (List.map (fun (k, v) -> (k, Export.Json.Str v)) labels)

let to_json t =
  let actives = active t in
  Export.Json.Obj
    [
      ( "rules",
        Export.Json.Arr
          (List.map
             (fun r ->
               Export.Json.Obj
                 [
                   ("name", Export.Json.Str r.rule_name);
                   ("series", Export.Json.Str r.series_name);
                   ("op", Export.Json.Str (op_to_string r.op));
                   ("threshold", Export.Json.Num r.threshold);
                   ("for", Export.Json.Num (float_of_int r.for_count));
                 ])
             (rules t)) );
      ( "active",
        Export.Json.Arr
          (List.map
             (fun (r, labels, v) ->
               Export.Json.Obj
                 ([ ("rule", Export.Json.Str r.rule_name) ]
                 @ (match labels with [] -> [] | l -> [ ("labels", labels_json l) ])
                 @ [ ("value", Export.Json.Num v) ]))
             actives) );
    ]

let event_to_string e =
  Printf.sprintf "ALERT %s: %s%s value=%g"
    (match e.ev_transition with Fired -> "fired" | Cleared -> "cleared")
    e.ev_rule
    (match e.ev_labels with
    | [] -> ""
    | l ->
      " {"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)
      ^ "}")
    e.ev_value
