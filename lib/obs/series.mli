(** Rolling time-series windows over {!Registry} metrics.

    The weekly service is long-running: a {!Registry} snapshot only says
    where the cumulative counters are {e now}, not how the system has
    been trending.  A {!t} is a fixed-capacity ring of [(time, value)]
    points (the oldest point is evicted beyond the capacity), and a
    {!Collector} derives the operational series of the paper's
    monitoring loop from successive registry snapshots — per-site drop
    rate, captured bytes per second, pool busy fraction, occasion
    outcome counts and the pool queue-wait p99 — one point per
    profiling occasion.

    All operations are mutex-protected, so the HTTP exposition domain
    may read ([/series.json], sparklines) while the coordinator's domain
    collects. *)

type point = { at : float; value : float }

type t

val create : ?capacity:int -> name:string -> ?labels:Registry.labels -> unit -> t
(** A rolling window retaining the newest [capacity] points (default
    512).  Raises [Invalid_argument] if [capacity < 1]. *)

val name : t -> string
val labels : t -> Registry.labels

val push : t -> at:float -> float -> unit
val length : t -> int
val capacity : t -> int

val points : t -> point list
(** Retained points, oldest first. *)

val last : t -> point option

val rate : t -> float option
(** Per-second change between the two newest points:
    [(v_n - v_{n-1}) / (t_n - t_{n-1})].  [None] with fewer than two
    points or non-increasing timestamps. *)

val avg_over : t -> window:float -> float option
(** Mean of the values whose [at] lies within [window] seconds of the
    newest point (inclusive).  [None] when empty. *)

val sparkline : ?width:int -> t -> string
(** The newest [width] (default 32) points as Unicode block characters
    scaled to the min/max of the rendered slice; empty string when the
    series is empty. *)

(** Derives operational series from successive snapshots of a registry.

    [collect] computes deltas against the previous snapshot, so the
    first call only records the baseline; every later call appends one
    point per derived series:

    - [site_drop_rate{site}] — [(Δswitch_dropped + Δhost_dropped) /
      Δoffered] from the [capture_*_frames_total] counters (0 when
      nothing was offered);
    - [captured_bytes_per_s] — [Δcapture_stored_bytes_total / Δat]
      (the caller's time axis, e.g. simulated seconds);
    - [pool_busy_fraction] — [Δpool_domain_busy_seconds_total] summed
      over domains, divided by the {e wall-clock} delta between
      collects times the domain count (busy seconds are wall time, so
      the fraction must not be scaled by the simulated axis);
    - [occasion_outcome_count{outcome}] — [Δoccasion_sites_total];
    - [flow_cache_hit_rate] — [Δflow_cache_hits_total / (Δhits +
      Δflow_cache_misses_total)] (no point when the digest did no
      cached lookups between collects);
    - [pool_queue_wait_p99] — the 0.99 quantile upper bound of the
      {e delta} [pool_queue_wait_seconds] histogram (0 when no task was
      queued between collects). *)
module Collector : sig
  type series = t
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] is the per-series window passed to {!create}. *)

  val collect : t -> at:float -> Registry.t -> unit

  val collect_points :
    t -> at:float -> Registry.t -> (string * Registry.labels * point) list
  (** Like {!collect}, but returns every point this round pushed (name,
      sorted labels, point) — the hand-off a persistence layer appends
      to durable storage. *)

  val push_point :
    t -> name:string -> ?labels:Registry.labels -> at:float -> float -> unit
  (** Append one externally computed point to the named window (creating
      it on first use) — e.g. federation staleness series, or history
      replayed from the on-disk store after a restart. *)

  val collections : t -> int
  (** Number of [collect] calls so far (including the baseline). *)

  val series : t -> series list
  (** Every derived series, sorted by name then labels. *)

  val find : t -> ?labels:Registry.labels -> string -> series option

  val to_json : t -> Export.Json.t
  (** [{ "series": [ { "name", "labels"?, "points": [{"at","value"}…] } … ] }] *)
end
