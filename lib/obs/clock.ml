(* Wall-clock source for the whole observability layer.  Injectable so
   tests can drive spans with a fake clock. *)

let source = Atomic.make Unix.gettimeofday
let now () = (Atomic.get source) ()
let set_source f = Atomic.set source f
let reset_source () = Atomic.set source Unix.gettimeofday
