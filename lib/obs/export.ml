module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let number_to_string v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.17g" v

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v ->
      if Float.is_nan v || Float.abs v = infinity then
        (* JSON has no literal for these; keep them readable. *)
        escape buf (if Float.is_nan v then "nan" else if v > 0.0 then "+inf" else "-inf")
      else Buffer.add_string buf (number_to_string v)
    | Str s -> escape buf s
    | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        l;
      Buffer.add_char buf ']'
    | Obj l ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf x)
        l;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  (* --- parser --- *)

  exception Parse_error of string

  type state = { src : string; mutable pos : int }

  let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
  let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
    | _ -> ()

  let expect st c =
    match peek st with
    | Some c' when c' = c -> advance st
    | _ -> fail st (Printf.sprintf "expected %C" c)

  let literal st word value =
    if
      st.pos + String.length word <= String.length st.src
      && String.sub st.src st.pos (String.length word) = word
    then begin
      st.pos <- st.pos + String.length word;
      value
    end
    else fail st (Printf.sprintf "expected %s" word)

  let parse_string st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> fail st "unterminated string"
      | Some '"' -> advance st
      | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance st; go ()
        | Some '/' -> Buffer.add_char buf '/'; advance st; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance st; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance st; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance st; go ()
        | Some 'u' ->
          advance st;
          if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
          let hex = String.sub st.src st.pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> fail st "bad \\u escape"
          | Some code ->
            (* Only the byte range survives; enough for our own output. *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            st.pos <- st.pos + 4;
            go ())
        | _ -> fail st "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
    in
    go ();
    Buffer.contents buf

  let parse_number st =
    let start = st.pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      match peek st with Some c when is_num_char c -> true | _ -> false
    do
      advance st
    done;
    let s = String.sub st.src start (st.pos - start) in
    match float_of_string_opt s with
    | Some v -> v
    | None -> fail st "bad number"

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | None -> fail st "unexpected end of input"
    | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
            advance st;
            members ((k, v) :: acc)
          | Some '}' ->
            advance st;
            List.rev ((k, v) :: acc)
          | _ -> fail st "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
            advance st;
            elements (v :: acc)
          | Some ']' ->
            advance st;
            List.rev (v :: acc)
          | _ -> fail st "expected , or ]"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> Num (parse_number st)

  let parse s =
    let st = { src = s; pos = 0 } in
    match parse_value st with
    | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage"
      else Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj l -> List.assoc_opt key l
    | _ -> None

  let to_float = function
    | Num v -> Some v
    | Str "+inf" -> Some infinity
    | Str "-inf" -> Some neg_infinity
    | Str "nan" -> Some Float.nan
    | _ -> None

  let to_str = function Str s -> Some s | _ -> None
end

(* --- Prometheus text exposition --- *)

let float_repr v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let flatten samples =
  List.concat_map
    (fun (s : Registry.sample) ->
      match s.Registry.s_value with
      | Registry.Counter v | Registry.Gauge v ->
        [ (s.Registry.s_name, s.Registry.s_labels, v) ]
      | Registry.Histogram h ->
        List.map
          (fun (le, cum) ->
            ( s.Registry.s_name ^ "_bucket",
              s.Registry.s_labels @ [ ("le", float_repr le) ],
              float_of_int cum ))
          h.Registry.h_buckets
        @ [
            (s.Registry.s_name ^ "_sum", s.Registry.s_labels, h.Registry.h_sum);
            ( s.Registry.s_name ^ "_count",
              s.Registry.s_labels,
              float_of_int h.Registry.h_count );
          ])
    samples

let escape_label_value buf v =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v

let add_data_line buf (name, labels, v) =
  Buffer.add_string buf name;
  (match labels with
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape_label_value buf value;
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf (float_repr v);
  Buffer.add_char buf '\n'

(* HELP text escaping per the exposition format: backslash first, then
   newlines (label values use the stricter escape_label_value). *)
let escape_help s =
  let s = String.concat "\\\\" (String.split_on_char '\\' s) in
  String.concat "\\n" (String.split_on_char '\n' s)

let to_prometheus samples =
  let buf = Buffer.create 1024 in
  let seen_family = Hashtbl.create 16 in
  List.iter
    (fun (s : Registry.sample) ->
      let name = s.Registry.s_name in
      if not (Hashtbl.mem seen_family name) then begin
        Hashtbl.add seen_family name ();
        if s.Registry.s_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" name (escape_help s.Registry.s_help));
        let kind =
          match s.Registry.s_value with
          | Registry.Counter _ -> "counter"
          | Registry.Gauge _ -> "gauge"
          | Registry.Histogram _ -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
      end;
      List.iter (add_data_line buf) (flatten [ s ]))
    samples;
  Buffer.contents buf

let parse_labels line pos =
  (* Parse {k="v",...}; [pos] points at '{'. Returns (labels, next). *)
  let n = String.length line in
  let labels = ref [] in
  let pos = ref (pos + 1) in
  let fail msg = failwith msg in
  let rec go () =
    if !pos >= n then fail "unterminated label set"
    else if line.[!pos] = '}' then incr pos
    else begin
      let key_start = !pos in
      while !pos < n && line.[!pos] <> '=' do incr pos done;
      if !pos >= n then fail "missing '=' in label";
      let key = String.sub line key_start (!pos - key_start) in
      incr pos;
      if !pos >= n || line.[!pos] <> '"' then fail "missing label value quote";
      incr pos;
      let buf = Buffer.create 16 in
      let rec value () =
        if !pos >= n then fail "unterminated label value"
        else
          match line.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            if !pos + 1 >= n then fail "bad escape";
            (match line.[!pos + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | c -> Buffer.add_char buf c);
            pos := !pos + 2;
            value ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            value ()
      in
      value ();
      labels := (key, Buffer.contents buf) :: !labels;
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        go ()
      end
      else if !pos < n && line.[!pos] = '}' then incr pos
      else fail "expected ',' or '}'"
    end
  in
  go ();
  (List.rev !labels, !pos)

let parse_value_text s =
  match String.trim s with
  | "+Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some Float.nan
  | s -> float_of_string_opt s

let parse_prometheus text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line' = String.trim line in
      if line' = "" || line'.[0] = '#' then go acc rest
      else begin
        match
          let brace = String.index_opt line' '{' in
          let name, labels, after =
            match brace with
            | Some b ->
              let name = String.sub line' 0 b in
              let labels, next = parse_labels line' b in
              (name, labels, String.sub line' next (String.length line' - next))
            | None ->
              let sp =
                match String.index_opt line' ' ' with
                | Some i -> i
                | None -> failwith "missing value"
              in
              ( String.sub line' 0 sp,
                [],
                String.sub line' sp (String.length line' - sp) )
          in
          match parse_value_text after with
          | Some v -> (name, labels, v)
          | None -> failwith ("bad value: " ^ after)
        with
        | sample -> go (sample :: acc) rest
        | exception Failure msg -> Error (Printf.sprintf "%s in %S" msg line')
      end
  in
  go [] lines

(* --- JSON snapshot --- *)

let json_of_labels labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let json_of_value = function
  | Registry.Counter v -> [ ("kind", Json.Str "counter"); ("value", Json.Num v) ]
  | Registry.Gauge v -> [ ("kind", Json.Str "gauge"); ("value", Json.Num v) ]
  | Registry.Histogram h ->
    [
      ("kind", Json.Str "histogram");
      ("count", Json.Num (float_of_int h.Registry.h_count));
      ("sum", Json.Num h.Registry.h_sum);
      ( "buckets",
        Json.Arr
          (List.map
             (fun (le, cum) ->
               Json.Obj
                 [ ("le", Json.Num le); ("count", Json.Num (float_of_int cum)) ])
             h.Registry.h_buckets) );
    ]

let rec json_of_span sp =
  Json.Obj
    ([
       ("name", Json.Str (Span.name sp));
       ("wall_s", Json.Num (Span.wall sp));
       ("minor_words", Json.Num (Span.minor_words sp));
     ]
    @ (match Span.notes sp with
      | [] -> []
      | notes ->
        [ ("notes", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) notes)) ])
    @
    match Span.children sp with
    | [] -> []
    | children -> [ ("children", Json.Arr (List.map json_of_span children)) ])

let json_of_snapshot ?(spans = []) samples =
  Json.Obj
    [
      ( "metrics",
        Json.Arr
          (List.map
             (fun (s : Registry.sample) ->
               Json.Obj
                 ([ ("name", Json.Str s.Registry.s_name) ]
                 @ (match s.Registry.s_labels with
                   | [] -> []
                   | labels -> [ ("labels", json_of_labels labels) ])
                 @ json_of_value s.Registry.s_value))
             samples) );
      ("spans", Json.Arr (List.map json_of_span spans));
    ]

let to_json_string ?spans samples = Json.to_string (json_of_snapshot ?spans samples)

(* --- Chrome trace_event export (chrome://tracing, Perfetto) --- *)

let to_trace_events ?(process_name = "patchwork") spans =
  let events = ref [] in
  (* reversed *)
  let add e = events := e :: !events in
  add
    (Json.Obj
       [
         ("name", Json.Str "process_name");
         ("ph", Json.Str "M");
         ("pid", Json.Num 1.0);
         ("tid", Json.Num 1.0);
         ("args", Json.Obj [ ("name", Json.Str process_name) ]);
       ]);
  let rec emit sp =
    let args =
      (("minor_words", Json.Num (Span.minor_words sp))
       :: List.map (fun (k, v) -> (k, Json.Str v)) (Span.notes sp))
      @
      if Span.sampled_out sp > 0 then
        [
          ("children_total", Json.Num (float_of_int (Span.child_count sp)));
          ("children_sampled_out", Json.Num (float_of_int (Span.sampled_out sp)));
          ("children_wall_s", Json.Num (Span.child_wall_total sp));
        ]
      else []
    in
    add
      (Json.Obj
         [
           ("name", Json.Str (Span.name sp));
           ("cat", Json.Str "patchwork");
           ("ph", Json.Str "B");
           ("ts", Json.Num (Span.start_time sp *. 1e6));
           ("pid", Json.Num 1.0);
           ("tid", Json.Num 1.0);
           ("args", Json.Obj args);
         ]);
    List.iter emit (Span.children sp);
    add
      (Json.Obj
         [
           ("name", Json.Str (Span.name sp));
           ("cat", Json.Str "patchwork");
           ("ph", Json.Str "E");
           ("ts", Json.Num ((Span.start_time sp +. Span.wall sp) *. 1e6));
           ("pid", Json.Num 1.0);
           ("tid", Json.Num 1.0);
         ])
  in
  List.iter emit spans;
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.rev !events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let trace_events_string ?process_name spans =
  Json.to_string (to_trace_events ?process_name spans)
