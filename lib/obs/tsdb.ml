(* On-disk time-series store: sorted binary segments + k-way-merge query.

   The rolling [Series] windows are capacity-bounded RAM: a service
   restart erases all history and a long run evicts its own past.  The
   Tsdb makes telemetry durable with the segment idiom the flow store
   established: append-only sorted segment files, magic/version header,
   [Corrupt] on any validation failure, and bounded-memory reads by a
   k-way merge holding one record per segment in flight.

   One record is either a raw point (the very float pushed into a
   series) or a downsampled bucket carrying count/sum/min/max/last for
   an aligned [res]-second window — enough to answer rate, averages and
   sparklines from history long after the raw points were compacted
   away.  Folding raw points into a bucket adds their values
   left-to-right in timestamp order, so for the monotone appends our
   collectors produce the folded count/sum/min/max are bit-identical
   to recomputing from the raw points the bucket replaced, no matter
   where compactions (or kills and restarts) fell between appends. *)

type record = {
  t_name : string;
  t_labels : Registry.labels; (* canonically sorted *)
  t_at : float; (* raw timestamp, or bucket start *)
  t_res : float; (* 0 = raw point; else the bucket width, seconds *)
  t_count : int;
  t_sum : float;
  t_min : float;
  t_max : float;
  t_last : float;
  t_last_at : float;
}

exception Corrupt of string

let corrupt path fmt =
  Printf.ksprintf (fun msg -> raise (Corrupt (path ^ ": " ^ msg))) fmt

let raw_point ~name ?(labels = []) ~at value =
  {
    t_name = name;
    t_labels = List.sort compare labels;
    t_at = at;
    t_res = 0.0;
    t_count = 1;
    t_sum = value;
    t_min = value;
    t_max = value;
    t_last = value;
    t_last_at = at;
  }

let is_raw r = r.t_res = 0.0

(* The value a record contributes to a rendered series: a raw point is
   itself; a bucket stands in with its last raw point. *)
let point_of_record r = (r.t_last_at, r.t_last)

(* A record's time extent, used by predicates and retention. *)
let record_end r = if is_raw r then r.t_at else r.t_at +. r.t_res

(* Total order: series first, then time, raw before any bucket that
   starts at the same instant. *)
let compare_record a b =
  match compare a.t_name b.t_name with
  | 0 -> (
    match compare a.t_labels b.t_labels with
    | 0 -> (
      match compare a.t_at b.t_at with 0 -> compare a.t_res b.t_res | c -> c)
    | c -> c)
  | c -> c

(* --- observability ------------------------------------------------- *)

let obs_segments_written =
  Registry.counter Registry.default "tsdb_segments_written_total"
    ~help:"Time-series segment files written (flushes + compactions)"

let obs_points_written =
  Registry.counter Registry.default "tsdb_records_written_total"
    ~help:"Time-series records written to segment files"

let obs_records_scanned =
  Registry.counter Registry.default "tsdb_records_scanned_total"
    ~help:"Time-series records read from segments by queries"

let obs_queries =
  Registry.counter Registry.default "tsdb_queries_total"
    ~help:"Range queries answered over stored segments"

let obs_compactions =
  Registry.counter Registry.default "tsdb_compactions_total"
    ~help:"Segment compactions (retention + downsampling rewrites)"

let obs_points_downsampled =
  Registry.counter Registry.default "tsdb_records_downsampled_total"
    ~help:"Raw points folded into downsampled buckets by compactions"

let obs_recovered_segments =
  Registry.counter Registry.default "tsdb_recovered_segments_total"
    ~help:"Unsealed segments recovered (partial tail records dropped) at open"

(* --- segment format ------------------------------------------------ *)

(* Header: "PWTS" magic, u16 version, u32 record count (0xFFFFFFFF
   while the segment is still being streamed; back-patched on seal).
   Record: u16 name_len, name, u8 n_labels, per label u16 klen, key,
   u16 vlen, value; u8 kind; then for kind 0 (raw) f64 at, f64 value
   and for kind 1 (bucket) f64 bucket_start, f64 res, u32 count,
   f64 sum, f64 min, f64 max, f64 last, f64 last_at.  Everything
   little-endian. *)

let magic = "PWTS"
let version = 1
let header_len = 10
let unsealed_marker = 0xFFFFFFFF

module Segment = struct
  let add_record buf (r : record) =
    let add_str s =
      if String.length s > 0xFFFF then
        invalid_arg "Obs.Tsdb: name/label longer than 65535 bytes";
      Buffer.add_uint16_le buf (String.length s);
      Buffer.add_string buf s
    in
    add_str r.t_name;
    if List.length r.t_labels > 0xFF then
      invalid_arg "Obs.Tsdb: more than 255 labels";
    Buffer.add_uint8 buf (List.length r.t_labels);
    List.iter
      (fun (k, v) ->
        add_str k;
        add_str v)
      r.t_labels;
    if is_raw r then begin
      Buffer.add_uint8 buf 0;
      Buffer.add_int64_le buf (Int64.bits_of_float r.t_at);
      Buffer.add_int64_le buf (Int64.bits_of_float r.t_sum)
    end
    else begin
      Buffer.add_uint8 buf 1;
      Buffer.add_int64_le buf (Int64.bits_of_float r.t_at);
      Buffer.add_int64_le buf (Int64.bits_of_float r.t_res);
      Buffer.add_int32_le buf (Int32.of_int r.t_count);
      Buffer.add_int64_le buf (Int64.bits_of_float r.t_sum);
      Buffer.add_int64_le buf (Int64.bits_of_float r.t_min);
      Buffer.add_int64_le buf (Int64.bits_of_float r.t_max);
      Buffer.add_int64_le buf (Int64.bits_of_float r.t_last);
      Buffer.add_int64_le buf (Int64.bits_of_float r.t_last_at)
    end

  (* Stream [records] (sorted first) into [path]: header carries the
     unsealed marker while records are written, then the real count is
     back-patched.  A crash mid-write therefore leaves an unsealed
     segment whose complete prefix of records is still recoverable. *)
  let write path records =
    let records = List.sort compare_record records in
    let oc = open_out_bin path in
    let count = ref 0 in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let b = Buffer.create 65536 in
        Buffer.add_string b magic;
        Buffer.add_uint16_le b version;
        Buffer.add_int32_le b (Int32.of_int unsealed_marker);
        List.iter
          (fun r ->
            add_record b r;
            incr count)
          records;
        Buffer.output_buffer oc b;
        flush oc;
        (* Seal: back-patch the record count. *)
        seek_out oc 6;
        let b = Buffer.create 4 in
        Buffer.add_int32_le b (Int32.of_int !count);
        Buffer.output_buffer oc b);
    !count

  type reader = {
    path : string;
    ic : in_channel;
    sealed_count : int option; (* None while unsealed: read to EOF *)
    mutable read : int;
    mutable prev : record option; (* sortedness check *)
    mutable dropped_partial : bool;
    mutable closed : bool;
  }

  exception Partial_tail

  let read_exact r n what =
    let b = Bytes.create n in
    (try really_input r.ic b 0 n
     with End_of_file -> (
       match r.sealed_count with
       | Some count ->
         corrupt r.path "truncated segment: %s cut short at record %d/%d" what
           (r.read + 1) count
       | None ->
         (* A kill mid-append leaves a partial final record on the
            unsealed tail segment; it never made it to the store, so
            drop it rather than refuse the whole segment. *)
         raise Partial_tail));
    b

  let open_reader path =
    let ic =
      try open_in_bin path
      with Sys_error msg -> raise (Corrupt (path ^ ": " ^ msg))
    in
    let header = Bytes.create header_len in
    (try really_input ic header 0 header_len
     with End_of_file ->
       let len = in_channel_length ic in
       close_in_noerr ic;
       corrupt path "truncated segment: %d-byte file is shorter than the header"
         len);
    let sealed_count =
      try
        if Bytes.sub_string header 0 4 <> magic then
          corrupt path "bad magic (not a Patchwork time-series segment)";
        let v = Bytes.get_uint16_le header 4 in
        if v <> version then corrupt path "unsupported segment version %d" v;
        let c = Int32.to_int (Bytes.get_int32_le header 6) land 0xFFFFFFFF in
        if c = unsealed_marker then None
        else if c > Sys.max_string_length then
          corrupt path "implausible record count %d" c
        else Some c
      with e ->
        close_in_noerr ic;
        raise e
    in
    {
      path;
      ic;
      sealed_count;
      read = 0;
      prev = None;
      dropped_partial = false;
      closed = false;
    }

  let sealed r = r.sealed_count <> None
  let recovered_partial r = r.dropped_partial

  let close r =
    if not r.closed then begin
      r.closed <- true;
      close_in_noerr r.ic
    end

  let at_end r =
    match r.sealed_count with
    | Some count -> r.read >= count
    | None -> false (* unsealed: the EOF decides *)

  let next r =
    if r.closed then None
    else if at_end r then begin
      (match input_char r.ic with
      | _ ->
        corrupt r.path "trailing garbage after %d records" r.read
      | exception End_of_file -> ());
      close r;
      None
    end
    else begin
      match
        let str what =
          let len = Bytes.get_uint16_le (read_exact r 2 (what ^ " length")) 0 in
          Bytes.to_string (read_exact r len what)
        in
        let name = str "series name" in
        let n_labels = Bytes.get_uint8 (read_exact r 1 "label count") 0 in
        let labels =
          List.init n_labels (fun _ ->
              let k = str "label key" in
              let v = str "label value" in
              (k, v))
        in
        let kind = Bytes.get_uint8 (read_exact r 1 "record kind") 0 in
        match kind with
        | 0 ->
          let fixed = read_exact r 16 "raw point" in
          let at = Int64.float_of_bits (Bytes.get_int64_le fixed 0) in
          let value = Int64.float_of_bits (Bytes.get_int64_le fixed 8) in
          {
            t_name = name;
            t_labels = labels;
            t_at = at;
            t_res = 0.0;
            t_count = 1;
            t_sum = value;
            t_min = value;
            t_max = value;
            t_last = value;
            t_last_at = at;
          }
        | 1 ->
          let fixed = read_exact r 60 "bucket body" in
          let f64 off = Int64.float_of_bits (Bytes.get_int64_le fixed off) in
          {
            t_name = name;
            t_labels = labels;
            t_at = f64 0;
            t_res = f64 8;
            t_count = Int32.to_int (Bytes.get_int32_le fixed 16);
            t_sum = f64 20;
            t_min = f64 28;
            t_max = f64 36;
            t_last = f64 44;
            t_last_at = f64 52;
          }
        | k -> corrupt r.path "invalid record kind 0x%02x at record %d" k (r.read + 1)
      with
      | exception Partial_tail ->
        r.dropped_partial <- true;
        close r;
        None
      | rec_ ->
        if List.sort compare rec_.t_labels <> rec_.t_labels then
          corrupt r.path "labels not sorted at record %d" (r.read + 1);
        if rec_.t_res > 0.0 then begin
          if rec_.t_count < 1 then
            corrupt r.path "bucket with count %d at record %d" rec_.t_count
              (r.read + 1);
          if rec_.t_min > rec_.t_max then
            corrupt r.path "bucket with min > max at record %d" (r.read + 1)
        end
        else if rec_.t_res < 0.0 then
          corrupt r.path "negative resolution at record %d" (r.read + 1);
        (* Ties are legal: two sources may report the same series at the
           same instant (e.g. a local and a federated aggregate), and
           the writer's sort keeps such duplicates adjacent.  Only an
           actual inversion is corruption. *)
        (match r.prev with
        | Some prev when compare_record prev rec_ > 0 ->
          corrupt r.path "segment not sorted at record %d (%s before %s)"
            (r.read + 1) prev.t_name rec_.t_name
        | _ -> ());
        r.prev <- Some rec_;
        r.read <- r.read + 1;
        Some rec_
    end

  let read_all path =
    match
      let r = open_reader path in
      Fun.protect
        ~finally:(fun () -> close r)
        (fun () ->
          let rec go acc =
            match next r with None -> List.rev acc | Some x -> go (x :: acc)
          in
          let records = go [] in
          (records, r.dropped_partial))
    with
    | result -> Ok result
    | exception Corrupt msg -> Error msg
end

(* --- k-way merge --------------------------------------------------- *)

(* Min-heap over open readers ordered by each reader's head record;
   equal records tie-break on reader index so the merge is a stable,
   deterministic interleave whatever the heap's internal layout. *)
module Heap = struct
  type entry = { mutable head : record; reader : Segment.reader; index : int }
  type t = { a : entry array; mutable n : int }

  let lt x y =
    match compare_record x.head y.head with
    | 0 -> x.index < y.index
    | c -> c < 0

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < h.n && lt h.a.(l) h.a.(!m) then m := l;
    if r < h.n && lt h.a.(r) h.a.(!m) then m := r;
    if !m <> i then begin
      let tmp = h.a.(i) in
      h.a.(i) <- h.a.(!m);
      h.a.(!m) <- tmp;
      sift_down h !m
    end

  let of_list entries =
    let a = Array.of_list entries in
    let h = { a; n = Array.length a } in
    for i = (h.n / 2) - 1 downto 0 do
      sift_down h i
    done;
    h

  let peek h = if h.n = 0 then None else Some h.a.(0)

  let advance_min h =
    match Segment.next h.a.(0).reader with
    | Some r ->
      h.a.(0).head <- r;
      sift_down h 0
    | None ->
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.a.(0) <- h.a.(h.n);
        sift_down h 0
      end
end

(* Stream every record of [paths] in global (series, time) order. *)
let scan paths f =
  let readers = List.map Segment.open_reader paths in
  Fun.protect
    ~finally:(fun () -> List.iter Segment.close readers)
    (fun () ->
      let heap =
        Heap.of_list
          (List.mapi (fun index r -> (index, r)) readers
          |> List.filter_map (fun (index, r) ->
                 match Segment.next r with
                 | Some head -> Some { Heap.head; reader = r; index }
                 | None -> None))
      in
      let scanned = ref 0 in
      let rec go () =
        match Heap.peek heap with
        | None -> !scanned
        | Some e ->
          incr scanned;
          f e.Heap.head;
          Heap.advance_min heap;
          go ()
      in
      go ())

(* --- predicates ---------------------------------------------------- *)

type predicate = {
  q_since : float option;
  q_until : float option;
  q_name : string option;
  q_labels : Registry.labels; (* all pairs must be present *)
}

let no_predicate = { q_since = None; q_until = None; q_name = None; q_labels = [] }

let predicate ?since ?until ?name ?(labels = []) () =
  { q_since = since; q_until = until; q_name = name; q_labels = labels }

let matches p (r : record) =
  (match p.q_name with None -> true | Some n -> String.equal n r.t_name)
  && List.for_all
       (fun (k, v) ->
         match List.assoc_opt k r.t_labels with
         | Some v' -> String.equal v v'
         | None -> false)
       p.q_labels
  && (match p.q_since with None -> true | Some t -> record_end r >= t)
  && match p.q_until with None -> true | Some t -> r.t_at <= t

(* --- store handle -------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let segments_in_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".pwts")
    |> List.sort compare
    |> List.map (Filename.concat dir)

type t = {
  dir : string;
  retention : float option;
  resolution : float option;
  compact_every : int;
  lock : Mutex.t;
  mutable buf : record list; (* reversed arrival order; flush sorts *)
  mutable buffered : int;
  mutable seg_index : int;
  mutable recovered : int; (* unsealed segments repaired at open *)
}

let index_of_path path =
  (* tsdb-NNNNNN.pwts; foreign names count as index -1. *)
  let base = Filename.remove_extension (Filename.basename path) in
  match String.rindex_opt base '-' with
  | None -> -1
  | Some i -> (
    match
      int_of_string_opt (String.sub base (i + 1) (String.length base - i - 1))
    with
    | Some n -> n
    | None -> -1)

(* Open (or create) a store directory.  Unsealed segments left behind by
   a killed writer are recovered in place: their complete record prefix
   is rewritten as a sealed segment and any partial tail record is
   dropped. *)
let open_store ?retention ?resolution ?(compact_every = 2) ?log ~dir () =
  (match retention with
  | Some r when r <= 0.0 -> invalid_arg "Obs.Tsdb.open_store: retention <= 0"
  | _ -> ());
  (match resolution with
  | Some r when r <= 0.0 -> invalid_arg "Obs.Tsdb.open_store: resolution <= 0"
  | _ -> ());
  if compact_every < 2 then
    invalid_arg "Obs.Tsdb.open_store: compact_every must be >= 2";
  mkdir_p dir;
  let recovered = ref 0 in
  List.iter
    (fun path ->
      let reader = Segment.open_reader path in
      let was_sealed = Segment.sealed reader in
      let records, dropped =
        Fun.protect
          ~finally:(fun () -> Segment.close reader)
          (fun () ->
            let rec go acc =
              match Segment.next reader with
              | None -> List.rev acc
              | Some r -> go (r :: acc)
            in
            let records = go [] in
            (records, Segment.recovered_partial reader))
      in
      if not was_sealed then begin
        ignore (Segment.write path records);
        incr recovered;
        if Registry.enabled () then Registry.incr obs_recovered_segments;
        match log with
        | Some f ->
          f
            (Printf.sprintf "recovered unsealed segment %s (%d records%s)" path
               (List.length records)
               (if dropped then ", partial tail record dropped" else ""))
        | None -> ()
      end)
    (segments_in_dir dir);
  let seg_index =
    List.fold_left
      (fun acc p -> max acc (index_of_path p + 1))
      0 (segments_in_dir dir)
  in
  {
    dir;
    retention;
    resolution;
    compact_every;
    lock = Mutex.create ();
    buf = [];
    buffered = 0;
    seg_index;
    recovered = !recovered;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let dir t = t.dir
let recovered_segments t = t.recovered
let segments t = segments_in_dir t.dir
let buffered t = locked t (fun () -> t.buffered)

let append t records =
  locked t @@ fun () ->
  List.iter
    (fun r ->
      if r.t_count < 1 then invalid_arg "Obs.Tsdb.append: record count < 1";
      t.buf <- r :: t.buf;
      t.buffered <- t.buffered + 1)
    records

let append_point t ~name ?(labels = []) ~at value =
  append t [ raw_point ~name ~labels ~at value ]

(* --- downsampling compaction --------------------------------------- *)

let bucket_start ~resolution at = Float.of_int (int_of_float (Float.floor (at /. resolution))) *. resolution

(* Fold [b] (later in merge order) into [a]; both cover the same
   series.  Values are added in arrival order, which for monotone
   appends is timestamp order — the same order a recomputation over the
   raw points would use. *)
let absorb a b =
  {
    a with
    t_count = a.t_count + b.t_count;
    t_sum = a.t_sum +. b.t_sum;
    t_min = Float.min a.t_min b.t_min;
    t_max = Float.max a.t_max b.t_max;
    t_last = (if b.t_last_at >= a.t_last_at then b.t_last else a.t_last);
    t_last_at = Float.max a.t_last_at b.t_last_at;
  }

(* Merge every segment into one, applying retention and downsampling.
   Both cutoffs derive from the newest timestamp stored — never the
   wall clock — so compaction is a pure function of the store's
   contents and a killed-and-resumed service converges on the same
   bytes as an uninterrupted one.

   Downsampling folds a raw point into its aligned bucket only once the
   bucket has completely passed (bucket end <= newest): with monotone
   appends no later point can land in a folded bucket, so a bucket's
   aggregates are final the moment they are formed. *)
let compact t =
  Span.timed ~stage:"tsdb.compact" @@ fun () ->
  locked t @@ fun () ->
  let paths = segments_in_dir t.dir in
  if paths <> [] then begin
    (* Pass 1: the newest timestamp (bounded memory: running max). *)
    let newest = ref neg_infinity in
    let _ =
      scan paths (fun r -> if record_end r > !newest then newest := record_end r)
    in
    let keep r =
      match t.retention with
      | None -> true
      | Some ret -> record_end r >= !newest -. ret
    in
    let fold_cutoff = !newest in
    (* Pass 2: merge into one segment, folding complete buckets.  The
       merge yields records per series in time order, so one pending
       bucket per series is the whole folding state. *)
    let out = ref [] in
    let pending = ref None in
    let emit () =
      match !pending with
      | Some r ->
        pending := None;
        out := r :: !out
      | None -> ()
    in
    let on_record r =
      if keep r then begin
        match t.resolution with
        | None -> out := r :: !out
        | Some res ->
          let foldable cand =
            (* Raw points in a fully passed bucket, or buckets of the
               same resolution (re-folding earlier compactions). *)
            if is_raw cand then
              bucket_start ~resolution:res cand.t_at +. res <= fold_cutoff
            else cand.t_res = res
          in
          if not (foldable r) then begin
            emit ();
            out := r :: !out
          end
          else begin
            let start =
              if is_raw r then bucket_start ~resolution:res r.t_at else r.t_at
            in
            let as_bucket = { r with t_at = start; t_res = res } in
            match !pending with
            | Some p
              when String.equal p.t_name r.t_name
                   && p.t_labels = r.t_labels && p.t_at = start ->
              if Registry.enabled () && is_raw r then
                Registry.incr obs_points_downsampled;
              pending := Some (absorb p as_bucket)
            | _ ->
              emit ();
              if Registry.enabled () && is_raw r then
                Registry.incr obs_points_downsampled;
              pending := Some as_bucket
          end
      end
    in
    let _scanned = scan paths on_record in
    emit ();
    let records = List.rev !out in
    let path =
      Filename.concat t.dir (Printf.sprintf "tsdb-%06d.pwts" t.seg_index)
    in
    t.seg_index <- t.seg_index + 1;
    let count = Segment.write path records in
    List.iter Sys.remove paths;
    if Registry.enabled () then begin
      Registry.incr obs_compactions;
      Registry.incr obs_segments_written;
      Registry.inc obs_points_written (float_of_int count)
    end
  end

(* Write the buffered records as one new sealed segment, then compact
   when the store has accumulated enough segments (or needs retention /
   downsampling applied).  Returns the number of records flushed. *)
let flush t =
  let n, needs_compact =
    locked t @@ fun () ->
    if t.buffered = 0 then (0, false)
    else begin
      Span.timed ~stage:"tsdb.flush" @@ fun () ->
      let path =
        Filename.concat t.dir (Printf.sprintf "tsdb-%06d.pwts" t.seg_index)
      in
      t.seg_index <- t.seg_index + 1;
      let count = Segment.write path t.buf in
      if Registry.enabled () then begin
        Registry.incr obs_segments_written;
        Registry.inc obs_points_written (float_of_int count)
      end;
      t.buf <- [];
      t.buffered <- 0;
      let wants_rewrite = t.retention <> None || t.resolution <> None in
      ( count,
        wants_rewrite
        && List.length (segments_in_dir t.dir) >= t.compact_every )
    end
  in
  if needs_compact then compact t;
  n

(* --- range queries ------------------------------------------------- *)

(* Bounded-memory streaming fold over matching records in (series,
   time) order: the in-flight state is one record per segment. *)
let fold ?(pred = no_predicate) ~init ~f paths =
  Span.timed ~stage:"tsdb.query" @@ fun () ->
  let acc = ref init in
  let scanned = scan paths (fun r -> if matches pred r then acc := f !acc r) in
  if Registry.enabled () then begin
    Registry.incr obs_queries;
    Registry.inc obs_records_scanned (float_of_int scanned)
  end;
  !acc

(* Matching records grouped per series, series in canonical order. *)
let query ?(pred = no_predicate) paths =
  let groups =
    fold ~pred paths ~init:[] ~f:(fun acc r ->
        match acc with
        | (name, labels, records) :: rest
          when String.equal name r.t_name && labels = r.t_labels ->
          (name, labels, r :: records) :: rest
        | _ -> (r.t_name, r.t_labels, [ r ]) :: acc)
  in
  List.rev_map (fun (name, labels, records) -> (name, labels, List.rev records)) groups

(* Store-level query: holds the store lock for the whole scan so a
   concurrent flush/compact (which deletes merged-away segment files)
   cannot yank segments out from under the reader. *)
let query_store ?pred t =
  locked t (fun () -> query ?pred (segments_in_dir t.dir))

(* The last [n] rendered points per series — the tail a restarted
   service re-arms its alerts (and warms its memory windows) from. *)
let tail ?(pred = no_predicate) ~n paths =
  if n < 1 then invalid_arg "Obs.Tsdb.tail: n must be >= 1";
  let keep_last tail_pts p =
    (* tail_pts is newest-first and at most n long. *)
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    take n (p :: tail_pts)
  in
  let groups =
    fold ~pred paths ~init:[] ~f:(fun acc r ->
        let p = point_of_record r in
        match acc with
        | (name, labels, pts) :: rest
          when String.equal name r.t_name && labels = r.t_labels ->
          (name, labels, keep_last pts p) :: rest
        | _ -> (r.t_name, r.t_labels, [ p ]) :: acc)
  in
  List.rev_map (fun (name, labels, pts) -> (name, labels, List.rev pts)) groups

let tail_store ?pred ~n t =
  locked t (fun () -> tail ?pred ~n (segments_in_dir t.dir))
