(** Declarative threshold alerting over {!Series} windows.

    A rule names a series, a comparison against a threshold, and how
    many {e consecutive} samples must violate before the alert fires
    ("for N"); rules with labels apply independently to every labelled
    instance of the series (one [site_drop_rate] rule watches every
    site).  {!evaluate} is called once per collection round (after every
    occasion); it returns the firing/clearing transitions and mirrors
    the active set as a [patchwork_alert_active{rule,...}] gauge so
    alerts ride the same exposition endpoint as the metrics themselves.

    The textual rule syntax — also what [DESIGN.md] documents and what
    the CLI accepts — is

    {v <series> (>|<) <threshold> [for <occasions>] v}

    e.g. ["site_drop_rate > 0.05 for 3"] or
    ["pool_queue_wait_p99 > 0.5"]. *)

type op = Gt | Lt

type rule = {
  rule_name : string;  (** defaults to the rule's textual form *)
  series_name : string;
  op : op;
  threshold : float;
  for_count : int;  (** consecutive violating samples required; >= 1 *)
}

val rule :
  ?name:string ->
  series:string ->
  op:op ->
  threshold:float ->
  ?for_count:int ->
  unit ->
  rule
(** Raises [Invalid_argument] if [for_count < 1]. *)

val rule_of_string : string -> (rule, string) result
val rule_to_string : rule -> string
(** [rule_to_string] of a parsed rule re-parses to the same rule. *)

type transition = Fired | Cleared

type event = {
  ev_rule : string;
  ev_labels : Registry.labels;  (** labels of the violating series *)
  ev_at : float;
  ev_value : float;  (** the newest sample that caused the transition *)
  ev_transition : transition;
}

type t

val create : ?registry:Registry.t -> rule list -> t
(** [registry] (default {!Registry.default}) receives the
    [patchwork_alert_active] gauge. *)

val add_rule : t -> rule -> unit
val rules : t -> rule list

val evaluate : t -> at:float -> Series.Collector.t -> event list
(** Check every rule against the newest point of every matching series;
    thread-safe.  A series whose newest point is unchanged since the
    previous evaluate is skipped, so a stale sample is never re-counted
    toward a rule's "for N".  Returns the transitions of this round
    (empty when nothing changed state). *)

val rearm :
  t -> (string * Registry.labels * (float * float) list) list -> event list
(** Replay persisted series history — [(name, labels, (at, value)
    points oldest-first)] per series, e.g. {!Tsdb.tail} output — through
    the same state machine as {!evaluate}, one round per distinct
    timestamp.  After [rearm], firing/consecutive state and the
    [patchwork_alert_active] gauge match a service that never restarted.
    Returns the replayed transitions; callers normally discard them
    (they already fired before the restart). *)

val active : t -> (rule * Registry.labels * float) list
(** Currently-firing (rule, series labels, last value), sorted. *)

val to_json : t -> Export.Json.t
(** [{ "rules": [...], "active": [...] }] for the [/alerts.json]
    endpoint. *)

val event_to_string : event -> string
(** One log line, e.g.
    ["ALERT fired: site_drop_rate > 0.05 for 3 {site=STAR} value=0.12"]. *)
