(** Persistent telemetry store: append-only segment files of series
    records with downsampling compaction.

    The weekly service survives restarts, so its operational series must
    too.  A store is a directory of sorted, sealed [.pwts] segments
    ("PWTS" magic, little-endian, record count back-patched on seal);
    appends buffer in memory until {!flush} writes one new segment, and
    every [compact_every] flushes {!compact} merges segments, applying
    retention and (when a [resolution] is set) folding raw points older
    than the newest bucket boundary into per-bucket aggregates whose
    count/sum/min/max/last equal a recomputation over the raw points
    they replace.

    Readers validate as they go and raise {!Corrupt} on a damaged
    sealed segment; an {e unsealed} segment left by a killed writer is
    not corrupt — its complete record prefix is readable and any torn
    tail record is dropped ({!Segment.recovered_partial}), which
    {!open_store} uses to repair such segments in place. *)

type record = {
  t_name : string;
  t_labels : Registry.labels;  (** canonically sorted *)
  t_at : float;  (** raw timestamp, or bucket start *)
  t_res : float;  (** 0 = raw point; else the bucket width, seconds *)
  t_count : int;
  t_sum : float;
  t_min : float;
  t_max : float;
  t_last : float;
  t_last_at : float;
}

exception Corrupt of string

val raw_point : name:string -> ?labels:Registry.labels -> at:float -> float -> record

val is_raw : record -> bool

val point_of_record : record -> float * float
(** The [(at, value)] a record contributes to a rendered series: a raw
    point is itself; a bucket stands in with its last raw point. *)

val record_end : record -> float
(** A record's time extent (raw: [t_at]; bucket: [t_at + t_res]). *)

val compare_record : record -> record -> int
(** Segment sort order: name, labels, time, resolution. *)

(** One on-disk segment file. *)
module Segment : sig
  val write : string -> record list -> int
  (** Write (and seal) a segment of the records in canonical order;
      returns the record count. *)

  type reader

  val open_reader : string -> reader
  (** @raise Corrupt on bad magic, version or truncated header. *)

  val sealed : reader -> bool

  val recovered_partial : reader -> bool
  (** An unsealed segment's torn tail record was dropped. *)

  val next : reader -> record option
  (** Stream records in stored order.
      @raise Corrupt on a malformed record, a sort-order violation, or
      truncation in a {e sealed} segment (an unsealed segment's torn
      tail returns [None] and sets {!recovered_partial}). *)

  val close : reader -> unit

  val read_all : string -> (record list * bool, string) result
  (** Every record plus the recovered-partial flag, or the [Corrupt]
      message. *)
end

val scan : string list -> (record -> unit) -> int
(** Stream every record of the given segments merged in canonical
    order; returns the record count.  @raise Corrupt as {!Segment.next}. *)

(** {1 Query predicates} *)

type predicate

val no_predicate : predicate
val predicate : ?since:float -> ?until:float -> ?name:string -> ?labels:Registry.labels -> unit -> predicate
val matches : predicate -> record -> bool

val segments_in_dir : string -> string list
(** The [.pwts] segment paths in a directory, sorted; [] when the
    directory does not exist. *)

(** {1 Store handle} *)

type t

val open_store :
  ?retention:float ->
  ?resolution:float ->
  ?compact_every:int ->
  ?log:(string -> unit) ->
  dir:string ->
  unit ->
  t
(** Open (or create) a store directory, repairing any unsealed segments
    a killed writer left behind.  [retention] drops records whose end
    falls more than that many seconds behind the newest timestamp at
    compaction; [resolution] enables downsampling; [compact_every]
    (default 2, min 2) triggers compaction every that many flushes. *)

val dir : t -> string

val recovered_segments : t -> int
(** Unsealed segments repaired at open. *)

val segments : t -> string list
val buffered : t -> int

val append : t -> record list -> unit
val append_point : t -> name:string -> ?labels:Registry.labels -> at:float -> float -> unit

val bucket_start : resolution:float -> float -> float

val compact : t -> unit
val flush : t -> int
(** Write buffered records as one sealed segment (compacting on
    cadence); returns the records flushed. *)

(** {1 Reading} *)

val fold : ?pred:predicate -> init:'a -> f:('a -> record -> 'a) -> string list -> 'a

val query : ?pred:predicate -> string list -> (string * Registry.labels * record list) list
(** Matching records grouped per series, series in canonical order. *)

val query_store : ?pred:predicate -> t -> (string * Registry.labels * record list) list
(** {!query} over the store's segments, holding the store lock so a
    concurrent flush/compact cannot delete segments mid-scan. *)

val tail : ?pred:predicate -> n:int -> string list -> (string * Registry.labels * (float * float) list) list
(** The last [n] rendered points per series — what a restarted service
    re-arms alerts and warms memory windows from. *)

val tail_store : ?pred:predicate -> n:int -> t -> (string * Registry.labels * (float * float) list) list
