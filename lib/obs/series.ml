type point = { at : float; value : float }

type t = {
  lock : Mutex.t;
  s_name : string;
  s_labels : Registry.labels;
  ring : point option array;
  mutable start : int; (* index of the oldest retained point *)
  mutable len : int;
}

let create ?(capacity = 512) ~name ?(labels = []) () =
  if capacity < 1 then invalid_arg "Obs.Series.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    s_name = name;
    s_labels = List.sort compare labels;
    ring = Array.make capacity None;
    start = 0;
    len = 0;
  }

let name t = t.s_name
let labels t = t.s_labels
let capacity t = Array.length t.ring

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t ~at value =
  locked t @@ fun () ->
  let cap = Array.length t.ring in
  let slot = (t.start + t.len) mod cap in
  t.ring.(slot) <- Some { at; value };
  if t.len < cap then t.len <- t.len + 1 else t.start <- (t.start + 1) mod cap

let length t = locked t (fun () -> t.len)

let points t =
  locked t @@ fun () ->
  List.init t.len (fun i ->
      match t.ring.((t.start + i) mod Array.length t.ring) with
      | Some p -> p
      | None -> assert false (* slots [0, len) are filled *))

let last t =
  locked t @@ fun () ->
  if t.len = 0 then None
  else t.ring.((t.start + t.len - 1) mod Array.length t.ring)

let rate t =
  locked t @@ fun () ->
  if t.len < 2 then None
  else begin
    let cap = Array.length t.ring in
    match
      ( t.ring.((t.start + t.len - 2) mod cap),
        t.ring.((t.start + t.len - 1) mod cap) )
    with
    | Some a, Some b when b.at > a.at -> Some ((b.value -. a.value) /. (b.at -. a.at))
    | _ -> None
  end

let avg_over t ~window =
  match points t with
  | [] -> None
  | ps ->
    let newest = (List.nth ps (List.length ps - 1)).at in
    let lo = newest -. window in
    let n = ref 0 and sum = ref 0.0 in
    List.iter
      (fun p ->
        if p.at >= lo then begin
          incr n;
          sum := !sum +. p.value
        end)
      ps;
    Some (!sum /. float_of_int !n)

let spark_levels = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}";
                      "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

let sparkline ?(width = 32) t =
  let ps = points t in
  let n = List.length ps in
  let ps = if n > width then List.filteri (fun i _ -> i >= n - width) ps else ps in
  match ps with
  | [] -> ""
  | ps ->
    let vs = List.map (fun p -> p.value) ps in
    let lo = List.fold_left Float.min infinity vs in
    let hi = List.fold_left Float.max neg_infinity vs in
    let buf = Buffer.create (3 * List.length vs) in
    List.iter
      (fun v ->
        let i =
          if hi <= lo then 0
          else
            min 7 (int_of_float (Float.of_int 8 *. (v -. lo) /. (hi -. lo)))
        in
        Buffer.add_string buf spark_levels.(i))
      vs;
    Buffer.contents buf

let make_series = create

module Collector = struct
  type series = t

  type t = {
    c_lock : Mutex.t;
    c_capacity : int;
    tbl : (string * Registry.labels, series) Hashtbl.t;
    (* Previous snapshot, flattened per cell: counters/gauges as a
       value, histograms as (count, non-cumulative bins). *)
    prev : (string * Registry.labels, float) Hashtbl.t;
    prev_bins : (string * Registry.labels, (float * int) list) Hashtbl.t;
    mutable prev_wall : float;
    mutable rounds : int;
  }

  let create ?(capacity = 512) () =
    if capacity < 1 then invalid_arg "Obs.Series.Collector.create: capacity must be >= 1";
    {
      c_lock = Mutex.create ();
      c_capacity = capacity;
      tbl = Hashtbl.create 32;
      prev = Hashtbl.create 64;
      prev_bins = Hashtbl.create 8;
      prev_wall = 0.0;
      rounds = 0;
    }

  let locked t f =
    Mutex.lock t.c_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.c_lock) f

  let get_series t name labels =
    let labels = List.sort compare labels in
    match Hashtbl.find_opt t.tbl (name, labels) with
    | Some s -> s
    | None ->
      let s = make_series ~capacity:t.c_capacity ~name ~labels () in
      Hashtbl.add t.tbl (name, labels) s;
      s

  (* Cumulative (bound, cum) buckets to non-cumulative (bound, bin). *)
  let bins_of_buckets buckets =
    let prev = ref 0 in
    List.map
      (fun (bound, cum) ->
        let bin = cum - !prev in
        prev := cum;
        (bound, bin))
      buckets

  (* p-quantile upper bound of a non-cumulative delta bin list. *)
  let quantile_of_bins p bins =
    let total = List.fold_left (fun acc (_, b) -> acc + b) 0 bins in
    if total = 0 then None
    else begin
      let target = max 1 (int_of_float (ceil (p *. float_of_int total))) in
      let rec go cum = function
        | [] -> None
        | (bound, bin) :: rest ->
          let cum = cum + bin in
          if cum >= target then Some bound else go cum rest
      in
      go 0 bins
    end

  let float_of_sample (s : Registry.sample) =
    match s.Registry.s_value with
    | Registry.Counter v | Registry.Gauge v -> Some v
    | Registry.Histogram _ -> None

  (* Append one externally computed point (federation staleness series,
     history warm-loads) to the named window. *)
  let push_point t ~name ?(labels = []) ~at value =
    push (get_series t name labels) ~at value

  let collect_points t ~at reg =
    let snap = Registry.snapshot reg in
    let wall = Clock.now () in
    locked t @@ fun () ->
    let pushed = ref [] in
    let record name labels v =
      let labels = List.sort compare labels in
      push (get_series t name labels) ~at v;
      pushed := (name, labels, { at; value = v }) :: !pushed
    in
    let delta name labels =
      let key = (name, List.sort compare labels) in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.prev key) in
      let cur =
        List.find_map
          (fun (s : Registry.sample) ->
            if s.Registry.s_name = name && s.Registry.s_labels = snd key then
              float_of_sample s
            else None)
          snap
      in
      match cur with Some v -> v -. prev | None -> 0.0
    in
    let first = t.rounds = 0 in
    if not first then begin
      (* Per-site drop rate from the capture counters. *)
      let sites =
        List.filter_map
          (fun (s : Registry.sample) ->
            if s.Registry.s_name = "capture_offered_frames_total" then
              List.assoc_opt "site" s.Registry.s_labels
            else None)
          snap
      in
      List.iter
        (fun site ->
          let l = [ ("site", site) ] in
          let offered = delta "capture_offered_frames_total" l in
          let dropped =
            delta "capture_switch_dropped_frames_total" l
            +. delta "capture_host_dropped_frames_total" l
          in
          let v = if offered > 0.0 then dropped /. offered else 0.0 in
          record "site_drop_rate" l v)
        (List.sort_uniq compare sites);
      (* Captured bytes per second of the caller's time axis. *)
      (match Hashtbl.find_opt t.prev ("__at", []) with
      | Some prev_at when at > prev_at ->
        record "captured_bytes_per_s" []
          (delta "capture_stored_bytes_total" [] /. (at -. prev_at))
      | _ -> ());
      (* Pool busy fraction over the wall-clock delta. *)
      let domains =
        List.filter_map
          (fun (s : Registry.sample) ->
            if s.Registry.s_name = "pool_domain_busy_seconds_total" then
              List.assoc_opt "domain" s.Registry.s_labels
            else None)
          snap
      in
      let domains = List.sort_uniq compare domains in
      (match domains with
      | [] -> ()
      | _ ->
        let busy =
          List.fold_left
            (fun acc d ->
              acc +. delta "pool_domain_busy_seconds_total" [ ("domain", d) ])
            0.0 domains
        in
        let wall_dt = wall -. t.prev_wall in
        if wall_dt > 0.0 then
          record "pool_busy_fraction" []
            (Float.min 1.0
               (busy /. (wall_dt *. float_of_int (List.length domains)))));
      (* Occasion outcome counts (the Fig.-10 series, per collect). *)
      List.iter
        (fun outcome ->
          let l = [ ("outcome", outcome) ] in
          record "occasion_outcome_count" l (delta "occasion_sites_total" l))
        [ "success"; "degraded"; "failed"; "incomplete" ];
      (* Flow-cache hit rate over this round's digest lookups. *)
      let cache_hits = delta "flow_cache_hits_total" [] in
      let cache_misses = delta "flow_cache_misses_total" [] in
      if cache_hits +. cache_misses > 0.0 then
        record "flow_cache_hit_rate" []
          (cache_hits /. (cache_hits +. cache_misses));
      (* Queue-wait p99 from the delta histogram. *)
      let qw_key = ("pool_queue_wait_seconds", []) in
      let cur_bins =
        List.find_map
          (fun (s : Registry.sample) ->
            match (s.Registry.s_name, s.Registry.s_value) with
            | "pool_queue_wait_seconds", Registry.Histogram h ->
              Some (bins_of_buckets h.Registry.h_buckets)
            | _ -> None)
          snap
      in
      (match cur_bins with
      | None -> ()
      | Some bins ->
        let prev_bins =
          Option.value ~default:[] (Hashtbl.find_opt t.prev_bins qw_key)
        in
        let deltas =
          List.map
            (fun (bound, bin) ->
              let before =
                Option.value ~default:0 (List.assoc_opt bound prev_bins)
              in
              (bound, max 0 (bin - before)))
            bins
        in
        let v = Option.value ~default:0.0 (quantile_of_bins 0.99 deltas) in
        record "pool_queue_wait_p99" [] v);
      (* Loss-attribution ledger series.  One point per side of the
         conservation identity per collect, so the invariant stays
         checkable from persisted history alone: per (site, at),
         ledger_offered_frames = ledger_stored_frames +
         Σ loss_attributed_frames{cause} (untouched cells pushed no
         point and contribute zero; downsampled buckets are
         sum-preserving, so the identity survives compaction too). *)
      let ledger_sites =
        List.filter_map
          (fun (s : Registry.sample) ->
            if s.Registry.s_name = "ledger_offered_frames_total" then
              List.assoc_opt "site" s.Registry.s_labels
            else None)
          snap
      in
      List.iter
        (fun site ->
          let l = [ ("site", site) ] in
          let offered = delta "ledger_offered_frames_total" l in
          if offered > 0.0 then begin
            record "ledger_offered_frames" l offered;
            record "ledger_offered_bytes" l
              (delta "ledger_offered_bytes_total" l);
            record "ledger_stored_frames" l
              (delta "ledger_stored_frames_total" l);
            record "ledger_stored_bytes" l
              (delta "ledger_stored_bytes_total" l)
          end)
        (List.sort_uniq compare ledger_sites);
      List.iter
        (fun (s : Registry.sample) ->
          if s.Registry.s_name = "ledger_attributed_frames_total" then begin
            let l = s.Registry.s_labels in
            let frames = delta "ledger_attributed_frames_total" l in
            let bytes = delta "ledger_attributed_bytes_total" l in
            if frames <> 0.0 || bytes <> 0.0 then begin
              record "loss_attributed_frames" l frames;
              record "loss_attributed_bytes" l bytes
            end
          end)
        snap
    end;
    (* Refresh the baseline for the next collect. *)
    Hashtbl.reset t.prev;
    Hashtbl.reset t.prev_bins;
    List.iter
      (fun (s : Registry.sample) ->
        match s.Registry.s_value with
        | Registry.Counter v | Registry.Gauge v ->
          Hashtbl.replace t.prev (s.Registry.s_name, s.Registry.s_labels) v
        | Registry.Histogram h ->
          Hashtbl.replace t.prev_bins
            (s.Registry.s_name, s.Registry.s_labels)
            (bins_of_buckets h.Registry.h_buckets))
      snap;
    Hashtbl.replace t.prev ("__at", []) at;
    t.prev_wall <- wall;
    t.rounds <- t.rounds + 1;
    List.rev !pushed

  let collect t ~at reg = ignore (collect_points t ~at reg)
  let collections t = locked t (fun () -> t.rounds)

  let series t =
    let l = locked t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.tbl []) in
    List.sort
      (fun a b ->
        match compare a.s_name b.s_name with
        | 0 -> compare a.s_labels b.s_labels
        | c -> c)
      l

  let find t ?(labels = []) name =
    let labels = List.sort compare labels in
    locked t (fun () -> Hashtbl.find_opt t.tbl (name, labels))

  let to_json t =
    Export.Json.Obj
      [
        ( "series",
          Export.Json.Arr
            (List.map
               (fun s ->
                 Export.Json.Obj
                   ([ ("name", Export.Json.Str s.s_name) ]
                   @ (match s.s_labels with
                     | [] -> []
                     | ls ->
                       [
                         ( "labels",
                           Export.Json.Obj
                             (List.map (fun (k, v) -> (k, Export.Json.Str v)) ls)
                         );
                       ])
                   @ [
                       ( "points",
                         Export.Json.Arr
                           (List.map
                              (fun p ->
                                Export.Json.Obj
                                  [
                                    ("at", Export.Json.Num p.at);
                                    ("value", Export.Json.Num p.value);
                                  ])
                              (points s)) );
                     ]))
               (series t)) );
      ]
end
