(* The /series.json endpoint: filterable, history-backed.

   Lives in obs (rather than the service binary) so the exact handler —
   parameter validation included — is exercised by the socket smoke
   tests.  The endpoint unifies two sources: the collector's rolling
   in-memory windows (authoritative for the span they still retain) and
   the on-disk {!Tsdb} history (raw points and downsampled buckets
   older than what memory holds), filtered by [?since=]/[?until=]/
   [?name=]/[?label=k=v] query parameters.  Malformed parameters are
   answered with 400. *)

module J = Export.Json

let json_response j =
  Http.response ~content_type:"application/json" (J.to_string j ^ "\n")

(* Every [?label=k=v] pair as a required-label predicate. *)
let label_params req =
  List.fold_left
    (fun acc (k, v) ->
      match acc with
      | Error _ -> acc
      | Ok ls ->
        if k <> "label" then Ok ls
        else
          (match String.index_opt v '=' with
          | Some e when e > 0 ->
            Ok
              ((String.sub v 0 e, String.sub v (e + 1) (String.length v - e - 1))
              :: ls)
          | _ ->
            Error
              (Printf.sprintf "malformed label=%S (expected label=key=value)" v)))
    (Ok []) req.Http.query
  |> Result.map List.rev

let point_json at value = J.Obj [ ("at", J.Num at); ("value", J.Num value) ]

(* A downsampled bucket renders as its last raw point plus the
   aggregate fields, so history-unaware readers (sparkline scrapers)
   keep working on the (at, value) shape. *)
let record_json (r : Tsdb.record) =
  if Tsdb.is_raw r then point_json r.Tsdb.t_at r.Tsdb.t_sum
  else
    J.Obj
      [
        ("at", J.Num r.Tsdb.t_last_at);
        ("value", J.Num r.Tsdb.t_last);
        ("start", J.Num r.Tsdb.t_at);
        ("res", J.Num r.Tsdb.t_res);
        ("count", J.Num (float_of_int r.Tsdb.t_count));
        ("sum", J.Num r.Tsdb.t_sum);
        ("min", J.Num r.Tsdb.t_min);
        ("max", J.Num r.Tsdb.t_max);
      ]

let series_json ?tsdb ~collector ~since ~until ~name ~labels () =
  let keep_name n = match name with None -> true | Some x -> String.equal x n in
  let keep_labels ls =
    List.for_all (fun (k, v) -> List.assoc_opt k ls = Some v) labels
  in
  let in_range at =
    (match since with None -> true | Some s -> at >= s)
    && match until with None -> true | Some u -> at <= u
  in
  (* Memory: the collector's rolling windows (filtered), remembering
     each window's oldest retained timestamp before range-filtering. *)
  let mem =
    List.filter_map
      (fun s ->
        let n = Series.name s and ls = Series.labels s in
        if keep_name n && keep_labels ls then begin
          let pts = Series.points s in
          let oldest = match pts with p :: _ -> p.Series.at | [] -> infinity in
          Some
            ( (n, ls),
              ( oldest,
                List.filter_map
                  (fun p ->
                    if in_range p.Series.at then
                      Some (point_json p.Series.at p.Series.value)
                    else None)
                  pts ) )
        end
        else None)
      (Series.Collector.series collector)
  in
  (* History: stored records older than what memory still retains (the
     windows are authoritative for their own span — a flushed point is
     on disk {e and} in its ring until evicted). *)
  let hist =
    match tsdb with
    | None -> []
    | Some store ->
      let pred = Tsdb.predicate ?since ?until ?name ~labels () in
      List.filter_map
        (fun (n, ls, records) ->
          let cut =
            match List.assoc_opt (n, ls) mem with
            | Some (oldest, _) -> oldest
            | None -> infinity
          in
          match List.filter (fun r -> Tsdb.record_end r < cut) records with
          | [] -> None
          | kept -> Some ((n, ls), List.map record_json kept))
        (Tsdb.query_store ~pred store)
  in
  let keys = List.sort_uniq compare (List.map fst hist @ List.map fst mem) in
  J.Obj
    [
      ( "series",
        J.Arr
          (List.map
             (fun (n, ls) ->
               let h = Option.value ~default:[] (List.assoc_opt (n, ls) hist) in
               let m =
                 match List.assoc_opt (n, ls) mem with
                 | Some (_, pts) -> pts
                 | None -> []
               in
               J.Obj
                 ([ ("name", J.Str n) ]
                 @ (match ls with
                   | [] -> []
                   | ls ->
                     [
                       ( "labels",
                         J.Obj (List.map (fun (k, v) -> (k, J.Str v)) ls) );
                     ])
                 @ [ ("points", J.Arr (h @ m)) ]))
             keys) );
    ]

let ( let* ) r f =
  match r with
  | Error why -> Http.response ~status:400 (why ^ "\n")
  | Ok v -> f v

let series ?tsdb ~collector req =
  let* since = Http.float_param req "since" in
  let* until = Http.float_param req "until" in
  let* labels = label_params req in
  let name = Http.query_param req "name" in
  json_response (series_json ?tsdb ~collector ~since ~until ~name ~labels ())

(* The /lossmap.json endpoint: the loss-attribution ledger's closed
   occasions, same 400-on-malformed contract as /series.json. *)
let lossmap ?(ledger = Ledger.default) req =
  let* occasion = Http.int_param req "occasion" in
  let site = Http.query_param req "site" in
  json_response (Ledger.to_json ?site ?occasion ledger)
