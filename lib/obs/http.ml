(* Naive substring search; request heads are tiny. *)
module Str_search = struct
  let find hay needle =
    let nh = String.length hay and nn = String.length needle in
    if nn = 0 then Some 0
    else begin
      let rec go i =
        if i + nn > nh then None
        else if String.sub hay i nn = needle then Some i
        else go (i + 1)
      in
      go 0
    end
end

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
}

type response = { status : int; content_type : string; body : string }

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body =
  { status; content_type; body }

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

(* --- request parsing (pure) --- *)

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' ->
        Buffer.add_char buf ' ';
        go (i + 1)
      | '%' when i + 2 < n -> (
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code ->
          Buffer.add_char buf (Char.chr (code land 0xff));
          go (i + 3)
        | None ->
          Buffer.add_char buf '%';
          go (i + 1))
      | c ->
        Buffer.add_char buf c;
        go (i + 1))
    end
  in
  go 0;
  Buffer.contents buf

let parse_query target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some q ->
    let path = String.sub target 0 q in
    let qs = String.sub target (q + 1) (String.length target - q - 1) in
    let pairs =
      List.filter_map
        (fun kv ->
          if kv = "" then None
          else
            match String.index_opt kv '=' with
            | None -> Some (percent_decode kv, "")
            | Some e ->
              Some
                ( percent_decode (String.sub kv 0 e),
                  percent_decode
                    (String.sub kv (e + 1) (String.length kv - e - 1)) ))
        (String.split_on_char '&' qs)
    in
    (path, pairs)

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let parse_request raw =
  (* Only the head matters: everything through the first blank line. *)
  let head =
    match Str_search.find raw "\r\n\r\n" with
    | Some i -> String.sub raw 0 i
    | None -> (
      match Str_search.find raw "\n\n" with
      | Some i -> String.sub raw 0 i
      | None -> raw)
  in
  match List.map strip_cr (String.split_on_char '\n' head) with
  | [] | [ "" ] -> Error 400
  | request_line :: header_lines -> (
    match
      List.filter (fun t -> t <> "") (String.split_on_char ' ' request_line)
    with
    | [ meth; target; version ]
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
      let headers =
        List.filter_map
          (fun line ->
            match String.index_opt line ':' with
            | None -> None
            | Some c ->
              Some
                ( String.lowercase_ascii (String.trim (String.sub line 0 c)),
                  String.trim
                    (String.sub line (c + 1) (String.length line - c - 1)) ))
          header_lines
      in
      let path, query = parse_query target in
      if path = "" || path.[0] <> '/' then Error 400
      else Ok { meth = String.uppercase_ascii meth; path; query; headers }
    | _ -> Error 400)

(* --- typed query parameters --- *)

let query_param req key = List.assoc_opt key req.query

let float_param req key =
  match List.assoc_opt key req.query with
  | None -> Ok None
  | Some v -> (
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Ok (Some f)
    | _ -> Error (Printf.sprintf "malformed %s=%S (expected a finite number)" key v))

let int_param req key =
  match List.assoc_opt key req.query with
  | None -> Ok None
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "malformed %s=%S (expected an integer)" key v))

let routes table req =
  if req.meth <> "GET" && req.meth <> "HEAD" then
    response ~status:405 "method not allowed\n"
  else
    match List.assoc_opt req.path table with
    | Some handler -> handler req
    | None -> response ~status:404 "not found\n"

(* --- server --- *)

type server = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  handler : request -> response;
  max_request_bytes : int;
  stop_rd : Unix.file_descr;
  stop_wr : Unix.file_descr;
  stopped : bool Atomic.t;
  finished : bool Atomic.t; (* run has returned; sockets closed *)
}

let create ?(max_request_bytes = 8192) ?(backlog = 16) ~port handler =
  (* A scrape client that disconnects mid-response (curl Ctrl-C, RST)
     would otherwise deliver SIGPIPE on write, whose default action
     kills the whole process; with it ignored the write raises
     [Unix_error EPIPE], which the per-connection handler swallows. *)
  if Sys.os_type <> "Win32" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd backlog
   with e ->
     Unix.close fd;
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_rd, stop_wr = Unix.pipe () in
  {
    listen_fd = fd;
    bound_port;
    handler;
    max_request_bytes;
    stop_rd;
    stop_wr;
    stopped = Atomic.make false;
    finished = Atomic.make false;
  }

let port t = t.bound_port

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      if w > 0 then go (off + w)
    end
  in
  go 0

let response_string ~head_only (r : response) =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n"
      r.status (reason_phrase r.status) r.content_type (String.length r.body)
  in
  if head_only then head else head ^ r.body

(* Read the request head from [fd]: up to max_request_bytes, bounded
   wall time, stopping at the first blank line. *)
let read_head t fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    if Buffer.length buf > t.max_request_bytes then `Oversized
    else begin
      let complete s =
        Str_search.find s "\r\n\r\n" <> None || Str_search.find s "\n\n" <> None
      in
      if complete (Buffer.contents buf) then `Ok (Buffer.contents buf)
      else begin
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then `Timeout
        else begin
          match Unix.select [ fd ] [] [] remaining with
          | [], _, _ -> `Timeout
          | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> if Buffer.length buf = 0 then `Closed else `Ok (Buffer.contents buf)
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> go ())
        end
      end
    end
  in
  go ()

let handle_connection t fd =
  match read_head t fd with
  | `Closed -> ()
  | `Timeout ->
    write_all fd (response_string ~head_only:false (response ~status:408 "timeout\n"))
  | `Oversized ->
    write_all fd
      (response_string ~head_only:false
         (response ~status:431 "request head too large\n"))
  | `Ok raw -> (
    match parse_request raw with
    | Error status ->
      write_all fd
        (response_string ~head_only:false (response ~status "bad request\n"))
    | Ok req ->
      let resp =
        try t.handler req
        with _ -> response ~status:500 "internal error\n"
      in
      write_all fd (response_string ~head_only:(req.meth = "HEAD") resp))

let run t =
  let rec loop () =
    if not (Atomic.get t.stopped) then begin
      match Unix.select [ t.listen_fd; t.stop_rd ] [] [] (-1.0) with
      | ready, _, _ when List.memq t.stop_rd ready -> ()
      | ready, _, _ when List.memq t.listen_fd ready ->
        (match Unix.accept t.listen_fd with
        | fd, _ ->
          (* Mirror read_head's deadline on the write side: a client
             that never reads must not wedge write_all (and with it
             every endpoint) once the body exceeds the socket buffer.
             A timed-out write raises [Unix_error EAGAIN], aborting
             just this connection. *)
          (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
           with Unix.Unix_error _ -> ());
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () -> try handle_connection t fd with _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
      | _ -> loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.finished true;
      List.iter
        (fun fd -> try Unix.close fd with _ -> ())
        [ t.listen_fd; t.stop_rd; t.stop_wr ])
    loop

let stop t =
  if not (Atomic.exchange t.stopped true) then
    if not (Atomic.get t.finished) then
      try ignore (Unix.write t.stop_wr (Bytes.of_string "x") 0 1) with _ -> ()

(* --- one-shot client --- *)

let get ?(host = "127.0.0.1") ?(timeout_s = 5.0) ~port path =
  match
    let addr = Unix.inet_addr_of_string host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
        Unix.connect fd (Unix.ADDR_INET (addr, port));
        write_all fd
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
             path host);
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        in
        drain ();
        Buffer.contents buf)
  with
  | raw -> (
    let body =
      match Str_search.find raw "\r\n\r\n" with
      | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
      | None -> ""
    in
    match String.split_on_char ' ' raw with
    | _ :: code :: _ -> (
      match int_of_string_opt code with
      | Some status -> Ok (status, body)
      | None -> Error "malformed status line")
    | _ -> Error "malformed response")
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Failure msg -> Error msg
