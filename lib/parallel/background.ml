type outcome = (unit, exn) result

type t = {
  bg_name : string;
  mutable domain : outcome Domain.t option; (* None: spawn failed or joined *)
  mutable result : outcome option;
  running_flag : bool Atomic.t;
  spawn_ok : bool;
}

let spawn ?(name = "background") f =
  let running_flag = Atomic.make false in
  match
    Domain.spawn (fun () ->
        Atomic.set running_flag true;
        let r = try Ok (f ()) with e -> Error e in
        Atomic.set running_flag false;
        r)
  with
  | d ->
    { bg_name = name; domain = Some d; result = None; running_flag;
      spawn_ok = true }
  | exception e ->
    { bg_name = name; domain = None; result = Some (Error e); running_flag;
      spawn_ok = false }

let name t = t.bg_name
let running t = Atomic.get t.running_flag
let spawned t = t.spawn_ok

let join t =
  match t.result with
  | Some r -> r
  | None -> (
    match t.domain with
    | None -> Error (Failure "Background.join: no domain")
    | Some d ->
      let r = Domain.join d in
      t.domain <- None;
      t.result <- Some r;
      r)
