(** Background-domain lifecycle for long-running services.

    The metrics exposition server ([Obs.Http.run]) is a blocking loop;
    the weekly service puts it on one extra domain with {!spawn} and
    joins it on shutdown.  Unlike {!Pool}, a background task is a
    single long-lived function, not a job queue — the wrapper just
    captures any exception so {!join} can re-surface it instead of
    killing the process from a foreign domain. *)

type t

val spawn : ?name:string -> (unit -> unit) -> t
(** Run [f] on a fresh domain.  If [Domain.spawn] itself fails (domain
    limit reached), [f] is NOT run and {!join} returns the spawn
    error — callers decide whether a missing background service is
    fatal. *)

val name : t -> string

val running : t -> bool
(** The task has started and not yet finished (best-effort flag). *)

val spawned : t -> bool
(** Whether the domain was actually created.  [false] means [f] never
    ran and {!join} will return the spawn error; callers that can fall
    back to running the work inline (e.g. the occasion pipeline) check
    this immediately after {!spawn}. *)

val join : t -> (unit, exn) result
(** Wait for the task to finish and return its outcome; idempotent
    (later calls return the first outcome).  Callers must make the task
    return first (e.g. [Obs.Http.stop]) or this blocks forever. *)
