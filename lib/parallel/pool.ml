(* Fixed pool of worker domains draining a shared job queue.  The
   calling domain participates in every batch (it pops jobs while
   waiting), so a pool of [size] n uses n domains in total.  A pool is
   owned by one domain at a time: batches are submitted and awaited from
   the owner, never concurrently.

   Observability: every executed job credits its domain's busy-seconds
   and task counters in Obs.Registry.default ("0" is the calling
   domain, "1".. are workers), and the time a job sat in the queue
   feeds the pool_queue_wait_seconds histogram.  Jobs are chunk-sized
   (a few per domain per batch), so the per-job clock reads and cell
   updates are far off the per-packet hot path. *)

type job = unit -> unit

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* a job was enqueued, or the pool closed *)
  jobs : (float * job) Queue.t;  (* enqueue timestamp, job *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_size () = max 1 (Domain.recommended_domain_count () - 1)

let busy_counter domain =
  Obs.Registry.counter Obs.Registry.default "pool_domain_busy_seconds_total"
    ~help:"Seconds each pool domain spent executing tasks"
    ~labels:[ ("domain", string_of_int domain) ]

let tasks_counter domain =
  Obs.Registry.counter Obs.Registry.default "pool_domain_tasks_total"
    ~help:"Tasks executed per pool domain"
    ~labels:[ ("domain", string_of_int domain) ]

let queue_wait_hist =
  lazy
    (Obs.Registry.histogram Obs.Registry.default "pool_queue_wait_seconds"
       ~help:"Seconds a task waited in the pool queue before starting")

(* Run one job on [domain], crediting busy time and queue wait. *)
let run_job ~domain ~enqueued job =
  if Obs.Registry.enabled () then begin
    let t0 = Obs.Clock.now () in
    if enqueued >= 0.0 then
      Obs.Registry.observe (Lazy.force queue_wait_hist) (Float.max 0.0 (t0 -. enqueued));
    job ();
    Obs.Registry.inc (busy_counter domain) (Obs.Clock.now () -. t0);
    Obs.Registry.incr (tasks_counter domain)
  end
  else job ()

let rec worker_loop t domain =
  Mutex.lock t.lock;
  while Queue.is_empty t.jobs && not t.closed do
    Condition.wait t.work t.lock
  done;
  if Queue.is_empty t.jobs then Mutex.unlock t.lock
  else begin
    let enqueued, job = Queue.pop t.jobs in
    Mutex.unlock t.lock;
    run_job ~domain ~enqueued job;
    worker_loop t domain
  end

let create ?size () =
  let size =
    match size with
    | None -> default_size ()
    | Some s when s < 1 -> invalid_arg "Pool.create: size must be >= 1"
    | Some s -> s
  in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      jobs = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  (* Spawn [size - 1] workers; stop early (rather than fail) if the
     runtime cannot give us more domains. *)
  let workers = ref [] in
  (try
     for i = 2 to size do
       workers := Domain.spawn (fun () -> worker_loop t (i - 1)) :: !workers
     done
   with _ -> ());
  t.workers <- !workers;
  t

let sequential =
  {
    lock = Mutex.create ();
    work = Condition.create ();
    jobs = Queue.create ();
    closed = false;
    workers = [];
  }

let size t = List.length t.workers + 1

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- [];
  t.closed <- false

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run a sequential batch in the calling domain, still crediting domain
   0 so single-core runs surface busy time too. *)
let run_seq tasks =
  if Obs.Registry.enabled () then begin
    let t0 = Obs.Clock.now () in
    Array.iter (fun f -> f ()) tasks;
    Obs.Registry.inc (busy_counter 0) (Obs.Clock.now () -. t0);
    Obs.Registry.inc (tasks_counter 0) (float_of_int (Array.length tasks))
  end
  else Array.iter (fun f -> f ()) tasks

(* Run every task of a batch; tasks must not raise (callers wrap them).
   The caller helps drain the queue, then blocks until the last worker
   finishes its task. *)
let run_all t (tasks : job array) =
  match t.workers with
  | [] -> run_seq tasks
  | _ ->
    let remaining = ref (Array.length tasks) in
    let batch_done = Condition.create () in
    let wrap f () =
      f ();
      Mutex.lock t.lock;
      decr remaining;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock t.lock
    in
    let enqueue_time =
      if Obs.Registry.enabled () then Obs.Clock.now () else -1.0
    in
    Mutex.lock t.lock;
    Array.iter (fun f -> Queue.push (enqueue_time, wrap f) t.jobs) tasks;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    let rec help () =
      Mutex.lock t.lock;
      if not (Queue.is_empty t.jobs) then begin
        let enqueued, job = Queue.pop t.jobs in
        Mutex.unlock t.lock;
        run_job ~domain:0 ~enqueued job;
        help ()
      end
      else begin
        while !remaining > 0 do
          Condition.wait batch_done t.lock
        done;
        Mutex.unlock t.lock
      end
    in
    help ()

let reraise_first results n =
  let rec scan i =
    if i < n then begin
      (match results.(i) with Some (Error e) -> raise e | _ -> ());
      scan (i + 1)
    end
  in
  scan 0

let map_array t f arr =
  match t.workers with
  | [] -> (
    if not (Obs.Registry.enabled ()) then Array.map f arr
    else begin
      let t0 = Obs.Clock.now () in
      let out = Array.map f arr in
      Obs.Registry.inc (busy_counter 0) (Obs.Clock.now () -. t0);
      Obs.Registry.incr (tasks_counter 0);
      out
    end)
  | workers ->
    let n = Array.length arr in
    let results = Array.make n None in
    (* A few chunks per domain so a slow chunk does not serialize the
       tail of the batch. *)
    let chunk_count = (List.length workers + 1) * 4 in
    let chunk_len = max 1 ((n + chunk_count - 1) / chunk_count) in
    let tasks = ref [] in
    let lo = ref 0 in
    while !lo < n do
      let lo' = !lo in
      let hi = min n (lo' + chunk_len) in
      tasks :=
        (fun () ->
          for i = lo' to hi - 1 do
            results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e)
          done)
        :: !tasks;
      lo := hi
    done;
    run_all t (Array.of_list (List.rev !tasks));
    reraise_first results n;
    Array.map
      (function Some (Ok v) -> v | _ -> assert false (* all slots filled *))
      results

let map t f l =
  match t.workers with
  | [] ->
    if not (Obs.Registry.enabled ()) then List.map f l
    else begin
      let t0 = Obs.Clock.now () in
      let out = List.map f l in
      Obs.Registry.inc (busy_counter 0) (Obs.Clock.now () -. t0);
      Obs.Registry.incr (tasks_counter 0);
      out
    end
  | _ -> Array.to_list (map_array t f (Array.of_list l))

(* Fan an index range [0, n) out as contiguous sub-ranges — the indexed
   pcap decode partitions its record index this way, handing each worker
   a byte range of the shared capture buffer instead of materialized
   items.  Results come back in range order. *)
let map_ranges t ?range_count ~n f =
  if n < 0 then invalid_arg "Pool.map_ranges: n must be >= 0";
  let count =
    match range_count with
    | Some c when c < 1 -> invalid_arg "Pool.map_ranges: range_count must be >= 1"
    | Some c -> c
    | None -> size t * 4
  in
  let count = max 1 (min count n) in
  if n = 0 then []
  else begin
    let per = (n + count - 1) / count in
    let bounds = ref [] in
    let lo = ref 0 in
    while !lo < n do
      bounds := (!lo, min n (!lo + per)) :: !bounds;
      lo := !lo + per
    done;
    let bounds = Array.of_list (List.rev !bounds) in
    let k = Array.length bounds in
    let results = Array.make k None in
    let tasks =
      Array.mapi
        (fun i (lo, hi) ->
          fun () -> results.(i) <- Some (try Ok (f ~lo ~hi) with e -> Error e))
        bounds
    in
    run_all t tasks;
    reraise_first results k;
    Array.to_list
      (Array.map (function Some (Ok v) -> v | _ -> assert false) results)
  end

let chunk ~chunk_size l =
  if chunk_size < 1 then invalid_arg "Pool.chunk: chunk_size must be >= 1";
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = chunk_size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let fold_chunked t ?(chunk_size = 1024) ~map:fmap ~merge ~init l =
  (* The chunk boundaries depend only on [chunk_size], never on the pool
     size, and chunk results merge in chunk order: the fold is
     deterministic for pure [fmap] whatever the parallelism. *)
  let chunks = chunk ~chunk_size l in
  List.fold_left merge init (map t fmap chunks)
