(** A small fixed-size domain work pool for the offline pipeline.

    The paper's Digest/Index/Analyze stages are embarrassingly parallel
    over samples and packets; this pool runs them across OCaml 5 domains
    while keeping every result deterministic: [map] preserves input
    order, and [fold_chunked] always splits the input at the same
    (pool-size-independent) boundaries and merges chunk results in chunk
    order.  Running with a pool of size 1 therefore produces bit-identical
    output to running with any larger pool.

    The pool is built on stdlib [Domain]/[Mutex]/[Condition] (plus the
    in-tree [Obs] metrics) and degrades gracefully: a requested size of
    1 — or any failure to spawn domains — yields a pool that executes
    everything sequentially in the calling domain.

    Every executed batch reports into [Obs.Registry.default]:
    per-domain busy seconds and task counts
    ([pool_domain_busy_seconds_total{domain=...}],
    [pool_domain_tasks_total{domain=...}]; domain ["0"] is the calling
    domain) and a [pool_queue_wait_seconds] histogram of how long tasks
    sat in the shared queue.  [Obs.Registry.set_enabled false] turns all
    of it off. *)

type t

val default_size : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val create : ?size:int -> unit -> t
(** A pool with [size] total degrees of parallelism (the calling domain
    participates, so [size - 1] worker domains are spawned; default
    {!default_size}).  [size <= 1] or a [Domain.spawn] failure falls
    back toward sequential execution with however many workers exist.
    Raises [Invalid_argument] if [size < 1]. *)

val sequential : t
(** A shared always-sequential pool (no worker domains); useful as the
    default for [?pool] arguments. *)

val size : t -> int
(** Actual parallelism: worker domains + the calling domain. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]: [f] runs on chunks of the list across domains,
    results are reassembled in input order.  [f] must be pure (it runs
    concurrently and, on the sequential fallback, in arbitrary chunk
    order).  Exceptions raised by [f] are re-raised in the caller, the
    earliest (by input position) first. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Array flavour of {!map}. *)

val map_ranges : t -> ?range_count:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** [map_ranges t ~n f] splits the index range [\[0, n)] into at most
    [range_count] (default 4× the pool size) near-equal contiguous
    sub-ranges, evaluates [f ~lo ~hi] for each across the pool, and
    returns the results in range order.  This is how the indexed pcap
    decode hands each worker a byte range of a shared capture buffer.

    Range boundaries depend on [range_count]; a caller that needs output
    independent of the pool size must either fix [range_count] or (as
    the decode paths do) combine range results in a boundary-insensitive
    way — concatenation in range order, or an exact merge.  [f] must be
    pure; exceptions are re-raised in the caller, earliest range first. *)

val fold_chunked :
  t ->
  ?chunk_size:int ->
  map:('a list -> 'b) ->
  merge:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
(** [fold_chunked t ~chunk_size ~map ~merge ~init l] splits [l] into
    contiguous chunks of [chunk_size] (default 1024; the split depends
    only on [chunk_size] and [l], never on the pool), applies [map] to
    every chunk in parallel, and folds the chunk results with [merge]
    left-to-right in chunk order.  Deterministic for pure [map]. *)

val chunk : chunk_size:int -> 'a list -> 'a list list
(** The contiguous chunking used by {!fold_chunked}, exposed so tests
    can lock in determinism.  Raises [Invalid_argument] if
    [chunk_size < 1]. *)

val shutdown : t -> unit
(** Join the worker domains.  The pool then executes sequentially;
    shutting down twice (or shutting down {!sequential}) is a no-op. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exceptions). *)
