(** Discrete-event simulation engine.

    A single engine owns the simulated clock and an event queue ordered
    by (time, sequence number) — ties fire in scheduling order, which
    keeps simulations deterministic.  The testbed, traffic and host
    models all run on this engine. *)

type t

val create : ?start_time:float -> unit -> t

val now : t -> float
(** Current simulated time in seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Run a callback [delay] seconds from now.  Negative delays are
    rejected. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Run a callback at an absolute time, which must not be in the past. *)

val cancel : t -> int -> unit
(** Cancel a pending event by the id from {!schedule_id}. *)

val schedule_id : t -> delay:float -> (t -> unit) -> int
(** Like {!schedule} but returns an id usable with {!cancel}. *)

val schedule_batch : t -> times:float array -> (t -> int -> unit) -> int
(** Enqueue a pre-sorted batch of events sharing one callback in a
    single operation.  [times] must be ascending absolute times with
    [times.(0)] not in the past; event [i] fires at [times.(i)] as
    [callback engine i].  The batch consumes one sequence number per
    event, exactly as the equivalent loop of {!schedule_at} calls
    would, so batched and per-event scheduling interleave and
    tie-break identically — simulations are bit-identical either way.
    Returns the first event's id; event [i] has id [result + i] and
    can be cancelled individually with {!cancel}.  An empty array is a
    no-op.  The array is owned by the engine afterwards and must not
    be mutated.

    The point is cost, not semantics: a batch of [n] events costs one
    small record and the caller's float array instead of [n] heap
    pushes, [n] event records and [n] closures. *)

val pending : t -> int
(** Number of events still queued (batched events included). *)

val executed : t -> int
(** Total events delivered (or skipped as cancelled) so far. *)

val batched_total : t -> int
(** Total events ever scheduled through {!schedule_batch}. *)

val run : ?until:float -> t -> unit
(** Drain the event queue.  With [until], stop once the next event would
    be past that time (the clock is then advanced to [until]). *)

val step : t -> bool
(** Execute the single next event; [false] if the queue was empty. *)

val every : t -> period:float -> ?until:float -> (t -> unit) -> unit
(** Run a callback periodically, starting one period from now, until the
    optional end time. *)
