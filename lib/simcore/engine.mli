(** Discrete-event simulation engine.

    A single engine owns the simulated clock and an event queue ordered
    by (time, sequence number) — ties fire in scheduling order, which
    keeps simulations deterministic.  The testbed, traffic and host
    models all run on this engine. *)

type t

val create : ?start_time:float -> unit -> t

val now : t -> float
(** Current simulated time in seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Run a callback [delay] seconds from now.  Negative delays are
    rejected. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Run a callback at an absolute time, which must not be in the past. *)

val cancel : t -> int -> unit
(** Cancel a pending event by the id from {!schedule_id}. *)

val schedule_id : t -> delay:float -> (t -> unit) -> int
(** Like {!schedule} but returns an id usable with {!cancel}. *)

val pending : t -> int
(** Number of events still queued. *)

val run : ?until:float -> t -> unit
(** Drain the event queue.  With [until], stop once the next event would
    be past that time (the clock is then advanced to [until]). *)

val step : t -> bool
(** Execute the single next event; [false] if the queue was empty. *)

val every : t -> period:float -> ?until:float -> (t -> unit) -> unit
(** Run a callback periodically, starting one period from now, until the
    optional end time. *)
