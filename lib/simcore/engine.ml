type event = { time : float; seq : int; id : int; callback : t -> unit }

and t = {
  mutable clock : float;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
  cancelled : (int, unit) Hashtbl.t;
}

let create ?(start_time = 0.0) () =
  {
    clock = start_time;
    heap = Array.make 64 { time = 0.0; seq = 0; id = 0; callback = (fun _ -> ()) };
    size = 0;
    next_seq = 0;
    cancelled = Hashtbl.create 16;
  }

let now t = t.clock

(* Min-heap ordered by (time, seq). *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let grown = Array.make (2 * t.size) ev in
    Array.blit t.heap 0 grown 0 t.size;
    t.heap <- grown
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some top
  end

let peek t = if t.size = 0 then None else Some t.heap.(0)

let schedule_id t ~delay callback =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { time = t.clock +. delay; seq; id = seq; callback };
  seq

let schedule t ~delay callback = ignore (schedule_id t ~delay callback)

let schedule_at t ~time callback =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  schedule t ~delay:(time -. t.clock) callback

let cancel t id = Hashtbl.replace t.cancelled id ()

let pending t = t.size

let step t =
  match pop t with
  | None -> false
  | Some ev ->
    t.clock <- max t.clock ev.time;
    if Hashtbl.mem t.cancelled ev.id then Hashtbl.remove t.cancelled ev.id
    else ev.callback t;
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    let continue = ref true in
    while !continue do
      match peek t with
      | Some ev when ev.time <= stop -> ignore (step t)
      | Some _ | None ->
        continue := false;
        t.clock <- max t.clock stop
    done

let every t ~period ?until callback =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let rec tick engine =
    match until with
    | Some stop when now engine > stop -> ()
    | Some _ | None ->
      callback engine;
      schedule engine ~delay:period tick
  in
  schedule t ~delay:period tick
