type event = { time : float; seq : int; id : int; callback : t -> unit }

(* A pre-sorted batch of events sharing one callback: slab presampling
   already produces arrivals in time order, so delivering them as a
   block costs one record + one float array per slab instead of one
   heap push, one event record and one closure per event.  Blocks live
   in a small secondary min-heap keyed by their head (time, seq); the
   main event heap is untouched. *)
and block = {
  bk_times : float array;  (* ascending *)
  bk_seq0 : int;  (* event i has seq (and cancel id) bk_seq0 + i *)
  bk_callback : t -> int -> unit;
  mutable bk_next : int;  (* cursor: next undelivered index *)
}

and t = {
  mutable clock : float;
  mutable heap : event array;
  mutable size : int;
  mutable blocks : block array;
  mutable n_blocks : int;
  mutable block_pending : int;  (* undelivered events across all blocks *)
  mutable next_seq : int;
  mutable executed : int;
  mutable batched : int;  (* events ever scheduled via batches *)
  cancelled : (int, unit) Hashtbl.t;
}

let dummy_block =
  { bk_times = [||]; bk_seq0 = 0; bk_callback = (fun _ _ -> ()); bk_next = 0 }

let create ?(start_time = 0.0) () =
  {
    clock = start_time;
    heap = Array.make 64 { time = 0.0; seq = 0; id = 0; callback = (fun _ -> ()) };
    size = 0;
    blocks = Array.make 4 dummy_block;
    n_blocks = 0;
    block_pending = 0;
    next_seq = 0;
    executed = 0;
    batched = 0;
    cancelled = Hashtbl.create 16;
  }

let now t = t.clock

(* Min-heap ordered by (time, seq). *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let grown = Array.make (2 * t.size) ev in
    Array.blit t.heap 0 grown 0 t.size;
    t.heap <- grown
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some top
  end

(* --- block heap, keyed by each block's head (time, seq) --- *)

let bk_head_time b = b.bk_times.(b.bk_next)
let bk_head_seq b = b.bk_seq0 + b.bk_next

let bk_before a b =
  bk_head_time a < bk_head_time b
  || (bk_head_time a = bk_head_time b && bk_head_seq a < bk_head_seq b)

let bswap t i j =
  let tmp = t.blocks.(i) in
  t.blocks.(i) <- t.blocks.(j);
  t.blocks.(j) <- tmp

let rec bsift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if bk_before t.blocks.(i) t.blocks.(parent) then begin
      bswap t i parent;
      bsift_up t parent
    end
  end

let rec bsift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.n_blocks && bk_before t.blocks.(l) t.blocks.(!smallest) then
    smallest := l;
  if r < t.n_blocks && bk_before t.blocks.(r) t.blocks.(!smallest) then
    smallest := r;
  if !smallest <> i then begin
    bswap t i !smallest;
    bsift_down t !smallest
  end

let bpush t b =
  if t.n_blocks = Array.length t.blocks then begin
    let grown = Array.make (2 * t.n_blocks) dummy_block in
    Array.blit t.blocks 0 grown 0 t.n_blocks;
    t.blocks <- grown
  end;
  t.blocks.(t.n_blocks) <- b;
  t.n_blocks <- t.n_blocks + 1;
  bsift_up t (t.n_blocks - 1)

(* Advance the top block's cursor past the event just delivered,
   dropping the block when drained. *)
let badvance t =
  let b = t.blocks.(0) in
  b.bk_next <- b.bk_next + 1;
  if b.bk_next >= Array.length b.bk_times then begin
    t.n_blocks <- t.n_blocks - 1;
    if t.n_blocks > 0 then begin
      t.blocks.(0) <- t.blocks.(t.n_blocks);
      t.blocks.(t.n_blocks) <- dummy_block;
      bsift_down t 0
    end
    else t.blocks.(0) <- dummy_block
  end
  else bsift_down t 0

let schedule_id t ~delay callback =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { time = t.clock +. delay; seq; id = seq; callback };
  seq

let schedule t ~delay callback = ignore (schedule_id t ~delay callback)

let schedule_at t ~time callback =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  schedule t ~delay:(time -. t.clock) callback

let schedule_batch t ~times callback =
  let n = Array.length times in
  if n = 0 then t.next_seq
  else begin
    if times.(0) < t.clock then
      invalid_arg "Engine.schedule_batch: time in the past";
    for i = 1 to n - 1 do
      if times.(i) < times.(i - 1) then
        invalid_arg "Engine.schedule_batch: times not ascending"
    done;
    let seq0 = t.next_seq in
    (* One seq per event, consumed up front — exactly what a loop of
       schedule_at calls would do, so batched and per-event scheduling
       assign identical (time, seq) keys and tie-break identically. *)
    t.next_seq <- seq0 + n;
    t.block_pending <- t.block_pending + n;
    t.batched <- t.batched + n;
    bpush t { bk_times = times; bk_seq0 = seq0; bk_callback = callback; bk_next = 0 };
    seq0
  end

let cancel t id = Hashtbl.replace t.cancelled id ()

let pending t = t.size + t.block_pending
let executed t = t.executed
let batched_total t = t.batched

(* The next event's (time, seq) across both queues, or None. *)
let next_key t =
  let ev = if t.size = 0 then None else Some (t.heap.(0).time, t.heap.(0).seq) in
  let bk =
    if t.n_blocks = 0 then None
    else Some (bk_head_time t.blocks.(0), bk_head_seq t.blocks.(0))
  in
  match (ev, bk) with
  | None, None -> None
  | (Some _ as k), None | None, (Some _ as k) -> k
  | Some (et, es), Some (bt, bs) ->
    if bt < et || (bt = et && bs < es) then Some (bt, bs) else Some (et, es)

let step t =
  let from_block =
    t.n_blocks > 0
    && (t.size = 0
       ||
       let b = t.blocks.(0) in
       let bt = bk_head_time b and bs = bk_head_seq b in
       let e = t.heap.(0) in
       bt < e.time || (bt = e.time && bs < e.seq))
  in
  if from_block then begin
    let b = t.blocks.(0) in
    let i = b.bk_next in
    let id = b.bk_seq0 + i in
    t.clock <- max t.clock b.bk_times.(i);
    badvance t;
    t.block_pending <- t.block_pending - 1;
    t.executed <- t.executed + 1;
    if Hashtbl.mem t.cancelled id then Hashtbl.remove t.cancelled id
    else b.bk_callback t i;
    true
  end
  else
    match pop t with
    | None -> false
    | Some ev ->
      t.clock <- max t.clock ev.time;
      t.executed <- t.executed + 1;
      if Hashtbl.mem t.cancelled ev.id then Hashtbl.remove t.cancelled ev.id
      else ev.callback t;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    let continue = ref true in
    while !continue do
      match next_key t with
      | Some (time, _) when time <= stop -> ignore (step t)
      | Some _ | None ->
        continue := false;
        t.clock <- max t.clock stop
    done

let every t ~period ?until callback =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let rec tick engine =
    match until with
    | Some stop when now engine > stop -> ()
    | Some _ | None ->
      callback engine;
      schedule engine ~delay:period tick
  in
  schedule t ~delay:period tick
