(** An append-only time-series store, one series per string key.

    This models the Prometheus database behind FABRIC's MFlib: SNMP
    pollers append (time, value) samples for each metric and queries
    read ranges or compute rates over windows. *)

type t

val create : unit -> t

val append : t -> key:string -> time:float -> float -> unit
(** Append a sample.  Times must be non-decreasing per key. *)

val keys : t -> string list
(** All series keys, sorted. *)

val length : t -> key:string -> int

val last : t -> key:string -> (float * float) option
(** Most recent (time, value) sample. *)

val range : t -> key:string -> start_time:float -> end_time:float -> (float * float) list
(** Samples with [start_time <= time <= end_time], in time order. *)

val rate : t -> key:string -> window:float -> at:float -> float option
(** Average per-second increase of a monotonically increasing counter
    over [window] seconds ending at [at].  [None] when fewer than two
    samples fall in the window.  Counter resets clamp to zero. *)

val fold : t -> key:string -> init:'a -> f:('a -> float -> float -> 'a) -> 'a
(** Fold over all samples of a series as [f acc time value]. *)
