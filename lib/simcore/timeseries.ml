type series = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

type t = (string, series) Hashtbl.t

let create () = Hashtbl.create 64

let find_or_add t key =
  match Hashtbl.find_opt t key with
  | Some s -> s
  | None ->
    let s = { times = Array.make 16 0.0; values = Array.make 16 0.0; len = 0 } in
    Hashtbl.add t key s;
    s

let append t ~key ~time value =
  let s = find_or_add t key in
  if s.len > 0 && time < s.times.(s.len - 1) then
    invalid_arg "Timeseries.append: time went backwards";
  if s.len = Array.length s.times then begin
    let cap = 2 * s.len in
    let times = Array.make cap 0.0 and values = Array.make cap 0.0 in
    Array.blit s.times 0 times 0 s.len;
    Array.blit s.values 0 values 0 s.len;
    s.times <- times;
    s.values <- values
  end;
  s.times.(s.len) <- time;
  s.values.(s.len) <- value;
  s.len <- s.len + 1

let keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let length t ~key =
  match Hashtbl.find_opt t key with Some s -> s.len | None -> 0

let last t ~key =
  match Hashtbl.find_opt t key with
  | Some s when s.len > 0 -> Some (s.times.(s.len - 1), s.values.(s.len - 1))
  | _ -> None

(* First index with time >= target, or len. *)
let lower_bound s target =
  let lo = ref 0 and hi = ref s.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.times.(mid) < target then lo := mid + 1 else hi := mid
  done;
  !lo

let range t ~key ~start_time ~end_time =
  match Hashtbl.find_opt t key with
  | None -> []
  | Some s ->
    let start_idx = lower_bound s start_time in
    let acc = ref [] in
    let i = ref start_idx in
    while !i < s.len && s.times.(!i) <= end_time do
      acc := (s.times.(!i), s.values.(!i)) :: !acc;
      incr i
    done;
    List.rev !acc

let rate t ~key ~window ~at =
  let samples = range t ~key ~start_time:(at -. window) ~end_time:at in
  match samples with
  | [] | [ _ ] -> None
  | (t0, v0) :: rest ->
    let tn, vn = List.fold_left (fun _ s -> s) (t0, v0) rest in
    if tn <= t0 then None else Some (Float.max 0.0 ((vn -. v0) /. (tn -. t0)))

let fold t ~key ~init ~f =
  match Hashtbl.find_opt t key with
  | None -> init
  | Some s ->
    let acc = ref init in
    for i = 0 to s.len - 1 do
      acc := f !acc s.times.(i) s.values.(i)
    done;
    !acc
