type site_headers = {
  hs_site : string;
  distinct_headers : int;
  deepest_stack : int;
  frames : int;
}

let header_stats pairs =
  let table : (string, (string, unit) Hashtbl.t * int ref * int ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (site, records) ->
      let tokens, deepest, frames =
        match Hashtbl.find_opt table site with
        | Some entry -> entry
        | None ->
          let entry = (Hashtbl.create 64, ref 0, ref 0) in
          Hashtbl.add table site entry;
          entry
      in
      List.iter
        (fun (r : Dissect.Acap.record) ->
          incr frames;
          let depth = List.length r.Dissect.Acap.stack in
          if depth > !deepest then deepest := depth;
          List.iter (fun tok -> Hashtbl.replace tokens tok ()) r.Dissect.Acap.stack)
        records)
    pairs;
  Hashtbl.fold
    (fun site (tokens, deepest, frames) acc ->
      {
        hs_site = site;
        distinct_headers = Hashtbl.length tokens;
        deepest_stack = !deepest;
        frames = !frames;
      }
      :: acc)
    table []
  |> List.sort (fun a b -> compare a.hs_site b.hs_site)

let occurrence records =
  let counts = Hashtbl.create 64 in
  let total = ref 0 in
  List.iter
    (fun (r : Dissect.Acap.record) ->
      incr total;
      List.iter
        (fun tok ->
          Hashtbl.replace counts tok
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts tok)))
        r.Dissect.Acap.stack)
    records;
  let total = float_of_int (max 1 !total) in
  Hashtbl.fold (fun tok c acc -> (tok, 100.0 *. float_of_int c /. total) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let occurrence_of table token =
  Option.value ~default:0.0 (List.assoc_opt token table)

let standard_size_edges =
  [| 64.0; 128.0; 256.0; 512.0; 1024.0; 1519.0; 2048.0; 9000.0 |]

let frame_size_histogram ?(edges = standard_size_edges) records =
  let h = Netcore.Histogram.create edges in
  List.iter
    (fun (r : Dissect.Acap.record) ->
      Netcore.Histogram.add h (float_of_int r.Dissect.Acap.orig_len))
    records;
  h

let jumbo_fraction records =
  match records with
  | [] -> 0.0
  | _ ->
    let jumbo =
      List.length
        (List.filter (fun (r : Dissect.Acap.record) -> r.Dissect.Acap.orig_len > 1518)
           records)
    in
    float_of_int jumbo /. float_of_int (List.length records)

let flows_per_sample samples =
  Array.of_list
    (List.map
       (fun (s : Patchwork.Capture.sample) ->
         s.Patchwork.Capture.stats.Patchwork.Capture.flow_estimate)
       samples)

let observed_flows records =
  let keys = Hashtbl.create 256 in
  List.iter
    (fun r ->
      match Dissect.Acap.flow_key r with
      | Some k -> Hashtbl.replace keys k ()
      | None -> ())
    records;
  Hashtbl.length keys

let percent_matching pred records =
  match records with
  | [] -> 0.0
  | _ ->
    100.0
    *. float_of_int (List.length (List.filter pred records))
    /. float_of_int (List.length records)

let occurrence_weighted weighted_records =
  let counts = Hashtbl.create 64 in
  let total = ref 0.0 in
  List.iter
    (fun ((r : Dissect.Acap.record), w) ->
      total := !total +. w;
      List.iter
        (fun tok ->
          Hashtbl.replace counts tok
            (w +. Option.value ~default:0.0 (Hashtbl.find_opt counts tok)))
        r.Dissect.Acap.stack)
    weighted_records;
  let total = Float.max 1e-9 !total in
  Hashtbl.fold (fun tok c acc -> (tok, 100.0 *. c /. total) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let frame_size_histogram_weighted ?(edges = standard_size_edges) weighted_records =
  let h = Netcore.Histogram.create edges in
  List.iter
    (fun ((r : Dissect.Acap.record), w) ->
      Netcore.Histogram.add h
        ~count:(max 1 (int_of_float (Float.round w)))
        (float_of_int r.Dissect.Acap.orig_len))
    weighted_records;
  h

let fraction_weighted pred weighted_records =
  let total = ref 0.0 and matched = ref 0.0 in
  List.iter
    (fun (r, w) ->
      total := !total +. w;
      if pred r then matched := !matched +. w)
    weighted_records;
  if !total <= 0.0 then 0.0 else !matched /. !total

let ipv6_percent records =
  percent_matching
    (fun (r : Dissect.Acap.record) -> List.mem "ipv6" r.Dissect.Acap.stack)
    records

let rst_percent records =
  percent_matching (fun (r : Dissect.Acap.record) -> r.Dissect.Acap.tcp_rst) records
