(** Chart construction over {!Svg} — the reproduction's counterpart of
    the paper's visualization scripts.

    Each chart takes plain data (labels and numbers) and produces a
    standalone SVG document with axes, ticks and a title.  {!Figures}
    maps profiles and experiment results onto these charts. *)

type axis = { label : string; log : bool }

val bar_chart :
  title:string ->
  x_axis:string ->
  y_axis:axis ->
  ?width:float ->
  ?height:float ->
  (string * float) list ->
  Svg.t
(** Vertical bars, one per labelled value. *)

val grouped_bar_chart :
  title:string ->
  x_axis:string ->
  y_axis:axis ->
  series:string list ->
  ?width:float ->
  ?height:float ->
  (string * float list) list ->
  Svg.t
(** Bars grouped per label, one bar per series, with a legend. *)

val stacked_bar_chart :
  title:string ->
  x_axis:string ->
  y_axis:axis ->
  series:string list ->
  ?width:float ->
  ?height:float ->
  (string * float list) list ->
  Svg.t
(** Stacked bars (Fig. 10's per-day outcome counts). *)

val line_chart :
  title:string ->
  x_axis:string ->
  y_axis:axis ->
  ?width:float ->
  ?height:float ->
  (string * (float * float) list) list ->
  Svg.t
(** One polyline per named series, with a legend. *)

val cdf_chart :
  title:string ->
  x_axis:string ->
  ?width:float ->
  ?height:float ->
  (float * float) list ->
  Svg.t
(** A CDF: y in [0,1] rendered as percentages. *)

val histogram_chart :
  title:string ->
  x_axis:string ->
  ?width:float ->
  ?height:float ->
  Netcore.Histogram.t ->
  Svg.t
(** Bars over the histogram's bins, labelled with the bin ranges. *)
