type t = {
  occasions : int;
  total_samples : int;
  total_frames : int;
  header_stats : Analyze.site_headers list;
  occurrence : (string * float) list;
  size_histogram : Netcore.Histogram.t;
  per_site_size : (string * Netcore.Histogram.t) list;
  flows_per_sample : float array;
  flow_summaries : Flows.summary list;
  ipv6_percent : float;
  jumbo_fraction : float;
}

module Builder = struct
  type site_acc = {
    tokens : (string, unit) Hashtbl.t;
    mutable deepest : int;
    mutable site_frames : int;
    size_hist : Netcore.Histogram.t;
  }

  type flow_acc = {
    mutable a_frames : float;  (* weighted, like bytes *)
    mutable a_bytes : float;
    mutable a_first : float;
    mutable a_last : float;
    mutable a_rst : bool;
  }

  type b = {
    mutable occasions : int;
    mutable samples : int;
    mutable frames : int;
    sites : (string, site_acc) Hashtbl.t;
    occurrence : (string, float) Hashtbl.t;
    mutable occurrence_total : float;  (* weighted frame count *)
    total_size_hist : Netcore.Histogram.t;
    mutable flows_per_sample : float list;
    flow_table : (string, flow_acc) Hashtbl.t;
    mutable ipv6_weight : float;
    mutable jumbo_weight : float;
    log : Patchwork.Logging.t option;
  }

  type t = b

  let obs_unweighted =
    Obs.Registry.counter Obs.Registry.default "analysis_unweighted_samples_total"
      ~help:
        "Sample groups whose materialized_fraction was <= 0 and were \
         aggregated at weight 1.0"
      ~labels:[ ("stage", "profile") ]

  let create ?log () =
    {
      occasions = 0;
      samples = 0;
      frames = 0;
      sites = Hashtbl.create 32;
      occurrence = Hashtbl.create 128;
      occurrence_total = 0.0;
      total_size_hist = Netcore.Histogram.create Analyze.standard_size_edges;
      flows_per_sample = [];
      flow_table = Hashtbl.create 4096;
      ipv6_weight = 0.0;
      jumbo_weight = 0.0;
      log;
    }

  let site_acc b site =
    match Hashtbl.find_opt b.sites site with
    | Some acc -> acc
    | None ->
      let acc =
        {
          tokens = Hashtbl.create 64;
          deepest = 0;
          site_frames = 0;
          size_hist = Netcore.Histogram.create Analyze.standard_size_edges;
        }
      in
      Hashtbl.add b.sites site acc;
      acc

  let absorb_record b site_acc weight (r : Dissect.Acap.record) =
    b.frames <- b.frames + 1;
    (* Per-site header diversity. *)
    site_acc.site_frames <- site_acc.site_frames + 1;
    let depth = List.length r.Dissect.Acap.stack in
    if depth > site_acc.deepest then site_acc.deepest <- depth;
    List.iter (fun tok -> Hashtbl.replace site_acc.tokens tok ()) r.Dissect.Acap.stack;
    (* Weighted occurrence. *)
    b.occurrence_total <- b.occurrence_total +. weight;
    List.iter
      (fun tok ->
        Hashtbl.replace b.occurrence tok
          (weight +. Option.value ~default:0.0 (Hashtbl.find_opt b.occurrence tok)))
      r.Dissect.Acap.stack;
    (* Weighted sizes.  Histograms take the exact float weight — the
       same 1/fraction the flow accounting applies — so a thinned
       sample's size distribution stays consistent with its flows
       instead of rounding each record's weight to an int. *)
    let len = float_of_int r.Dissect.Acap.orig_len in
    Netcore.Histogram.addf b.total_size_hist ~count:weight len;
    Netcore.Histogram.addf site_acc.size_hist ~count:weight len;
    if List.mem "ipv6" r.Dissect.Acap.stack then
      b.ipv6_weight <- b.ipv6_weight +. weight;
    if r.Dissect.Acap.orig_len > 1518 then b.jumbo_weight <- b.jumbo_weight +. weight;
    (* Flow aggregation. *)
    match Dissect.Acap.flow_key r with
    | None -> ()
    | Some key ->
      let acc =
        match Hashtbl.find_opt b.flow_table key with
        | Some acc -> acc
        | None ->
          let acc =
            {
              a_frames = 0.0;
              a_bytes = 0.0;
              a_first = r.Dissect.Acap.ts;
              a_last = r.Dissect.Acap.ts;
              a_rst = false;
            }
          in
          Hashtbl.add b.flow_table key acc;
          acc
      in
      (* A thinned sample under-counts frames exactly like bytes. *)
      acc.a_frames <- acc.a_frames +. weight;
      acc.a_bytes <- acc.a_bytes +. (len *. weight);
      acc.a_first <- Float.min acc.a_first r.Dissect.Acap.ts;
      acc.a_last <- Float.max acc.a_last r.Dissect.Acap.ts;
      acc.a_rst <- acc.a_rst || r.Dissect.Acap.tcp_rst

  let absorb_sample b (s : Patchwork.Capture.sample) records =
    b.samples <- b.samples + 1;
    b.flows_per_sample <-
      s.Patchwork.Capture.stats.Patchwork.Capture.flow_estimate :: b.flows_per_sample;
    let frac = s.Patchwork.Capture.materialized_fraction in
    if frac <= 0.0 && records <> [] then begin
      (* A thinned-to-nothing sample cannot be re-weighted; make the
         weight-1.0 fallback visible instead of silent. *)
      Obs.Registry.incr obs_unweighted;
      match b.log with
      | None -> ()
      | Some l ->
        Patchwork.Logging.log l ~time:s.Patchwork.Capture.sample_start
          ~level:Patchwork.Logging.Warning
          ~component:("analysis/profile/" ^ s.Patchwork.Capture.sample_site)
          (Printf.sprintf
             "sample at %.0fs has materialized_fraction %g <= 0; absorbing \
              unweighted (weight 1.0)"
             s.Patchwork.Capture.sample_start frac)
    end;
    let weight = if frac > 0.0 then 1.0 /. frac else 1.0 in
    let acc = site_acc b s.Patchwork.Capture.sample_site in
    List.iter (absorb_record b acc weight) records

  let add_sample ?pool b (s : Patchwork.Capture.sample) =
    absorb_sample b s (Digest.sample_acaps ?pool s)

  let add_report ?(pool = Parallel.Pool.sequential) ?flow_store b report =
    b.occasions <- b.occasions + 1;
    (* Digestion — the expensive step — fans out across the pool, one
       task per sample; absorption into the shared builder then runs
       sequentially in sample order, so the profile is identical to a
       sequential build. *)
    let samples = Patchwork.Coordinator.all_samples report in
    let digested =
      Parallel.Pool.map pool (fun s -> Digest.sample_acaps s) samples
    in
    List.iter2 (absorb_sample b) samples digested;
    (* Stream the occasion's flows to disk at the occasion boundary:
       each sample becomes one weighted shard group, reusing the records
       digested above, so long runs keep only aggregates (and the spill
       buffer) in memory. *)
    match flow_store with
    | None -> ()
    | Some w ->
      List.iter2
        (fun (s : Patchwork.Capture.sample) records ->
          let shard = Flows.Shard.create () in
          List.iter (Flows.Shard.add shard) records;
          Flow_store.Writer.add_shard w ~site:s.Patchwork.Capture.sample_site
            ~fraction:s.Patchwork.Capture.materialized_fraction shard)
        samples digested

  let finish b =
    let header_stats =
      Hashtbl.fold
        (fun site acc l ->
          {
            Analyze.hs_site = site;
            distinct_headers = Hashtbl.length acc.tokens;
            deepest_stack = acc.deepest;
            frames = acc.site_frames;
          }
          :: l)
        b.sites []
      |> List.sort (fun a b -> compare a.Analyze.hs_site b.Analyze.hs_site)
    in
    let occurrence =
      let total = Float.max 1e-9 b.occurrence_total in
      Hashtbl.fold
        (fun tok w acc -> (tok, 100.0 *. w /. total) :: acc)
        b.occurrence []
      (* Percent-tied tokens break on the token itself, so the order
         never depends on hash iteration. *)
      |> List.sort (fun (ta, a) (tb, b) ->
             match compare b a with 0 -> compare ta tb | c -> c)
    in
    let per_site_size =
      Hashtbl.fold (fun site acc l -> (site, acc.size_hist) :: l) b.sites []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let flow_summaries =
      Hashtbl.fold
        (fun key acc l ->
          {
            Flows.flow_key = key;
            frames = acc.a_frames;
            bytes = acc.a_bytes;
            first_seen = acc.a_first;
            last_seen = acc.a_last;
            rst_seen = acc.a_rst;
          }
          :: l)
        b.flow_table []
      (* Same comparator as Flows.merge: byte ties break on the flow
         key, honouring the shard-order-independence contract. *)
      |> List.sort Flows.compare_by_bytes
    in
    let total_weight = Float.max 1e-9 b.occurrence_total in
    {
      occasions = b.occasions;
      total_samples = b.samples;
      total_frames = b.frames;
      header_stats;
      occurrence;
      size_histogram = b.total_size_hist;
      per_site_size;
      flows_per_sample = Array.of_list (List.rev b.flows_per_sample);
      flow_summaries;
      ipv6_percent = 100.0 *. b.ipv6_weight /. total_weight;
      jumbo_fraction = b.jumbo_weight /. total_weight;
    }
end

(* Every field is pure data (floats, ints, strings, arrays, lists), so
   polymorphic equality is exact; this is what the pipelined-vs-
   sequential identity checks assert. *)
let equal (a : t) (b : t) = a = b

let of_reports ?pool reports =
  let b = Builder.create () in
  List.iter (Builder.add_report ?pool b) reports;
  Builder.finish b

let write_csv_files t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name ~header rows =
    Report.write_file (Filename.concat dir name) (Report.csv_of_rows ~header rows);
    name
  in
  let f1 =
    write "header_occurrence.csv" ~header:[ "protocol"; "percent_of_frames" ]
      (Report.occurrence_rows t.occurrence)
  in
  let f2 =
    write "site_headers.csv"
      ~header:[ "site"; "distinct_headers"; "deepest_stack"; "frames" ]
      (Report.site_header_rows t.header_stats)
  in
  let f3 =
    write "frame_sizes.csv" ~header:[ "bin"; "count"; "fraction" ]
      (Report.histogram_rows t.size_histogram)
  in
  let f4 =
    write "flows_per_sample.csv" ~header:[ "sample"; "flows" ]
      (Array.to_list
         (Array.mapi
            (fun i v -> [ string_of_int i; Printf.sprintf "%.1f" v ])
            t.flows_per_sample))
  in
  let f5 =
    write "flows.csv"
      ~header:[ "flow_key"; "frames"; "bytes"; "first_seen"; "last_seen"; "rst" ]
      (Report.flow_rows (Flows.top_n t.flow_summaries 10_000))
  in
  [ f1; f2; f3; f4; f5 ]

let pp_summary ppf t =
  Format.fprintf ppf "profile: %d occasions, %d samples, %d frames analyzed@."
    t.occasions t.total_samples t.total_frames;
  Format.fprintf ppf "  IPv6: %.2f%% of frames; jumbo: %.1f%% of frames@."
    t.ipv6_percent (100.0 *. t.jumbo_fraction);
  let show tok = Analyze.occurrence_of t.occurrence tok in
  Format.fprintf ppf
    "  occurrence: eth %.1f%%, vlan %.1f%%, mpls %.1f%%, ipv4 %.1f%%, tcp %.1f%%, udp %.1f%%@."
    (show "eth") (show "vlan") (show "mpls") (show "ipv4") (show "tcp") (show "udp");
  (match List.filter (fun s -> s.Analyze.frames > 0) t.header_stats with
  | [] -> ()
  | stats ->
    let min_d, max_d =
      List.fold_left
        (fun (lo, hi) s ->
          (min lo s.Analyze.distinct_headers, max hi s.Analyze.distinct_headers))
        (max_int, 0) stats
    in
    let min_deep, max_deep =
      List.fold_left
        (fun (lo, hi) s -> (min lo s.Analyze.deepest_stack, max hi s.Analyze.deepest_stack))
        (max_int, 0) stats
    in
    Format.fprintf ppf
      "  per-site distinct headers: %d-%d; deepest stacks: %d-%d@." min_d max_d
      min_deep max_deep);
  if Array.length t.flows_per_sample > 0 then begin
    let stats = Netcore.Dist.Summary.of_array t.flows_per_sample in
    Format.fprintf ppf "  flows per 20s sample: p50 %.0f, p90 %.0f, max %.0f@."
      stats.Netcore.Dist.Summary.p50 stats.Netcore.Dist.Summary.p90
      stats.Netcore.Dist.Summary.max
  end
