(** The Process step: CSV production.

    The paper's pipeline ends by emitting CSV files describing each
    aspect of the profile, which separate scripts turn into graphs. *)

val csv_escape : string -> string
(** Quote a field when it contains commas, quotes or newlines. *)

val csv_of_rows : header:string list -> string list list -> string

val write_file : string -> string -> unit
(** [write_file path contents]. *)

val histogram_rows : Netcore.Histogram.t -> string list list
(** Rows of (bin label, count, fraction). *)

val occurrence_rows : (string * float) list -> string list list
val site_header_rows : Analyze.site_headers list -> string list list
val flow_rows : Flows.summary list -> string list list
