(** Minimal SVG document builder.

    The paper's pipeline ends in visualization code that turns the
    Process-step CSVs into graphs; this module is the drawing substrate
    for {!Charts}.  Only the primitives the charts need are exposed.
    Coordinates are in pixels with the origin at the top-left, as in
    SVG itself. *)

type t

val create : width:float -> height:float -> t

val rect :
  t -> x:float -> y:float -> w:float -> h:float -> ?fill:string -> ?stroke:string ->
  ?opacity:float -> unit -> unit

val line :
  t -> x1:float -> y1:float -> x2:float -> y2:float -> ?stroke:string ->
  ?width:float -> ?dash:string -> unit -> unit

val polyline :
  t -> (float * float) list -> ?stroke:string -> ?width:float -> ?fill:string ->
  unit -> unit

val circle : t -> cx:float -> cy:float -> r:float -> ?fill:string -> unit -> unit

val text :
  t -> x:float -> y:float -> ?size:float -> ?anchor:[ `Start | `Middle | `End ] ->
  ?fill:string -> ?rotate:float -> string -> unit

val to_string : t -> string
(** A complete standalone SVG document. *)

val write : t -> string -> unit

val palette : int -> string
(** A categorical colour for series [i] (cycles after 8). *)
