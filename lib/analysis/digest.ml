let pcap_to_acaps ?(pool = Parallel.Pool.sequential) buf =
  (* Accepts both classic pcap and pcapng.  Parsing the container is
     cheap and stays sequential; per-packet dissection — the hot part —
     fans out over the pool.  Dissection is pure and the map preserves
     packet order, so the output is identical at any pool size. *)
  Parallel.Pool.map pool Dissect.Acap.of_packet (Packet.Pcapng.read_any buf)

let pcap_file_to_acaps ?pool path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      pcap_to_acaps ?pool buf)

let sample_acaps ?pool (sample : Patchwork.Capture.sample) =
  match sample.Patchwork.Capture.pcap with
  | Some buf -> pcap_to_acaps ?pool buf
  | None -> sample.Patchwork.Capture.acaps

let write_acap_file path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (Dissect.Acap.to_line r);
          output_char oc '\n')
        records)

let read_acap_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
          match Dissect.Acap.of_line line with
          | Ok r -> go (r :: acc)
          | Error msg -> failwith (path ^ ": " ^ msg))
      in
      go [])
