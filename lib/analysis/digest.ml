(* The indexed, zero-copy decode path.  A first sequential pass walks
   record headers only and produces an offset/length/timestamp index
   (Pcap.Reader.index / Pcapng.index); dissection then fans index ranges
   out over the pool and reads headers in place through Packet.Slice,
   so per-packet allocation is bounded by the abstract output, never by
   payload sizes. *)

let range_to_acaps buf idx ~lo ~hi =
  let rec go i acc =
    if i < lo then acc else go (i - 1) (Dissect.Acap.of_entry buf idx.(i) :: acc)
  in
  go (hi - 1) []

(* Decode counters are bumped once per capture (never per packet), so
   the instrumented fast path stays within the bench's 5%-overhead
   budget. *)
let obs_packets =
  Obs.Registry.counter Obs.Registry.default "packets_total"
    ~help:"Packets decoded by the offline digest"
    ~labels:[ ("stage", "digest") ]

let obs_capture_bytes =
  Obs.Registry.counter Obs.Registry.default "capture_bytes_total"
    ~help:"Capture-buffer bytes fed to the offline digest"

let record_decode buf idx =
  if Obs.Registry.enabled () then begin
    Obs.Registry.inc obs_packets (float_of_int (Array.length idx));
    Obs.Registry.inc obs_capture_bytes (float_of_int (Bytes.length buf))
  end

let pcap_to_acaps ?(pool = Parallel.Pool.sequential) buf =
  (* Accepts both classic pcap and pcapng.  Dissection is pure and range
     results concatenate in range order, so the output is identical at
     any pool size or range partition. *)
  let idx =
    Obs.Span.timed ~stage:"digest.index" (fun () -> Packet.Pcapng.index_any buf)
  in
  record_decode buf idx;
  Obs.Span.timed ~stage:"digest.dissect" (fun () ->
      List.concat
        (Parallel.Pool.map_ranges pool ~n:(Array.length idx)
           (range_to_acaps buf idx)))

let pcap_to_acaps_copying ?(pool = Parallel.Pool.sequential) buf =
  (* The pre-index materializing path: every packet is copied out of the
     capture buffer before dissection.  Kept as the correctness baseline
     for the sliced/fused paths (bench/decode_bench.exe and the qcheck
     equivalence property compare against it). *)
  Parallel.Pool.map pool Dissect.Acap.of_packet (Packet.Pcapng.read_any buf)

let pcap_to_flows ?(pool = Parallel.Pool.sequential) buf =
  (* Fused single pass: each index range streams its dissected records
     straight into a per-range flow shard, so live memory stays O(flows)
     instead of O(packets).  Shard merging is exact at unit weight and
     order-insensitive, hence bit-identical to aggregating the acap
     list whatever the chunking. *)
  let idx =
    Obs.Span.timed ~stage:"digest.index" (fun () -> Packet.Pcapng.index_any buf)
  in
  record_decode buf idx;
  let shards =
    Obs.Span.timed ~stage:"digest.fuse" (fun () ->
        Parallel.Pool.map_ranges pool ~n:(Array.length idx) (fun ~lo ~hi ->
            let shard = Flows.Shard.create () in
            for i = lo to hi - 1 do
              Flows.Shard.add shard (Dissect.Acap.of_entry buf idx.(i))
            done;
            shard))
  in
  Flows.merge (List.map (fun s -> (s, 1.0)) shards)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      buf)

let pcap_file_to_acaps ?pool path = pcap_to_acaps ?pool (read_file path)
let pcap_file_to_flows ?pool path = pcap_to_flows ?pool (read_file path)

let sample_acaps ?pool (sample : Patchwork.Capture.sample) =
  match sample.Patchwork.Capture.pcap with
  | Some buf -> pcap_to_acaps ?pool buf
  | None -> sample.Patchwork.Capture.acaps

let write_acap_file path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (Dissect.Acap.to_line r);
          output_char oc '\n')
        records)

let read_acap_file path =
  (* Binary mode: acap lines are written byte-for-byte, and text-mode
     CRLF translation on some platforms would corrupt the round-trip. *)
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
          match Dissect.Acap.of_line line with
          | Ok r -> go (lineno + 1) (r :: acc)
          | Error msg ->
            failwith (Printf.sprintf "%s: line %d: %s" path lineno msg))
      in
      go 1 [])
