(* The indexed, zero-copy decode path.  A first sequential pass walks
   record headers only and produces an offset/length/timestamp index
   (Pcap.Reader.index / Pcapng.index); dissection then fans index ranges
   out over the pool and reads headers in place through Packet.Slice,
   so per-packet allocation is bounded by the abstract output, never by
   payload sizes. *)

let range_to_acaps buf idx ~lo ~hi =
  let rec go i acc =
    if i < lo then acc else go (i - 1) (Dissect.Acap.of_entry buf idx.(i) :: acc)
  in
  go (hi - 1) []

(* Decode counters are bumped once per capture (never per packet), so
   the instrumented fast path stays within the bench's 5%-overhead
   budget. *)
let obs_packets =
  Obs.Registry.counter Obs.Registry.default "packets_total"
    ~help:"Packets decoded by the offline digest"
    ~labels:[ ("stage", "digest") ]

let obs_capture_bytes =
  Obs.Registry.counter Obs.Registry.default "capture_bytes_total"
    ~help:"Capture-buffer bytes fed to the offline digest"

let record_decode buf idx =
  if Obs.Registry.enabled () then begin
    Obs.Registry.inc obs_packets (float_of_int (Array.length idx));
    Obs.Registry.inc obs_capture_bytes (float_of_int (Bytes.length buf))
  end

(* --- flow cache wiring --- *)

(* Callers that cannot thread an argument through (the weekly service's
   sample digests) set a process-wide default; an explicit [?cache_bits]
   always wins.  0 disables the cache. *)
let default_cache_bits = ref 0

let set_default_cache_bits bits =
  if bits < 0 then invalid_arg "Digest.set_default_cache_bits: negative bits";
  default_cache_bits := bits

let effective_cache_bits = function
  | Some bits -> bits
  | None -> !default_cache_bits

let obs_cache_hits =
  Obs.Registry.counter Obs.Registry.default "flow_cache_hits_total"
    ~help:"Frames served from the flow cache (prefix-verified hits)"

let obs_cache_misses =
  Obs.Registry.counter Obs.Registry.default "flow_cache_misses_total"
    ~help:"Frames that took the full dissection path"

let obs_cache_collisions =
  Obs.Registry.counter Obs.Registry.default "flow_cache_collisions_total"
    ~help:"Flow-cache misses whose slot held a different flow"

let obs_cache_installs =
  Obs.Registry.counter Obs.Registry.default "flow_cache_installs_total"
    ~help:"Flow-cache entries installed from clean parses"

let obs_cache_evictions =
  Obs.Registry.counter Obs.Registry.default "flow_cache_evictions_total"
    ~help:"Flow-cache installs that overwrote an occupied slot"

(* One batch of counter bumps per capture, summed over the per-range
   caches — never per frame. *)
let record_cache_stats (stats : Dissect.Flow_cache.stats list) =
  if Obs.Registry.enabled () then begin
    let sum f = float_of_int (List.fold_left (fun acc s -> acc + f s) 0 stats) in
    Obs.Registry.inc obs_cache_hits (sum (fun s -> s.Dissect.Flow_cache.hits));
    Obs.Registry.inc obs_cache_misses (sum (fun s -> s.Dissect.Flow_cache.misses));
    Obs.Registry.inc obs_cache_collisions
      (sum (fun s -> s.Dissect.Flow_cache.collisions));
    Obs.Registry.inc obs_cache_installs
      (sum (fun s -> s.Dissect.Flow_cache.installs));
    Obs.Registry.inc obs_cache_evictions
      (sum (fun s -> s.Dissect.Flow_cache.evictions))
  end

let pcap_to_acaps ?(pool = Parallel.Pool.sequential) ?cache_bits buf =
  (* Accepts both classic pcap and pcapng.  Dissection is pure and range
     results concatenate in range order, so the output is identical at
     any pool size or range partition. *)
  let cache_bits = effective_cache_bits cache_bits in
  let idx =
    Obs.Span.timed ~stage:"digest.index" (fun () -> Packet.Pcapng.index_any buf)
  in
  record_decode buf idx;
  if cache_bits <= 0 then
    Obs.Span.timed ~stage:"digest.dissect" (fun () ->
        List.concat
          (Parallel.Pool.map_ranges pool ~n:(Array.length idx)
             (range_to_acaps buf idx)))
  else begin
    (* Cached variant: one cache per range worker, so each frame's
       record is the provably-identical hit/miss reconstruction and the
       concatenation matches the uncached run at any pool size. *)
    let results =
      Obs.Span.timed ~stage:"digest.cache" (fun () ->
          Parallel.Pool.map_ranges pool ~n:(Array.length idx) (fun ~lo ~hi ->
              let cache = Dissect.Flow_cache.create ~bits:cache_bits in
              let rec go i acc =
                if i < lo then acc
                else
                  let e = idx.(i) in
                  let slice = Packet.Pcap.Reader.slice buf e in
                  go (i - 1)
                    (Dissect.Flow_cache.record cache ~ts:e.Packet.Pcap.ts
                       ~orig_len:e.Packet.Pcap.orig_len slice
                    :: acc)
              in
              let records = go (hi - 1) [] in
              (records, Dissect.Flow_cache.stats cache)))
    in
    record_cache_stats (List.map snd results);
    List.concat_map fst results
  end

let pcap_to_acaps_copying ?(pool = Parallel.Pool.sequential) buf =
  (* The pre-index materializing path: every packet is copied out of the
     capture buffer before dissection.  Kept as the correctness baseline
     for the sliced/fused paths (bench/decode_bench.exe and the qcheck
     equivalence property compare against it). *)
  Parallel.Pool.map pool Dissect.Acap.of_packet (Packet.Pcapng.read_any buf)

(* Overlay counters, batched once per capture like the cache stats. *)
let obs_overlay_classified =
  Obs.Registry.counter Obs.Registry.default "overlay_classified_total"
    ~help:"Frames classified by the zero-alloc overlay cursor"

let obs_overlay_fallbacks =
  Obs.Registry.counter Obs.Registry.default "overlay_fallbacks_total"
    ~help:"Overlay frames deferred to the reference record dissector"

let record_overlay_stats per_range =
  if Obs.Registry.enabled () then begin
    let sum f = float_of_int (List.fold_left (fun acc x -> acc + f x) 0 per_range) in
    Obs.Registry.inc obs_overlay_classified (sum fst);
    Obs.Registry.inc obs_overlay_fallbacks (sum snd)
  end

let pcap_to_flows_record ?(pool = Parallel.Pool.sequential) ?cache_bits buf =
  (* The record-building fused pass, kept as the reference
     implementation for the overlay path below (bench baseline and
     equivalence property target). *)
  let cache_bits = effective_cache_bits cache_bits in
  let idx =
    Obs.Span.timed ~stage:"digest.index" (fun () -> Packet.Pcapng.index_any buf)
  in
  record_decode buf idx;
  if cache_bits <= 0 then begin
    let shards =
      Obs.Span.timed ~stage:"digest.fuse" (fun () ->
          Parallel.Pool.map_ranges pool ~n:(Array.length idx) (fun ~lo ~hi ->
              let shard = Flows.Shard.create () in
              for i = lo to hi - 1 do
                Flows.Shard.add shard (Dissect.Acap.of_entry buf idx.(i))
              done;
              shard))
    in
    Flows.merge (List.map (fun s -> (s, 1.0)) shards)
  end
  else begin
    (* Cached fused pass: a hit skips dissection and the record build
       entirely — the interned key, the index entry's ts/orig_len and
       the flags byte at its memoized offset go straight into the
       shard.  Per-frame accounting values are identical either way, so
       the merge result matches the uncached run bit for bit. *)
    let results =
      Obs.Span.timed ~stage:"digest.cache" (fun () ->
          Parallel.Pool.map_ranges pool ~n:(Array.length idx) (fun ~lo ~hi ->
              let cache = Dissect.Flow_cache.create ~bits:cache_bits in
              let shard = Flows.Shard.create () in
              for i = lo to hi - 1 do
                let e = idx.(i) in
                let slice = Packet.Pcap.Reader.slice buf e in
                match Dissect.Flow_cache.lookup cache slice with
                | Some ent -> (
                  match Dissect.Flow_cache.hit_flow_key ent with
                  | Some key ->
                    Flows.Shard.add_keyed shard ~key ~ts:e.Packet.Pcap.ts
                      ~bytes:e.Packet.Pcap.orig_len
                      ~rst:(Dissect.Flow_cache.hit_rst ent slice)
                  | None -> ())
                | None ->
                  Flows.Shard.add shard
                    (Dissect.Flow_cache.classify cache ~ts:e.Packet.Pcap.ts
                       ~orig_len:e.Packet.Pcap.orig_len slice)
              done;
              (shard, Dissect.Flow_cache.stats cache)))
    in
    record_cache_stats (List.map snd results);
    Flows.merge (List.map (fun (s, _) -> (s, 1.0)) results)
  end

let pcap_to_flows ?(pool = Parallel.Pool.sequential) ?cache_bits buf =
  (* Fused single pass over the zero-alloc overlay cursor: each index
     range classifies frames in place through Packet.Slice reads and
     streams key/ts/bytes/RST straight into a per-range flow shard —
     no header records, no intermediate acaps, live memory O(flows).
     The overlay agrees with the record dissector on key and RST for
     every frame (deep encapsulations fall back to it), so the merge is
     bit-identical to {!pcap_to_flows_record} at any pool size. *)
  let cache_bits = effective_cache_bits cache_bits in
  let idx =
    Obs.Span.timed ~stage:"digest.index" (fun () -> Packet.Pcapng.index_any buf)
  in
  record_decode buf idx;
  if cache_bits <= 0 then begin
    let results =
      Obs.Span.timed ~stage:"digest.overlay" (fun () ->
          Parallel.Pool.map_ranges pool ~n:(Array.length idx) (fun ~lo ~hi ->
              let ov = Dissect.Overlay.create () in
              let shard = Flows.Shard.create () in
              for i = lo to hi - 1 do
                let e = idx.(i) in
                let slice = Packet.Pcap.Reader.slice buf e in
                Dissect.Overlay.classify ov ~orig_len:e.Packet.Pcap.orig_len
                  slice;
                match Dissect.Overlay.key ov with
                | Some key ->
                  Flows.Shard.add_keyed shard ~key ~ts:e.Packet.Pcap.ts
                    ~bytes:e.Packet.Pcap.orig_len
                    ~rst:(Dissect.Overlay.rst ov)
                | None -> ()
              done;
              (shard, (Dissect.Overlay.classified ov, Dissect.Overlay.fallbacks ov))))
    in
    record_overlay_stats (List.map snd results);
    Flows.merge (List.map (fun (s, _) -> (s, 1.0)) results)
  end
  else begin
    (* Cached overlay pass: hits replay the memoized key as before; the
       miss path runs the overlay cursor instead of record dissection
       and installs a key-only entry. *)
    let results =
      Obs.Span.timed ~stage:"digest.cache" (fun () ->
          Parallel.Pool.map_ranges pool ~n:(Array.length idx) (fun ~lo ~hi ->
              let cache = Dissect.Flow_cache.create ~bits:cache_bits in
              let ov = Dissect.Overlay.create () in
              let shard = Flows.Shard.create () in
              for i = lo to hi - 1 do
                let e = idx.(i) in
                let slice = Packet.Pcap.Reader.slice buf e in
                match Dissect.Flow_cache.lookup cache slice with
                | Some ent -> (
                  match Dissect.Flow_cache.hit_flow_key ent with
                  | Some key ->
                    Flows.Shard.add_keyed shard ~key ~ts:e.Packet.Pcap.ts
                      ~bytes:e.Packet.Pcap.orig_len
                      ~rst:(Dissect.Flow_cache.hit_rst ent slice)
                  | None -> ())
                | None ->
                  Dissect.Overlay.classify ov ~orig_len:e.Packet.Pcap.orig_len
                    slice;
                  let key = Dissect.Overlay.key ov in
                  Dissect.Flow_cache.install_key cache slice
                    ~truncated:(Dissect.Overlay.truncated ov)
                    ~cacheable:(Dissect.Overlay.cacheable ov)
                    ~examined:(Dissect.Overlay.examined ov)
                    ~flags_off:(Dissect.Overlay.flags_off ov)
                    ~l3_off:(Dissect.Overlay.l3_off ov)
                    ~wire_min:(Dissect.Overlay.wire_min ov) ~key;
                  (match key with
                  | Some key ->
                    Flows.Shard.add_keyed shard ~key ~ts:e.Packet.Pcap.ts
                      ~bytes:e.Packet.Pcap.orig_len
                      ~rst:(Dissect.Overlay.rst ov)
                  | None -> ())
              done;
              ( shard,
                ( Dissect.Flow_cache.stats cache,
                  (Dissect.Overlay.classified ov, Dissect.Overlay.fallbacks ov)
                ) )))
    in
    record_cache_stats (List.map (fun (_, (st, _)) -> st) results);
    record_overlay_stats (List.map (fun (_, (_, ov)) -> ov) results);
    Flows.merge (List.map (fun (s, _) -> (s, 1.0)) results)
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      buf)

let pcap_file_to_acaps ?pool ?cache_bits path =
  pcap_to_acaps ?pool ?cache_bits (read_file path)

let pcap_file_to_flows ?pool ?cache_bits path =
  pcap_to_flows ?pool ?cache_bits (read_file path)

let sample_acaps ?pool (sample : Patchwork.Capture.sample) =
  match sample.Patchwork.Capture.pcap with
  | Some buf -> pcap_to_acaps ?pool buf
  | None -> sample.Patchwork.Capture.acaps

let write_acap_file path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (Dissect.Acap.to_line r);
          output_char oc '\n')
        records)

let read_acap_file path =
  (* Binary mode: acap lines are written byte-for-byte, and text-mode
     CRLF translation on some platforms would corrupt the round-trip. *)
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
          match Dissect.Acap.of_line line with
          | Ok r -> go (lineno + 1) (r :: acc)
          | Error msg ->
            failwith (Printf.sprintf "%s: line %d: %s" path lineno msg))
      in
      go 1 [])
