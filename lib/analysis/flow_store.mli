(** Spillable on-disk flow-record store with an occasion query engine.

    Profiles and flow tables otherwise live wholly in one heap, capping
    a run at what memory holds.  This store writes flow records in a
    compact binary, NetFlow/IPFIX-flavoured format — one weighted record
    per (flow, capture-sample group) — as sorted, mergeable {e segment}
    files, and answers time/site/proto predicates, top-k and size
    distributions by a bounded-memory k-way merge over the segments,
    never rehydrating whole occasions.

    {2 Determinism contract}

    A record stores the {e exact} weighted contribution its sample group
    would feed [Flows.merge] (the same float products, including the
    exact-integer fast path for unit fractions), tagged with a global
    group sequence number.  Segments keep records sorted by
    [(flow key, seq)] and the query engine replays contributions per key
    in ascending [seq] order — the same additions, in the same order, as
    the in-memory merge.  A query over spilled segments therefore
    returns {e byte-identical} summaries (same order, same weighted
    totals) to [Flows.aggregate] over the same groups, for any spill
    threshold and any fractions. *)

type record = {
  r_key : string;  (** flow key, as [Dissect.Acap.flow_key] renders it *)
  r_site : string;  (** capture site of the contributing sample *)
  r_seq : int;  (** global sample-group sequence (replay order) *)
  r_frames : float;  (** weighted frames contributed by this group *)
  r_bytes : float;  (** weighted bytes contributed by this group *)
  r_first : float;
  r_last : float;
  r_rst : bool;
}

exception Corrupt of string
(** Raised when a segment file fails validation (bad magic, unsupported
    version, truncation, trailing garbage, unsorted records); the
    message names the file and the failing offset/record. *)

val proto_of_key : string -> string
(** The transport token ([tcp]/[udp]/[icmp]/…) embedded in a flow key. *)

module Segment : sig
  (** One segment file: a fixed header (magic, version, record count)
      followed by length-prefixed records sorted by [(r_key, r_seq)]. *)

  val write : string -> record list -> int
  (** [write path records] sorts the records and writes one segment;
      returns the file size in bytes. *)

  type reader
  (** A streaming cursor over one segment; holds one record of state. *)

  val open_reader : string -> reader
  (** Validates the header.  @raise Corrupt on a malformed file. *)

  val next : reader -> record option
  (** The next record in [(r_key, r_seq)] order, [None] at the end.
      @raise Corrupt on truncation, trailing bytes or unsorted data. *)

  val close : reader -> unit
  val record_count : reader -> int

  val read_all : string -> (record list, string) result
  (** Whole-segment convenience read (tests, small segments). *)
end

module Writer : sig
  (** Accumulates weighted per-group records in memory and spills a
      sorted segment whenever the buffer exceeds the spill threshold, so
      peak heap stays bounded by the threshold however long the run. *)

  type t

  val create : ?spill_records:int -> dir:string -> ?prefix:string -> unit -> t
  (** Segments are written to [dir] (created if missing) as
      [<prefix>-NNNNNN.pwfs], default prefix ["flows"].  [spill_records]
      (default [200_000]) bounds the number of buffered records; the
      buffer is flushed at group boundaries, never mid-group. *)

  val add_shard : t -> site:string -> fraction:float -> Flows.Shard.t -> unit
  (** Append one capture sample's shard as the next group: each flow in
      the shard becomes one record carrying the exact weighted
      contribution [Flows.merge] would apply for [fraction].  A
      non-empty shard with [fraction <= 0.0] is stored at weight 1.0 and
      counted via [analysis_unweighted_samples_total{stage="flow_store"}]. *)

  val add_records : t -> record list -> unit
  (** Append pre-weighted records (they keep their own [r_seq]); used by
      segment compaction. *)

  val finish : t -> string list
  (** Flush the remaining buffer and return every segment path written,
      in write order.  The writer must not be used afterwards. *)

  val segments_written : t -> int
  val spilled_bytes : t -> int
end

val segments_in_dir : string -> string list
(** The [*.pwfs] files under a directory, sorted by name (write order,
    since segment names are zero-padded). *)

val merge_segments : out:string -> string list -> string
(** Compact several segments into one: records with equal
    [(r_key, r_site)] collapse into a single record (sums in [r_seq]
    order, min/max timestamps, or-ed RST, smallest [r_seq] kept).
    Exact on the integer-weight path; for fractional weights compaction
    may reassociate float additions, so compact either everything or
    nothing when bit-stable totals across compactions matter.  Returns
    [out]. *)

type predicate = {
  q_since : float option;  (** keep flows with [r_last >= since] *)
  q_until : float option;  (** keep flows with [r_first <= until] *)
  q_site : string option;  (** exact site match *)
  q_proto : string option;  (** transport token match, e.g. ["tcp"] *)
}

val no_predicate : predicate

val predicate :
  ?since:float -> ?until:float -> ?site:string -> ?proto:string -> unit ->
  predicate

type query_stats = {
  segments_scanned : int;
  records_scanned : int;  (** records read from disk *)
  records_matched : int;  (** records surviving the predicate *)
  distinct_flows : int;  (** flows after merging matched records *)
  total_frames : float;  (** weighted, over matched flows *)
  total_bytes : float;
  wall_s : float;
}

type query_result = {
  flows : Flows.summary list;
      (** sorted by {!Flows.compare_by_bytes}; all matched flows, or the
          best [top] when one was given *)
  size_hist : Netcore.Histogram.Log2.t;
      (** log2 size distribution over {e every} matched flow, even under
          [top] *)
  stats : query_stats;
}

val query : ?pred:predicate -> ?top:int -> string list -> query_result
(** Scan segment files with a k-way merge.  Memory is bounded by one
    in-flight record per segment plus the result: with [top] given, the
    result is a [top]-element selection, so a top-k query over a
    year-long store never materializes the full flow table.  Without
    [top] and without a predicate, [flows] is byte-identical to
    [Flows.aggregate] over the groups the store was written from.
    @raise Corrupt on a malformed segment. *)

val lookup : keys:string list -> string list -> (string * Flows.summary option) list
(** Targeted lookup of specific flow keys (the loss ledger's exemplar
    drill-down): one merge scan over the segments, returning per input
    key (in input order) the key's merged summary, or [None] when the
    store has no record of it.  A found summary equals the key's entry
    in a full {!query}.
    @raise Corrupt on a malformed segment. *)
