(** The Index step.

    A profile can produce dozens of gigabytes of acap data; the index
    lets later analyses locate the acap files they need without
    scanning everything.  The store lays acap files out under a root
    directory and maintains a tab-separated [index.tsv] of what each
    file covers. *)

type entry = {
  entry_site : string;
  occasion : int;
  port : int;
  start_time : float;
  record_count : int;
  path : string;  (** relative to the store root *)
}

type t

val create : dir:string -> t
(** Open (creating if needed) a store rooted at [dir]. *)

val add_sample : t -> occasion:int -> Patchwork.Capture.sample -> entry
(** Digest a sample's records into a new acap file and index it. *)

val entries : t -> entry list

val find : ?site:string -> ?occasion:int -> ?port:int -> t -> entry list
(** Entries matching every given criterion. *)

val load : t -> entry -> Dissect.Acap.record list

val save : t -> unit
(** Write [index.tsv]. *)

val open_existing : dir:string -> t
(** Load a previously saved index.  Raises [Sys_error] or [Failure] when
    the directory or index is missing/corrupt. *)
