(* On-disk flow store: sorted binary segments + k-way-merge query.

   One record = the exact weighted contribution of one flow within one
   capture-sample group, tagged with the group's global sequence number.
   Keeping contributions per group (instead of pre-merging) is what lets
   the query engine replay the same float additions, in the same order,
   as the in-memory [Flows.merge] — so spilling is invisible to results,
   bit for bit, whatever the spill threshold or sampling fractions. *)

type record = {
  r_key : string;
  r_site : string;
  r_seq : int;
  r_frames : float;
  r_bytes : float;
  r_first : float;
  r_last : float;
  r_rst : bool;
}

exception Corrupt of string

let corrupt path fmt =
  Printf.ksprintf (fun msg -> raise (Corrupt (path ^ ": " ^ msg))) fmt

(* Records sort by (key, seq); seqs are unique per group, so the order
   is total and strictly increasing within a segment. *)
let compare_record a b =
  match compare a.r_key b.r_key with 0 -> compare a.r_seq b.r_seq | c -> c

let proto_of_key key =
  match List.nth_opt (String.split_on_char '|' key) 4 with
  | Some p -> p
  | None -> "other"

(* --- observability ------------------------------------------------- *)

let obs_segments_written =
  Obs.Registry.counter Obs.Registry.default "flowstore_segments_written_total"
    ~help:"Flow-store segment files written (spills + final flushes)"

let obs_spill_bytes =
  Obs.Registry.counter Obs.Registry.default "flowstore_spill_bytes_total"
    ~help:"Bytes of flow records spilled to segment files"

let obs_records_written =
  Obs.Registry.counter Obs.Registry.default "flowstore_records_written_total"
    ~help:"Flow records written to segment files"

let obs_segments_merged =
  Obs.Registry.counter Obs.Registry.default "flowstore_segments_merged_total"
    ~help:"Segment files consumed by compactions"

let obs_queries =
  Obs.Registry.counter Obs.Registry.default "flowstore_queries_total"
    ~help:"Queries answered over stored segments"

let obs_records_scanned =
  Obs.Registry.counter Obs.Registry.default "flowstore_records_scanned_total"
    ~help:"Flow records read from segments by queries"

let obs_scan_rate =
  Obs.Registry.histogram Obs.Registry.default "flowstore_query_scan_records_per_s"
    ~help:"Per-query segment scan rate, records per second"

let obs_unweighted =
  Obs.Registry.counter Obs.Registry.default "analysis_unweighted_samples_total"
    ~help:
      "Sample groups whose materialized_fraction was <= 0 and were \
       aggregated at weight 1.0"
    ~labels:[ ("stage", "flow_store") ]

(* --- segment format ------------------------------------------------ *)

(* Header: "PWFS" magic, u16 version, u32 record count.  Record:
   u16 key_len, key, u16 site_len, site, u32 seq, 4 x f64
   (frames/bytes/first/last), u8 flags (bit 0 = RST).  Everything
   little-endian. *)

let magic = "PWFS"
let version = 1
let header_len = 10

module Segment = struct
  let add_record buf (r : record) =
    let add_str s =
      if String.length s > 0xFFFF then
        invalid_arg "Flow_store: key/site longer than 65535 bytes";
      Buffer.add_uint16_le buf (String.length s);
      Buffer.add_string buf s
    in
    add_str r.r_key;
    add_str r.r_site;
    Buffer.add_int32_le buf (Int32.of_int r.r_seq);
    Buffer.add_int64_le buf (Int64.bits_of_float r.r_frames);
    Buffer.add_int64_le buf (Int64.bits_of_float r.r_bytes);
    Buffer.add_int64_le buf (Int64.bits_of_float r.r_first);
    Buffer.add_int64_le buf (Int64.bits_of_float r.r_last);
    Buffer.add_uint8 buf (if r.r_rst then 1 else 0)

  let write path records =
    let records = List.sort compare_record records in
    let buf = Buffer.create 65536 in
    Buffer.add_string buf magic;
    Buffer.add_uint16_le buf version;
    Buffer.add_int32_le buf (Int32.of_int (List.length records));
    List.iter (add_record buf) records;
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Buffer.output_buffer oc buf);
    Buffer.length buf

  type reader = {
    path : string;
    ic : in_channel;
    count : int;
    mutable read : int;
    mutable prev : (string * int) option;  (* sortedness check *)
    mutable closed : bool;
  }

  let read_exact r n what =
    let b = Bytes.create n in
    (try really_input r.ic b 0 n
     with End_of_file ->
       corrupt r.path "truncated segment: %s cut short at record %d/%d" what
         (r.read + 1) r.count);
    b

  let open_reader path =
    let ic =
      try open_in_bin path
      with Sys_error msg -> raise (Corrupt (path ^ ": " ^ msg))
    in
    let header = Bytes.create header_len in
    (try really_input ic header 0 header_len
     with End_of_file ->
       let len = in_channel_length ic in
       close_in_noerr ic;
       corrupt path "truncated segment: %d-byte file is shorter than the header"
         len);
    let ok =
      try
        if Bytes.sub_string header 0 4 <> magic then
          corrupt path "bad magic (not a Patchwork flow segment)";
        let v = Bytes.get_uint16_le header 4 in
        if v <> version then corrupt path "unsupported segment version %d" v;
        Int32.to_int (Bytes.get_int32_le header 6)
      with e ->
        close_in_noerr ic;
        raise e
    in
    if ok < 0 then begin
      close_in_noerr ic;
      corrupt path "negative record count"
    end;
    { path; ic; count = ok; read = 0; prev = None; closed = false }

  let record_count r = r.count
  let close r =
    if not r.closed then begin
      r.closed <- true;
      close_in_noerr r.ic
    end

  let next r =
    if r.closed then None
    else if r.read >= r.count then begin
      (match input_char r.ic with
      | _ -> corrupt r.path "trailing garbage after %d records" r.count
      | exception End_of_file -> ());
      close r;
      None
    end
    else begin
      let str what =
        let len = Bytes.get_uint16_le (read_exact r 2 (what ^ " length")) 0 in
        Bytes.to_string (read_exact r len what)
      in
      let key = str "flow key" in
      let site = str "site" in
      let fixed = read_exact r 37 "record body" in
      let f64 off = Int64.float_of_bits (Bytes.get_int64_le fixed off) in
      let seq = Int32.to_int (Bytes.get_int32_le fixed 0) in
      let flags = Bytes.get_uint8 fixed 36 in
      if flags land lnot 1 <> 0 then
        corrupt r.path "invalid flags byte 0x%02x at record %d" flags (r.read + 1);
      let rec_ =
        {
          r_key = key;
          r_site = site;
          r_seq = seq;
          r_frames = f64 4;
          r_bytes = f64 12;
          r_first = f64 20;
          r_last = f64 28;
          r_rst = flags land 1 <> 0;
        }
      in
      (match r.prev with
      | Some (pk, ps)
        when compare_record
               { rec_ with r_key = pk; r_seq = ps }
               rec_
             >= 0 ->
        corrupt r.path "segment not sorted at record %d (%s/%d after %s/%d)"
          (r.read + 1) key seq pk ps
      | _ -> ());
      r.prev <- Some (key, seq);
      r.read <- r.read + 1;
      Some rec_
    end

  let read_all path =
    match
      let r = open_reader path in
      Fun.protect
        ~finally:(fun () -> close r)
        (fun () ->
          let rec go acc =
            match next r with None -> List.rev acc | Some x -> go (x :: acc)
          in
          go [])
    with
    | records -> Ok records
    | exception Corrupt msg -> Error msg
end

(* --- spill writer -------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

module Writer = struct
  type t = {
    dir : string;
    prefix : string;
    spill_records : int;
    mutable buf : record list;  (* reversed arrival order; spill sorts *)
    mutable buffered : int;
    mutable next_seq : int;
    mutable seg_index : int;
    mutable paths : string list;  (* reversed *)
    mutable bytes : int;
    mutable finished : bool;
  }

  let create ?(spill_records = 200_000) ~dir ?(prefix = "flows") () =
    if spill_records < 1 then
      invalid_arg "Flow_store.Writer.create: spill_records < 1";
    mkdir_p dir;
    {
      dir;
      prefix;
      spill_records;
      buf = [];
      buffered = 0;
      next_seq = 0;
      seg_index = 0;
      paths = [];
      bytes = 0;
      finished = false;
    }

  let check_live t what =
    if t.finished then invalid_arg ("Flow_store.Writer." ^ what ^ ": finished")

  let spill t =
    if t.buffered > 0 then begin
      Obs.Span.timed ~stage:"flowstore.spill" @@ fun () ->
      let path =
        Filename.concat t.dir (Printf.sprintf "%s-%06d.pwfs" t.prefix t.seg_index)
      in
      let size = Segment.write path t.buf in
      if Obs.Registry.enabled () then begin
        Obs.Registry.incr obs_segments_written;
        Obs.Registry.inc obs_spill_bytes (float_of_int size);
        Obs.Registry.inc obs_records_written (float_of_int t.buffered)
      end;
      t.seg_index <- t.seg_index + 1;
      t.paths <- path :: t.paths;
      t.bytes <- t.bytes + size;
      t.buf <- [];
      t.buffered <- 0
    end

  (* Spills happen at group boundaries only, so a group's records never
     straddle segments and segment seq ranges never overlap. *)
  let maybe_spill t = if t.buffered >= t.spill_records then spill t

  let add_shard t ~site ~fraction shard =
    check_live t "add_shard";
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    (* Weighting must match Flows.merge_shards operation for operation:
       the stored contribution is the very float the in-memory merge
       would add, including the exact-integer path for weight 1.0. *)
    if fraction <= 0.0 then begin
      let non_empty =
        Flows.Shard.fold shard ~init:false
          ~f:(fun _ ~key:_ ~frames:_ ~bytes:_ ~first:_ ~last:_ ~rst:_ -> true)
      in
      if non_empty then Obs.Registry.incr obs_unweighted
    end;
    let weight = if fraction > 0.0 then 1.0 /. fraction else 1.0 in
    let exact = weight = 1.0 in
    let n = ref 0 in
    t.buf <-
      Flows.Shard.fold shard ~init:t.buf
        ~f:(fun acc ~key ~frames ~bytes ~first ~last ~rst ->
          incr n;
          {
            r_key = key;
            r_site = site;
            r_seq = seq;
            r_frames =
              (if exact then float_of_int frames
               else float_of_int frames *. weight);
            r_bytes =
              (if exact then float_of_int bytes else float_of_int bytes *. weight);
            r_first = first;
            r_last = last;
            r_rst = rst;
          }
          :: acc);
    t.buffered <- t.buffered + !n;
    maybe_spill t

  let add_records t records =
    check_live t "add_records";
    List.iter
      (fun r ->
        if r.r_seq >= t.next_seq then t.next_seq <- r.r_seq + 1;
        t.buf <- r :: t.buf;
        t.buffered <- t.buffered + 1)
      records;
    maybe_spill t

  let finish t =
    check_live t "finish";
    spill t;
    t.finished <- true;
    List.rev t.paths

  let segments_written t = t.seg_index
  let spilled_bytes t = t.bytes
end

let segments_in_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".pwfs")
    |> List.sort compare
    |> List.map (Filename.concat dir)

(* --- k-way merge --------------------------------------------------- *)

(* A tiny binary min-heap over open readers, ordered by each reader's
   current head record.  One record of look-ahead per segment is the
   whole in-flight state of a scan. *)
module Heap = struct
  type entry = { mutable head : record; reader : Segment.reader }
  type t = { a : entry array; mutable n : int }

  let lt x y = compare_record x.head y.head < 0

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < h.n && lt h.a.(l) h.a.(!m) then m := l;
    if r < h.n && lt h.a.(r) h.a.(!m) then m := r;
    if !m <> i then begin
      let tmp = h.a.(i) in
      h.a.(i) <- h.a.(!m);
      h.a.(!m) <- tmp;
      sift_down h !m
    end

  let of_list entries =
    let a = Array.of_list entries in
    let h = { a; n = Array.length a } in
    for i = (h.n / 2) - 1 downto 0 do
      sift_down h i
    done;
    h

  let peek h = if h.n = 0 then None else Some h.a.(0)

  (* Advance the minimum entry to its reader's next record (dropping the
     entry when the segment is exhausted) and restore the heap. *)
  let advance_min h =
    match Segment.next h.a.(0).reader with
    | Some r ->
      h.a.(0).head <- r;
      sift_down h 0
    | None ->
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.a.(0) <- h.a.(h.n);
        sift_down h 0
      end
end

(* Stream every record of [paths] in global (key, seq) order. *)
let scan paths f =
  let readers = List.map Segment.open_reader paths in
  Fun.protect
    ~finally:(fun () -> List.iter Segment.close readers)
    (fun () ->
      let heap =
        Heap.of_list
          (List.filter_map
             (fun r ->
               match Segment.next r with
               | Some head -> Some { Heap.head; reader = r }
               | None -> None)
             readers)
      in
      let scanned = ref 0 in
      let rec go () =
        match Heap.peek heap with
        | None -> !scanned
        | Some e ->
          incr scanned;
          f e.Heap.head;
          Heap.advance_min heap;
          go ()
      in
      go ())

(* --- compaction ---------------------------------------------------- *)

(* Streaming segment writer used by compaction: the record count is
   back-patched into the header once the merge is done, so compacting
   never holds more than one key's records. *)
let merge_segments ~out paths =
  Obs.Span.timed ~stage:"flowstore.compact" @@ fun () ->
  let oc = open_out_bin out in
  let count = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let b = Buffer.create 64 in
      Buffer.add_uint16_le b version;
      Buffer.add_int32_le b 0l;
      Buffer.output_buffer oc b;
      (* Collapse equal (key, site) runs.  Records arrive in (key, seq)
         order, so per key we fold contributions site by site in seq
         order, emit the collapsed records (still sorted: each keeps its
         site's first seq) and move on. *)
      let current_key = ref None in
      let sites : (string, record) Hashtbl.t = Hashtbl.create 16 in
      let order = ref [] in
      let emit () =
        let collapsed =
          List.rev_map (fun site -> Hashtbl.find sites site) !order
          |> List.sort compare_record
        in
        List.iter
          (fun r ->
            let buf = Buffer.create 128 in
            Segment.add_record buf r;
            Buffer.output_buffer oc buf;
            incr count)
          collapsed;
        Hashtbl.reset sites;
        order := []
      in
      let absorb (r : record) =
        (match !current_key with
        | Some k when k <> r.r_key ->
          emit ();
          current_key := Some r.r_key
        | None -> current_key := Some r.r_key
        | Some _ -> ());
        match Hashtbl.find_opt sites r.r_site with
        | None ->
          Hashtbl.add sites r.r_site r;
          order := r.r_site :: !order
        | Some prev ->
          Hashtbl.replace sites r.r_site
            {
              prev with
              r_frames = prev.r_frames +. r.r_frames;
              r_bytes = prev.r_bytes +. r.r_bytes;
              r_first = Float.min prev.r_first r.r_first;
              r_last = Float.max prev.r_last r.r_last;
              r_rst = prev.r_rst || r.r_rst;
            }
      in
      let _scanned = scan paths absorb in
      if !current_key <> None then emit ();
      if Obs.Registry.enabled () then
        Obs.Registry.inc obs_segments_merged
          (float_of_int (List.length paths));
      (* Back-patch the record count. *)
      seek_out oc 6;
      let b = Buffer.create 4 in
      Buffer.add_int32_le b (Int32.of_int !count);
      Buffer.output_buffer oc b);
  out

(* --- query engine -------------------------------------------------- *)

type predicate = {
  q_since : float option;
  q_until : float option;
  q_site : string option;
  q_proto : string option;
}

let no_predicate = { q_since = None; q_until = None; q_site = None; q_proto = None }

let predicate ?since ?until ?site ?proto () =
  { q_since = since; q_until = until; q_site = site; q_proto = proto }

let matches p (r : record) =
  (match p.q_site with None -> true | Some s -> String.equal s r.r_site)
  && (match p.q_since with None -> true | Some t -> r.r_last >= t)
  && (match p.q_until with None -> true | Some t -> r.r_first <= t)
  && match p.q_proto with
     | None -> true
     | Some proto -> String.equal proto (proto_of_key r.r_key)

type query_stats = {
  segments_scanned : int;
  records_scanned : int;
  records_matched : int;
  distinct_flows : int;
  total_frames : float;
  total_bytes : float;
  wall_s : float;
}

type query_result = {
  flows : Flows.summary list;
  size_hist : Netcore.Histogram.Log2.t;
  stats : query_stats;
}

(* Per-key accumulator replaying exactly the operations of
   Flows.merge_shards (init from the first contribution, then
   add/min/max/or per contribution in seq order). *)
type acc = {
  a_key : string;
  mutable a_frames : float;
  mutable a_bytes : float;
  mutable a_first : float;
  mutable a_last : float;
  mutable a_rst : bool;
}

(* Bounded top-k selection: an insertion-sorted list of at most [k]
   summaries under the canonical comparator. *)
let insert_topk k s l =
  let rec ins = function
    | [] -> [ s ]
    | y :: tl ->
      if Flows.compare_by_bytes s y < 0 then s :: y :: tl else y :: ins tl
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | y :: tl -> y :: take (n - 1) tl
  in
  take k (ins l)

let query ?(pred = no_predicate) ?top paths =
  Obs.Span.timed ~stage:"flowstore.query" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let matched = ref 0 in
  let distinct = ref 0 in
  let total_frames = ref 0.0 in
  let total_bytes = ref 0.0 in
  let hist = Netcore.Histogram.Log2.create () in
  let all = ref [] in
  let best = ref [] in
  let cur = ref None in
  let finalize () =
    match !cur with
    | None -> ()
    | Some a ->
      cur := None;
      let s =
        {
          Flows.flow_key = a.a_key;
          frames = a.a_frames;
          bytes = a.a_bytes;
          first_seen = a.a_first;
          last_seen = a.a_last;
          rst_seen = a.a_rst;
        }
      in
      incr distinct;
      total_frames := !total_frames +. s.Flows.frames;
      total_bytes := !total_bytes +. s.Flows.bytes;
      Netcore.Histogram.Log2.add hist (Float.max 1.0 s.Flows.bytes);
      (match top with
      | None -> all := s :: !all
      | Some k -> best := insert_topk k s !best)
  in
  let on_record (r : record) =
    (match !cur with
    | Some a when not (String.equal a.a_key r.r_key) -> finalize ()
    | _ -> ());
    if matches pred r then begin
      incr matched;
      let a =
        match !cur with
        | Some a -> a
        | None ->
          let a =
            {
              a_key = r.r_key;
              a_frames = 0.0;
              a_bytes = 0.0;
              a_first = r.r_first;
              a_last = r.r_last;
              a_rst = false;
            }
          in
          cur := Some a;
          a
      in
      a.a_frames <- a.a_frames +. r.r_frames;
      a.a_bytes <- a.a_bytes +. r.r_bytes;
      a.a_first <- Float.min a.a_first r.r_first;
      a.a_last <- Float.max a.a_last r.r_last;
      a.a_rst <- a.a_rst || r.r_rst
    end
  in
  let scanned = scan paths on_record in
  finalize ();
  let wall = Unix.gettimeofday () -. t0 in
  if Obs.Registry.enabled () then begin
    Obs.Registry.incr obs_queries;
    Obs.Registry.inc obs_records_scanned (float_of_int scanned);
    if wall > 0.0 then
      Obs.Registry.observe obs_scan_rate (float_of_int scanned /. wall)
  end;
  let flows =
    match top with
    | None -> List.sort Flows.compare_by_bytes !all
    | Some _ -> !best
  in
  {
    flows;
    size_hist = hist;
    stats =
      {
        segments_scanned = List.length paths;
        records_scanned = scanned;
        records_matched = !matched;
        distinct_flows = !distinct;
        total_frames = !total_frames;
        total_bytes = !total_bytes;
        wall_s = wall;
      };
  }

(* Targeted lookup for the loss ledger's exemplar drill-down: one merge
   scan, accumulating only the wanted keys.  Same absorption as [query]
   (records arrive in (key, seq) order), so a found summary is
   byte-identical to the key's entry in a full query. *)
let lookup ~keys paths =
  Obs.Span.timed ~stage:"flowstore.lookup" @@ fun () ->
  let wanted = Hashtbl.create (List.length keys) in
  List.iter (fun k -> if not (Hashtbl.mem wanted k) then Hashtbl.add wanted k None) keys;
  let absorb (r : record) =
    if Hashtbl.mem wanted r.r_key then begin
      let a =
        match Hashtbl.find wanted r.r_key with
        | Some a -> a
        | None ->
          let a =
            {
              a_key = r.r_key;
              a_frames = 0.0;
              a_bytes = 0.0;
              a_first = r.r_first;
              a_last = r.r_last;
              a_rst = false;
            }
          in
          Hashtbl.replace wanted r.r_key (Some a);
          a
      in
      a.a_frames <- a.a_frames +. r.r_frames;
      a.a_bytes <- a.a_bytes +. r.r_bytes;
      a.a_first <- Float.min a.a_first r.r_first;
      a.a_last <- Float.max a.a_last r.r_last;
      a.a_rst <- a.a_rst || r.r_rst
    end
  in
  let scanned = scan paths absorb in
  if Obs.Registry.enabled () then begin
    Obs.Registry.incr obs_queries;
    Obs.Registry.inc obs_records_scanned (float_of_int scanned)
  end;
  List.map
    (fun k ->
      ( k,
        match Hashtbl.find_opt wanted k with
        | Some (Some a) ->
          Some
            {
              Flows.flow_key = a.a_key;
              frames = a.a_frames;
              bytes = a.a_bytes;
              first_seen = a.a_first;
              last_seen = a.a_last;
              rst_seen = a.a_rst;
            }
        | _ -> None ))
    keys
