type axis = { label : string; log : bool }

(* Plot geometry shared by every chart. *)
let margin_left = 70.0
let margin_right = 20.0
let margin_top = 40.0
let margin_bottom = 70.0

type frame = {
  svg : Svg.t;
  x0 : float;
  y0 : float;  (* bottom-left corner of the plot area *)
  plot_w : float;
  plot_h : float;
}

let make_frame ~title ~width ~height =
  let svg = Svg.create ~width ~height in
  let plot_w = width -. margin_left -. margin_right in
  let plot_h = height -. margin_top -. margin_bottom in
  Svg.text svg ~x:(width /. 2.0) ~y:20.0 ~size:14.0 ~anchor:`Middle title;
  (* Axes. *)
  let x0 = margin_left and y0 = margin_top +. plot_h in
  Svg.line svg ~x1:x0 ~y1:y0 ~x2:(x0 +. plot_w) ~y2:y0 ();
  Svg.line svg ~x1:x0 ~y1:y0 ~x2:x0 ~y2:margin_top ();
  { svg; x0; y0; plot_w; plot_h }

let nice_ceiling v =
  if v <= 0.0 then 1.0
  else begin
    let mag = 10.0 ** Float.of_int (int_of_float (Float.floor (log10 v))) in
    let n = v /. mag in
    let m = if n <= 1.0 then 1.0 else if n <= 2.0 then 2.0 else if n <= 5.0 then 5.0 else 10.0 in
    m *. mag
  end

let fmt_tick v =
  if Float.abs v >= 1e12 then Printf.sprintf "%.1fT" (v /. 1e12)
  else if Float.abs v >= 1e9 then Printf.sprintf "%.1fG" (v /. 1e9)
  else if Float.abs v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if Float.abs v >= 1e3 then Printf.sprintf "%.0fk" (v /. 1e3)
  else if Float.abs v >= 10.0 || v = 0.0 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2g" v

(* Linear or log y scaling onto the plot area. *)
let y_scaler (axis : axis) ~max_value f =
  if axis.log then begin
    let top = Float.max 10.0 (nice_ceiling max_value) in
    let lo = 1.0 in
    fun v ->
      let v = Float.max lo v in
      f.y0 -. (log (v /. lo) /. log (top /. lo) *. f.plot_h)
  end
  else begin
    let top = nice_ceiling max_value in
    fun v -> f.y0 -. (v /. top *. f.plot_h)
  end

let draw_y_ticks (axis : axis) ~max_value f =
  let scale = y_scaler axis ~max_value f in
  let top = if axis.log then Float.max 10.0 (nice_ceiling max_value) else nice_ceiling max_value in
  let ticks =
    if axis.log then begin
      let rec gen v acc = if v > top then acc else gen (v *. 10.0) (v :: acc) in
      gen 1.0 []
    end
    else List.init 5 (fun i -> top *. float_of_int (i + 1) /. 5.0)
  in
  List.iter
    (fun v ->
      let y = scale v in
      Svg.line f.svg ~x1:(f.x0 -. 4.0) ~y1:y ~x2:f.x0 ~y2:y ();
      Svg.line f.svg ~x1:f.x0 ~y1:y ~x2:(f.x0 +. f.plot_w) ~y2:y
        ~stroke:"#dddddd" ~width:0.5 ();
      Svg.text f.svg ~x:(f.x0 -. 8.0) ~y:(y +. 4.0) ~anchor:`End (fmt_tick v))
    ticks;
  Svg.text f.svg ~x:16.0
    ~y:(f.y0 -. (f.plot_h /. 2.0))
    ~anchor:`Middle ~rotate:(-90.0) axis.label;
  scale

let draw_x_label f label =
  Svg.text f.svg
    ~x:(f.x0 +. (f.plot_w /. 2.0))
    ~y:(f.y0 +. 50.0) ~anchor:`Middle label

let x_category_label f ~index ~count label =
  let slot = f.plot_w /. float_of_int (max 1 count) in
  let cx = f.x0 +. (slot *. (float_of_int index +. 0.5)) in
  if count <= 30 || index mod (count / 30 + 1) = 0 then
    Svg.text f.svg ~x:cx ~y:(f.y0 +. 14.0) ~size:9.0 ~anchor:`End ~rotate:(-45.0)
      label;
  (cx, slot)

let legend f names =
  List.iteri
    (fun i name ->
      let y = margin_top +. (14.0 *. float_of_int i) in
      let x = f.x0 +. f.plot_w -. 110.0 in
      Svg.rect f.svg ~x ~y:(y -. 8.0) ~w:10.0 ~h:10.0 ~fill:(Svg.palette i) ();
      Svg.text f.svg ~x:(x +. 14.0) ~y ~size:10.0 name)
    names

let bar_chart ~title ~x_axis ~y_axis ?(width = 720.0) ?(height = 400.0) data =
  let f = make_frame ~title ~width ~height in
  let max_value = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 data in
  let scale = draw_y_ticks y_axis ~max_value f in
  let n = List.length data in
  List.iteri
    (fun i (label, v) ->
      let cx, slot = x_category_label f ~index:i ~count:n label in
      let bar_w = slot *. 0.7 in
      let y = scale v in
      Svg.rect f.svg ~x:(cx -. (bar_w /. 2.0)) ~y ~w:bar_w ~h:(f.y0 -. y) ())
    data;
  draw_x_label f x_axis;
  f.svg

let grouped_bar_chart ~title ~x_axis ~y_axis ~series ?(width = 760.0)
    ?(height = 420.0) data =
  let f = make_frame ~title ~width ~height in
  let max_value =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      0.0 data
  in
  let scale = draw_y_ticks y_axis ~max_value f in
  let n = List.length data in
  let k = max 1 (List.length series) in
  List.iteri
    (fun i (label, vs) ->
      let cx, slot = x_category_label f ~index:i ~count:n label in
      let group_w = slot *. 0.8 in
      let bar_w = group_w /. float_of_int k in
      List.iteri
        (fun j v ->
          let x = cx -. (group_w /. 2.0) +. (bar_w *. float_of_int j) in
          let y = scale v in
          Svg.rect f.svg ~x ~y ~w:(bar_w *. 0.9) ~h:(f.y0 -. y)
            ~fill:(Svg.palette j) ())
        vs)
    data;
  legend f series;
  draw_x_label f x_axis;
  f.svg

let stacked_bar_chart ~title ~x_axis ~y_axis ~series ?(width = 860.0)
    ?(height = 420.0) data =
  let f = make_frame ~title ~width ~height in
  let max_value =
    List.fold_left
      (fun acc (_, vs) -> Float.max acc (List.fold_left ( +. ) 0.0 vs))
      0.0 data
  in
  let scale = draw_y_ticks y_axis ~max_value f in
  let n = List.length data in
  List.iteri
    (fun i (label, vs) ->
      let cx, slot = x_category_label f ~index:i ~count:n label in
      let bar_w = slot *. 0.8 in
      let acc = ref 0.0 in
      List.iteri
        (fun j v ->
          let y_bottom = scale !acc in
          acc := !acc +. v;
          let y_top = scale !acc in
          Svg.rect f.svg ~x:(cx -. (bar_w /. 2.0)) ~y:y_top ~w:bar_w
            ~h:(y_bottom -. y_top) ~fill:(Svg.palette j) ())
        vs)
    data;
  legend f series;
  draw_x_label f x_axis;
  f.svg

let line_chart ~title ~x_axis ~y_axis ?(width = 860.0) ?(height = 420.0) series_data =
  let f = make_frame ~title ~width ~height in
  let all_points = List.concat_map snd series_data in
  let max_y = List.fold_left (fun acc (_, y) -> Float.max acc y) 0.0 all_points in
  let min_x, max_x =
    List.fold_left
      (fun (lo, hi) (x, _) -> (Float.min lo x, Float.max hi x))
      (infinity, neg_infinity) all_points
  in
  let scale_y = draw_y_ticks y_axis ~max_value:max_y f in
  let span = if max_x > min_x then max_x -. min_x else 1.0 in
  let scale_x x = f.x0 +. ((x -. min_x) /. span *. f.plot_w) in
  (* A few x ticks. *)
  List.iter
    (fun frac ->
      let x = min_x +. (frac *. span) in
      let px = scale_x x in
      Svg.line f.svg ~x1:px ~y1:f.y0 ~x2:px ~y2:(f.y0 +. 4.0) ();
      Svg.text f.svg ~x:px ~y:(f.y0 +. 16.0) ~size:9.0 ~anchor:`Middle (fmt_tick x))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  List.iteri
    (fun i (_, points) ->
      let pts = List.map (fun (x, y) -> (scale_x x, scale_y y)) points in
      Svg.polyline f.svg pts ~stroke:(Svg.palette i) ())
    series_data;
  legend f (List.map fst series_data);
  draw_x_label f x_axis;
  f.svg

let cdf_chart ~title ~x_axis ?(width = 640.0) ?(height = 400.0) points =
  let f = make_frame ~title ~width ~height in
  let scale_y = draw_y_ticks { label = "CDF (%)"; log = false } ~max_value:100.0 f in
  let min_x, max_x =
    List.fold_left
      (fun (lo, hi) (x, _) -> (Float.min lo x, Float.max hi x))
      (infinity, neg_infinity) points
  in
  let span = if max_x > min_x then max_x -. min_x else 1.0 in
  let scale_x x = f.x0 +. ((x -. min_x) /. span *. f.plot_w) in
  List.iter
    (fun frac ->
      let x = min_x +. (frac *. span) in
      let px = scale_x x in
      Svg.text f.svg ~x:px ~y:(f.y0 +. 16.0) ~size:9.0 ~anchor:`Middle (fmt_tick x))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  let pts = List.map (fun (x, y) -> (scale_x x, scale_y (100.0 *. y))) points in
  Svg.polyline f.svg pts ();
  List.iter (fun (x, y) -> Svg.circle f.svg ~cx:x ~cy:y ~r:2.5 ()) pts;
  draw_x_label f x_axis;
  f.svg

let histogram_chart ~title ~x_axis ?(width = 720.0) ?(height = 400.0) hist =
  let counts = Netcore.Histogram.counts hist in
  let data =
    Array.to_list
      (Array.mapi
         (fun i c -> (Netcore.Histogram.bin_label hist i, float_of_int c))
         counts)
  in
  bar_chart ~title ~x_axis ~y_axis:{ label = "frames"; log = false } ~width ~height
    data
