(** SVG figure generation from a profile.

    Maps the analysis results onto {!Charts}, producing the graph files
    the paper's visualization stage draws from the Process-step CSVs.
    Returns the file names written. *)

val write_profile_figures : Profile.t -> dir:string -> string list
(** Emits, into [dir]:
    - [fig11_headers.svg] — distinct headers and deepest stack per site;
    - [fig12_occurrence.svg] — protocol occurrence;
    - [fig13_flows.svg] — flows per 20 s sample;
    - [fig15_sizes.svg] — aggregate frame-size distribution;
    - [fig15_jumbo_by_site.svg] — per-site jumbo share;
    - [flow_sizes.svg] — CDF of aggregated flow sizes. *)
