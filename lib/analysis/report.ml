let csv_escape field =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') field
  in
  if not needs_quote then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_of_rows ~header rows =
  let line fields = String.concat "," (List.map csv_escape fields) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let histogram_rows h =
  let counts = Netcore.Histogram.counts h in
  let fracs = Netcore.Histogram.fractions h in
  List.init (Array.length counts) (fun i ->
      [
        Netcore.Histogram.bin_label h i;
        string_of_int counts.(i);
        Printf.sprintf "%.6f" fracs.(i);
      ])

let occurrence_rows table =
  List.map (fun (tok, pct) -> [ tok; Printf.sprintf "%.4f" pct ]) table

let site_header_rows stats =
  List.map
    (fun (s : Analyze.site_headers) ->
      [
        s.Analyze.hs_site;
        string_of_int s.Analyze.distinct_headers;
        string_of_int s.Analyze.deepest_stack;
        string_of_int s.Analyze.frames;
      ])
    stats

let flow_rows summaries =
  List.map
    (fun (f : Flows.summary) ->
      [
        f.Flows.flow_key;
        (* Weighted frame estimates are integral for unthinned samples;
           keep those rows exact and readable. *)
        (if Float.is_integer f.Flows.frames then
           string_of_int (int_of_float f.Flows.frames)
         else Printf.sprintf "%.2f" f.Flows.frames);
        Printf.sprintf "%.0f" f.Flows.bytes;
        Printf.sprintf "%.3f" f.Flows.first_seen;
        Printf.sprintf "%.3f" f.Flows.last_seen;
        (if f.Flows.rst_seen then "1" else "0");
      ])
    summaries
