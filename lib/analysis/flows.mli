(** Cross-sample flow aggregation.

    Flows are classified by virtualization tags plus network- and
    transport-layer fields; because 20-second samples rarely contain
    whole flows, the paper pieces flow {e snippets} together across
    samples and aggregates their packets.  That aggregation found most
    flows to be tiny while a few reached ~100 GB.

    Aggregation shards per group (one capture sample per shard) and
    merges shards in group order, so handing it a {!Parallel.Pool}
    parallelizes the sharding without changing a single bit of the
    result. *)

type summary = {
  flow_key : string;
  frames : float;
      (** observed frames, re-weighted by sampling fraction; an exact
          integer whenever the fraction is 1.0 *)
  bytes : float;  (** observed bytes, re-weighted by sampling fraction *)
  first_seen : float;
  last_seen : float;
  rst_seen : bool;
}

val compare_by_bytes : summary -> summary -> int
(** The canonical result ordering: bytes descending, then flow key
    ascending.  Shared by the shard merge, the profile builder and the
    flow-store query engine so that byte-tied flows order identically
    everywhere, independent of hash-table iteration order. *)

module Shard : sig
  type t
  (** A mutable per-chunk accumulator of exact integer per-flow sums.
      The fused digest→flows fast path streams dissected records
      straight into one shard per index range — never materializing the
      record list — and merges the shards with {!merge}. *)

  val create : unit -> t

  val add : t -> Dissect.Acap.record -> unit
  (** Fold one record in (records without a flow key are ignored). *)

  val add_keyed : t -> key:string -> ts:float -> bytes:int -> rst:bool -> unit
  (** Fold one frame in by its precomputed flow key — the flow cache's
      hit path, which skips building the record entirely.  [add r] is
      exactly [add_keyed ~key:(flow_key r) ~ts:r.ts ~bytes:r.orig_len
      ~rst:r.tcp_rst]. *)

  val fold :
    t ->
    init:'a ->
    f:
      ('a ->
      key:string ->
      frames:int ->
      bytes:int ->
      first:float ->
      last:float ->
      rst:bool ->
      'a) ->
    'a
  (** Fold over the per-flow integer sums in unspecified (hash) order;
      callers that need a canonical order sort afterwards, as the
      flow-store segment writer does. *)
end

val merge : ?log:Patchwork.Logging.t -> (Shard.t * float) list -> summary list
(** Merge shards (each with its sample's materialized fraction) into
    summaries.  For unit fractions the merge is exact-integer and
    shard-order-insensitive, and the final ordering breaks byte ties on
    the flow key, so the output depends only on the records fed in —
    never on how they were sharded.

    A non-empty shard whose fraction is [<= 0.0] is aggregated at weight
    1.0; each such group bumps
    [analysis_unweighted_samples_total{stage="flows"}] and logs a
    warning to [log] when one is given, so thinned-to-nothing samples
    are visible rather than silently unweighted. *)

val aggregate :
  ?pool:Parallel.Pool.t ->
  ?log:Patchwork.Logging.t ->
  ?weights:(Dissect.Acap.record list * float) list ->
  Dissect.Acap.record list ->
  summary list
(** Group records by flow key.  When [weights] is given, each record
    list carries the materialized fraction of its sample and both
    observed bytes and observed frames are scaled by its inverse (a
    thinned capture under-counts both). *)

val of_samples :
  ?pool:Parallel.Pool.t ->
  ?log:Patchwork.Logging.t ->
  Patchwork.Capture.sample list ->
  summary list
(** Aggregate across samples with per-sample re-weighting. *)

val size_log_histogram : summary list -> Netcore.Histogram.Log2.t
(** Flow sizes in bytes, log2-binned. *)

val top_n : summary list -> int -> summary list
(** First [n] summaries (the largest flows, since summary lists are
    sorted by {!compare_by_bytes}); stops walking after [n] elements. *)
