(** Cross-sample flow aggregation.

    Flows are classified by virtualization tags plus network- and
    transport-layer fields; because 20-second samples rarely contain
    whole flows, the paper pieces flow {e snippets} together across
    samples and aggregates their packets.  That aggregation found most
    flows to be tiny while a few reached ~100 GB. *)

type summary = {
  flow_key : string;
  frames : int;
  bytes : float;  (** observed bytes, re-weighted by sampling fraction *)
  first_seen : float;
  last_seen : float;
  rst_seen : bool;
}

val aggregate :
  ?weights:(Dissect.Acap.record list * float) list ->
  Dissect.Acap.record list ->
  summary list
(** Group records by flow key.  When [weights] is given, each record
    list carries the materialized fraction of its sample and observed
    bytes are scaled by its inverse (a thinned capture under-counts
    bytes). *)

val of_samples : Patchwork.Capture.sample list -> summary list
(** Aggregate across samples with per-sample re-weighting. *)

val size_log_histogram : summary list -> Netcore.Histogram.Log2.t
(** Flow sizes in bytes, log2-binned. *)

val top_n : summary list -> int -> summary list
(** Largest flows by bytes. *)
