type summary = {
  flow_key : string;
  frames : int;
  bytes : float;
  first_seen : float;
  last_seen : float;
  rst_seen : bool;
}

type acc = {
  mutable a_frames : int;
  mutable a_bytes : float;
  mutable a_first : float;
  mutable a_last : float;
  mutable a_rst : bool;
}

let aggregate_weighted groups =
  let table : (string, acc) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (records, fraction) ->
      let weight = if fraction > 0.0 then 1.0 /. fraction else 1.0 in
      List.iter
        (fun (r : Dissect.Acap.record) ->
          match Dissect.Acap.flow_key r with
          | None -> ()
          | Some key ->
            let entry =
              match Hashtbl.find_opt table key with
              | Some e -> e
              | None ->
                let e =
                  {
                    a_frames = 0;
                    a_bytes = 0.0;
                    a_first = r.Dissect.Acap.ts;
                    a_last = r.Dissect.Acap.ts;
                    a_rst = false;
                  }
                in
                Hashtbl.add table key e;
                e
            in
            entry.a_frames <- entry.a_frames + 1;
            entry.a_bytes <-
              entry.a_bytes +. (float_of_int r.Dissect.Acap.orig_len *. weight);
            entry.a_first <- Float.min entry.a_first r.Dissect.Acap.ts;
            entry.a_last <- Float.max entry.a_last r.Dissect.Acap.ts;
            entry.a_rst <- entry.a_rst || r.Dissect.Acap.tcp_rst)
        records)
    groups;
  Hashtbl.fold
    (fun key e acc ->
      {
        flow_key = key;
        frames = e.a_frames;
        bytes = e.a_bytes;
        first_seen = e.a_first;
        last_seen = e.a_last;
        rst_seen = e.a_rst;
      }
      :: acc)
    table []
  |> List.sort (fun a b -> compare b.bytes a.bytes)

let aggregate ?weights records =
  match weights with
  | Some groups -> aggregate_weighted groups
  | None -> aggregate_weighted [ (records, 1.0) ]

let of_samples samples =
  aggregate_weighted
    (List.map
       (fun (s : Patchwork.Capture.sample) ->
         (s.Patchwork.Capture.acaps, s.Patchwork.Capture.materialized_fraction))
       samples)

let size_log_histogram summaries =
  let h = Netcore.Histogram.Log2.create () in
  List.iter (fun s -> Netcore.Histogram.Log2.add h (Float.max 1.0 s.bytes)) summaries;
  h

let top_n summaries n = List.filteri (fun i _ -> i < n) summaries
