type summary = {
  flow_key : string;
  frames : float;
  bytes : float;
  first_seen : float;
  last_seen : float;
  rst_seen : bool;
}

(* Per-group shard: plain integer sums, exact by construction.  The
   group's sampling weight is applied once at merge time, so a
   fraction of 1.0 stays on an exact-integer path end to end. *)
type shard = {
  mutable s_frames : int;
  mutable s_bytes : int;
  mutable s_first : float;
  mutable s_last : float;
  mutable s_rst : bool;
}

type acc = {
  mutable a_frames : float;
  mutable a_bytes : float;
  mutable a_first : float;
  mutable a_last : float;
  mutable a_rst : bool;
}

(* Canonical result ordering: bytes descending, flow key ascending.
   Every producer of summary lists (shard merges, the profile builder,
   the flow-store query engine) sorts with this one comparator, so
   byte-tied flows order identically everywhere regardless of hash-table
   iteration order. *)
let compare_by_bytes a b =
  match compare b.bytes a.bytes with
  | 0 -> compare a.flow_key b.flow_key
  | c -> c

module Shard = struct
  type t = (string, shard) Hashtbl.t

  let create () : t = Hashtbl.create 1024

  (* The accounting primitive shared by the record path and the flow
     cache's hit path (which brings the interned key and the fields
     read at memoized offsets, no record in between). *)
  let add_keyed (table : t) ~key ~ts ~bytes ~rst =
    let entry =
      match Hashtbl.find_opt table key with
      | Some e -> e
      | None ->
        let e =
          { s_frames = 0; s_bytes = 0; s_first = ts; s_last = ts; s_rst = false }
        in
        Hashtbl.add table key e;
        e
    in
    entry.s_frames <- entry.s_frames + 1;
    entry.s_bytes <- entry.s_bytes + bytes;
    entry.s_first <- Float.min entry.s_first ts;
    entry.s_last <- Float.max entry.s_last ts;
    entry.s_rst <- entry.s_rst || rst

  let add (table : t) (r : Dissect.Acap.record) =
    match Dissect.Acap.flow_key r with
    | None -> ()
    | Some key ->
      add_keyed table ~key ~ts:r.Dissect.Acap.ts ~bytes:r.Dissect.Acap.orig_len
        ~rst:r.Dissect.Acap.tcp_rst

  let fold (table : t) ~init ~f =
    Hashtbl.fold
      (fun key (s : shard) acc ->
        f acc ~key ~frames:s.s_frames ~bytes:s.s_bytes ~first:s.s_first
          ~last:s.s_last ~rst:s.s_rst)
      table init
end

let shard_group (records, fraction) =
  let table = Shard.create () in
  List.iter (Shard.add table) records;
  (table, fraction)

let obs_flows =
  Obs.Registry.counter Obs.Registry.default "flows_total"
    ~help:"Distinct flows produced by merges"

let obs_flow_frames =
  Obs.Registry.counter Obs.Registry.default "flow_frames_total"
    ~help:"Weighted frames aggregated into flow summaries"

let obs_flow_bytes =
  Obs.Registry.counter Obs.Registry.default "flow_bytes_total"
    ~help:"Weighted bytes aggregated into flow summaries"

let obs_unweighted =
  Obs.Registry.counter Obs.Registry.default "analysis_unweighted_samples_total"
    ~help:
      "Sample groups whose materialized_fraction was <= 0 and were \
       aggregated at weight 1.0"
    ~labels:[ ("stage", "flows") ]

(* A fraction <= 0 means the capture materialized nothing it could
   attribute a thinning rate to; treating it as weight 1.0 is the only
   safe default, but doing so silently hides thinned-to-nothing samples.
   Count every such group and, when the caller runs with a service log,
   say so out loud. *)
let warn_unweighted ?log fraction =
  Obs.Registry.incr obs_unweighted;
  match log with
  | None -> ()
  | Some l ->
    Patchwork.Logging.log l ~time:0.0 ~level:Patchwork.Logging.Warning
      ~component:"analysis/flows"
      (Printf.sprintf
         "sample group has materialized_fraction %g <= 0; aggregating \
          unweighted (weight 1.0)"
         fraction)

(* Merge shard tables in list order.  Per-key sums are exact integers
   until weighting, min/max/or are order-independent, and the final sort
   breaks byte ties on the flow key, so the result depends only on the
   multiset of records per weight — never on how they were sharded. *)
let merge_shards ?log shards =
  Obs.Span.timed ~stage:"flows.merge" @@ fun () ->
  let table : (string, acc) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun ((shard : Shard.t), fraction) ->
      if fraction <= 0.0 && Hashtbl.length shard > 0 then
        warn_unweighted ?log fraction;
      let weight = if fraction > 0.0 then 1.0 /. fraction else 1.0 in
      let exact = weight = 1.0 in
      Hashtbl.iter
        (fun key (s : shard) ->
          let entry =
            match Hashtbl.find_opt table key with
            | Some e -> e
            | None ->
              let e =
                {
                  a_frames = 0.0;
                  a_bytes = 0.0;
                  a_first = s.s_first;
                  a_last = s.s_last;
                  a_rst = false;
                }
              in
              Hashtbl.add table key e;
              e
          in
          (* A thinned capture under-counts both bytes and frames: scale
             both by the inverse materialized fraction. *)
          if exact then begin
            entry.a_frames <- entry.a_frames +. float_of_int s.s_frames;
            entry.a_bytes <- entry.a_bytes +. float_of_int s.s_bytes
          end
          else begin
            entry.a_frames <- entry.a_frames +. (float_of_int s.s_frames *. weight);
            entry.a_bytes <- entry.a_bytes +. (float_of_int s.s_bytes *. weight)
          end;
          entry.a_first <- Float.min entry.a_first s.s_first;
          entry.a_last <- Float.max entry.a_last s.s_last;
          entry.a_rst <- entry.a_rst || s.s_rst)
        shard)
    shards;
  let summaries =
    Hashtbl.fold
      (fun key e acc ->
        {
          flow_key = key;
          frames = e.a_frames;
          bytes = e.a_bytes;
          first_seen = e.a_first;
          last_seen = e.a_last;
          rst_seen = e.a_rst;
        }
        :: acc)
      table []
    |> List.sort compare_by_bytes
  in
  (* One batch of counter bumps per merge, never per record. *)
  if Obs.Registry.enabled () then begin
    Obs.Registry.inc obs_flows (float_of_int (List.length summaries));
    let frames, bytes =
      List.fold_left
        (fun (f, b) s -> (f +. s.frames, b +. s.bytes))
        (0.0, 0.0) summaries
    in
    Obs.Registry.inc obs_flow_frames frames;
    Obs.Registry.inc obs_flow_bytes bytes
  end;
  summaries

let merge = merge_shards

(* Sharding is per group (one capture sample = one shard task) and the
   merge is shard-order-insensitive, so the result is identical whatever
   the pool size — including the sequential fallback. *)
let aggregate_weighted ?(pool = Parallel.Pool.sequential) ?log groups =
  merge_shards ?log (Parallel.Pool.map pool shard_group groups)

let aggregate ?pool ?log ?weights records =
  match weights with
  | Some groups -> aggregate_weighted ?pool ?log groups
  | None -> aggregate_weighted ?pool ?log [ (records, 1.0) ]

let of_samples ?pool ?log samples =
  aggregate_weighted ?pool ?log
    (List.map
       (fun (s : Patchwork.Capture.sample) ->
         (s.Patchwork.Capture.acaps, s.Patchwork.Capture.materialized_fraction))
       samples)

let size_log_histogram summaries =
  let h = Netcore.Histogram.Log2.create () in
  List.iter (fun s -> Netcore.Histogram.Log2.add h (Float.max 1.0 s.bytes)) summaries;
  h

(* The summaries are already sorted largest-first, so taking the top n
   must stop after n elements — the query engine calls this over merged
   result sets holding every flow of a year-long run. *)
let top_n summaries n =
  let rec take acc k = function
    | x :: tl when k < n -> take (x :: acc) (k + 1) tl
    | _ -> List.rev acc
  in
  take [] 0 summaries
