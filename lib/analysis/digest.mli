(** The Digest step: raw captures to abstract captures.

    Applies the protocol dissectors to every frame of a pcap and keeps
    only the abstract header stack plus timing/size metadata — the most
    expensive step of the paper's offline pipeline ("most of this time
    is taken up by Wireshark's protocol dissectors"). *)

val pcap_to_acaps : ?pool:Parallel.Pool.t -> bytes -> Dissect.Acap.record list
(** Dissect every packet of an in-memory capture (classic pcap or
    pcapng, detected from the magic number).  With a pool, per-packet
    dissection runs across domains; record order (and content) is
    identical to the sequential run. *)

val pcap_file_to_acaps : ?pool:Parallel.Pool.t -> string -> Dissect.Acap.record list

val sample_acaps :
  ?pool:Parallel.Pool.t -> Patchwork.Capture.sample -> Dissect.Acap.record list
(** The abstract records of a sample: digested from its pcap bytes when
    it carries them (validating the full pipeline), else the records the
    capture already abstracted in-line. *)

val write_acap_file : string -> Dissect.Acap.record list -> unit
(** One record per line ({!Dissect.Acap.to_line}). *)

val read_acap_file : string -> Dissect.Acap.record list
(** Raises [Failure] on malformed lines. *)
