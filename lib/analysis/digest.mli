(** The Digest step: raw captures to abstract captures.

    Applies the protocol dissectors to every frame of a pcap and keeps
    only the abstract header stack plus timing/size metadata — the most
    expensive step of the paper's offline pipeline ("most of this time
    is taken up by Wireshark's protocol dissectors"). *)

val pcap_to_acaps :
  ?pool:Parallel.Pool.t -> ?cache_bits:int -> bytes -> Dissect.Acap.record list
(** Dissect every packet of an in-memory capture (classic pcap or
    pcapng, detected from the magic number) through the indexed,
    zero-copy decode: record headers are walked once to build an
    offset/length index, then index ranges are dissected in parallel as
    {!Packet.Slice} views of the shared buffer — packet payloads are
    never copied.  Record order (and content) is identical to the
    sequential, copying run at any pool size.

    [cache_bits > 0] routes each range worker through its own
    {!Dissect.Flow_cache} with [2^cache_bits] slots: frames of
    already-seen flows skip dissection and replay the memoized
    classification.  Records are bit-identical to the uncached run at
    any pool size; only speed changes.  Defaults to the process-wide
    {!set_default_cache_bits} value (initially 0 = off). *)

val pcap_to_acaps_copying :
  ?pool:Parallel.Pool.t -> bytes -> Dissect.Acap.record list
(** The pre-index materializing path ([Bytes.sub] per packet), kept as
    the correctness and allocation baseline for benchmarks and tests. *)

val pcap_to_flows :
  ?pool:Parallel.Pool.t -> ?cache_bits:int -> bytes -> Flows.summary list
(** Single-pass digest→flows fast path over the zero-alloc overlay
    cursor ({!Dissect.Overlay}): each index range classifies frames by
    reading header fields in place through {!Packet.Slice} and streams
    key/ts/bytes/RST straight into a per-range {!Flows.Shard} — no
    header records, no intermediate acaps, live memory O(flows).
    Bit-identical to {!pcap_to_flows_record} (and hence to
    [Flows.aggregate (pcap_to_acaps buf)]) at any pool size.

    With [cache_bits > 0] a flow-cache hit jumps straight to shard
    accounting — interned key, ts/orig_len from the index, RST from the
    memoized flags offset — and the miss path runs the overlay cursor
    and installs a key-only entry.  Output is bit-identical to the
    uncached pass at any pool size. *)

val pcap_to_flows_record :
  ?pool:Parallel.Pool.t -> ?cache_bits:int -> bytes -> Flows.summary list
(** The record-building fused pass (dissect to header records, abstract,
    then shard) — the reference implementation the overlay path is
    verified against, and the benchmark baseline. *)

val set_default_cache_bits : int -> unit
(** Process-wide default for [?cache_bits] (initially 0 = off), so
    paths that cannot thread the argument — the weekly service's
    per-sample digests — pick the cache up too.  An explicit
    [?cache_bits] always wins.  Raises [Invalid_argument] on negative
    bits. *)

val pcap_file_to_acaps :
  ?pool:Parallel.Pool.t -> ?cache_bits:int -> string -> Dissect.Acap.record list

val pcap_file_to_flows :
  ?pool:Parallel.Pool.t -> ?cache_bits:int -> string -> Flows.summary list

val sample_acaps :
  ?pool:Parallel.Pool.t -> Patchwork.Capture.sample -> Dissect.Acap.record list
(** The abstract records of a sample: digested from its pcap bytes when
    it carries them (validating the full pipeline), else the records the
    capture already abstracted in-line. *)

val write_acap_file : string -> Dissect.Acap.record list -> unit
(** One record per line ({!Dissect.Acap.to_line}). *)

val read_acap_file : string -> Dissect.Acap.record list
(** Reads in binary mode.  Raises [Failure] on malformed lines; the
    message names the file and the 1-based line number. *)
