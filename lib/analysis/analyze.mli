(** The Analyze step: statistics over abstract captures.

    These are the analyses behind the paper's traffic-profile figures:
    per-site header diversity and deepest stacks (Fig. 11), protocol
    occurrence (Fig. 12), frame-size distributions (Fig. 15 and §8.2),
    and flows per sample (Fig. 13). *)

type site_headers = {
  hs_site : string;
  distinct_headers : int;  (** distinct protocol/service tokens seen *)
  deepest_stack : int;  (** maximum header-stack depth observed *)
  frames : int;
}

val header_stats : (string * Dissect.Acap.record list) list -> site_headers list
(** Per-site header diversity; input is (site, records) pairs (multiple
    pairs per site are merged). *)

val occurrence : Dissect.Acap.record list -> (string * float) list
(** For each token, the percentage of frames whose stack contains it —
    counted with multiplicity, so nested Ethernet pushes "eth" above
    100% exactly as in Fig. 12.  Sorted descending. *)

val occurrence_of : (string * float) list -> string -> float
(** Lookup with 0 default. *)

val standard_size_edges : float array
(** The paper's frame-size bins: 64 / 128 / 256 / 512 / 1024 / 1519 /
    2048 / 9000 byte boundaries. *)

val frame_size_histogram :
  ?edges:float array -> Dissect.Acap.record list -> Netcore.Histogram.t
(** Histogram of original wire lengths. *)

val jumbo_fraction : Dissect.Acap.record list -> float
(** Fraction of frames longer than 1518 bytes. *)

val flows_per_sample : Patchwork.Capture.sample list -> float array
(** The model-derived expected distinct-flow count of each sample
    (Fig. 13's x-values). *)

val observed_flows : Dissect.Acap.record list -> int
(** Distinct flow keys actually present in a record set. *)

val ipv6_percent : Dissect.Acap.record list -> float
val rst_percent : Dissect.Acap.record list -> float

(** {2 Weighted variants}

    Heavy samples are materialized as a uniform thinning (bounded by the
    capture's frame budget); aggregate statistics must therefore weight
    each record by the inverse of its sample's materialized fraction, or
    line-rate samples would count no more than idle ones. *)

val occurrence_weighted : (Dissect.Acap.record * float) list -> (string * float) list
(** Like {!occurrence} with a per-record weight. *)

val frame_size_histogram_weighted :
  ?edges:float array -> (Dissect.Acap.record * float) list -> Netcore.Histogram.t

val fraction_weighted :
  (Dissect.Acap.record -> bool) -> (Dissect.Acap.record * float) list -> float
(** Weighted fraction of records satisfying a predicate. *)
