let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write_profile_figures (p : Profile.t) ~dir =
  ensure_dir dir;
  let out = ref [] in
  let emit name svg =
    Svg.write svg (Filename.concat dir name);
    out := name :: !out
  in
  (* Fig 11: per-site header diversity, pseudonymized and sorted. *)
  let stats =
    List.filter (fun s -> s.Analyze.frames > 0) p.Profile.header_stats
    |> List.sort (fun a b -> compare b.Analyze.distinct_headers a.Analyze.distinct_headers)
  in
  emit "fig11_headers.svg"
    (Charts.grouped_bar_chart ~title:"Distinct headers and deepest stack per site"
       ~x_axis:"site (pseudonymized)"
       ~y_axis:{ Charts.label = "count"; log = false }
       ~series:[ "distinct headers"; "deepest stack" ]
       (List.mapi
          (fun i s ->
            ( Printf.sprintf "S%d" i,
              [ float_of_int s.Analyze.distinct_headers;
                float_of_int s.Analyze.deepest_stack ] ))
          stats));
  (* Fig 12: occurrence of the most prevalent headers. *)
  let top_occurrence = List.filteri (fun i _ -> i < 14) p.Profile.occurrence in
  emit "fig12_occurrence.svg"
    (Charts.bar_chart ~title:"Occurrence of protocol headers"
       ~x_axis:"protocol"
       ~y_axis:{ Charts.label = "% of frames"; log = false }
       top_occurrence);
  (* Fig 13: flows per sample histogram (log y). *)
  let flows_hist =
    let h =
      Netcore.Histogram.create [| 1.0; 10.0; 100.0; 1000.0; 3000.0; 10_000.0; 20_000.0 |]
    in
    Array.iter (fun v -> Netcore.Histogram.add h v) p.Profile.flows_per_sample;
    h
  in
  let flows_data =
    let counts = Netcore.Histogram.counts flows_hist in
    Array.to_list
      (Array.mapi
         (fun i c -> (Netcore.Histogram.bin_label flows_hist i, float_of_int c))
         counts)
  in
  emit "fig13_flows.svg"
    (Charts.bar_chart ~title:"Distinct flows per 20s sample"
       ~x_axis:"flows in sample"
       ~y_axis:{ Charts.label = "samples"; log = true }
       flows_data);
  (* Fig 15 aggregate. *)
  emit "fig15_sizes.svg"
    (Charts.histogram_chart ~title:"Frame-size distribution (weighted)"
       ~x_axis:"frame size (bytes)" p.Profile.size_histogram);
  (* Fig 15 per-site jumbo share. *)
  let jumbo_by_site =
    List.filteri (fun i _ -> i < 30)
      (List.mapi
         (fun i (_, h) ->
           let fr = Netcore.Histogram.fractions h in
           let jumbo =
             if Array.length fr >= 9 then 100.0 *. (fr.(6) +. fr.(7) +. fr.(8))
             else 0.0
           in
           (Printf.sprintf "S%d" i, jumbo))
         (List.filter
            (fun (_, h) -> Netcore.Histogram.total h > 0)
            p.Profile.per_site_size))
  in
  emit "fig15_jumbo_by_site.svg"
    (Charts.bar_chart ~title:"Jumbo-frame share per site"
       ~x_axis:"site (pseudonymized)"
       ~y_axis:{ Charts.label = "% of frames > 1518B"; log = false }
       jumbo_by_site);
  (* Flow-size CDF from the aggregation. *)
  let sizes =
    List.map (fun s -> Float.max 1.0 s.Flows.bytes) p.Profile.flow_summaries
    |> List.sort compare
  in
  (match sizes with
  | [] -> ()
  | sizes ->
    let n = float_of_int (List.length sizes) in
    let cdf =
      List.mapi (fun i v -> (log10 v, float_of_int (i + 1) /. n)) sizes
    in
    (* Decimate to keep the SVG small. *)
    let step = max 1 (List.length cdf / 300) in
    let cdf = List.filteri (fun i _ -> i mod step = 0) cdf in
    emit "flow_sizes.svg"
      (Charts.cdf_chart ~title:"Aggregated flow sizes"
         ~x_axis:"log10(flow bytes)" cdf));
  List.rev !out
