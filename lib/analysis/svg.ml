type t = { width : float; height : float; buf : Buffer.t }

let create ~width ~height =
  let buf = Buffer.create 4096 in
  { width; height; buf }

let escape s =
  let out = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string out "&lt;"
      | '>' -> Buffer.add_string out "&gt;"
      | '&' -> Buffer.add_string out "&amp;"
      | '"' -> Buffer.add_string out "&quot;"
      | c -> Buffer.add_char out c)
    s;
  Buffer.contents out

let rect t ~x ~y ~w ~h ?(fill = "#4878a8") ?(stroke = "none") ?(opacity = 1.0) () =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\" stroke=\"%s\" opacity=\"%.2f\"/>\n"
       x y (Float.max 0.0 w) (Float.max 0.0 h) fill stroke opacity)

let line t ~x1 ~y1 ~x2 ~y2 ?(stroke = "#333333") ?(width = 1.0) ?dash () =
  let dash_attr =
    match dash with Some d -> Printf.sprintf " stroke-dasharray=\"%s\"" d | None -> ""
  in
  Buffer.add_string t.buf
    (Printf.sprintf
       "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"%.1f\"%s/>\n"
       x1 y1 x2 y2 stroke width dash_attr)

let polyline t points ?(stroke = "#4878a8") ?(width = 1.5) ?(fill = "none") () =
  let pts =
    String.concat " " (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" x y) points)
  in
  Buffer.add_string t.buf
    (Printf.sprintf
       "<polyline points=\"%s\" fill=\"%s\" stroke=\"%s\" stroke-width=\"%.1f\"/>\n"
       pts fill stroke width)

let circle t ~cx ~cy ~r ?(fill = "#4878a8") () =
  Buffer.add_string t.buf
    (Printf.sprintf "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\"/>\n" cx cy r
       fill)

let text t ~x ~y ?(size = 11.0) ?(anchor = `Start) ?(fill = "#222222") ?rotate s =
  let anchor_str =
    match anchor with `Start -> "start" | `Middle -> "middle" | `End -> "end"
  in
  let transform =
    match rotate with
    | Some deg -> Printf.sprintf " transform=\"rotate(%.1f %.1f %.1f)\"" deg x y
    | None -> ""
  in
  Buffer.add_string t.buf
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"%.1f\" font-size=\"%.1f\" font-family=\"sans-serif\" text-anchor=\"%s\" fill=\"%s\"%s>%s</text>\n"
       x y size anchor_str fill transform (escape s))

let to_string t =
  Printf.sprintf
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n<rect width=\"%.0f\" height=\"%.0f\" fill=\"white\"/>\n%s</svg>\n"
    t.width t.height t.width t.height t.width t.height (Buffer.contents t.buf)

let write t path = Report.write_file path (to_string t)

let palette_colors =
  [| "#4878a8"; "#e1812c"; "#3a923a"; "#c03d3e"; "#8172b2"; "#937860";
     "#d684bd"; "#8c8c8c" |]

let palette i = palette_colors.(((i mod 8) + 8) mod 8)
