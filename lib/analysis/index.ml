type entry = {
  entry_site : string;
  occasion : int;
  port : int;
  start_time : float;
  record_count : int;
  path : string;
}

type t = { dir : string; mutable entries : entry list (* newest first *) }

let index_file t = Filename.concat t.dir "index.tsv"

let create ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg ("Index.create: " ^ dir ^ " is not a directory");
  { dir; entries = [] }

let add_sample t ~occasion (sample : Patchwork.Capture.sample) =
  let records = Digest.sample_acaps sample in
  let site = sample.Patchwork.Capture.sample_site in
  let port = sample.Patchwork.Capture.sample_port in
  let start_time = sample.Patchwork.Capture.sample_start in
  let rel =
    Printf.sprintf "%s_occ%d_p%d_t%d.acap" site occasion port
      (int_of_float start_time)
  in
  Digest.write_acap_file (Filename.concat t.dir rel) records;
  let entry =
    {
      entry_site = site;
      occasion;
      port;
      start_time;
      record_count = List.length records;
      path = rel;
    }
  in
  t.entries <- entry :: t.entries;
  entry

let entries t = List.rev t.entries

let find ?site ?occasion ?port t =
  let keep e =
    (match site with Some s -> e.entry_site = s | None -> true)
    && (match occasion with Some o -> e.occasion = o | None -> true)
    && match port with Some p -> e.port = p | None -> true
  in
  List.rev (List.filter keep t.entries)

let load t entry = Digest.read_acap_file (Filename.concat t.dir entry.path)

let save t =
  let oc = open_out (index_file t) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          Printf.fprintf oc "%s\t%d\t%d\t%.6f\t%d\t%s\n" e.entry_site e.occasion
            e.port e.start_time e.record_count e.path)
        (entries t))

let open_existing ~dir =
  let t = { dir; entries = [] } in
  let ic = open_in (index_file t) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> acc
        | line -> (
          match String.split_on_char '\t' line with
          | [ site; occ; port; start; count; path ] ->
            go
              ({
                 entry_site = site;
                 occasion = int_of_string occ;
                 port = int_of_string port;
                 start_time = float_of_string start;
                 record_count = int_of_string count;
                 path;
               }
              :: acc)
          | _ -> failwith ("Index.open_existing: malformed line: " ^ line))
      in
      t.entries <- go [];
      t)
