(** A complete network profile, assembled from profiling occasions.

    This is the artifact the whole system exists to produce: the
    testbed-wide picture of §8.2, with per-site breakdowns and the
    aggregate statistics the paper reports.

    A profile over many occasions does not fit in memory as raw records
    (the paper's captures ran to dozens of gigabytes), so {!Builder}
    folds occasions in one at a time, keeping only aggregates; each
    occasion's records are dropped as soon as they are absorbed. *)

type t = {
  occasions : int;
  total_samples : int;
  total_frames : int;  (** materialized acap records analyzed *)
  header_stats : Analyze.site_headers list;
  occurrence : (string * float) list;
      (** weighted % of frames containing each token *)
  size_histogram : Netcore.Histogram.t;
  per_site_size : (string * Netcore.Histogram.t) list;
  flows_per_sample : float array;
  flow_summaries : Flows.summary list;
  ipv6_percent : float;
  jumbo_fraction : float;
}

module Builder : sig
  type profile := t
  type t

  val create : ?log:Patchwork.Logging.t -> unit -> t
  (** With [log], samples whose [materialized_fraction <= 0.0] (which
      can only be absorbed unweighted) log a warning; they always bump
      [analysis_unweighted_samples_total{stage="profile"}]. *)

  val add_report :
    ?pool:Parallel.Pool.t ->
    ?flow_store:Flow_store.Writer.t ->
    t ->
    Patchwork.Coordinator.occasion_report ->
    unit
  (** Digest and absorb one occasion; safe to drop the report (and its
      samples) afterwards.  With a pool, per-sample digestion runs
      across domains (absorption stays in sample order, so the finished
      profile is identical to a sequential build).  With [flow_store],
      each sample's flows are also appended to the store as one weighted
      shard group — this is how the weekly service streams flows to disk
      at occasion boundaries. *)

  val add_sample : ?pool:Parallel.Pool.t -> t -> Patchwork.Capture.sample -> unit
  (** Digest and absorb one sample. *)

  val finish : t -> profile
end

val of_reports :
  ?pool:Parallel.Pool.t -> Patchwork.Coordinator.occasion_report list -> t
(** Convenience wrapper over {!Builder} for small report sets. *)

val equal : t -> t -> bool
(** Structural equality over the whole profile — every aggregate,
    histogram bin and flow summary.  The pipelined weekly service and
    the parallel builders are required to produce profiles [equal] to
    their sequential counterparts. *)

val write_csv_files : t -> dir:string -> string list
(** Emit the Process-step CSVs into [dir]; returns the file names
    written. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable overview (the §8.2 numbers). *)
