(** Calibration of the capture host.

    The paper's storage experiments ran on a FABRIC node with a single
    NUMA domain, 16 cores, 128 GB of RAM and a 100G NIC.  This record
    gathers every constant of the host model; {!default} is calibrated
    so the DPDK capture tables (Tables 1-2) and the page-cache latency
    study (Fig. 14) reproduce the paper's shape. *)

type t = {
  cores : int;  (** physical cores available to capture *)
  ram_bytes : float;
  free_cache_fraction : float;
      (** fraction of RAM available as page cache on an idle host *)
  storage_drain_rate : float;  (** bytes/s the disk sustains on writeback *)
  dpdk_fixed_cost : float;
      (** seconds of CPU per received frame, independent of size *)
  dpdk_byte_cost : float;  (** seconds of CPU per stored (truncated) byte *)
  core_contention : float;
      (** multi-core scaling penalty: n cores deliver
          [n / (1 + core_contention * (n-1))] times one core *)
  kernel_fixed_cost : float;
      (** per-frame cost of the kernel capture path (tcpdump) *)
  rx_queue_depth : int;  (** per-core RX descriptor ring slots *)
  tcpdump_buffer_bytes : float;  (** capture buffer (raised to 32 MB) *)
  writev_batch : int;  (** frames serialized per writev call *)
  writev_base_latency : float;  (** seconds, unloaded *)
  writev_byte_latency : float;  (** seconds per byte written *)
}

val default : t
(** The 16-core / 128 GB / 100G profile used throughout the paper. *)

val effective_cores : t -> int -> float
(** [effective_cores p n] applies the contention model. *)

val dpdk_packet_cost : t -> truncation:int -> float
(** CPU seconds to receive one frame and stage [truncation] bytes. *)

val dpdk_capacity_pps : t -> cores:int -> truncation:int -> float
(** Sustainable packets/s of the DPDK path before queue growth. *)

val kernel_capacity_pps : t -> float
(** Sustainable packets/s of the tcpdump path (single threaded). *)

val free_cache_bytes : t -> float
