(** A P4-style match-action pipeline.

    Patchwork's FPGA offload is a P4 program compiled onto the Alveo
    NIC.  This module provides the abstraction that program is written
    in: a straight-line pipeline of match-action {e tables}.  Each table
    matches on header fields and executes the first matching entry's
    action list.  Supported actions cover what Patchwork offloads —
    dropping, truncation, systematic sampling, address rewriting, and
    counting.

    {!Compile} translates the user-facing {!Packet.Filter} language into
    a pipeline, mirroring how Patchwork generates its P4 tables from the
    user's capture configuration. *)

(** Values a match key can extract from a frame. *)
type field =
  | F_wire_length
  | F_stack_depth
  | F_vlan_id  (** outermost VLAN id; -1 when untagged *)
  | F_mpls_label  (** outermost label; -1 when none *)
  | F_ip_version  (** 4, 6, or 0 *)
  | F_ip_proto  (** 6 TCP, 17 UDP, 1/58 ICMP, 0 none *)
  | F_src_port  (** innermost L4; -1 when none *)
  | F_dst_port
  | F_has_token of string  (** 1 when the stack contains the token *)

type match_expr =
  | M_any
  | M_eq of field * int
  | M_range of field * int * int  (** inclusive *)
  | M_not of match_expr
  | M_and of match_expr * match_expr
  | M_or of match_expr * match_expr

type action =
  | A_pass  (** continue to the next table *)
  | A_drop  (** stop; frame is discarded *)
  | A_accept  (** stop; frame bypasses remaining tables *)
  | A_truncate of int  (** cap the bytes forwarded to the host *)
  | A_sample of int  (** keep every Nth frame reaching this action *)
  | A_anonymize of Anonymize.t  (** rewrite IP addresses *)
  | A_count of string  (** bump a named counter *)

type entry = { matches : match_expr; actions : action list }

type table = { table_name : string; entries : entry list; default : action list }

type t

val create : table list -> t

val eval_field : field -> Packet.Frame.t -> int
(** Extract one match key from a frame. *)

val matches : match_expr -> Packet.Frame.t -> bool

type verdict = {
  frame : Packet.Frame.t option;  (** [None] when dropped or unsampled *)
  forwarded_bytes : int;  (** bytes handed to the host (post-truncation) *)
}

val process : t -> Packet.Frame.t -> verdict
(** Run a frame through every table in order. *)

val counter : t -> string -> int
(** Value of a named counter (0 if never bumped). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val stage_count : t -> int

module Compile : sig
  val of_filter :
    ?truncation:int ->
    ?sample_1_in:int ->
    ?anonymizer:Anonymize.t ->
    Packet.Filter.t ->
    t
  (** Patchwork's offload generator: a filter table (drop non-matching
      frames, with counters for both outcomes), then a sampling table,
      then an editing table (truncate + optionally anonymize). *)

  val filter_to_match : Packet.Filter.t -> match_expr
  (** The translation at the heart of [of_filter]; total — every filter
      construct has a pipeline equivalent. *)
end
