(** The Alveo FPGA offload pipeline.

    Patchwork compiles a P4 program onto the FPGA NIC that filters,
    samples, truncates and edits frames at line rate before the host
    ever sees them; the DPDK application then only serializes what
    survives.  The functional half of this module applies those stages
    to frames; the performance half quantifies the host-side relief
    (frames and bytes removed before the DPDK path). *)

type config = {
  filter : Packet.Filter.t;  (** drop frames not matching *)
  sample_1_in : int;  (** keep one frame in N (1 = keep all) *)
  truncation : int;  (** bytes forwarded to the host per frame *)
  anonymizer : Anonymize.t option;  (** rewrite addresses at source *)
}

val default_config : config
(** Keep everything, truncate to 200 bytes, no anonymization. *)

type stats = {
  seen : int;
  passed_filter : int;
  sampled : int;  (** frames surviving both filter and sampling *)
  bytes_in : int;  (** wire bytes presented to the FPGA *)
  bytes_out : int;  (** bytes actually delivered to the host *)
}

val create : config -> unit -> (Packet.Frame.t -> Packet.Frame.t option) * (unit -> stats)
(** [create config ()] returns a processing function and a stats
    accessor.  The processing function is deterministic given the
    config: sampling is systematic (every Nth matching frame), as in the
    P4 implementation. *)

val host_relief : config -> offered_pps:float -> avg_frame_size:float -> float * float
(** [(pps, bytes_per_sec)] that reach the host after offload, given an
    offered load and assuming the filter passes everything (upper
    bound). *)

val host_path : Obs.Ledger.host_path
(** This path's identity ([Fpga]) in the loss-attribution ledger. *)
