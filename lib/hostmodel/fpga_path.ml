type config = {
  filter : Packet.Filter.t;
  sample_1_in : int;
  truncation : int;
  anonymizer : Anonymize.t option;
}

let default_config =
  { filter = Packet.Filter.True; sample_1_in = 1; truncation = 200; anonymizer = None }

type stats = {
  seen : int;
  passed_filter : int;
  sampled : int;
  bytes_in : int;
  bytes_out : int;
}

(* The offload executes as a compiled P4 pipeline, exactly as Patchwork
   compiles its configuration onto the Alveo NIC.  Address-level filter
   clauses cannot run on the NIC tables (they match on tags/ports), so
   they are re-checked host-side after the pipeline — the same split the
   real system uses. *)
let create config () =
  if config.sample_1_in < 1 then invalid_arg "Fpga_path.create: sample_1_in";
  if config.truncation < 1 then invalid_arg "Fpga_path.create: truncation";
  let pipeline =
    P4_pipeline.Compile.of_filter ~truncation:config.truncation
      ~sample_1_in:config.sample_1_in ?anonymizer:config.anonymizer config.filter
  in
  let seen = ref 0 and bytes_in = ref 0 and bytes_out = ref 0 in
  let host_side_pass frame = Packet.Filter.matches config.filter frame in
  let process frame =
    incr seen;
    bytes_in := !bytes_in + Packet.Frame.wire_length frame;
    (* The host-side residual filter sees pre-anonymization headers. *)
    let host_ok = host_side_pass frame in
    let verdict = P4_pipeline.process pipeline frame in
    match verdict.P4_pipeline.frame with
    | Some out when host_ok ->
      bytes_out := !bytes_out + verdict.P4_pipeline.forwarded_bytes;
      Some out
    | Some _ | None -> None
  in
  let stats () =
    {
      seen = !seen;
      passed_filter = P4_pipeline.counter pipeline "filter.matched";
      sampled =
        (if config.sample_1_in <= 1 then
           P4_pipeline.counter pipeline "edit.emitted"
         else P4_pipeline.counter pipeline "sample.kept");
      bytes_in = !bytes_in;
      bytes_out = !bytes_out;
    }
  in
  (process, stats)

let host_relief config ~offered_pps ~avg_frame_size =
  let pps = offered_pps /. float_of_int config.sample_1_in in
  let stored = Float.min (float_of_int config.truncation) avg_frame_size in
  (pps, pps *. stored)

(* This path's identity in the loss-attribution ledger. *)
let host_path = Obs.Ledger.Fpga
