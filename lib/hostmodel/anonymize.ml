open Netcore

type t = { key : int64 }

let create ~key = { key = Int64.of_int ((key * 2) + 1) }

(* For each bit position i, the output bit is the input bit XOR a
   pseudo-random function of (key, the i-bit input prefix).  This is the
   Crypto-PAn construction with a mixing hash standing in for AES; it is
   a bijection and preserves common-prefix lengths exactly. *)
let prf key prefix i =
  let h = Int64.add (Int64.mul prefix 0x9E3779B97F4A7C15L) key in
  let h = Int64.add h (Int64.of_int (i * 0x85EBCA6B)) in
  let h = Int64.logxor h (Int64.shift_right_logical h 29) in
  let h = Int64.mul h 0xBF58476D1CE4E5B9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 32) in
  Int64.to_int (Int64.logand h 1L)

let permute_bits t value width =
  let out = ref 0L in
  let prefix = ref 0L in
  for i = 0 to width - 1 do
    let bit = Int64.to_int (Int64.logand (Int64.shift_right_logical value (width - 1 - i)) 1L) in
    let flip = prf t.key !prefix i in
    let out_bit = bit lxor flip in
    out := Int64.logor (Int64.shift_left !out 1) (Int64.of_int out_bit);
    prefix := Int64.logor (Int64.shift_left !prefix 1) (Int64.of_int bit)
  done;
  !out

let ipv4 t addr =
  let v = Int64.logand (Int64.of_int32 (Ipv4_addr.to_int32 addr)) 0xFFFFFFFFL in
  Ipv4_addr.of_int32 (Int64.to_int32 (permute_bits t v 32))

let ipv6 t addr =
  let hi, lo = Ipv6_addr.halves addr in
  (* Anonymize the routing-relevant high half; keep the interface id
     hashed flat (prefix relationships beyond /64 are not meaningful). *)
  let hi' = permute_bits t hi 64 in
  let lo' = Int64.logxor lo (Int64.mul t.key 0xC2B2AE3D27D4EB4FL) in
  Ipv6_addr.make hi' lo'

let frame t (f : Packet.Frame.t) =
  let module H = Packet.Headers in
  let headers =
    List.map
      (fun (h : H.header) : H.header ->
        match h with
        | H.Ipv4 ip -> H.Ipv4 { ip with src = ipv4 t ip.src; dst = ipv4 t ip.dst }
        | H.Ipv6 ip -> H.Ipv6 { ip with src = ipv6 t ip.src; dst = ipv6 t ip.dst }
        | H.Arp a ->
          H.Arp { a with sender_ip = ipv4 t a.sender_ip; target_ip = ipv4 t a.target_ip }
        | h -> h)
      f.Packet.Frame.headers
  in
  { f with Packet.Frame.headers }
