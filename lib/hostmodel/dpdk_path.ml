open Netcore

type config = {
  profile : Host_profile.t;
  cores : int;
  truncation : int;
  dirty_background_ratio : float;
  dirty_ratio : float;
  burstiness : float;
  baseline_loss : float;
}

let default_config =
  {
    profile = Host_profile.default;
    cores = 5;
    truncation = 200;
    dirty_background_ratio = 60.0;
    dirty_ratio = 80.0;
    burstiness = 0.035;
    baseline_loss = 0.0008;
  }

type result = {
  offered_frames : float;
  captured_frames : float;
  dropped_frames : float;
  loss_percent : float;
  bytes_written : float;
  peak_cache_used_percent : float;
  throttled_seconds : float;
  writev_latency : Histogram.Log2.t;
}

let capacity_rate config ~frame_size =
  let pps =
    Host_profile.dpdk_capacity_pps config.profile ~cores:config.cores
      ~truncation:config.truncation
  in
  Units.bps_of_pps pps ~frame_bytes:frame_size

let run ?(seed = 42) config ~offered_rate ~frame_size ~duration =
  if config.cores <= 0 || config.cores > config.profile.Host_profile.cores then
    invalid_arg "Dpdk_path.run: core count out of range";
  if config.truncation <= 0 then invalid_arg "Dpdk_path.run: truncation";
  if duration <= 0.0 then invalid_arg "Dpdk_path.run: duration";
  let rng = Rng.create seed in
  let p = config.profile in
  let cache =
    Page_cache.create
      ~free_cache_bytes:(Host_profile.free_cache_bytes p)
      ~drain_rate:p.Host_profile.storage_drain_rate
      ~dirty_background_ratio:config.dirty_background_ratio
      ~dirty_ratio:config.dirty_ratio
  in
  let offered_pps = Units.pps_of_bps offered_rate ~frame_bytes:frame_size in
  let capacity_pps =
    Host_profile.dpdk_capacity_pps p ~cores:config.cores ~truncation:config.truncation
  in
  let queue_capacity = float_of_int (p.Host_profile.rx_queue_depth * config.cores) in
  let stored_per_frame = float_of_int (min config.truncation frame_size) in
  let writev_hist = Histogram.Log2.create () in
  let dt = 1e-3 in
  let steps = int_of_float (duration /. dt) in
  let queue = ref 0.0 in
  let offered = ref 0.0 and captured = ref 0.0 and dropped = ref 0.0 in
  let peak_used = ref 0.0 and throttled_time = ref 0.0 in
  (* writev accounting: one call per batch of 128 captured frames. *)
  let frames_toward_batch = ref 0.0 in
  let batch = float_of_int p.Host_profile.writev_batch in
  (* AR(1) load jitter: bursts persist for tens of milliseconds, as real
     generators and NIC batching produce, rather than white noise. *)
  let ar = ref 0.0 in
  let ar_rho = 0.95 in
  let ar_innov = sqrt (1.0 -. (ar_rho *. ar_rho)) in
  for _ = 1 to steps do
    ar := (ar_rho *. !ar) +. (ar_innov *. Rng.gaussian rng ~mu:0.0 ~sigma:1.0);
    let jitter = Float.max 0.0 (1.0 +. (config.burstiness *. !ar)) in
    let arriving = float_of_int (Rng.poisson rng ~mean:(offered_pps *. dt *. jitter)) in
    offered := !offered +. arriving;
    let space = queue_capacity -. !queue in
    let accepted = Float.min arriving space in
    dropped := !dropped +. (arriving -. accepted);
    queue := !queue +. accepted;
    (* Processing, paced down by writeback throttling. *)
    let throttle = Page_cache.throttle_factor cache in
    if throttle < 1.0 then throttled_time := !throttled_time +. dt;
    let processed = Float.min !queue (capacity_pps *. throttle *. dt) in
    queue := !queue -. processed;
    captured := !captured +. processed;
    Page_cache.write cache (processed *. stored_per_frame);
    Page_cache.advance cache ~dt;
    peak_used := Float.max !peak_used (Page_cache.used_percent cache);
    (* Latency of the writev calls issued for these frames. *)
    frames_toward_batch := !frames_toward_batch +. processed;
    let calls = int_of_float (!frames_toward_batch /. batch) in
    if calls > 0 then begin
      frames_toward_batch := !frames_toward_batch -. (float_of_int calls *. batch);
      let base =
        p.Host_profile.writev_base_latency
        +. (p.Host_profile.writev_byte_latency *. batch *. stored_per_frame)
      in
      let latency = base *. Page_cache.writer_latency_multiplier cache in
      (* Record in nanoseconds, with sampling jitter. *)
      let sampled = latency *. (0.75 +. (0.5 *. Rng.float rng)) *. 1e9 in
      Histogram.Log2.add writev_hist ~count:calls sampled
    end
  done;
  (* Residual descriptor/NIC noise: even far below capacity, real runs
     show a small constant drop floor. *)
  let noise = !offered *. config.baseline_loss *. (0.5 +. Rng.float rng) in
  let dropped_total = !dropped +. noise in
  let loss_percent =
    if !offered > 0.0 then 100.0 *. dropped_total /. !offered else 0.0
  in
  {
    offered_frames = !offered;
    captured_frames = !captured;
    dropped_frames = dropped_total;
    loss_percent;
    bytes_written = Page_cache.total_written cache;
    peak_cache_used_percent = !peak_used;
    throttled_seconds = !throttled_time;
    writev_latency = writev_hist;
  }

(* This path's identity in the loss-attribution ledger. *)
let host_path = Obs.Ledger.Dpdk
