type t = {
  cores : int;
  ram_bytes : float;
  free_cache_fraction : float;
  storage_drain_rate : float;
  dpdk_fixed_cost : float;
  dpdk_byte_cost : float;
  core_contention : float;
  kernel_fixed_cost : float;
  rx_queue_depth : int;
  tcpdump_buffer_bytes : float;
  writev_batch : int;
  writev_base_latency : float;
  writev_byte_latency : float;
}

(* Calibrated against the paper's Tables 1-2 (see EXPERIMENTS.md):
   a core sustains ~3.1 Mpps at 64 B truncation and ~2.1 Mpps at 200 B,
   with diminishing returns as cores are added; the NVMe sustains about
   1 GB/s of writeback, which is what makes the page cache the terminal
   bottleneck at 100 Gbps. *)
let default =
  {
    cores = 16;
    ram_bytes = 128.0 *. 1073741824.0;
    free_cache_fraction = 0.78;
    storage_drain_rate = 1.0e9;
    dpdk_fixed_cost = 0.245e-6;
    dpdk_byte_cost = 1.175e-9;
    core_contention = 0.0714;
    kernel_fixed_cost = 1.40e-6;
    rx_queue_depth = 4096;
    tcpdump_buffer_bytes = 32.0 *. 1048576.0;
    writev_batch = 128;
    writev_base_latency = 14.0e-6;
    writev_byte_latency = 0.1e-9;
  }

let effective_cores p n =
  if n <= 0 then invalid_arg "Host_profile.effective_cores: need >= 1 core";
  float_of_int n /. (1.0 +. (p.core_contention *. float_of_int (n - 1)))

let dpdk_packet_cost p ~truncation =
  if truncation <= 0 then invalid_arg "Host_profile.dpdk_packet_cost: truncation";
  p.dpdk_fixed_cost +. (p.dpdk_byte_cost *. float_of_int truncation)

let dpdk_capacity_pps p ~cores ~truncation =
  effective_cores p cores /. dpdk_packet_cost p ~truncation

let kernel_capacity_pps p = 1.0 /. p.kernel_fixed_cost

let free_cache_bytes p = p.ram_bytes *. p.free_cache_fraction
