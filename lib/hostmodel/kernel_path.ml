open Netcore

type result = {
  offered_frames : float;
  captured_frames : float;
  dropped_frames : float;
  loss_percent : float;
  peak_buffer_used : float;
}

let run ?(seed = 7) ?(profile = Host_profile.default) ?(snaplen = 64)
    ~offered_rate ~frame_size ~duration () =
  if duration <= 0.0 then invalid_arg "Kernel_path.run: duration";
  let rng = Rng.create seed in
  let offered_pps = Units.pps_of_bps offered_rate ~frame_bytes:frame_size in
  let capacity_pps = Host_profile.kernel_capacity_pps profile in
  (* The capture buffer holds truncated frames plus pcap record
     overhead. *)
  let per_frame_bytes = float_of_int (min snaplen frame_size + 16) in
  let buffer_frames = profile.Host_profile.tcpdump_buffer_bytes /. per_frame_bytes in
  let dt = 1e-3 in
  let steps = int_of_float (duration /. dt) in
  let buffered = ref 0.0 in
  let offered = ref 0.0 and captured = ref 0.0 and dropped = ref 0.0 in
  let peak = ref 0.0 in
  for _ = 1 to steps do
    let jitter = Float.max 0.0 (1.0 +. (0.05 *. Rng.gaussian rng ~mu:0.0 ~sigma:1.0)) in
    let arriving = float_of_int (Rng.poisson rng ~mean:(offered_pps *. dt *. jitter)) in
    offered := !offered +. arriving;
    let space = buffer_frames -. !buffered in
    let accepted = Float.min arriving space in
    dropped := !dropped +. (arriving -. accepted);
    buffered := !buffered +. accepted;
    (* The consumer drains the buffer at the kernel path's capacity. *)
    let processed = Float.min !buffered (capacity_pps *. dt) in
    buffered := !buffered -. processed;
    captured := !captured +. processed;
    peak := Float.max !peak (!buffered *. per_frame_bytes)
  done;
  let loss_percent = if !offered > 0.0 then 100.0 *. !dropped /. !offered else 0.0 in
  {
    offered_frames = !offered;
    captured_frames = !captured;
    dropped_frames = !dropped;
    loss_percent;
    peak_buffer_used = !peak;
  }

let lossless_bound ?(profile = Host_profile.default) ~frame_size () =
  Units.bps_of_pps (Host_profile.kernel_capacity_pps profile) ~frame_bytes:frame_size

(* This path's identity in the loss-attribution ledger. *)
let host_path = Obs.Ledger.Kernel
