(** Prefix-preserving address anonymization (Crypto-PAn style).

    Patchwork supports close-to-source pre-processing such as blanking
    or transforming addresses before captures leave the testbed.  This
    implements a keyed, deterministic, prefix-preserving permutation of
    IPv4 (and the high halves of IPv6) addresses: two addresses sharing
    exactly a [k]-bit prefix map to outputs sharing exactly a [k]-bit
    prefix, so subnet structure survives anonymization while actual
    addresses do not. *)

type t

val create : key:int -> t

val ipv4 : t -> Netcore.Ipv4_addr.t -> Netcore.Ipv4_addr.t
val ipv6 : t -> Netcore.Ipv6_addr.t -> Netcore.Ipv6_addr.t

val frame : t -> Packet.Frame.t -> Packet.Frame.t
(** Rewrite every IP address in the frame's headers (including ARP
    sender/target addresses).  The stack structure is unchanged. *)
