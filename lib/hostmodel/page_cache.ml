type t = {
  free_cache_bytes : float;
  drain_rate : float;
  dirty_background : float;  (* fraction of free cache *)
  dirty_hard : float;
  mutable dirty : float;
  mutable written : float;
  mutable drained : float;
}

let create ~free_cache_bytes ~drain_rate ~dirty_background_ratio ~dirty_ratio =
  if free_cache_bytes <= 0.0 then invalid_arg "Page_cache.create: cache size";
  if drain_rate < 0.0 then invalid_arg "Page_cache.create: drain rate";
  if
    dirty_background_ratio <= 0.0
    || dirty_ratio > 100.0
    || dirty_background_ratio >= dirty_ratio
  then invalid_arg "Page_cache.create: need 0 < background < dirty <= 100";
  {
    free_cache_bytes;
    drain_rate;
    dirty_background = dirty_background_ratio /. 100.0;
    dirty_hard = dirty_ratio /. 100.0;
    dirty = 0.0;
    written = 0.0;
    drained = 0.0;
  }

(* The paper's tuned capture host: vm.dirty ratios raised to 60/80 (the
   Dpdk_path defaults), cache size and drain rate from the profile. *)
let of_profile p =
  create
    ~free_cache_bytes:(Host_profile.free_cache_bytes p)
    ~drain_rate:p.Host_profile.storage_drain_rate ~dirty_background_ratio:60.0
    ~dirty_ratio:80.0

let obs_written =
  Obs.Registry.counter Obs.Registry.default "page_cache_written_bytes_total"
    ~help:"Bytes written into the simulated page cache"

let obs_drained =
  Obs.Registry.counter Obs.Registry.default "page_cache_drained_bytes_total"
    ~help:"Bytes drained from the simulated page cache by writeback"

let write t bytes =
  if bytes < 0.0 then invalid_arg "Page_cache.write: negative bytes";
  t.dirty <- Float.min t.free_cache_bytes (t.dirty +. bytes);
  t.written <- t.written +. bytes;
  if Obs.Registry.enabled () then Obs.Registry.inc obs_written bytes

let background_threshold t = t.dirty_background
let hard_threshold t = t.dirty_hard
let throttle_threshold t = (t.dirty_background +. t.dirty_hard) /. 2.0

let dirty_bytes t = t.dirty
let dirty_fraction t = t.dirty /. t.free_cache_bytes
let used_percent t = 100.0 *. dirty_fraction t

let advance t ~dt =
  if dt < 0.0 then invalid_arg "Page_cache.advance: negative dt";
  (* Writeback only runs once the background threshold has been
     crossed; below it dirty pages simply sit in RAM. *)
  if dirty_fraction t > t.dirty_background then begin
    let drained = Float.min t.dirty (t.drain_rate *. dt) in
    t.dirty <- t.dirty -. drained;
    t.drained <- t.drained +. drained;
    if Obs.Registry.enabled () then Obs.Registry.inc obs_drained drained
  end

let throttle_factor t =
  let frac = dirty_fraction t in
  let midpoint = throttle_threshold t in
  if frac <= midpoint then 1.0
  else if frac >= t.dirty_hard then 0.02
  else begin
    (* Between the midpoint and dirty_ratio the kernel paces the writer
       toward the drain rate; interpolate the allowed fraction down. *)
    let severity = (frac -. midpoint) /. (t.dirty_hard -. midpoint) in
    Float.max 0.02 (1.0 -. (0.98 *. severity))
  end

let writer_latency_multiplier t =
  let frac = dirty_fraction t in
  let midpoint = throttle_threshold t in
  if frac <= t.dirty_background then 1.0
  else if frac <= midpoint then
    (* Flush competition: latency grows a few-fold toward the midpoint. *)
    1.0 +. (5.0 *. (frac -. t.dirty_background) /. (midpoint -. t.dirty_background))
  else begin
    (* balance_dirty_pages: the writer sleeps; two to three orders of
       magnitude above baseline, growing toward dirty_ratio. *)
    let severity =
      Float.min 1.0 ((frac -. midpoint) /. (t.dirty_hard -. midpoint))
    in
    30.0 +. (470.0 *. severity)
  end

let total_written t = t.written
let total_drained t = t.drained
