(** The software (tcpdump) capture path.

    Patchwork's default capture method: tcpdump with its buffer raised
    to 32 MB.  Frames traverse the kernel network stack and are copied
    once per packet, so a single logical capture thread saturates around
    0.7 Mpps — about 8.5 Gbps of 1500-byte frames, which is the lossless
    bound the paper measured (§8.1.2). *)

type result = {
  offered_frames : float;
  captured_frames : float;
  dropped_frames : float;
  loss_percent : float;
  peak_buffer_used : float;  (** bytes of the 32 MB capture buffer *)
}

val run :
  ?seed:int ->
  ?profile:Host_profile.t ->
  ?snaplen:int ->
  offered_rate:float ->
  frame_size:int ->
  duration:float ->
  unit ->
  result
(** Capture fixed-size frames offered at [offered_rate] bits/s for
    [duration] seconds, truncating to [snaplen] (default 64). *)

val lossless_bound : ?profile:Host_profile.t -> frame_size:int -> unit -> float
(** Highest offered bit rate the path captures without sustained loss. *)

val host_path : Obs.Ledger.host_path
(** This path's identity ([Kernel]) in the loss-attribution ledger. *)
