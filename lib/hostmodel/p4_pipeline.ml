module H = Packet.Headers

type field =
  | F_wire_length
  | F_stack_depth
  | F_vlan_id
  | F_mpls_label
  | F_ip_version
  | F_ip_proto
  | F_src_port
  | F_dst_port
  | F_has_token of string

type match_expr =
  | M_any
  | M_eq of field * int
  | M_range of field * int * int
  | M_not of match_expr
  | M_and of match_expr * match_expr
  | M_or of match_expr * match_expr

type action =
  | A_pass
  | A_drop
  | A_accept
  | A_truncate of int
  | A_sample of int
  | A_anonymize of Anonymize.t
  | A_count of string

type entry = { matches : match_expr; actions : action list }

type table = { table_name : string; entries : entry list; default : action list }

type t = {
  tables : table list;
  counters : (string, int) Hashtbl.t;
  (* Per-(table, entry, action position) sampler state for A_sample:
     systematic 1-in-N needs a persistent modulo counter per action
     site, exactly like a P4 register. *)
  samplers : (string, int) Hashtbl.t;
}

let create tables =
  { tables; counters = Hashtbl.create 16; samplers = Hashtbl.create 16 }

let eval_field field (frame : Packet.Frame.t) =
  match field with
  | F_wire_length -> Packet.Frame.wire_length frame
  | F_stack_depth -> Packet.Frame.depth frame
  | F_vlan_id -> (
    match Packet.Frame.vlan_ids frame with [] -> -1 | vid :: _ -> vid)
  | F_mpls_label -> (
    match Packet.Frame.mpls_labels frame with [] -> -1 | label :: _ -> label)
  | F_ip_version -> (
    match Packet.Frame.l3 frame with
    | Some (H.Ipv4 _) -> 4
    | Some (H.Ipv6 _) -> 6
    | Some _ | None -> 0)
  | F_ip_proto -> (
    match Packet.Frame.l4 frame with
    | Some (H.Tcp _) -> 6
    | Some (H.Udp _) -> 17
    | Some (H.Icmpv4 _) -> 1
    | Some (H.Icmpv6 _) -> 58
    | Some _ | None -> 0)
  | F_src_port -> (
    match Packet.Frame.l4 frame with
    | Some (H.Tcp { src_port; _ }) | Some (H.Udp { src_port; _ }) -> src_port
    | Some _ | None -> -1)
  | F_dst_port -> (
    match Packet.Frame.l4 frame with
    | Some (H.Tcp { dst_port; _ }) | Some (H.Udp { dst_port; _ }) -> dst_port
    | Some _ | None -> -1)
  | F_has_token token -> if List.mem token (Packet.Frame.tokens frame) then 1 else 0

let rec matches expr frame =
  match expr with
  | M_any -> true
  | M_eq (f, v) -> eval_field f frame = v
  | M_range (f, lo, hi) ->
    let v = eval_field f frame in
    v >= lo && v <= hi
  | M_not e -> not (matches e frame)
  | M_and (a, b) -> matches a frame && matches b frame
  | M_or (a, b) -> matches a frame || matches b frame

type verdict = { frame : Packet.Frame.t option; forwarded_bytes : int }

let bump t name =
  Hashtbl.replace t.counters name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters name))

let sampler_hit t key n =
  let seen = Option.value ~default:0 (Hashtbl.find_opt t.samplers key) in
  Hashtbl.replace t.samplers key (seen + 1);
  seen mod n = 0

type outcome = Continue | Stop_drop | Stop_accept

let process t frame0 =
  let frame = ref frame0 in
  let truncation = ref max_int in
  let run_actions table_idx entry_idx actions =
    let rec go i = function
      | [] -> Continue
      | action :: rest -> (
        match action with
        | A_pass -> go (i + 1) rest
        | A_drop -> Stop_drop
        | A_accept -> Stop_accept
        | A_truncate n ->
          truncation := min !truncation n;
          go (i + 1) rest
        | A_sample n ->
          if n <= 0 then invalid_arg "P4_pipeline: sample modulus must be positive";
          let key = Printf.sprintf "s%d.%d.%d" table_idx entry_idx i in
          if sampler_hit t key n then go (i + 1) rest else Stop_drop
        | A_anonymize anon ->
          frame := Anonymize.frame anon !frame;
          go (i + 1) rest
        | A_count name ->
          bump t name;
          go (i + 1) rest)
    in
    go 0 actions
  in
  let rec run_tables table_idx = function
    | [] -> Continue
    | table :: rest -> (
      let rec first_entry entry_idx = function
        | [] -> run_actions table_idx (-1) table.default
        | e :: more ->
          if matches e.matches !frame then run_actions table_idx entry_idx e.actions
          else first_entry (entry_idx + 1) more
      in
      match first_entry 0 table.entries with
      | Continue -> run_tables (table_idx + 1) rest
      | (Stop_drop | Stop_accept) as stop -> stop)
  in
  match run_tables 0 t.tables with
  | Stop_drop -> { frame = None; forwarded_bytes = 0 }
  | Continue | Stop_accept ->
    let wire = Packet.Frame.wire_length !frame in
    { frame = Some !frame; forwarded_bytes = min wire !truncation }

let counter t name = Option.value ~default:0 (Hashtbl.find_opt t.counters name)

let counters t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stage_count t = List.length t.tables

module Compile = struct
  let port_match dir p =
    match dir with
    | Packet.Filter.Any -> M_or (M_eq (F_src_port, p), M_eq (F_dst_port, p))
    | Packet.Filter.Src -> M_eq (F_src_port, p)
    | Packet.Filter.Dst -> M_eq (F_dst_port, p)

  let rec filter_to_match (f : Packet.Filter.t) =
    match f with
    | Packet.Filter.True -> M_any
    | Packet.Filter.Not e -> M_not (filter_to_match e)
    | Packet.Filter.And (a, b) -> M_and (filter_to_match a, filter_to_match b)
    | Packet.Filter.Or (a, b) -> M_or (filter_to_match a, filter_to_match b)
    | Packet.Filter.Proto "ipv4" -> M_eq (F_ip_version, 4)
    | Packet.Filter.Proto "ipv6" -> M_eq (F_ip_version, 6)
    | Packet.Filter.Proto "tcp" -> M_eq (F_ip_proto, 6)
    | Packet.Filter.Proto "udp" -> M_eq (F_ip_proto, 17)
    | Packet.Filter.Proto "icmp" -> M_eq (F_ip_proto, 1)
    | Packet.Filter.Proto token -> M_eq (F_has_token token, 1)
    | Packet.Filter.Vlan None -> M_not (M_eq (F_vlan_id, -1))
    | Packet.Filter.Vlan (Some vid) -> M_eq (F_vlan_id, vid)
    | Packet.Filter.Mpls None -> M_not (M_eq (F_mpls_label, -1))
    | Packet.Filter.Mpls (Some label) -> M_eq (F_mpls_label, label)
    | Packet.Filter.Host (_, _) ->
      (* Addresses are matched on the host side in Patchwork's split:
         the FPGA tables match on tags and ports; a host-rule falls
         back to passing the frame through. *)
      M_any
    | Packet.Filter.Port (dir, p) -> port_match dir p
    | Packet.Filter.Less n -> M_range (F_wire_length, 0, n)
    | Packet.Filter.Greater n -> M_range (F_wire_length, n, max_int)

  let of_filter ?(truncation = 200) ?(sample_1_in = 1) ?anonymizer filter =
    let filter_table =
      {
        table_name = "filter";
        entries =
          [
            {
              matches = filter_to_match filter;
              actions = [ A_count "filter.matched"; A_pass ];
            };
          ];
        default = [ A_count "filter.dropped"; A_drop ];
      }
    in
    let sample_table =
      {
        table_name = "sample";
        entries =
          (if sample_1_in <= 1 then []
           else
             [
               {
                 matches = M_any;
                 actions = [ A_sample sample_1_in; A_count "sample.kept" ];
               };
             ]);
        default = [ A_pass ];
      }
    in
    let edit_actions =
      [ A_truncate truncation ]
      @ (match anonymizer with Some a -> [ A_anonymize a ] | None -> [])
      @ [ A_count "edit.emitted" ]
    in
    let edit_table =
      { table_name = "edit"; entries = []; default = edit_actions }
    in
    create [ filter_table; sample_table; edit_table ]
end
